module github.com/persistmem/slpmt

go 1.22
