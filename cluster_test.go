package slpmt_test

import (
	"fmt"
	"testing"

	"github.com/persistmem/slpmt"
)

// runShardedInserts drives n insert transactions sharded round-robin
// across the cluster's cores into one shared table keyed by root slot
// 0, and returns the makespan and merged counters.
func runShardedInserts(t *testing.T, cores, n int) (*slpmt.Cluster, uint64) {
	t.Helper()
	cl := slpmt.NewCluster(cores, slpmt.Options{Scheme: "SLPMT"})

	// Shared array of n slots, allocated once on core 0.
	var arr slpmt.Addr
	sys0 := cl.Use(0)
	if err := sys0.Update(func(tx *slpmt.Tx) error {
		arr = tx.Alloc(uint64(n) * 8)
		tx.SetRoot(0, uint64(arr))
		return nil
	}); err != nil {
		t.Fatalf("setup: %v", err)
	}
	cl.SyncClocks()

	next := make([]int, cores)
	for i := range next {
		next[i] = i
	}
	cl.Interleave(func(core int, sys *slpmt.System) bool {
		j := next[core]
		if j >= n {
			return false
		}
		next[core] = j + cores
		if err := sys.Update(func(tx *slpmt.Tx) error {
			tx.StoreU64(arr+slpmt.Addr(j*8), uint64(j)+1)
			return nil
		}); err != nil {
			t.Fatalf("core %d insert %d: %v", core, j, err)
		}
		return next[core] < n
	})
	cl.DrainLazy()

	// Every slot must hold its value regardless of which core wrote it.
	cl.Use(0).View(func(tx *slpmt.Tx) {
		for j := 0; j < n; j++ {
			if got := tx.LoadU64(arr + slpmt.Addr(j*8)); got != uint64(j)+1 {
				t.Fatalf("slot %d = %d, want %d", j, got, j+1)
			}
		}
	})
	return cl, cl.MaxClk()
}

func TestClusterShardedInserts(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			runShardedInserts(t, cores, 64)
		})
	}
}

func TestClusterDeterministic(t *testing.T) {
	_, clk1 := runShardedInserts(t, 4, 96)
	cl2, clk2 := runShardedInserts(t, 4, 96)
	if clk1 != clk2 {
		t.Errorf("makespan differs across identical runs: %d vs %d", clk1, clk2)
	}
	cl3, clk3 := runShardedInserts(t, 4, 96)
	s2, s3 := cl2.Stats(), cl3.Stats()
	if clk2 != clk3 || s2 != s3 {
		t.Errorf("merged counters differ across identical runs")
	}
}

func TestClusterCoherenceEventsFire(t *testing.T) {
	// All cores hammer the same line: every handoff is a coherence miss.
	cl := slpmt.NewCluster(4, slpmt.Options{Scheme: "SLPMT"})
	var a slpmt.Addr
	if err := cl.Use(0).Update(func(tx *slpmt.Tx) error {
		a = tx.Alloc(8)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ops := make([]int, 4)
	cl.Interleave(func(core int, sys *slpmt.System) bool {
		ops[core]++
		if err := sys.Update(func(tx *slpmt.Tx) error {
			tx.StoreU64(a, uint64(core))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return ops[core] < 8
	})
	st := cl.Stats()
	if st.CoherenceSnoops == 0 || st.CoherenceInvalidations == 0 {
		t.Errorf("no coherence events on a shared hot line: snoops=%d invalidations=%d",
			st.CoherenceSnoops, st.CoherenceInvalidations)
	}
}

func TestClusterSingleCoreMatchesSystem(t *testing.T) {
	// NewCluster(1, opts) must be timing-identical to New(opts).
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	cl := slpmt.NewCluster(1, slpmt.Options{Scheme: "SLPMT"})
	run := func(s *slpmt.System) uint64 {
		var a slpmt.Addr
		if err := s.Update(func(tx *slpmt.Tx) error {
			a = tx.Alloc(256)
			for i := 0; i < 32; i++ {
				tx.StoreU64(a+slpmt.Addr(i*8), uint64(i))
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		s.DrainLazy()
		return s.Mach.Clk
	}
	if c1, c2 := run(sys), run(cl.Use(0)); c1 != c2 {
		t.Errorf("1-core cluster clock %d differs from System clock %d", c2, c1)
	}
}

func TestClusterPerCoreLogRegionsDisjoint(t *testing.T) {
	cl := slpmt.NewCluster(4, slpmt.Options{Scheme: "SLPMT"})
	type span struct{ lo, hi uint64 }
	var spans []span
	for _, s := range cl.Sys {
		l := s.Mach.Layout
		spans = append(spans, span{l.LogBase, l.LogBase + l.LogSize})
		if l.HeapBase != cl.Sys[0].Mach.Layout.HeapBase || l.HeapSize != cl.Sys[0].Mach.Layout.HeapSize {
			t.Fatal("heap region differs between cores")
		}
		if l.RootBase != cl.Sys[0].Mach.Layout.RootBase {
			t.Fatal("root region differs between cores")
		}
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("log regions of cores %d and %d overlap", i, j)
			}
		}
	}
}
