package main

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/critpath"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/trace/stream"
)

// inspectStream dumps an SLPSEG01 stream directory (written by
// slpmtbench -trace-stream): per-segment headers, the first maxEvents
// events, and the streamed latency summary. With follow it tails the
// stream instead — segments print as they complete (their rotation
// fsync has happened) and the summary prints once the writer drops the
// CLOSED sentinel. A torn final segment is reported but not fatal: the
// durable prefix is still summarized, matching crash-recovery
// semantics.
func inspectStream(out io.Writer, dir string, follow bool, maxEvents int) error {
	d, err := stream.Open(dir)
	if err != nil {
		return err
	}
	if !follow {
		segs := d.Segments()
		fmt.Fprintf(out, "stream %s: %d segments, closed=%v\n", dir, len(segs), d.Closed())
		for i, name := range segs {
			hdr, err := d.Header(i)
			if err != nil {
				fmt.Fprintf(out, "segment %s: %v\n", name, err)
				continue
			}
			fmt.Fprintf(out, "segment %s: %d events, cycles [%d,%d], dropped=%d\n",
				name, hdr.Count, hdr.FirstCycle, hdr.LastCycle, hdr.Dropped)
			for _, cc := range hdr.CoreCounts {
				fmt.Fprintf(out, "  core %d: %d events\n", cc.Core, cc.Count)
			}
		}
	} else {
		fmt.Fprintf(out, "following stream %s (exits when the writer closes it)\n", dir)
	}

	summ := stream.NewSummarizer()
	printed := 0
	consume := func(e trace.Event) {
		summ.Consume(e)
		if printed < maxEvents {
			fmt.Fprintf(out, "  [%3d] core=%d cycle=%-10d %-14s addr=%#x arg=%d\n",
				printed, e.Core, e.Cycle, e.Kind, e.Addr, e.Arg)
			printed++
		}
	}
	fmt.Fprintf(out, "\nfirst %d events:\n", maxEvents)
	var st *stream.Stats
	if follow {
		st, err = d.Follow(consume, 0)
	} else {
		st, err = d.Iter(consume)
	}
	if err != nil {
		return err
	}
	if st.Events > printed {
		fmt.Fprintf(out, "  ... %d more\n", st.Events-printed)
	}
	if st.Torn != nil {
		fmt.Fprintf(out, "\ntorn final segment (crash tear): %v\n", st.Torn)
		fmt.Fprintf(out, "durable prefix of %d complete events recovered\n", st.Events)
	}
	fmt.Fprintf(out, "\n%d events over %d segments (dropped=%d, closed=%v)\n",
		st.Events, st.Segments, st.Dropped, st.Closed)
	fmt.Fprint(out, summ.Summary(st.Events, st.Dropped).String())
	return nil
}

// streamCritPath replays a saved binlog through the causal
// critical-path analyzer — post-hoc analysis of an earlier streamed
// run without rerunning the workload. The stream must be complete:
// dropped or torn events would make the causal replay unsound, so
// both are hard errors.
func streamCritPath(out io.Writer, dir string, hotN int) error {
	d, err := stream.Open(dir)
	if err != nil {
		return err
	}
	cp := critpath.New()
	st, err := stream.Feed(d, cp)
	if err != nil {
		return err
	}
	if st.Torn != nil {
		return fmt.Errorf("torn final segment: %v (the causal replay needs a complete stream)", st.Torn)
	}
	an, err := cp.Analyze(st.Dropped)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "stream %s: %d events over %d segments, closed=%v\n\n",
		dir, st.Events, st.Segments, st.Closed)
	fmt.Fprint(out, an.Render(hotN))
	return nil
}
