// Command slpmttrace inspects the durable state of a (optionally
// crash-interrupted) workload run: the hardware log header, the
// parseable record stream, the root directory, and a recovery dry run.
// It is the debugging companion to slpmtcrash.
//
// Usage:
//
//	slpmttrace -workload rbtree -n 20                # clean run
//	slpmttrace -workload rbtree -n 20 -crash 150     # crash at event 150
//	slpmttrace -workload hashtable -crash 90 -recover
//	slpmttrace -cores 2 -crash 120 -recover          # 2-core cluster: every
//	                                                 # per-core log is dumped
//
// The -cores/-seed knobs match slpmtbench: cores > 1 shards the same
// deterministic key stream round-robin across a cluster, and the crash
// point counts machine-wide persist events.
//
// -trace-stream switches to binlog inspection mode: instead of
// executing a run, the given SLPSEG01 stream directory (written by
// slpmtbench -trace-stream) is dumped — per-segment headers, the first
// -records events, and the streamed latency summary. -follow tails a
// still-growing stream, printing segments as their rotation fsync
// completes and exiting when the writer drops the CLOSED sentinel:
//
//	slpmttrace -trace-stream out/
//	slpmttrace -trace-stream out/ -follow -records 0
//
// -critpath replays the binlog through the causal critical-path
// analyzer instead of dumping records: the same post-hoc
// blame/slack/hot-line report slpmtbench computes live, but over a
// saved stream directory — no rerun needed:
//
//	slpmttrace -trace-stream out/ -critpath -hotlines 10
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/recovery"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
	"github.com/persistmem/slpmt/internal/ycsb"
)

func main() {
	var (
		workload = flag.String("workload", "hashtable", fmt.Sprintf("workload %v", workloads.Names()))
		scheme   = flag.String("scheme", schemes.SLPMT, fmt.Sprintf("scheme %v", schemes.Names()))
		n        = flag.Int("n", 20, "insert operations")
		value    = flag.Int("value", 32, "value size in bytes")
		cores    = flag.Int("cores", 1, "simulated cores (crash counts machine-wide persist events)")
		seed     = flag.Uint64("seed", 0, "seed for the deterministic key stream")
		crash    = flag.Uint64("crash", 0, "crash after this persist event (0 = run to completion)")
		doRec    = flag.Bool("recover", false, "run recovery on the image and report")
		maxRecs  = flag.Int("records", 16, "max log records to print")
		streamD  = flag.String("trace-stream", "", "inspect an SLPSEG01 trace-stream directory (from slpmtbench -trace-stream) instead of executing a run")
		follow   = flag.Bool("follow", false, "with -trace-stream: tail the stream live as segments complete; exits when the writer closes it")
		critpath = flag.Bool("critpath", false, "with -trace-stream: replay the binlog through the causal critical-path analyzer and print the blame/slack/hot-line report")
		hotlines = flag.Int("hotlines", 10, "with -critpath: contended cache lines to rank")
	)
	flag.Parse()
	if *cores < 1 {
		*cores = 1
	}
	if *streamD != "" {
		var err error
		if *critpath {
			err = streamCritPath(os.Stdout, *streamD, *hotlines)
		} else {
			err = inspectStream(os.Stdout, *streamD, *follow, *maxRecs)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "slpmttrace: %v\n", err)
			os.Exit(1)
		}
		return
	}

	img, crashed, events := execute(*workload, *scheme, *n, *value, *cores, *seed, *crash)
	fmt.Printf("run: %s under %s, %d ops, %d persist events, crashed=%v\n\n",
		*workload, *scheme, *n, events, crashed)

	layouts := mem.MultiLayout(uint64(len(img.Data)), *cores)

	// Root directory.
	fmt.Println("root directory:")
	names := []string{"main", "meta", "count", "movesrc", "aux"}
	for i, nm := range names {
		v := img.ReadU64(layouts[0].RootBase + mem.Addr(i*8))
		fmt.Printf("  slot %d (%-7s) = %#x (%d)\n", i, nm, v, v)
	}

	// Per-core log header + records.
	for core, layout := range layouts {
		raw := img.Data[layout.LogBase : layout.LogBase+layout.LogSize]
		hdr := logfmt.DecodeHeader(raw)
		state := map[uint64]string{0: "idle", 1: "ACTIVE", 2: "committed"}[hdr.State]
		mode := map[uint64]string{1: "undo", 2: "redo"}[hdr.Mode]
		tag := ""
		if *cores > 1 {
			tag = fmt.Sprintf(" (core %d)", core)
		}
		fmt.Printf("\nhardware log%s: txn seq=%d state=%s mode=%s watermark=%d\n",
			tag, hdr.Seq, state, mode, hdr.Watermark)
		recs, err := logfmt.ParseRecords(raw, hdr.Seq)
		if err != nil {
			fmt.Printf("  record stream: %v\n", err)
		}
		fmt.Printf("  %d parseable records:\n", len(recs))
		for i, r := range recs {
			if i >= *maxRecs {
				fmt.Printf("  ... %d more\n", len(recs)-i)
				break
			}
			fmt.Printf("  [%3d] addr=%#08x len=%-2d old=% x\n", i, r.Addr, len(r.Data), head(r.Data, 16))
		}
	}

	if !*doRec {
		return
	}
	fmt.Println("\nrecovery dry run:")
	w := workloads.MustNew(*workload)
	rec, ok := w.(workloads.Recoverable)
	if !ok {
		fmt.Println("  workload is not Recoverable")
		os.Exit(1)
	}
	rep, heap, err := recovery.RecoverN(img, rec, *cores)
	if err != nil {
		fmt.Printf("  FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  %s\n", rep)
	_, _, _, live := heap.Stats()
	fmt.Printf("  rebuilt heap: %d live bytes\n", live)
}

func head(p []byte, n int) []byte {
	if len(p) > n {
		return p[:n]
	}
	return p
}

func execute(workload, scheme string, n, value, cores int, seed, crash uint64) (img *pmem.Image, crashed bool, events uint64) {
	if cores > 1 {
		return executeMulti(workload, scheme, n, value, cores, seed, crash)
	}
	w := workloads.MustNew(workload)
	sys := slpmt.New(slpmt.Options{Scheme: scheme, ComputeCyclesPerOp: w.ComputeCost()})
	sys.Mach.CrashAfter = crash
	defer func() {
		events = sys.Mach.PersistCount
	}()
	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(machine.CrashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		if err := w.Setup(sys); err != nil {
			return err
		}
		load := ycsb.Load{N: n, ValueSize: value, Seed: seed}
		return load.Each(func(k uint64, v []byte) error { return w.Insert(sys, k, v) })
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "slpmttrace: %v\n", err)
		os.Exit(1)
	}
	return sys.Mach.Crash(), crashed, sys.Mach.PersistCount
}

// executeMulti runs the same deterministic stream sharded round-robin
// across a cluster, crashing when the machine-wide persist total hits
// the requested event (whichever core issues it).
func executeMulti(workload, scheme string, n, value, cores int, seed, crash uint64) (img *pmem.Image, crashed bool, events uint64) {
	w := workloads.MustNew(workload)
	cl := slpmt.NewCluster(cores, slpmt.Options{Scheme: scheme, ComputeCyclesPerOp: w.ComputeCost()})
	cl.Plat.CrashAfterTotal = crash
	defer func() {
		events = cl.Plat.PersistTotal
	}()
	run := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(machine.CrashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		if err := w.Setup(cl.Use(0)); err != nil {
			return err
		}
		load := ycsb.Load{N: n, ValueSize: value, Seed: seed}
		keys := load.Keys()
		next := make([]int, cores)
		for i := range next {
			next[i] = i
		}
		var opErr error
		cl.Interleave(func(core int, sys *slpmt.System) bool {
			j := next[core]
			if j >= len(keys) || opErr != nil {
				return false
			}
			next[core] = j + cores
			k := keys[j]
			if e := w.Insert(sys, k, load.Value(k)); e != nil {
				opErr = e
				return false
			}
			return next[core] < len(keys)
		})
		return opErr
	}
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "slpmttrace: %v\n", err)
		os.Exit(1)
	}
	return cl.Plat.Crash(), crashed, cl.Plat.PersistTotal
}
