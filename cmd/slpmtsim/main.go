// Command slpmtsim runs one workload under one or more schemes and
// prints the full simulation counter set — the tool for inspecting a
// single configuration in depth.
//
// Usage:
//
//	slpmtsim -workload hashtable -scheme SLPMT -n 1000 -value 256
//	slpmtsim -workload hashtable -scheme FG,SLPMT     # side by side
//	slpmtsim -workload hashtable -scheme all          # every scheme
//
// Multiple schemes run concurrently on the bench worker pool (-parallel
// caps the workers); each scheme's block is printed in request order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	var (
		workload = flag.String("workload", "hashtable", fmt.Sprintf("workload %v", workloads.Names()))
		scheme   = flag.String("scheme", schemes.SLPMT, fmt.Sprintf("scheme %v, comma-separated list, or \"all\"", schemes.Names()))
		n        = flag.Int("n", 1000, "insert operations")
		value    = flag.Int("value", 256, "value size in bytes")
		lat      = flag.Uint64("writelat", 0, "PM write latency override (ns)")
		cores    = flag.Int("cores", 1, "simulated core count (sharded key streams)")
		seed     = flag.Uint64("seed", 0, "key-stream seed")
		verify   = flag.Bool("verify", true, "check structure invariants after the run")
		parallel = flag.Int("parallel", 0, "worker count for multi-scheme runs (0 = GOMAXPROCS)")
		sockets  = flag.Int("sockets", 0, "PM sockets: each is its own device behind the interconnect distance matrix (0 or 1 = single device)")
		remoteNs = flag.Uint64("remote-nanos", 0, "per-hop remote persist-enqueue latency in ns, remote fills pay double (0 = defaults; needs -sockets > 1)")
	)
	flag.Parse()
	bench.SetParallelism(*parallel)

	ss := strings.Split(*scheme, ",")
	if *scheme == "all" {
		ss = schemes.Names()
	}
	cfgs := make([]bench.RunConfig, len(ss))
	for i, s := range ss {
		cfgs[i] = bench.RunConfig{
			Scheme:       strings.TrimSpace(s),
			Workload:     *workload,
			N:            *n,
			ValueSize:    *value,
			PMWriteNanos: *lat,
			Seed:         *seed,
			Verify:       *verify,
			Cores:        *cores,
			Sockets:      *sockets,
			RemoteNanos:  *remoteNs,
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "slpmtsim: %v\n", err)
		os.Exit(1)
	}

	fail := false
	for i, res := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("workload=%s scheme=%s n=%d value=%dB\n", *workload, cfgs[i].Scheme, *n, *value)
		fmt.Printf("cycles=%d (%.1f us simulated)  pm-writes=%d bytes (%.1f per op)\n",
			res.Cycles, float64(res.Cycles)/2000,
			res.PMWriteBytes(), float64(res.PMWriteBytes())/float64(*n))
		fmt.Printf("cycles/op=%.0f\n\n", float64(res.Cycles)/float64(*n))
		fmt.Print(res.Counters.String())
		if res.VerifyErr != nil {
			fmt.Fprintf(os.Stderr, "VERIFY FAILED (%s): %v\n", cfgs[i].Scheme, res.VerifyErr)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}
