// Command slpmtsim runs one workload under one scheme and prints the
// full simulation counter set — the tool for inspecting a single
// configuration in depth.
//
// Usage:
//
//	slpmtsim -workload hashtable -scheme SLPMT -n 1000 -value 256
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	var (
		workload = flag.String("workload", "hashtable", fmt.Sprintf("workload %v", workloads.Names()))
		scheme   = flag.String("scheme", schemes.SLPMT, fmt.Sprintf("scheme %v", schemes.Names()))
		n        = flag.Int("n", 1000, "insert operations")
		value    = flag.Int("value", 256, "value size in bytes")
		lat      = flag.Uint64("writelat", 0, "PM write latency override (ns)")
		seed     = flag.Uint64("seed", 0, "key-stream seed")
		verify   = flag.Bool("verify", true, "check structure invariants after the run")
	)
	flag.Parse()

	res := bench.Run(bench.RunConfig{
		Scheme:       *scheme,
		Workload:     *workload,
		N:            *n,
		ValueSize:    *value,
		PMWriteNanos: *lat,
		Seed:         *seed,
		Verify:       *verify,
	})
	fmt.Printf("workload=%s scheme=%s n=%d value=%dB\n", *workload, *scheme, *n, *value)
	fmt.Printf("cycles=%d (%.1f us simulated)  pm-writes=%d bytes (%.1f per op)\n",
		res.Cycles, float64(res.Cycles)/2000,
		res.PMWriteBytes(), float64(res.PMWriteBytes())/float64(*n))
	fmt.Printf("cycles/op=%.0f\n\n", float64(res.Cycles)/float64(*n))
	fmt.Print(res.Counters.String())
	if res.VerifyErr != nil {
		fmt.Fprintf(os.Stderr, "VERIFY FAILED: %v\n", res.VerifyErr)
		os.Exit(1)
	}
}
