package main

import (
	"encoding/json"
	"os"
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// The BENCH_<experiment>.json documents are the machine-readable
// contract downstream tooling parses; these tests pin the schema
// across the per-core/aggregate stats split and check that the scaling
// experiment's file is deterministic and seed-stable.

// reportKeys are the top-level keys every report must carry.
var reportKeys = []string{
	"experiment", "parallel", "wall_ms", "runs", "total_ops", "results",
}

// resultKeys are the keys every per-run entry must carry.
var resultKeys = []string{
	"scheme", "workload", "n", "value_size", "cycles",
	"pm_write_bytes_data", "pm_write_bytes_log", "pm_write_bytes",
	"tx_commits", "verify_ok",
}

// genReport runs one experiment with -json collection in a temp dir
// and returns the decoded BENCH_<name>.json.
func genReport(t *testing.T, name string, base bench.RunConfig) map[string]any {
	t.Helper()
	t.Chdir(t.TempDir())
	if err := runOne(name, base, true); err != nil {
		t.Fatalf("runOne(%s): %v", name, err)
	}
	data, err := os.ReadFile("BENCH_" + name + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("BENCH_%s.json is not valid JSON: %v", name, err)
	}
	return doc
}

func checkSchema(t *testing.T, doc map[string]any) []any {
	t.Helper()
	for _, k := range reportKeys {
		if _, ok := doc[k]; !ok {
			t.Errorf("report missing key %q", k)
		}
	}
	results, ok := doc["results"].([]any)
	if !ok || len(results) == 0 {
		t.Fatalf("report has no results array")
	}
	for i, r := range results {
		m, ok := r.(map[string]any)
		if !ok {
			t.Fatalf("result %d is not an object", i)
		}
		for _, k := range resultKeys {
			if _, ok := m[k]; !ok {
				t.Errorf("result %d missing key %q", i, k)
			}
		}
		if ok := m["verify_ok"].(bool); !ok {
			t.Errorf("result %d failed verification", i)
		}
	}
	return results
}

func TestBenchJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full figure grid; skipped in -short")
	}
	doc := genReport(t, "fig8", bench.RunConfig{N: 40, ValueSize: 32, Verify: true})
	checkSchema(t, doc)
	if doc["experiment"] != "fig8" {
		t.Errorf("experiment = %v", doc["experiment"])
	}
}

func TestScalingJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scaling sweep twice; skipped in -short")
	}
	base := bench.RunConfig{N: 32, ValueSize: 32, Verify: true}
	doc1 := genReport(t, "scaling", base)
	res1 := checkSchema(t, doc1)

	// Every (scheme, workload) must appear at cores 1, 2, 4, 8.
	seen := map[string]map[float64]bool{}
	for _, r := range res1 {
		m := r.(map[string]any)
		key := m["scheme"].(string) + "/" + m["workload"].(string)
		cores := 1.0
		if c, ok := m["cores"].(float64); ok {
			cores = c
		}
		if seen[key] == nil {
			seen[key] = map[float64]bool{}
		}
		seen[key][cores] = true
	}
	for key, cs := range seen {
		for _, want := range []float64{1, 2, 4, 8} {
			if !cs[want] {
				t.Errorf("%s missing cores=%v entry", key, want)
			}
		}
	}

	// Seed-stable: a second identical sweep produces identical results
	// (only host-time fields like wall_ms may differ).
	doc2 := genReport(t, "scaling", base)
	b1, _ := json.Marshal(doc1["results"])
	b2, _ := json.Marshal(doc2["results"])
	if string(b1) != string(b2) {
		t.Error("scaling results differ between two identical runs")
	}
}
