// Command slpmtbench regenerates the paper's evaluation figures on the
// simulated platform.
//
// Usage:
//
//	slpmtbench -experiment fig8      # kernel speedups + traffic (Fig. 8)
//	slpmtbench -experiment fig9      # line-granularity SLPMT (Fig. 9)
//	slpmtbench -experiment fig10     # value-size speedup sweep (Fig. 10)
//	slpmtbench -experiment fig11     # value-size traffic sweep (Fig. 11)
//	slpmtbench -experiment fig12     # write-latency sweep (Fig. 12)
//	slpmtbench -experiment fig13     # compiler vs manual annotations (Fig. 13)
//	slpmtbench -experiment fig14     # PMKV speedups (Fig. 14)
//	slpmtbench -experiment headline  # §VI summary numbers
//	slpmtbench -experiment ablation  # design-choice ablations (DESIGN.md §5)
//	slpmtbench -experiment model     # timing-model knob sensitivity
//	slpmtbench -experiment mixes     # YCSB A/B/C/E blends (extension)
//	slpmtbench -experiment scaling   # throughput/traffic vs core count (extension)
//	slpmtbench -experiment all       # everything
//
// Flags -n, -value and -seed override the workload parameters. -cores
// runs any experiment on a multi-core platform (sharded key streams,
// deterministic interleaving); the scaling experiment sweeps its own
// core counts.
// -parallel sets the worker count for the experiment grids (0 =
// GOMAXPROCS; results are identical at any setting). -json additionally
// writes a machine-readable BENCH_<experiment>.json per experiment, and
// -cpuprofile / -memprofile capture pprof profiles of the sweep.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/experiments"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "slpmtbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("experiment", "all", "experiment to run (fig8..fig14, headline, ablation, model, mixes, scaling, all)")
		n        = flag.Int("n", 1000, "insert operations per run")
		value    = flag.Int("value", 256, "value size in bytes")
		seed     = flag.Uint64("seed", 0, "key-stream seed (0 = default)")
		cores    = flag.Int("cores", 1, "simulated core count (scaling sweeps its own counts)")
		parallel = flag.Int("parallel", 0, "worker count for experiment grids (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "write machine-readable BENCH_<experiment>.json per experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
	)
	flag.Parse()

	bench.SetParallelism(*parallel)
	base := bench.RunConfig{N: *n, ValueSize: *value, Seed: *seed, Verify: true, Cores: *cores}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Run "all" one experiment at a time (matching experiments.Run's own
	// loop, blank line included) so -json can report each separately.
	names := []string{*exp}
	trailingBlank := false
	if *exp == "all" {
		names = experiments.Names()
		trailingBlank = true
	}
	for _, name := range names {
		if err := runOne(name, base, *jsonOut); err != nil {
			return err
		}
		if trailingBlank {
			fmt.Println()
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// runOne executes one experiment, optionally collecting every benchmark
// result it produces into BENCH_<name>.json.
func runOne(name string, base bench.RunConfig, jsonOut bool) error {
	if !jsonOut {
		return experiments.Run(os.Stdout, name, base)
	}
	col := &bench.Collector{}
	bench.SetCollector(col)
	defer bench.SetCollector(nil)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := experiments.Run(os.Stdout, name, base)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return err
	}
	return writeReport(name, wall, &before, &after, col.Results())
}

// benchResult is the machine-readable form of one bench.Run outcome.
type benchResult struct {
	Scheme           string `json:"scheme"`
	Workload         string `json:"workload"`
	N                int    `json:"n"`
	ValueSize        int    `json:"value_size"`
	PMWriteNanos     uint64 `json:"pm_write_nanos,omitempty"`
	Banks            int    `json:"banks,omitempty"`
	WPQBytes         int    `json:"wpq_bytes,omitempty"`
	Seed             uint64 `json:"seed,omitempty"`
	Cores            int    `json:"cores,omitempty"`
	Cycles           uint64 `json:"cycles"`
	PMWriteBytesData uint64 `json:"pm_write_bytes_data"`
	PMWriteBytesLog  uint64 `json:"pm_write_bytes_log"`
	PMWriteBytes     uint64 `json:"pm_write_bytes"`
	TxCommits        uint64 `json:"tx_commits"`
	VerifyOK         bool   `json:"verify_ok"`
}

// benchReport is the top-level BENCH_<experiment>.json document.
type benchReport struct {
	Experiment  string        `json:"experiment"`
	Parallel    int           `json:"parallel"`
	WallMillis  float64       `json:"wall_ms"`
	Runs        int           `json:"runs"`
	TotalOps    uint64        `json:"total_ops"`
	AllocsPerOp float64       `json:"allocs_per_op"`
	BytesPerOp  float64       `json:"bytes_per_op"`
	Results     []benchResult `json:"results"`
}

func writeReport(name string, wall time.Duration, before, after *runtime.MemStats, results []bench.Result) error {
	rep := benchReport{
		Experiment: name,
		Parallel:   bench.Parallelism(),
		WallMillis: float64(wall.Microseconds()) / 1000,
		Runs:       len(results),
		Results:    make([]benchResult, 0, len(results)),
	}
	for _, r := range results {
		rep.TotalOps += uint64(r.N)
		rep.Results = append(rep.Results, benchResult{
			Scheme:           r.Scheme,
			Workload:         r.Workload,
			N:                r.N,
			ValueSize:        r.ValueSize,
			PMWriteNanos:     r.PMWriteNanos,
			Banks:            r.Banks,
			WPQBytes:         r.WPQBytes,
			Seed:             r.Seed,
			Cores:            r.Cores,
			Cycles:           r.Cycles,
			PMWriteBytesData: r.Counters.PMWriteBytesData,
			PMWriteBytesLog:  r.Counters.PMWriteBytesLog,
			PMWriteBytes:     r.PMWriteBytes(),
			TxCommits:        r.Counters.TxCommits,
			VerifyOK:         r.VerifyErr == nil,
		})
	}
	// The collector sees results in completion order, which varies with
	// the worker schedule; sort on the full config for stable files.
	sort.Slice(rep.Results, func(i, j int) bool {
		a, b := rep.Results[i], rep.Results[j]
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.ValueSize != b.ValueSize {
			return a.ValueSize < b.ValueSize
		}
		if a.PMWriteNanos != b.PMWriteNanos {
			return a.PMWriteNanos < b.PMWriteNanos
		}
		if a.Banks != b.Banks {
			return a.Banks < b.Banks
		}
		if a.WPQBytes != b.WPQBytes {
			return a.WPQBytes < b.WPQBytes
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.Seed < b.Seed
	})
	if rep.TotalOps > 0 {
		rep.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(rep.TotalOps)
		rep.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.TotalOps)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := "BENCH_" + name + ".json"
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d results, %.0f ms wall)\n", path, rep.Runs, rep.WallMillis)
	return nil
}
