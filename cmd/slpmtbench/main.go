// Command slpmtbench regenerates the paper's evaluation figures on the
// simulated platform.
//
// Usage:
//
//	slpmtbench -experiment fig8      # kernel speedups + traffic (Fig. 8)
//	slpmtbench -experiment fig9      # line-granularity SLPMT (Fig. 9)
//	slpmtbench -experiment fig10     # value-size speedup sweep (Fig. 10)
//	slpmtbench -experiment fig11     # value-size traffic sweep (Fig. 11)
//	slpmtbench -experiment fig12     # write-latency sweep (Fig. 12)
//	slpmtbench -experiment fig13     # compiler vs manual annotations (Fig. 13)
//	slpmtbench -experiment fig14     # PMKV speedups (Fig. 14)
//	slpmtbench -experiment headline  # §VI summary numbers
//	slpmtbench -experiment ablation  # design-choice ablations (DESIGN.md §5)
//	slpmtbench -experiment model     # timing-model knob sensitivity
//	slpmtbench -experiment mixes     # YCSB A/B/C/E blends (extension)
//	slpmtbench -experiment all       # everything
//
// Flags -n, -value and -seed override the workload parameters.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/experiments"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	var (
		exp   = flag.String("experiment", "all", "experiment to run (fig8..fig14, headline, ablation, model, mixes, all)")
		n     = flag.Int("n", 1000, "insert operations per run")
		value = flag.Int("value", 256, "value size in bytes")
		seed  = flag.Uint64("seed", 0, "key-stream seed (0 = default)")
	)
	flag.Parse()

	base := bench.RunConfig{N: *n, ValueSize: *value, Seed: *seed, Verify: true}
	if err := experiments.Run(os.Stdout, *exp, base); err != nil {
		fmt.Fprintf(os.Stderr, "slpmtbench: %v\n", err)
		os.Exit(1)
	}
}
