// Command slpmtbench regenerates the paper's evaluation figures on the
// simulated platform.
//
// Usage:
//
//	slpmtbench -experiment fig8      # kernel speedups + traffic (Fig. 8)
//	slpmtbench -experiment fig9      # line-granularity SLPMT (Fig. 9)
//	slpmtbench -experiment fig10     # value-size speedup sweep (Fig. 10)
//	slpmtbench -experiment fig11     # value-size traffic sweep (Fig. 11)
//	slpmtbench -experiment fig12     # write-latency sweep (Fig. 12)
//	slpmtbench -experiment fig13     # compiler vs manual annotations (Fig. 13)
//	slpmtbench -experiment fig14     # PMKV speedups (Fig. 14)
//	slpmtbench -experiment headline  # §VI summary numbers
//	slpmtbench -experiment ablation  # design-choice ablations (DESIGN.md §5)
//	slpmtbench -experiment model     # timing-model knob sensitivity
//	slpmtbench -experiment mixes     # YCSB A/B/C/E blends (extension)
//	slpmtbench -experiment scaling   # throughput/traffic vs core count (extension)
//	slpmtbench -experiment window    # group-commit window sensitivity (extension)
//	slpmtbench -experiment all       # everything
//
// Flags -n, -value and -seed override the workload parameters. -cores
// runs any experiment on a multi-core platform (sharded key streams,
// deterministic interleaving); the scaling experiment sweeps its own
// core counts.
// -parallel sets the worker count for the experiment grids (0 =
// GOMAXPROCS; results are identical at any setting). -json additionally
// writes a machine-readable BENCH_<experiment>.json per experiment
// (including the cycles_by_cause attribution breakdown), and
// -cpuprofile / -memprofile capture pprof profiles of the sweep.
//
// -compare diffs each experiment's fresh BENCH json against the
// committed baseline in the given directory (see baselines/) with
// per-metric tolerances, prints the delta table, and exits nonzero on
// drift — the CI perf-regression gate:
//
//	slpmtbench -experiment headline -json -compare baselines/
//
// -flame switches to single-run profiling mode: one run of -workload
// under -scheme executes with the cycle-attribution profiler attached,
// the per-cause breakdown prints to stdout, and folded stacks
// (scheme;workload;coreN;group;cause count) are written to the given
// path for flamegraph tools:
//
//	slpmtbench -workload hashtable -cores 2 -flame out.folded
//
// -trace switches to single-run tracing mode: instead of an experiment
// grid, one run of -workload under -scheme executes with the cycle-level
// tracer attached, the latency/WPQ metrics print to stdout, and the full
// event stream is exported to the given path — Perfetto/Chrome
// trace_event JSON (load it at https://ui.perfetto.dev), or the compact
// binary format if the path ends in ".bin" (read it back with
// trace.ReadBinary):
//
//	slpmtbench -workload hashtable -cores 2 -trace out.json
//
// -trace-stream switches to streaming single-run mode: the run's event
// stream spills into a chunked SLPSEG01 binlog under the given
// directory as it executes (memory stays bounded by the spill ring plus
// one segment buffer, so it scales to runs the in-memory ring cannot
// hold), live telemetry snapshots are written to telemetry.ndjson (one
// line per -interval cycles), and the printed latency/WPQ metrics come
// from the online streaming consumers. Tail the directory live with
// `slpmttrace -trace-stream dir -follow`. -stream-check additionally
// replays the binlog through the in-memory analyses and exits nonzero
// if any streamed reduction diverges — the CI stream-check gate.
// Combining with -sanitize replays the binlog through the persist-order
// checker instead of keeping the event stream in memory:
//
//	slpmtbench -workload hashtable -cores 2 -trace-stream out/ -interval 65536
//	slpmtbench -workload hashtable -cores 2 -trace-stream out/ -stream-check
//	slpmtbench -workload hashtable -cores 2 -trace-stream out/ -sanitize
//
// -sanitize runs one -workload/-scheme execution under the persist-order
// sanitizer (trace.Sanitize): the run is traced with the sanitizer's
// kind mask and the event stream is replayed against the paper's §III
// ordering rules (log records durable before their data lines, commit
// marker ordering per log mode, WPQ FIFO retirement, lazy-drain
// completion before conflicting stores). Violations print to stdout and
// make the command exit nonzero:
//
//	slpmtbench -workload hashtable -cores 2 -sanitize
//
// -critpath runs one -workload/-scheme execution under the causal
// critical-path analyzer: the measured region's charge/wait streams are
// replayed into a cross-core blocking DAG and the report prints the
// makespan's critical path with a per-cause breakdown (critical share
// vs raw core-cycle share), the DAG slack ranking, what-if projections
// (commit flush async, WPQ infinite, remote hops zeroed, W→∞), and the
// hot-line contention observatory (-hotlines caps the listing). The
// conservation contract — critical-path length == measured makespan —
// is enforced, and the analysis is observation-only. Composing with
// -trace-stream feeds the analyzer from the on-disk binlog instead of
// the ring (and writes the report to <dir>/critpath.txt); adding
// -stream-check verifies the streamed analysis byte-matches the
// in-memory one:
//
//	slpmtbench -workload hashtable -cores 2 -critpath -hotlines 5
//	slpmtbench -workload hashtable -cores 2 -trace-stream out/ -critpath -stream-check
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/experiments"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/report"
	"github.com/persistmem/slpmt/internal/trace"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "slpmtbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("experiment", "all", "experiment to run (fig8..fig14, headline, ablation, model, mixes, scaling, breakdown, window, numa, all)")
		n        = flag.Int("n", 1000, "insert operations per run")
		value    = flag.Int("value", 256, "value size in bytes")
		seed     = flag.Uint64("seed", 0, "key-stream seed (0 = default)")
		cores    = flag.Int("cores", 1, "simulated core count (scaling sweeps its own counts)")
		window   = flag.Int("commit-window", 0, "group-commit window W (0 or 1 = per-transaction protocol; the window experiment sweeps its own values)")
		parallel = flag.Int("parallel", 0, "worker count for experiment grids (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "write machine-readable BENCH_<experiment>.json per experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
		tracePth = flag.String("trace", "", "trace one run of -workload/-scheme and export events to this path (.json = Perfetto, .bin = binary)")
		streamD  = flag.String("trace-stream", "", "stream one run of -workload/-scheme into an SLPSEG01 binlog directory (bounded memory; composes with -sanitize)")
		interval = flag.Uint64("interval", 0, "telemetry snapshot interval in cycles for -trace-stream (0 = default)")
		streamCk = flag.Bool("stream-check", false, "with -trace-stream: verify the streamed Summary/Sanitize/WPQ reductions byte-match the in-memory analyses over the binlog (exit nonzero on divergence)")
		sanitize = flag.Bool("sanitize", false, "replay one run of -workload/-scheme through the persist-order sanitizer (exit nonzero on violations)")
		critpath = flag.Bool("critpath", false, "run one -workload/-scheme execution under the causal critical-path analyzer and print the blame/slack/hot-line report (composes with -trace-stream and -stream-check)")
		hotlines = flag.Int("hotlines", 10, "hot lines to list in the -critpath report")
		flamePth = flag.String("flame", "", "profile one run of -workload/-scheme, print the cycle-attribution breakdown, and write folded stacks to this path")
		compare  = flag.String("compare", "", "diff each experiment's BENCH json against <dir>/BENCH_<experiment>.json and exit nonzero on regressions (implies -json)")
		workload = flag.String("workload", "hashtable", "workload for -trace/-sanitize/-flame mode")
		scheme   = flag.String("scheme", "SLPMT", "scheme for -trace/-sanitize/-flame mode")
		sockets  = flag.Int("sockets", 0, "PM sockets: each is its own device behind the interconnect distance matrix (0 or 1 = single device; the numa experiment sweeps its own counts)")
		remoteNs = flag.Uint64("remote-nanos", 0, "per-hop remote persist-enqueue latency in ns, remote fills pay double (0 = defaults; needs -sockets > 1)")
	)
	flag.Parse()

	bench.SetParallelism(*parallel)
	base := bench.RunConfig{N: *n, ValueSize: *value, Seed: *seed, Verify: true, Cores: *cores, CommitWindow: *window,
		Sockets: *sockets, RemoteNanos: *remoteNs}

	if *streamD != "" {
		base.Scheme = *scheme
		base.Workload = *workload
		return runStreamed(os.Stdout, base, *streamD, *interval, *streamCk, *sanitize, *critpath, *hotlines)
	}
	if *sanitize {
		base.Scheme = *scheme
		base.Workload = *workload
		return runSanitized(os.Stdout, base)
	}
	if *critpath {
		base.Scheme = *scheme
		base.Workload = *workload
		return runCritPath(os.Stdout, base, *hotlines)
	}
	if *tracePth != "" {
		base.Scheme = *scheme
		base.Workload = *workload
		return runTraced(os.Stdout, base, *tracePth)
	}
	if *flamePth != "" {
		base.Scheme = *scheme
		base.Workload = *workload
		return runFlame(os.Stdout, base, *flamePth)
	}
	jsonDocs := *jsonOut || *compare != ""

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Run "all" one experiment at a time (matching experiments.Run's own
	// loop, blank line included) so -json can report each separately.
	names := []string{*exp}
	trailingBlank := false
	if *exp == "all" {
		names = experiments.Names()
		trailingBlank = true
	}
	regressed := 0
	for _, name := range names {
		if err := runOne(name, base, jsonDocs); err != nil {
			return err
		}
		if *compare != "" {
			ok, err := compareOne(os.Stdout, *compare, name)
			if err != nil {
				return err
			}
			if !ok {
				regressed++
			}
		}
		if trailingBlank {
			fmt.Println()
		}
	}
	if regressed > 0 {
		return fmt.Errorf("%d experiment(s) drifted past tolerance of the baselines in %s", regressed, *compare)
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// runTraced executes one benchmark with the full-detail tracer
// attached, prints the reduced metrics, and exports the event stream to
// path (Perfetto JSON, or the binary format for a ".bin" suffix).
func runTraced(out io.Writer, cfg bench.RunConfig, path string) error {
	tr := trace.New(trace.DefaultCapacity)
	cfg.Trace = tr
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}

	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "traced run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "cycles: %d\n", r.Cycles)
	fmt.Fprintf(out, "events: %d captured, %d dropped\n\n", r.Summary.Events, r.Summary.Dropped)
	fmt.Fprint(out, r.Summary.String())
	if r.WPQ != nil {
		fmt.Fprintf(out, "\nWPQ occupancy over the run (high-water %dB, mean %dB):\n",
			r.Counters.WPQOccMaxBytes, r.Counters.WPQOccAvgBytes)
		fmt.Fprint(out, r.WPQ.String())
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		err = tr.WriteBinary(f)
	} else {
		err = trace.WritePerfetto(f, tr.Events(), trace.PerfettoOptions{})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s (%d events)\n", path, tr.Len())
	return nil
}

// runSanitized executes one benchmark with a sanitizer-masked tracer
// and replays the event stream through the persist-order checker. Any
// violation (or a truncated stream, which would make the replay
// unsound) is an error.
func runSanitized(out io.Writer, cfg bench.RunConfig) error {
	tr := trace.New(trace.DefaultCapacity)
	tr.SetMask(trace.SanitizeMask())
	cfg.Trace = tr
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}

	rep := trace.Sanitize(tr.Events(), tr.Dropped())
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "sanitized run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "events: %d replayed, %d transactions, %d aborts\n",
		rep.Events, rep.Transactions, rep.Aborts)
	if rep.Truncated {
		return fmt.Errorf("trace ring overflowed (%d events dropped); the replay is unsound — reduce -n", tr.Dropped())
	}
	if !rep.Clean() {
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "violation: %s\n", v)
		}
		return fmt.Errorf("%d persist-order violations", rep.Total)
	}
	fmt.Fprintln(out, "persist-order sanitizer: 0 violations")
	return nil
}

// runOne executes one experiment, optionally collecting every benchmark
// result it produces into BENCH_<name>.json.
func runOne(name string, base bench.RunConfig, jsonOut bool) error {
	if !jsonOut {
		return experiments.Run(os.Stdout, name, base)
	}
	// Machine-readable documents carry the cycle-attribution breakdown
	// (observation-only: the numbers match an unprofiled run exactly).
	base.Profile = true
	col := &bench.Collector{}
	bench.SetCollector(col)
	defer bench.SetCollector(nil)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := experiments.Run(os.Stdout, name, base)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return err
	}
	rep := report.FromResults(name, bench.Parallelism(), wall,
		after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc, col.Results())
	path := report.Filename(name)
	if err := rep.Write(path); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d results, %.0f ms wall)\n", path, rep.Runs, rep.WallMillis)
	return nil
}

// compareOne diffs the experiment's just-written BENCH json against the
// committed baseline in dir, printing the delta table.
func compareOne(out io.Writer, dir, name string) (bool, error) {
	basePath := filepath.Join(dir, report.Filename(name))
	baseline, err := report.Load(basePath)
	if err != nil {
		return false, fmt.Errorf("baseline %s: %w (run 'make baseline' to regenerate the committed baselines)", basePath, err)
	}
	cand, err := report.Load(report.Filename(name))
	if err != nil {
		return false, err
	}
	c := report.Compare(baseline, cand)
	fmt.Fprint(out, c.String())
	return c.Pass(), nil
}

// runFlame executes one profiled benchmark, prints the cycle
// attribution, and writes folded stacks (scheme;workload;core;group;
// cause count) for flamegraph tools.
func runFlame(out io.Writer, cfg bench.RunConfig, path string) error {
	cfg.Profile = true
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "profiled run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "cycles: %d\n", r.Cycles)
	if err := r.Causes.Conserved(); err != nil {
		return fmt.Errorf("attribution broke conservation: %w", err)
	}
	merged := r.Causes.Merged()
	total := merged.Sum()
	fmt.Fprintf(out, "attributed core-cycles: %d (conservation holds on all %d cores)\n\n", total, cores)
	for _, name := range r.Causes.SortedNames() {
		c, _ := profile.ByName(name)
		v := merged[c]
		fmt.Fprintf(out, "%6.2f%%  %-13s %12d  %s\n",
			100*float64(v)/float64(total), name, v, report.CauseHelp(name))
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := profile.WriteFolded(f, cfg.Scheme+";"+cfg.Workload, r.Causes); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", path)
	return nil
}
