// Command slpmtbench regenerates the paper's evaluation figures on the
// simulated platform.
//
// Usage:
//
//	slpmtbench -experiment fig8      # kernel speedups + traffic (Fig. 8)
//	slpmtbench -experiment fig9      # line-granularity SLPMT (Fig. 9)
//	slpmtbench -experiment fig10     # value-size speedup sweep (Fig. 10)
//	slpmtbench -experiment fig11     # value-size traffic sweep (Fig. 11)
//	slpmtbench -experiment fig12     # write-latency sweep (Fig. 12)
//	slpmtbench -experiment fig13     # compiler vs manual annotations (Fig. 13)
//	slpmtbench -experiment fig14     # PMKV speedups (Fig. 14)
//	slpmtbench -experiment headline  # §VI summary numbers
//	slpmtbench -experiment ablation  # design-choice ablations (DESIGN.md §5)
//	slpmtbench -experiment model     # timing-model knob sensitivity
//	slpmtbench -experiment mixes     # YCSB A/B/C/E blends (extension)
//	slpmtbench -experiment scaling   # throughput/traffic vs core count (extension)
//	slpmtbench -experiment all       # everything
//
// Flags -n, -value and -seed override the workload parameters. -cores
// runs any experiment on a multi-core platform (sharded key streams,
// deterministic interleaving); the scaling experiment sweeps its own
// core counts.
// -parallel sets the worker count for the experiment grids (0 =
// GOMAXPROCS; results are identical at any setting). -json additionally
// writes a machine-readable BENCH_<experiment>.json per experiment, and
// -cpuprofile / -memprofile capture pprof profiles of the sweep.
//
// -trace switches to single-run tracing mode: instead of an experiment
// grid, one run of -workload under -scheme executes with the cycle-level
// tracer attached, the latency/WPQ metrics print to stdout, and the full
// event stream is exported to the given path — Perfetto/Chrome
// trace_event JSON (load it at https://ui.perfetto.dev), or the compact
// binary format if the path ends in ".bin" (read it back with
// trace.ReadBinary):
//
//	slpmtbench -workload hashtable -cores 2 -trace out.json
//
// -sanitize runs one -workload/-scheme execution under the persist-order
// sanitizer (trace.Sanitize): the run is traced with the sanitizer's
// kind mask and the event stream is replayed against the paper's §III
// ordering rules (log records durable before their data lines, commit
// marker ordering per log mode, WPQ FIFO retirement, lazy-drain
// completion before conflicting stores). Violations print to stdout and
// make the command exit nonzero:
//
//	slpmtbench -workload hashtable -cores 2 -sanitize
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/experiments"
	"github.com/persistmem/slpmt/internal/trace"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "slpmtbench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("experiment", "all", "experiment to run (fig8..fig14, headline, ablation, model, mixes, scaling, all)")
		n        = flag.Int("n", 1000, "insert operations per run")
		value    = flag.Int("value", 256, "value size in bytes")
		seed     = flag.Uint64("seed", 0, "key-stream seed (0 = default)")
		cores    = flag.Int("cores", 1, "simulated core count (scaling sweeps its own counts)")
		parallel = flag.Int("parallel", 0, "worker count for experiment grids (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "write machine-readable BENCH_<experiment>.json per experiment")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the sweep to this file")
		tracePth = flag.String("trace", "", "trace one run of -workload/-scheme and export events to this path (.json = Perfetto, .bin = binary)")
		sanitize = flag.Bool("sanitize", false, "replay one run of -workload/-scheme through the persist-order sanitizer (exit nonzero on violations)")
		workload = flag.String("workload", "hashtable", "workload for -trace/-sanitize mode")
		scheme   = flag.String("scheme", "SLPMT", "scheme for -trace/-sanitize mode")
	)
	flag.Parse()

	bench.SetParallelism(*parallel)
	base := bench.RunConfig{N: *n, ValueSize: *value, Seed: *seed, Verify: true, Cores: *cores}

	if *sanitize {
		base.Scheme = *scheme
		base.Workload = *workload
		return runSanitized(os.Stdout, base)
	}
	if *tracePth != "" {
		base.Scheme = *scheme
		base.Workload = *workload
		return runTraced(os.Stdout, base, *tracePth)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	// Run "all" one experiment at a time (matching experiments.Run's own
	// loop, blank line included) so -json can report each separately.
	names := []string{*exp}
	trailingBlank := false
	if *exp == "all" {
		names = experiments.Names()
		trailingBlank = true
	}
	for _, name := range names {
		if err := runOne(name, base, *jsonOut); err != nil {
			return err
		}
		if trailingBlank {
			fmt.Println()
		}
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("memprofile: %w", err)
		}
	}
	return nil
}

// runTraced executes one benchmark with the full-detail tracer
// attached, prints the reduced metrics, and exports the event stream to
// path (Perfetto JSON, or the binary format for a ".bin" suffix).
func runTraced(out io.Writer, cfg bench.RunConfig, path string) error {
	tr := trace.New(trace.DefaultCapacity)
	cfg.Trace = tr
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}

	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "traced run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "cycles: %d\n", r.Cycles)
	fmt.Fprintf(out, "events: %d captured, %d dropped\n\n", r.Summary.Events, r.Summary.Dropped)
	fmt.Fprint(out, r.Summary.String())
	if r.WPQ != nil {
		fmt.Fprintf(out, "\nWPQ occupancy over the run (high-water %dB, mean %dB):\n",
			r.Counters.WPQOccMaxBytes, r.Counters.WPQOccAvgBytes)
		fmt.Fprint(out, r.WPQ.String())
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		err = tr.WriteBinary(f)
	} else {
		err = trace.WritePerfetto(f, tr.Events(), trace.PerfettoOptions{})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s (%d events)\n", path, tr.Len())
	return nil
}

// runSanitized executes one benchmark with a sanitizer-masked tracer
// and replays the event stream through the persist-order checker. Any
// violation (or a truncated stream, which would make the replay
// unsound) is an error.
func runSanitized(out io.Writer, cfg bench.RunConfig) error {
	tr := trace.New(trace.DefaultCapacity)
	tr.SetMask(trace.SanitizeMask())
	cfg.Trace = tr
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}

	rep := trace.Sanitize(tr.Events(), tr.Dropped())
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "sanitized run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "events: %d replayed, %d transactions, %d aborts\n",
		rep.Events, rep.Transactions, rep.Aborts)
	if rep.Truncated {
		return fmt.Errorf("trace ring overflowed (%d events dropped); the replay is unsound — reduce -n", tr.Dropped())
	}
	if !rep.Clean() {
		for _, v := range rep.Violations {
			fmt.Fprintf(out, "violation: %s\n", v)
		}
		return fmt.Errorf("%d persist-order violations", rep.Total)
	}
	fmt.Fprintln(out, "persist-order sanitizer: 0 violations")
	return nil
}

// runOne executes one experiment, optionally collecting every benchmark
// result it produces into BENCH_<name>.json.
func runOne(name string, base bench.RunConfig, jsonOut bool) error {
	if !jsonOut {
		return experiments.Run(os.Stdout, name, base)
	}
	col := &bench.Collector{}
	bench.SetCollector(col)
	defer bench.SetCollector(nil)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := experiments.Run(os.Stdout, name, base)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return err
	}
	return writeReport(name, wall, &before, &after, col.Results())
}

// benchResult is the machine-readable form of one bench.Run outcome.
type benchResult struct {
	Scheme           string `json:"scheme"`
	Workload         string `json:"workload"`
	N                int    `json:"n"`
	ValueSize        int    `json:"value_size"`
	PMWriteNanos     uint64 `json:"pm_write_nanos,omitempty"`
	Banks            int    `json:"banks,omitempty"`
	WPQBytes         int    `json:"wpq_bytes,omitempty"`
	Seed             uint64 `json:"seed,omitempty"`
	Cores            int    `json:"cores,omitempty"`
	Cycles           uint64 `json:"cycles"`
	PMWriteBytesData uint64 `json:"pm_write_bytes_data"`
	PMWriteBytesLog  uint64 `json:"pm_write_bytes_log"`
	PMWriteBytes     uint64 `json:"pm_write_bytes"`
	TxCommits        uint64 `json:"tx_commits"`
	VerifyOK         bool   `json:"verify_ok"`

	// Interval metrics, present when the run carried a tracer (the
	// scaling experiment always does; see bench.RunConfig.Metrics).
	CommitLatencyP50 uint64 `json:"commit_latency_p50,omitempty"`
	CommitLatencyP95 uint64 `json:"commit_latency_p95,omitempty"`
	CommitLatencyP99 uint64 `json:"commit_latency_p99,omitempty"`
	LazyDrainP50     uint64 `json:"lazy_drain_p50,omitempty"`
	LazyDrainP95     uint64 `json:"lazy_drain_p95,omitempty"`
	LazyDrainP99     uint64 `json:"lazy_drain_p99,omitempty"`
	WPQOccMaxBytes   uint64 `json:"wpq_occ_max_bytes,omitempty"`
	WPQOccAvgBytes   uint64 `json:"wpq_occ_avg_bytes,omitempty"`
}

// benchReport is the top-level BENCH_<experiment>.json document.
type benchReport struct {
	Experiment  string        `json:"experiment"`
	Parallel    int           `json:"parallel"`
	WallMillis  float64       `json:"wall_ms"`
	Runs        int           `json:"runs"`
	TotalOps    uint64        `json:"total_ops"`
	AllocsPerOp float64       `json:"allocs_per_op"`
	BytesPerOp  float64       `json:"bytes_per_op"`
	Results     []benchResult `json:"results"`
}

func writeReport(name string, wall time.Duration, before, after *runtime.MemStats, results []bench.Result) error {
	rep := benchReport{
		Experiment: name,
		Parallel:   bench.Parallelism(),
		WallMillis: float64(wall.Microseconds()) / 1000,
		Runs:       len(results),
		Results:    make([]benchResult, 0, len(results)),
	}
	for _, r := range results {
		rep.TotalOps += uint64(r.N)
		rep.Results = append(rep.Results, benchResult{
			Scheme:           r.Scheme,
			Workload:         r.Workload,
			N:                r.N,
			ValueSize:        r.ValueSize,
			PMWriteNanos:     r.PMWriteNanos,
			Banks:            r.Banks,
			WPQBytes:         r.WPQBytes,
			Seed:             r.Seed,
			Cores:            r.Cores,
			Cycles:           r.Cycles,
			PMWriteBytesData: r.Counters.PMWriteBytesData,
			PMWriteBytesLog:  r.Counters.PMWriteBytesLog,
			PMWriteBytes:     r.PMWriteBytes(),
			TxCommits:        r.Counters.TxCommits,
			VerifyOK:         r.VerifyErr == nil,
			CommitLatencyP50: r.Summary.CommitP50,
			CommitLatencyP95: r.Summary.CommitP95,
			CommitLatencyP99: r.Summary.CommitP99,
			LazyDrainP50:     r.Summary.LazyP50,
			LazyDrainP95:     r.Summary.LazyP95,
			LazyDrainP99:     r.Summary.LazyP99,
			WPQOccMaxBytes:   r.Counters.WPQOccMaxBytes,
			WPQOccAvgBytes:   r.Counters.WPQOccAvgBytes,
		})
	}
	// The collector sees results in completion order, which varies with
	// the worker schedule; sort on the full config for stable files.
	sort.Slice(rep.Results, func(i, j int) bool {
		a, b := rep.Results[i], rep.Results[j]
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.ValueSize != b.ValueSize {
			return a.ValueSize < b.ValueSize
		}
		if a.PMWriteNanos != b.PMWriteNanos {
			return a.PMWriteNanos < b.PMWriteNanos
		}
		if a.Banks != b.Banks {
			return a.Banks < b.Banks
		}
		if a.WPQBytes != b.WPQBytes {
			return a.WPQBytes < b.WPQBytes
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.Seed < b.Seed
	})
	if rep.TotalOps > 0 {
		rep.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(rep.TotalOps)
		rep.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.TotalOps)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	path := "BENCH_" + name + ".json"
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d results, %.0f ms wall)\n", path, rep.Runs, rep.WallMillis)
	return nil
}
