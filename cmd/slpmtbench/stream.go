package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/critpath"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/trace/stream"
)

// runStreamed executes one benchmark with the streaming trace pipeline
// attached: the event stream spills into an SLPSEG01 binlog under dir
// (memory stays bounded by the spill ring plus one segment buffer),
// live telemetry snapshots land in telemetry.ndjson, and the printed
// metrics come from the online consumers. With sanitize the binlog is
// replayed through the persist-order checker, and dropped events are a
// hard error because the replay would be unsound. With crit the run
// additionally carries the causal critical-path analyzer (fed from the
// binlog) and the report lands on stdout and in dir/critpath.txt. With
// check the streamed reductions are additionally verified
// byte-for-byte against the in-memory analyses over the same binlog —
// the CI stream-check gate.
func runStreamed(out io.Writer, cfg bench.RunConfig, dir string, interval uint64, check, sanitize, crit bool, hotN int) error {
	cfg.StreamDir = dir
	cfg.StreamInterval = interval
	cfg.CritPath = crit
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}

	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "streamed run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "cycles: %d\n", r.Cycles)

	d, err := stream.Open(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "binlog: %d segments in %s, closed=%v\n", len(d.Segments()), dir, d.Closed())
	fmt.Fprintf(out, "events: %d captured, %d dropped\n", r.Summary.Events, r.Summary.Dropped)
	if r.Intervals != nil {
		fmt.Fprintf(out, "telemetry: %d intervals in %s\n",
			len(r.Intervals.Intervals), filepath.Join(dir, bench.TelemetryFile))
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, r.Summary.String())
	if r.WPQ != nil {
		fmt.Fprintf(out, "\nWPQ occupancy over the run (high-water %dB, mean %dB):\n",
			r.Counters.WPQOccMaxBytes, r.Counters.WPQOccAvgBytes)
		fmt.Fprint(out, r.WPQ.String())
	}

	if sanitize {
		if r.Summary.Dropped > 0 {
			return fmt.Errorf("streamed run dropped %d events; the sanitizer replay is unsound", r.Summary.Dropped)
		}
		zs := stream.NewSanitize()
		if _, err := stream.Feed(d, zs); err != nil {
			return err
		}
		rep := zs.Report(r.Summary.Dropped)
		fmt.Fprintf(out, "\nstreamed sanitizer: %d events replayed, %d transactions, %d aborts\n",
			rep.Events, rep.Transactions, rep.Aborts)
		if !rep.Clean() {
			for _, v := range rep.Violations {
				fmt.Fprintf(out, "violation: %s\n", v)
			}
			return fmt.Errorf("%d persist-order violations", rep.Total)
		}
		fmt.Fprintln(out, "persist-order sanitizer: 0 violations")
	}
	if crit {
		rep := r.CritPath.Render(hotN)
		fmt.Fprintf(out, "\nstreamed critical path (analyzer fed from the binlog):\n%s", rep)
		repPath := filepath.Join(dir, "critpath.txt")
		if err := os.WriteFile(repPath, []byte(rep), 0o644); err != nil {
			return fmt.Errorf("critpath report: %w", err)
		}
		fmt.Fprintf(out, "wrote %s\n", repPath)
	}
	if check {
		if err := streamCheck(out, d, r, hotN); err != nil {
			return err
		}
	}
	return nil
}

// streamCheck slurps the binlog back into memory and verifies that the
// run's streamed reductions match the in-memory analyses over the very
// same events. Any divergence is a bug in the streaming pipeline, not
// in the run.
func streamCheck(out io.Writer, d *stream.Dir, r bench.Result, hotN int) error {
	evs, st, err := d.Events()
	if err != nil {
		return fmt.Errorf("stream-check: %w", err)
	}
	if st.Torn != nil {
		return fmt.Errorf("stream-check: %v", st.Torn)
	}
	if want := trace.Summarize(evs, r.Summary.Dropped); r.Summary != want {
		return fmt.Errorf("stream-check: streamed summary diverges from in-memory:\nstreamed:\n%swant:\n%s",
			r.Summary.String(), want.String())
	}
	wantWPQ := trace.BucketWPQ(evs, 16)
	switch {
	case (r.WPQ == nil) != (wantWPQ == nil):
		return fmt.Errorf("stream-check: WPQ series presence differs from in-memory")
	case wantWPQ != nil && !reflect.DeepEqual(r.WPQ, wantWPQ):
		return fmt.Errorf("stream-check: streamed WPQ series diverges from in-memory:\nstreamed:\n%swant:\n%s",
			r.WPQ.String(), wantWPQ.String())
	}
	zs := stream.NewSanitize()
	if _, err := stream.Feed(d, zs); err != nil {
		return err
	}
	got := renderReport(zs.Report(r.Summary.Dropped))
	want := renderReport(trace.Sanitize(evs, r.Summary.Dropped))
	if got != want {
		return fmt.Errorf("stream-check: streamed sanitize report diverges from in-memory:\nstreamed:\n%swant:\n%s", got, want)
	}
	checked := "summary, WPQ, and sanitize"
	if r.CritPath != nil {
		// The streamed analysis came from feeding the binlog; recompute
		// from the slurped events and require the canonical reports to
		// byte-match.
		mem, err := critpath.Analyze(evs, r.Summary.Dropped)
		if err != nil {
			return fmt.Errorf("stream-check: in-memory critpath: %w", err)
		}
		if got, want := r.CritPath.Render(hotN), mem.Render(hotN); got != want {
			return fmt.Errorf("stream-check: streamed critpath analysis diverges from in-memory:\nstreamed:\n%swant:\n%s", got, want)
		}
		checked = "summary, WPQ, sanitize, and critpath"
	}
	fmt.Fprintf(out, "\nstream-check: %s byte-match in-memory over %d events (%d segments)\n",
		checked, st.Events, st.Segments)
	return nil
}

// renderReport flattens a sanitize report for byte comparison, with the
// violation set order-normalized (the sanitizer reports it in map
// order, which is explicitly order-independent).
func renderReport(rep *trace.Report) string {
	vs := append([]trace.Violation(nil), rep.Violations...)
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Index != vs[j].Index {
			return vs[i].Index < vs[j].Index
		}
		return vs[i].Detail < vs[j].Detail
	})
	s := fmt.Sprintf("events=%d tx=%d aborts=%d truncated=%v total=%d\n",
		rep.Events, rep.Transactions, rep.Aborts, rep.Truncated, rep.Total)
	for _, v := range vs {
		s += v.String() + "\n"
	}
	return s
}
