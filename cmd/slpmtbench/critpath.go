package main

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
)

// runCritPath executes one benchmark under the causal critical-path
// analyzer (full-detail tracer + cycle-attribution profile attached by
// the harness) and prints the canonical blame/slack/hot-line report.
func runCritPath(out io.Writer, cfg bench.RunConfig, hotN int) error {
	cfg.CritPath = true
	r := bench.Run(cfg)
	if r.VerifyErr != nil {
		return fmt.Errorf("%s/%s failed verification: %v", cfg.Scheme, cfg.Workload, r.VerifyErr)
	}
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	fmt.Fprintf(out, "critpath run: %s/%s n=%d value=%dB cores=%d seed=%d\n",
		cfg.Scheme, cfg.Workload, r.N, r.ValueSize, cores, cfg.Seed)
	fmt.Fprintf(out, "cycles: %d\n\n", r.Cycles)
	fmt.Fprint(out, r.CritPath.Render(hotN))
	return nil
}
