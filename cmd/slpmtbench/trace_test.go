package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// The acceptance path: a 2-core traced run must emit a Perfetto-loadable
// document with one named track per core and the WPQ counter track, and
// the text report must carry the latency histograms and WPQ series.
func TestTracedRunEmitsPerfettoSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	cfg := bench.RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 80, ValueSize: 64, Cores: 2, Verify: true}
	if err := runTraced(&out, cfg, path); err != nil {
		t.Fatalf("runTraced: %v", err)
	}

	for _, want := range []string{"commit latency (cycles): p50=", "WPQ occupancy over the run", "occ.max"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export holds no events")
	}
	threads := map[string]bool{}
	counter := 0
	spans := 0
	for _, m := range doc.TraceEvents {
		switch m["ph"] {
		case "M":
			if m["name"] == "thread_name" {
				threads[m["args"].(map[string]any)["name"].(string)] = true
			}
		case "C":
			counter++
		case "X":
			spans++
		}
	}
	if !threads["core 0"] || !threads["core 1"] {
		t.Errorf("per-core tracks missing: %v", threads)
	}
	if counter == 0 {
		t.Error("no WPQ counter-track samples exported")
	}
	if spans == 0 {
		t.Error("no transaction spans exported")
	}
}

// The binary export path round-trips through the same runTraced entry.
func TestTracedRunBinaryExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	var out bytes.Buffer
	cfg := bench.RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 20, ValueSize: 32, Verify: true}
	if err := runTraced(&out, cfg, path); err != nil {
		t.Fatalf("runTraced: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("SLPTRC01")) {
		t.Fatalf("binary export lacks the trace magic: %q", data[:8])
	}
}

// The scaling report's per-run entries must surface the interval
// metrics (commit percentiles and occupancy gauges) for every cell.
func TestScalingJSONCarriesIntervalMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the scaling sweep; skipped in -short")
	}
	doc := genReport(t, "scaling", bench.RunConfig{N: 32, ValueSize: 32, Verify: true})
	results := checkSchema(t, doc)
	for i, r := range results {
		m := r.(map[string]any)
		if _, ok := m["commit_latency_p50"]; !ok {
			t.Errorf("result %d missing commit_latency_p50", i)
		}
		if _, ok := m["wpq_occ_max_bytes"]; !ok {
			t.Errorf("result %d missing wpq_occ_max_bytes", i)
		}
	}
}
