// Command slpmtcrash runs crash-injection campaigns: it executes a
// workload repeatedly, crashing at successive persistent-memory write
// events, and verifies after each crash that recovery (undo-log
// application, structure fix-up, heap garbage collection) restores a
// durable state consistent with the committed transactions.
//
// Usage:
//
//	slpmtcrash -workload hashtable -scheme SLPMT -n 60 -stride 7
//	slpmtcrash -all              # every workload under SLPMT
//	slpmtcrash -cores 2 -seed 3  # 2-core cluster, alternate key stream
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/persistmem/slpmt/internal/recovery"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func main() {
	var (
		workload = flag.String("workload", "hashtable", fmt.Sprintf("workload %v", workloads.Names()))
		scheme   = flag.String("scheme", schemes.SLPMT, fmt.Sprintf("scheme %v", schemes.Names()))
		n        = flag.Int("n", 60, "insert operations per run")
		value    = flag.Int("value", 64, "value size in bytes")
		cores    = flag.Int("cores", 1, "simulated cores (crash points sweep the machine-wide persist total)")
		seed     = flag.Uint64("seed", 0, "seed for the deterministic operation stream")
		stride   = flag.Uint64("stride", 7, "crash every stride-th persist event")
		maxPts   = flag.Int("max", 0, "cap on crash points (0 = all)")
		mixed    = flag.Bool("mixed", false, "interleave updates and deletes with the inserts")
		all      = flag.Bool("all", false, "run every workload")
		parallel = flag.Int("parallel", 0, "workers for crash points (0 = GOMAXPROCS, 1 = serial; results identical)")
		sockets  = flag.Int("sockets", 0, "PM sockets: crash and recover on the multi-device sharded-heap topology (0 or 1 = single device)")
	)
	flag.Parse()

	targets := []string{*workload}
	if *all {
		targets = workloads.Names()
	}
	fail := false
	for _, w := range targets {
		res, err := recovery.RunCampaign(recovery.CampaignConfig{
			Workload:  w,
			Scheme:    *scheme,
			N:         *n,
			ValueSize: *value,
			Seed:      *seed,
			Cores:     *cores,
			Sockets:   *sockets,
			Mixed:     *mixed,
			Stride:    *stride,
			MaxPoints: *maxPts,
			Parallel:  *parallel,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%-10s FAIL: %v\n", w, err)
			fail = true
			continue
		}
		fmt.Printf("%-10s OK: %d crash points over %d persist events; %d undo records applied; "+
			"%d in-flight txns found durable; %d B leaked memory collected\n",
			w, res.PointsTested, res.TotalPersistEvents, res.RecordsApplied,
			res.PendingAccepted, res.LeakedBytes)
	}
	if fail {
		os.Exit(1)
	}
}
