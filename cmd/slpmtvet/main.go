// Command slpmtvet runs the simulator's custom static-analysis suite
// (internal/analyze) over the module in the current directory:
//
//   - determinism: no wall-clock reads, global math/rand, goroutine
//     spawns/selects, or unsorted map iteration in simulator-core
//     packages (internal/{engine,machine,cache,pmem,bench,experiments})
//   - noalloc: //slpmt:noalloc-annotated functions contain no
//     allocation sites (make/new/append/closures/literals/boxing)
//   - noalloc-escape: the compiler's own -gcflags=-m escape analysis
//     agrees nothing heap-allocates inside annotated functions
//   - trace-coverage: every trace.Kind is emitted, named, and
//     Perfetto-mapped; every stats.Counters field has a canonical row
//
// Usage:
//
//	slpmtvet [-escape=false] [packages...]
//
// With no package patterns, ./... is analyzed. Exits 1 if any
// diagnostic survives (findings are waivable line-by-line with
// //slpmt:<analyzer>-ok <reason> comments). Run it via `make vet`,
// which also runs go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/persistmem/slpmt/internal/analyze"
)

func main() {
	escape := flag.Bool("escape", true, "cross-check //slpmt:noalloc functions against go build -gcflags=-m")
	flag.Parse()

	patterns := flag.Args()
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	m, err := analyze.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}

	diags := analyze.Run(m,
		[]*analyze.Analyzer{analyze.Determinism, analyze.Noalloc},
		[]*analyze.ModuleAnalyzer{analyze.TraceCoverage},
		analyze.Options{},
	)
	if *escape {
		esc, err := analyze.CheckEscapes(m, patterns...)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, esc...)
	}

	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "slpmtvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Println("slpmtvet: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slpmtvet:", err)
	os.Exit(2)
}
