// Command slpmtvet runs the simulator's custom static-analysis suite
// (internal/analyze) over the module in the current directory:
//
//   - determinism: no wall-clock reads, global math/rand, goroutine
//     spawns/selects, or unsorted map iteration in simulator-core
//     packages (internal/{engine,machine,cache,pmem,bench,experiments})
//   - noalloc: //slpmt:noalloc-annotated functions contain no
//     allocation sites (make/new/append/closures/literals/boxing)
//   - noalloc-escape: the compiler's own -gcflags=-m escape analysis
//     agrees nothing heap-allocates inside annotated functions
//   - trace-coverage: every trace.Kind is emitted, named, and
//     Perfetto-mapped; every stats.Counters field has a canonical row
//   - chargeflow: Core.charge is the verified choke point for clock
//     advances (§9 conservation), every profile.Cause is reachable from
//     a charge site, and every SetCause restores the prior cause on all
//     paths
//   - obsonly: nothing reachable from trace/profile/report/stream
//     consumer entry points mutates simulation or package-level state
//   - waiver-audit: every //slpmt:<analyzer>-ok directive carries a
//     justification ('-ok: reason')
//
// The module is loaded and type-checked once; all analyzers share the
// typed package graph (and the chargeflow/obsonly passes share one
// interprocedural callgraph + effect-summary build) and run in
// parallel. -serial runs the passes sequentially for timing
// comparisons; -time prints phase wall times.
//
// Usage:
//
//	slpmtvet [-escape=false] [-serial] [-time] [packages...]
//
// With no package patterns, ./... is analyzed. Exits 1 if any
// diagnostic survives (findings are waivable line-by-line with
// //slpmt:<analyzer>-ok: <reason> comments). Run it via `make vet`,
// which also runs go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/persistmem/slpmt/internal/analyze"
)

func main() {
	escape := flag.Bool("escape", true, "cross-check //slpmt:noalloc functions against go build -gcflags=-m")
	serial := flag.Bool("serial", false, "run analyzer passes sequentially instead of in parallel")
	timing := flag.Bool("time", false, "print load/analyze/escape wall times to stderr")
	flag.Parse()

	patterns := flag.Args()
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	m, err := analyze.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	loadDone := time.Now()

	// The escape cross-check shells out to `go build`; overlap it with
	// the in-process analyzer passes.
	type escResult struct {
		diags []analyze.Diagnostic
		err   error
	}
	escCh := make(chan escResult, 1)
	if *escape {
		go func() {
			esc, err := analyze.CheckEscapes(m, patterns...)
			escCh <- escResult{esc, err}
		}()
	}

	diags := analyze.Run(m,
		[]*analyze.Analyzer{analyze.Determinism, analyze.Noalloc},
		[]*analyze.ModuleAnalyzer{
			analyze.TraceCoverage,
			analyze.Chargeflow,
			analyze.Obsonly,
			analyze.WaiverAudit,
		},
		analyze.Options{Serial: *serial},
	)
	runDone := time.Now()
	if *escape {
		res := <-escCh
		if res.err != nil {
			fatal(res.err)
		}
		diags = append(diags, res.diags...)
	}

	if *timing {
		fmt.Fprintf(os.Stderr, "slpmtvet: load %.2fs, analyze %.2fs, total %.2fs\n",
			loadDone.Sub(start).Seconds(), runDone.Sub(loadDone).Seconds(), time.Since(start).Seconds())
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "slpmtvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
	fmt.Println("slpmtvet: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slpmtvet:", err)
	os.Exit(2)
}
