package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRenderBaseline renders the committed scaling baseline — the
// acceptance path: a valid, self-contained HTML document with every
// section present.
func TestRenderBaseline(t *testing.T) {
	src := filepath.Join("..", "..", "baselines", "BENCH_scaling.json")
	if _, err := os.Stat(src); err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	out := filepath.Join(t.TempDir(), "report.html")
	if err := run(os.Stdout, []string{"-o", out, src}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	html := string(data)
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "experiment: scaling",
		"cycle attribution", "WPQ occupancy", "scheme vs scheme",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(html, banned) {
			t.Errorf("report is not self-contained: found %q", banned)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(os.Stdout, nil); err == nil {
		t.Error("no-args invocation succeeded")
	}
	if err := run(os.Stdout, []string{"no-such-file.json"}); err == nil {
		t.Error("missing input succeeded")
	}
}
