// Command slpmtreport renders one or more machine-readable
// BENCH_<experiment>.json documents (written by slpmtbench -json) into
// a single self-contained HTML run report: per-run summary tables,
// scheme-vs-scheme speedup deltas, commit- and lazy-drain latency
// percentiles, WPQ occupancy charts, and the cycle-attribution
// breakdowns with share bars. The output embeds all styling inline —
// no scripts, no external assets — so it can be archived as a CI
// artifact and opened anywhere.
//
// Usage:
//
//	slpmtreport -o report.html BENCH_headline.json BENCH_scaling.json
//	slpmtreport baselines/BENCH_*.json > report.html
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/persistmem/slpmt/internal/report"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "slpmtreport: %v\n", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, args []string) error {
	fs := flag.NewFlagSet("slpmtreport", flag.ContinueOnError)
	out := fs.String("o", "", "output path (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := fs.Args()
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH json files given (usage: slpmtreport [-o report.html] BENCH_*.json)")
	}
	reports := make([]report.Report, 0, len(paths))
	for _, p := range paths {
		rep, err := report.Load(p)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := report.RenderHTML(w, reports); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", *out, len(reports))
	}
	return nil
}
