#!/bin/sh
# check.sh - the repo's pre-merge gate: formatting, vet (go vet plus
# the slpmtvet analyzer suite), build, full test suite, race-detector
# passes, and a persist-order sanitizer replay of a 2-core run.
#
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== slpmtvet (determinism / noalloc / trace coverage) =="
go run ./cmd/slpmtvet

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race . ./internal/bench/ ./internal/machine/ ./internal/trace/...
go test -race ./internal/experiments/ \
	./internal/recovery/ -run 'Parallel|ForEach|Grid|RunAll|Collector|Smoke'

echo "== persist-order sanitizer =="
go run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 -sanitize

echo "== trace stream (binlog equivalence + streamed sanitizer) =="
go run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 \
	-trace-stream stream-out -stream-check -sanitize

echo "== critical path (streamed-vs-buffered byte-match + conservation) =="
go run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 \
	-trace-stream stream-out -stream-check -critpath -hotlines 10

echo "ALL CHECKS PASSED"
