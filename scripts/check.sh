#!/bin/sh
# check.sh - the repo's pre-merge gate: formatting, vet, build, full
# test suite, and a race-detector pass over the concurrent packages
# (the bench worker pool and everything built on it).
#
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent packages) =="
go test -race ./internal/bench/ ./internal/experiments/ \
	./internal/recovery/ -run 'Parallel|ForEach|Grid|RunAll|Collector|Smoke'

echo "ALL CHECKS PASSED"
