# Developer entry points. `make check` is the pre-merge gate.

GO ?= go

.PHONY: all build test race check bench fmt vet

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages that exercise the parallel
# experiment runner.
race:
	$(GO) test -race ./internal/bench/ ./internal/experiments/ \
		./internal/recovery/ -run 'Parallel|ForEach|Grid|RunAll|Collector|Smoke'

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Full gate: formatting, vet, build, tests, race subset.
check:
	./scripts/check.sh

# Micro-benchmarks for the simulator hot paths (allocations reported).
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/engine/ ./internal/ycsb/
