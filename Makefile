# Developer entry points. `make check` is the pre-merge gate.

GO ?= go

.PHONY: all build test race check bench microbench fmt vet sanitize \
	stream-check critpath baseline compare report

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass: full tests over the root package (cluster), the
# bench harness, the machine, and the tracer with its streaming binlog
# (double-buffered writer goroutine), plus the targeted subset that
# exercises the parallel experiment runner.
race:
	$(GO) test -race . ./internal/bench/ ./internal/machine/ ./internal/trace/...
	$(GO) test -race ./internal/experiments/ \
		./internal/recovery/ -run 'Parallel|ForEach|Grid|RunAll|Collector|Smoke'

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis: go vet plus the repo's own analyzer suite
# (determinism, noalloc + compiler escape cross-check, trace coverage;
# see internal/analyze and cmd/slpmtvet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/slpmtvet -time

# Replay a traced 2-core run through the persist-order sanitizer
# (internal/trace/sanitize.go): log-before-data, commit-marker order,
# WPQ FIFO, lazy-drain obligations. Zero violations required.
sanitize:
	$(GO) run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 -sanitize

# Streamed-trace equivalence gate: a 2-core hashtable run streams its
# trace into an SLPSEG01 binlog (stream-out/, with NDJSON telemetry),
# the binlog replays through the persist-order sanitizer, and the
# streamed Summary/Sanitize/WPQ reductions must byte-match the
# in-memory analyses over the same binlog. Nonzero exit on divergence.
stream-check:
	$(GO) run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 \
		-trace-stream stream-out -stream-check -sanitize

# Causal critical-path gate: the same streamed 2-core run carries the
# blocking-DAG analyzer fed from the binlog; -stream-check requires the
# streamed analysis to byte-match the in-memory replay, and the
# conservation contract (path length == makespan) is enforced inside
# the harness. The blame/slack/hot-line report lands in
# stream-out/critpath.txt for artifact upload.
critpath:
	$(GO) run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 \
		-trace-stream stream-out -stream-check -critpath -hotlines 10

# Full gate: formatting, vet, build, tests, race subset.
check:
	./scripts/check.sh

# Benchmark artifacts: the core-scaling sweep with interval metrics
# (BENCH_scaling.json) plus one traced 2-core sample run whose Perfetto
# export (sample-trace.json) opens in ui.perfetto.dev. Sized to finish
# in CI minutes; raise -n locally for paper-scale numbers.
bench:
	$(GO) run ./cmd/slpmtbench -experiment scaling -n 300 -value 64 -json
	$(GO) run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 \
		-trace sample-trace.json

# Micro-benchmarks for the simulator hot paths (allocations reported),
# including the tracer's disabled/enabled emit costs.
microbench:
	$(GO) test -run xxx -bench . -benchmem ./internal/engine/ ./internal/ycsb/ \
		./internal/trace/

# Experiments gated by the perf-regression baseline (default flag
# parameters: n=1000, value=256, seed=0 — what `-compare baselines/`
# reproduces).
BASELINE_EXPERIMENTS := headline scaling fig8 window numa

# Regenerate the committed perf-regression baselines. Run after an
# intentional model change (and eyeball the diff before committing).
baseline:
	@mkdir -p baselines
	@for e in $(BASELINE_EXPERIMENTS); do \
		$(GO) run ./cmd/slpmtbench -experiment $$e -json || exit 1; \
		mv BENCH_$$e.json baselines/BENCH_$$e.json; \
	done
	@echo "refreshed baselines/: $(BASELINE_EXPERIMENTS)"

# Perf-regression gate: rerun the gated experiments and diff every
# metric (cycles, traffic, percentiles, cycles_by_cause) against the
# committed baselines with per-metric tolerances. Nonzero exit on
# drift.
compare:
	@for e in $(BASELINE_EXPERIMENTS); do \
		$(GO) run ./cmd/slpmtbench -experiment $$e -json -compare baselines/ || exit 1; \
	done

# Self-contained HTML run report rendered from the committed baselines
# (swap in fresh BENCH_*.json files to report on a local run).
report:
	$(GO) run ./cmd/slpmtreport -o report.html baselines/BENCH_headline.json \
		baselines/BENCH_scaling.json baselines/BENCH_fig8.json \
		baselines/BENCH_window.json baselines/BENCH_numa.json
