# Developer entry points. `make check` is the pre-merge gate.

GO ?= go

.PHONY: all build test race check bench microbench fmt vet sanitize

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass: full tests over the root package (cluster), the
# bench harness, the machine, and the tracer, plus the targeted subset
# that exercises the parallel experiment runner.
race:
	$(GO) test -race . ./internal/bench/ ./internal/machine/ ./internal/trace/
	$(GO) test -race ./internal/experiments/ \
		./internal/recovery/ -run 'Parallel|ForEach|Grid|RunAll|Collector|Smoke'

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis: go vet plus the repo's own analyzer suite
# (determinism, noalloc + compiler escape cross-check, trace coverage;
# see internal/analyze and cmd/slpmtvet).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/slpmtvet

# Replay a traced 2-core run through the persist-order sanitizer
# (internal/trace/sanitize.go): log-before-data, commit-marker order,
# WPQ FIFO, lazy-drain obligations. Zero violations required.
sanitize:
	$(GO) run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 -sanitize

# Full gate: formatting, vet, build, tests, race subset.
check:
	./scripts/check.sh

# Benchmark artifacts: the core-scaling sweep with interval metrics
# (BENCH_scaling.json) plus one traced 2-core sample run whose Perfetto
# export (sample-trace.json) opens in ui.perfetto.dev. Sized to finish
# in CI minutes; raise -n locally for paper-scale numbers.
bench:
	$(GO) run ./cmd/slpmtbench -experiment scaling -n 300 -value 64 -json
	$(GO) run ./cmd/slpmtbench -workload hashtable -cores 2 -n 300 -value 64 \
		-trace sample-trace.json

# Micro-benchmarks for the simulator hot paths (allocations reported),
# including the tracer's disabled/enabled emit costs.
microbench:
	$(GO) test -run xxx -bench . -benchmem ./internal/engine/ ./internal/ycsb/ \
		./internal/trace/
