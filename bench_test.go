package slpmt_test

// One testing.B benchmark per paper figure/table. Each benchmark runs
// the corresponding experiment grid once per iteration and reports the
// paper's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every evaluation result. Iteration counts are naturally 1
// (the simulations are deterministic); the interesting output is the
// custom metrics (speedup-x, traffic-cut-%), not ns/op.

import (
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// benchCfg is the paper's workload configuration (1000 ops, 256 B).
func benchCfg() bench.RunConfig { return bench.RunConfig{N: 1000, ValueSize: 256} }

// speedupOver runs scheme and base on workload w, reporting base/scheme.
func speedupOver(b *testing.B, baseScheme, scheme, w string, cfg bench.RunConfig) float64 {
	b.Helper()
	cfgB := cfg
	cfgB.Scheme = baseScheme
	cfgB.Workload = w
	base := bench.Run(cfgB)
	cfgS := cfg
	cfgS.Scheme = scheme
	cfgS.Workload = w
	r := bench.Run(cfgS)
	if r.VerifyErr != nil || base.VerifyErr != nil {
		b.Fatalf("verification failed: %v / %v", base.VerifyErr, r.VerifyErr)
	}
	return bench.Speedup(base, r)
}

// BenchmarkFig8Kernels reproduces Figure 8: SLPMT speedup over the FG
// baseline on the four kernel benchmarks (geometric mean as the metric).
func BenchmarkFig8Kernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		cfg := benchCfg()
		cfg.Verify = true
		for _, w := range workloads.Kernels() {
			sp = append(sp, speedupOver(b, schemes.FG, schemes.SLPMT, w, cfg))
		}
		b.ReportMetric(bench.GeoMean(sp), "speedup-x")
	}
}

// BenchmarkFig8VsPrior reproduces the Figure 8 cross-design comparison:
// SLPMT over ATOM and EDE.
func BenchmarkFig8VsPrior(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var vsAtom, vsEde []float64
		for _, w := range workloads.Kernels() {
			vsAtom = append(vsAtom, speedupOver(b, schemes.ATOM, schemes.SLPMT, w, benchCfg()))
			vsEde = append(vsEde, speedupOver(b, schemes.EDE, schemes.SLPMT, w, benchCfg()))
		}
		b.ReportMetric(bench.GeoMean(vsAtom), "vs-ATOM-x")
		b.ReportMetric(bench.GeoMean(vsEde), "vs-EDE-x")
	}
}

// BenchmarkFig8Traffic reproduces Figure 8 (right): PM write-traffic
// reduction of SLPMT over FG.
func BenchmarkFig8Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var red float64
		for _, w := range workloads.Kernels() {
			cfg := benchCfg()
			cfg.Workload = w
			cfg.Scheme = schemes.FG
			base := bench.Run(cfg)
			cfg.Scheme = schemes.SLPMT
			r := bench.Run(cfg)
			red += bench.TrafficReduction(base, r)
		}
		b.ReportMetric(100*red/float64(len(workloads.Kernels())), "traffic-cut-%")
	}
}

// BenchmarkFig9LineGranularity reproduces Figure 9: SLPMT restricted to
// cache-line-granularity logging versus the line-granularity baseline.
func BenchmarkFig9LineGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, w := range workloads.Kernels() {
			sp = append(sp, speedupOver(b, schemes.ATOM, schemes.SLPMTCL, w, benchCfg()))
		}
		b.ReportMetric(bench.GeoMean(sp), "speedup-x")
	}
}

// BenchmarkFig10SmallValues reproduces the Figure 10 endpoint: SLPMT
// speedup at the smallest (16-byte) value size.
func BenchmarkFig10SmallValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		cfg := benchCfg()
		cfg.ValueSize = 16
		for _, w := range workloads.Kernels() {
			sp = append(sp, speedupOver(b, schemes.FG, schemes.SLPMT, w, cfg))
		}
		b.ReportMetric(bench.GeoMean(sp), "speedup-x-16B")
	}
}

// BenchmarkFig11TrafficVsValueSize reproduces Figure 11's headline:
// bytes saved grow with the value size (reported at 256 B).
func BenchmarkFig11TrafficVsValueSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var saved float64
		for _, w := range workloads.Kernels() {
			cfg := benchCfg()
			cfg.Workload = w
			cfg.Scheme = schemes.FG
			base := bench.Run(cfg)
			cfg.Scheme = schemes.SLPMT
			r := bench.Run(cfg)
			saved += float64(base.PMWriteBytes()) - float64(r.PMWriteBytes())
		}
		b.ReportMetric(saved/1024/float64(len(workloads.Kernels())), "KiB-saved")
	}
}

// BenchmarkFig12WriteLatency reproduces Figure 12's most sensitive
// point: the hashtable's SLPMT speedup at a 2300 ns PM write latency
// (CXL-class byte-addressable storage).
func BenchmarkFig12WriteLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchCfg()
		cfg.PMWriteNanos = 2300
		b.ReportMetric(speedupOver(b, schemes.FG, schemes.SLPMT, "hashtable", cfg), "speedup-x-2300ns")
	}
}

// BenchmarkFig14PMKV reproduces Figure 14: SLPMT speedup over ATOM and
// EDE on the key-value store backends at 256-byte values.
func BenchmarkFig14PMKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var vsAtom, vsEde []float64
		for _, w := range workloads.PMKV() {
			vsAtom = append(vsAtom, speedupOver(b, schemes.ATOM, schemes.SLPMT, w, benchCfg()))
			vsEde = append(vsEde, speedupOver(b, schemes.EDE, schemes.SLPMT, w, benchCfg()))
		}
		b.ReportMetric(bench.GeoMean(vsAtom), "vs-ATOM-x")
		b.ReportMetric(bench.GeoMean(vsEde), "vs-EDE-x")
	}
}

// BenchmarkHeadline reproduces the abstract's number: SLPMT vs prior
// hardware persistent-memory transactions across all six benchmarks.
func BenchmarkHeadline(b *testing.B) {
	all := append(append([]string{}, workloads.Kernels()...), workloads.PMKV()...)
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, w := range all {
			sp = append(sp,
				speedupOver(b, schemes.ATOM, schemes.SLPMT, w, benchCfg()),
				speedupOver(b, schemes.EDE, schemes.SLPMT, w, benchCfg()))
		}
		b.ReportMetric(bench.GeoMean(sp), "speedup-x")
	}
}

// BenchmarkAblationSpeculative measures the §III-B1 speculative-logging
// option against stock SLPMT.
func BenchmarkAblationSpeculative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, w := range workloads.Kernels() {
			sp = append(sp, speedupOver(b, schemes.SLPMT, schemes.SLPMTSpec, w, benchCfg()))
		}
		b.ReportMetric(bench.GeoMean(sp), "spec-vs-slpmt-x")
	}
}

// BenchmarkAblationRedo measures the Figure 4 redo ordering against
// undo under identical annotations.
func BenchmarkAblationRedo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, w := range workloads.Kernels() {
			sp = append(sp, speedupOver(b, schemes.SLPMT, schemes.SLPMTRedo, w, benchCfg()))
		}
		b.ReportMetric(bench.GeoMean(sp), "redo-vs-undo-x")
	}
}

// BenchmarkSimulatorThroughput reports the simulator's own speed:
// simulated cycles per wall-clock second for the FG hashtable run (a
// plain performance benchmark of this library, not a paper figure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchCfg()
	cfg.Scheme = schemes.FG
	cfg.Workload = "hashtable"
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cycles += bench.Run(cfg).Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Msimcycles/s")
}
