// Package slpmt is a software reproduction of "Reconciling Selective
// Logging and Hardware Persistent Memory Transaction" (HPCA 2023): a
// cycle-approximate simulator of hardware persistent-memory transactions
// with the paper's storeT ISA extension, fine-grain logging, and lazy
// persistency, together with the baseline designs it is evaluated
// against (FG, ATOM, EDE).
//
// The top-level API is the System: one simulated core, its cache
// hierarchy, a persistent-memory device, a transaction engine configured
// as one of the named schemes, and a persistent heap. Durable
// transactions run through Update:
//
//	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
//	sys.Update(func(tx *slpmt.Tx) error {
//	    node := tx.Alloc(24)
//	    tx.StoreTU64(node+0, key, slpmt.LogFree)   // fresh memory: no log
//	    tx.StoreTU64(node+8, val, slpmt.LogFree)
//	    head := tx.LoadU64(root)
//	    tx.StoreTU64(node+16, head, slpmt.LogFree) // next pointer
//	    tx.StoreU64(root, uint64(node))            // link: logged store
//	    return nil
//	})
//
// Execution is fully simulated: time (cycles), persistent-memory write
// traffic, cache behaviour, and the durable memory image (for crash and
// recovery testing) are all observable. See the internal packages for
// the architecture and DESIGN.md for the paper-to-code map.
//
// NewCluster builds the multi-core variant: N Systems, one per core,
// over a shared LLC, PM device, and persistent heap, with MESI-lite
// coherence and cross-core conflict detection; Interleave runs their
// transaction streams under a deterministic scheduler. A 1-core
// Cluster behaves identically to a System.
package slpmt

import (
	"fmt"
	"runtime"

	"github.com/persistmem/slpmt/internal/engine"
	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/stats"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/txheap"
)

// Addr is a simulated persistent-memory address.
type Addr = mem.Addr

// Attr carries the storeT operand bits (lazy, log-free).
type Attr = isa.Attr

// Store annotations (see Table I of the paper).
var (
	// Plain is conventional behaviour: logged, persisted at commit.
	Plain = isa.Plain
	// LogFree marks data recoverable without a log (e.g. stores into
	// freshly allocated memory): persisted at commit, never logged.
	LogFree = isa.LogFree
	// LazyLogFree marks data both log-free and lazily persistent: it
	// may stay in the cache past commit and is rebuilt by recovery.
	LazyLogFree = isa.LazyLogFree
	// LazyLogged keeps the log record but defers the data persist; the
	// record is discarded at commit if the line is still cached.
	LazyLogged = isa.LazyLogged
)

// Options configures a System.
type Options struct {
	// Scheme is the hardware design to model; one of the names in
	// Schemes(). Default "SLPMT".
	Scheme string
	// Machine overrides the simulated platform (zero = the paper's
	// Table III configuration).
	Machine machine.Config
	// PMWriteNanos overrides the persistent-memory write latency in
	// nanoseconds (the Figure 12 sensitivity knob). Zero = 500 ns.
	PMWriteNanos uint64
	// ComputeCyclesPerOp adds a fixed compute cost to every Load/Store,
	// modelling the workload's non-memory work. Zero = 1 cycle.
	ComputeCyclesPerOp uint64
	// AllocCycles is the modelled cost of a heap operation.
	AllocCycles uint64
	// Sockets is the number of PM sockets (NUMA nodes) of the simulated
	// platform: each socket is its own device (WPQ, banks, drain clock)
	// behind a hop-linear interconnect distance matrix, and each core is
	// pinned to home socket core%Sockets. 0 or 1 models the single-device
	// machine, byte-identical to builds without the topology.
	Sockets int
	// RemoteNanos overrides the per-hop interconnect latency a remote
	// persist enqueue pays, in nanoseconds; remote line fills pay twice
	// that (reads cross the interconnect both ways). Zero keeps the
	// defaults (pmem.DefaultRemoteEnqueueCycles/ReadCycles). Only
	// meaningful with Sockets > 1.
	RemoteNanos uint64
	// CommitWindow is the group-commit window W: the engine batches the
	// ordering persists of up to W committed transactions into one
	// epoch close (see engine.Config.CommitWindow). 0 or 1 = the
	// per-transaction protocol.
	CommitWindow int
	// EpochCycleBudget force-closes an open epoch at the next commit
	// after this many cycles, bounding commit-to-durability latency
	// under group commit. 0 disables the budget.
	EpochCycleBudget uint64
	// Trace, when non-nil, attaches a cycle-level event tracer to the
	// simulated machine (see internal/trace). Tracing is observation
	// only: it never changes timing or counters.
	Trace *trace.Tracer
	// Profile, when non-nil, attaches a cycle-attribution profile to the
	// simulated machine (see internal/profile): every clock advance is
	// charged to one cause, and the per-core sums equal the clock totals
	// exactly. Observation only, like Trace.
	Profile *profile.Profile
}

// Schemes returns the available scheme names.
func Schemes() []string { return schemes.Names() }

// EvaluatedSchemes returns the paper's main comparison set (Figure 8).
func EvaluatedSchemes() []string { return schemes.Evaluated() }

// System is one simulated core with a transaction engine and a
// persistent heap. Not safe for concurrent use. Systems of a
// multi-core platform (see NewCluster) share the heap, the LLC and the
// PM device with their sibling cores.
type System struct {
	Eng  *engine.Engine
	Mach *machine.Core
	Heap *txheap.Heap

	scheme string
	rec    Recorder
	inTx   bool
	modes  systemModes
}

// systemModes holds execution-mode flags.
type systemModes struct {
	// strip makes every StoreT execute as a plain store while still
	// reporting the manual annotation to the Recorder — the mode the
	// compiler tooling uses to capture an un-annotated trace.
	strip bool
}

// resolve maps Options to the engine and machine configurations.
func (opts Options) resolve() (string, engine.Config, machine.Config) {
	name := opts.Scheme
	if name == "" {
		name = schemes.SLPMT
	}
	cfg, err := schemes.Lookup(name)
	if err != nil {
		panic(err)
	}
	if opts.ComputeCyclesPerOp == 0 {
		opts.ComputeCyclesPerOp = 1
	}
	cfg.ComputeCyclesPerOp = opts.ComputeCyclesPerOp
	cfg.CommitWindow = opts.CommitWindow
	cfg.EpochCycleBudget = opts.EpochCycleBudget
	mc := opts.Machine
	if opts.PMWriteNanos != 0 {
		mc.PM.WriteCycles = opts.PMWriteNanos * pmem.CyclesPerNs
	}
	if opts.Sockets > 1 {
		mc.Sockets = opts.Sockets
	}
	if opts.RemoteNanos != 0 {
		mc.RemoteEnqueueCycles = opts.RemoteNanos * pmem.CyclesPerNs
		mc.RemoteReadCycles = 2 * opts.RemoteNanos * pmem.CyclesPerNs
	}
	if opts.Trace != nil {
		mc.Trace = opts.Trace
	}
	if opts.Profile != nil {
		mc.Profile = opts.Profile
	}
	return name, cfg, mc
}

// New builds a single-core System for the given options.
func New(opts Options) *System {
	name, cfg, mc := opts.resolve()
	m := machine.New(mc)
	c := m.Core(0)
	e := engine.New(c, cfg)
	var h *txheap.Heap
	if m.Topo.Sockets() > 1 {
		// Multi-socket layouts carve per-core arenas; even one core
		// allocates through the sharded handle so its objects land on
		// its home socket's stripe.
		h = txheap.NewSharded([]txheap.Ticker{c}, []mem.Layout{c.Layout}, opts.AllocCycles)[0]
	} else {
		h = txheap.New(c, c.Layout, opts.AllocCycles)
	}
	if cfg.CommitWindow > 1 {
		// Committed frees stay quarantined until their epoch's commit
		// point is durable — reuse inside the window would scribble
		// log-free stores over blocks the durable state still reaches.
		h.EpochQuarantine(true)
		e.SetEpochCloseHook(h.ReleaseEpochFrees)
	}
	return &System{Eng: e, Mach: c, Heap: h, scheme: name}
}

// Scheme returns the scheme name the system models.
func (s *System) Scheme() string { return s.scheme }

// Stats returns the live counters (mutated as simulation proceeds).
func (s *System) Stats() *stats.Counters { return s.Mach.Stats }

// Cycles returns the simulated time so far.
func (s *System) Cycles() uint64 { return s.Mach.Clk }

// Layout returns the persistent-memory address map.
func (s *System) Layout() mem.Layout { return s.Mach.Layout }

// Recorder observes the transactional operations a workload performs;
// the compiler tooling uses it to capture a transaction IR (§IV).
type Recorder interface {
	RecBegin(seq uint64)
	RecCommit()
	RecAbort()
	RecAlloc(addr Addr, size uint64)
	RecFree(addr Addr)
	RecLoad(addr Addr, size int)
	RecStore(addr Addr, data []byte, kind isa.Kind, attr Attr, site uintptr)
	RecCopy(dst, src Addr, size int, kind isa.Kind, attr Attr, site uintptr)
}

// AttachRecorder installs (or, with nil, removes) a Recorder.
func (s *System) AttachRecorder(r Recorder) { s.rec = r }

// SetStrip enables or disables annotation stripping: when on, every
// StoreT executes as a plain store while its manual annotation is still
// reported to the Recorder. The compiler tooling uses this to capture
// un-annotated traces (§IV).
func (s *System) SetStrip(on bool) { s.modes.strip = on }

// Tx is a handle on the current durable transaction. It is only valid
// inside the Update or View callback that received it.
type Tx struct {
	s  *System
	ro bool
}

// Update runs fn inside a durable transaction. If fn returns an error
// the transaction aborts: logged updates are rolled back by the
// hardware, heap allocations are returned, and the error is returned to
// the caller (log-free updates must be repaired by the caller's own
// recovery logic, per the paper's contract).
func (s *System) Update(fn func(tx *Tx) error) error {
	if s.inTx {
		panic("slpmt: nested Update")
	}
	s.inTx = true
	defer func() { s.inTx = false }()
	s.Eng.Begin()
	s.Heap.BeginTx()
	if s.rec != nil {
		s.rec.RecBegin(s.Eng.Seq())
	}
	tx := &Tx{s: s}
	if err := fn(tx); err != nil {
		s.Eng.Abort()
		s.Heap.AbortTx()
		if s.rec != nil {
			s.rec.RecAbort()
		}
		return err
	}
	s.Eng.Commit()
	s.Heap.CommitTx()
	if s.rec != nil {
		s.rec.RecCommit()
	}
	return nil
}

// View runs fn with read-only access outside any transaction (loads are
// timed and lazy-persistency checks apply; stores panic).
func (s *System) View(fn func(tx *Tx)) {
	if s.inTx {
		panic("slpmt: View inside Update")
	}
	fn(&Tx{s: s, ro: true})
}

// DrainLazy forces every deferred (lazily persistent) line to PM — the
// effect of running four empty transactions. Harnesses call it at the
// end of the measured region.
func (s *System) DrainLazy() { s.Eng.DrainLazy() }

// FinishEpoch force-closes the open group-commit epoch so every
// committed transaction is durable. A no-op without a commit window.
// Harnesses call it at durability boundaries (e.g. after a setup
// phase, before taking a crash snapshot).
func (s *System) FinishEpoch() { s.Eng.FinishEpoch() }

// Alloc allocates size bytes of persistent memory.
func (tx *Tx) Alloc(size uint64) Addr {
	tx.mutcheck()
	a := tx.s.Heap.Alloc(size)
	if tx.s.rec != nil {
		tx.s.rec.RecAlloc(a, size)
	}
	return a
}

// Free releases a block (quarantined until commit).
func (tx *Tx) Free(addr Addr) {
	tx.mutcheck()
	tx.s.Heap.Free(addr)
	if tx.s.rec != nil {
		tx.s.rec.RecFree(addr)
	}
}

func (tx *Tx) mutcheck() {
	if tx.ro {
		panic("slpmt: mutation in read-only View")
	}
}

// Load reads len(p) bytes at addr.
func (tx *Tx) Load(addr Addr, p []byte) {
	tx.s.Eng.Load(addr, p)
	if tx.s.rec != nil {
		tx.s.rec.RecLoad(addr, len(p))
	}
}

// LoadU64 reads one 64-bit word.
func (tx *Tx) LoadU64(addr Addr) uint64 {
	v := tx.s.Eng.LoadU64(addr)
	if tx.s.rec != nil {
		tx.s.rec.RecLoad(addr, 8)
	}
	return v
}

// Store performs a conventional (logged, eagerly persisted) store.
func (tx *Tx) Store(addr Addr, p []byte) {
	tx.mutcheck()
	tx.s.Eng.Store(addr, p, isa.Store, isa.Plain)
	if tx.s.rec != nil {
		tx.s.rec.RecStore(addr, cloneBytes(p), isa.Store, isa.Plain, callSite())
	}
}

// StoreU64 is Store for one 64-bit word.
func (tx *Tx) StoreU64(addr Addr, v uint64) {
	tx.mutcheck()
	tx.s.Eng.StoreU64(addr, v, isa.Store, isa.Plain)
	if tx.s.rec != nil {
		tx.s.rec.RecStore(addr, u64bytes(v), isa.Store, isa.Plain, callSite())
	}
}

// StoreT performs a storeT with the given annotation. Under schemes
// that do not honour the annotation (FG, ATOM, EDE) it behaves exactly
// like Store.
func (tx *Tx) StoreT(addr Addr, p []byte, attr Attr) {
	tx.mutcheck()
	kind, a := tx.effective(attr)
	tx.s.Eng.Store(addr, p, kind, a)
	if tx.s.rec != nil {
		tx.s.rec.RecStore(addr, cloneBytes(p), isa.StoreT, attr, callSite())
	}
}

// StoreTU64 is StoreT for one 64-bit word.
func (tx *Tx) StoreTU64(addr Addr, v uint64, attr Attr) {
	tx.mutcheck()
	kind, a := tx.effective(attr)
	tx.s.Eng.StoreU64(addr, v, kind, a)
	if tx.s.rec != nil {
		tx.s.rec.RecStore(addr, u64bytes(v), isa.StoreT, attr, callSite())
	}
}

// Copy moves size bytes from src to dst (a load followed by a store
// with the given annotation). Its explicit source provenance is what
// the compiler's Pattern 2 analysis keys on.
func (tx *Tx) Copy(dst, src Addr, size int, attr Attr) {
	tx.mutcheck()
	buf := make([]byte, size)
	tx.s.Eng.Load(src, buf)
	kind, a := tx.effective(attr)
	tx.s.Eng.Store(dst, buf, kind, a)
	if tx.s.rec != nil {
		tx.s.rec.RecCopy(dst, src, size, isa.StoreT, attr, callSite())
	}
}

// CopyU64 is Copy for one word.
func (tx *Tx) CopyU64(dst, src Addr, attr Attr) { tx.Copy(dst, src, 8, attr) }

// effective maps an annotation to the executed instruction, honouring
// the system's strip mode (the compiler tooling records manual
// annotations while executing plain stores).
func (tx *Tx) effective(attr Attr) (isa.Kind, Attr) {
	if tx.s.modes.strip {
		return isa.Store, isa.Plain
	}
	if attr == isa.Plain {
		return isa.StoreT, attr // storeT with clear operands == store
	}
	return isa.StoreT, attr
}

// SetRoot stores a root-directory pointer (slot 0..511), visible to
// recovery. Logged like any other store.
func (tx *Tx) SetRoot(slot int, v uint64) {
	tx.mutcheck()
	a := tx.s.rootAddr(slot)
	tx.s.Eng.StoreU64(a, v, isa.Store, isa.Plain)
	if tx.s.rec != nil {
		tx.s.rec.RecStore(a, u64bytes(v), isa.Store, isa.Plain, callSite())
	}
}

// Root loads a root-directory pointer.
func (tx *Tx) Root(slot int) uint64 {
	a := tx.s.rootAddr(slot)
	v := tx.s.Eng.LoadU64(a)
	if tx.s.rec != nil {
		tx.s.rec.RecLoad(a, 8)
	}
	return v
}

func (s *System) rootAddr(slot int) Addr {
	// The directory's top line is the group-commit descriptor
	// (Layout.GroupDesc); its slots are out of application reach.
	if slot < 0 || slot >= int((s.Mach.Layout.RootSize-mem.LineSize)/8) {
		panic(fmt.Sprintf("slpmt: root slot %d out of range", slot))
	}
	return s.Mach.Layout.RootBase + Addr(slot*8)
}

func cloneBytes(p []byte) []byte {
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

func u64bytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(i)))
	}
	return b
}

// callSite returns the PC of the workload code performing the store,
// identifying the source-level "variable" for the compiler coverage
// comparison (Figure 13).
func callSite() uintptr {
	pc, _, _, ok := runtime.Caller(2)
	if !ok {
		return 0
	}
	return pc
}
