package slpmt

import (
	"github.com/persistmem/slpmt/internal/engine"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/stats"
	"github.com/persistmem/slpmt/internal/txheap"
)

// Cluster is a multi-core simulated platform: one System per core, all
// sharing the LLC, the persistent-memory device (and its write pending
// queue), and one persistent heap — or, with Options.Sockets > 1, a
// socket-per-device topology with a per-core sharded heap (each core
// allocating from its home socket's arena). Each core runs its own
// transaction
// engine with a private log region; cross-engine conflicts are detected
// through the coherence bus — a remote store checks every other
// engine's retained-transaction signatures and forces lazy drains on a
// hit (§III-C3 applied across cores).
//
// Execution is simulated on one OS thread by deterministically
// interleaving the cores at transaction granularity (see Interleave),
// so multi-core runs are exactly reproducible.
type Cluster struct {
	// Plat is the shared platform (LLC, PM device, cores).
	Plat *machine.Machine
	// Sys holds one System per core.
	Sys []*System

	tick tickMux
}

// tickMux charges heap-operation cycles to whichever core is currently
// executing; the shared txheap sees one Ticker.
type tickMux struct{ c *machine.Core }

func (t *tickMux) Tick(n uint64) { t.c.Tick(n) }

// NewCluster builds a platform with the given core count. Every core
// runs the same scheme. NewCluster(1, opts) is timing-equivalent to
// New(opts).
func NewCluster(cores int, opts Options) *Cluster {
	if cores < 1 {
		cores = 1
	}
	name, cfg, mc := opts.resolve()
	mc.Cores = cores
	plat := machine.New(mc)
	cl := &Cluster{Plat: plat}
	cl.tick.c = plat.Core(0)
	var heaps []*txheap.Heap
	if plat.Topo.Sockets() > 1 {
		// Sharded heap: one handle per core, allocating from the core's
		// home-socket arena with a shared global fallback. Each handle
		// charges its own core's clock, so the classic tickMux routing
		// is unnecessary on this path.
		clks := make([]txheap.Ticker, cores)
		layouts := make([]mem.Layout, cores)
		for i := 0; i < cores; i++ {
			clks[i] = plat.Core(i)
			layouts[i] = plat.Core(i).Layout
		}
		heaps = txheap.NewSharded(clks, layouts, opts.AllocCycles)
	} else {
		shared := txheap.New(&cl.tick, plat.Layout, opts.AllocCycles)
		heaps = make([]*txheap.Heap, cores)
		for i := range heaps {
			heaps[i] = shared
		}
	}
	engines := make([]*engine.Engine, cores)
	for i := 0; i < cores; i++ {
		c := plat.Core(i)
		e := engine.New(c, cfg)
		engines[i] = e
		heap := heaps[i]
		if cfg.CommitWindow > 1 {
			// See New: epoch-quarantined frees release only once the
			// freeing epoch's commit point is durable. Group closes seal
			// every core's epoch together, so releasing the shared
			// heap's parked frees at any engine's close is sound. On a
			// sharded heap each engine's close releases its own
			// handle's frees; sibling handles' frees wait for their own
			// core's close, which only lengthens the quarantine
			// (conservative, still sound).
			heap.EpochQuarantine(true)
			e.SetEpochCloseHook(heap.ReleaseEpochFrees)
		}
		cl.Sys = append(cl.Sys, &System{Eng: e, Mach: c, Heap: heap, scheme: name})
	}
	plat.OnRemoteStore = func(src int, line mem.Addr) {
		for i, e := range engines {
			if i != src {
				e.CoherenceStore(line)
			}
		}
	}
	if cfg.CommitWindow > 1 && cores > 1 {
		// Transactions on different cores exchange cache lines inside a
		// commit window, so per-core epochs must become durable together:
		// the group coordinates atomic multi-core closes and numbers
		// transactions from one cluster-global sequence.
		engine.NewEpochGroup(engines)
	}
	return cl
}

// Use selects core i for direct driving (heap costs charge to it) and
// returns its System — the way single-threaded phases (setup, loading)
// run on a cluster. Interleave selects cores itself.
func (cl *Cluster) Use(i int) *System {
	cl.tick.c = cl.Sys[i].Mach
	return cl.Sys[i]
}

// Interleave runs per-core operation streams to completion under the
// deterministic scheduler: at every step the unfinished core with the
// lowest clock runs its next operation, ties broken by core ID (the
// round-robin order). stream(core, sys) must run exactly one operation
// of core's stream on sys and report whether more remain.
//
// Interleaving is at operation (transaction) granularity: a transaction
// runs to completion before another core is scheduled, so transactions
// never interleave mid-flight — cross-core interactions are coherence
// misses, WPQ contention, and signature-forced lazy drains between
// transactions. Operations on different cores must therefore be
// logically independent (e.g. sharded key streams); the simulator does
// not model speculative conflict aborts between in-flight transactions.
func (cl *Cluster) Interleave(stream func(core int, sys *System) bool) {
	done := make([]bool, len(cl.Sys))
	remaining := len(cl.Sys)
	for remaining > 0 {
		pick := -1
		for i, s := range cl.Sys {
			if done[i] {
				continue
			}
			if pick < 0 || s.Mach.Clk < cl.Sys[pick].Mach.Clk {
				pick = i
			}
		}
		if !stream(pick, cl.Use(pick)) {
			done[pick] = true
			remaining--
		}
	}
}

// SyncClocks aligns every core to the highest clock — the barrier
// between a setup phase and a measured parallel phase — and returns it.
func (cl *Cluster) SyncClocks() uint64 { return cl.Plat.SyncClocks() }

// MaxClk returns the highest core clock — the parallel phase's
// makespan when read after Interleave.
func (cl *Cluster) MaxClk() uint64 { return cl.Plat.MaxClk() }

// DrainLazy forces every core's deferred lazy data to PM.
func (cl *Cluster) DrainLazy() {
	for i := range cl.Sys {
		cl.Use(i).DrainLazy()
	}
}

// Stats returns the merged per-core counters. Cycles is not populated
// (per-core clocks do not sum meaningfully); use MaxClk for time.
func (cl *Cluster) Stats() stats.Counters { return cl.Plat.MergedStats() }

// Sockets returns the platform's PM socket count (1 on a single-device
// machine).
func (cl *Cluster) Sockets() int { return cl.Plat.Topo.Sockets() }

// SocketStats returns per-socket device statistics — enqueue counts,
// WPQ-full stall cycles, occupancy — in socket order. The NUMA
// experiments read it to show how persist traffic spreads over the
// topology.
func (cl *Cluster) SocketStats() []pmem.SocketStats { return cl.Plat.Topo.SocketStats() }
