// Inplace demonstrates the §V-A optimization the paper derives from
// combining selective logging with lazy persistency: eliminating the
// random persistent-memory writes of in-place update transactions.
//
// Conventional undo transactions persist every updated (random) cache
// line at commit — slow random writes on the critical path. The
// optimized transaction instead:
//
//   - updates the data in place with LAZY but LOGGED storeT (the undo
//     record protects against a crash during the transaction; the
//     random-address data line stays in the cache past commit);
//   - appends the new value to a SEQUENTIAL array with eager log-free
//     storeT (fast sequential writes are all the commit persists).
//
// On a crash during the transaction, the undo log reverts the lazy
// updates. On a crash after commit, the sequential records act as a
// redo log: recovery reapplies them to rebuild the lazily-lost data —
// with no address indirection, unlike conventional redo logging.
//
// Run:
//
//	go run ./examples/inplace
package main

import (
	"fmt"
	"log"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/recovery"
)

const (
	records = 512
	updates = 400
	// batch is the number of in-place updates per durable transaction;
	// the optimization targets transactions that scatter many random
	// writes (§V-A).
	batch = 16
)

// Root slots: 0 = data array, 1 = sequential redo array, 2 = redo count.
const (
	slotData = 0
	slotSeq  = 1
	slotCnt  = 2
)

// seqEntry: {dataIndex, newValue} appended per update.
const seqEntrySize = 16

func setup(sys *slpmt.System) (data, seq slpmt.Addr) {
	if err := sys.Update(func(tx *slpmt.Tx) error {
		data = tx.Alloc(records * 8)
		seq = tx.Alloc(updates * seqEntrySize)
		zero := make([]byte, records*8)
		tx.StoreT(data, zero, slpmt.LogFree)
		tx.SetRoot(slotData, uint64(data))
		tx.SetRoot(slotSeq, uint64(seq))
		tx.SetRoot(slotCnt, 0)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	return data, seq
}

// updateConventional is the plain undo transaction: a batch of logged,
// eagerly persisted random writes.
func updateConventional(sys *slpmt.System, data slpmt.Addr, idxs, vals []uint64) {
	if err := sys.Update(func(tx *slpmt.Tx) error {
		for i := range idxs {
			tx.StoreU64(data+slpmt.Addr(idxs[i]*8), vals[i])
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}

// updateOptimized is the §V-A strategy.
func updateOptimized(sys *slpmt.System, data, seq slpmt.Addr, idxs, vals []uint64) {
	if err := sys.Update(func(tx *slpmt.Tx) error {
		n := tx.Root(slotCnt)
		for i := range idxs {
			// In-place update: logged (crash-during-txn safety) but
			// lazily persistent (no random write at commit).
			tx.StoreTU64(data+slpmt.Addr(idxs[i]*8), vals[i], slpmt.LazyLogged)
			// Sequential record of the new value: eager, log-free.
			e := seq + slpmt.Addr((n+uint64(i))*seqEntrySize)
			tx.StoreTU64(e, idxs[i], slpmt.LogFree)
			tx.StoreTU64(e+8, vals[i], slpmt.LogFree)
		}
		tx.SetRoot(slotCnt, n+uint64(len(idxs)))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}

// replaySeq is the post-crash recovery: reapply the sequential records
// as a redo log (no address indirection — the records carry the index).
func replaySeq(img *pmem.Image) int {
	layout := mem.DefaultLayout(uint64(len(img.Data)))
	root := func(s int) uint64 { return img.ReadU64(layout.RootBase + mem.Addr(s*8)) }
	data := mem.Addr(root(slotData))
	seq := mem.Addr(root(slotSeq))
	n := root(slotCnt)
	for i := uint64(0); i < n; i++ {
		e := seq + mem.Addr(i*seqEntrySize)
		img.WriteU64(data+mem.Addr(img.ReadU64(e)*8), img.ReadU64(e+8))
	}
	return int(n)
}

func run(optimized bool) (cycles uint64, randomWrites uint64, img *pmem.Image, data slpmt.Addr) {
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	data, seq := setup(sys)
	start := sys.Cycles()
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < updates; i += batch {
		idxs := make([]uint64, 0, batch)
		vals := make([]uint64, 0, batch)
		seen := map[uint64]bool{}
		for len(idxs) < batch {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			idx := rng % records
			if seen[idx] {
				continue
			}
			seen[idx] = true
			idxs = append(idxs, idx)
			vals = append(vals, rng|1)
		}
		if optimized {
			updateOptimized(sys, data, seq, idxs, vals)
		} else {
			updateConventional(sys, data, idxs, vals)
		}
	}
	cycles = sys.Cycles() - start
	// Crash WITHOUT draining: the optimized variant's data array is
	// largely volatile; the sequential log must rebuild it.
	img = sys.Mach.Crash()
	return cycles, sys.Stats().EagerLinePersists, img, data
}

func main() {
	convCycles, convPersists, convImg, convData := run(false)
	optCycles, optPersists, optImg, optData := run(true)

	fmt.Printf("conventional in-place: %7d cycles, %4d eager line persists\n", convCycles, convPersists)
	fmt.Printf("section V-A optimized: %7d cycles, %4d eager line persists (sequential)\n", optCycles, optPersists)
	fmt.Printf("speedup: %.2fx\n\n", float64(convCycles)/float64(optCycles))

	// Recovery check: both images must converge to the same final data
	// after the optimized image replays its sequential redo records.
	if _, err := recovery.ApplyLog(optImg); err != nil {
		log.Fatal(err)
	}
	n := replaySeq(optImg)
	for i := 0; i < records; i++ {
		c := convImg.ReadU64(convData + mem.Addr(i*8))
		o := optImg.ReadU64(optData + mem.Addr(i*8))
		if c != o {
			log.Fatalf("recovery divergence at record %d: %d vs %d", i, c, o)
		}
	}
	fmt.Printf("crash recovery: %d sequential records replayed; optimized image matches conventional\n", n)
}
