// Quickstart: a minimal durable transaction on the simulated SLPMT
// hardware — allocate a persistent record, fill it with log-free stores
// (it is fresh memory, Pattern 1 of the paper), publish it with one
// logged store, and inspect what the run cost and what became durable.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/persistmem/slpmt"
)

func main() {
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})

	var rec slpmt.Addr
	err := sys.Update(func(tx *slpmt.Tx) error {
		// A fresh 3-word record: id, value, checksum.
		rec = tx.Alloc(24)
		tx.StoreTU64(rec+0, 1001, slpmt.LogFree) // fresh memory: no undo log
		tx.StoreTU64(rec+8, 42, slpmt.LogFree)
		tx.StoreTU64(rec+16, 1001^42, slpmt.LogFree)
		// The publishing store is the transaction's only logged write.
		tx.SetRoot(0, uint64(rec))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Everything committed is durable: a simulated power failure right
	// now loses nothing.
	img := sys.Mach.Crash()
	fmt.Printf("durable record @%#x: id=%d value=%d checksum=%d\n",
		rec, img.ReadU64(rec), img.ReadU64(rec+8), img.ReadU64(rec+16))

	c := sys.Stats()
	fmt.Printf("simulated cycles: %d (%.2f us at 2 GHz)\n", sys.Cycles(), float64(sys.Cycles())/2000)
	fmt.Printf("PM write traffic: %d B data + %d B log\n", c.PMWriteBytesData, c.PMWriteBytesLog)
	fmt.Printf("undo records created: %d (the three log-free stores created none)\n", c.LogRecordsCreated)
}
