// Gcmove demonstrates the lazy-persistency pattern the paper highlights
// in §VI-D1: a compacting move (as performed by incremental generational
// garbage collectors, multi-version structures, and resizing) protected
// by a durable transaction that LAZILY persists the copies — the moved
// data stays in the cache past commit and the hardware guarantees it
// reaches PM before anything it depends on is overwritten.
//
// The program scatters records, compacts them into a fresh region with
// lazy+log-free copies, and shows:
//
//  1. the copies are NOT durable right after commit (deferred);
//  2. a store into the transaction's working set forces them durable
//     before it proceeds (the signature check of §III-C3);
//  3. a crash while the copies are still volatile recovers by
//     re-executing the move from the intact sources.
//
// Run:
//
//	go run ./examples/gcmove
package main

import (
	"fmt"
	"log"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/recovery"
)

const (
	recWords = 8 // 64-byte records
	recBytes = recWords * 8
	count    = 16
)

// Root slots: 0 = live region, 1 = record count, 3 = move source
// (the recovery-protocol slot), 4 = source count.
const (
	slotRegion = 0
	slotCount  = 1
	slotSrc    = 3
	slotSrcCnt = 4
)

func buildScattered(sys *slpmt.System) slpmt.Addr {
	var region slpmt.Addr
	if err := sys.Update(func(tx *slpmt.Tx) error {
		// Records with gaps between them (fragmentation).
		region = tx.Alloc(count * recBytes * 2)
		for i := 0; i < count; i++ {
			rec := region + slpmt.Addr(i*2*recBytes)
			for w := 0; w < recWords; w++ {
				tx.StoreTU64(rec+slpmt.Addr(w*8), uint64(i*100+w), slpmt.LogFree)
			}
		}
		tx.SetRoot(slotRegion, uint64(region))
		tx.SetRoot(slotCount, count)
		tx.SetRoot(slotSrc, 0)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	return region
}

// compact moves every record into a dense fresh region with lazy
// copies, publishing the old region for crash recovery.
func compact(sys *slpmt.System, old slpmt.Addr) (dst slpmt.Addr) {
	if err := sys.Update(func(tx *slpmt.Tx) error {
		dst = tx.Alloc(count * recBytes)
		for i := 0; i < count; i++ {
			src := old + slpmt.Addr(i*2*recBytes)
			// Move without modifying the source: lazy + log-free.
			tx.Copy(dst+slpmt.Addr(i*recBytes), src, recBytes, slpmt.LazyLogFree)
		}
		tx.SetRoot(slotRegion, uint64(dst))
		tx.SetRoot(slotSrc, uint64(old)) // recovery pointer (logged)
		tx.SetRoot(slotSrcCnt, count)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	return dst
}

// recoverMove re-executes an interrupted/unflushed move from the intact
// source region (the application recovery for the lazy copies).
func recoverMove(img *pmem.Image) bool {
	layout := mem.DefaultLayout(uint64(len(img.Data)))
	root := func(s int) uint64 { return img.ReadU64(layout.RootBase + mem.Addr(s*8)) }
	src := mem.Addr(root(slotSrc))
	if src == 0 {
		return false
	}
	dst := mem.Addr(root(slotRegion))
	n := int(root(slotSrcCnt))
	buf := make([]byte, recBytes)
	for i := 0; i < n; i++ {
		img.Read(src+mem.Addr(i*2*recBytes), buf)
		img.Write(dst+mem.Addr(i*recBytes), buf)
	}
	img.WriteU64(layout.RootBase+mem.Addr(slotSrc*8), 0)
	return true
}

func verify(img *pmem.Image, dst mem.Addr) error {
	for i := 0; i < count; i++ {
		for w := 0; w < recWords; w++ {
			got := img.ReadU64(dst + mem.Addr(i*recBytes+w*8))
			if got != uint64(i*100+w) {
				return fmt.Errorf("record %d word %d = %d", i, w, got)
			}
		}
	}
	return nil
}

func main() {
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	old := buildScattered(sys)
	dst := compact(sys, old)

	// 1. Deferred: right after commit the copies are volatile.
	img := sys.Mach.Crash()
	if err := verify(img, mem.Addr(dst)); err != nil {
		fmt.Println("right after commit, copies not yet durable:", err)
	}
	fmt.Printf("deferred lines after compaction: %d\n", sys.Eng.RetainedLazyLines())

	// 2. Crash now: recovery re-executes the move from the old region.
	crashImg := sys.Mach.Crash()
	if _, err := recovery.ApplyLog(crashImg); err != nil {
		log.Fatal(err)
	}
	if !recoverMove(crashImg) {
		log.Fatal("recovery pointer missing")
	}
	if err := verify(crashImg, mem.Addr(dst)); err != nil {
		log.Fatal("recovery failed: ", err)
	}
	fmt.Println("crash before flush: move re-executed from intact sources, data verified")

	// 3. Conflict: touching the old region (freeing it) forces the lazy
	// copies durable first — the hardware's signature check.
	if err := sys.Update(func(tx *slpmt.Tx) error {
		tx.SetRoot(slotSrc, 0) // store into the move txn's working set
		tx.Free(old)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	img2 := sys.Mach.Crash()
	if err := verify(img2, mem.Addr(dst)); err != nil {
		log.Fatal("copies not durable after working-set conflict: ", err)
	}
	c := sys.Stats()
	fmt.Printf("after the conflicting store: copies durable (signature hits: %d, lazy lines persisted: %d)\n",
		c.SignatureHits, c.LazyLinePersists)
	fmt.Printf("log records for the whole compaction: %d (all moves were log-free)\n", c.LogRecordsCreated)
}
