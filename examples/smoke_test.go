// Package examples_test smoke-tests the documented example programs:
// each must compile and run to completion with a zero exit status, so
// an API refactor cannot silently break the repository's entry points.
package examples_test

import (
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"
)

var programs = []string{
	"quickstart",
	"linkedlist",
	"kvstore",
	"gcmove",
	"inplace",
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples exec the go tool; skipped in -short")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	repoRoot := filepath.Dir(filepath.Dir(thisFile))
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	for _, name := range programs {
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(gobin, "run", "./examples/"+name)
			cmd.Dir = repoRoot
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("examples/%s produced no output", name)
			}
		})
	}
}
