// Kvstore runs the paper's PMDK-style key-value store on the simulated
// hardware, comparing the three index backends (btree, ctree, rtree)
// across hardware schemes — a miniature of the paper's Figure 14.
//
// Run:
//
//	go run ./examples/kvstore [-n 500] [-value 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
	"github.com/persistmem/slpmt/internal/ycsb"
)

func main() {
	n := flag.Int("n", 500, "insert operations")
	value := flag.Int("value", 128, "value size (bytes)")
	flag.Parse()

	schemes := []string{"FG", "SLPMT", "ATOM", "EDE"}
	fmt.Printf("%-10s", "backend")
	for _, s := range schemes {
		fmt.Printf("  %12s", s)
	}
	fmt.Println("   (cycles/op, PM bytes/op)")

	for _, backend := range workloads.PMKV() {
		fmt.Printf("%-10s", backend)
		for _, scheme := range schemes {
			w := workloads.MustNew(backend)
			sys := slpmt.New(slpmt.Options{
				Scheme:             scheme,
				ComputeCyclesPerOp: w.ComputeCost(),
			})
			if err := w.Setup(sys); err != nil {
				log.Fatal(err)
			}
			load := ycsb.Load{N: *n, ValueSize: *value}
			if err := load.Each(func(k uint64, v []byte) error {
				return w.Insert(sys, k, v)
			}); err != nil {
				log.Fatal(err)
			}
			sys.DrainLazy()
			if err := w.Check(sys, load.Oracle()); err != nil {
				log.Fatalf("%s/%s: %v", backend, scheme, err)
			}
			c := sys.Stats()
			fmt.Printf("  %6d/%5d",
				sys.Cycles()/uint64(*n), c.PMWriteBytes()/uint64(*n))
		}
		fmt.Println()
	}
	fmt.Println("\nall backends verified against the full oracle under every scheme")
}
