// Linkedlist reproduces Figure 1 of the paper: inserting node B between
// A and C in a doubly-linked list needs four pointer writes, but only
// the FIRST one needs an undo log record — the bidirectional links are
// redundant, so a crash-interrupted insert can be repaired by the small
// fix-up routine of Figure 1(d) instead of logging everything.
//
// The program builds a persistent list, performs inserts whose last
// three writes are log-free storeTs, then simulates a crash in the
// middle of an insert (between the first, logged write and the rest)
// and runs the fix-up to show the list recovering to a consistent
// state.
//
// Run:
//
//	go run ./examples/linkedlist
package main

import (
	"fmt"
	"log"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/recovery"
)

// Node layout: {value, prev, next}.
const (
	offVal  = 0
	offPrev = 8
	offNext = 16
	nodeSz  = 24
)

// insertAfter inserts a fresh node with value v after node a (Figure 1).
func insertAfter(tx *slpmt.Tx, a slpmt.Addr, v uint64) slpmt.Addr {
	c := slpmt.Addr(tx.LoadU64(a + offNext))
	b := tx.Alloc(nodeSz)
	// The fresh node's fields are log-free (Pattern 1).
	tx.StoreTU64(b+offVal, v, slpmt.LogFree)
	tx.StoreTU64(b+offPrev, uint64(a), slpmt.LogFree)
	tx.StoreTU64(b+offNext, uint64(c), slpmt.LogFree)
	// Write 1 (logged): a->next = b. This is the only undo record the
	// transaction needs — everything after it is recoverable from the
	// list's redundancy.
	tx.StoreU64(a+offNext, uint64(b))
	// Write 4 (log-free): c->prev = b, repairable by the fix-up.
	if c != 0 {
		tx.StoreTU64(c+offPrev, uint64(b), slpmt.LogFree)
	}
	return b
}

// fixup is Figure 1(d): after the undo log restored a->next, walk the
// list and re-establish every prev pointer from the next pointers.
func fixup(img *pmem.Image, head mem.Addr) int {
	fixed := 0
	prev := mem.Addr(0)
	for n := head; n != 0; n = mem.Addr(img.ReadU64(n + offNext)) {
		if mem.Addr(img.ReadU64(n+offPrev)) != prev {
			img.WriteU64(n+offPrev, uint64(prev))
			fixed++
		}
		prev = n
	}
	return fixed
}

func dump(img *pmem.Image, head mem.Addr) string {
	s := "["
	for n := head; n != 0; n = mem.Addr(img.ReadU64(n + offNext)) {
		if n != head {
			s += " "
		}
		s += fmt.Sprint(img.ReadU64(n + offVal))
	}
	return s + "]"
}

func build(sys *slpmt.System, crashAfter uint64) (head slpmt.Addr, img *pmem.Image, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(machine.CrashSignal); !ok {
				panic(r)
			}
			crashed = true
			img = sys.Mach.Crash()
		}
	}()
	if err := sys.Update(func(tx *slpmt.Tx) error {
		head = tx.Alloc(nodeSz)
		tx.StoreTU64(head+offVal, 0, slpmt.LogFree)
		tx.StoreTU64(head+offPrev, 0, slpmt.LogFree)
		tx.StoreTU64(head+offNext, 0, slpmt.LogFree)
		tx.SetRoot(0, uint64(head))
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	sys.Mach.CrashAfter = crashAfter
	cur := head
	for v := uint64(1); v <= 5; v++ {
		if err := sys.Update(func(tx *slpmt.Tx) error {
			cur = insertAfter(tx, cur, v*10)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}
	return head, sys.Mach.Crash(), false
}

func main() {
	// Clean run first: count the persist events of a full build.
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	head, img, _ := build(sys, 0)
	fmt.Println("clean run, durable list:", dump(img, head))
	total := sys.Mach.PersistCount
	logRecords := sys.Stats().LogRecordsCreated
	fmt.Printf("undo records: %d total — 1 for the setup's root store, then exactly 1 per insert\n", logRecords)
	fmt.Printf("(the other three pointer writes of each insert are log-free storeTs)\n\n")

	// Crash in the middle of the build, at every 7th persist event.
	for point := total / 3; point < total; point += 7 {
		s2 := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
		h2, img2, crashed := build(s2, point)
		if !crashed {
			continue
		}
		// Hardware recovery: apply the undo log of the interrupted
		// transaction, reverting its one logged write.
		rep, err := recovery.ApplyLog(img2)
		if err != nil {
			log.Fatal(err)
		}
		// Application recovery (Figure 1d): repair the log-free prev
		// pointers from the logged/restored next pointers.
		fixed := fixup(img2, h2)
		fmt.Printf("crash@%-3d -> undo applied %d records, fix-up repaired %d prev pointers: %s\n",
			point, rep.RecordsApplied, fixed, dump(img2, h2))
		// Verify consistency: prev must invert next everywhere.
		prev := mem.Addr(0)
		for n := h2; n != 0; n = mem.Addr(img2.ReadU64(n + offNext)) {
			if mem.Addr(img2.ReadU64(n+offPrev)) != prev {
				log.Fatalf("list inconsistent after recovery at node %#x", n)
			}
			prev = n
		}
	}
	fmt.Println("\nevery crash point recovered to a consistent doubly-linked list")
}
