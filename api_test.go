package slpmt

import (
	"errors"
	"testing"
)

func TestViewRejectsMutation(t *testing.T) {
	sys := New(Options{})
	defer func() {
		if recover() == nil {
			t.Error("store in View should panic")
		}
	}()
	sys.View(func(tx *Tx) {
		tx.StoreU64(sys.Layout().HeapBase, 1)
	})
}

func TestNestedUpdatePanics(t *testing.T) {
	sys := New(Options{})
	defer func() {
		if recover() == nil {
			t.Error("nested Update should panic")
		}
	}()
	_ = sys.Update(func(tx *Tx) error {
		return sys.Update(func(tx2 *Tx) error { return nil })
	})
}

func TestUnknownSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown scheme should panic")
		}
	}()
	New(Options{Scheme: "bogus"})
}

func TestRootSlotBounds(t *testing.T) {
	sys := New(Options{})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range root slot should panic")
		}
	}()
	_ = sys.Update(func(tx *Tx) error {
		tx.SetRoot(1<<20, 1)
		return nil
	})
}

// TestRedoSchemesEndToEnd: the redo variants provide the same durable
// semantics through the Figure 4 redo ordering.
func TestRedoSchemesEndToEnd(t *testing.T) {
	for _, scheme := range []string{"FG-redo", "SLPMT-redo"} {
		t.Run(scheme, func(t *testing.T) {
			sys := New(Options{Scheme: scheme})
			var a Addr
			if err := sys.Update(func(tx *Tx) error {
				a = tx.Alloc(16)
				tx.StoreU64(a, 10)
				tx.StoreTU64(a+8, 20, LogFree)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := sys.Update(func(tx *Tx) error {
				tx.StoreU64(a, 11)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			sys.DrainLazy()
			img := sys.Mach.Crash()
			if img.ReadU64(a) != 11 || img.ReadU64(a+8) != 20 {
				t.Errorf("durable = %d/%d, want 11/20", img.ReadU64(a), img.ReadU64(a+8))
			}
			// Abort under redo drops the volatile updates.
			boom := errors.New("boom")
			if err := sys.Update(func(tx *Tx) error {
				tx.StoreU64(a, 99)
				return boom
			}); err != boom {
				t.Fatal(err)
			}
			sys.View(func(tx *Tx) {
				if got := tx.LoadU64(a); got != 11 {
					t.Errorf("after redo abort: %d, want 11", got)
				}
			})
		})
	}
}

// TestCopySemantics: Copy moves bytes and is annotated like a storeT.
func TestCopySemantics(t *testing.T) {
	sys := New(Options{})
	var a, b Addr
	if err := sys.Update(func(tx *Tx) error {
		a = tx.Alloc(64)
		b = tx.Alloc(64)
		tx.Store(a, []byte("persistent-memory-data!"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Update(func(tx *Tx) error {
		tx.Copy(b, a, 24, LazyLogFree)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sys.View(func(tx *Tx) {
		got := make([]byte, 24)
		tx.Load(b, got)
		if string(got) != "persistent-memory-data!\x00"[:24] {
			t.Errorf("copy result %q", got)
		}
	})
}

// TestSchemeAccessors.
func TestSchemeAccessors(t *testing.T) {
	sys := New(Options{Scheme: "ATOM"})
	if sys.Scheme() != "ATOM" {
		t.Error("scheme accessor wrong")
	}
	if len(Schemes()) < 8 || len(EvaluatedSchemes()) != 6 {
		t.Error("scheme lists wrong")
	}
}

// TestWriteLatencyOption: raising the PM write latency slows the run.
func TestWriteLatencyOption(t *testing.T) {
	run := func(lat uint64) uint64 {
		sys := New(Options{Scheme: "FG", PMWriteNanos: lat})
		for i := 0; i < 20; i++ {
			if err := sys.Update(func(tx *Tx) error {
				a := tx.Alloc(256)
				buf := make([]byte, 256)
				tx.Store(a, buf)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		return sys.Cycles()
	}
	if fast, slow := run(500), run(2300); slow <= fast {
		t.Errorf("write latency had no effect: %d vs %d", fast, slow)
	}
}

// TestAccountingInvariant: PM write entries and byte counters stay
// consistent across a workload-like run.
func TestAccountingInvariant(t *testing.T) {
	sys := New(Options{Scheme: "SLPMT"})
	for i := 0; i < 50; i++ {
		if err := sys.Update(func(tx *Tx) error {
			a := tx.Alloc(128)
			tx.StoreT(a, make([]byte, 128), LogFree)
			tx.SetRoot(0, uint64(a))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	sys.DrainLazy()
	c := sys.Stats()
	if c.PMWriteBytes() != 64*c.PMWriteEntries {
		t.Errorf("bytes %d != 64 * entries %d", c.PMWriteBytes(), c.PMWriteEntries)
	}
	if c.LogRecordsPersisted+c.LogRecordsDiscarded > c.LogRecordsCreated+c.SpeculativeRecords {
		t.Errorf("record accounting inconsistent: persisted %d + discarded %d > created %d",
			c.LogRecordsPersisted, c.LogRecordsDiscarded, c.LogRecordsCreated)
	}
}
