package slpmt

import (
	"errors"
	"testing"
)

func TestBasicTransaction(t *testing.T) {
	sys := New(Options{Scheme: "SLPMT"})
	var node Addr
	err := sys.Update(func(tx *Tx) error {
		node = tx.Alloc(24)
		tx.StoreTU64(node+0, 111, LogFree)
		tx.StoreTU64(node+8, 222, LogFree)
		tx.StoreU64(node+16, 333)
		tx.SetRoot(0, uint64(node))
		return nil
	})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	sys.View(func(tx *Tx) {
		if got := tx.LoadU64(node); got != 111 {
			t.Errorf("node[0] = %d, want 111", got)
		}
		if got := tx.LoadU64(node + 8); got != 222 {
			t.Errorf("node[8] = %d, want 222", got)
		}
		if got := tx.LoadU64(node + 16); got != 333 {
			t.Errorf("node[16] = %d, want 333", got)
		}
		if got := tx.Root(0); got != uint64(node) {
			t.Errorf("root = %#x, want %#x", got, node)
		}
	})
	c := sys.Stats()
	if c.TxCommits != 1 || c.TxBegins != 1 {
		t.Errorf("commits/begins = %d/%d, want 1/1", c.TxCommits, c.TxBegins)
	}
	if c.PMWriteBytesData == 0 || c.PMWriteBytesLog == 0 {
		t.Errorf("expected both data and log PM traffic, got data=%d log=%d",
			c.PMWriteBytesData, c.PMWriteBytesLog)
	}
	if sys.Cycles() == 0 {
		t.Error("clock did not advance")
	}
}

func TestDurabilityAfterCommit(t *testing.T) {
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			sys := New(Options{Scheme: scheme})
			var a Addr
			if err := sys.Update(func(tx *Tx) error {
				a = tx.Alloc(64)
				tx.StoreU64(a, 0xdead)
				tx.StoreU64(a+8, 0xbeef)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			sys.DrainLazy()
			img := sys.Mach.Crash()
			if got := img.ReadU64(a); got != 0xdead {
				t.Errorf("durable[a] = %#x, want 0xdead", got)
			}
			if got := img.ReadU64(a + 8); got != 0xbeef {
				t.Errorf("durable[a+8] = %#x, want 0xbeef", got)
			}
		})
	}
}

func TestAbortRollsBackLoggedStores(t *testing.T) {
	sys := New(Options{Scheme: "SLPMT"})
	var a Addr
	if err := sys.Update(func(tx *Tx) error {
		a = tx.Alloc(16)
		tx.StoreU64(a, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	err := sys.Update(func(tx *Tx) error {
		tx.StoreU64(a, 2)
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("Update error = %v, want %v", err, wantErr)
	}
	sys.View(func(tx *Tx) {
		if got := tx.LoadU64(a); got != 1 {
			t.Errorf("after abort a = %d, want 1", got)
		}
	})
	if sys.Stats().TxAborts != 1 {
		t.Errorf("aborts = %d, want 1", sys.Stats().TxAborts)
	}
}

func TestLazyDataEventuallyDurable(t *testing.T) {
	sys := New(Options{Scheme: "SLPMT"})
	var a Addr
	if err := sys.Update(func(tx *Tx) error {
		a = tx.Alloc(64)
		tx.StoreTU64(a, 42, LazyLogFree)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Before draining, the lazy line may be volatile-only.
	sys.DrainLazy()
	img := sys.Mach.Crash()
	if got := img.ReadU64(a); got != 42 {
		t.Errorf("durable lazy word = %d, want 42", got)
	}
}

func TestEmptyTransactionsFlushLazyData(t *testing.T) {
	sys := New(Options{Scheme: "SLPMT"})
	var a Addr
	if err := sys.Update(func(tx *Tx) error {
		a = tx.Alloc(64)
		tx.StoreTU64(a, 7, LazyLogFree)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// The paper: running NumTxIDs empty transactions forces all lazily
	// persistent data durable via transaction-ID reuse.
	for i := 0; i < 4; i++ {
		if err := sys.Update(func(tx *Tx) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	img := sys.Mach.Crash()
	if got := img.ReadU64(a); got != 7 {
		t.Errorf("durable lazy word after 4 empty txns = %d, want 7", got)
	}
	if sys.Stats().TxIDRecycles == 0 {
		t.Error("expected a transaction-ID recycle to force the persist")
	}
}
