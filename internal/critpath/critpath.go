// Package critpath is the causal critical-path analyzer: it replays a
// run's SLPTRC01/SLPSEG01 event stream (in-memory ring or streamed
// binlog — the Analyzer is an online stream consumer) into a cross-core
// blocking DAG and answers the question per-core attribution cannot:
// what chain of waits actually bounds the parallel makespan, and which
// cache lines serialize it.
//
// The analysis rests on the profiler's conservation contract
// (internal/profile): every cycle a core's clock advances is charged to
// exactly one cause, and the KCharge stream carries each charge as a
// post-advance (cycle, cause, cycles) record, so a core's charge
// segments [cycle-arg, cycle] tile its measured region exactly. All
// cores share the measured-region start (the bench harness syncs clocks
// at the boundary), so a backward time-tiled "blame walk" from the
// makespan core's last segment — hopping to the responsible peer core
// at segments whose cause is a cross-core wait — covers the makespan
// interval exactly once: the critical-path length equals the measured
// makespan and the per-cause path shares sum to it, by construction.
// The contract is checked, not assumed (Analysis.Check).
//
// Three results come out:
//
//   - The critical path with a per-cause breakdown reusing the
//     profiler's cause taxonomy: "log.sync is 85% of core-cycles"
//     becomes "log.sync is N% of the *critical* path".
//   - Per-node slack from a CPM pass over the explicit DAG (nodes are
//     coalesced charge segments, edges are program order plus the
//     waits-for relations below), feeding what-if projections: the
//     projected makespan with a cause zeroed on every core, validated
//     against the measured window/NUMA sweeps.
//   - A hot-line observatory: per-address contention ranking from the
//     coherence, WPQ and signature-hit streams (transfer counts,
//     serialization cycles, owning-core ping-pong, per-line signature
//     hits), seeding contention-aware scheduling work.
//
// Wait-edge attribution is a deterministic heuristic (the trace records
// what happened, not why): a wpq.stall segment blames the core whose
// drain freed the queue space (the last KWPQDrain in emission order —
// the device retires the blocking entry immediately before the stall
// event); a coherence segment blames the line's last writer; a
// lazy.drain segment blames the conflicting storer behind the
// signature hit. The conservation contract holds regardless of hop
// choices — hops only redistribute blame across cores, never cycles.
//
// Everything here is observation-only: the analyzer consumes a trace
// after (or while) it is written and never feeds back into timing.
package critpath

import (
	"fmt"
	"sort"
	"strings"

	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/trace"
)

// EdgeKind classifies a waits-for edge in the blocking DAG.
type EdgeKind uint8

const (
	// EdgeProgram is same-core program order: a core's consecutive
	// charge segments form a serial chain.
	EdgeProgram EdgeKind = iota
	// EdgeWPQDrain is WPQ backpressure released by a peer: the stalled
	// persist waited for queue space another core's entry was holding.
	EdgeWPQDrain
	// EdgeCoherence is a cross-core cache-line transfer: the charged
	// core waited on the line's last writer.
	EdgeCoherence
	// EdgeLazyConflict is a forced lazy drain: a conflicting store hit
	// a retained transaction's signature and the owning core drained
	// on the storer's behalf.
	EdgeLazyConflict
	numEdgeKinds
)

// edgeNames maps edge kinds to their canonical dotted names. Every edge
// kind must have an entry; slpmtvet enforces this statically.
var edgeNames = [numEdgeKinds]string{
	EdgeProgram:      "program",
	EdgeWPQDrain:     "wpq.drain",
	EdgeCoherence:    "coherence",
	EdgeLazyConflict: "lazy.conflict",
}

// edgeKinds ties every edge kind to the trace kinds that witness it in
// the event stream, mirroring profile's causeKinds registry. slpmtvet
// requires a non-empty entry per edge kind, so a waits-for relation
// cannot be added without declaring how it shows up in a trace.
var edgeKinds = [numEdgeKinds][]trace.Kind{
	EdgeProgram:      {trace.KCharge},
	EdgeWPQDrain:     {trace.KWPQStall, trace.KWPQDrain},
	EdgeCoherence:    {trace.KCohSnoop, trace.KCohInval, trace.KCohDowngrade, trace.KCohWriteback},
	EdgeLazyConflict: {trace.KSigHit, trace.KLazyDrainStart},
}

// String returns the edge kind's canonical name.
func (k EdgeKind) String() string {
	if k < numEdgeKinds {
		return edgeNames[k]
	}
	return fmt.Sprintf("edge(%d)", uint8(k))
}

// Kinds returns the trace kinds witnessing the edge kind.
func (k EdgeKind) Kinds() []trace.Kind {
	if k < numEdgeKinds {
		return edgeKinds[k]
	}
	return nil
}

// EdgeKinds returns every edge kind, in enum order.
func EdgeKinds() []EdgeKind {
	out := make([]EdgeKind, 0, numEdgeKinds)
	for k := EdgeKind(0); k < numEdgeKinds; k++ {
		out = append(out, k)
	}
	return out
}

// blockingEdge maps a charge cause to the waits-for edge kind its
// segments hop along (false = the cause is same-core work).
func blockingEdge(c profile.Cause) (EdgeKind, bool) {
	switch c {
	case profile.CauseWPQStall:
		return EdgeWPQDrain, true
	case profile.CauseCoherence:
		return EdgeCoherence, true
	case profile.CauseLazyDrain:
		return EdgeLazyConflict, true
	}
	return EdgeProgram, false
}

// Node is one DAG node: a maximal run of consecutive same-cause charge
// segments on one core, [Start, End) in absolute cycles.
type Node struct {
	Core    int
	Cause   profile.Cause
	Start   uint64
	End     uint64
	Charges int // KCharge events coalesced into the node
}

// Dur returns the node's duration in cycles.
func (n Node) Dur() uint64 { return n.End - n.Start }

// Edge is one waits-for DAG edge between node indices (into
// Analysis.Nodes). Program-order edges are implicit per core and not
// materialized; Edge carries only the cross-core wait relations.
type Edge struct {
	Kind     EdgeKind
	From, To int
}

// Step is one critical-path segment, oldest first: the walk attributed
// [Start, End) on Core to Cause, and the path entered this step from
// the previous step via Edge (EdgeProgram = same-core program order; a
// wait kind = the path hopped cores to reach this blocked segment).
type Step struct {
	Core  int
	Cause profile.Cause
	Start uint64
	End   uint64
	Edge  EdgeKind
}

// SlackEntry is one DAG node with its total slack: how far the node
// could finish later (with every other duration fixed) without growing
// the makespan. Critical-path nodes have zero slack.
type SlackEntry struct {
	Node  Node
	Slack uint64
}

// Projection is one what-if: the makespan recomputed with the given
// causes zeroed on every core (per-core total minus the zeroed
// charges, maximum across cores). An Amdahl-style bound: it assumes
// the removed work overlaps perfectly and nothing else re-serializes.
type Projection struct {
	Name     string
	Causes   []profile.Cause
	Makespan uint64
	Speedup  float64 // measured makespan / projected makespan
}

// projections is the standard what-if set, in render order.
var projections = []struct {
	name   string
	causes []profile.Cause
}{
	// The ~1108-cycle serial per-transaction commit-marker flush made
	// asynchronous (the ROADMAP's async data-flush engine).
	{"commit-flush-async", []profile.Cause{profile.CauseCommitMarker}},
	// Infinite write-pending queue: no backpressure stalls.
	{"wpq-infinite", []profile.Cause{profile.CauseWPQStall}},
	// Cross-socket hops zeroed (perfect NUMA locality).
	{"remote-zeroed", []profile.Cause{profile.CauseWPQRemote}},
	// Group-commit window W -> infinity: every per-transaction and
	// per-epoch ordering barrier amortized away.
	{"window-inf", []profile.Cause{profile.CauseLogSync, profile.CauseLogEpoch, profile.CauseCommitMarker}},
}

// HotLine is one cache line's contention record.
type HotLine struct {
	Addr uint64 // line address (64-byte aligned)

	Transfers uint64 // coherence events (snoop/inval/downgrade/writeback)
	PingPong  uint64 // writing-core changes (owner bounced between cores)
	Stalls    uint64 // WPQ backpressure stalls while persisting the line
	SigHits   uint64 // retained-signature hits on the line
	Remote    uint64 // cross-socket accesses
	Stores    uint64 // stores to the line
	Enqueues  uint64 // WPQ entries persisting the line

	StallCycles  uint64 // cycles stalled for WPQ space on the line
	RemoteCycles uint64 // interconnect hop cycles paid for the line
	Residency    uint64 // enqueue-to-drain cycles summed (WPQ residency)
}

// Score is the contention rank: how often the line serialized
// cross-core or device progress.
func (h HotLine) Score() uint64 {
	return h.Transfers + h.PingPong + h.Stalls + h.SigHits + h.Remote
}

// SerCycles is the cycles the line spent serializing progress: WPQ
// backpressure, interconnect hops, and write-queue residency.
func (h HotLine) SerCycles() uint64 {
	return h.StallCycles + h.RemoteCycles + h.Residency
}

// Analysis is the analyzer's result.
type Analysis struct {
	Cores    int
	Start    uint64 // measured-region start cycle (shared core base)
	Makespan uint64 // last charge cycle of the slowest core minus Start

	// PathCycles is the critical path's per-cause breakdown; its sum is
	// the path length, which Check asserts equals Makespan. RawCycles
	// is the profiler's view (charges summed over all cores) for the
	// critical-share-vs-raw-share comparison.
	PathCycles profile.Vector
	RawCycles  profile.Vector
	PathLen    uint64
	Steps      []Step
	Hops       int // cross-core hops on the path
	HopsByEdge [numEdgeKinds]int

	// The explicit DAG (for slack; the blame walk above is independent
	// of it). Nodes are sorted by core then start; Edges carries the
	// cross-core wait edges, sorted by (To, From, Kind).
	Nodes    []Node
	Edges    []Edge
	SlackTop []SlackEntry

	WhatIf []Projection

	HotLines   []HotLine // top lines by Score, capped at maxHotLines
	TotalLines int       // distinct lines observed

	Dropped uint64
	perCore []coreTotals
}

// coreTotals is one core's conservation record.
type coreTotals struct {
	core       int
	base, last uint64
	causes     profile.Vector
}

// maxHotLines caps the stored hot-line ranking (the full per-line map
// is reduced at Analyze time; renderers take a further top-N).
const maxHotLines = 64

// maxSlackTop caps the stored slack ranking.
const maxSlackTop = 16

// hintRec is one wait-edge witness: at cycle, the owning core was
// blocked via kind on peer.
type hintRec struct {
	cycle uint64
	peer  uint8
	kind  EdgeKind
}

// lineAgg is the per-line accumulation behind HotLine.
type lineAgg struct {
	HotLine
	pendEnq []uint64 // in-flight enqueue cycles (FIFO), for residency
	writer  uint8
	written bool
}

// Analyzer replays an event stream into the blocking DAG. It is an
// online stream consumer (trace/stream Consumer): feed events in
// emission order — the order both the ring and the binlog preserve —
// then call Analyze once. Not safe for concurrent use.
type Analyzer struct {
	nodes    [256][]Node
	openOK   [256]bool
	base     [256]uint64
	baseSeen [256]bool
	totals   [256]profile.Vector
	hints    [256][]hintRec
	coreSeen [256]bool

	lines map[uint64]*lineAgg

	lastWriter map[uint64]uint8

	lastDrainCore uint8
	lastDrainSeen bool

	tileErr  error
	causeErr error
	events   uint64
}

// New returns an empty analyzer.
func New() *Analyzer {
	return &Analyzer{
		lines:      map[uint64]*lineAgg{},
		lastWriter: map[uint64]uint8{},
	}
}

// Kinds registers the kinds the analyzer consumes: the attribution
// stream, the store/coherence/WPQ/signature streams that witness the
// wait edges and the hot lines.
func (a *Analyzer) Kinds() uint64 {
	return trace.Mask(trace.KCharge,
		trace.KStore, trace.KStoreT,
		trace.KCohSnoop, trace.KCohInval, trace.KCohDowngrade, trace.KCohWriteback,
		trace.KWPQEnqueue, trace.KWPQDrain, trace.KWPQStall, trace.KWPQRemote,
		trace.KSigHit)
}

const lineMask = ^uint64(63)

func (a *Analyzer) line(addr uint64) *lineAgg {
	l := addr & lineMask
	ag, ok := a.lines[l]
	if !ok {
		ag = &lineAgg{HotLine: HotLine{Addr: l}}
		a.lines[l] = ag
	}
	return ag
}

// Consume folds one event into the analyzer.
func (a *Analyzer) Consume(e trace.Event) {
	a.events++
	a.coreSeen[e.Core] = true
	switch e.Kind {
	case trace.KCharge:
		a.consumeCharge(e)

	case trace.KStore, trace.KStoreT:
		ag := a.line(e.Addr)
		ag.Stores++
		if ag.written && ag.writer != e.Core {
			ag.PingPong++
		}
		ag.writer, ag.written = e.Core, true
		a.lastWriter[e.Addr&lineMask] = e.Core

	case trace.KCohSnoop, trace.KCohInval, trace.KCohDowngrade, trace.KCohWriteback:
		ag := a.line(e.Addr)
		ag.Transfers++
		if peer, ok := a.lastWriter[e.Addr&lineMask]; ok && peer != e.Core {
			a.hints[e.Core] = append(a.hints[e.Core],
				hintRec{cycle: e.Cycle, peer: peer, kind: EdgeCoherence})
		}

	case trace.KWPQEnqueue:
		ag := a.line(e.Addr)
		ag.Enqueues++
		ag.pendEnq = append(ag.pendEnq, e.Cycle)

	case trace.KWPQDrain:
		a.lastDrainCore, a.lastDrainSeen = e.Core, true
		if e.Addr != 0 {
			// Address-stamped drains (satellite of this PR) close the
			// per-line enqueue->drain residency pairing.
			ag := a.line(e.Addr)
			if n := len(ag.pendEnq); n > 0 {
				enq := ag.pendEnq[0]
				ag.pendEnq = ag.pendEnq[1:]
				if e.Cycle > enq {
					ag.Residency += e.Cycle - enq
				}
			}
		}

	case trace.KWPQStall:
		ag := a.line(e.Addr)
		ag.Stalls++
		ag.StallCycles += e.Arg
		// The drain that freed the queue space retired immediately
		// before this event in emission order (the device drains inside
		// the same persist call), so the last drain's core is the peer
		// whose entry was blocking.
		if a.lastDrainSeen && a.lastDrainCore != e.Core {
			a.hints[e.Core] = append(a.hints[e.Core],
				hintRec{cycle: e.Cycle, peer: a.lastDrainCore, kind: EdgeWPQDrain})
		}

	case trace.KWPQRemote:
		ag := a.line(e.Addr)
		ag.Remote++
		ag.RemoteCycles += e.Arg

	case trace.KSigHit:
		ag := a.line(e.Addr)
		ag.SigHits++
		if peer, ok := a.lastWriter[e.Addr&lineMask]; ok && peer != e.Core {
			a.hints[e.Core] = append(a.hints[e.Core],
				hintRec{cycle: e.Cycle, peer: peer, kind: EdgeLazyConflict})
		}
	}
}

// consumeCharge extends the emitting core's node chain. A charge is a
// post-advance record: the segment [Cycle-Arg, Cycle] tiles the core's
// region contiguously; a gap or overlap breaks the contract and is
// reported by Analyze.
func (a *Analyzer) consumeCharge(e trace.Event) {
	c := e.Core
	cause := profile.Cause(e.Addr)
	if cause == profile.CauseNone || cause >= profile.Cause(len(a.totals[c])) {
		if a.causeErr == nil {
			a.causeErr = fmt.Errorf("critpath: charge with unknown cause %d at cycle %d", e.Addr, e.Cycle)
		}
		return
	}
	start := e.Cycle - e.Arg
	if !a.baseSeen[c] {
		a.base[c], a.baseSeen[c] = start, true
	}
	a.totals[c][cause] += e.Arg
	ns := a.nodes[c]
	if a.openOK[c] {
		top := &ns[len(ns)-1]
		if top.End != start && a.tileErr == nil {
			a.tileErr = fmt.Errorf("critpath: core %d charge stream does not tile: segment starts at %d, previous ends at %d",
				c, start, top.End)
		}
		if top.Cause == cause && top.End == start {
			top.End = e.Cycle
			top.Charges++
			return
		}
	}
	a.nodes[c] = append(ns, Node{Core: int(c), Cause: cause, Start: start, End: e.Cycle, Charges: 1})
	a.openOK[c] = true
}

// Analyze finalizes the replay. dropped is the producing tracer's
// ring-overflow count: a lossy stream cannot tile, so it is an error
// (stream with a spill sink, or shrink the run, to keep it complete).
func Analyze(events []trace.Event, dropped uint64) (*Analysis, error) {
	a := New()
	for _, e := range events {
		a.Consume(e)
	}
	return a.Analyze(dropped)
}

// Analyze computes the critical path, the DAG slack, the what-if
// projections and the hot-line ranking from the consumed stream.
func (a *Analyzer) Analyze(dropped uint64) (*Analysis, error) {
	if dropped > 0 {
		return nil, fmt.Errorf("critpath: trace dropped %d events; the charge stream cannot tile", dropped)
	}
	if a.causeErr != nil {
		return nil, a.causeErr
	}
	if a.tileErr != nil {
		return nil, a.tileErr
	}
	var cores []int
	for c := 0; c < 256; c++ {
		if len(a.nodes[c]) > 0 {
			cores = append(cores, c)
		}
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("critpath: no KCharge events in the stream; run with profiling enabled")
	}

	an := &Analysis{Cores: len(cores), Dropped: dropped}

	// Region bounds. All cores share the measured-region start (the
	// harness syncs clocks at the boundary); the makespan core is the
	// one whose last charge lands latest.
	start, end, m := ^uint64(0), uint64(0), cores[0]
	for _, c := range cores {
		ns := a.nodes[c]
		if b := a.base[uint8(c)]; b < start {
			start = b
		}
		if e := ns[len(ns)-1].End; e > end {
			end, m = e, c
		}
		an.perCore = append(an.perCore, coreTotals{
			core: c, base: a.base[uint8(c)], last: ns[len(ns)-1].End, causes: a.totals[c],
		})
		for cause, n := range a.totals[c] {
			an.RawCycles[cause] += n
		}
	}
	an.Start, an.Makespan = start, end-start

	a.walk(an, m, end)
	a.dag(an, start, end)
	a.whatIf(an)
	a.hotLines(an)
	return an, nil
}

// walk runs the backward blame walk from the makespan core's last
// cycle. Each iteration attributes the portion of the current core's
// charge segment below the cursor and moves the cursor to the segment
// start; blocked segments with a resolvable peer hop the walk across
// cores. The per-core tiling makes the attributed total exactly
// end - base regardless of hop choices.
func (a *Analyzer) walk(an *Analysis, m int, end uint64) {
	x, cur := end, m
	for x > a.base[uint8(cur)] {
		ns := a.nodes[cur]
		// Greatest segment with Start < x; tiling guarantees x <= End.
		i := sort.Search(len(ns), func(i int) bool { return ns[i].Start >= x }) - 1
		if i < 0 {
			break // stream cut below this core's first charge
		}
		seg := ns[i]
		an.PathCycles[seg.Cause] += x - seg.Start
		an.Steps = append(an.Steps, Step{Core: cur, Cause: seg.Cause, Start: seg.Start, End: x, Edge: EdgeProgram})
		x = seg.Start
		if ek, blocked := blockingEdge(seg.Cause); blocked {
			if peer, ok := a.hintPeer(cur, ek, seg.End); ok && peer != cur {
				if a.covers(peer, x) {
					// The path entered the blocked segment along the wait
					// edge from the peer's earlier work.
					an.Steps[len(an.Steps)-1].Edge = ek
					cur = peer
					an.Hops++
					an.HopsByEdge[ek]++
				}
			}
		}
	}
	an.PathLen = end - x
	// Oldest first, like a forward reading of the path.
	for i, j := 0, len(an.Steps)-1; i < j; i, j = i+1, j-1 {
		an.Steps[i], an.Steps[j] = an.Steps[j], an.Steps[i]
	}
}

// hintPeer returns the peer of the latest wait hint of the given kind
// on core c at or before cycle.
func (a *Analyzer) hintPeer(c int, kind EdgeKind, cycle uint64) (int, bool) {
	hs := a.hints[c]
	for i := len(hs) - 1; i >= 0; i-- {
		if hs[i].cycle > cycle {
			continue
		}
		if hs[i].kind == kind {
			return int(hs[i].peer), true
		}
	}
	return 0, false
}

// covers reports whether core c's charge tiling contains cycle x
// (exclusive start: a segment [s, e] covers x when s < x <= e).
func (a *Analyzer) covers(c int, x uint64) bool {
	ns := a.nodes[c]
	if len(ns) == 0 {
		return false
	}
	return a.base[uint8(c)] < x && x <= ns[len(ns)-1].End
}

// dag materializes the flattened node list, the cross-core wait edges,
// and the CPM slack pass.
func (a *Analyzer) dag(an *Analysis, start, end uint64) {
	// Flatten nodes core-major; remember each core's offset.
	off := map[int]int{}
	for c := 0; c < 256; c++ {
		if len(a.nodes[c]) == 0 {
			continue
		}
		off[c] = len(an.Nodes)
		an.Nodes = append(an.Nodes, a.nodes[c]...)
	}
	// nodeAt finds the index of core c's node containing cycle
	// (exclusive start, like the walk: [Start, End] covers Start < cycle
	// <= End, so a witness event stamped at a segment boundary maps to
	// the segment that ends there).
	nodeAt := func(c int, cycle uint64) (int, bool) {
		ns := a.nodes[c]
		i := sort.Search(len(ns), func(i int) bool { return ns[i].Start >= cycle }) - 1
		if i < 0 || cycle > ns[i].End {
			return 0, false
		}
		return off[c] + i, true
	}
	// lastBefore finds core c's last node ending at or before cycle.
	lastBefore := func(c int, cycle uint64) (int, bool) {
		ns := a.nodes[c]
		i := sort.Search(len(ns), func(i int) bool { return ns[i].End > cycle }) - 1
		if i < 0 {
			return 0, false
		}
		return off[c] + i, true
	}
	seen := map[Edge]struct{}{}
	for c := 0; c < 256; c++ {
		for _, h := range a.hints[c] {
			to, ok := nodeAt(c, h.cycle)
			if !ok {
				continue
			}
			from, ok := lastBefore(int(h.peer), an.Nodes[to].Start)
			if !ok {
				continue
			}
			e := Edge{Kind: h.kind, From: from, To: to}
			if _, dup := seen[e]; dup || from == to {
				continue
			}
			seen[e] = struct{}{}
			an.Edges = append(an.Edges, e)
		}
	}
	sort.Slice(an.Edges, func(i, j int) bool {
		if an.Edges[i].To != an.Edges[j].To {
			return an.Edges[i].To < an.Edges[j].To
		}
		if an.Edges[i].From != an.Edges[j].From {
			return an.Edges[i].From < an.Edges[j].From
		}
		return an.Edges[i].Kind < an.Edges[j].Kind
	})

	// CPM backward pass for latest-finish times. Program-order edges
	// chain each core; wait edges constrain the source to finish before
	// the target starts (every edge satisfies End(from) <= Start(to), so
	// processing nodes by descending End is reverse-topological).
	lf := make([]uint64, len(an.Nodes))
	for i := range lf {
		lf[i] = end
	}
	relax := func(from, to int) {
		if ls := lf[to] - an.Nodes[to].Dur(); ls < lf[from] {
			lf[from] = ls
		}
	}
	order := make([]int, len(an.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if an.Nodes[order[i]].End != an.Nodes[order[j]].End {
			return an.Nodes[order[i]].End > an.Nodes[order[j]].End
		}
		return order[i] > order[j]
	})
	inEdges := map[int][]Edge{}
	for _, e := range an.Edges {
		inEdges[e.To] = append(inEdges[e.To], e)
	}
	for _, v := range order {
		// Program-order predecessor on the same core.
		if v > 0 && an.Nodes[v-1].Core == an.Nodes[v].Core {
			relax(v-1, v)
		}
		for _, e := range inEdges[v] {
			relax(e.From, v)
		}
	}
	entries := make([]SlackEntry, len(an.Nodes))
	for i, n := range an.Nodes {
		entries[i] = SlackEntry{Node: n, Slack: lf[i] - n.End}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Slack != entries[j].Slack {
			return entries[i].Slack > entries[j].Slack
		}
		if entries[i].Node.Dur() != entries[j].Node.Dur() {
			return entries[i].Node.Dur() > entries[j].Node.Dur()
		}
		if entries[i].Node.Core != entries[j].Node.Core {
			return entries[i].Node.Core < entries[j].Node.Core
		}
		return entries[i].Node.Start < entries[j].Node.Start
	})
	if len(entries) > maxSlackTop {
		entries = entries[:maxSlackTop]
	}
	an.SlackTop = entries
	_ = start
}

// whatIf computes the standard projections from the per-core totals.
func (a *Analyzer) whatIf(an *Analysis) {
	for _, p := range projections {
		var projected uint64
		for _, ct := range an.perCore {
			rem := ct.last - ct.base
			for _, cause := range p.causes {
				rem -= ct.causes[cause]
			}
			if rem > projected {
				projected = rem
			}
		}
		sp := 0.0
		if projected > 0 {
			sp = float64(an.Makespan) / float64(projected)
		}
		an.WhatIf = append(an.WhatIf, Projection{
			Name: p.name, Causes: p.causes, Makespan: projected, Speedup: sp,
		})
	}
}

// hotLines reduces the per-line map into the deterministic ranking.
func (a *Analyzer) hotLines(an *Analysis) {
	an.TotalLines = len(a.lines)
	hl := make([]HotLine, 0, len(a.lines))
	for _, ag := range a.lines { //slpmt:determinism-ok: collected entries are sorted below
		if ag.Score() == 0 && ag.SerCycles() == 0 {
			continue
		}
		hl = append(hl, ag.HotLine)
	}
	sort.Slice(hl, func(i, j int) bool {
		if hl[i].Score() != hl[j].Score() {
			return hl[i].Score() > hl[j].Score()
		}
		if hl[i].SerCycles() != hl[j].SerCycles() {
			return hl[i].SerCycles() > hl[j].SerCycles()
		}
		return hl[i].Addr < hl[j].Addr
	})
	if len(hl) > maxHotLines {
		hl = hl[:maxHotLines]
	}
	an.HotLines = hl
}

// Check asserts the conservation-style contract: the critical-path
// length equals the measured makespan, the per-cause path shares sum to
// the path, and every core's charges tile its region exactly.
func (an *Analysis) Check() error {
	if an.PathLen != an.Makespan {
		return fmt.Errorf("critpath: path length %d != makespan %d", an.PathLen, an.Makespan)
	}
	if s := an.PathCycles.Sum(); s != an.PathLen {
		return fmt.Errorf("critpath: per-cause path shares sum to %d, path length %d", s, an.PathLen)
	}
	for _, ct := range an.perCore {
		if got, want := ct.causes.Sum(), ct.last-ct.base; got != want {
			return fmt.Errorf("critpath: core %d charges sum to %d, region spans %d", ct.core, got, want)
		}
	}
	return nil
}

// ByCause returns the critical path's nonzero per-cause cycles keyed by
// canonical cause name — the BENCH json `critical_path_by_cause` object.
func (an *Analysis) ByCause() map[string]uint64 {
	out := map[string]uint64{}
	for _, c := range profile.Causes() {
		if n := an.PathCycles[c]; n != 0 {
			out[c.String()] = n
		}
	}
	return out
}

// Render writes the canonical text report: byte-identical for identical
// streams, whichever pipeline (ring or binlog) carried them — the
// stream-check gate compares exactly this string. hotN caps the
// hot-line section (<= 0 selects 10).
func (an *Analysis) Render(hotN int) string {
	if hotN <= 0 {
		hotN = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: makespan %d cycles over %d cores, path length %d, %d cross-core hops",
		an.Makespan, an.Cores, an.PathLen, an.Hops)
	if an.Hops > 0 {
		var hs []string
		for k := EdgeKind(0); k < numEdgeKinds; k++ {
			if n := an.HopsByEdge[k]; n > 0 {
				hs = append(hs, fmt.Sprintf("%s=%d", k, n))
			}
		}
		fmt.Fprintf(&b, " (%s)", strings.Join(hs, " "))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "dag: %d nodes, %d wait edges\n", len(an.Nodes), len(an.Edges))

	b.WriteString("\ncritical path by cause (critical share vs raw core-cycle share):\n")
	rawTotal := an.RawCycles.Sum()
	for _, name := range sortedCauses(&an.PathCycles) {
		c, _ := profile.ByName(name)
		crit := float64(an.PathCycles[c]) / float64(an.PathLen)
		raw := 0.0
		if rawTotal > 0 {
			raw = float64(an.RawCycles[c]) / float64(rawTotal)
		}
		fmt.Fprintf(&b, "  %-13s %12d  crit %5.1f%%  raw %5.1f%%\n",
			name, an.PathCycles[c], 100*crit, 100*raw)
	}

	b.WriteString("\nslack top (latest finish minus measured finish, per DAG node):\n")
	for _, s := range an.SlackTop {
		fmt.Fprintf(&b, "  core %d %-13s [%d..%d] dur %d slack %d\n",
			s.Node.Core, s.Node.Cause, s.Node.Start, s.Node.End, s.Node.Dur(), s.Slack)
	}

	b.WriteString("\nwhat-if projections (causes zeroed on every core):\n")
	for _, p := range an.WhatIf {
		var cs []string
		for _, c := range p.Causes {
			cs = append(cs, c.String())
		}
		fmt.Fprintf(&b, "  %-18s makespan %12d  speedup %.2fx  (zeroing %s)\n",
			p.Name, p.Makespan, p.Speedup, strings.Join(cs, "+"))
	}

	fmt.Fprintf(&b, "\nhot lines (top %d of %d contended, by contention events):\n", min(hotN, len(an.HotLines)), an.TotalLines)
	fmt.Fprintf(&b, "  %-12s %6s %6s %6s %6s %6s %6s %10s %10s %10s\n",
		"line", "score", "coh", "ppng", "stall", "sig", "rmt", "stall.cyc", "rmt.cyc", "wpq.cyc")
	for i, h := range an.HotLines {
		if i >= hotN {
			break
		}
		fmt.Fprintf(&b, "  %#-12x %6d %6d %6d %6d %6d %6d %10d %10d %10d\n",
			h.Addr, h.Score(), h.Transfers, h.PingPong, h.Stalls, h.SigHits, h.Remote,
			h.StallCycles, h.RemoteCycles, h.Residency)
	}
	return b.String()
}

// sortedCauses returns the vector's nonzero cause names sorted by
// descending cycles (ties by name).
func sortedCauses(v *profile.Vector) []string {
	type kv struct {
		name string
		n    uint64
	}
	var out []kv
	for _, c := range profile.Causes() {
		if n := v[c]; n != 0 {
			out = append(out, kv{c.String(), n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n > out[j].n
		}
		return out[i].name < out[j].name
	})
	names := make([]string, len(out))
	for i, e := range out {
		names[i] = e.name
	}
	return names
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
