package critpath

import (
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/trace"
)

// microEvents is a hand-built two-core stream with a known critical
// path. Both cores start at cycle 1000 (shared base). Core 1 computes
// [1000,1080], then works the log [1080,1300]; along the way it
// enqueues a line and the device drains it at 1120. Core 0 computes
// [1000,1100], stalls on WPQ backpressure [1100,1150] — released by
// core 1's drain — then computes to 1400. The makespan is core 0's
// 400 cycles; the critical path is core 1's prefix up to 1100 (hop
// target), the stall, and core 0's tail.
func microEvents() []trace.Event {
	ev := func(core int, cyc uint64, k trace.Kind, addr, arg uint64) trace.Event {
		return trace.Event{Cycle: cyc, Addr: addr, Arg: arg, Kind: k, Core: uint8(core)}
	}
	return []trace.Event{
		// Store/coherence traffic on line 0x2000: core 0 writes, core 1
		// takes ownership (ping-pong), core 0 invalidates back.
		ev(0, 1010, trace.KStore, 0x2000, 8),
		ev(1, 1020, trace.KStore, 0x2010, 8),
		ev(0, 1030, trace.KCohInval, 0x2000, 0),
		// Core 1 persists a line; the device retires it at 1120.
		ev(1, 1050, trace.KWPQEnqueue, 0x1040, 64),
		ev(1, 1080, trace.KCharge, uint64(profile.CauseCompute), 80),
		ev(1, 1120, trace.KWPQDrain, 0x1040, 0),
		// Core 0's stall ends at 1150 after waiting 50 cycles; the drain
		// above freed the space (emission order is the witness).
		ev(0, 1100, trace.KCharge, uint64(profile.CauseCompute), 100),
		ev(0, 1150, trace.KWPQStall, 0x2000, 50),
		ev(0, 1150, trace.KCharge, uint64(profile.CauseWPQStall), 50),
		// A retained-signature hit on an otherwise quiet line.
		ev(0, 1160, trace.KSigHit, 0x2040, 1),
		ev(0, 1400, trace.KCharge, uint64(profile.CauseCompute), 250),
		ev(1, 1300, trace.KCharge, uint64(profile.CauseLogSync), 220),
	}
}

func TestMicroDAGGolden(t *testing.T) {
	an, err := Analyze(microEvents(), 0)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := an.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if an.Cores != 2 || an.Start != 1000 || an.Makespan != 400 {
		t.Fatalf("region: cores=%d start=%d makespan=%d, want 2/1000/400",
			an.Cores, an.Start, an.Makespan)
	}
	if an.PathLen != 400 {
		t.Fatalf("path length %d, want 400 (== makespan)", an.PathLen)
	}

	// Per-cause critical shares: core 0's compute tail (250) + core 1's
	// compute prefix (80) = 330 compute, 50 wpq.stall, and 20 cycles of
	// core 1's log.sync (the slice between its compute and the hop
	// point at 1100).
	want := map[profile.Cause]uint64{
		profile.CauseCompute:  330,
		profile.CauseWPQStall: 50,
		profile.CauseLogSync:  20,
	}
	for c, n := range want {
		if an.PathCycles[c] != n {
			t.Errorf("path cycles for %s = %d, want %d", c, an.PathCycles[c], n)
		}
	}
	if got := an.PathCycles.Sum(); got != 400 {
		t.Errorf("path cycles sum %d, want 400", got)
	}

	if an.Hops != 1 || an.HopsByEdge[EdgeWPQDrain] != 1 {
		t.Fatalf("hops=%d byEdge=%v, want one wpq.drain hop", an.Hops, an.HopsByEdge)
	}
	wantSteps := []Step{
		{Core: 1, Cause: profile.CauseCompute, Start: 1000, End: 1080, Edge: EdgeProgram},
		{Core: 1, Cause: profile.CauseLogSync, Start: 1080, End: 1100, Edge: EdgeProgram},
		{Core: 0, Cause: profile.CauseWPQStall, Start: 1100, End: 1150, Edge: EdgeWPQDrain},
		{Core: 0, Cause: profile.CauseCompute, Start: 1150, End: 1400, Edge: EdgeProgram},
	}
	if len(an.Steps) != len(wantSteps) {
		t.Fatalf("steps %v, want %v", an.Steps, wantSteps)
	}
	for i, s := range wantSteps {
		if an.Steps[i] != s {
			t.Errorf("step %d = %+v, want %+v", i, an.Steps[i], s)
		}
	}

	// The DAG: three nodes on core 0, two on core 1, one materialized
	// wait edge (core 1's first node -> core 0's stall node). The
	// coherence hint at 1030 finds no source node that finishes before
	// its target starts, so it stays a hint, not an edge.
	if len(an.Nodes) != 5 || len(an.Edges) != 1 {
		t.Fatalf("dag: %d nodes %d edges, want 5/1", len(an.Nodes), len(an.Edges))
	}
	if e := an.Edges[0]; e.Kind != EdgeWPQDrain || e.From != 3 || e.To != 1 {
		t.Fatalf("edge = %+v, want wpq.drain 3->1", e)
	}

	// CPM slack: the three core-0 nodes are critical (slack 0); core 1's
	// compute must finish by 1100 to release the stall (slack 20), and
	// its log tail can slide to the makespan (slack 100).
	slack := map[Node]uint64{}
	for _, s := range an.SlackTop {
		slack[s.Node] = s.Slack
	}
	wantSlack := []struct {
		core  int
		cause profile.Cause
		start uint64
		slack uint64
	}{
		{0, profile.CauseCompute, 1000, 0},
		{0, profile.CauseWPQStall, 1100, 0},
		{0, profile.CauseCompute, 1150, 0},
		{1, profile.CauseCompute, 1000, 20},
		{1, profile.CauseLogSync, 1080, 100},
	}
	for _, w := range wantSlack {
		found := false
		for n, s := range slack {
			if n.Core == w.core && n.Cause == w.cause && n.Start == w.start {
				found = true
				if s != w.slack {
					t.Errorf("slack(core %d %s @%d) = %d, want %d", w.core, w.cause, w.start, s, w.slack)
				}
			}
		}
		if !found {
			t.Errorf("no slack entry for core %d %s @%d", w.core, w.cause, w.start)
		}
	}

	// What-if projections: zeroing the stall takes core 0 to 350 while
	// core 1 holds 300; the other standard projections change nothing
	// in this stream.
	wantProj := map[string]uint64{
		"commit-flush-async": 400,
		"wpq-infinite":       350,
		"remote-zeroed":      400,
		"window-inf":         400,
	}
	for _, p := range an.WhatIf {
		if want, ok := wantProj[p.Name]; !ok || p.Makespan != want {
			t.Errorf("projection %s makespan %d, want %d", p.Name, p.Makespan, wantProj[p.Name])
		}
	}
	if len(an.WhatIf) != len(wantProj) {
		t.Errorf("%d projections, want %d", len(an.WhatIf), len(wantProj))
	}

	// Hot lines: 0x2000 leads (coherence transfer + ping-pong + stall),
	// then the sig-hit line, then the drained line (residency only).
	if an.TotalLines != 3 || len(an.HotLines) != 3 {
		t.Fatalf("hot lines: total=%d listed=%d, want 3/3", an.TotalLines, len(an.HotLines))
	}
	h := an.HotLines[0]
	if h.Addr != 0x2000 || h.Score() != 3 || h.StallCycles != 50 || h.PingPong != 1 || h.Transfers != 1 {
		t.Fatalf("top hot line = %+v, want 0x2000 score 3 stall 50", h)
	}
	if h := an.HotLines[1]; h.Addr != 0x2040 || h.SigHits != 1 {
		t.Fatalf("second hot line = %+v, want 0x2040 sig 1", h)
	}
	if h := an.HotLines[2]; h.Addr != 0x1040 || h.Residency != 70 || h.Enqueues != 1 {
		t.Fatalf("third hot line = %+v, want 0x1040 residency 70", h)
	}
}

// TestRenderDeterministic replays the same stream through two fresh
// analyzers — once via the slice helper, once event-by-event as the
// stream consumer path does — and requires byte-identical reports.
func TestRenderDeterministic(t *testing.T) {
	evs := microEvents()
	a1, err := Analyze(evs, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	if c.Kinds() == 0 {
		t.Fatal("empty kind mask")
	}
	for _, e := range evs {
		c.Consume(e)
	}
	a2, err := c.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := a1.Render(10), a2.Render(10)
	if r1 != r2 {
		t.Fatalf("renders differ:\n%s\n---\n%s", r1, r2)
	}
	for _, want := range []string{
		"makespan 400 cycles over 2 cores, path length 400, 1 cross-core hops",
		"wpq.drain=1",
		"compute                330  crit  82.5%  raw  61.4%",
		"wpq-infinite       makespan          350  speedup 1.14x",
		"0x2000",
	} {
		if !strings.Contains(r1, want) {
			t.Errorf("render missing %q:\n%s", want, r1)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	ch := func(core int, cyc uint64, cause profile.Cause, n uint64) trace.Event {
		return trace.Event{Cycle: cyc, Addr: uint64(cause), Arg: n, Kind: trace.KCharge, Core: uint8(core)}
	}
	if _, err := Analyze(microEvents(), 3); err == nil {
		t.Error("dropped events: want error")
	}
	if _, err := Analyze(nil, 0); err == nil {
		t.Error("no charges: want error")
	}
	// A gap in the tiling (segment starts after the previous ends).
	if _, err := Analyze([]trace.Event{
		ch(0, 1100, profile.CauseCompute, 100),
		ch(0, 1300, profile.CauseCompute, 50),
	}, 0); err == nil {
		t.Error("tiling gap: want error")
	}
	// An out-of-range cause.
	if _, err := Analyze([]trace.Event{
		{Cycle: 100, Addr: 999, Arg: 10, Kind: trace.KCharge, Core: 0},
	}, 0); err == nil {
		t.Error("unknown cause: want error")
	}
}

// TestEdgeKindRegistry pins the slpmtvet-enforced shape: every edge
// kind has a canonical name and at least one witnessing trace kind.
func TestEdgeKindRegistry(t *testing.T) {
	ks := EdgeKinds()
	if len(ks) != int(numEdgeKinds) {
		t.Fatalf("EdgeKinds() returned %d kinds, want %d", len(ks), numEdgeKinds)
	}
	seen := map[string]bool{}
	for _, k := range ks {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "edge(") {
			t.Errorf("edge kind %d has no canonical name", k)
		}
		if seen[name] {
			t.Errorf("duplicate edge name %q", name)
		}
		seen[name] = true
		if len(k.Kinds()) == 0 {
			t.Errorf("edge kind %s declares no witnessing trace kinds", name)
		}
	}
}
