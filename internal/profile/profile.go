// Package profile is the cycle-attribution layer: every cycle a
// simulated core's clock advances is charged to exactly one Cause, so a
// run's total cycles decompose into exhaustive, non-overlapping buckets
// (the per-mechanism overhead attribution of the paper's §VI
// evaluation). The machine layer calls Add at every clock-advance site;
// the bench harness snapshots the counts into a Breakdown whose
// Conserved check asserts sum(causes) == total cycles per core.
//
// Attribution is observation-only: attaching a Profile changes no
// simulated timing, no counters, and no trace events other than the
// KCharge attribution stream itself.
package profile

import (
	"fmt"
	"io"
	"sort"

	"github.com/persistmem/slpmt/internal/trace"
)

// Cause identifies where a charged cycle went. CauseNone is the "no
// attribution context" sentinel used by the machine layer; it is never
// charged.
type Cause uint8

const (
	CauseNone Cause = iota

	// CauseCompute is workload computation (Tick), the non-memory
	// residue of every operation.
	CauseCompute
	// CauseL1Hit .. CausePMRead are cache-walk service latencies, one
	// bucket per level probed (a miss at a level charges that level's
	// probe latency to its miss bucket; the serving level charges its
	// hit bucket or, for PM, the device read latency).
	CauseL1Hit
	CauseL1Miss
	CauseL2Hit
	CauseL2Miss
	CauseLLCHit
	CauseLLCMiss
	CausePMRead
	// CauseCoherence is cross-core protocol service: snoop round-trips,
	// upgrade invalidations, and dirty remote writebacks.
	CauseCoherence
	// CauseLogAppend is log-record creation at store time, including
	// buffer spills forced while appending.
	CauseLogAppend
	// CauseLogPersist is draining buffered log records to PM (commit
	// stage 1, context switches, and header/tail line writes).
	CauseLogPersist
	// CauseLogSync is the ordering barrier after a log drain: waiting
	// for streamed lines to complete plus the device acknowledgement.
	CauseLogSync
	// CauseCommitMarker is persisting the committed state in the log
	// header.
	CauseCommitMarker
	// CauseCommitData is persisting marked data lines at commit (the
	// serialized commit scan lazy persistency takes transactions off).
	CauseCommitData
	// CauseLazyDrain is deferred persistence of retained transactions'
	// lazy lines (ID recycling, signature hits, final drain).
	CauseLazyDrain
	// CauseWPQEnqueue is the enqueue cost of posted persists issued with
	// no more specific attribution context (e.g. natural writebacks).
	CauseWPQEnqueue
	// CauseWPQStall is time stalled for WPQ space — backpressure from a
	// full write-pending queue, charged separately even when a more
	// specific context is active so saturation stays first-class.
	CauseWPQStall
	// CausePersistSync is the synchronous remainder (service + ack) of
	// uncontexted blocking persists, e.g. abort-path data restores.
	CausePersistSync
	// CauseLogEpoch is the ordering barrier at a group-commit epoch
	// close: the one amortized log sync that replaces the per-
	// transaction CauseLogSync barriers when the commit window exceeds
	// one transaction.
	CauseLogEpoch
	// CauseWPQRemote is cross-socket interconnect time on a multi-socket
	// PM topology: the hop distance a persist into (or a demand fill
	// from) a remote socket's device pays before the device's own
	// latency. Always zero on a single-socket machine.
	CauseWPQRemote
	// CauseAllocArena is time in the sharded per-core heap allocator
	// (txheap.NewSharded). The classic shared heap charges plain
	// CauseCompute; the sharded allocator charges here so arena
	// management stays visible in NUMA breakdowns.
	CauseAllocArena

	numCauses
)

// causeNames maps causes to their canonical dotted names (report keys,
// folded-stack frames). Every cause must have an entry; slpmtvet
// enforces this statically.
var causeNames = [numCauses]string{
	CauseNone:         "none",
	CauseCompute:      "compute",
	CauseL1Hit:        "l1.hit",
	CauseL1Miss:       "l1.miss",
	CauseL2Hit:        "l2.hit",
	CauseL2Miss:       "l2.miss",
	CauseLLCHit:       "llc.hit",
	CauseLLCMiss:      "llc.miss",
	CausePMRead:       "pm.read",
	CauseCoherence:    "coherence",
	CauseLogAppend:    "log.append",
	CauseLogPersist:   "log.persist",
	CauseLogSync:      "log.sync",
	CauseCommitMarker: "commit.marker",
	CauseCommitData:   "commit.data",
	CauseLazyDrain:    "lazy.drain",
	CauseWPQEnqueue:   "wpq.enqueue",
	CauseWPQStall:     "wpq.stall",
	CausePersistSync:  "persist.sync",
	CauseLogEpoch:     "log.epoch",
	CauseWPQRemote:    "wpq.remote",
	CauseAllocArena:   "alloc.arena",
}

// causeGroups maps causes to coarse report groups (breakdown-table
// columns and flamegraph top frames).
var causeGroups = [numCauses]string{
	CauseNone:         "none",
	CauseCompute:      "compute",
	CauseL1Hit:        "cache",
	CauseL1Miss:       "cache",
	CauseL2Hit:        "cache",
	CauseL2Miss:       "cache",
	CauseLLCHit:       "cache",
	CauseLLCMiss:      "cache",
	CausePMRead:       "cache",
	CauseCoherence:    "coherence",
	CauseLogAppend:    "log",
	CauseLogPersist:   "log",
	CauseLogSync:      "log",
	CauseCommitMarker: "commit",
	CauseCommitData:   "commit",
	CauseLazyDrain:    "lazy",
	CauseWPQEnqueue:   "wpq",
	CauseWPQStall:     "wpq",
	CausePersistSync:  "wpq",
	CauseLogEpoch:     "log",
	CauseWPQRemote:    "wpq",
	CauseAllocArena:   "compute",
}

// causeKinds ties every cause to the trace kinds that witness it in the
// SLPTRC01 stream: KCharge carries the attribution itself, and the
// semantic kinds listed here mark the activity being charged. slpmtvet
// requires a non-empty entry per cause, so a cause cannot be added
// without declaring how it shows up in a trace.
var causeKinds = [numCauses][]trace.Kind{
	CauseNone:         {trace.KNone},
	CauseCompute:      {trace.KCharge},
	CauseL1Hit:        {trace.KCharge},
	CauseL1Miss:       {trace.KCacheMiss},
	CauseL2Hit:        {trace.KCacheMiss},
	CauseL2Miss:       {trace.KCacheMiss},
	CauseLLCHit:       {trace.KCacheMiss},
	CauseLLCMiss:      {trace.KCacheMiss},
	CausePMRead:       {trace.KCacheMiss},
	CauseCoherence:    {trace.KCohSnoop, trace.KCohInval, trace.KCohDowngrade, trace.KCohWriteback},
	CauseLogAppend:    {trace.KLogAppend},
	CauseLogPersist:   {trace.KLogPersist},
	CauseLogSync:      {trace.KLogSync},
	CauseCommitMarker: {trace.KCommitMarker},
	CauseCommitData:   {trace.KCommitStart, trace.KTxCommit},
	CauseLazyDrain:    {trace.KLazyDrainStart, trace.KLazyDrainEnd},
	CauseWPQEnqueue:   {trace.KWPQEnqueue},
	CauseWPQStall:     {trace.KWPQStall},
	CausePersistSync:  {trace.KWPQDrain},
	CauseLogEpoch:     {trace.KEpochClose},
	CauseWPQRemote:    {trace.KWPQRemote},
	CauseAllocArena:   {trace.KCharge},
}

// String returns the canonical dotted name.
func (c Cause) String() string {
	if c < numCauses {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Group returns the coarse report group the cause belongs to.
func (c Cause) Group() string {
	if c < numCauses {
		return causeGroups[c]
	}
	return "none"
}

// Kinds returns the trace kinds witnessing the cause.
func (c Cause) Kinds() []trace.Kind {
	if c < numCauses {
		return causeKinds[c]
	}
	return nil
}

// Causes returns every chargeable cause (CauseNone excluded), in enum
// order.
func Causes() []Cause {
	out := make([]Cause, 0, numCauses-1)
	for c := CauseNone + 1; c < numCauses; c++ {
		out = append(out, c)
	}
	return out
}

// Groups returns the canonical report-group order.
func Groups() []string {
	return []string{"compute", "cache", "coherence", "log", "commit", "lazy", "wpq"}
}

// ByName resolves a canonical dotted name to its cause.
func ByName(name string) (Cause, bool) {
	for c := CauseNone + 1; c < numCauses; c++ {
		if causeNames[c] == name {
			return c, true
		}
	}
	return CauseNone, false
}

// Vector is a per-cause cycle count.
type Vector [numCauses]uint64

// Sum returns the total cycles across all causes.
func (v *Vector) Sum() uint64 {
	var s uint64
	for _, n := range v {
		s += n
	}
	return s
}

// Profile accumulates charged cycles per core and cause. The machine
// hot path calls Add at every clock advance, so it is allocation-free;
// it is not safe for concurrent use (each run owns one machine and one
// profile).
type Profile struct {
	counts []Vector
}

// New returns a profile with one accumulator per core.
func New(cores int) *Profile {
	if cores < 1 {
		cores = 1
	}
	return &Profile{counts: make([]Vector, cores)}
}

// Cores returns the number of per-core accumulators.
func (p *Profile) Cores() int { return len(p.counts) }

// Add charges n cycles on the given core to cause.
//
//slpmt:noalloc
func (p *Profile) Add(core int, cause Cause, n uint64) {
	p.counts[core][cause] += n
}

// Reset zeroes every accumulator (measured-region start).
func (p *Profile) Reset() {
	for i := range p.counts {
		p.counts[i] = Vector{}
	}
}

// CoreBreakdown is one core's attribution against its clock total.
type CoreBreakdown struct {
	// Core is the core index.
	Core int
	// Total is the core's clock advance over the measured region.
	Total uint64
	// Causes holds the charged cycles per cause.
	Causes Vector
}

// Breakdown is an immutable snapshot of a profile against per-core
// clock totals, taken at the measured region's end (before any
// verification phase advances the clocks further).
type Breakdown struct {
	// Cores holds one entry per simulated core, in core order.
	Cores []CoreBreakdown
}

// Breakdown snapshots the profile against totals[i] = core i's clock
// advance. len(totals) must equal the profile's core count.
func (p *Profile) Breakdown(totals []uint64) *Breakdown {
	if len(totals) != len(p.counts) {
		panic(fmt.Sprintf("profile: %d totals for %d cores", len(totals), len(p.counts)))
	}
	b := &Breakdown{Cores: make([]CoreBreakdown, len(totals))}
	for i, t := range totals {
		b.Cores[i] = CoreBreakdown{Core: i, Total: t, Causes: p.counts[i]}
	}
	return b
}

// Conserved checks the attribution invariant: on every core the charged
// cycles sum exactly to the core's clock total — no unexplained residue
// and no double charge.
func (b *Breakdown) Conserved() error {
	for i := range b.Cores {
		c := &b.Cores[i]
		if got := c.Causes.Sum(); got != c.Total {
			return fmt.Errorf("profile: core %d attribution not conserved: sum(causes)=%d, total=%d (residue %+d)",
				c.Core, got, c.Total, int64(c.Total)-int64(got))
		}
		if c.Causes[CauseNone] != 0 {
			return fmt.Errorf("profile: core %d charged %d cycles to the none sentinel", c.Core, c.Causes[CauseNone])
		}
	}
	return nil
}

// Merged returns the cause vector summed across cores.
func (b *Breakdown) Merged() Vector {
	var v Vector
	for i := range b.Cores {
		for c, n := range b.Cores[i].Causes {
			v[c] += n
		}
	}
	return v
}

// TotalCycles returns the per-core totals summed (the denominator for
// share-of-cycles figures; on multi-core runs this is core-cycles, not
// makespan).
func (b *Breakdown) TotalCycles() uint64 {
	var s uint64
	for i := range b.Cores {
		s += b.Cores[i].Total
	}
	return s
}

// ByName returns the merged nonzero counts keyed by canonical cause
// name — the BENCH json `cycles_by_cause` object.
func (b *Breakdown) ByName() map[string]uint64 {
	v := b.Merged()
	out := make(map[string]uint64)
	for c := CauseNone + 1; c < numCauses; c++ {
		if v[c] != 0 {
			out[causeNames[c]] = v[c]
		}
	}
	return out
}

// ByGroup returns the merged counts folded into report groups.
func (b *Breakdown) ByGroup() map[string]uint64 {
	v := b.Merged()
	out := make(map[string]uint64)
	for c := CauseNone + 1; c < numCauses; c++ {
		if v[c] != 0 {
			out[causeGroups[c]] += v[c]
		}
	}
	return out
}

// FromEvents rebuilds a profile from a trace's KCharge events — the
// offline path for attribution over a saved SLPTRC01 stream. It fails
// if the ring dropped events (the stream is incomplete, so conservation
// cannot hold) or if an event carries an unknown cause.
func FromEvents(events []trace.Event, dropped uint64) (*Profile, error) {
	if dropped > 0 {
		return nil, fmt.Errorf("profile: trace dropped %d events; attribution stream incomplete", dropped)
	}
	cores := 1
	for i := range events {
		if n := int(events[i].Core) + 1; n > cores {
			cores = n
		}
	}
	p := New(cores)
	for i := range events {
		e := &events[i]
		if e.Kind != trace.KCharge {
			continue
		}
		c := Cause(e.Addr)
		if c == CauseNone || c >= numCauses {
			return nil, fmt.Errorf("profile: event %d charges unknown cause %d", i, uint64(e.Addr))
		}
		p.Add(int(e.Core), c, e.Arg)
	}
	return p, nil
}

// WriteFolded emits the breakdown in folded-stack format, one
// `frame;frame;... count` line per nonzero (core, cause) bucket, for
// flamegraph tooling. prefix frames (e.g. "SLPMT;hashtable") lead each
// stack; group and cause frames follow.
func WriteFolded(w io.Writer, prefix string, b *Breakdown) error {
	for i := range b.Cores {
		cb := &b.Cores[i]
		for c := CauseNone + 1; c < numCauses; c++ {
			n := cb.Causes[c]
			if n == 0 {
				continue
			}
			head := prefix
			if head != "" {
				head += ";"
			}
			if _, err := fmt.Fprintf(w, "%score%d;%s;%s %d\n", head, cb.Core, causeGroups[c], causeNames[c], n); err != nil {
				return err
			}
		}
	}
	return nil
}

// SortedNames returns the nonzero merged cause names sorted by
// descending cycle count (ties by name) — the rendering order for
// breakdown tables.
func (b *Breakdown) SortedNames() []string {
	by := b.ByName()
	names := make([]string, 0, len(by))
	for n := range by { //slpmt:determinism-ok: collected keys are sorted below
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if by[names[i]] != by[names[j]] {
			return by[names[i]] > by[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}
