package profile

import (
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/trace"
)

// TestCauseTablesComplete pins what slpmtvet also enforces statically:
// every cause has a nonempty unique name, a group from the canonical
// set, and at least one witnessing trace kind.
func TestCauseTablesComplete(t *testing.T) {
	groups := map[string]bool{}
	for _, g := range Groups() {
		groups[g] = true
	}
	seen := map[string]Cause{}
	for _, c := range Causes() {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "cause(") {
			t.Errorf("cause %d has no canonical name", c)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("causes %d and %d share the name %q", prev, c, name)
		}
		seen[name] = c
		if !groups[c.Group()] {
			t.Errorf("cause %s has group %q outside Groups()", name, c.Group())
		}
		if len(c.Kinds()) == 0 {
			t.Errorf("cause %s maps to no trace kind", name)
		}
		got, ok := ByName(name)
		if !ok || got != c {
			t.Errorf("ByName(%q) = %v, %v; want %v", name, got, ok, c)
		}
	}
}

func TestConserved(t *testing.T) {
	p := New(2)
	p.Add(0, CauseCompute, 70)
	p.Add(0, CauseL1Hit, 30)
	p.Add(1, CauseLogAppend, 50)

	if err := p.Breakdown([]uint64{100, 50}).Conserved(); err != nil {
		t.Errorf("conserved breakdown rejected: %v", err)
	}
	if err := p.Breakdown([]uint64{101, 50}).Conserved(); err == nil {
		t.Error("unattributed residue not detected")
	} else if !strings.Contains(err.Error(), "core 0") {
		t.Errorf("wrong core blamed: %v", err)
	}
	if err := p.Breakdown([]uint64{100, 49}).Conserved(); err == nil {
		t.Error("over-attribution not detected")
	}
}

func TestConservedRejectsNoneCharges(t *testing.T) {
	p := New(1)
	p.Add(0, CauseNone, 5)
	if err := p.Breakdown([]uint64{5}).Conserved(); err == nil {
		t.Error("charge against the none sentinel not detected")
	}
}

func TestResetAndMerge(t *testing.T) {
	p := New(2)
	p.Add(0, CauseCompute, 10)
	p.Add(1, CauseCompute, 20)
	p.Add(1, CauseWPQStall, 5)
	b := p.Breakdown([]uint64{10, 25})
	if m := b.Merged(); m[CauseCompute] != 30 || m[CauseWPQStall] != 5 {
		t.Errorf("merged vector wrong: %v", m)
	}
	if got := b.TotalCycles(); got != 35 {
		t.Errorf("TotalCycles = %d, want 35", got)
	}
	by := b.ByName()
	if by["compute"] != 30 || by["wpq.stall"] != 5 || len(by) != 2 {
		t.Errorf("ByName wrong: %v", by)
	}
	bg := b.ByGroup()
	if bg["compute"] != 30 || bg["wpq"] != 5 || len(bg) != 2 {
		t.Errorf("ByGroup wrong: %v", bg)
	}
	p.Reset()
	merged := p.Breakdown([]uint64{0, 0}).Merged()
	if got := merged.Sum(); got != 0 {
		t.Errorf("Reset left %d cycles", got)
	}
}

func TestFromEvents(t *testing.T) {
	tr := trace.New(64)
	tr.Emit(0, 10, trace.KCharge, uint64(CauseCompute), 7)
	tr.Emit(1, 11, trace.KCharge, uint64(CauseLogSync), 3)
	tr.Emit(0, 12, trace.KTxCommit, 0, 1) // non-charge events are ignored
	p, err := FromEvents(tr.Events(), tr.Dropped())
	if err != nil {
		t.Fatal(err)
	}
	if p.Cores() != 2 {
		t.Fatalf("cores = %d, want 2", p.Cores())
	}
	b := p.Breakdown([]uint64{7, 3})
	if err := b.Conserved(); err != nil {
		t.Error(err)
	}

	if _, err := FromEvents(nil, 1); err == nil {
		t.Error("dropped events not rejected")
	}
	bad := []trace.Event{{Kind: trace.KCharge, Addr: uint64(CauseNone), Arg: 1}}
	if _, err := FromEvents(bad, 0); err == nil {
		t.Error("charge against unknown cause not rejected")
	}
}

func TestSortedNames(t *testing.T) {
	p := New(1)
	p.Add(0, CauseCompute, 5)
	p.Add(0, CauseLogAppend, 50)
	p.Add(0, CauseL1Hit, 5)
	names := p.Breakdown([]uint64{60}).SortedNames()
	if len(names) != 3 || names[0] != "log.append" {
		t.Errorf("SortedNames = %v", names)
	}
	// Equal counts tie-break by name.
	if names[1] != "compute" || names[2] != "l1.hit" {
		t.Errorf("tie-break wrong: %v", names)
	}
}
