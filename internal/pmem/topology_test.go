package pmem

import (
	"reflect"
	"testing"
)

func TestDistanceMatrixHopLinear(t *testing.T) {
	topo := NewTopology(TopoConfig{Sockets: 4})
	m := topo.DistanceMatrix()
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			hops := uint64(a - b)
			if b > a {
				hops = uint64(b - a)
			}
			if want := hops * DefaultRemoteEnqueueCycles; m[a][b] != want {
				t.Errorf("enq[%d][%d] = %d, want %d", a, b, m[a][b], want)
			}
			if m[a][b] != m[b][a] {
				t.Errorf("matrix asymmetric at (%d,%d)", a, b)
			}
			if got, want := topo.ReadExtra(a, b), hops*DefaultRemoteReadCycles; got != want {
				t.Errorf("read[%d][%d] = %d, want %d", a, b, got, want)
			}
		}
		if m[a][a] != 0 {
			t.Errorf("nonzero diagonal at %d", a)
		}
	}
}

// TestDistanceMatrixDeterministic: two topologies built from the same
// config are indistinguishable — same matrix, same string, and the
// same persist sequence produces the same finish times on each.
func TestDistanceMatrixDeterministic(t *testing.T) {
	mk := func() *Topology {
		return NewTopology(TopoConfig{Sockets: 3, RemoteEnqueueCycles: 44, RemoteReadCycles: 91})
	}
	x, y := mk(), mk()
	if !reflect.DeepEqual(x.DistanceMatrix(), y.DistanceMatrix()) {
		t.Error("matrices differ between identical builds")
	}
	if x.String() != y.String() {
		t.Errorf("descriptions differ: %q vs %q", x, y)
	}
	for i := 0; i < 12; i++ {
		s := i % 3
		x.Dev(s).PersistStream(uint64(50*i), uint64(64*i), zline())
		y.Dev(s).PersistStream(uint64(50*i), uint64(64*i), zline())
		if xf, yf := x.Dev(s).LastFinish(), y.Dev(s).LastFinish(); xf != yf {
			t.Fatalf("persist %d finish diverged: %d vs %d", i, xf, yf)
		}
	}
}

// TestSingleSocketTopologyIsDevice: a 1-socket topology must be
// cycle-identical to a bare Device — the golden-compatibility contract.
func TestSingleSocketTopologyIsDevice(t *testing.T) {
	topo := NewTopology(TopoConfig{Sockets: 1})
	plain := New(Config{})
	for i := 0; i < 20; i++ {
		now := uint64(200 * i)
		a := topo.Dev(0).Persist(now, uint64(64*i), zline())
		b := plain.Persist(now, uint64(64*i), zline())
		if a != b {
			t.Fatalf("persist %d stall diverged: %d vs %d", i, a, b)
		}
	}
	tm, ta := topo.OccupancyStats()
	pm, pa := plain.OccupancyStats()
	if tm != pm || ta != pa {
		t.Errorf("occupancy diverged: %d/%d vs %d/%d", tm, ta, pm, pa)
	}
}

// TestSocketsDrainIndependently: the NUMA refactor's payoff in one
// assertion — a burst split over two sockets finishes as fast as half
// the burst on one device, because each socket services its own queue.
func TestSocketsDrainIndependently(t *testing.T) {
	const n = 16
	split := NewTopology(TopoConfig{Sockets: 2})
	for i := 0; i < n; i++ {
		split.Dev(i%2).PersistStream(0, uint64(64*i), zline())
	}
	one := NewTopology(TopoConfig{Sockets: 1})
	for i := 0; i < n/2; i++ {
		one.Dev(0).PersistStream(0, uint64(64*i), zline())
	}
	if s, o := split.DrainAll(0), one.DrainAll(0); s != o {
		t.Errorf("2-socket drain of %d entries = %d, want half-burst time %d", n, s, o)
	}
}

// TestSocketFairnessAcrossDevices mirrors the multi-producer fairness
// test at the topology level: interleaved producers on both sockets
// keep each device's bank model intact — per-socket finish times obey
// the same pairwise (Banks=2) drain bound as a lone device.
func TestSocketFairnessAcrossDevices(t *testing.T) {
	topo := NewTopology(TopoConfig{Sockets: 2})
	fins := map[int][]uint64{}
	for i := 0; i < 16; i++ {
		s := i % 2
		d := topo.Dev(s)
		now := uint64(10 * i)
		d.PersistStream(now, uint64(64*i), zline())
		if got, min := d.LastFinish(), now+d.cfg.EnqueueCycles+d.cfg.WriteCycles; got < min {
			t.Fatalf("socket %d entry finished at %d, before enqueue+service %d", s, got, min)
		}
		fins[s] = append(fins[s], d.LastFinish())
	}
	for s, f := range fins {
		for i := 2; i < len(f); i++ {
			if f[i] < f[i-2]+topo.Dev(s).cfg.WriteCycles {
				t.Errorf("socket %d entry %d overlaps >Banks concurrent services", s, i)
			}
		}
	}
	// Both sockets saw the same load: the per-socket stats must agree.
	st := topo.SocketStats()
	if st[0].Enqueued != st[1].Enqueued {
		t.Errorf("uneven enqueue counts under even load: %d vs %d", st[0].Enqueued, st[1].Enqueued)
	}
}

// TestSharedDurableImage: durability is machine-global — a write
// absorbed by socket 1's controller appears in the crash snapshot taken
// through socket 0.
func TestSharedDurableImage(t *testing.T) {
	topo := NewTopology(TopoConfig{Sockets: 2})
	line := zline()
	line[0] = 0xAB
	topo.Dev(1).Persist(0, 4096, line)
	img := topo.Crash()
	if img.Data[4096] != 0xAB {
		t.Error("socket 1's write missing from the shared snapshot")
	}
	// Restore clears every socket's volatile queue.
	topo.Dev(0).PersistAsync(0, 8192, zline())
	topo.Restore(img)
	if topo.QueueDepth(0) != 0 {
		t.Error("restore left WPQ entries pending")
	}
}
