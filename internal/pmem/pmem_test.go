package pmem

import (
	"bytes"
	"testing"
)

func line(b byte) []byte {
	p := make([]byte, 64)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestDurableAtEnqueue(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	d.Persist(0, 128, line(0xAB))
	got := make([]byte, 64)
	d.Read(128, got)
	if !bytes.Equal(got, line(0xAB)) {
		t.Error("data not durable immediately after Persist")
	}
	img := d.Crash()
	if img.Data[128] != 0xAB {
		t.Error("crash image missing persisted data")
	}
}

func TestPersistStallComponents(t *testing.T) {
	cfg := Config{Size: 1 << 20, WPQBytes: 128, EnqueueCycles: 8,
		WriteCycles: 1000, AckCycles: 100, Banks: 1}
	d := New(cfg)
	// Synchronous persists wait for enqueue + the entry's medium
	// completion + the acknowledgement round trip.
	s1 := d.Persist(0, 0, line(1))
	if s1 != 8+1000+100 {
		t.Errorf("first persist stall = %d, want 1108", s1)
	}
	// After the wait the queue has drained; the next persist pays the
	// same full service time, not more.
	s2 := d.Persist(s1, 64, line(2))
	if s2 != 1108 {
		t.Errorf("second persist stall = %d, want 1108", s2)
	}
}

func TestBankedDrainParallelism(t *testing.T) {
	// A streamed burst (issued back-to-back, no per-entry completion
	// wait) drains Banks-wide: the completion time of 8 entries shrinks
	// with more banks. Synchronous persists serialize by construction,
	// so bank parallelism is only visible on streamed/posted bursts.
	mk := func(banks int) uint64 {
		d := New(Config{Size: 1 << 20, WPQBytes: 64 * 16, Banks: banks,
			EnqueueCycles: 8, WriteCycles: 1000, AckCycles: 1})
		now := uint64(0)
		for i := 0; i < 8; i++ {
			now += d.PersistStream(now, uint64(i*64), line(byte(i)))
		}
		return d.DrainAll(now)
	}
	serial := mk(1)
	quad := mk(4)
	if quad >= serial {
		t.Errorf("banked drain (%d) not faster than serial (%d)", quad, serial)
	}
	if serial < 8*1000 {
		t.Errorf("serial drain of 8 entries finished in %d cycles (< 8 writes)", serial)
	}
}

func TestPersistAsyncDoesNotStall(t *testing.T) {
	d := New(Config{Size: 1 << 20, WPQBytes: 128, EnqueueCycles: 8,
		WriteCycles: 1000, AckCycles: 100, Banks: 1})
	// Fill well past WPQ capacity asynchronously: stall stays at the
	// enqueue latency every time.
	for i := 0; i < 32; i++ {
		if s := d.PersistAsync(0, uint64(i*64), line(byte(i))); s != 8 {
			t.Fatalf("async persist %d stalled %d cycles", i, s)
		}
	}
	// But the backlog is visible to a subsequent synchronous persist.
	s := d.Persist(0, 4096, line(0xFF))
	if s < 1000 {
		t.Errorf("sync persist after async backlog stalled only %d cycles", s)
	}
}

func TestPersistStreamSkipsAck(t *testing.T) {
	d := New(Config{Size: 1 << 20, EnqueueCycles: 8, WriteCycles: 1000,
		AckCycles: 500, Banks: 2})
	s := d.PersistStream(0, 0, line(1))
	if s != 8 {
		t.Errorf("stream persist stall = %d, want 8", s)
	}
}

func TestPersistBoundsChecks(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	for _, fn := range []func(){
		func() { d.Persist(0, 1<<20-8, line(1)) },
		func() { d.Read(1<<20-8, make([]byte, 64)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected out-of-range panic")
				}
			}()
			fn()
		}()
	}
}

func TestQueueDepthDrains(t *testing.T) {
	d := New(Config{Size: 1 << 20, WPQBytes: 512, WriteCycles: 1000, Banks: 1,
		EnqueueCycles: 8, AckCycles: 1})
	// Posted persists leave entries in flight.
	for i := 0; i < 4; i++ {
		d.PersistAsync(0, uint64(i*64), line(1))
	}
	if d.QueueDepth(10) == 0 {
		t.Error("queue unexpectedly empty right after posted enqueues")
	}
	if got := d.QueueDepth(100000); got != 0 {
		t.Errorf("queue depth after long drain = %d, want 0", got)
	}
}

func TestRestore(t *testing.T) {
	d := New(Config{Size: 1 << 20})
	d.Persist(0, 64, line(7))
	img := d.Crash()
	d.Persist(1008, 64, line(9))
	d.Restore(img)
	got := make([]byte, 64)
	d.Read(64, got)
	if got[0] != 7 {
		t.Error("restore lost original data")
	}
	d.Read(64*16, got) // region untouched in image
	if d.ReadU64(128) != 0 {
		t.Error("restore did not clear later writes")
	}
}

func TestImageAccessors(t *testing.T) {
	img := &Image{Data: make([]byte, 1024)}
	img.WriteU64(8, 0xdeadbeefcafe)
	if img.ReadU64(8) != 0xdeadbeefcafe {
		t.Error("image u64 roundtrip failed")
	}
	img.Write(100, []byte{1, 2, 3})
	buf := make([]byte, 3)
	img.Read(100, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Error("image byte roundtrip failed")
	}
}

func TestDefaults(t *testing.T) {
	d := New(Config{})
	cfg := d.Config()
	if cfg.Size != DefaultSize || cfg.WPQBytes != DefaultWPQBytes ||
		cfg.WriteCycles != DefaultWriteCycles || cfg.Banks != DefaultBanks {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}
