// Multi-socket PM topology: N per-socket devices behind a distance
// matrix.
//
// Real multi-socket PM platforms put one set of DIMMs (and one memory
// controller with its own WPQ and banks) behind each socket; a core's
// persist to a remote socket's DIMM crosses the processor interconnect
// and pays extra latency, while durability is still machine-global.
// The Topology models exactly that split:
//
//   - Durability is global: every per-socket Device shares ONE durable
//     image, so a crash snapshot (and recovery) sees the whole physical
//     address space regardless of which controller a write entered.
//   - Timing is per socket: each Device owns its WPQ, banks, drain
//     clock, and occupancy statistics. Two sockets drain in parallel —
//     the bandwidth the NUMA refactor is after.
//   - Distance is a symmetric hop-linear matrix: an access from socket
//     a to socket b pays |a-b| interconnect hops, each hop costing
//     RemoteEnqueueCycles (persists) or RemoteReadCycles (demand
//     reads) on top of the device's local latency. Socket-local
//     accesses pay zero extra.
//
// A 1-socket Topology is a thin wrapper around a classic Device and is
// cycle-identical to it.
package pmem

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/trace"
)

// Default interconnect hop costs (cycles @2 GHz): a remote persist adds
// ~30 ns per hop to enter the far controller's WPQ; a remote demand
// read adds ~60 ns per hop (request + data return). These sit between
// the 4 ns local enqueue and the 150 ns medium read, matching the
// UPI-class latencies the NUMA PM literature reports.
const (
	DefaultRemoteEnqueueCycles = 60
	DefaultRemoteReadCycles    = 120
)

// TopoConfig parameterizes a Topology. Zero values take defaults.
type TopoConfig struct {
	// Sockets is the socket (device) count. Default 1.
	Sockets int
	// Dev is the per-socket device configuration. Dev.Size is the TOTAL
	// PM capacity (the shared physical address space), not per socket.
	Dev Config
	// RemoteEnqueueCycles and RemoteReadCycles are the per-hop
	// interconnect costs (see the package comment). Defaults above.
	RemoteEnqueueCycles uint64
	RemoteReadCycles    uint64
}

// SocketStats is one socket's device-level totals, for per-socket
// reporting.
type SocketStats struct {
	Socket      int
	Enqueued    uint64 // WPQ entries enqueued
	StallCycles uint64 // cycles cores stalled on this socket's full WPQ
	OccMaxBytes uint64 // WPQ occupancy high-water mark
	OccAvgBytes uint64 // time-weighted mean WPQ occupancy
}

// Topology is a set of per-socket Devices over one shared durable
// image, plus the distance matrix between them. Not safe for concurrent
// use.
type Topology struct {
	devs    []*Device
	durable []byte
	// enq[a][b] / read[a][b] are the extra cycles an access from socket
	// a to socket b pays (0 on the diagonal).
	enq  [][]uint64
	read [][]uint64
}

// NewTopology builds the per-socket devices and the distance matrix.
func NewTopology(cfg TopoConfig) *Topology {
	if cfg.Sockets < 1 {
		cfg.Sockets = 1
	}
	dev := cfg.Dev.withDefaults()
	if cfg.RemoteEnqueueCycles == 0 {
		cfg.RemoteEnqueueCycles = DefaultRemoteEnqueueCycles
	}
	if cfg.RemoteReadCycles == 0 {
		cfg.RemoteReadCycles = DefaultRemoteReadCycles
	}
	t := &Topology{durable: make([]byte, dev.Size)}
	for s := 0; s < cfg.Sockets; s++ {
		t.devs = append(t.devs, newShared(dev, t.durable, s))
	}
	t.enq = make([][]uint64, cfg.Sockets)
	t.read = make([][]uint64, cfg.Sockets)
	for a := 0; a < cfg.Sockets; a++ {
		t.enq[a] = make([]uint64, cfg.Sockets)
		t.read[a] = make([]uint64, cfg.Sockets)
		for b := 0; b < cfg.Sockets; b++ {
			hops := uint64(a - b)
			if b > a {
				hops = uint64(b - a)
			}
			t.enq[a][b] = hops * cfg.RemoteEnqueueCycles
			t.read[a][b] = hops * cfg.RemoteReadCycles
		}
	}
	return t
}

// Sockets returns the socket count.
func (t *Topology) Sockets() int { return len(t.devs) }

// Dev returns socket s's device.
func (t *Topology) Dev(s int) *Device { return t.devs[s] }

// EnqueueExtra returns the extra cycles a persist from socket `from`
// into socket `to`'s controller pays on the interconnect (0 if local).
//
//slpmt:noalloc
func (t *Topology) EnqueueExtra(from, to int) uint64 { return t.enq[from][to] }

// ReadExtra returns the extra cycles a demand read from socket `from`
// served by socket `to`'s medium pays on the interconnect (0 if local).
//
//slpmt:noalloc
func (t *Topology) ReadExtra(from, to int) uint64 { return t.read[from][to] }

// DistanceMatrix returns a copy of the enqueue-distance matrix
// (cycles), row = source socket, column = target socket.
func (t *Topology) DistanceMatrix() [][]uint64 {
	out := make([][]uint64, len(t.enq))
	for i, row := range t.enq {
		out[i] = append([]uint64(nil), row...)
	}
	return out
}

// SetTracer attaches one tracer to every socket's device.
func (t *Topology) SetTracer(tr *trace.Tracer) {
	for _, d := range t.devs {
		d.SetTracer(tr)
	}
}

// Crash returns a crash snapshot. The durable image is shared, so the
// snapshot is complete regardless of which sockets absorbed writes.
func (t *Topology) Crash() *Image { return t.devs[0].Crash() }

// Restore overwrites the shared durable image with a crash snapshot and
// clears every socket's WPQ.
func (t *Topology) Restore(img *Image) {
	if len(img.Data) != len(t.durable) {
		panic("pmem: restore image size mismatch")
	}
	copy(t.durable, img.Data)
	for _, d := range t.devs {
		d.clearVolatile()
	}
}

// ResetOccupancy restarts every socket's occupancy window at cycle now.
func (t *Topology) ResetOccupancy(now uint64) {
	for _, d := range t.devs {
		d.ResetOccupancy(now)
	}
}

// QueueDepth returns the total number of WPQ entries across all sockets
// as of cycle now.
func (t *Topology) QueueDepth(now uint64) int {
	depth := 0
	for _, d := range t.devs {
		depth += d.QueueDepth(now)
	}
	return depth
}

// OccupancyStats merges the per-socket statistics into the classic
// single-device pair: max of the per-socket high-water marks, sum of
// the time-weighted means (total bytes pending across the machine).
// For a 1-socket topology this is exactly the device's own stats.
func (t *Topology) OccupancyStats() (maxBytes, avgBytes uint64) {
	for _, d := range t.devs {
		m, a := d.OccupancyStats()
		if m > maxBytes {
			maxBytes = m
		}
		avgBytes += a
	}
	return maxBytes, avgBytes
}

// SocketStats returns each socket's device totals and occupancy window.
func (t *Topology) SocketStats() []SocketStats {
	out := make([]SocketStats, len(t.devs))
	for s, d := range t.devs {
		enq, stall := d.Stats()
		occMax, occAvg := d.OccupancyStats()
		out[s] = SocketStats{Socket: s, Enqueued: enq, StallCycles: stall,
			OccMaxBytes: occMax, OccAvgBytes: occAvg}
	}
	return out
}

// DrainAll returns the cycle at which every socket's queue has drained.
func (t *Topology) DrainAll(now uint64) uint64 {
	for _, d := range t.devs {
		now = d.DrainAll(now)
	}
	return now
}

// String describes the topology ("2 sockets, 60/120 cyc/hop").
func (t *Topology) String() string {
	if len(t.devs) == 1 {
		return "1 socket"
	}
	return fmt.Sprintf("%d sockets, %d/%d cyc/hop", len(t.devs), t.enq[0][1], t.read[0][1])
}
