package pmem

import "testing"

// Multi-producer WPQ behavior: on a multi-core machine the cores
// arbitrate for the one device at their own interleaved clock values,
// so consecutive Persist calls arrive with out-of-order `now`
// timestamps. These tests pin the properties the shared-device timing
// model must keep under that access pattern.

// zline returns a zeroed 64-byte payload.
func zline() []byte { return make([]byte, 64) }

func TestOutOfOrderTimestampsKeepQueueSorted(t *testing.T) {
	d := New(Config{})
	// A fast core far ahead in time and a slow core behind interleave.
	times := []uint64{100_000, 500, 90_000, 1_000, 80_000, 1_500, 70_000, 2_000}
	for i, now := range times {
		d.PersistAsync(now, uint64(64*i), zline())
	}
	for i := 1; i < len(d.queue); i++ {
		if d.queue[i-1].finish > d.queue[i].finish {
			t.Fatalf("queue unsorted at %d: %d > %d", i, d.queue[i-1].finish, d.queue[i].finish)
		}
	}
}

func TestQueueDepthConsistentAcrossTimestamps(t *testing.T) {
	d := New(Config{})
	for i := 0; i < 6; i++ {
		d.PersistAsync(uint64(1_000*i), uint64(64*i), zline())
	}
	// Depth observed by a core behind in time includes everything not
	// yet finished at its clock; a later observation can only see fewer
	// entries. Probing at interleaved clocks must never corrupt the
	// byte accounting.
	depthEarly := d.QueueDepth(0)
	depthLate := d.QueueDepth(1 << 40)
	if depthLate != 0 {
		t.Errorf("queue not empty at t=inf: %d", depthLate)
	}
	if depthEarly < depthLate {
		t.Errorf("earlier observation saw fewer entries: %d < %d", depthEarly, depthLate)
	}
	if d.usedBytes != 0 {
		t.Errorf("byte accounting corrupted: usedBytes=%d after full drain", d.usedBytes)
	}
}

func TestStallAccountingMonotonicInNow(t *testing.T) {
	// Fill the WPQ from one producer, then measure the stall a second
	// producer pays when enqueueing at increasing clocks: later arrival
	// must never stall longer (entries only drain as time passes).
	mk := func() *Device {
		d := New(Config{})
		for i := 0; i < 16; i++ { // 16*64 = 1024 B > 512 B WPQ
			d.PersistAsync(0, uint64(64*i), zline())
		}
		return d
	}
	var prev uint64
	for i, now := range []uint64{0, 500, 1_000, 2_000, 4_000, 8_000, 32_000} {
		d := mk()
		stall := d.Persist(now, 4096, zline())
		if i > 0 && stall > prev {
			t.Errorf("stall grew with later arrival: now=%d stall=%d (prev %d)", now, stall, prev)
		}
		prev = stall
	}
}

func TestBankFinishFairAcrossProducers(t *testing.T) {
	// Two interleaved producers with 2 banks: entries drain pairwise —
	// the k-th entry cannot finish before ceil(k/banks) service slots
	// have elapsed, and every entry finishes no earlier than its own
	// enqueue plus one service time.
	d := New(Config{})
	var fins []uint64
	for i := 0; i < 8; i++ {
		now := uint64(10 * i) // near-simultaneous arrivals, alternating cores
		d.PersistStream(now, uint64(64*i), zline())
		fins = append(fins, d.LastFinish())
		if got, min := d.LastFinish(), now+d.cfg.EnqueueCycles+d.cfg.WriteCycles; got < min {
			t.Fatalf("entry %d finished at %d, before enqueue+service %d", i, got, min)
		}
	}
	// With Banks=2, entry i's service may start no earlier than entry
	// i-2's finish: no producer can claim both banks forever.
	for i := 2; i < len(fins); i++ {
		if fins[i] < fins[i-2]+d.cfg.WriteCycles {
			t.Errorf("entry %d finished at %d: overlaps >Banks concurrent services (prev-2 fin %d)",
				i, fins[i], fins[i-2])
		}
	}
}

func TestSingleProducerAppendFastPath(t *testing.T) {
	// Monotone arrivals (the single-core pattern) must produce monotone
	// finish times — the property that makes sorted insertion a plain
	// append, keeping single-core runs byte-identical to the old
	// append-only queue.
	d := New(Config{})
	var prev uint64
	for i := 0; i < 32; i++ {
		d.Persist(uint64(100*i), uint64(64*i), zline())
		if f := d.LastFinish(); f < prev {
			t.Fatalf("finish regressed under monotone arrivals: %d < %d", f, prev)
		} else {
			prev = f
		}
	}
}
