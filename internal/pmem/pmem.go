// Package pmem models the byte-addressable persistent memory device of
// the paper's evaluation platform (Table III): an Intel-ADR style device
// where data becomes durable as soon as it enters the memory controller's
// write pending queue (WPQ), and the WPQ drains to the persistent medium
// at the device write latency.
//
// The model separates durability from timing:
//
//   - Durability: a write is copied into the durable image at enqueue
//     time. On a crash/power failure the hardware drains the WPQ, so the
//     durable image is exactly what recovery sees.
//   - Timing: the WPQ holds a bounded number of bytes (512 B in the
//     paper). Entries complete one after another, each taking the device
//     write latency. When the queue is full, the enqueuing core stalls
//     until space frees — this backpressure is the mechanism that turns
//     write traffic into execution time, which is the causal chain behind
//     every speedup the paper reports.
package pmem

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/trace"
)

// Config parameterizes the device. Zero values are replaced by the
// paper's defaults (Table III).
type Config struct {
	// Size is the device capacity in bytes. Default 16 MiB.
	Size uint64
	// WPQBytes is the write pending queue capacity. Default 512.
	WPQBytes int
	// EnqueueCycles is the cost of entering the WPQ (the paper's "4ns
	// latency" for the persist operation). Default 8 cycles (4 ns @2 GHz).
	EnqueueCycles uint64
	// ReadCycles is the demand-read latency. Default 300 (150 ns @2 GHz).
	ReadCycles uint64
	// WriteCycles is the medium write latency per WPQ entry. Default
	// 1000 (500 ns @2 GHz). Figure 12 sweeps this up to 2300 ns.
	WriteCycles uint64
	// Banks is the device's internal write parallelism: up to Banks WPQ
	// entries drain concurrently (each still taking WriteCycles). Real
	// PM modules service writes from multiple banks/partitions; a
	// purely serial drain would make every workload trivially
	// bandwidth-bound. Default 2.
	Banks int
	// AckCycles is the round-trip cost of a synchronous persist: the
	// memory controller's durability acknowledgement the core must wait
	// for on commit-path persists (the coherence "reached persistent
	// domain" message of §III-C2). Asynchronous persists (evictions,
	// buffer spills, lazy drains) do not pay it. Default 100 (50 ns).
	AckCycles uint64
}

// Defaults for a 2 GHz core: 1 ns = 2 cycles.
const (
	DefaultSize          = 16 << 20
	DefaultWPQBytes      = 512
	DefaultEnqueueCycles = 8
	DefaultReadCycles    = 300
	DefaultWriteCycles   = 1000
	DefaultAckCycles     = 100
	DefaultBanks         = 2
	// CyclesPerNs converts Table III nanosecond figures to core cycles.
	CyclesPerNs = 2
)

func (c Config) withDefaults() Config {
	if c.Size == 0 {
		c.Size = DefaultSize
	}
	if c.WPQBytes == 0 {
		c.WPQBytes = DefaultWPQBytes
	}
	if c.EnqueueCycles == 0 {
		c.EnqueueCycles = DefaultEnqueueCycles
	}
	if c.ReadCycles == 0 {
		c.ReadCycles = DefaultReadCycles
	}
	if c.WriteCycles == 0 {
		c.WriteCycles = DefaultWriteCycles
	}
	if c.AckCycles == 0 {
		c.AckCycles = DefaultAckCycles
	}
	if c.Banks == 0 {
		c.Banks = DefaultBanks
	}
	return c
}

// entry is one in-flight WPQ element.
type entry struct {
	bytes  int
	addr   uint64 // persisted line address, for drain trace attribution
	finish uint64 // cycle at which the entry has drained to the medium
	core   uint8  // enqueuing core, for trace attribution
}

// Device is a simulated persistent memory module with an ADR persist
// domain. It is not safe for concurrent use.
type Device struct {
	cfg     Config
	durable []byte

	// WPQ state.
	queue      []entry
	usedBytes  int
	lastFinish uint64   // finish time of the most recently enqueued entry
	lastWaited uint64   // WPQ-space wait of the most recent persist call
	recent     []uint64 // recent finish times (bank occupancy window)

	// Totals (timing-model introspection; traffic accounting is done by
	// the machine layer against stats.Counters).
	totalEnqueued uint64
	totalStall    uint64

	// Observation-only state: the tracer and the time-weighted occupancy
	// integral. None of it feeds back into timing.
	tr      *trace.Tracer
	curCore uint8
	// socket is this device's socket ID on a Topology (0 standalone);
	// sockTag is trace.WPQArgTag(socket), ORed into the occupancy Arg of
	// WPQ trace events so consumers can split the per-socket series.
	// Socket 0 tags with zero — single-socket traces are byte-identical.
	socket  int
	sockTag uint64
	occMax  int
	// occIntegral accumulates usedBytes·dt between occupancy changes;
	// the mean occupancy over [occBase, occLastT] is integral/(lastT-base).
	occIntegral uint64
	occLastT    uint64
	occBase     uint64
}

// New returns a device with the given configuration.
func New(cfg Config) *Device {
	cfg = cfg.withDefaults()
	return &Device{
		cfg:     cfg,
		durable: make([]byte, cfg.Size),
	}
}

// newShared returns a per-socket device of a Topology: it shares the
// topology-wide durable image (every socket's controller reaches the
// whole physical address space — durability is global) but owns its own
// WPQ, banks, and occupancy clock (timing is per socket).
func newShared(cfg Config, durable []byte, socket int) *Device {
	return &Device{
		cfg:     cfg,
		durable: durable,
		socket:  socket,
		sockTag: trace.WPQArgTag(socket),
	}
}

// Socket returns the device's socket ID on its topology (0 standalone).
func (d *Device) Socket() int { return d.socket }

// Config returns the effective configuration.
func (d *Device) Config() Config { return d.cfg }

// SetTracer attaches a tracer to the device. A nil tracer (the default)
// disables event emission; the device's timing is identical either way.
func (d *Device) SetTracer(tr *trace.Tracer) { d.tr = tr }

// SetCore records which core is driving the next Persist* calls, so WPQ
// events carry the right core ID. The machine layer calls this at the
// top of each core's persist path.
func (d *Device) SetCore(id int) { d.curCore = uint8(id) }

// occAdvance accounts the occupancy integral up to cycle t. Cores on a
// multi-core machine arbitrate for the WPQ at interleaved clock values,
// so t can be behind occLastT; the integral only ever moves forward.
func (d *Device) occAdvance(t uint64) {
	if t > d.occLastT {
		d.occIntegral += uint64(d.usedBytes) * (t - d.occLastT)
		d.occLastT = t
	}
}

// OccupancyStats returns the WPQ high-water mark and the time-weighted
// mean occupancy in bytes since creation (or the last ResetOccupancy).
func (d *Device) OccupancyStats() (maxBytes, avgBytes uint64) {
	maxBytes = uint64(d.occMax)
	if span := d.occLastT - d.occBase; span > 0 {
		avgBytes = d.occIntegral / span
	}
	return maxBytes, avgBytes
}

// ResetOccupancy drains retired entries as of cycle now and restarts the
// occupancy statistics window there — used by harnesses to exclude setup
// traffic from a measured interval.
func (d *Device) ResetOccupancy(now uint64) {
	d.drainUpTo(now)
	d.occAdvance(now)
	d.occIntegral = 0
	d.occBase = d.occLastT
	d.occMax = d.usedBytes
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.cfg.Size }

// ReadCycles returns the demand-read latency in cycles.
func (d *Device) ReadCycles() uint64 { return d.cfg.ReadCycles }

// drainUpTo retires queue entries whose finish time is <= now. The
// queue is kept sorted by finish time (see enqueue), so retirement is a
// prefix pop.
func (d *Device) drainUpTo(now uint64) {
	i := 0
	for i < len(d.queue) && d.queue[i].finish <= now {
		e := d.queue[i]
		d.occAdvance(e.finish)
		d.usedBytes -= e.bytes
		d.tr.Emit(e.core, e.finish, trace.KWPQDrain, e.addr, uint64(d.usedBytes)|d.sockTag)
		i++
	}
	if i > 0 {
		d.queue = append(d.queue[:0], d.queue[i:]...)
	}
	d.occAdvance(now)
}

// enqueue inserts an entry keeping the queue sorted by finish time.
// A single core enqueues at monotonically increasing clocks, which
// yields monotone finish times — the insertion is then a plain append.
// On a multi-core machine the cores arbitrate for the WPQ at their own
// interleaved clock values, so a core that is behind in time can insert
// an entry that finishes before already-queued ones.
func (d *Device) enqueue(e entry, t uint64) {
	d.occAdvance(t)
	d.queue = append(d.queue, e)
	for i := len(d.queue) - 1; i > 0 && d.queue[i-1].finish > d.queue[i].finish; i-- {
		d.queue[i-1], d.queue[i] = d.queue[i], d.queue[i-1]
	}
	d.usedBytes += e.bytes
	if d.usedBytes > d.occMax {
		d.occMax = d.usedBytes
	}
	d.lastFinish = e.finish
	d.totalEnqueued++
}

// panicOutOfRange and panicTooLarge keep the message formatting (which
// allocates) out of the annotated persist hot paths: the compiler only
// sets up the fmt call inside these never-inlined helpers.
//
//go:noinline
func (d *Device) panicOutOfRange(op string, addr uint64, n int) {
	panic(fmt.Sprintf("pmem: %s out of range: addr=%#x n=%d size=%#x", op, addr, n, d.cfg.Size))
}

//go:noinline
func (d *Device) panicTooLarge(n int) {
	panic(fmt.Sprintf("pmem: persist entry larger than WPQ: %d > %d", n, d.cfg.WPQBytes))
}

// Persist makes data durable at address addr. It returns the number of
// cycles the enqueuing core stalls: the fixed enqueue latency plus any
// wait for WPQ space. now is the current core cycle.
//
// The write is durable upon return (ADR). n must fit in one WPQ entry
// (<= 64 bytes is typical; larger writes should be split by the caller).
//
//slpmt:noalloc
func (d *Device) Persist(now uint64, addr uint64, data []byte) (stall uint64) {
	d.lastWaited = 0
	n := len(data)
	if n == 0 {
		return 0
	}
	if addr+uint64(n) > d.cfg.Size {
		d.panicOutOfRange("persist", addr, n)
	}
	if n > d.cfg.WPQBytes {
		d.panicTooLarge(n)
	}
	// Durable immediately: inside the persist domain.
	copy(d.durable[addr:], data)

	stall = d.cfg.EnqueueCycles
	t := now + stall
	d.drainUpTo(t)
	var waited uint64
	for d.usedBytes+n > d.cfg.WPQBytes {
		// Wait for the oldest entry to drain.
		wait := d.queue[0].finish - t
		stall += wait
		waited += wait
		t = d.queue[0].finish
		d.drainUpTo(t)
	}
	if waited > 0 {
		d.tr.Emit(d.curCore, t, trace.KWPQStall, addr, waited)
	}
	d.lastWaited = waited
	fin := d.bankFinish(t)
	d.enqueue(entry{bytes: n, addr: addr, finish: fin, core: d.curCore}, t)
	d.tr.Emit(d.curCore, t, trace.KWPQEnqueue, addr, uint64(d.usedBytes)|d.sockTag)
	// Synchronous persist: the commit engine issues one coherence-level
	// persist request per line and waits for the controller's completion
	// acknowledgement before the next ordering-constrained operation, so
	// the core observes the write's service time (bank-pipelined) plus
	// the acknowledgement round trip. Streamed persists (PersistStream)
	// pay only queue backpressure; background persists (PersistAsync)
	// are posted.
	stall += fin - t
	d.totalStall += stall - d.cfg.EnqueueCycles
	stall += d.cfg.AckCycles
	return stall
}

// PersistStream is the path of pipelined hardware engines that stream
// packed lines to the memory controller (the log buffer drain): the
// core pays the enqueue latency and any wait for WPQ space, but not the
// per-line completion or acknowledgement. Callers needing an
// end-of-stream durability point add one AckCycles barrier.
//
//slpmt:noalloc
func (d *Device) PersistStream(now uint64, addr uint64, data []byte) (stall uint64) {
	d.lastWaited = 0
	n := len(data)
	if n == 0 {
		return 0
	}
	if addr+uint64(n) > d.cfg.Size {
		d.panicOutOfRange("persist", addr, n)
	}
	if n > d.cfg.WPQBytes {
		d.panicTooLarge(n)
	}
	copy(d.durable[addr:], data)
	stall = d.cfg.EnqueueCycles
	t := now + stall
	d.drainUpTo(t)
	var waited uint64
	for d.usedBytes+n > d.cfg.WPQBytes {
		wait := d.queue[0].finish - t
		stall += wait
		waited += wait
		t = d.queue[0].finish
		d.drainUpTo(t)
	}
	if waited > 0 {
		d.tr.Emit(d.curCore, t, trace.KWPQStall, addr, waited)
	}
	d.lastWaited = waited
	fin := d.bankFinish(t)
	d.enqueue(entry{bytes: n, addr: addr, finish: fin, core: d.curCore}, t)
	d.tr.Emit(d.curCore, t, trace.KWPQEnqueue, addr, uint64(d.usedBytes)|d.sockTag)
	d.totalStall += stall - d.cfg.EnqueueCycles
	return stall
}

// LastWaited returns the WPQ-space wait (cycles) incurred by the most
// recent Persist/PersistStream call on any core — 0 for async persists,
// which never stall the core. The machine layer reads it immediately
// after a persist to attribute queue backpressure separately from
// service time.
func (d *Device) LastWaited() uint64 { return d.lastWaited }

// LastFinish returns the finish time of the most recently enqueued
// entry (0 if none yet) — used by the machine layer to implement
// ordering barriers over streamed sequences.
func (d *Device) LastFinish() uint64 { return d.lastFinish }

// bankFinish computes when an entry enqueued at time t drains, given
// that up to Banks entries are serviced concurrently: the new entry
// starts when a bank frees (the Banks-th most recent entry's finish).
func (d *Device) bankFinish(t uint64) uint64 {
	start := t
	if len(d.recent) >= d.cfg.Banks {
		if f := d.recent[len(d.recent)-d.cfg.Banks]; f > start {
			start = f
		}
	}
	fin := start + d.cfg.WriteCycles
	d.recent = append(d.recent, fin)
	if len(d.recent) > 4*d.cfg.Banks {
		d.recent = append(d.recent[:0], d.recent[len(d.recent)-d.cfg.Banks:]...)
	}
	return fin
}

// PersistAsync posts a persist without waiting for acknowledgement or
// WPQ space: the data is durable (ADR) and the entry occupies device
// write bandwidth, but the core is only charged the enqueue latency.
// This is the path for background persists — cache evictions, log
// buffer spills, and lazy-persistency drains, which the paper places
// off the program's critical path (§III-B2, §III-C3). The implicit
// buffering beyond the WPQ capacity models the dirty lines parking in
// the cache hierarchy until the queue can take them.
//
//slpmt:noalloc
func (d *Device) PersistAsync(now uint64, addr uint64, data []byte) (stall uint64) {
	d.lastWaited = 0
	n := len(data)
	if n == 0 {
		return 0
	}
	if addr+uint64(n) > d.cfg.Size {
		d.panicOutOfRange("persist", addr, n)
	}
	copy(d.durable[addr:], data)
	t := now + d.cfg.EnqueueCycles
	d.drainUpTo(t)
	// The posting engine waits for WPQ space on the device timeline
	// (the entry starts only once a slot frees), but the core is not
	// stalled — the pending line parks in the cache hierarchy. The
	// delayed start pushes this and subsequent entries' finish times
	// out, so later synchronous persists see the backlog.
	tStart := t
	if d.usedBytes+n > d.cfg.WPQBytes {
		freed := 0
		for _, e := range d.queue {
			freed += e.bytes
			if e.finish > tStart {
				tStart = e.finish
			}
			if d.usedBytes+n-freed <= d.cfg.WPQBytes {
				break
			}
		}
	}
	fin := d.bankFinish(tStart)
	d.enqueue(entry{bytes: n, addr: addr, finish: fin, core: d.curCore}, t)
	d.tr.Emit(d.curCore, t, trace.KWPQEnqueue, addr, uint64(d.usedBytes)|d.sockTag)
	return d.cfg.EnqueueCycles
}

// PersistZero is Persist for data that is all zeros of length n (used for
// zero-fill without allocating a buffer).
func (d *Device) PersistZero(now uint64, addr uint64, n int) (stall uint64) {
	if n == 0 {
		return 0
	}
	zeros := make([]byte, n)
	return d.Persist(now, addr, zeros)
}

// DrainAll returns the cycle at which every currently queued entry has
// drained to the medium, without modifying state. now is the current
// cycle; if the queue is empty the result is now.
func (d *Device) DrainAll(now uint64) uint64 {
	if d.lastFinish > now {
		return d.lastFinish
	}
	return now
}

// QueueDepth returns the number of entries currently in the WPQ as of
// cycle now.
func (d *Device) QueueDepth(now uint64) int {
	d.drainUpTo(now)
	return len(d.queue)
}

// Read copies n bytes of the durable image at addr into p. This is the
// functional read path used by recovery; demand reads during execution
// are timed by the machine layer using ReadCycles.
func (d *Device) Read(addr uint64, p []byte) {
	if addr+uint64(len(p)) > d.cfg.Size {
		panic(fmt.Sprintf("pmem: read out of range: addr=%#x n=%d", addr, len(p)))
	}
	copy(p, d.durable[addr:])
}

// ReadU64 reads a little-endian uint64 from the durable image.
func (d *Device) ReadU64(addr uint64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(d.durable[addr+uint64(i)]) << (8 * uint(i))
	}
	return v
}

// Image is a crash snapshot: the durable contents of the device at the
// instant of a (simulated) power failure, after the ADR domain has been
// flushed. Recovery operates on an Image.
type Image struct {
	Data []byte
}

// Crash returns a crash snapshot of the device. Because durability is
// applied at WPQ enqueue, the snapshot is simply a copy of the durable
// array — exactly the ADR semantics.
func (d *Device) Crash() *Image {
	data := make([]byte, len(d.durable))
	copy(data, d.durable)
	return &Image{Data: data}
}

// Restore overwrites the durable image with a crash snapshot and clears
// the WPQ. It is used by the crash-injection harness to resume a machine
// from a recovered image.
func (d *Device) Restore(img *Image) {
	if len(img.Data) != len(d.durable) {
		panic("pmem: restore image size mismatch")
	}
	copy(d.durable, img.Data)
	d.clearVolatile()
}

// clearVolatile drops the WPQ and the occupancy window — the volatile
// controller state a restore discards. The durable image is untouched.
func (d *Device) clearVolatile() {
	d.queue = d.queue[:0]
	d.usedBytes = 0
	d.lastFinish = 0
	d.recent = d.recent[:0]
	d.occIntegral = 0
	d.occLastT = 0
	d.occBase = 0
	d.occMax = 0
}

// Stats returns (entries enqueued, cycles stalled on a full WPQ) since
// creation.
func (d *Device) Stats() (enqueued, stallCycles uint64) {
	return d.totalEnqueued, d.totalStall
}

// ReadU64Image reads a little-endian uint64 from a crash image.
func (img *Image) ReadU64(addr uint64) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(img.Data[addr+uint64(i)]) << (8 * uint(i))
	}
	return v
}

// WriteU64 writes a little-endian uint64 into a crash image (used by
// recovery when applying undo/redo records).
func (img *Image) WriteU64(addr uint64, v uint64) {
	for i := 0; i < 8; i++ {
		img.Data[addr+uint64(i)] = byte(v >> (8 * uint(i)))
	}
}

// Read copies n bytes at addr from the image into p.
func (img *Image) Read(addr uint64, p []byte) {
	copy(p, img.Data[addr:addr+uint64(len(p))])
}

// Write copies p into the image at addr.
func (img *Image) Write(addr uint64, p []byte) {
	copy(img.Data[addr:], p)
}
