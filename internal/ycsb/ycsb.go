// Package ycsb generates the evaluation workload of §VI-A: the
// YCSB-load phase — N insertion operations, each a durable transaction
// inserting an 8-byte key with a fixed-size value (256 bytes by
// default; Figures 10, 11 and 14 sweep the size).
//
// Generation is deterministic in the seed so record/replay runs (the
// compiler experiments) and crash campaigns see identical operation
// streams, and keys are guaranteed unique and non-zero.
package ycsb

// DefaultOps is the paper's operation count per benchmark run.
const DefaultOps = 1000

// DefaultValueSize is the paper's default value size in bytes.
const DefaultValueSize = 256

// Load describes one ycsb-load run.
type Load struct {
	// N is the number of insert operations (default 1000).
	N int
	// ValueSize is the value payload size in bytes (default 256).
	ValueSize int
	// Seed selects the deterministic key sequence.
	Seed uint64
}

// withDefaults fills zero fields.
func (l Load) withDefaults() Load {
	if l.N == 0 {
		l.N = DefaultOps
	}
	if l.ValueSize == 0 {
		l.ValueSize = DefaultValueSize
	}
	if l.Seed == 0 {
		l.Seed = 0x5eed
	}
	return l
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Keys returns the N unique, non-zero keys of the load.
func (l Load) Keys() []uint64 {
	l = l.withDefaults()
	s := l.Seed
	seen := make(map[uint64]bool, l.N)
	keys := make([]uint64, 0, l.N)
	for len(keys) < l.N {
		k := splitmix(&s)
		if k == 0 || k == ^uint64(0) || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	return keys
}

// Value deterministically fills a value payload for key.
func (l Load) Value(key uint64) []byte {
	l = l.withDefaults()
	v := make([]byte, l.ValueSize)
	x := key ^ l.Seed
	for i := range v {
		if i%8 == 0 {
			x = splitmix(&x)
		}
		v[i] = byte(x >> (8 * uint(i%8)))
	}
	return v
}

// Each invokes fn for every operation in order, stopping on error.
func (l Load) Each(fn func(key uint64, value []byte) error) error {
	l = l.withDefaults()
	for _, k := range l.Keys() {
		if err := fn(k, l.Value(k)); err != nil {
			return err
		}
	}
	return nil
}

// Oracle returns the expected final contents.
func (l Load) Oracle() map[uint64][]byte {
	l = l.withDefaults()
	m := make(map[uint64][]byte, l.N)
	for _, k := range l.Keys() {
		m[k] = l.Value(k)
	}
	return m
}
