// Package ycsb generates the evaluation workload of §VI-A: the
// YCSB-load phase — N insertion operations, each a durable transaction
// inserting an 8-byte key with a fixed-size value (256 bytes by
// default; Figures 10, 11 and 14 sweep the size).
//
// Generation is deterministic in the seed so record/replay runs (the
// compiler experiments) and crash campaigns see identical operation
// streams, and keys are guaranteed unique and non-zero.
package ycsb

import "sync"

// DefaultOps is the paper's operation count per benchmark run.
const DefaultOps = 1000

// DefaultValueSize is the paper's default value size in bytes.
const DefaultValueSize = 256

// Load describes one ycsb-load run.
type Load struct {
	// N is the number of insert operations (default 1000).
	N int
	// ValueSize is the value payload size in bytes (default 256).
	ValueSize int
	// Seed selects the deterministic key sequence.
	Seed uint64
}

// withDefaults fills zero fields.
func (l Load) withDefaults() Load {
	if l.N == 0 {
		l.N = DefaultOps
	}
	if l.ValueSize == 0 {
		l.ValueSize = DefaultValueSize
	}
	if l.Seed == 0 {
		l.Seed = 0x5eed
	}
	return l
}

func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// keysCache memoizes generated key streams. A key stream depends only
// on (N, Seed), the same handful of combinations recur across every
// figure cell, scheme and crash point, and the splitmix + dedup-map
// generation dominated Each/Oracle/Keys before caching. Cached slices
// are shared read-only; Keys hands out copies.
var keysCache sync.Map // keysCacheKey -> []uint64

type keysCacheKey struct {
	n    int
	seed uint64
}

// keys returns the shared, memoized key stream. Callers must not
// mutate the returned slice.
func (l Load) keys() []uint64 {
	l = l.withDefaults()
	ck := keysCacheKey{n: l.N, seed: l.Seed}
	if ks, ok := keysCache.Load(ck); ok {
		return ks.([]uint64)
	}
	s := l.Seed
	seen := make(map[uint64]bool, l.N)
	keys := make([]uint64, 0, l.N)
	for len(keys) < l.N {
		k := splitmix(&s)
		if k == 0 || k == ^uint64(0) || seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
	}
	keysCache.Store(ck, keys)
	return keys
}

// Keys returns the N unique, non-zero keys of the load. The slice is
// the caller's to keep (a copy of the memoized stream).
func (l Load) Keys() []uint64 {
	ks := l.keys()
	out := make([]uint64, len(ks))
	copy(out, ks)
	return out
}

// Value deterministically fills a value payload for key.
func (l Load) Value(key uint64) []byte {
	l = l.withDefaults()
	v := make([]byte, l.ValueSize)
	l.fillValue(key, v)
	return v
}

// fillValue writes the deterministic payload of key into v (the
// caller-sized buffer; len(v) bytes are produced).
func (l Load) fillValue(key uint64, v []byte) {
	x := key ^ l.Seed
	for i := range v {
		if i%8 == 0 {
			x = splitmix(&x)
		}
		v[i] = byte(x >> (8 * uint(i%8)))
	}
}

// Each invokes fn for every operation in order, stopping on error. The
// value buffer is reused between calls: it is valid only for the
// duration of fn, which must copy it to retain it (inserting into
// simulated persistent memory copies by construction).
func (l Load) Each(fn func(key uint64, value []byte) error) error {
	l = l.withDefaults()
	buf := make([]byte, l.ValueSize)
	for _, k := range l.keys() {
		l.fillValue(k, buf)
		if err := fn(k, buf); err != nil {
			return err
		}
	}
	return nil
}

// Oracle returns the expected final contents.
func (l Load) Oracle() map[uint64][]byte {
	l = l.withDefaults()
	m := make(map[uint64][]byte, l.N)
	for _, k := range l.keys() {
		m[k] = l.Value(k)
	}
	return m
}
