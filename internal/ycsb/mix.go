package ycsb

// Standard YCSB operation mixes beyond the paper's load phase. The
// paper evaluates ycsb-load (insert-only); these mixes let the harness
// show how selective logging behaves once reads and scans dominate —
// the honest flip side: fewer persistent writes means less for SLPMT to
// save.

// OpKind enumerates mix operations.
type OpKind int

const (
	// OpRead looks up one key.
	OpRead OpKind = iota
	// OpUpdate replaces one key's value.
	OpUpdate
	// OpInsert adds a new key.
	OpInsert
	// OpScan iterates from a key for ScanLen records.
	OpScan
)

// MixOp is one generated operation.
type MixOp struct {
	Kind    OpKind
	Key     uint64
	Value   []byte
	ScanLen int
}

// Mix describes a read/update/insert/scan operation blend over a
// preloaded table.
type Mix struct {
	// Name labels the mix in reports.
	Name string
	// Records is the preloaded table size (via Load).
	Records int
	// N is the number of mixed operations.
	N int
	// ValueSize is the value payload size.
	ValueSize int
	// Seed drives both the preload and the op stream.
	Seed uint64
	// ReadPct/UpdatePct/InsertPct/ScanPct must sum to 100.
	ReadPct, UpdatePct, InsertPct, ScanPct int
	// ScanLen is the records per scan (default 20).
	ScanLen int
}

// Standard mixes (YCSB A/B/C/E) over a 1000-record table.
func WorkloadA() Mix {
	return Mix{Name: "ycsb-a", Records: 1000, N: 1000, ReadPct: 50, UpdatePct: 50}
}
func WorkloadB() Mix {
	return Mix{Name: "ycsb-b", Records: 1000, N: 1000, ReadPct: 95, UpdatePct: 5}
}
func WorkloadC() Mix {
	return Mix{Name: "ycsb-c", Records: 1000, N: 1000, ReadPct: 100}
}
func WorkloadE() Mix {
	return Mix{Name: "ycsb-e", Records: 1000, N: 1000, ScanPct: 95, InsertPct: 5, ScanLen: 20}
}

// Preload returns the load phase that populates the table.
func (m Mix) Preload() Load {
	return Load{N: m.Records, ValueSize: m.ValueSize, Seed: m.Seed}
}

// Ops generates the deterministic operation stream. Keys are drawn
// uniformly from the preloaded set; inserts use fresh keys.
func (m Mix) Ops() []MixOp {
	if m.ScanLen == 0 {
		m.ScanLen = 20
	}
	load := m.Preload().withDefaults()
	keys := load.Keys()
	// Fresh keys for inserts: continue the key stream.
	extra := Load{N: m.Records + m.N, ValueSize: m.ValueSize, Seed: m.Seed}.Keys()[m.Records:]

	rng := m.Seed*0x9e3779b97f4a7c15 + 0xabcdef
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	ops := make([]MixOp, 0, m.N)
	ins := 0
	for i := 0; i < m.N; i++ {
		p := int(next(100))
		switch {
		case p < m.ReadPct:
			ops = append(ops, MixOp{Kind: OpRead, Key: keys[next(uint64(len(keys)))]})
		case p < m.ReadPct+m.UpdatePct:
			k := keys[next(uint64(len(keys)))]
			ops = append(ops, MixOp{Kind: OpUpdate, Key: k, Value: load.Value(k ^ uint64(i))})
		case p < m.ReadPct+m.UpdatePct+m.InsertPct && ins < len(extra):
			k := extra[ins]
			ins++
			keys = append(keys, k)
			ops = append(ops, MixOp{Kind: OpInsert, Key: k, Value: load.Value(k)})
		default:
			ops = append(ops, MixOp{Kind: OpScan, Key: keys[next(uint64(len(keys)))], ScanLen: m.ScanLen})
		}
	}
	return ops
}
