package ycsb

import "testing"

func TestKeysDeterministicUniqueNonzero(t *testing.T) {
	l := Load{N: 5000, Seed: 7}
	a := l.Keys()
	b := l.Keys()
	if len(a) != 5000 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("key stream not deterministic")
		}
		if a[i] == 0 {
			t.Fatal("zero key generated")
		}
		if seen[a[i]] {
			t.Fatalf("duplicate key %d", a[i])
		}
		seen[a[i]] = true
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Load{N: 10, Seed: 1}.Keys()
	b := Load{N: 10, Seed: 2}.Keys()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical streams")
	}
}

func TestValueSizeAndDeterminism(t *testing.T) {
	l := Load{N: 10, ValueSize: 48, Seed: 3}
	k := l.Keys()[0]
	v1, v2 := l.Value(k), l.Value(k)
	if len(v1) != 48 || string(v1) != string(v2) {
		t.Error("value not deterministic or wrong size")
	}
	if string(l.Value(k)) == string(l.Value(l.Keys()[1])) {
		t.Error("different keys produced identical values")
	}
}

func TestDefaults(t *testing.T) {
	l := Load{}
	if len(l.Keys()) != DefaultOps {
		t.Error("default op count not applied")
	}
	if len(l.Value(1)) != DefaultValueSize {
		t.Error("default value size not applied")
	}
}

func TestOracleMatchesEach(t *testing.T) {
	l := Load{N: 50, ValueSize: 16}
	oracle := l.Oracle()
	n := 0
	err := l.Each(func(k uint64, v []byte) error {
		if string(oracle[k]) != string(v) {
			t.Fatalf("oracle mismatch for %d", k)
		}
		n++
		return nil
	})
	if err != nil || n != 50 {
		t.Fatalf("each: n=%d err=%v", n, err)
	}
}

func TestMixComposition(t *testing.T) {
	for _, m := range []Mix{WorkloadA(), WorkloadB(), WorkloadC(), WorkloadE()} {
		m.ValueSize = 16
		ops := m.Ops()
		if len(ops) != m.N {
			t.Fatalf("%s: %d ops, want %d", m.Name, len(ops), m.N)
		}
		counts := map[OpKind]int{}
		for _, op := range ops {
			counts[op.Kind]++
			if op.Kind == OpUpdate || op.Kind == OpInsert {
				if len(op.Value) != 16 {
					t.Fatalf("%s: op value size %d", m.Name, len(op.Value))
				}
			}
		}
		check := func(kind OpKind, pct int) {
			got := counts[kind] * 100 / m.N
			if got < pct-7 || got > pct+7 {
				t.Errorf("%s: kind %d = %d%%, want ~%d%%", m.Name, kind, got, pct)
			}
		}
		check(OpRead, m.ReadPct)
		check(OpUpdate, m.UpdatePct)
		check(OpScan, m.ScanPct)
	}
}

func TestMixDeterministic(t *testing.T) {
	a := WorkloadA().Ops()
	b := WorkloadA().Ops()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Key != b[i].Key {
			t.Fatal("mix not deterministic")
		}
	}
}

func TestKeysReturnsPrivateCopy(t *testing.T) {
	l := Load{N: 20, Seed: 11}
	a := l.Keys()
	want := a[0]
	a[0] = 0 // caller mutation must not poison the memoized stream
	if got := l.Keys()[0]; got != want {
		t.Fatalf("cached key stream mutated: got %d, want %d", got, want)
	}
}

func TestEachBufferReuseMatchesValue(t *testing.T) {
	l := Load{N: 30, ValueSize: 24, Seed: 5}
	var prev []byte
	err := l.Each(func(k uint64, v []byte) error {
		if prev != nil && &prev[0] != &v[0] {
			t.Fatal("Each should reuse one value buffer")
		}
		prev = v
		if string(v) != string(l.Value(k)) {
			t.Fatalf("reused buffer content diverges from Value(%d)", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLoadEach(b *testing.B) {
	l := Load{N: 1000, ValueSize: 256, Seed: 0x5eed}
	l.keys() // warm the key cache; the loop measures the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := uint64(0)
		if err := l.Each(func(k uint64, v []byte) error {
			sink += k ^ uint64(v[0])
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadKeys(b *testing.B) {
	l := Load{N: 1000, Seed: 0x5eed}
	l.keys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(l.Keys()) != 1000 {
			b.Fatal("short key stream")
		}
	}
}

func TestMixInsertKeysFresh(t *testing.T) {
	m := WorkloadE()
	pre := map[uint64]bool{}
	for _, k := range m.Preload().Keys() {
		pre[k] = true
	}
	for _, op := range m.Ops() {
		if op.Kind == OpInsert && pre[op.Key] {
			t.Fatalf("insert reused preloaded key %d", op.Key)
		}
	}
}
