package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Model is a sensitivity analysis of the reproduction's own timing-model
// knobs (not a paper figure): it sweeps the device write parallelism and
// WPQ capacity and reports the SLPMT-over-FG speedup, showing that the
// paper's conclusions do not hinge on the calibration point chosen in
// DESIGN.md §3.
func colsPlain(xs []int, suffix string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d%s", x, suffix)
	}
	return out
}

func Model(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()
	banks := []int{1, 2, 4, 8}
	tb := bench.NewTable(
		"Model sensitivity: SLPMT speedup over FG vs device write parallelism (banks)",
		append([]string{"workload"}, colsPlain(banks, "")...)...)
	for _, w := range ws {
		row := []string{w}
		for _, bk := range banks {
			cfg := base
			cfg.Banks = bk
			fg := run(cfg, schemes.FG, w)
			sl := run(cfg, schemes.SLPMT, w)
			row = append(row, bench.Fx(bench.Speedup(fg, sl)))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, tb)

	wpqs := []int{256, 512, 2048}
	tw := bench.NewTable(
		"Model sensitivity: SLPMT speedup over FG vs WPQ capacity (bytes)",
		append([]string{"workload"}, colsPlain(wpqs, "B")...)...)
	for _, w := range ws {
		row := []string{w}
		for _, q := range wpqs {
			cfg := base
			cfg.WPQBytes = q
			fg := run(cfg, schemes.FG, w)
			sl := run(cfg, schemes.SLPMT, w)
			row = append(row, bench.Fx(bench.Speedup(fg, sl)))
		}
		tw.AddRow(row...)
	}
	fmt.Fprintln(out, tw)
	fmt.Fprintf(out, "(SLPMT > 1x everywhere: the win does not depend on the calibration point)\n")
	return nil
}
