package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Model is a sensitivity analysis of the reproduction's own timing-model
// knobs (not a paper figure): it sweeps the device write parallelism and
// WPQ capacity and reports the SLPMT-over-FG speedup, showing that the
// paper's conclusions do not hinge on the calibration point chosen in
// DESIGN.md §3.
func colsPlain(xs []int, suffix string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d%s", x, suffix)
	}
	return out
}

func Model(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()
	banks := []int{1, 2, 4, 8}
	tb := bench.NewTable(
		"Model sensitivity: SLPMT speedup over FG vs device write parallelism (banks)",
		append([]string{"workload"}, colsPlain(banks, "")...)...)
	bankSweep, err := pairSweep(base, ws, len(banks), func(cfg *bench.RunConfig, v int) {
		cfg.Banks = banks[v]
	})
	if err != nil {
		return err
	}
	for wi, w := range ws {
		row := []string{w}
		for i := range banks {
			p := bankSweep[wi][i]
			row = append(row, bench.Fx(bench.Speedup(p.base, p.slpmt)))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, tb)

	wpqs := []int{256, 512, 2048}
	tw := bench.NewTable(
		"Model sensitivity: SLPMT speedup over FG vs WPQ capacity (bytes)",
		append([]string{"workload"}, colsPlain(wpqs, "B")...)...)
	wpqSweep, err := pairSweep(base, ws, len(wpqs), func(cfg *bench.RunConfig, v int) {
		cfg.WPQBytes = wpqs[v]
	})
	if err != nil {
		return err
	}
	for wi, w := range ws {
		row := []string{w}
		for i := range wpqs {
			p := wpqSweep[wi][i]
			row = append(row, bench.Fx(bench.Speedup(p.base, p.slpmt)))
		}
		tw.AddRow(row...)
	}
	fmt.Fprintln(out, tw)
	fmt.Fprintf(out, "(SLPMT > 1x everywhere: the win does not depend on the calibration point)\n")
	return nil
}
