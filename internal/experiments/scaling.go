package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
)

// ScalingCores is the core counts the scaling experiment sweeps.
var ScalingCores = []int{1, 2, 4, 8}

// ScalingSchemes is the hardware designs the scaling experiment
// compares (the paper's main transaction schemes; FG is omitted — its
// per-word persists saturate the device long before core count
// matters).
func ScalingSchemes() []string {
	return []string{schemes.SLPMT, schemes.ATOM, schemes.EDE}
}

// Scaling runs the core-scaling study the single-core paper setup
// cannot express: each scheme × kernel runs at 1/2/4/8 cores, the
// deterministic YCSB stream sharded round-robin across cores that
// share the structure, the LLC, and the PM device. Reported per core
// count: parallel speedup over the 1-core run (makespan ratio) and PM
// write traffic per operation (bytes). Traffic is work-conserving, so
// per-op traffic quantifies the coherence/contention overhead of
// scaling, while speedup shows where the shared write-pending queue
// becomes the bottleneck.
func Scaling(out io.Writer, base bench.RunConfig) error {
	ss := ScalingSchemes()
	ws := workloads.Kernels()

	cfgs := make([]bench.RunConfig, 0, len(ss)*len(ws)*len(ScalingCores))
	for _, s := range ss {
		for _, w := range ws {
			for _, c := range ScalingCores {
				cfg := base
				cfg.Scheme = s
				cfg.Workload = w
				cfg.Cores = c
				// Interval metrics feed the latency/occupancy tables and
				// the profiler feeds the WPQ-share table below (both
				// observation-only: timing is unchanged).
				cfg.Metrics = true
				cfg.Profile = true
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		return err
	}
	byKey := make(map[string]map[string]map[int]bench.Result, len(ss))
	for _, r := range results {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s/%s cores=%d failed verification: %v",
				r.Scheme, r.Workload, r.Cores, r.VerifyErr)
		}
		if byKey[r.Scheme] == nil {
			byKey[r.Scheme] = make(map[string]map[int]bench.Result, len(ws))
		}
		if byKey[r.Scheme][r.Workload] == nil {
			byKey[r.Scheme][r.Workload] = make(map[int]bench.Result, len(ScalingCores))
		}
		byKey[r.Scheme][r.Workload][normCores(r.Cores)] = r
	}

	cols := []string{"scheme", "workload"}
	for _, c := range ScalingCores {
		cols = append(cols, fmt.Sprintf("%dc", c))
	}
	tsp := bench.NewTable(
		fmt.Sprintf("Scaling: parallel speedup over 1 core (%dB values, %d ops, shared structure)",
			valueOf(base), opsOf(base)),
		cols...)
	ttr := bench.NewTable(
		"Scaling: PM write traffic per op (bytes)",
		cols...)
	tlat := bench.NewTable(
		"Scaling: commit latency percentiles (cycles, p50/p95/p99)",
		cols...)
	tocc := bench.NewTable(
		"Scaling: WPQ occupancy (bytes, high-water/time-weighted mean)",
		cols...)
	twpq := bench.NewTable(
		"Scaling: cycle share spent on the WPQ (enqueue + queue-full stalls + sync persists)",
		cols...)
	tsig := bench.NewTable(
		"Scaling: lazy-conflict pressure (signature hits / txid cross-accesses / forced lazy-line persists)",
		cols...)
	for _, s := range ss {
		for _, w := range ws {
			rowS := []string{s, w}
			rowT := []string{s, w}
			rowL := []string{s, w}
			rowO := []string{s, w}
			rowW := []string{s, w}
			rowG := []string{s, w}
			one := byKey[s][w][1]
			for _, c := range ScalingCores {
				r := byKey[s][w][c]
				rowS = append(rowS, bench.Fx(bench.Speedup(one, r)))
				rowT = append(rowT, bench.F(float64(r.PMWriteBytes())/float64(opsOf(base))))
				rowL = append(rowL, fmt.Sprintf("%d/%d/%d",
					r.Summary.CommitP50, r.Summary.CommitP95, r.Summary.CommitP99))
				rowO = append(rowO, fmt.Sprintf("%d/%d",
					r.Counters.WPQOccMaxBytes, r.Counters.WPQOccAvgBytes))
				rowW = append(rowW, bench.Pct(wpqShare(r)))
				rowG = append(rowG, fmt.Sprintf("%d/%d/%d",
					r.Counters.SignatureHits, r.Counters.TxIDCrossAccess, r.Counters.LazyLinePersists))
			}
			tsp.AddRow(rowS...)
			ttr.AddRow(rowT...)
			tlat.AddRow(rowL...)
			tocc.AddRow(rowO...)
			twpq.AddRow(rowW...)
			tsig.AddRow(rowG...)
		}
	}
	fmt.Fprintln(out, tsp)
	fmt.Fprintln(out, ttr)
	fmt.Fprintln(out, tlat)
	fmt.Fprintln(out, tocc)
	fmt.Fprintln(out, twpq)
	fmt.Fprintln(out, tsig)

	fmt.Fprintln(out, "(cores share one structure, LLC, and PM write-pending queue; the")
	fmt.Fprint(out, " deterministic interleaver makes every cell exactly reproducible)\n")
	return nil
}

// normCores maps the config's core knob to its effective value (0 and
// 1 both mean the single-core platform).
func normCores(c int) int {
	if c < 1 {
		return 1
	}
	return c
}

// wpqShare is the fraction of the run's attributed core-cycles spent
// against the device write queue (the "wpq" cause group), the direct
// measure of write-bandwidth saturation.
func wpqShare(r bench.Result) float64 {
	by := r.Causes.ByGroup()
	var total uint64
	for _, v := range by { //slpmt:determinism-ok: order-independent sum
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(by["wpq"]) / float64(total)
}
