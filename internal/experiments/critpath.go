package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/critpath"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/schemes"
)

// critPathCores and critPathWindows are the cores x commit-window grid
// the critpath experiment sweeps. The sweep is intentionally smaller
// than ScalingCores x WindowSweep: every cell carries a full-detail
// tracer ring plus the causal analyzer, so the grid covers the corners
// that matter — serial vs contended cores, per-transaction vs
// amortized windows.
var (
	critPathCores   = []int{1, 2, 4}
	critPathWindows = []int{1, 16}
)

// critPathHotN is how many contended lines the hot-line table shows.
const critPathHotN = 5

// CritPath runs the causal critical-path study: SLPMT on the lazy
// hashtable kernel over the cores x W grid, every cell analyzed by the
// blocking-DAG blame walk. Four views come out:
//
//   - the conservation contract per cell (path length == makespan,
//     cross-core hops) — the analyzer's soundness, printed so a broken
//     invariant is visible in the artifact, not just a panic;
//   - the dominant critical cause per cell with its critical share vs
//     raw core-cycle share — the wall the cell is actually serialized
//     on, vs what a flat profile would blame;
//   - the standard what-if projections (commit flush async, infinite
//     WPQ, remote hops zeroed, W->inf) as Amdahl-style speedup bounds;
//   - the W->inf projection from the W=1 cell checked against the
//     measured W=1 -> W=16 speedup under identical parameters — the
//     projection must bound/bracket what group commit actually buys.
//
// The final table ranks the hottest contended cache lines of the
// 2-core W=1 cell.
func CritPath(out io.Writer, base bench.RunConfig) error {
	const workload = "hashtable"

	cfgs := make([]bench.RunConfig, 0, len(critPathCores)*len(critPathWindows))
	for _, c := range critPathCores {
		for _, win := range critPathWindows {
			cfg := base
			cfg.Scheme = schemes.SLPMT
			cfg.Workload = workload
			cfg.Cores = c
			cfg.CommitWindow = win
			cfg.CritPath = true
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		return err
	}
	byCell := make(map[int]map[int]bench.Result, len(critPathCores))
	for _, r := range results {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s cores=%d W=%d failed verification: %v",
				r.Workload, r.Cores, r.RunConfig.CommitWindow, r.VerifyErr)
		}
		c := normCores(r.Cores)
		if byCell[c] == nil {
			byCell[c] = make(map[int]bench.Result, len(critPathWindows))
		}
		byCell[c][r.RunConfig.CommitWindow] = r
	}

	tc := bench.NewTable(
		fmt.Sprintf("CritPath: conservation contract (SLPMT/%s, %dB values, %d ops)",
			workload, valueOf(base), opsOf(base)),
		"cores", "W", "makespan", "path len", "hops", "dag nodes", "wait edges")
	td := bench.NewTable(
		"CritPath: dominant critical cause (critical share vs raw core-cycle share)",
		"cores", "W", "cause", "crit", "raw")
	tw := bench.NewTable(
		"CritPath: what-if speedup bounds (causes zeroed on every core)",
		"cores", "W", "commit-flush-async", "wpq-infinite", "remote-zeroed", "window-inf")
	for _, c := range critPathCores {
		for _, win := range critPathWindows {
			an := byCell[c][win].CritPath
			ck := "ok"
			if err := an.Check(); err != nil {
				ck = err.Error()
			}
			tc.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", win),
				fmt.Sprintf("%d", an.Makespan),
				fmt.Sprintf("%d (%s)", an.PathLen, ck),
				fmt.Sprintf("%d", an.Hops),
				fmt.Sprintf("%d", len(an.Nodes)), fmt.Sprintf("%d", len(an.Edges)))

			cause, crit, raw := dominantCause(an.PathCycles, an.RawCycles)
			td.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", win),
				cause, bench.Pct(crit), bench.Pct(raw))

			row := []string{fmt.Sprintf("%d", c), fmt.Sprintf("%d", win)}
			for _, p := range an.WhatIf {
				row = append(row, bench.Fx(p.Speedup))
			}
			tw.AddRow(row...)
		}
	}
	fmt.Fprintln(out, tc)
	fmt.Fprintln(out, td)
	fmt.Fprintln(out, tw)

	// The projection-vs-measurement cross-check: window-inf predicted
	// from the W=1 critical path, against the speedup W=16 actually
	// delivered. The projection is an upper bound at a fixed overlap
	// (it zeroes ordering persists but cannot model the re-overlap a
	// real window change causes), so the two need not match — they must
	// tell the same story, and the table makes the gap inspectable.
	tp := bench.NewTable(
		"CritPath: W->inf projection (from the W=1 path) vs measured W=16 speedup",
		"cores", "projected", "measured W=16", "ratio")
	for _, c := range critPathCores {
		one := byCell[c][1]
		proj := windowInf(one.CritPath)
		meas := bench.Speedup(one, byCell[c][16])
		ratio := 0.0
		if meas != 0 {
			ratio = proj / meas
		}
		tp.AddRow(fmt.Sprintf("%d", c), bench.Fx(proj), bench.Fx(meas), bench.Fx(ratio))
	}
	fmt.Fprintln(out, tp)

	// Hot lines of the contended per-transaction cell (2 cores, W=1):
	// the root-count line all cores update should dominate.
	an := byCell[2][1].CritPath
	th := bench.NewTable(
		fmt.Sprintf("CritPath: hottest contended lines (2 cores, W=1; top %d of %d)",
			critPathHotN, an.TotalLines),
		"line", "score", "coh", "ping-pong", "stalls", "sig", "ser.cycles")
	for i, h := range an.HotLines {
		if i >= critPathHotN {
			break
		}
		th.AddRow(fmt.Sprintf("%#x", h.Addr),
			fmt.Sprintf("%d", h.Score()),
			fmt.Sprintf("%d", h.Transfers), fmt.Sprintf("%d", h.PingPong),
			fmt.Sprintf("%d", h.Stalls), fmt.Sprintf("%d", h.SigHits),
			fmt.Sprintf("%d", h.SerCycles()))
	}
	fmt.Fprintln(out, th)
	fmt.Fprintln(out, "(critical share is where the makespan went; raw share is where core-cycles")
	fmt.Fprint(out, " went — work off the path can dominate raw and still be free to remove)\n")
	return nil
}

// dominantCause picks the cause carrying the most critical-path cycles
// and returns its name with the critical and raw shares.
func dominantCause(path, raw profile.Vector) (string, float64, float64) {
	best := profile.CauseNone
	for _, c := range profile.Causes() {
		if path[c] > path[best] {
			best = c
		}
	}
	crit, rawShare := 0.0, 0.0
	if t := path.Sum(); t != 0 {
		crit = float64(path[best]) / float64(t)
	}
	if t := raw.Sum(); t != 0 {
		rawShare = float64(raw[best]) / float64(t)
	}
	return best.String(), crit, rawShare
}

// windowInf returns the W->inf what-if speedup from an analysis.
func windowInf(an *critpath.Analysis) float64 {
	for _, p := range an.WhatIf {
		if p.Name == "window-inf" {
			return p.Speedup
		}
	}
	return 0
}
