package experiments_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/experiments"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// The goldens under testdata/ were captured from the pre-multi-core
// binaries (commit 4495805, single-core machine baked into every
// layer). These tests pin the refactor's central promise: with one
// core, every experiment's output is byte-identical to before the
// Core/Machine split.

// hostTimeLine matches report lines carrying host wall-clock readings
// (the Figure 13 compile-time table) — real time, not simulated time,
// so nondeterministic even between two runs of the same binary.
var hostTimeLine = regexp.MustCompile(`µs|ms\b`)

// maskHostTime blanks the value portion of host-time lines.
func maskHostTime(s string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		if hostTimeLine.MatchString(l) {
			lines[i] = "<host-time line masked>"
		}
	}
	return strings.Join(lines, "\n")
}

// preRefactorNames is the experiment list of the pre-refactor "all"
// (everything but the later scaling, breakdown, window, numa, and
// critpath extensions, which did not exist when the goldens were
// captured).
func preRefactorNames() []string {
	later := map[string]bool{"scaling": true, "breakdown": true, "window": true, "numa": true, "critpath": true}
	var out []string
	for _, n := range experiments.Names() {
		if !later[n] {
			out = append(out, n)
		}
	}
	return out
}

func TestSingleCoreOutputMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped in -short")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_all_n120_v64.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct exactly what `-experiment all -n 120 -value 64`
	// printed before the refactor: the old experiment list, each
	// followed by a blank line, on the (default) single-core platform.
	base := bench.RunConfig{N: 120, ValueSize: 64, Verify: true}
	var buf bytes.Buffer
	for _, name := range preRefactorNames() {
		if err := experiments.Run(&buf, name, base); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(&buf)
	}
	want := maskHostTime(string(golden))
	got := maskHostTime(buf.String())
	if got != want {
		t.Errorf("single-core experiment output diverged from pre-refactor golden%s",
			firstDiff(want, got))
	}
}

func TestSimOutputMatchesPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("execs the go tool; skipped in -short")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_sim_hashtable_n150_v64.txt"))
	if err != nil {
		t.Fatal(err)
	}
	gobin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test file")
	}
	repoRoot := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))
	cmd := exec.Command(gobin, "run", "./cmd/slpmtsim",
		"-workload", "hashtable", "-scheme", "all", "-n", "150", "-value", "64")
	cmd.Dir = repoRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("slpmtsim: %v\n%s", err, out)
	}
	if got, want := string(out), string(golden); got != want {
		t.Errorf("slpmtsim single-core output diverged from pre-refactor golden%s",
			firstDiff(want, got))
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("\nline %d:\n  want: %q\n  got:  %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("\nline count differs: want %d, got %d", len(wl), len(gl))
}
