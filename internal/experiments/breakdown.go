package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
)

// BreakdownCores is the core counts the breakdown experiment profiles.
var BreakdownCores = []int{1, 2}

// BreakdownSchemes is the designs the attribution study decomposes:
// the eager baseline, the unbuffered logger, the full design, and its
// redo variant together exercise every attribution path (tiered and
// direct log sinks, undo and redo commit stages, lazy drains).
func BreakdownSchemes() []string {
	return []string{schemes.FG, schemes.EDE, schemes.SLPMT, schemes.SLPMTRedo}
}

// Breakdown runs the cycle-attribution study: every scheme × kernel ×
// core count executes with the profiler attached, and each run's
// cycles are decomposed into the exhaustive cause taxonomy
// (internal/profile). The table reports the share of attributed
// core-cycles per cause group; conservation (sum of causes == each
// core's clock advance) is checked on every cell, so a run that loses
// or double-charges cycles fails the experiment rather than printing a
// misleading table.
func Breakdown(out io.Writer, base bench.RunConfig) error {
	ss := BreakdownSchemes()
	ws := workloads.Kernels()

	cfgs := make([]bench.RunConfig, 0, len(ss)*len(ws)*len(BreakdownCores))
	for _, s := range ss {
		for _, w := range ws {
			for _, c := range BreakdownCores {
				cfg := base
				cfg.Scheme = s
				cfg.Workload = w
				cfg.Cores = c
				cfg.Profile = true
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		return err
	}

	groups := profile.Groups()
	cols := append([]string{"scheme", "workload", "cores"}, groups...)
	tb := bench.NewTable(
		fmt.Sprintf("Breakdown: cycle attribution by cause group (%% of attributed core-cycles, %dB values, %d ops)",
			valueOf(base), opsOf(base)),
		cols...)
	for _, r := range results {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s/%s cores=%d failed verification: %v",
				r.Scheme, r.Workload, r.Cores, r.VerifyErr)
		}
		if err := r.Causes.Conserved(); err != nil {
			return fmt.Errorf("%s/%s cores=%d broke cycle conservation: %v",
				r.Scheme, r.Workload, r.Cores, err)
		}
		by := r.Causes.ByGroup()
		var total uint64
		for _, v := range by { //slpmt:determinism-ok: order-independent sum
			total += v
		}
		row := []string{r.Scheme, r.Workload, fmt.Sprintf("%d", normCores(r.Cores))}
		for _, g := range groups {
			row = append(row, bench.Pct(float64(by[g])/float64(total)))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintln(out, "(groups: compute | cache = hit/miss/fill latencies | coherence = snoops+writebacks |")
	fmt.Fprintln(out, " log = append/persist/sync | commit = marker+data flush | lazy = deferred drains |")
	fmt.Fprint(out, " wpq = enqueue + queue-full stalls + sync persists; conservation checked per core)\n")
	return nil
}
