package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Ablation quantifies the design choices DESIGN.md calls out:
//
//  1. tiered log-buffer coalescing (FG vs EDE isolates the buffer);
//  2. logging granularity (FG vs ATOM isolates word vs line records);
//  3. speculative log creation on L1 eviction (§III-B1);
//  4. lazy persistency with vs without deferral (FG+LZ vs FG);
//  5. undo vs redo ordering under identical annotations (Figure 4).
func Ablation(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()

	// 1+2: buffer and granularity.
	grid := bench.Grid([]string{schemes.FG, schemes.ATOM, schemes.EDE}, ws, base)
	if err := checkVerify(grid); err != nil {
		return err
	}
	tb := bench.NewTable(
		"Ablation: logging path (FG = word+tiered buffer; ATOM = line records; EDE = no buffer)",
		"workload", "FG/ATOM speedup", "FG/EDE speedup", "FG log KiB", "ATOM log KiB", "EDE log KiB")
	for _, w := range ws {
		fg, at, ed := grid[schemes.FG][w], grid[schemes.ATOM][w], grid[schemes.EDE][w]
		tb.AddRow(w,
			bench.Fx(bench.Speedup(at, fg)),
			bench.Fx(bench.Speedup(ed, fg)),
			kib(fg.Counters.PMWriteBytesLog),
			kib(at.Counters.PMWriteBytesLog),
			kib(ed.Counters.PMWriteBytesLog))
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "(paper: FG outperforms ATOM by 1.05x and EDE by 1.13x on the kernels)\n\n")

	// 3: speculative logging.
	spec := bench.Grid([]string{schemes.SLPMT, schemes.SLPMTSpec}, ws, base)
	if err := checkVerify(spec); err != nil {
		return err
	}
	ts := bench.NewTable(
		"Ablation: speculative log creation on L1 eviction (§III-B1)",
		"workload", "speedup vs SLPMT", "duplicate records off", "duplicate records on", "speculative records")
	for _, w := range ws {
		off, on := spec[schemes.SLPMT][w], spec[schemes.SLPMTSpec][w]
		ts.AddRow(w,
			bench.Fx(bench.Speedup(off, on)),
			fmt.Sprint(off.Counters.LogDuplicates),
			fmt.Sprint(on.Counters.LogDuplicates),
			fmt.Sprint(on.Counters.SpeculativeRecords))
	}
	fmt.Fprintln(out, ts)

	// 4: lazy persistency contribution.
	lz := bench.Grid([]string{schemes.FG, schemes.FGLZ}, ws, base)
	if err := checkVerify(lz); err != nil {
		return err
	}
	tl := bench.NewTable(
		"Ablation: lazy persistency alone (FG+LZ vs FG)",
		"workload", "speedup", "records discarded", "lazy lines deferred", "lazy lines elided")
	for _, w := range ws {
		b, r := lz[schemes.FG][w], lz[schemes.FGLZ][w]
		tl.AddRow(w,
			bench.Fx(bench.Speedup(b, r)),
			fmt.Sprint(r.Counters.LogRecordsDiscarded),
			fmt.Sprint(r.Counters.LazyLinesDeferred),
			fmt.Sprint(r.Counters.LazyLinesElided))
	}
	fmt.Fprintln(out, tl)

	// 5: undo vs redo ordering with the same annotations.
	rd := bench.Grid([]string{schemes.SLPMT, schemes.SLPMTRedo, schemes.FG, schemes.FGRedo}, ws, base)
	if err := checkVerify(rd); err != nil {
		return err
	}
	tr := bench.NewTable(
		"Ablation: undo vs redo logging (Figure 4 orderings)",
		"workload", "FG-redo vs FG", "SLPMT-redo vs SLPMT")
	for _, w := range ws {
		tr.AddRow(w,
			bench.Fx(bench.Speedup(rd[schemes.FG][w], rd[schemes.FGRedo][w])),
			bench.Fx(bench.Speedup(rd[schemes.SLPMT][w], rd[schemes.SLPMTRedo][w])))
	}
	fmt.Fprintln(out, tr)
	return nil
}

func kib(b uint64) string { return fmt.Sprintf("%.0f", float64(b)/1024) }
