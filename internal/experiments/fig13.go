package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
)

// Fig13 reproduces Figure 13: compiler-inserted vs manually inserted
// annotations. Implemented in terms of the txir/compiler packages; see
// compiler.go in this package.
func Fig13(out io.Writer, base bench.RunConfig) error {
	return fig13Impl(out, base)
}

// fig13Impl is provided by compiler.go.
var fig13Impl = func(out io.Writer, base bench.RunConfig) error {
	return fmt.Errorf("fig13: compiler experiment not linked")
}
