package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// small keeps the smoke tests quick while still exercising resizes and
// splits.
func small() bench.RunConfig { return bench.RunConfig{N: 80, ValueSize: 32, Verify: true} }

func TestExperimentsSmoke(t *testing.T) {
	for _, name := range []string{"fig8", "fig9", "fig12", "fig14", "headline"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := Run(&buf, name, small()); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("no output")
			}
		})
	}
}

func TestFig13Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "fig13", small()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "compiler identified") {
		t.Errorf("missing coverage line:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run(&bytes.Buffer{}, "fig99", small()); err == nil {
		t.Error("unknown experiment accepted")
	}
}
