package experiments

import (
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestPaperShapes pins the paper's qualitative claims as regression
// tests: any change to the simulator or engine that flips a comparison
// the paper reports fails here. Thresholds are deliberately loose — the
// claims are orderings and directions, not absolute numbers.
func TestPaperShapes(t *testing.T) {
	cfg := bench.RunConfig{N: 400, ValueSize: 256, Verify: true}
	ws := workloads.Kernels()
	ss := []string{schemes.FG, schemes.FGLG, schemes.FGLZ, schemes.SLPMT, schemes.ATOM, schemes.EDE}
	grid := bench.Grid(ss, ws, cfg)
	for s, m := range grid {
		for w, r := range m {
			if r.VerifyErr != nil {
				t.Fatalf("%s/%s: %v", s, w, r.VerifyErr)
			}
		}
	}

	sp := func(s, w string) float64 { return bench.Speedup(grid[schemes.FG][w], grid[s][w]) }
	tr := func(s, w string) float64 { return bench.TrafficReduction(grid[schemes.FG][w], grid[s][w]) }

	for _, w := range ws {
		// §VI headline: SLPMT beats the baseline and both prior designs
		// on every benchmark.
		if sp(schemes.SLPMT, w) <= 1.05 {
			t.Errorf("%s: SLPMT speedup %.2f <= 1.05", w, sp(schemes.SLPMT, w))
		}
		if grid[schemes.SLPMT][w].Cycles >= grid[schemes.ATOM][w].Cycles {
			t.Errorf("%s: SLPMT not faster than ATOM", w)
		}
		if grid[schemes.SLPMT][w].Cycles >= grid[schemes.EDE][w].Cycles {
			t.Errorf("%s: SLPMT not faster than EDE", w)
		}
		// Fig. 8 right: SLPMT cuts traffic substantially; ATOM and EDE
		// increase it.
		if tr(schemes.SLPMT, w) < 0.15 {
			t.Errorf("%s: SLPMT traffic cut %.2f < 0.15", w, tr(schemes.SLPMT, w))
		}
		if tr(schemes.ATOM, w) > 0 {
			t.Errorf("%s: ATOM reduced traffic (%.2f), expected increase", w, tr(schemes.ATOM, w))
		}
		if tr(schemes.EDE, w) > 0 {
			t.Errorf("%s: EDE reduced traffic (%.2f), expected increase", w, tr(schemes.EDE, w))
		}
		// §VI-D1: selective logging cuts far more traffic than lazy
		// persistency.
		if tr(schemes.FGLG, w) <= tr(schemes.FGLZ, w) {
			t.Errorf("%s: log-free traffic cut %.2f <= lazy %.2f", w, tr(schemes.FGLG, w), tr(schemes.FGLZ, w))
		}
	}

	// Fig. 8: the hashtable is the lazy-persistency winner (its rehash
	// moves), and log-free + lazy combine on it.
	if sp(schemes.FGLZ, "hashtable") < 1.08 {
		t.Errorf("hashtable FG+LZ speedup %.2f < 1.08", sp(schemes.FGLZ, "hashtable"))
	}
	if sp(schemes.SLPMT, "hashtable") <= sp(schemes.FGLG, "hashtable") {
		t.Errorf("hashtable: SLPMT (%.2f) not above FG+LG (%.2f): features did not combine",
			sp(schemes.SLPMT, "hashtable"), sp(schemes.FGLG, "hashtable"))
	}
}

// TestFig12Shape: the hashtable's SLPMT speedup grows with PM write
// latency; the tree kernels stay roughly flat (within 10%).
func TestFig12Shape(t *testing.T) {
	speed := func(w string, lat uint64) float64 {
		cfg := bench.RunConfig{N: 300, ValueSize: 256, PMWriteNanos: lat}
		cfg.Workload = w
		cfg.Scheme = schemes.FG
		base := bench.Run(cfg)
		cfg.Scheme = schemes.SLPMT
		return bench.Speedup(base, bench.Run(cfg))
	}
	if lo, hi := speed("hashtable", 500), speed("hashtable", 2300); hi <= lo {
		t.Errorf("hashtable speedup not latency-sensitive: %.2f -> %.2f", lo, hi)
	}
	if lo, hi := speed("avl", 500), speed("avl", 2300); hi > lo*1.10 {
		t.Errorf("avl speedup too latency-sensitive: %.2f -> %.2f", lo, hi)
	}
}

// TestFig10Shape: speedup grows monotonically (within noise) with the
// value size on every kernel.
func TestFig10Shape(t *testing.T) {
	for _, w := range workloads.Kernels() {
		speed := func(v int) float64 {
			cfg := bench.RunConfig{N: 300, ValueSize: v}
			cfg.Workload = w
			cfg.Scheme = schemes.FG
			base := bench.Run(cfg)
			cfg.Scheme = schemes.SLPMT
			return bench.Speedup(base, bench.Run(cfg))
		}
		small, large := speed(16), speed(256)
		if large <= small {
			t.Errorf("%s: speedup did not grow with value size (%.2f -> %.2f)", w, small, large)
		}
	}
}

// TestFig14Shape: kv-ctree has the highest SLPMT-vs-prior speedup of
// the backends; the 16-byte gains are smaller than the 256-byte ones.
func TestFig14Shape(t *testing.T) {
	speed := func(w string, v int) float64 {
		cfg := bench.RunConfig{N: 300, ValueSize: v}
		cfg.Workload = w
		cfg.Scheme = schemes.EDE
		base := bench.Run(cfg)
		cfg.Scheme = schemes.SLPMT
		return bench.Speedup(base, bench.Run(cfg))
	}
	ct, rt := speed("kv-ctree", 256), speed("kv-rtree", 256)
	if ct < rt {
		t.Errorf("kv-ctree (%.2f) below kv-rtree (%.2f) vs EDE", ct, rt)
	}
	if s16 := speed("kv-ctree", 16); s16 >= ct {
		t.Errorf("kv-ctree 16B speedup (%.2f) not below 256B (%.2f)", s16, ct)
	}
}
