package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
)

// WindowSweep is the commit-window axis W the sensitivity study runs:
// W=1 is the per-transaction protocol (bit-exact with the pre-epoch
// engine), larger windows amortize the per-transaction ordering
// persists (watermark sync, durability barrier, commit marker) over W
// committed transactions.
var WindowSweep = []int{1, 4, 16, 64}

// Window runs the group-commit sensitivity study: SLPMT across the
// kernel benchmarks at every scaling core count, sweeping the commit
// window W. Reported per (workload, cores): makespan speedup over the
// W=1 run under identical parameters, and the ordering-persist cycle
// share — the log.sync + log.epoch + commit.marker slice of the
// attribution profile, i.e. the "log.sync wall" the window is meant to
// break. Durability weakens to epoch boundaries as W grows; recovery
// still restores a transaction-consistent prefix (all-or-nothing per
// epoch), which the crash campaign checks separately.
func Window(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()

	cfgs := make([]bench.RunConfig, 0, len(ws)*len(ScalingCores)*len(WindowSweep))
	for _, w := range ws {
		for _, c := range ScalingCores {
			for _, win := range WindowSweep {
				cfg := base
				cfg.Scheme = schemes.SLPMT
				cfg.Workload = w
				cfg.Cores = c
				cfg.CommitWindow = win
				cfg.Profile = true
				cfgs = append(cfgs, cfg)
			}
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		return err
	}
	byKey := make(map[string]map[int]map[int]bench.Result, len(ws))
	for _, r := range results {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s cores=%d W=%d failed verification: %v",
				r.Workload, r.Cores, r.RunConfig.CommitWindow, r.VerifyErr)
		}
		if byKey[r.Workload] == nil {
			byKey[r.Workload] = make(map[int]map[int]bench.Result, len(ScalingCores))
		}
		c := normCores(r.Cores)
		if byKey[r.Workload][c] == nil {
			byKey[r.Workload][c] = make(map[int]bench.Result, len(WindowSweep))
		}
		byKey[r.Workload][c][r.RunConfig.CommitWindow] = r
	}

	cols := []string{"workload", "cores"}
	for _, win := range WindowSweep {
		cols = append(cols, fmt.Sprintf("W=%d", win))
	}
	tsp := bench.NewTable(
		fmt.Sprintf("Window: makespan speedup over W=1 (SLPMT, %dB values, %d ops)",
			valueOf(base), opsOf(base)),
		cols...)
	tsh := bench.NewTable(
		"Window: ordering-persist cycle share (log.sync + log.epoch + commit.marker)",
		cols...)
	for _, w := range ws {
		for _, c := range ScalingCores {
			rowS := []string{w, fmt.Sprintf("%d", c)}
			rowH := []string{w, fmt.Sprintf("%d", c)}
			one := byKey[w][c][1]
			for _, win := range WindowSweep {
				r := byKey[w][c][win]
				rowS = append(rowS, bench.Fx(bench.Speedup(one, r)))
				rowH = append(rowH, bench.Pct(orderingShare(r)))
			}
			tsp.AddRow(rowS...)
			tsh.AddRow(rowH...)
		}
	}
	fmt.Fprintln(out, tsp)
	fmt.Fprintln(out, tsh)
	fmt.Fprintln(out, "(W=1 is the per-transaction protocol; durability moves to epoch")
	fmt.Fprint(out, " boundaries as W grows — see the crash campaign for the recovery story)\n")
	return nil
}

// orderingShare is the fraction of the run's attributed core-cycles
// spent on per-transaction or per-epoch ordering persists: waiting on
// log durability (log.sync), the amortized epoch-close barrier
// (log.epoch), and writing commit markers (commit.marker).
func orderingShare(r bench.Result) float64 {
	by := r.Causes.ByName()
	var total uint64
	for _, v := range by { //slpmt:determinism-ok: order-independent sum
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(by["log.sync"]+by["log.epoch"]+by["commit.marker"]) / float64(total)
}
