package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	"github.com/persistmem/slpmt/internal/ycsb"
)

// Mixes runs the standard YCSB operation blends (A/B/C/E) over the
// kv-btree — an extension beyond the paper's insert-only load phase,
// showing where selective logging's benefit goes as reads and scans
// take over (there is simply less persistence to optimize).
func Mixes(out io.Writer, base bench.RunConfig) error {
	mixes := []ycsb.Mix{ycsb.WorkloadA(), ycsb.WorkloadB(), ycsb.WorkloadC(), ycsb.WorkloadE()}
	ss := []string{schemes.FG, schemes.SLPMT, schemes.ATOM, schemes.EDE}
	tb := bench.NewTable(
		"YCSB mixes on kv-btree: cycles/op by scheme (SLPMT speedup over FG in parens)",
		append([]string{"mix"}, ss...)...)
	// Fan every (mix, scheme) cell across the worker pool; each cell
	// builds its own system, so cells are independent.
	cells := make([]uint64, len(mixes)*len(ss))
	if err := bench.ForEach(len(cells), func(i int) error {
		mix := mixes[i/len(ss)]
		mix.ValueSize = base.ValueSize
		if base.Seed != 0 {
			mix.Seed = base.Seed
		}
		s := ss[i%len(ss)]
		c, err := runMix(s, mix)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", mix.Name, s, err)
		}
		cells[i] = c
		return nil
	}); err != nil {
		return err
	}
	for mi, mix := range mixes {
		cycles := map[string]uint64{}
		for si, s := range ss {
			cycles[s] = cells[mi*len(ss)+si]
		}
		row := []string{mix.Name}
		for _, s := range ss {
			cell := fmt.Sprintf("%d", cycles[s]/uint64(mix.N))
			if s == schemes.SLPMT {
				cell += fmt.Sprintf(" (%.2fx)", float64(cycles[schemes.FG])/float64(cycles[s]))
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "(update-heavy mixes retain the paper's gains; read/scan-dominated mixes converge —\n"+
		" selective logging only helps where transactions write)\n")
	return nil
}

// runMix executes a mix over the kv-btree and returns the mixed phase's
// cycles.
func runMix(scheme string, mix ycsb.Mix) (uint64, error) {
	w := workloads.MustNew("kv-btree")
	sys := slpmt.New(slpmt.Options{Scheme: scheme, ComputeCyclesPerOp: w.ComputeCost()})
	if err := w.Setup(sys); err != nil {
		return 0, err
	}
	if err := mix.Preload().Each(func(k uint64, v []byte) error {
		return w.Insert(sys, k, v)
	}); err != nil {
		return 0, err
	}
	mut := w.(workloads.Mutable)
	rng := w.(workloads.Ranger)
	start := sys.Cycles()
	for _, op := range mix.Ops() {
		switch op.Kind {
		case ycsb.OpRead:
			if _, ok := w.Get(sys, op.Key); !ok {
				return 0, fmt.Errorf("read miss on %d", op.Key)
			}
		case ycsb.OpUpdate:
			if err := mut.UpdateValue(sys, op.Key, op.Value); err != nil {
				return 0, err
			}
		case ycsb.OpInsert:
			if err := w.Insert(sys, op.Key, op.Value); err != nil {
				return 0, err
			}
		case ycsb.OpScan:
			n := 0
			if err := rng.Scan(sys, op.Key, ^uint64(0), func(uint64, []byte) bool {
				n++
				return n < op.ScanLen
			}); err != nil {
				return 0, err
			}
		}
	}
	sys.DrainLazy()
	return sys.Cycles() - start, nil
}
