// Package experiments implements the paper's evaluation section: each
// figure of §VI is regenerated as a parameter grid over the simulator
// and rendered as a text table with the quantities the paper plots.
package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Run executes the named experiment, writing tables to w.
func Run(w io.Writer, name string, base bench.RunConfig) error {
	switch name {
	case "fig8":
		return Fig8(w, base)
	case "fig9":
		return Fig9(w, base)
	case "fig10":
		return Fig10(w, base)
	case "fig11":
		return Fig11(w, base)
	case "fig12":
		return Fig12(w, base)
	case "fig13":
		return Fig13(w, base)
	case "fig14":
		return Fig14(w, base)
	case "headline":
		return Headline(w, base)
	case "ablation":
		return Ablation(w, base)
	case "model":
		return Model(w, base)
	case "mixes":
		return Mixes(w, base)
	case "scaling":
		return Scaling(w, base)
	case "breakdown":
		return Breakdown(w, base)
	case "window":
		return Window(w, base)
	case "numa":
		return Numa(w, base)
	case "critpath":
		return CritPath(w, base)
	case "all":
		for _, n := range Names() {
			if err := Run(w, n, base); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (try fig8..fig14, headline, ablation, model, mixes, scaling, breakdown, window, numa, critpath, all)", name)
	}
}

// Names returns the individual experiment names in the order "all" runs
// them. Everything before "scaling" reproduces the paper's single-core
// evaluation unchanged; "scaling" (multi-core), "breakdown"
// (cycle-attribution profiling), "window" (group-commit sensitivity),
// "numa" (multi-device socket topology), and "critpath" (causal
// critical-path analysis) are extensions.
func Names() []string {
	return []string{
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"headline", "ablation", "model", "mixes", "scaling", "breakdown",
		"window", "numa", "critpath",
	}
}

// checkVerify fails fast if any run's invariant check failed. The scan
// order is deterministic so the reported failure (and therefore the
// harness output) is identical between serial and parallel sweeps.
func checkVerify(grid map[string]map[string]bench.Result) error {
	for _, s := range bench.SortedSchemes(grid) {
		m := grid[s]
		for _, w := range bench.SortedKeys(m) {
			if r := m[w]; r.VerifyErr != nil {
				return fmt.Errorf("%s/%s failed verification: %v", s, w, r.VerifyErr)
			}
		}
	}
	return nil
}

// Fig8 reproduces Figure 8: speedup over the FG baseline (left) and
// persistent-memory write-traffic reduction over the baseline (right)
// for the kernel benchmarks under every evaluated scheme.
func Fig8(out io.Writer, base bench.RunConfig) error {
	ss := schemes.Evaluated()
	ws := workloads.Kernels()
	grid := bench.Grid(ss, ws, base)
	if err := checkVerify(grid); err != nil {
		return err
	}

	tb := bench.NewTable(
		fmt.Sprintf("Figure 8 (left): speedup over FG baseline (kernels, %dB values, %d ops)", valueOf(base), opsOf(base)),
		append([]string{"workload"}, ss...)...)
	tr := bench.NewTable(
		"Figure 8 (right): PM write-traffic reduction over FG baseline",
		append([]string{"workload"}, ss...)...)
	perScheme := map[string][]float64{}
	perSchemeTR := map[string][]float64{}
	for _, w := range ws {
		baseRes := grid[schemes.FG][w]
		rowS := []string{w}
		rowT := []string{w}
		for _, s := range ss {
			r := grid[s][w]
			sp := bench.Speedup(baseRes, r)
			red := bench.TrafficReduction(baseRes, r)
			rowS = append(rowS, bench.Fx(sp))
			rowT = append(rowT, bench.Pct(red))
			perScheme[s] = append(perScheme[s], sp)
			perSchemeTR[s] = append(perSchemeTR[s], red)
		}
		tb.AddRow(rowS...)
		tr.AddRow(rowT...)
	}
	gm := []string{"geomean"}
	am := []string{"mean"}
	for _, s := range ss {
		gm = append(gm, bench.Fx(bench.GeoMean(perScheme[s])))
		am = append(am, bench.Pct(mean(perSchemeTR[s])))
	}
	tb.AddRow(gm...)
	tr.AddRow(am...)
	fmt.Fprintln(out, tb)
	fmt.Fprintln(out, tr)

	// The paper's cross-design headline for the kernels: SLPMT vs FG,
	// ATOM, EDE.
	var vsFG, vsATOM, vsEDE []float64
	for _, w := range ws {
		vsFG = append(vsFG, bench.Speedup(grid[schemes.FG][w], grid[schemes.SLPMT][w]))
		vsATOM = append(vsATOM, bench.Speedup(grid[schemes.ATOM][w], grid[schemes.SLPMT][w]))
		vsEDE = append(vsEDE, bench.Speedup(grid[schemes.EDE][w], grid[schemes.SLPMT][w]))
	}
	fmt.Fprintf(out, "SLPMT average speedup: %.2fx over FG, %.2fx over ATOM, %.2fx over EDE (paper: 1.57x / 1.65x / 1.78x)\n",
		bench.GeoMean(vsFG), bench.GeoMean(vsATOM), bench.GeoMean(vsEDE))
	return nil
}

// Fig9 reproduces Figure 9: SLPMT restricted to cache-line-granularity
// logging, versus a line-granularity baseline (ATOM's logging grain) —
// showing the log-free and lazy features still pay off without
// fine-grain logging.
func Fig9(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()
	ss := []string{schemes.ATOM, schemes.SLPMTCL}
	grid := bench.Grid(ss, ws, base)
	if err := checkVerify(grid); err != nil {
		return err
	}
	tb := bench.NewTable(
		"Figure 9: cache-line-granularity SLPMT vs line-granularity baseline (ATOM)",
		"workload", "speedup", "traffic reduction")
	var sp []float64
	for _, w := range ws {
		b := grid[schemes.ATOM][w]
		r := grid[schemes.SLPMTCL][w]
		s := bench.Speedup(b, r)
		sp = append(sp, s)
		tb.AddRow(w, bench.Fx(s), bench.Pct(bench.TrafficReduction(b, r)))
	}
	tb.AddRow("geomean", bench.Fx(bench.GeoMean(sp)), "")
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "(paper: 1.27x average from log-free + lazy persistence alone)\n")
	return nil
}

// valueSweep is the shared sweep used by Figures 10 and 11.
var valueSizes = []int{16, 32, 64, 128, 256}

// Fig10 reproduces Figure 10: SLPMT-over-FG speedup as a function of
// value size.
func Fig10(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()
	tb := bench.NewTable(
		"Figure 10: SLPMT speedup over FG vs value size",
		append([]string{"workload"}, colsOfInts(valueSizes)...)...)
	sweep, err := pairSweep(base, ws, len(valueSizes), func(cfg *bench.RunConfig, v int) {
		cfg.ValueSize = valueSizes[v]
	})
	if err != nil {
		return err
	}
	means := make([]float64, len(valueSizes))
	counts := 0
	for wi, w := range ws {
		row := []string{w}
		for i := range valueSizes {
			p := sweep[wi][i]
			sp := bench.Speedup(p.base, p.slpmt)
			means[i] += sp
			row = append(row, bench.Fx(sp))
		}
		counts++
		tb.AddRow(row...)
	}
	row := []string{"mean"}
	for i := range valueSizes {
		row = append(row, bench.Fx(means[i]/float64(counts)))
	}
	tb.AddRow(row...)
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "(paper: >= 1.22x average even at 16B; rising with value size)\n")
	return nil
}

// Fig11 reproduces Figure 11: absolute write-traffic reduction (bytes
// saved vs FG) as a function of value size.
func Fig11(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()
	tb := bench.NewTable(
		"Figure 11: PM write-traffic reduction (KiB saved vs FG, and %) vs value size",
		append([]string{"workload"}, colsOfInts(valueSizes)...)...)
	sweep, err := pairSweep(base, ws, len(valueSizes), func(cfg *bench.RunConfig, v int) {
		cfg.ValueSize = valueSizes[v]
	})
	if err != nil {
		return err
	}
	for wi, w := range ws {
		row := []string{w}
		for i := range valueSizes {
			b, r := sweep[wi][i].base, sweep[wi][i].slpmt
			savedKiB := (float64(b.PMWriteBytes()) - float64(r.PMWriteBytes())) / 1024
			row = append(row, fmt.Sprintf("%.0fKiB/%s", savedKiB, bench.Pct(bench.TrafficReduction(b, r))))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "(paper: saved bytes grow ~linearly with value size; flat from 16B to 32B)\n")
	return nil
}

// Fig12 reproduces Figure 12: SLPMT-over-FG speedup as the PM write
// latency grows from 500ns to 2300ns (the CXL byte-addressable-storage
// range).
func Fig12(out io.Writer, base bench.RunConfig) error {
	lats := []uint64{500, 1100, 1700, 2300}
	ws := workloads.Kernels()
	tb := bench.NewTable(
		"Figure 12: SLPMT speedup over FG vs PM write latency (ns)",
		append([]string{"workload"}, colsOfU64(lats)...)...)
	sweep, err := pairSweep(base, ws, len(lats), func(cfg *bench.RunConfig, v int) {
		cfg.PMWriteNanos = lats[v]
	})
	if err != nil {
		return err
	}
	for wi, w := range ws {
		row := []string{w}
		for i := range lats {
			p := sweep[wi][i]
			row = append(row, bench.Fx(bench.Speedup(p.base, p.slpmt)))
		}
		tb.AddRow(row...)
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "(paper: gains largely stable; hashtable the most latency-sensitive via lazy persistence)\n")
	return nil
}

// Fig14 reproduces Figure 14: PMKV speedups for the three backends at
// 256-byte (left) and 16-byte (right) values.
func Fig14(out io.Writer, base bench.RunConfig) error {
	ws := workloads.PMKV()
	ss := []string{schemes.FG, schemes.SLPMT, schemes.ATOM, schemes.EDE}
	for _, vs := range []int{256, 16} {
		cfg := base
		cfg.ValueSize = vs
		grid := bench.Grid(ss, ws, cfg)
		if err := checkVerify(grid); err != nil {
			return err
		}
		tb := bench.NewTable(
			fmt.Sprintf("Figure 14: PMKV with %dB values — SLPMT speedup", vs),
			"workload", "vs FG", "vs ATOM", "vs EDE", "traffic cut vs FG")
		for _, w := range ws {
			r := grid[schemes.SLPMT][w]
			tb.AddRow(w,
				bench.Fx(bench.Speedup(grid[schemes.FG][w], r)),
				bench.Fx(bench.Speedup(grid[schemes.ATOM][w], r)),
				bench.Fx(bench.Speedup(grid[schemes.EDE][w], r)),
				bench.Pct(bench.TrafficReduction(grid[schemes.FG][w], r)))
		}
		fmt.Fprintln(out, tb)
	}
	fmt.Fprintf(out, "(paper at 256B: 1.35-1.87x over EDE, 1.4-2x over ATOM; traffic cut 32.6-47.6%%;\n"+
		" at 16B: 1.35x/1.58x average over EDE/ATOM)\n")
	return nil
}

// Headline reproduces the abstract's summary: SLPMT vs the
// state-of-the-art hardware designs across all six benchmarks.
func Headline(out io.Writer, base bench.RunConfig) error {
	ws := append(append([]string{}, workloads.Kernels()...), workloads.PMKV()...)
	ss := []string{schemes.FG, schemes.SLPMT, schemes.ATOM, schemes.EDE}
	grid := bench.Grid(ss, ws, base)
	if err := checkVerify(grid); err != nil {
		return err
	}
	var vsPrior, red []float64
	for _, w := range ws {
		r := grid[schemes.SLPMT][w]
		vsPrior = append(vsPrior,
			bench.Speedup(grid[schemes.ATOM][w], r),
			bench.Speedup(grid[schemes.EDE][w], r))
		red = append(red, bench.TrafficReduction(grid[schemes.FG][w], r))
	}
	fmt.Fprintf(out, "Headline: SLPMT vs prior hardware PM transactions (ATOM, EDE) across %d benchmarks:\n", len(ws))
	fmt.Fprintf(out, "  average speedup %.2fx (paper: 1.8x)\n", bench.GeoMean(vsPrior))
	fmt.Fprintf(out, "  average PM write-traffic reduction %s (paper: ~46%% vs prior designs)\n", bench.Pct(mean(red)))
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// pair is one sweep cell: the FG baseline and the SLPMT run under
// identical parameters.
type pair struct{ base, slpmt bench.Result }

// pairSweep runs the (FG, SLPMT) pair for every workload × variant on
// the worker pool, returning pairs indexed [workload][variant]. The
// configure hook applies variant v to the cell's RunConfig (value size,
// write latency, banks, ...). Results are positionally identical to
// the nested serial loops the figures used to run.
func pairSweep(base bench.RunConfig, ws []string, variants int, configure func(cfg *bench.RunConfig, v int)) ([][]pair, error) {
	cfgs := make([]bench.RunConfig, 0, 2*len(ws)*variants)
	for _, w := range ws {
		for v := 0; v < variants; v++ {
			cfg := base
			cfg.Workload = w
			configure(&cfg, v)
			cfg.Scheme = schemes.FG
			cfgs = append(cfgs, cfg)
			cfg.Scheme = schemes.SLPMT
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]pair, len(ws))
	i := 0
	for wi := range ws {
		out[wi] = make([]pair, variants)
		for v := 0; v < variants; v++ {
			out[wi][v] = pair{base: results[i], slpmt: results[i+1]}
			i += 2
		}
	}
	return out, nil
}

func colsOfInts(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%dB", x)
	}
	return out
}

func colsOfU64(xs []uint64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%dns", x)
	}
	return out
}

func opsOf(b bench.RunConfig) int {
	if b.N == 0 {
		return 1000
	}
	return b.N
}

func valueOf(b bench.RunConfig) int {
	if b.ValueSize == 0 {
		return 256
	}
	return b.ValueSize
}
