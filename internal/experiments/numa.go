package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/workloads"
)

// NumaSockets is the socket counts the NUMA experiment sweeps.
var NumaSockets = []int{1, 2, 4}

// NumaCores is the core counts the NUMA experiment runs each socket
// count at.
var NumaCores = []int{2, 4}

// NumaRemoteNanos is the local/remote-ratio sub-sweep: the per-hop
// interconnect latency of a remote persist enqueue (remote fills pay
// twice the value). 60 ns is roughly a modern two-socket QPI/UPI hop.
var NumaRemoteNanos = []uint64{30, 60, 120, 240}

// Numa runs the multi-device topology study: each scheme × structure
// (the full eight-workload suite, not just the STAMP kernels) runs at 2
// and 4 cores over 1, 2, and 4 PM sockets. Every socket is its own
// device — private write-pending queue, banks, and drain clock — behind
// a hop-linear interconnect distance matrix; cores are pinned round-
// robin to home sockets, and the heap is sharded so each core allocates
// from its home socket's arena. Reported per cell: makespan speedup
// over the same configuration on a single device, the cycle share spent
// on the WPQ, and the share paid to cross-socket hops (the wpq.remote
// cause). A final sub-sweep varies the remote-hop latency to show where
// the interconnect eats the parallelism the extra write queues bought.
//
// What to expect (and why the suite matters): splitting the persist
// traffic over per-socket devices removes queueing — the stream-tail
// backlog behind log.sync and the WPQ backpressure — but not the serial
// per-line commit flush, which pays full service latency per write-set
// line regardless of how many devices exist. Write-intensive structures
// (kv-ctree, dlist, kv-rtree, hashtable) are backlog-dominated and
// clear 1.5x at 4 cores / 2 sockets; pointer-chasing kernels (rbtree,
// avl) spend ~25% of an op in the serial flush and are Amdahl-bounded
// near 1.2-1.35x until 4 sockets gives every core a private device.
func Numa(out io.Writer, base bench.RunConfig) error {
	ss := ScalingSchemes()
	ws := workloads.Names()

	cfgs := make([]bench.RunConfig, 0, len(ss)*len(ws)*len(NumaCores)*len(NumaSockets))
	for _, s := range ss {
		for _, w := range ws {
			for _, c := range NumaCores {
				for _, k := range NumaSockets {
					cfg := base
					cfg.Scheme = s
					cfg.Workload = w
					cfg.Cores = c
					cfg.Sockets = k
					cfg.Metrics = true
					cfg.Profile = true
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}
	results, err := bench.RunAll(cfgs)
	if err != nil {
		return err
	}
	type cell struct{ cores, sockets int }
	byKey := make(map[string]map[string]map[cell]bench.Result, len(ss))
	for _, r := range results {
		if r.VerifyErr != nil {
			return fmt.Errorf("%s/%s cores=%d sockets=%d failed verification: %v",
				r.Scheme, r.Workload, r.Cores, r.Sockets, r.VerifyErr)
		}
		// The attribution conservation contract must hold in every cell:
		// remote-hop charges are part of the same per-core cycle budget,
		// not an extra ledger.
		if err := r.Causes.Conserved(); err != nil {
			return fmt.Errorf("%s/%s cores=%d sockets=%d: %v",
				r.Scheme, r.Workload, r.Cores, r.Sockets, err)
		}
		if byKey[r.Scheme] == nil {
			byKey[r.Scheme] = make(map[string]map[cell]bench.Result, len(ws))
		}
		if byKey[r.Scheme][r.Workload] == nil {
			byKey[r.Scheme][r.Workload] = make(map[cell]bench.Result)
		}
		byKey[r.Scheme][r.Workload][cell{normCores(r.Cores), r.Sockets}] = r
	}

	cols := []string{"scheme", "workload", "cores"}
	for _, k := range NumaSockets {
		cols = append(cols, fmt.Sprintf("%ds", k))
	}
	tsp := bench.NewTable(
		fmt.Sprintf("NUMA: makespan speedup over the single-device run (%dB values, %d ops)",
			valueOf(base), opsOf(base)),
		cols...)
	twpq := bench.NewTable(
		"NUMA: cycle share spent on the WPQ (enqueue + stalls + sync persists + remote hops)",
		cols...)
	trem := bench.NewTable(
		"NUMA: cycle share paid to cross-socket hops (wpq.remote)",
		cols...)
	tsig := bench.NewTable(
		"NUMA: lazy-conflict pressure (signature hits / txid cross-accesses / forced lazy-line persists)",
		cols...)
	// The 4-core 2-socket speedups, per scheme — the experiment's
	// acceptance headline: the geomean over the suite plus the best
	// structure, which shows what the topology buys when the persist
	// traffic is actually partitionable.
	headline := map[string][]float64{}
	type peak struct {
		workload string
		speedup  float64
	}
	best := map[string]peak{}
	for _, s := range ss {
		for _, w := range ws {
			for _, c := range NumaCores {
				rowS := []string{s, w, fmt.Sprint(c)}
				rowW := []string{s, w, fmt.Sprint(c)}
				rowR := []string{s, w, fmt.Sprint(c)}
				rowG := []string{s, w, fmt.Sprint(c)}
				one := byKey[s][w][cell{c, 1}]
				for _, k := range NumaSockets {
					r := byKey[s][w][cell{c, k}]
					sp := bench.Speedup(one, r)
					rowS = append(rowS, bench.Fx(sp))
					rowW = append(rowW, bench.Pct(wpqShare(r)))
					rowR = append(rowR, bench.Pct(remoteShare(r)))
					rowG = append(rowG, fmt.Sprintf("%d/%d/%d",
						r.Counters.SignatureHits, r.Counters.TxIDCrossAccess, r.Counters.LazyLinePersists))
					if c == 4 && k == 2 {
						headline[s] = append(headline[s], sp)
						if sp > best[s].speedup {
							best[s] = peak{workload: w, speedup: sp}
						}
					}
				}
				tsp.AddRow(rowS...)
				twpq.AddRow(rowW...)
				trem.AddRow(rowR...)
				tsig.AddRow(rowG...)
			}
		}
	}
	fmt.Fprintln(out, tsp)
	fmt.Fprintln(out, twpq)
	fmt.Fprintln(out, trem)
	fmt.Fprintln(out, tsig)
	for _, s := range ss {
		fmt.Fprintf(out, "%s 4-core/2-socket speedup over single device: %.2fx geomean, best %.2fx (%s)\n",
			s, bench.GeoMean(headline[s]), best[s].speedup, best[s].workload)
	}

	// Per-socket balance at the widest configuration: with round-robin
	// core pinning and per-core arenas the persist traffic should split
	// near-evenly; a skew means remote traffic or a hot shared region.
	tb := bench.NewTable(
		"NUMA: per-socket device stats (SLPMT structures, 4 cores, 2 sockets)",
		"workload", "socket", "enqueued", "stall.cycles", "occ.max", "occ.avg")
	for _, w := range ws {
		r := byKey[ss[0]][w][cell{4, 2}]
		if r.PerSocket == nil {
			continue
		}
		for _, st := range r.PerSocket.Stats {
			tb.AddRow(w, fmt.Sprint(st.Socket), fmt.Sprint(st.Enqueued),
				fmt.Sprint(st.StallCycles), fmt.Sprint(st.OccMaxBytes), fmt.Sprint(st.OccAvgBytes))
		}
	}
	fmt.Fprintln(out, tb)

	// Local/remote ratio: the headline's best-scaling structure under a
	// rising per-hop latency.
	const ratioWorkload = "kv-ctree"
	rcfgs := make([]bench.RunConfig, 0, len(NumaRemoteNanos))
	for _, ns := range NumaRemoteNanos {
		cfg := base
		cfg.Scheme = ss[0]
		cfg.Workload = ratioWorkload
		cfg.Cores = 4
		cfg.Sockets = 2
		cfg.RemoteNanos = ns
		cfg.Metrics = true
		cfg.Profile = true
		rcfgs = append(rcfgs, cfg)
	}
	rres, err := bench.RunAll(rcfgs)
	if err != nil {
		return err
	}
	trat := bench.NewTable(
		fmt.Sprintf("NUMA: remote-hop latency sensitivity (%s/%s, 4 cores, 2 sockets)", ss[0], ratioWorkload),
		"remote ns/hop", "cycles", "speedup vs 1 socket", "wpq.remote share")
	one := byKey[ss[0]][ratioWorkload][cell{4, 1}]
	for i, r := range rres {
		if r.VerifyErr != nil {
			return fmt.Errorf("remote sweep %dns failed verification: %v", NumaRemoteNanos[i], r.VerifyErr)
		}
		if err := r.Causes.Conserved(); err != nil {
			return fmt.Errorf("remote sweep %dns: %v", NumaRemoteNanos[i], err)
		}
		trat.AddRow(fmt.Sprint(NumaRemoteNanos[i]), fmt.Sprint(r.Cycles),
			bench.Fx(bench.Speedup(one, r)), bench.Pct(remoteShare(r)))
	}
	fmt.Fprintln(out, trat)

	fmt.Fprintln(out, "(each socket is its own device behind a hop-linear interconnect; cores are")
	fmt.Fprint(out, " pinned round-robin and allocate from home-socket arenas of the sharded heap)\n")
	return nil
}

// remoteShare is the fraction of attributed core-cycles paid to
// cross-socket interconnect hops (the wpq.remote cause).
func remoteShare(r bench.Result) float64 {
	by := r.Causes.ByName()
	var total uint64
	for _, v := range by { //slpmt:determinism-ok: order-independent sum
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(by["wpq.remote"]) / float64(total)
}
