package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
)

// TestCritPathExperimentDeterministic runs the critpath experiment on
// the serial pool and on four workers and requires byte-identical
// output: the causal analysis must be a pure function of each cell's
// deterministic event stream, untouched by scheduling of the sweep
// itself. This is the -parallel half of the determinism contract (the
// streamed-vs-buffered half lives in the bench and CLI stream-check).
func TestCritPathExperimentDeterministic(t *testing.T) {
	cfg := bench.RunConfig{N: 60, ValueSize: 32, Verify: true}
	run := func(workers int) string {
		bench.SetParallelism(workers)
		defer bench.SetParallelism(0)
		var buf bytes.Buffer
		if err := Run(&buf, "critpath", cfg); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return buf.String()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("critpath experiment diverges between serial and parallel sweeps:\nserial:\n%s\nparallel:\n%s",
			serial, parallel)
	}
	for _, want := range []string{
		"conservation contract",
		"dominant critical cause",
		"what-if speedup bounds",
		"W->inf projection",
		"hottest contended lines",
		"(ok)",
	} {
		if !strings.Contains(serial, want) {
			t.Errorf("output missing %q:\n%s", want, serial)
		}
	}
	if strings.Contains(serial, "0 of 0") {
		t.Errorf("hot-line table empty:\n%s", serial)
	}
}
