package experiments

import (
	"fmt"
	"io"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/compiler"
	"github.com/persistmem/slpmt/internal/recovery"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/txir"
	"github.com/persistmem/slpmt/internal/workloads"
	"github.com/persistmem/slpmt/internal/ycsb"
)

func init() {
	fig13Impl = fig13
}

// runWhole runs a workload end-to-end (setup + inserts + lazy drain)
// under a scheme and returns the total simulated cycles — the unit the
// compiler comparison uses, since the replayed trace covers setup too.
func runWhole(scheme, workload string, base bench.RunConfig) (uint64, error) {
	w := workloads.MustNew(workload)
	sys := slpmt.New(slpmt.Options{Scheme: scheme, ComputeCyclesPerOp: w.ComputeCost()})
	if err := w.Setup(sys); err != nil {
		return 0, err
	}
	load := ycsb.Load{N: base.N, ValueSize: base.ValueSize, Seed: base.Seed}
	if err := load.Each(func(k uint64, v []byte) error { return w.Insert(sys, k, v) }); err != nil {
		return 0, err
	}
	sys.DrainLazy()
	return sys.Cycles(), nil
}

// record captures the workload's transaction IR with manual annotations
// stripped at execution but recorded for the coverage comparison.
func record(workload string, base bench.RunConfig) (*txir.Trace, error) {
	w := workloads.MustNew(workload)
	sys := slpmt.New(slpmt.Options{Scheme: schemes.SLPMT, ComputeCyclesPerOp: w.ComputeCost()})
	rec := &txir.Recorder{}
	sys.AttachRecorder(rec)
	sys.SetStrip(true)
	if err := w.Setup(sys); err != nil {
		return nil, err
	}
	load := ycsb.Load{N: base.N, ValueSize: base.ValueSize, Seed: base.Seed}
	if err := load.Each(func(k uint64, v []byte) error { return w.Insert(sys, k, v) }); err != nil {
		return nil, err
	}
	return &rec.Trace, nil
}

// fig13 reproduces Figure 13: compiler-inserted vs manual annotations
// (left: speedup over the FG baseline; right: analysis time), plus the
// variable-coverage count the paper reports in the text (16 of 26).
func fig13(out io.Writer, base bench.RunConfig) error {
	ws := workloads.Kernels()
	tb := bench.NewTable(
		"Figure 13 (left): speedup over FG — manual vs compiler-inserted annotations",
		"workload", "manual", "compiler", "sites manual", "sites found")
	tt := bench.NewTable(
		"Figure 13 (right): compile (analysis) time",
		"workload", "IR ops", "analysis time", "ns/op")

	// One job per kernel on the worker pool: the record + infer +
	// replay + recovery pipeline per workload touches only systems the
	// job builds itself.
	type fig13Cell struct {
		fg, manual, replay uint64
		traceOps           int
		ann                *compiler.Annotations
	}
	cells := make([]fig13Cell, len(ws))
	if err := bench.ForEach(len(ws), func(i int) error {
		w := ws[i]
		fg, err := runWhole(schemes.FG, w, base)
		if err != nil {
			return err
		}
		manual, err := runWhole(schemes.SLPMT, w, base)
		if err != nil {
			return err
		}
		trace, err := record(w, base)
		if err != nil {
			return err
		}
		guard := slpmt.New(slpmt.Options{}).Layout().RootBase + 8*workloads.RootMoveSrc
		ann := compiler.Infer(trace, guard)

		// Replay with inferred annotations on a fresh system.
		wl := workloads.MustNew(w)
		sys := slpmt.New(slpmt.Options{Scheme: schemes.SLPMT, ComputeCyclesPerOp: wl.ComputeCost()})
		if err := compiler.Replay(trace, ann, sys); err != nil {
			return fmt.Errorf("%s: %w", w, err)
		}
		sys.DrainLazy()

		// Verify the replayed durable state with the recovery checker.
		img := sys.Mach.Crash()
		rec := workloads.MustNew(w).(workloads.Recoverable)
		if _, _, err := recovery.Recover(img, rec); err != nil {
			return fmt.Errorf("%s replay recovery: %w", w, err)
		}
		load := ycsb.Load{N: base.N, ValueSize: base.ValueSize, Seed: base.Seed}
		if err := rec.CheckDurable(img, load.Oracle()); err != nil {
			return fmt.Errorf("%s replay durable check: %w", w, err)
		}
		cells[i] = fig13Cell{fg: fg, manual: manual, replay: sys.Cycles(), traceOps: len(trace.Ops), ann: ann}
		return nil
	}); err != nil {
		return err
	}

	totalManual, totalFound := 0, 0
	for i, w := range ws {
		c := cells[i]
		cov := c.ann.Coverage
		tb.AddRow(w,
			bench.Fx(float64(c.fg)/float64(c.manual)),
			bench.Fx(float64(c.fg)/float64(c.replay)),
			fmt.Sprint(cov.ManualSites),
			fmt.Sprint(cov.FoundSites))
		tt.AddRow(w,
			fmt.Sprint(c.traceOps),
			c.ann.AnalyzeTime.String(),
			fmt.Sprintf("%.0f", float64(c.ann.AnalyzeTime.Nanoseconds())/float64(c.traceOps+1)))
		totalManual += cov.ManualSites
		totalFound += cov.FoundSites
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintf(out, "compiler identified %d of %d manually annotated variables (paper: 16 of 26)\n\n",
		totalFound, totalManual)
	fmt.Fprintln(out, tt)
	fmt.Fprintf(out, "(paper: compiler speedups match manual; absolute compile-time cost < 0.15 s —\n"+
		" the analysis above stays well under that for every kernel)\n")
	return nil
}
