package report

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/schemes"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestSchemaRoundTrip pins the wire keys and the write format
// (2-space indent, trailing newline) against a real profiled run.
func TestSchemaRoundTrip(t *testing.T) {
	r := bench.Run(bench.RunConfig{
		Scheme: schemes.SLPMT, Workload: "hashtable",
		N: 30, ValueSize: 32, Verify: true, Profile: true,
	})
	rep := FromResults("headline", 1, 5*time.Millisecond, 300, 3000, []bench.Result{r})
	path := filepath.Join(t.TempDir(), Filename("headline"))
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "headline" || back.Runs != 1 || len(back.Results) != 1 {
		t.Fatalf("round trip lost the document: %+v", back)
	}
	got := back.Results[0]
	if got.Cycles != r.Cycles || got.TxCommits != r.Counters.TxCommits || !got.VerifyOK {
		t.Errorf("scalar fields lost: %+v", got)
	}
	if len(got.CyclesByCause) == 0 {
		t.Fatal("profiled run produced no cycles_by_cause")
	}
	var sum uint64
	for _, v := range got.CyclesByCause {
		sum += v
	}
	if sum != r.Cycles {
		t.Errorf("cycles_by_cause sums to %d, want the run's %d cycles", sum, r.Cycles)
	}
	if c := Compare(back, back); !c.Pass() {
		t.Errorf("document does not compare equal to itself:\n%s", c)
	}
}

// TestResultSortAndKey pins the stable order and the comparability key.
func TestResultSortAndKey(t *testing.T) {
	a := bench.Result{RunConfig: bench.RunConfig{Scheme: "FG", Workload: "hashtable", N: 10, ValueSize: 8}}
	b := bench.Result{RunConfig: bench.RunConfig{Scheme: "FG", Workload: "hashtable", N: 10, ValueSize: 8, Cores: 2}}
	c := bench.Result{RunConfig: bench.RunConfig{Scheme: "EDE", Workload: "hashtable", N: 10, ValueSize: 8}}
	rep := FromResults("x", 0, 0, 0, 0, []bench.Result{b, a, c})
	want := []string{"EDE", "FG", "FG"}
	for i, r := range rep.Results {
		if r.Scheme != want[i] {
			t.Fatalf("sort order wrong: %+v", rep.Results)
		}
	}
	if rep.Results[1].Key() == rep.Results[2].Key() {
		t.Error("cores not part of the result key")
	}
	if rep.Results[1].Key() != FromResult(a).Key() {
		t.Error("key not stable for equal configs")
	}
}

// TestCauseHelpCoversCauses mirrors the slpmtvet check at runtime:
// every cause renders a nonempty explanation in the report.
func TestCauseHelpCoversCauses(t *testing.T) {
	for _, c := range profile.Causes() {
		if CauseHelp(c.String()) == "" {
			t.Errorf("cause %s has no help text", c)
		}
	}
	if CauseHelp("no.such.cause") != "" {
		t.Error("unknown cause got help text")
	}
}

// TestRenderHTML sanity-checks the self-contained report: valid
// skeleton, no external references, and every section present when a
// multi-core profiled document is rendered.
func TestRenderHTML(t *testing.T) {
	var results []bench.Result
	for _, scheme := range []string{schemes.FG, schemes.SLPMT} {
		for _, cores := range []int{1, 2} {
			results = append(results, bench.Run(bench.RunConfig{
				Scheme: scheme, Workload: "hashtable",
				N: 30, ValueSize: 32, Verify: true, Profile: true, Metrics: true, Cores: cores,
			}))
		}
	}
	rep := FromResults("scaling", 1, time.Millisecond, 0, 0, results)
	var sb strings.Builder
	if err := RenderHTML(&sb, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "experiment: scaling",
		"cycle attribution", "scheme vs scheme", "WPQ occupancy",
		"latency percentiles", "<svg", "log.append",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(out, banned) {
			t.Errorf("report is not self-contained: found %q", banned)
		}
	}

	// Deterministic for a given input.
	var sb2 strings.Builder
	if err := RenderHTML(&sb2, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("render is not deterministic")
	}
}

// TestStreamedRunReport pins the streaming additions to the schema:
// a streamed run's document carries the telemetry interval series
// under the "intervals" wire key, and the HTML report renders the
// live-telemetry sparkline panel for it.
func TestStreamedRunReport(t *testing.T) {
	r := bench.Run(bench.RunConfig{
		Scheme: schemes.SLPMT, Workload: "hashtable",
		N: 60, ValueSize: 32, Verify: true,
		StreamDir: t.TempDir(), StreamInterval: 1 << 12,
	})
	rep := FromResults("headline", 1, time.Millisecond, 0, 0, []bench.Result{r})
	if len(rep.Results[0].Intervals) == 0 {
		t.Fatal("streamed run produced no interval series")
	}
	data, err := json.Marshal(rep.Results[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["intervals"]; !ok {
		t.Error(`streamed result missing "intervals" wire key`)
	}
	if _, ok := m["dropped_events"]; ok {
		t.Error("zero dropped_events should be omitted from the wire")
	}
	var sb strings.Builder
	if err := RenderHTML(&sb, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live telemetry") {
		t.Error("HTML report missing the live-telemetry panel")
	}
}

// TestDroppedEventsBanner: a result whose tracer ring overflowed is
// flagged on the wire (dropped_events) and as an HTML warning banner.
func TestDroppedEventsBanner(t *testing.T) {
	rep := fixture()
	rep.Results[0].DroppedEvents = 1234
	data, err := json.Marshal(rep.Results[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"dropped_events":1234`) {
		t.Errorf("dropped_events not on the wire: %s", data)
	}
	var sb strings.Builder
	if err := RenderHTML(&sb, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace events dropped") || !strings.Contains(out, "1234 events dropped") {
		t.Error("HTML report missing the dropped-events warning banner")
	}
}

// TestJSONKeys pins the exact wire names — external scripts parse
// these documents, so renames are breaking changes.
func TestJSONKeys(t *testing.T) {
	rep := fixture()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"experiment", "parallel", "wall_ms", "runs", "total_ops", "allocs_per_op", "bytes_per_op", "results"} {
		if _, ok := top[k]; !ok {
			t.Errorf("report key %q missing", k)
		}
	}
	var results []map[string]json.RawMessage
	if err := json.Unmarshal(top["results"], &results); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"scheme", "workload", "n", "value_size", "cycles",
		"pm_write_bytes_data", "pm_write_bytes_log", "pm_write_bytes",
		"tx_commits", "verify_ok", "commit_latency_p50", "cycles_by_cause"} {
		if _, ok := results[0][k]; !ok {
			t.Errorf("result key %q missing", k)
		}
	}
}
