package report

import (
	"strings"
	"testing"
)

// fixture builds a one-result report; mutate copies to model drift.
func fixture() Report {
	return Report{
		Experiment: "headline",
		Runs:       1,
		Results: []Result{{
			Scheme: "SLPMT", Workload: "hashtable", N: 1000, ValueSize: 256,
			Cycles:           1_000_000,
			PMWriteBytesData: 400_000,
			PMWriteBytesLog:  100_000,
			PMWriteBytes:     500_000,
			TxCommits:        1000,
			VerifyOK:         true,
			CommitLatencyP50: 800, CommitLatencyP95: 1200, CommitLatencyP99: 2000,
			CyclesByCause: map[string]uint64{
				"compute":    600_000,
				"log.append": 300_000,
				"wpq.stall":  100_000,
			},
		}},
	}
}

func TestCompareIdentical(t *testing.T) {
	c := Compare(fixture(), fixture())
	if !c.Pass() {
		t.Fatalf("identical reports failed:\n%s", c)
	}
	if len(c.Drifted) != 0 || len(c.Notes) != 0 {
		t.Errorf("identical reports produced drift/notes:\n%s", c)
	}
	if c.Checked == 0 {
		t.Error("nothing was checked")
	}
	if !strings.HasPrefix(c.String(), "PASS headline") {
		t.Errorf("summary line wrong: %q", c.String())
	}
}

func TestCompareToleratedDrift(t *testing.T) {
	cand := fixture()
	cand.Results[0].Cycles = 1_030_000                 // +3% < 5%
	cand.Results[0].CommitLatencyP99 = 2150            // +7.5% < 10%
	cand.Results[0].CyclesByCause["compute"] = 630_000 // +5% < 10%
	c := Compare(fixture(), cand)
	if !c.Pass() {
		t.Fatalf("in-tolerance drift failed:\n%s", c)
	}
	if len(c.Drifted) != 3 {
		t.Errorf("want 3 drift rows, got %d:\n%s", len(c.Drifted), c)
	}
}

func TestCompareRegression(t *testing.T) {
	cand := fixture()
	cand.Results[0].Cycles = 1_080_000 // +8% > 5%
	c := Compare(fixture(), cand)
	if c.Pass() {
		t.Fatalf("8%% cycles regression passed:\n%s", c)
	}
	if len(c.Failures) != 1 || !strings.Contains(c.Failures[0], "cycles") {
		t.Errorf("wrong failure set:\n%s", c)
	}
	if !strings.HasPrefix(c.String(), "FAIL headline") {
		t.Errorf("summary line wrong: %q", c.String())
	}
}

// TestCompareSymmetric pins that improvements past tolerance also fail:
// the committed baseline must be refreshed to describe the tree.
func TestCompareSymmetric(t *testing.T) {
	cand := fixture()
	cand.Results[0].Cycles = 900_000 // -10%
	if c := Compare(fixture(), cand); c.Pass() {
		t.Fatalf("10%% improvement passed without a baseline refresh:\n%s", c)
	}
}

func TestCompareExactMetrics(t *testing.T) {
	cand := fixture()
	cand.Results[0].TxCommits = 999 // off by one; tolerance is exact
	if c := Compare(fixture(), cand); c.Pass() {
		t.Fatalf("tx_commits drift passed:\n%s", c)
	}
}

func TestCompareCauseFloor(t *testing.T) {
	base := fixture()
	base.Results[0].CyclesByCause["commit.marker"] = 100
	cand := fixture()
	cand.Results[0].CyclesByCause["commit.marker"] = 300 // 3x, but tiny
	if c := Compare(base, cand); !c.Pass() {
		t.Fatalf("sub-floor cause drift failed:\n%s", c)
	}
	cand.Results[0].CyclesByCause["wpq.stall"] = 112_000 // +12% of 100k, above floor
	if c := Compare(base, cand); c.Pass() {
		t.Fatal("12% cause drift above the floor passed")
	}
}

func TestCompareMetricRemoved(t *testing.T) {
	cand := fixture()
	cand.Results[0].CommitLatencyP50 = 0 // omitempty: metric disappears
	c := Compare(fixture(), cand)
	if c.Pass() {
		t.Fatalf("removed metric passed:\n%s", c)
	}
	if !strings.Contains(strings.Join(c.Failures, "\n"), "commit_latency_p50 removed") {
		t.Errorf("removal not named:\n%s", c)
	}

	cand = fixture()
	delete(cand.Results[0].CyclesByCause, "wpq.stall")
	if c := Compare(fixture(), cand); c.Pass() {
		t.Fatal("removed cause passed")
	}
}

func TestCompareMetricAdded(t *testing.T) {
	cand := fixture()
	cand.Results[0].LazyDrainP50 = 50
	cand.Results[0].CyclesByCause["lazy.drain"] = 40_000
	c := Compare(fixture(), cand)
	if !c.Pass() {
		t.Fatalf("new metrics failed the gate:\n%s", c)
	}
	notes := strings.Join(c.Notes, "\n")
	if !strings.Contains(notes, "lazy_drain_p50") || !strings.Contains(notes, "cycles_by_cause.lazy.drain") {
		t.Errorf("new metrics not noted:\n%s", c)
	}
}

func TestCompareResultSetDrift(t *testing.T) {
	cand := fixture()
	cand.Results = nil
	c := Compare(fixture(), cand)
	if c.Pass() || !strings.Contains(strings.Join(c.Failures, "\n"), "missing from candidate") {
		t.Fatalf("missing result not failed:\n%s", c)
	}

	cand = fixture()
	extra := cand.Results[0]
	extra.Cores = 4
	cand.Results = append(cand.Results, extra)
	c = Compare(fixture(), cand)
	if !c.Pass() {
		t.Fatalf("extra result failed the gate:\n%s", c)
	}
	if !strings.Contains(strings.Join(c.Notes, "\n"), "absent from baseline") {
		t.Errorf("extra result not noted:\n%s", c)
	}
}

func TestCompareVerifyRegression(t *testing.T) {
	cand := fixture()
	cand.Results[0].VerifyOK = false
	c := Compare(fixture(), cand)
	if c.Pass() || !strings.Contains(strings.Join(c.Failures, "\n"), "verify_ok regressed") {
		t.Fatalf("verify regression not failed:\n%s", c)
	}
}

func TestCompareExperimentMismatch(t *testing.T) {
	cand := fixture()
	cand.Experiment = "fig8"
	if c := Compare(fixture(), cand); c.Pass() {
		t.Fatal("experiment mismatch passed")
	}
}
