// Package report is the machine-readable benchmark schema and its
// consumers: BENCH_<experiment>.json documents (written by slpmtbench
// -json), the perf-regression comparator against committed baselines,
// and the self-contained HTML run-report renderer (cmd/slpmtreport).
//
// The JSON schema is an external contract — CI baselines and any
// scripts the user keeps around parse it — so fields are only ever
// added, never renamed or removed.
package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/critpath"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/trace/stream"
)

// Result is the machine-readable form of one bench.Run outcome.
type Result struct {
	Scheme           string `json:"scheme"`
	Workload         string `json:"workload"`
	N                int    `json:"n"`
	ValueSize        int    `json:"value_size"`
	PMWriteNanos     uint64 `json:"pm_write_nanos,omitempty"`
	Banks            int    `json:"banks,omitempty"`
	WPQBytes         int    `json:"wpq_bytes,omitempty"`
	Seed             uint64 `json:"seed,omitempty"`
	Cores            int    `json:"cores,omitempty"`
	CommitWindow     int    `json:"commit_window,omitempty"`
	Sockets          int    `json:"sockets,omitempty"`
	RemoteNanos      uint64 `json:"remote_nanos,omitempty"`
	Cycles           uint64 `json:"cycles"`
	PMWriteBytesData uint64 `json:"pm_write_bytes_data"`
	PMWriteBytesLog  uint64 `json:"pm_write_bytes_log"`
	PMWriteBytes     uint64 `json:"pm_write_bytes"`
	TxCommits        uint64 `json:"tx_commits"`
	VerifyOK         bool   `json:"verify_ok"`

	// Interval metrics, present when the run carried a tracer (the
	// scaling experiment always does; see bench.RunConfig.Metrics).
	CommitLatencyP50 uint64 `json:"commit_latency_p50,omitempty"`
	CommitLatencyP95 uint64 `json:"commit_latency_p95,omitempty"`
	CommitLatencyP99 uint64 `json:"commit_latency_p99,omitempty"`
	LazyDrainP50     uint64 `json:"lazy_drain_p50,omitempty"`
	LazyDrainP95     uint64 `json:"lazy_drain_p95,omitempty"`
	LazyDrainP99     uint64 `json:"lazy_drain_p99,omitempty"`
	WPQOccMaxBytes   uint64 `json:"wpq_occ_max_bytes,omitempty"`
	WPQOccAvgBytes   uint64 `json:"wpq_occ_avg_bytes,omitempty"`

	// DroppedEvents is the number of trace events the tracer's ring
	// discarded (zero on untraced runs and on streamed runs, whose spill
	// sink never drops). Nonzero means every trace-derived metric above
	// is a lower bound, so consumers should flag it.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`

	// Intervals is the live-telemetry interval series, present when the
	// run streamed its trace (bench.RunConfig.StreamDir): one entry per
	// closed snapshot window, mirroring the run's telemetry.ndjson.
	Intervals []stream.Interval `json:"intervals,omitempty"`

	// CyclesByCause is the cycle-attribution breakdown (cause name →
	// cycles, merged across cores), present when the run carried a
	// profile (bench.RunConfig.Profile). Maps marshal in sorted key
	// order, so the document stays byte-deterministic.
	CyclesByCause map[string]uint64 `json:"cycles_by_cause,omitempty"`

	// WPQSocketOccMax is the per-socket maximum WPQ occupancy in bytes
	// (socket number → bytes), present on multi-socket runs. Like
	// CyclesByCause, map marshalling keeps the document deterministic.
	WPQSocketOccMax map[string]uint64 `json:"wpq_socket_occ_max,omitempty"`

	// Critical-path analysis fields, present when the run carried the
	// causal analyzer (bench.RunConfig.CritPath). CriticalPathByCause is
	// the makespan decomposed along the critical path (cause name →
	// cycles; the values sum to CritPathLen == cycles, the checked
	// conservation contract). CritPathSlackTop ranks the DAG nodes with
	// the most scheduling headroom, CritPathSteps is the walked path
	// (oldest first, for the per-core blame timeline), and HotLines is
	// the per-address contention ranking.
	CritPathLen         uint64            `json:"critpath_len,omitempty"`
	CritPathHops        int               `json:"critpath_hops,omitempty"`
	CriticalPathByCause map[string]uint64 `json:"critical_path_by_cause,omitempty"`
	CritPathSlackTop    []CritSlack       `json:"critpath_slack_top,omitempty"`
	CritPathSteps       []CritStep        `json:"critpath_steps,omitempty"`
	HotLines            []HotLine         `json:"hot_lines,omitempty"`
}

// CritSlack is one slack-ranking entry: a DAG node (a coalesced run of
// same-cause charges on one core) and how many cycles later it could
// finish without growing the makespan.
type CritSlack struct {
	Core  int    `json:"core"`
	Cause string `json:"cause"`
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
	Slack uint64 `json:"slack_cycles"`
}

// CritStep is one critical-path segment, oldest first. Edge is the
// waits-for relation the path followed into the segment ("program" =
// same-core order; "wpq.drain"/"coherence"/"lazy.conflict" = a
// cross-core hop).
type CritStep struct {
	Core  int    `json:"core"`
	Cause string `json:"cause"`
	Start uint64 `json:"start_cycle"`
	End   uint64 `json:"end_cycle"`
	Edge  string `json:"edge"`
}

// HotLine is one contended cache line's observatory record (see
// critpath.HotLine for field semantics).
type HotLine struct {
	Addr         string `json:"addr"` // hex line address
	Score        uint64 `json:"score"`
	Transfers    uint64 `json:"transfers,omitempty"`
	PingPong     uint64 `json:"ping_pong,omitempty"`
	Stalls       uint64 `json:"stalls,omitempty"`
	SigHits      uint64 `json:"sig_hits,omitempty"`
	Remote       uint64 `json:"remote,omitempty"`
	StallCycles  uint64 `json:"stall_cycles,omitempty"`
	RemoteCycles uint64 `json:"remote_cycles,omitempty"`
	Residency    uint64 `json:"wpq_residency_cycles,omitempty"`
}

// Key identifies the run configuration: two results with the same key
// measure the same point of the parameter grid and are comparable
// across baseline and candidate documents.
func (r Result) Key() string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		r.Scheme, r.Workload, r.N, r.ValueSize, r.PMWriteNanos, r.Banks, r.WPQBytes, r.Cores, r.Seed, r.CommitWindow, r.Sockets, r.RemoteNanos)
}

// Report is the top-level BENCH_<experiment>.json document.
type Report struct {
	Experiment  string   `json:"experiment"`
	Parallel    int      `json:"parallel"`
	WallMillis  float64  `json:"wall_ms"`
	Runs        int      `json:"runs"`
	TotalOps    uint64   `json:"total_ops"`
	AllocsPerOp float64  `json:"allocs_per_op"`
	BytesPerOp  float64  `json:"bytes_per_op"`
	Results     []Result `json:"results"`
}

// FromResult converts one harness outcome to its wire form.
func FromResult(r bench.Result) Result {
	out := Result{
		Scheme:           r.Scheme,
		Workload:         r.Workload,
		N:                r.N,
		ValueSize:        r.ValueSize,
		PMWriteNanos:     r.PMWriteNanos,
		Banks:            r.Banks,
		WPQBytes:         r.WPQBytes,
		Seed:             r.Seed,
		Cores:            r.Cores,
		CommitWindow:     r.RunConfig.CommitWindow,
		Sockets:          r.RunConfig.Sockets,
		RemoteNanos:      r.RunConfig.RemoteNanos,
		Cycles:           r.Cycles,
		PMWriteBytesData: r.Counters.PMWriteBytesData,
		PMWriteBytesLog:  r.Counters.PMWriteBytesLog,
		PMWriteBytes:     r.PMWriteBytes(),
		TxCommits:        r.Counters.TxCommits,
		VerifyOK:         r.VerifyErr == nil,
		CommitLatencyP50: r.Summary.CommitP50,
		CommitLatencyP95: r.Summary.CommitP95,
		CommitLatencyP99: r.Summary.CommitP99,
		LazyDrainP50:     r.Summary.LazyP50,
		LazyDrainP95:     r.Summary.LazyP95,
		LazyDrainP99:     r.Summary.LazyP99,
		WPQOccMaxBytes:   r.Counters.WPQOccMaxBytes,
		WPQOccAvgBytes:   r.Counters.WPQOccAvgBytes,
		DroppedEvents:    r.Summary.Dropped,
	}
	if r.Intervals != nil {
		out.Intervals = r.Intervals.Intervals
	}
	if r.Causes != nil {
		out.CyclesByCause = r.Causes.ByName()
	}
	if r.PerSocket != nil {
		out.WPQSocketOccMax = make(map[string]uint64, len(r.PerSocket.Stats))
		for _, s := range r.PerSocket.Stats {
			out.WPQSocketOccMax[fmt.Sprint(s.Socket)] = s.OccMaxBytes
		}
	}
	if an := r.CritPath; an != nil {
		out.CritPathLen = an.PathLen
		out.CritPathHops = an.Hops
		out.CriticalPathByCause = an.ByCause()
		for _, s := range an.SlackTop {
			out.CritPathSlackTop = append(out.CritPathSlackTop, CritSlack{
				Core: s.Node.Core, Cause: s.Node.Cause.String(),
				Start: s.Node.Start, End: s.Node.End, Slack: s.Slack,
			})
		}
		out.CritPathSteps = critSteps(an)
		for i, h := range an.HotLines {
			if i >= maxReportHotLines {
				break
			}
			out.HotLines = append(out.HotLines, HotLine{
				Addr: fmt.Sprintf("%#x", h.Addr), Score: h.Score(),
				Transfers: h.Transfers, PingPong: h.PingPong, Stalls: h.Stalls,
				SigHits: h.SigHits, Remote: h.Remote,
				StallCycles: h.StallCycles, RemoteCycles: h.RemoteCycles,
				Residency: h.Residency,
			})
		}
	}
	return out
}

// maxReportSteps caps the embedded path timeline (spans beyond it are
// dropped from the document, not from the analysis); maxReportHotLines
// caps the embedded contention ranking.
const (
	maxReportSteps    = 512
	maxReportHotLines = 16
)

// critSteps compresses the walked critical path into per-core blame
// spans: consecutive same-core steps merge into one span labeled with
// the span's dominant cause (by cycles) and the hop edge that moved
// the path onto the core. This is the HTML timeline's data: one bar
// per span in core lanes.
func critSteps(an *critpath.Analysis) []CritStep {
	var out []CritStep
	var acc profile.Vector
	var core int
	var start, end uint64
	var edge critpath.EdgeKind
	open := false
	flush := func() {
		if !open {
			return
		}
		best, bestN := profile.CauseNone, uint64(0)
		for c, n := range acc {
			if n > bestN {
				best, bestN = profile.Cause(c), n
			}
		}
		out = append(out, CritStep{
			Core: core, Cause: best.String(), Start: start, End: end, Edge: edge.String(),
		})
		acc = profile.Vector{}
		open = false
	}
	for _, s := range an.Steps {
		if !open || s.Core != core {
			flush()
			core, start, edge, open = s.Core, s.Start, s.Edge, true
		}
		end = s.End
		acc[s.Cause] += s.End - s.Start
	}
	flush()
	if len(out) > maxReportSteps {
		out = out[:maxReportSteps]
	}
	return out
}

// FromResults builds the document for one experiment. The collector
// sees results in completion order, which varies with the worker
// schedule; results are sorted on the full config for stable files.
func FromResults(name string, parallel int, wall time.Duration, mallocs, bytes uint64, results []bench.Result) Report {
	rep := Report{
		Experiment: name,
		Parallel:   parallel,
		WallMillis: float64(wall.Microseconds()) / 1000,
		Runs:       len(results),
		Results:    make([]Result, 0, len(results)),
	}
	for _, r := range results {
		rep.TotalOps += uint64(r.N)
		rep.Results = append(rep.Results, FromResult(r))
	}
	sort.Slice(rep.Results, func(i, j int) bool {
		a, b := rep.Results[i], rep.Results[j]
		if a.Scheme != b.Scheme {
			return a.Scheme < b.Scheme
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.ValueSize != b.ValueSize {
			return a.ValueSize < b.ValueSize
		}
		if a.PMWriteNanos != b.PMWriteNanos {
			return a.PMWriteNanos < b.PMWriteNanos
		}
		if a.Banks != b.Banks {
			return a.Banks < b.Banks
		}
		if a.WPQBytes != b.WPQBytes {
			return a.WPQBytes < b.WPQBytes
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		if a.CommitWindow != b.CommitWindow {
			return a.CommitWindow < b.CommitWindow
		}
		if a.Sockets != b.Sockets {
			return a.Sockets < b.Sockets
		}
		if a.RemoteNanos != b.RemoteNanos {
			return a.RemoteNanos < b.RemoteNanos
		}
		return a.Seed < b.Seed
	})
	if rep.TotalOps > 0 {
		rep.AllocsPerOp = float64(mallocs) / float64(rep.TotalOps)
		rep.BytesPerOp = float64(bytes) / float64(rep.TotalOps)
	}
	return rep
}

// Filename is the conventional document name for an experiment.
func Filename(experiment string) string { return "BENCH_" + experiment + ".json" }

// Write marshals the document to path (2-space indent, trailing
// newline), matching the format of every committed baseline.
func (r Report) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads one BENCH_<experiment>.json document.
func Load(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
