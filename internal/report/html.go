package report

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"

	"github.com/persistmem/slpmt/internal/profile"
)

// RenderHTML writes a self-contained run report (inline CSS + SVG, no
// external assets, no scripts) for one or more BENCH documents:
// per-run summary tables, scheme-vs-scheme speedup deltas, commit- and
// drain-latency percentiles, WPQ occupancy charts, and the
// cycle-attribution breakdowns with share bars. Output is
// deterministic for a given input set.
func RenderHTML(w io.Writer, reports []Report) error {
	view := htmlView{Title: "slpmt run report"}
	for _, rep := range reports {
		view.Experiments = append(view.Experiments, buildExpView(rep))
	}
	return htmlTmpl.Execute(w, view)
}

type htmlView struct {
	Title       string
	Experiments []expView
}

type expView struct {
	Name       string
	Runs       int
	Parallel   int
	WallMillis float64
	Dropped    []droppedRow
	Rows       []runRow
	Deltas     []deltaGroup
	Latency    []latencyRow
	WPQ        *wpqChart
	Telemetry  []teleView
	Breakdowns []breakdownTable
	CritPaths  []critView
}

// critView is one analyzed run's critical-path panel: the per-core
// blame timeline SVG, the critical-vs-raw cause shares, the slack
// ranking, and the hot-line observatory.
type critView struct {
	Label    string
	Makespan uint64
	Hops     int
	Causes   []critCauseRow
	Slack    []CritSlack
	HotLines []HotLine
	SVG      template.HTML
}

type critCauseRow struct {
	Cause   string
	Cycles  uint64
	CritPct float64 // share of the critical path
	RawPct  float64 // share of all attributed core-cycles
	Help    string
}

// droppedRow flags a run whose tracer ring discarded events: every
// trace-derived metric of that run is a lower bound.
type droppedRow struct {
	Label   string
	Dropped uint64
}

// teleView is one streamed run's live-telemetry panel: commits per
// interval as an inline-SVG sparkline (dashed = WPQ stall cycles,
// separately normalized).
type teleView struct {
	Label     string
	Intervals int
	Commits   uint64
	Stalls    uint64
	SVG       template.HTML
}

type runRow struct {
	Label     string
	Cycles    uint64
	Data      uint64
	Log       uint64
	Total     uint64
	TxCommits uint64
	VerifyOK  bool
}

type deltaGroup struct {
	Label    string // the shared workload/parameter point
	Baseline string // scheme the speedups are relative to
	Rows     []deltaRow
}

type deltaRow struct {
	Scheme  string
	Cycles  uint64
	Speedup float64
	Traffic float64 // write-traffic reduction vs baseline, fraction
}

type latencyRow struct {
	Label                     string
	P50, P95, P99             uint64
	LazyP50, LazyP95, LazyP99 uint64
}

// wpqChart is an inline-SVG occupancy chart: one polyline per scheme
// over the results' varying core counts (or grid index when the
// experiment does not sweep cores).
type wpqChart struct {
	SVG    template.HTML
	Series []wpqSeries
}

type wpqSeries struct {
	Scheme string
	Max    uint64
	Avg    uint64
}

type breakdownTable struct {
	Label string
	Total uint64
	Rows  []breakdownRow
}

type breakdownRow struct {
	Cause   string
	Group   string
	Help    string
	Cycles  uint64
	Percent float64
}

// label renders the distinguishing parameters of a result inside one
// experiment.
func label(r Result) string {
	parts := []string{r.Scheme, r.Workload}
	parts = append(parts, fmt.Sprintf("n=%d", r.N), fmt.Sprintf("v=%dB", r.ValueSize))
	if r.PMWriteNanos != 0 {
		parts = append(parts, fmt.Sprintf("pm=%dns", r.PMWriteNanos))
	}
	if r.Banks != 0 {
		parts = append(parts, fmt.Sprintf("banks=%d", r.Banks))
	}
	if r.WPQBytes != 0 {
		parts = append(parts, fmt.Sprintf("wpq=%dB", r.WPQBytes))
	}
	if r.Cores != 0 {
		parts = append(parts, fmt.Sprintf("cores=%d", r.Cores))
	}
	if r.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", r.Seed))
	}
	return strings.Join(parts, " ")
}

// pointKey identifies a parameter point with the scheme removed, so
// schemes measured at the same point can be compared.
func pointKey(r Result) string {
	r.Scheme = ""
	return label(r)
}

func buildExpView(rep Report) expView {
	ev := expView{
		Name:       rep.Experiment,
		Runs:       rep.Runs,
		Parallel:   rep.Parallel,
		WallMillis: rep.WallMillis,
	}
	for _, r := range rep.Results {
		ev.Rows = append(ev.Rows, runRow{
			Label:     label(r),
			Cycles:    r.Cycles,
			Data:      r.PMWriteBytesData,
			Log:       r.PMWriteBytesLog,
			Total:     r.PMWriteBytes,
			TxCommits: r.TxCommits,
			VerifyOK:  r.VerifyOK,
		})
		if r.CommitLatencyP50 != 0 || r.LazyDrainP50 != 0 {
			ev.Latency = append(ev.Latency, latencyRow{
				Label: label(r),
				P50:   r.CommitLatencyP50, P95: r.CommitLatencyP95, P99: r.CommitLatencyP99,
				LazyP50: r.LazyDrainP50, LazyP95: r.LazyDrainP95, LazyP99: r.LazyDrainP99,
			})
		}
		if r.DroppedEvents != 0 {
			ev.Dropped = append(ev.Dropped, droppedRow{Label: label(r), Dropped: r.DroppedEvents})
		}
		if len(r.Intervals) != 0 {
			ev.Telemetry = append(ev.Telemetry, buildTelemetry(r))
		}
		if len(r.CyclesByCause) != 0 {
			ev.Breakdowns = append(ev.Breakdowns, buildBreakdown(r))
		}
		if len(r.CriticalPathByCause) != 0 {
			ev.CritPaths = append(ev.CritPaths, buildCritView(r))
		}
	}
	ev.Deltas = buildDeltas(rep.Results)
	ev.WPQ = buildWPQChart(rep.Results)
	return ev
}

// buildDeltas groups the results by parameter point and renders each
// scheme's speedup and traffic reduction relative to the point's
// baseline (FG when present, else the alphabetically first scheme).
func buildDeltas(results []Result) []deltaGroup {
	points := map[string][]Result{}
	order := []string{}
	for _, r := range results {
		k := pointKey(r)
		if _, ok := points[k]; !ok {
			order = append(order, k)
		}
		points[k] = append(points[k], r)
	}
	var out []deltaGroup
	for _, k := range order {
		rs := points[k]
		if len(rs) < 2 {
			continue
		}
		base := rs[0]
		for _, r := range rs {
			if r.Scheme == "FG" {
				base = r
			}
		}
		g := deltaGroup{Label: strings.TrimSpace(k), Baseline: base.Scheme}
		for _, r := range rs {
			row := deltaRow{Scheme: r.Scheme, Cycles: r.Cycles}
			if r.Cycles != 0 {
				row.Speedup = float64(base.Cycles) / float64(r.Cycles)
			}
			if base.PMWriteBytes != 0 {
				row.Traffic = 1 - float64(r.PMWriteBytes)/float64(base.PMWriteBytes)
			}
			g.Rows = append(g.Rows, row)
		}
		sort.Slice(g.Rows, func(i, j int) bool { return g.Rows[i].Scheme < g.Rows[j].Scheme })
		out = append(out, g)
	}
	return out
}

// buildWPQChart renders occupancy-vs-cores polylines when the results
// carry occupancy gauges at more than one core count, plus a summary
// series table either way.
func buildWPQChart(results []Result) *wpqChart {
	type pt struct {
		cores int
		avg   uint64
		max   uint64
	}
	bySch := map[string][]pt{}
	schemes := []string{}
	summary := map[string]*wpqSeries{}
	for _, r := range results {
		if r.WPQOccMaxBytes == 0 && r.WPQOccAvgBytes == 0 {
			continue
		}
		cores := r.Cores
		if cores == 0 {
			cores = 1
		}
		if _, ok := bySch[r.Scheme]; !ok {
			schemes = append(schemes, r.Scheme)
			summary[r.Scheme] = &wpqSeries{Scheme: r.Scheme}
		}
		bySch[r.Scheme] = append(bySch[r.Scheme], pt{cores, r.WPQOccAvgBytes, r.WPQOccMaxBytes})
		s := summary[r.Scheme]
		if r.WPQOccMaxBytes > s.Max {
			s.Max = r.WPQOccMaxBytes
		}
		if r.WPQOccAvgBytes > s.Avg {
			s.Avg = r.WPQOccAvgBytes
		}
	}
	if len(schemes) == 0 {
		return nil
	}
	sort.Strings(schemes)
	ch := &wpqChart{}
	for _, s := range schemes {
		ch.Series = append(ch.Series, *summary[s])
	}

	// The polyline chart needs a sweep: at least one scheme with two
	// distinct core counts.
	var maxCores int
	var maxOcc uint64
	sweep := false
	for _, s := range schemes {
		pts := bySch[s]
		sort.Slice(pts, func(i, j int) bool { return pts[i].cores < pts[j].cores })
		bySch[s] = pts
		if len(pts) > 1 && pts[0].cores != pts[len(pts)-1].cores {
			sweep = true
		}
		for _, p := range pts {
			if p.cores > maxCores {
				maxCores = p.cores
			}
			if p.max > maxOcc {
				maxOcc = p.max
			}
		}
	}
	if !sweep || maxCores < 2 || maxOcc == 0 {
		return ch
	}

	const W, H, M = 640, 240, 36
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, W, H, W, H)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="#fafafa" stroke="#ddd"/>`, W, H)
	x := func(cores int) float64 { return M + float64(cores-1)/float64(maxCores-1)*(W-2*M) }
	y := func(occ uint64) float64 { return H - M - float64(occ)/float64(maxOcc)*(H-2*M) }
	for c := 1; c <= maxCores; c++ {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle" fill="#555">%d</text>`, x(c), H-M/3, c)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555">avg WPQ occupancy (bytes) vs cores; dashed = high-water</text>`, M, M/2)
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"}
	for i, s := range schemes {
		col := palette[i%len(palette)]
		var avg, max []string
		for _, p := range bySch[s] {
			avg = append(avg, fmt.Sprintf("%.1f,%.1f", x(p.cores), y(p.avg)))
			max = append(max, fmt.Sprintf("%.1f,%.1f", x(p.cores), y(p.max)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(avg, " "), col)
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1" stroke-dasharray="4 3"/>`, strings.Join(max, " "), col)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="%s">%s</text>`, M+i*90, H-4, col, template.HTMLEscapeString(s))
	}
	b.WriteString(`</svg>`)
	ch.SVG = template.HTML(b.String()) //nolint:gosec // built above from escaped fields only
	return ch
}

// buildTelemetry renders a streamed run's interval series as a
// sparkline: commits per interval (solid) over the run's cycle axis,
// with WPQ stall cycles overlaid dashed on its own vertical scale.
func buildTelemetry(r Result) teleView {
	tv := teleView{Label: label(r), Intervals: len(r.Intervals)}
	var maxCommits, maxStalls uint64
	for _, iv := range r.Intervals {
		tv.Commits += iv.Commits
		tv.Stalls += iv.WPQStallCycles
		if iv.Commits > maxCommits {
			maxCommits = iv.Commits
		}
		if iv.WPQStallCycles > maxStalls {
			maxStalls = iv.WPQStallCycles
		}
	}
	if len(r.Intervals) < 2 {
		return tv
	}
	const W, H, M = 640, 90, 8
	x := func(i int) float64 { return M + float64(i)/float64(len(r.Intervals)-1)*(W-2*M) }
	y := func(v, max uint64) float64 {
		if max == 0 {
			return H - M
		}
		return H - M - float64(v)/float64(max)*(H-2*M)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, W, H, W, H)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="#fafafa" stroke="#ddd"/>`, W, H)
	var commits, stalls []string
	for i, iv := range r.Intervals {
		commits = append(commits, fmt.Sprintf("%.1f,%.1f", x(i), y(iv.Commits, maxCommits)))
		stalls = append(stalls, fmt.Sprintf("%.1f,%.1f", x(i), y(iv.WPQStallCycles, maxStalls)))
	}
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f77b4" stroke-width="1.5"/>`, strings.Join(commits, " "))
	if maxStalls > 0 {
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#d62728" stroke-width="1" stroke-dasharray="3 2"/>`, strings.Join(stalls, " "))
	}
	b.WriteString(`</svg>`)
	tv.SVG = template.HTML(b.String()) //nolint:gosec // built above from numeric fields only
	return tv
}

func buildBreakdown(r Result) breakdownTable {
	t := breakdownTable{Label: label(r)}
	for _, v := range r.CyclesByCause {
		t.Total += v
	}
	names := make([]string, 0, len(r.CyclesByCause))
	for name := range r.CyclesByCause { //slpmt:determinism-ok: collected keys are sorted below
		names = append(names, name)
	}
	// Heaviest cause first; ties alphabetical.
	sort.Slice(names, func(i, j int) bool {
		a, b := names[i], names[j]
		if r.CyclesByCause[a] != r.CyclesByCause[b] {
			return r.CyclesByCause[a] > r.CyclesByCause[b]
		}
		return a < b
	})
	for _, name := range names {
		v := r.CyclesByCause[name]
		row := breakdownRow{Cause: name, Cycles: v, Help: CauseHelp(name)}
		if c, ok := profile.ByName(name); ok {
			row.Group = c.Group()
		}
		if t.Total != 0 {
			row.Percent = 100 * float64(v) / float64(t.Total)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// buildCritView assembles one run's critical-path panel from the
// report fields, including the per-core blame timeline SVG: one lane
// per core, one bar per path span (the interval the critical path
// resided on that core), colored by the span's dominant cause.
func buildCritView(r Result) critView {
	cv := critView{
		Label:    label(r),
		Makespan: r.CritPathLen,
		Hops:     r.CritPathHops,
		Slack:    r.CritPathSlackTop,
		HotLines: r.HotLines,
	}
	var rawTotal uint64
	for _, v := range r.CyclesByCause {
		rawTotal += v
	}
	names := make([]string, 0, len(r.CriticalPathByCause))
	for name := range r.CriticalPathByCause { //slpmt:determinism-ok: collected keys are sorted below
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := names[i], names[j]
		if r.CriticalPathByCause[a] != r.CriticalPathByCause[b] {
			return r.CriticalPathByCause[a] > r.CriticalPathByCause[b]
		}
		return a < b
	})
	for _, name := range names {
		v := r.CriticalPathByCause[name]
		row := critCauseRow{Cause: name, Cycles: v, Help: CauseHelp(name)}
		if r.CritPathLen != 0 {
			row.CritPct = 100 * float64(v) / float64(r.CritPathLen)
		}
		if rawTotal != 0 {
			row.RawPct = 100 * float64(r.CyclesByCause[name]) / float64(rawTotal)
		}
		cv.Causes = append(cv.Causes, row)
	}
	cv.SVG = critTimelineSVG(r.CritPathSteps, names)
	return cv
}

// critTimelineSVG renders the blame timeline. causeOrder (heaviest
// first) fixes the color assignment so the timeline and the cause
// table agree.
func critTimelineSVG(steps []CritStep, causeOrder []string) template.HTML {
	if len(steps) == 0 {
		return ""
	}
	lo, hi := steps[0].Start, steps[0].End
	coreSet := map[int]bool{}
	for _, s := range steps {
		if s.Start < lo {
			lo = s.Start
		}
		if s.End > hi {
			hi = s.End
		}
		coreSet[s.Core] = true
	}
	if hi <= lo {
		return ""
	}
	cores := make([]int, 0, len(coreSet))
	for c := range coreSet { //slpmt:determinism-ok: collected cores are sorted below
		cores = append(cores, c)
	}
	sort.Ints(cores)
	lane := map[int]int{}
	for i, c := range cores {
		lane[c] = i
	}
	palette := []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"}
	color := map[string]string{}
	for i, name := range causeOrder {
		color[name] = palette[i%len(palette)]
	}
	const W, M, laneH = 640, 36, 22
	H := 2*M + laneH*len(cores)
	x := func(c uint64) float64 { return M + float64(c-lo)/float64(hi-lo)*(W-2*M) }
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %d %d" width="%d" height="%d" role="img">`, W, H, W, H)
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%d" height="%d" fill="#fafafa" stroke="#ddd"/>`, W, H)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555">critical-path residence per core over the measured region (%d..%d cycles)</text>`, M, M/2+4, lo, hi)
	for _, c := range cores {
		yTop := M + lane[c]*laneH
		fmt.Fprintf(&b, `<text x="4" y="%d" font-size="11" fill="#555">c%d</text>`, yTop+laneH-8, c)
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#eee"/>`, M, yTop+laneH-4, W-M, yTop+laneH-4)
	}
	for _, s := range steps {
		col, ok := color[s.Cause]
		if !ok {
			col = "#999"
		}
		yTop := M + lane[s.Core]*laneH
		x0, x1 := x(s.Start), x(s.End)
		if x1-x0 < 0.5 {
			x1 = x0 + 0.5 // keep sub-pixel spans visible
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>core %d %s [%d..%d] via %s</title></rect>`,
			x0, yTop, x1-x0, laneH-6, col, s.Core, template.HTMLEscapeString(s.Cause), s.Start, s.End, template.HTMLEscapeString(s.Edge))
	}
	// Legend: the heaviest causes, left to right.
	lx := M
	for i, name := range causeOrder {
		if i >= len(palette) {
			break
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, lx, H-M+6, color[name])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555">%s</text>`, lx+14, H-M+15, template.HTMLEscapeString(name))
		lx += 14 + 8*len(name) + 16
	}
	b.WriteString(`</svg>`)
	return template.HTML(b.String()) //nolint:gosec // built above from escaped fields only
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"f2":  func(x float64) string { return fmt.Sprintf("%.2f", x) },
	"pct": func(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) },
	"bar": func(p float64) template.CSS {
		if p < 0 {
			p = 0
		}
		if p > 100 {
			p = 100
		}
		return template.CSS(fmt.Sprintf("width:%.1f%%", p))
	},
}).Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2em auto; max-width: 72em; padding: 0 1em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; border-bottom: 2px solid #eee; }
h3 { font-size: 1em; margin-top: 1.4em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ddd; padding: 3px 8px; text-align: right; font-variant-numeric: tabular-nums; }
th { background: #f5f5f5; } td.l, th.l { text-align: left; }
.ok { color: #2a7a2a; } .bad { color: #b22; font-weight: bold; }
.bar { position: relative; min-width: 12em; }
.bar span { position: absolute; left: 0; top: 0; bottom: 0; background: #cfe3f7; z-index: -1; display: block; }
.bar { z-index: 0; }
td.help { text-align: left; color: #666; font-size: 0.92em; }
.meta { color: #666; font-size: 0.92em; }
.warn { background: #fdf0ef; border: 1px solid #e0b4b0; border-left: 4px solid #b22; padding: 0.5em 1em; margin: 0.8em 0; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{range .Experiments}}
<h2>experiment: {{.Name}}</h2>
<p class="meta">{{.Runs}} runs, {{.WallMillis}} ms wall, parallel={{.Parallel}}</p>

{{if .Dropped}}<div class="warn"><strong>trace events dropped</strong> — the following runs overflowed the tracer ring, so their trace-derived metrics (latency percentiles, WPQ series, attribution) are lower bounds:
<ul>{{range .Dropped}}<li>{{.Label}}: {{.Dropped}} events dropped</li>{{end}}</ul>
Stream the trace instead (slpmtbench -trace-stream) to capture every event at bounded memory.</div>{{end}}

<h3>results</h3>
<table>
<tr><th class="l">run</th><th>cycles</th><th>data B</th><th>log B</th><th>PM write B</th><th>commits</th><th>verify</th></tr>
{{range .Rows}}<tr><td class="l">{{.Label}}</td><td>{{.Cycles}}</td><td>{{.Data}}</td><td>{{.Log}}</td><td>{{.Total}}</td><td>{{.TxCommits}}</td><td>{{if .VerifyOK}}<span class="ok">ok</span>{{else}}<span class="bad">FAIL</span>{{end}}</td></tr>
{{end}}</table>

{{if .Deltas}}<h3>scheme vs scheme</h3>
{{range .Deltas}}<table>
<tr><th class="l" colspan="4">{{.Label}} (baseline {{.Baseline}})</th></tr>
<tr><th class="l">scheme</th><th>cycles</th><th>speedup</th><th>traffic saved</th></tr>
{{range .Rows}}<tr><td class="l">{{.Scheme}}</td><td>{{.Cycles}}</td><td>{{f2 .Speedup}}x</td><td>{{pct .Traffic}}</td></tr>
{{end}}</table>
{{end}}{{end}}

{{if .Latency}}<h3>latency percentiles (cycles)</h3>
<table>
<tr><th class="l">run</th><th>commit p50</th><th>p95</th><th>p99</th><th>lazy p50</th><th>p95</th><th>p99</th></tr>
{{range .Latency}}<tr><td class="l">{{.Label}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td><td>{{.LazyP50}}</td><td>{{.LazyP95}}</td><td>{{.LazyP99}}</td></tr>
{{end}}</table>{{end}}

{{if .WPQ}}<h3>WPQ occupancy</h3>
{{if .WPQ.SVG}}{{.WPQ.SVG}}{{end}}
<table>
<tr><th class="l">scheme</th><th>high-water B</th><th>peak avg B</th></tr>
{{range .WPQ.Series}}<tr><td class="l">{{.Scheme}}</td><td>{{.Max}}</td><td>{{.Avg}}</td></tr>
{{end}}</table>{{end}}

{{if .Telemetry}}<h3>live telemetry (streamed runs)</h3>
{{range .Telemetry}}<p class="meta">{{.Label}} — {{.Intervals}} intervals, {{.Commits}} commits, {{.Stalls}} WPQ stall cycles; solid = commits/interval, dashed = stall cycles</p>
{{if .SVG}}{{.SVG}}{{end}}
{{end}}{{end}}

{{if .CritPaths}}<h3>critical path (causal blame)</h3>
{{range .CritPaths}}<p class="meta">{{.Label}} — critical path {{.Makespan}} cycles (== measured makespan), {{.Hops}} cross-core hops; lanes = cores, bars = the interval the critical path resided on that core, colored by dominant cause</p>
{{if .SVG}}{{.SVG}}{{end}}
<table>
<tr><th class="l">cause</th><th>path cycles</th><th>critical share</th><th>raw share</th><th class="l">meaning</th></tr>
{{range .Causes}}<tr><td class="l">{{.Cause}}</td><td>{{.Cycles}}</td><td class="bar"><span style="{{bar .CritPct}}"></span>{{f2 .CritPct}}%</td><td>{{f2 .RawPct}}%</td><td class="help">{{.Help}}</td></tr>
{{end}}</table>
{{if .Slack}}<table>
<tr><th class="l" colspan="5">slack top (cycles a node could slip without growing the makespan)</th></tr>
<tr><th>core</th><th class="l">cause</th><th>start</th><th>end</th><th>slack</th></tr>
{{range .Slack}}<tr><td>{{.Core}}</td><td class="l">{{.Cause}}</td><td>{{.Start}}</td><td>{{.End}}</td><td>{{.Slack}}</td></tr>
{{end}}</table>{{end}}
{{if .HotLines}}<table>
<tr><th class="l" colspan="10">hot lines (per-address contention)</th></tr>
<tr><th class="l">line</th><th>score</th><th>transfers</th><th>ping-pong</th><th>stalls</th><th>sig hits</th><th>remote</th><th>stall cyc</th><th>remote cyc</th><th>WPQ residency</th></tr>
{{range .HotLines}}<tr><td class="l">{{.Addr}}</td><td>{{.Score}}</td><td>{{.Transfers}}</td><td>{{.PingPong}}</td><td>{{.Stalls}}</td><td>{{.SigHits}}</td><td>{{.Remote}}</td><td>{{.StallCycles}}</td><td>{{.RemoteCycles}}</td><td>{{.Residency}}</td></tr>
{{end}}</table>{{end}}
{{end}}{{end}}

{{if .Breakdowns}}<h3>cycle attribution</h3>
{{range .Breakdowns}}<table>
<tr><th class="l" colspan="5">{{.Label}} ({{.Total}} attributed core-cycles)</th></tr>
<tr><th class="l">cause</th><th class="l">group</th><th>cycles</th><th>share</th><th class="l">meaning</th></tr>
{{range .Rows}}<tr><td class="l">{{.Cause}}</td><td class="l">{{.Group}}</td><td>{{.Cycles}}</td><td class="bar"><span style="{{bar .Percent}}"></span>{{f2 .Percent}}%</td><td class="help">{{.Help}}</td></tr>
{{end}}</table>
{{end}}{{end}}
{{end}}
</body>
</html>
`))
