package report

import "github.com/persistmem/slpmt/internal/profile"

// causeHelp is the one-line explanation each attribution cause gets in
// the HTML report's breakdown tables. slpmtvet's trace-coverage pass
// checks this map names every cause (mirroring the Counters ↔
// canonicalRows check): adding a cause to internal/profile without
// documenting it here is a vet failure, not a silent blank cell.
var causeHelp = map[profile.Cause]string{
	profile.CauseCompute:      "workload compute between memory operations",
	profile.CauseL1Hit:        "loads/stores served by the private L1",
	profile.CauseL1Miss:       "L1 probe cost on a miss, before the L2 lookup",
	profile.CauseL2Hit:        "fills served by the private L2",
	profile.CauseL2Miss:       "L2 probe cost on a miss, before the LLC lookup",
	profile.CauseLLCHit:       "fills served by the shared LLC",
	profile.CauseLLCMiss:      "LLC probe cost on a miss, before the PM read",
	profile.CausePMRead:       "line fills read from the PM device",
	profile.CauseCoherence:    "cross-core snoops, invalidations, and demand writebacks",
	profile.CauseLogAppend:    "building and spilling log records into the log buffer",
	profile.CauseLogPersist:   "draining full log lines to the PM log region",
	profile.CauseLogSync:      "ordering barriers waiting on log durability (pm_sync)",
	profile.CauseCommitMarker: "writing and persisting the commit marker",
	profile.CauseCommitData:   "flushing transaction data lines at commit",
	profile.CauseLazyDrain:    "deferred background persists of retained lines",
	profile.CauseWPQEnqueue:   "handing persists to the device write-pending queue",
	profile.CauseWPQStall:     "waiting for WPQ capacity (queue full back-pressure)",
	profile.CausePersistSync:  "synchronous persist completion outside any context above",
	profile.CauseLogEpoch:     "the amortized ordering barrier at a group-commit epoch close",
	profile.CauseWPQRemote:    "cross-socket interconnect hops of remote persists and fills",
	profile.CauseAllocArena:   "sharded per-core heap allocator (arena) management",
}

// CauseHelp returns the explanation for a cause name ("" if unknown).
func CauseHelp(name string) string {
	c, ok := profile.ByName(name)
	if !ok {
		return ""
	}
	return causeHelp[c]
}
