package report

import (
	"fmt"
	"sort"
	"strings"
)

// Tolerances for the perf-regression gate. The simulator is exactly
// deterministic, so in principle every metric should be byte-equal to
// the baseline — the slack exists so an intentional model change of a
// few percent (a tweaked latency constant, a cache-policy fix) can
// land with a baseline refresh in the same commit, while anything
// larger trips the gate and forces a look.
const (
	// TolCycles bounds relative drift in cycles and PM write traffic.
	TolCycles = 0.05
	// TolPercentile bounds drift in latency percentiles and WPQ
	// occupancy gauges — tail metrics move more than totals.
	TolPercentile = 0.10
	// TolCause bounds drift of one attribution cause's cycle share.
	TolCause = 0.10
	// CauseFloorCycles is an absolute floor under TolCause: a cause
	// smaller than this may drift freely (a 40-cycle cause doubling is
	// noise, not a regression).
	CauseFloorCycles = 512
)

// metricTol maps the comparable scalar metrics to their relative
// tolerance. wall_ms, parallel, allocs_per_op and bytes_per_op are
// host-dependent and deliberately absent. verify_ok is checked
// separately (it must not regress at all).
var metricTol = map[string]float64{
	"cycles":              TolCycles,
	"pm_write_bytes_data": TolCycles,
	"pm_write_bytes_log":  TolCycles,
	"pm_write_bytes":      TolCycles,
	"tx_commits":          0,
	"commit_latency_p50":  TolPercentile,
	"commit_latency_p95":  TolPercentile,
	"commit_latency_p99":  TolPercentile,
	"lazy_drain_p50":      TolPercentile,
	"lazy_drain_p95":      TolPercentile,
	"lazy_drain_p99":      TolPercentile,
	"wpq_occ_max_bytes":   TolPercentile,
	"wpq_occ_avg_bytes":   TolPercentile,
}

// metricOrder fixes the row order of the delta table.
var metricOrder = []string{
	"cycles", "pm_write_bytes_data", "pm_write_bytes_log", "pm_write_bytes",
	"tx_commits",
	"commit_latency_p50", "commit_latency_p95", "commit_latency_p99",
	"lazy_drain_p50", "lazy_drain_p95", "lazy_drain_p99",
	"wpq_occ_max_bytes", "wpq_occ_avg_bytes",
}

// Delta is one metric's baseline-vs-candidate comparison.
type Delta struct {
	Key       string  // result key (Result.Key)
	Metric    string  // metric name, "cycles_by_cause.<cause>" for causes
	Base      uint64  // baseline value
	Got       uint64  // candidate value
	Rel       float64 // relative drift |got-base| / base
	Tolerance float64 // allowed relative drift
	OK        bool
}

func (d Delta) String() string {
	return fmt.Sprintf("%s %s: %d -> %d (%+.2f%%, tol %.0f%%)",
		d.Key, d.Metric, d.Base, d.Got, 100*signedRel(d.Base, d.Got), 100*d.Tolerance)
}

// signedRel is the signed relative change from base to got.
func signedRel(base, got uint64) float64 {
	if base == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return (float64(got) - float64(base)) / float64(base)
}

// Comparison is the outcome of diffing one candidate document against
// its committed baseline.
type Comparison struct {
	Experiment string
	// Failures are deltas exceeding tolerance, missing results, removed
	// metrics, or verify regressions.
	Failures []string
	// Drifted are within-tolerance nonzero deltas (informational).
	Drifted []Delta
	// Notes are non-fatal observations: metrics or results present in
	// the candidate but absent from the baseline (new code producing
	// new data is not a regression).
	Notes []string
	// Checked counts compared (result, metric) pairs.
	Checked int
}

// Pass reports whether the candidate is within tolerance of the
// baseline.
func (c *Comparison) Pass() bool { return len(c.Failures) == 0 }

// String renders the human-readable delta table.
func (c *Comparison) String() string {
	var b strings.Builder
	status := "PASS"
	if !c.Pass() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s %s: %d metrics checked, %d drifted within tolerance, %d failures\n",
		status, c.Experiment, c.Checked, len(c.Drifted), len(c.Failures))
	for _, f := range c.Failures {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	for _, d := range c.Drifted {
		fmt.Fprintf(&b, "  drift %s\n", d.String())
	}
	for _, n := range c.Notes {
		fmt.Fprintf(&b, "  note %s\n", n)
	}
	return b.String()
}

// metrics flattens one result into its comparable scalar metrics.
// omitempty zeros are genuinely absent (an untraced run has no
// percentiles), so zero-valued metrics are omitted here too: a metric
// present in the baseline but zero in the candidate reads as removed.
func metrics(r Result) map[string]uint64 {
	out := make(map[string]uint64, len(metricOrder)+len(r.CyclesByCause))
	scalar := map[string]uint64{
		"cycles":              r.Cycles,
		"pm_write_bytes_data": r.PMWriteBytesData,
		"pm_write_bytes_log":  r.PMWriteBytesLog,
		"pm_write_bytes":      r.PMWriteBytes,
		"tx_commits":          r.TxCommits,
		"commit_latency_p50":  r.CommitLatencyP50,
		"commit_latency_p95":  r.CommitLatencyP95,
		"commit_latency_p99":  r.CommitLatencyP99,
		"lazy_drain_p50":      r.LazyDrainP50,
		"lazy_drain_p95":      r.LazyDrainP95,
		"lazy_drain_p99":      r.LazyDrainP99,
		"wpq_occ_max_bytes":   r.WPQOccMaxBytes,
		"wpq_occ_avg_bytes":   r.WPQOccAvgBytes,
	}
	for name, v := range scalar {
		if v != 0 {
			out[name] = v
		}
	}
	for cause, v := range r.CyclesByCause {
		if v != 0 {
			out["cycles_by_cause."+cause] = v
		}
	}
	return out
}

// tolerance resolves the relative tolerance and absolute floor for a
// metric name.
func tolerance(metric string) (rel float64, floor uint64) {
	if strings.HasPrefix(metric, "cycles_by_cause.") {
		return TolCause, CauseFloorCycles
	}
	return metricTol[metric], 0
}

// Compare diffs a candidate document against its baseline. Direction
// is symmetric: a metric 6% *better* than baseline also fails, because
// it means the committed baseline no longer describes the tree and
// must be refreshed.
func Compare(baseline, candidate Report) *Comparison {
	c := &Comparison{Experiment: candidate.Experiment}
	if baseline.Experiment != candidate.Experiment {
		c.Failures = append(c.Failures,
			fmt.Sprintf("experiment mismatch: baseline %q vs candidate %q", baseline.Experiment, candidate.Experiment))
		return c
	}

	got := make(map[string]Result, len(candidate.Results))
	for _, r := range candidate.Results {
		got[r.Key()] = r
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Key()] = r
	}

	keys := make([]string, 0, len(base))
	for k := range base { //slpmt:determinism-ok: collected keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		b := base[key]
		g, ok := got[key]
		if !ok {
			c.Failures = append(c.Failures, fmt.Sprintf("%s: result missing from candidate", key))
			continue
		}
		if b.VerifyOK && !g.VerifyOK {
			c.Failures = append(c.Failures, fmt.Sprintf("%s: verify_ok regressed", key))
		}
		compareResult(c, key, metrics(b), metrics(g))
	}

	extra := make([]string, 0)
	for k := range got { //slpmt:determinism-ok: collected keys are sorted below
		if _, ok := base[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		c.Notes = append(c.Notes, fmt.Sprintf("%s: result absent from baseline (refresh to cover it)", k))
	}
	return c
}

// compareResult diffs one result's metric maps in deterministic order.
func compareResult(c *Comparison, key string, base, got map[string]uint64) {
	names := make([]string, 0, len(base))
	for name := range base { //slpmt:determinism-ok: collected keys are sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bv := base[name]
		gv, ok := got[name]
		if !ok {
			c.Failures = append(c.Failures, fmt.Sprintf("%s: metric %s removed (baseline %d)", key, name, bv))
			continue
		}
		c.Checked++
		if bv == gv {
			continue
		}
		rel, floor := tolerance(name)
		d := Delta{Key: key, Metric: name, Base: bv, Got: gv, Tolerance: rel}
		diff := bv - gv
		if gv > bv {
			diff = gv - bv
		}
		d.Rel = float64(diff) / float64(bv)
		d.OK = d.Rel <= rel || diff <= floor
		if d.OK {
			c.Drifted = append(c.Drifted, d)
		} else {
			c.Failures = append(c.Failures, d.String())
		}
	}
	extras := make([]string, 0)
	for name := range got { //slpmt:determinism-ok: collected keys are sorted below
		if _, ok := base[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		c.Notes = append(c.Notes, fmt.Sprintf("%s: metric %s new in candidate (%d; refresh the baseline to gate it)", key, name, got[name]))
	}
}
