// Package trace is the simulator's cycle-level event tracer: a
// preallocated ring buffer of fixed-width binary records stamped with
// the emitting core and its simulated cycle. It is the observability
// layer under every profiling consumer — the Perfetto exporter
// (perfetto.go) and the interval-metrics reducer (metrics.go).
//
// Overhead contract. Tracing must never perturb the simulation: the
// tracer only observes (it reads clocks, never advances them), so a
// traced run produces bit-identical cycles and counters to an untraced
// one. The disabled path is a nil-receiver fast path — every
// instrumentation site calls Emit on a possibly-nil *Tracer, and the
// method returns after a single branch, with zero allocations (see
// bench_test.go for the enforcement). Golden outputs therefore stay
// byte-identical when no tracer is attached.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Kind identifies an event class.
type Kind uint8

// Event kinds. Arg semantics per kind are noted on the right.
const (
	KNone           Kind = iota
	KTxBegin             // arg = transaction sequence number
	KCommitStart         // arg = transaction sequence number
	KTxCommit            // arg = transaction sequence number
	KTxAbort             // arg = transaction sequence number
	KStore               // addr, arg = store size in bytes
	KStoreT              // addr, arg = store size in bytes
	KLogAppend           // addr = logged word/line, arg = payload bytes
	KLogPersist          // addr = logged word/line, arg = log-stream offset after the record
	KLogSync             // addr = log header base, arg = durable watermark offset
	KCommitMarker        // addr = log mode (0 undo, 1 redo), arg = transaction sequence number
	KLazyDefer           // addr = line left volatile at commit, arg = transaction sequence number
	KLazyDrainStart      // arg = retained transactions drained
	KLazyDrainEnd        // arg = retained transactions drained
	KCacheMiss           // addr = line, arg = serving level (2=L2, 3=L3, 4=PM, 5=peer cache)
	KCacheEvict          // addr = line, arg = level evicted from (2=L2->L3, 3=L3->PM)
	KCohSnoop            // addr = line, arg = 1 for a write request
	KCohInval            // addr = line (remote copy invalidated)
	KCohDowngrade        // addr = line (remote copy downgraded to Shared)
	KCohWriteback        // addr = line (dirty remote copy written back)
	KWPQEnqueue          // addr, arg = WPQ occupancy in bytes after enqueue
	KWPQDrain            // addr = drained line, arg = WPQ occupancy in bytes after the drain
	KWPQStall            // addr, arg = cycles stalled waiting for WPQ space
	KCharge              // addr = attribution cause (internal/profile Cause), arg = cycles charged
	KEpochClose          // addr = log mode (0 undo, 1 redo), arg = closed epoch number
	KWPQRemote           // addr = target of a cross-socket access, arg = interconnect hop cycles
	KSigHit              // addr = store line matching a retained signature, arg = retained tx drained by the hit
	numKinds
)

// kindNames are the display names used by the exporters.
var kindNames = [numKinds]string{
	KNone:           "none",
	KTxBegin:        "tx",
	KCommitStart:    "commit",
	KTxCommit:       "tx.commit",
	KTxAbort:        "tx.abort",
	KStore:          "store",
	KStoreT:         "storeT",
	KLogAppend:      "log.append",
	KLogPersist:     "log.persist",
	KLogSync:        "log.sync",
	KCommitMarker:   "commit.marker",
	KLazyDefer:      "lazy.defer",
	KLazyDrainStart: "lazy.drain",
	KLazyDrainEnd:   "lazy.drain.end",
	KCacheMiss:      "cache.miss",
	KCacheEvict:     "cache.evict",
	KCohSnoop:       "coh.snoop",
	KCohInval:       "coh.inval",
	KCohDowngrade:   "coh.downgrade",
	KCohWriteback:   "coh.writeback",
	KWPQEnqueue:     "wpq.enqueue",
	KWPQDrain:       "wpq.drain",
	KWPQStall:       "wpq.stall",
	KCharge:         "charge",
	KEpochClose:     "epoch.close",
	KWPQRemote:      "wpq.remote",
	KSigHit:         "sig.hit",
}

// Per-socket WPQ occupancy encoding. On a multi-socket topology each
// socket's device reports its own occupancy, so the KWPQEnqueue/KWPQDrain
// Arg carries the socket ID in the top byte and the occupancy in the low
// 56 bits. Socket 0 tags with zero, so single-socket traces are
// byte-identical to the historical encoding.
const wpqSocketShift = 56

// WPQArgTag returns the Arg tag a device on the given socket ORs into
// its occupancy values.
func WPQArgTag(socket int) uint64 { return uint64(socket) << wpqSocketShift }

// WPQSocket extracts the socket ID from a KWPQEnqueue/KWPQDrain Arg.
func WPQSocket(arg uint64) int { return int(arg >> wpqSocketShift) }

// WPQOcc extracts the occupancy bytes from a KWPQEnqueue/KWPQDrain Arg.
func WPQOcc(arg uint64) uint64 { return arg & (1<<wpqSocketShift - 1) }

// String returns the kind's display name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one fixed-width trace record.
type Event struct {
	Cycle uint64 // emitting core's simulated cycle
	Addr  uint64 // simulated PM address, when meaningful
	Arg   uint64 // kind-specific payload (see the Kind constants)
	Kind  Kind
	Core  uint8 // emitting core ID
}

// Mask builds a kind-filter bitmask accepting exactly the given kinds.
func Mask(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// AllKinds is the mask accepting every event kind.
const AllKinds = ^uint64(0)

// MetricsMask accepts only the kinds the interval-metrics reducer
// consumes: transaction lifecycle, lazy-drain spans, and WPQ activity.
// It keeps a metrics-only tracer small even on long runs by dropping
// the high-rate per-access events (stores, cache, coherence).
func MetricsMask() uint64 {
	return Mask(KTxBegin, KCommitStart, KTxCommit, KTxAbort,
		KLazyDrainStart, KLazyDrainEnd,
		KWPQEnqueue, KWPQDrain, KWPQStall)
}

// SanitizeMask accepts exactly the kinds the persist-order sanitizer
// (Sanitize) replays: the transaction lifecycle, the log/commit-marker
// durability events, lazy-persistency deferral and drains, stores, and
// the WPQ stream. It drops the cache/coherence events, which the
// sanitizer does not consume, so a sanitizer-only tracer overflows far
// later than a full-detail one.
func SanitizeMask() uint64 {
	return Mask(KTxBegin, KCommitStart, KTxCommit, KTxAbort,
		KStore, KStoreT,
		KLogAppend, KLogPersist, KLogSync, KCommitMarker, KEpochClose,
		KLazyDefer, KLazyDrainStart, KLazyDrainEnd,
		KWPQEnqueue, KWPQDrain, KWPQStall)
}

// Default ring capacities (events; one event is 32 bytes in memory).
const (
	// DefaultCapacity suits full-detail tracing of CLI-sized runs.
	DefaultCapacity = 1 << 20
	// MetricsCapacity suits the filtered metrics stream of one
	// benchmark run.
	MetricsCapacity = 1 << 17
)

// Sink receives the ring's spills, turning the one-shot tracer into a
// streaming source (see internal/trace/stream). Spill takes ownership
// of the filled buffer and returns a replacement buffer of the same
// capacity to keep recording into — the double-buffer handoff: while
// the sink processes (writes, reduces) one buffer, the tracer fills
// the other, and the exchange point is the only synchronization. Reset
// tells the sink the measured-region boundary moved: everything
// spilled so far belongs to setup and must be discarded.
type Sink interface {
	Spill(events []Event) []Event
	Reset()
}

// Tracer is a preallocated ring buffer of events. When the ring wraps,
// the oldest events are overwritten and counted as dropped — unless a
// Sink is attached, in which case a full buffer is handed to the sink
// and recording continues into the sink's replacement buffer with
// nothing dropped. A nil *Tracer is valid and means "tracing
// disabled": every method is safe to call and Emit returns after one
// branch. Not safe for concurrent use (the simulator is
// single-threaded per machine); a Sink may process spilled buffers on
// another goroutine because the handoff transfers ownership.
type Tracer struct {
	buf     []Event
	head    int // next slot to write
	full    bool
	dropped uint64
	mask    uint64
	sink    Sink
	spilled uint64
}

// New returns a tracer with the given ring capacity (<= 0 selects
// DefaultCapacity), accepting every kind.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{buf: make([]Event, capacity), mask: AllKinds}
}

// SetMask installs a kind filter (see Mask); events of masked-out kinds
// are rejected in Emit's fast path.
func (t *Tracer) SetMask(m uint64) { t.mask = m }

// SetSink attaches a spill sink: from now on a full ring is handed to
// the sink instead of wrapping, so no events are dropped and memory
// stays bounded by the ring itself. Pass nil to detach.
func (t *Tracer) SetSink(s Sink) { t.sink = s }

// Spilled returns how many events have been handed to the sink.
func (t *Tracer) Spilled() uint64 {
	if t == nil {
		return 0
	}
	return t.spilled
}

// Flush hands the buffered tail to the attached sink, leaving the ring
// empty. Harnesses call it once at the end of the measured region so
// the on-disk stream covers every event; a no-op without a sink.
func (t *Tracer) Flush() {
	if t == nil || t.sink == nil || t.head == 0 {
		return
	}
	t.spill(t.head)
}

// spill exchanges the first n buffered events for a fresh buffer. Not
// on the noalloc emit path: the defensive re-size below may allocate.
func (t *Tracer) spill(n int) {
	t.spilled += uint64(n)
	nb := t.sink.Spill(t.buf[:n])
	if cap(nb) < cap(t.buf) { // sink returned a short buffer; keep capacity stable
		nb = make([]Event, cap(t.buf))
	}
	t.buf = nb[:cap(t.buf)]
	t.head = 0
}

// Emit records one event. The nil-receiver/mask check is the entire
// disabled path; the record body lives in a separate method so this
// one stays small enough to inline at every instrumentation site.
//
//slpmt:noalloc
func (t *Tracer) Emit(core uint8, cycle uint64, kind Kind, addr, arg uint64) {
	if t == nil || t.mask&(1<<uint(kind)) == 0 {
		return
	}
	t.record(core, cycle, kind, addr, arg)
}

// record writes the event into the ring, overwriting the oldest entry
// when full — or, with a sink attached, spilling the full buffer and
// continuing into the replacement so nothing is ever dropped.
//
//slpmt:noalloc
func (t *Tracer) record(core uint8, cycle uint64, kind Kind, addr, arg uint64) {
	if t.head == len(t.buf) { // only reachable with a sink attached
		t.spill(t.head)
	}
	if t.full {
		t.dropped++
	}
	t.buf[t.head] = Event{Cycle: cycle, Addr: addr, Arg: arg, Kind: kind, Core: core}
	t.head++
	if t.head == len(t.buf) && t.sink == nil {
		t.head = 0
		t.full = true
	}
}

// Len returns the number of events currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.full {
		return len(t.buf)
	}
	return t.head
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the held events oldest-first (a copy).
func (t *Tracer) Events() []Event {
	if t == nil || t.Len() == 0 {
		return nil
	}
	out := make([]Event, 0, t.Len())
	if t.full {
		out = append(out, t.buf[t.head:]...)
	}
	return append(out, t.buf[:t.head]...)
}

// Reset discards every held event and the drop count, keeping the ring
// and the mask. Harnesses call it at the measured-region boundary. An
// attached sink is reset too: spills made before the boundary belong
// to setup and are discarded by the sink.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.head = 0
	t.full = false
	t.dropped = 0
	t.spilled = 0
	if t.sink != nil {
		t.sink.Reset()
	}
}

// Binary stream format: an 8-byte magic, a little-endian uint64 event
// count, then count fixed-width 26-byte records (cycle, addr, arg,
// kind, core).
const (
	binMagic   = "SLPTRC01"
	recordSize = 8 + 8 + 8 + 1 + 1
)

// RecordSize is the encoded width of one event record — shared by the
// one-shot SLPTRC01 stream and the chunked segment format
// (internal/trace/stream).
const RecordSize = recordSize

// PutRecord encodes e into rec, which must be at least RecordSize long.
func PutRecord(rec []byte, e Event) {
	binary.LittleEndian.PutUint64(rec[0:], e.Cycle)
	binary.LittleEndian.PutUint64(rec[8:], e.Addr)
	binary.LittleEndian.PutUint64(rec[16:], e.Arg)
	rec[24] = uint8(e.Kind)
	rec[25] = e.Core
}

// GetRecord decodes one event from rec (at least RecordSize bytes).
func GetRecord(rec []byte) Event {
	return Event{
		Cycle: binary.LittleEndian.Uint64(rec[0:]),
		Addr:  binary.LittleEndian.Uint64(rec[8:]),
		Arg:   binary.LittleEndian.Uint64(rec[16:]),
		Kind:  Kind(rec[24]),
		Core:  rec[25],
	}
}

// TruncatedError reports a binary stream that ends mid-record: the
// header promised Want records but the data runs out inside record
// Record (0-based), Offset bytes into the stream. The durable prefix —
// every complete record before the tear — was decoded before the error
// was returned by the callers that tolerate tears (the segment
// reader); ReadBinary rejects the whole stream.
type TruncatedError struct {
	Record int   // index of the record the stream tore inside
	Want   int   // records the header promised
	Offset int64 // byte offset of the torn record's start
	Err    error // underlying read error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: stream truncated at byte %d (record %d of %d): %v",
		e.Offset, e.Record, e.Want, e.Err)
}

func (e *TruncatedError) Unwrap() error { return e.Err }

// WriteBinary serializes the held events (oldest-first) to w.
func (t *Tracer) WriteBinary(w io.Writer) error {
	return WriteBinary(w, t.Events())
}

// WriteBinary serializes events to w in the tracer's binary format.
func WriteBinary(w io.Writer, events []Event) error {
	var hdr [16]byte
	copy(hdr[:8], binMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(events)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 64*recordSize)
	for i, e := range events {
		var rec [recordSize]byte
		PutRecord(rec[:], e)
		buf = append(buf, rec[:]...)
		if len(buf) == cap(buf) || i == len(events)-1 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return nil
}

// ReadBinary parses a binary trace stream produced by WriteBinary. It
// decodes through the chunked path — memory grows with the records
// actually present, never with the count the header claims — and a
// stream that ends mid-record is rejected with a position-carrying
// *TruncatedError rather than a generic short-read.
func ReadBinary(r io.Reader) ([]Event, error) {
	var events []Event
	count, err := DecodeRecords(r, func(e Event) { events = append(events, e) })
	if err != nil {
		return nil, err
	}
	if len(events) != count {
		// DecodeRecords already returns *TruncatedError for a torn
		// record; this covers a clean EOF between records.
		return nil, &TruncatedError{
			Record: len(events), Want: count,
			Offset: 16 + int64(len(events))*recordSize, Err: io.ErrUnexpectedEOF,
		}
	}
	return events, nil
}

// DecodeRecords parses a SLPTRC01 stream incrementally, calling fn for
// every complete record, in chunks of bounded size. It returns the
// record count the header promised. If the stream ends mid-record the
// complete prefix has already been delivered to fn and the error is a
// *TruncatedError carrying the tear position; a clean end between
// records before count is reached is NOT an error here (the caller
// compares count against what fn saw) — segment readers use that to
// recover a durable prefix.
func DecodeRecords(r io.Reader, fn func(Event)) (count int, err error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr[:8]) != binMagic {
		return 0, fmt.Errorf("trace: bad magic %q", hdr[:8])
	}
	c := binary.LittleEndian.Uint64(hdr[8:])
	const maxEvents = 1 << 40 // refuse absurd headers
	if c > maxEvents {
		return 0, fmt.Errorf("trace: unreasonable event count %d", c)
	}
	count = int(c)
	const chunkRecords = 1 << 12
	buf := make([]byte, chunkRecords*recordSize)
	for seen := 0; seen < count; {
		want := count - seen
		if want > chunkRecords {
			want = chunkRecords
		}
		n, rerr := io.ReadFull(r, buf[:want*recordSize])
		whole := n / recordSize
		for i := 0; i < whole; i++ {
			fn(GetRecord(buf[i*recordSize:]))
		}
		seen += whole
		if rerr != nil {
			if n%recordSize != 0 {
				return count, &TruncatedError{
					Record: seen, Want: count,
					Offset: 16 + int64(seen)*recordSize, Err: rerr,
				}
			}
			return count, nil // clean end between records: durable prefix delivered
		}
	}
	return count, nil
}
