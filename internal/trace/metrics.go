package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Summary reduces a trace's transaction-lifecycle events to latency
// percentiles. Latencies are in cycles. Commit latency is the full
// begin-to-commit-complete span (the transaction's durability
// latency); lazy-drain latency is the posted drain section's span. The
// struct is flat and comparable so harness Results carrying it stay
// comparable.
type Summary struct {
	Events  int
	Dropped uint64

	Commits                         int
	CommitP50, CommitP95, CommitP99 uint64

	LazyDrains                int
	LazyP50, LazyP95, LazyP99 uint64
}

// Summarize pairs begin/commit and lazy-drain start/end events per
// core and returns the latency percentiles. dropped is the tracer's
// ring-overflow count, carried through for reporting.
func Summarize(events []Event, dropped uint64) Summary {
	s := Summary{Events: len(events), Dropped: dropped}
	txStart := map[uint8]uint64{}
	lazyStart := map[uint8]uint64{}
	var commits, lazies []uint64
	for _, e := range events {
		switch e.Kind {
		case KTxBegin:
			txStart[e.Core] = e.Cycle
		case KTxCommit:
			if c, ok := txStart[e.Core]; ok {
				commits = append(commits, e.Cycle-c)
				delete(txStart, e.Core)
			}
		case KTxAbort:
			delete(txStart, e.Core)
		case KLazyDrainStart:
			lazyStart[e.Core] = e.Cycle
		case KLazyDrainEnd:
			if c, ok := lazyStart[e.Core]; ok {
				lazies = append(lazies, e.Cycle-c)
				delete(lazyStart, e.Core)
			}
		}
	}
	s.Commits = len(commits)
	s.CommitP50, s.CommitP95, s.CommitP99 = Percentiles(commits)
	s.LazyDrains = len(lazies)
	s.LazyP50, s.LazyP95, s.LazyP99 = Percentiles(lazies)
	return s
}

// Percentiles returns the p50/p95/p99 of xs by nearest-rank on the
// sorted sample (0s for an empty sample). xs is sorted in place. The
// streaming summarizer (internal/trace/stream) shares it so streamed
// and in-memory summaries are identical by construction.
func Percentiles(xs []uint64) (p50, p95, p99 uint64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	at := func(q int) uint64 { return xs[(q*len(xs)+99)/100-1] }
	return at(50), at(95), at(99)
}

// String renders the summary as one report line per histogram.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commit latency (cycles): p50=%d p95=%d p99=%d over %d commits\n",
		s.CommitP50, s.CommitP95, s.CommitP99, s.Commits)
	if s.LazyDrains > 0 {
		fmt.Fprintf(&b, "lazy-drain latency (cycles): p50=%d p95=%d p99=%d over %d drains\n",
			s.LazyP50, s.LazyP95, s.LazyP99, s.LazyDrains)
	}
	if s.Dropped > 0 {
		fmt.Fprintf(&b, "(ring overflow: %d events dropped; histograms cover the tail)\n",
			s.Dropped)
	}
	return b.String()
}

// WPQBucket is one time bucket of the WPQ-occupancy/stall series.
type WPQBucket struct {
	StartCycle, EndCycle uint64
	// OccMax and OccAvg are the maximum and mean occupancy (bytes)
	// over the bucket's enqueue/drain samples.
	OccMax, OccAvg uint64
	// StallCycles sums the WPQ-full stalls charged inside the bucket.
	StallCycles uint64
	Enqueues    uint64
	Drains      uint64
}

// WPQSeries is the time-bucketed WPQ activity of one run.
type WPQSeries struct {
	Buckets []WPQBucket
}

// BucketWPQ folds the WPQ events into n equal time buckets spanning
// the trace's WPQ activity. Returns nil if the trace holds no WPQ
// events.
func BucketWPQ(events []Event, n int) *WPQSeries {
	if n <= 0 {
		n = 16
	}
	lo, hi := uint64(0), uint64(0)
	seen := false
	for _, e := range events {
		switch e.Kind {
		case KWPQEnqueue, KWPQDrain, KWPQStall:
			if !seen || e.Cycle < lo {
				lo = e.Cycle
			}
			if e.Cycle > hi {
				hi = e.Cycle
			}
			seen = true
		}
	}
	if !seen {
		return nil
	}
	width := (hi - lo + uint64(n)) / uint64(n) // ceil so hi lands in the last bucket
	if width == 0 {
		width = 1
	}
	buckets := make([]WPQBucket, n)
	sums := make([]uint64, n)
	samples := make([]uint64, n)
	for i := range buckets {
		buckets[i].StartCycle = lo + uint64(i)*width
		buckets[i].EndCycle = lo + uint64(i+1)*width
	}
	for _, e := range events {
		var i int
		switch e.Kind {
		case KWPQEnqueue, KWPQDrain, KWPQStall:
			i = int((e.Cycle - lo) / width)
			if i >= n {
				i = n - 1
			}
		default:
			continue
		}
		b := &buckets[i]
		switch e.Kind {
		case KWPQEnqueue:
			b.Enqueues++
		case KWPQDrain:
			b.Drains++
		case KWPQStall:
			b.StallCycles += e.Arg
			continue
		}
		// On a multi-socket topology the series merges the per-socket
		// streams: occ is any one queue's post-event occupancy (the
		// socket tag in the high Arg byte is stripped).
		occ := WPQOcc(e.Arg)
		if occ > b.OccMax {
			b.OccMax = occ
		}
		sums[i] += occ
		samples[i]++
	}
	for i := range buckets {
		if samples[i] > 0 {
			buckets[i].OccAvg = sums[i] / samples[i]
		}
	}
	return &WPQSeries{Buckets: buckets}
}

// String renders the series as an aligned text table.
func (s *WPQSeries) String() string {
	if s == nil || len(s.Buckets) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s  %9s  %9s  %12s  %8s  %8s\n",
		"cycles", "occ.max", "occ.avg", "stall.cycles", "enqueues", "drains")
	for _, bk := range s.Buckets {
		fmt.Fprintf(&b, "%-22s  %9d  %9d  %12d  %8d  %8d\n",
			fmt.Sprintf("[%d,%d)", bk.StartCycle, bk.EndCycle),
			bk.OccMax, bk.OccAvg, bk.StallCycles, bk.Enqueues, bk.Drains)
	}
	return b.String()
}
