package trace

import "fmt"

// Sanitize replays an SLPTRC01 event stream and checks the paper's §III
// persist-ordering contracts against what the simulator actually did.
// It is the dynamic counterpart to the static slpmtvet passes: the
// analyzers prove properties of the code, the sanitizer proves
// properties of one execution.
//
// Rules checked, per transaction and per core:
//
//  1. log-before-data: a data line with log records may persist (enter
//     the WPQ) only after a log sync whose durable watermark covers
//     every record for that line (Figure 4, both modes: the log entry
//     is durable before the in-place update).
//  2. marker-order: the commit marker is written only after the log
//     sync covering the whole record stream. In undo mode no write-set
//     line may persist after the marker (logs -> data -> marker); in
//     redo mode no logged line may persist before it (data persists
//     follow the marker).
//  3. wpq-fifo: WPQ entries retire in finish-time order (drain cycles
//     are non-decreasing within a drain batch) and every drain matches
//     an outstanding enqueue of the same core, byte for byte.
//  4. lazy-conflict: a store that hits a line left volatile by a
//     retained transaction (§III-C3) must force that transaction's lazy
//     drain to complete before the storing core proceeds.
//  5. epoch-close: under group commit (commit window W > 1) a
//     transaction commits without its own marker; its logged lines
//     join the open epoch. Every such line may persist only once a log
//     sync covers its records (the epoch analog of rule 1), and at the
//     KEpochClose marker every record of the epoch must sit below the
//     durable watermark — the all-or-nothing boundary recovery relies
//     on. A commit that wrote its own marker (W = 1) contributes no
//     epoch state, so per-transaction streams replay exactly as before.
//
// The replay works on emission order, which the single-threaded
// simulator makes deterministic. Violations detected inside a
// transaction that subsequently aborts are discarded: the abort path
// legitimately rewrites logged data outside the commit ordering.
//
// The checker is resilient to a stream that starts mid-run (the bench
// harness resets the ring at the measured-region boundary): WPQ
// residue from before the cut is skipped until the occupancy replay
// locks on, and lazy obligations deferred before the cut are simply
// not checked. If the ring overflowed (dropped events), Report.
// Truncated is set and the replay is best-effort.

// sanLineSize mirrors mem.LineSize without importing the package (trace
// is a leaf dependency of the whole simulator).
const sanLineSize = 64

// MaxViolations bounds Report.Violations; Total keeps the full count.
const MaxViolations = 100

// Violation is one persist-ordering breach found by Sanitize.
type Violation struct {
	Index  int    // event index in the replayed stream
	Cycle  uint64 // emitting core's cycle at the event
	Core   uint8  // core the violation is attributed to
	Seq    uint64 // transaction sequence when tx-scoped, epoch number for epoch-close, else 0
	Rule   string // "log-before-data", "marker-order", "wpq-fifo", "lazy-conflict", "epoch-close"
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("event %d cycle %d core %d seq %d [%s]: %s",
		v.Index, v.Cycle, v.Core, v.Seq, v.Rule, v.Detail)
}

// Report is the result of one sanitizer replay.
type Report struct {
	Events       int
	Transactions int  // committed transactions replayed
	Aborts       int  // aborted transactions replayed (violations discarded)
	Truncated    bool // ring overflow dropped events; replay is best-effort
	Total        int  // violations found (Violations holds at most MaxViolations)
	Violations   []Violation
}

// Clean reports whether the replay found no violations.
func (r *Report) Clean() bool { return r.Total == 0 }

// sanRetained is one committed transaction whose lazy lines are still
// volatile — an obligation the next conflicting store must see cleared.
type sanRetained struct {
	seq   uint64
	lines []uint64
}

// sanCore is the per-core replay state.
type sanCore struct {
	inTx       bool
	seq        uint64
	commitSeen bool
	lastMode   int // 0 undo, 1 redo, -1 unknown (before the first marker)
	watermark  uint64
	logged     map[uint64]struct{} // lines with log records this tx
	logOff     map[uint64]uint64   // line -> highest record-end stream offset
	storeLines map[uint64]struct{} // lines stored this tx
	txViol     []Violation         // buffered until commit (dropped on abort)

	// Epoch state (rule 5). Populated only by commits that wrote no
	// marker of their own — grouped commits — so it stays empty on
	// per-transaction (W = 1) streams.
	epochLogged map[uint64]struct{} // lines logged by committed-in-window txs
	epochLogOff map[uint64]uint64   // line -> highest record-end offset, epoch scope
	epochWM     uint64              // latest synced watermark (not reset at tx begin)

	defers   []uint64      // lazy lines deferred by the committing tx
	retained []sanRetained // committed txs with volatile lazy data (FIFO)

	pendingLazy []uint64 // lines whose obligations must clear before the next program event
	// Per-socket WPQ replay state (socket 0 is the only key on
	// single-socket streams): outstanding enqueues in FIFO order,
	// and whether the replay has locked on past pre-cut residue.
	wpqFifo   map[int][]wpqEntry
	wpqSynced map[int]bool
}

// wpqEntry is one outstanding enqueue in the occupancy replay: the
// occupancy delta it raised and the persisted cache line. A drain that
// carries a line address (KWPQDrain Addr) must retire an entry of the
// same size and line; a zero drain address (streams predating the
// address stamping) falls back to size-only matching.
type wpqEntry struct {
	bytes uint64
	line  uint64
}

func newSanCore() *sanCore {
	return &sanCore{
		lastMode:    -1,
		logged:      map[uint64]struct{}{},
		logOff:      map[uint64]uint64{},
		storeLines:  map[uint64]struct{}{},
		epochLogged: map[uint64]struct{}{},
		epochLogOff: map[uint64]uint64{},
		wpqFifo:     map[int][]wpqEntry{},
		wpqSynced:   map[int]bool{},
	}
}

// maxRetainedTx bounds each core's retained-transaction list in the
// incremental replay: a stream whose lazy drains never appear (a
// crash-truncated binlog, a mid-run cut) would otherwise grow the
// obligation state without bound. When the cap is hit the oldest
// retained transaction's obligations are released unchecked — the
// replay stays sound for everything it still tracks, and the bound
// keeps a streaming sanitizer O(active state), not O(events). The cap
// is far above what any committed workload retains between drains, so
// bounded and unbounded replays agree on every golden.
const maxRetainedTx = 4096

// sanitizer is the whole-stream replay state.
type sanitizer struct {
	rep   Report
	cores map[uint8]*sanCore
	// obligations counts, per line, the retained transactions (across
	// all cores) whose lazy copy of the line is still volatile.
	obligations map[uint64]int
	// occ is the replayed per-socket WPQ occupancy (bytes); a socket is
	// absent before its replay locks on. Each socket's device has its
	// own queue, so the occupancy series replays independently.
	occ           map[int]int64
	prevDrain     bool // previous event was a KWPQDrain (batch tracking)
	prevDrainAt   uint64
	prevDrainSock int
}

// Sanitizer is the incremental persist-order checker: the same state
// machine Sanitize runs over a slice, exposed event-at-a-time so a
// spilled-to-disk stream can be replayed with memory bounded by the
// active transaction/WPQ state instead of the event count. Feed events
// oldest-first with Step, then call Report once.
type Sanitizer struct {
	s sanitizer
	n int
}

// NewSanitizer returns an empty incremental replay.
func NewSanitizer() *Sanitizer {
	return &Sanitizer{s: sanitizer{
		cores:       map[uint8]*sanCore{},
		obligations: map[uint64]int{},
		occ:         map[int]int64{},
	}}
}

// Step replays one event.
func (z *Sanitizer) Step(e Event) {
	z.s.step(z.n, e)
	z.n++
}

// Report finalizes the replay. dropped is the producing tracer's
// ring-overflow count (a lossy stream makes the verdict best-effort
// and sets Truncated).
func (z *Sanitizer) Report(dropped uint64) *Report {
	z.s.rep.Events = z.n
	z.s.rep.Truncated = dropped > 0
	return &z.s.rep
}

// Sanitize replays events (oldest first, as Tracer.Events returns them)
// and reports every persist-ordering violation. dropped is the tracer's
// ring-overflow count; pass Tracer.Dropped().
func Sanitize(events []Event, dropped uint64) *Report {
	z := NewSanitizer()
	for _, e := range events {
		z.Step(e)
	}
	return z.Report(dropped)
}

func (s *sanitizer) core(id uint8) *sanCore {
	cs, ok := s.cores[id]
	if !ok {
		cs = newSanCore()
		s.cores[id] = cs
	}
	return cs
}

// violate records a non-transaction-scoped violation.
func (s *sanitizer) violate(i int, e Event, core uint8, seq uint64, rule, detail string) {
	s.rep.Total++
	if len(s.rep.Violations) < MaxViolations {
		s.rep.Violations = append(s.rep.Violations, Violation{
			Index: i, Cycle: e.Cycle, Core: core, Seq: seq, Rule: rule, Detail: detail,
		})
	}
}

// violateTx buffers a violation against cs's current transaction: it
// reaches the report at commit and is dropped on abort.
func (s *sanitizer) violateTx(i int, e Event, core uint8, cs *sanCore, rule, detail string) {
	if !cs.inTx {
		s.violate(i, e, core, 0, rule, detail)
		return
	}
	cs.txViol = append(cs.txViol, Violation{
		Index: i, Cycle: e.Cycle, Core: core, Seq: cs.seq, Rule: rule, Detail: detail,
	})
}

// eachLine calls fn for every cache line the [addr, addr+n) range touches.
func eachLine(addr, n uint64, fn func(line uint64)) {
	if n == 0 {
		n = 1
	}
	for l := addr &^ (sanLineSize - 1); l <= (addr+n-1)&^(sanLineSize-1); l += sanLineSize {
		fn(l)
	}
}

// programLevel reports whether the kind marks the emitting core's
// program making progress (as opposed to the persist machinery working
// on its behalf). Lazy-conflict postconditions are checked at these
// points: the forced drain runs synchronously inside the conflicting
// store, so by the core's next program event the obligation must be gone.
func programLevel(k Kind) bool {
	switch k {
	case KTxBegin, KCommitStart, KTxCommit, KTxAbort, KStore, KStoreT, KLogAppend:
		return true
	}
	return false
}

func (s *sanitizer) step(i int, e Event) {
	cs := s.core(e.Core)

	// Rule 4 postcondition: obligations recorded at this core's previous
	// conflicting store must have been drained by now.
	if len(cs.pendingLazy) > 0 && programLevel(e.Kind) {
		for _, line := range cs.pendingLazy {
			if s.obligations[line] > 0 {
				s.violate(i, e, e.Core, cs.seq, "lazy-conflict",
					fmt.Sprintf("store to line %#x proceeded while a retained transaction's lazy copy is still volatile", line))
			}
		}
		cs.pendingLazy = cs.pendingLazy[:0]
	}

	// Rule 3 batch monotonicity: within one consecutive run of drains,
	// retirement cycles never go backwards (the WPQ pops its queue in
	// finish-time order).
	if e.Kind == KWPQDrain {
		sock := WPQSocket(e.Arg)
		if s.prevDrain && sock == s.prevDrainSock && e.Cycle < s.prevDrainAt {
			s.violate(i, e, e.Core, 0, "wpq-fifo",
				fmt.Sprintf("drain at cycle %d after drain at cycle %d in the same batch", e.Cycle, s.prevDrainAt))
		}
		s.prevDrain, s.prevDrainAt, s.prevDrainSock = true, e.Cycle, sock
	} else {
		s.prevDrain = false
	}

	switch e.Kind {
	case KTxBegin:
		cs.inTx = true
		cs.seq = e.Arg
		cs.commitSeen = false
		cs.watermark = 0
		clear(cs.logged)
		clear(cs.logOff)
		clear(cs.storeLines)
		cs.txViol = cs.txViol[:0]
		cs.defers = cs.defers[:0]

	case KTxCommit:
		s.rep.Transactions++
		if cs.inTx && !cs.commitSeen {
			// No marker of its own: a grouped commit. The transaction's
			// logged lines become the open epoch's obligation (rule 5);
			// they are checked at every subsequent persist and at the
			// epoch-close marker. W = 1 commits always carry a marker,
			// so this branch never runs on per-transaction streams.
			for line := range cs.logged { //slpmt:determinism-ok: set merge is order-independent
				cs.epochLogged[line] = struct{}{}
			}
			for line, off := range cs.logOff { //slpmt:determinism-ok: max-merge is order-independent
				if off > cs.epochLogOff[line] {
					cs.epochLogOff[line] = off
				}
			}
		}
		for _, v := range cs.txViol {
			s.rep.Total++
			if len(s.rep.Violations) < MaxViolations {
				s.rep.Violations = append(s.rep.Violations, v)
			}
		}
		cs.txViol = cs.txViol[:0]
		if len(cs.defers) > 0 {
			lines := make([]uint64, len(cs.defers))
			copy(lines, cs.defers)
			for _, l := range lines {
				s.obligations[l]++
			}
			cs.retained = append(cs.retained, sanRetained{seq: cs.seq, lines: lines})
			if len(cs.retained) > maxRetainedTx {
				// Bounded retired-tx state: release the oldest
				// obligations unchecked (see maxRetainedTx).
				for _, l := range cs.retained[0].lines {
					if s.obligations[l] > 0 {
						s.obligations[l]--
					}
				}
				cs.retained = append(cs.retained[:0], cs.retained[1:]...)
			}
			cs.defers = cs.defers[:0]
		}
		cs.inTx = false

	case KTxAbort:
		s.rep.Aborts++
		cs.txViol = cs.txViol[:0]
		cs.defers = cs.defers[:0]
		cs.inTx = false

	case KStore, KStoreT:
		eachLine(e.Addr, e.Arg, func(line uint64) {
			if cs.inTx {
				cs.storeLines[line] = struct{}{}
			}
			if s.obligations[line] > 0 {
				cs.pendingLazy = append(cs.pendingLazy, line)
			}
		})

	case KLogAppend:
		if cs.inTx {
			cs.logged[e.Addr&^(sanLineSize-1)] = struct{}{}
		}

	case KLogPersist:
		line := e.Addr &^ (sanLineSize - 1)
		if cs.inTx && e.Arg > cs.logOff[line] {
			cs.logOff[line] = e.Arg
		}
		// Epoch scope tracks every record write, in or out of a
		// transaction: spilled records of an already-committed window
		// transaction reach the device during the next Begin, and the
		// epoch-close drain runs after KTxCommit. Only consulted for
		// lines in epochLogged, so W = 1 replay is unaffected.
		if e.Arg > cs.epochLogOff[line] {
			cs.epochLogOff[line] = e.Arg
		}

	case KLogSync:
		if e.Arg > cs.watermark {
			cs.watermark = e.Arg
		}
		// Latest-wins, not max: the stream offset space restarts when
		// the log region is reset between epochs, so the most recent
		// sync is the durable frontier of the current generation.
		cs.epochWM = e.Arg

	case KCommitMarker:
		cs.lastMode = int(e.Addr)
		if cs.inTx {
			for line, off := range cs.logOff { //slpmt:determinism-ok: violation set is order-independent (replay tool)
				if off > cs.watermark {
					s.violateTx(i, e, e.Core, cs,
						"marker-order",
						fmt.Sprintf("commit marker written with log records for line %#x beyond the durable watermark (%d > %d)", line, off, cs.watermark))
				}
			}
			cs.commitSeen = true
		}

	case KEpochClose:
		// The epoch's all-or-nothing boundary: every record a grouped
		// commit contributed must be durable (below the latest synced
		// watermark) when the close marker lands — otherwise recovery
		// could tear the epoch it believes committed.
		for line := range cs.epochLogged { //slpmt:determinism-ok: violation set is order-independent (replay tool)
			if off := cs.epochLogOff[line]; off > cs.epochWM {
				s.violate(i, e, e.Core, e.Arg, "epoch-close",
					fmt.Sprintf("epoch %d closed with log records for line %#x beyond the durable watermark (%d > %d)", e.Arg, line, off, cs.epochWM))
			}
		}
		clear(cs.epochLogged)
		clear(cs.epochLogOff)

	case KLazyDefer:
		if cs.inTx {
			cs.defers = append(cs.defers, e.Addr)
		}

	case KLazyDrainEnd:
		n := int(e.Arg)
		if n < 0 || n > len(cs.retained) {
			n = len(cs.retained) // stream cut mid-run (or corrupt arg): obligations before the cut are unknown
		}
		for _, r := range cs.retained[:n] {
			for _, l := range r.lines {
				if s.obligations[l] > 0 {
					s.obligations[l]--
				}
			}
		}
		cs.retained = append(cs.retained[:0], cs.retained[n:]...)

	case KWPQEnqueue:
		s.replayEnqueue(i, e, cs)
	case KWPQDrain:
		s.replayDrain(i, e)
	}
}

// replayEnqueue applies one WPQ enqueue to the occupancy replay and
// runs the persist-side ordering rules (1 and 2) for the entering line.
func (s *sanitizer) replayEnqueue(i int, e Event, cs *sanCore) {
	line := e.Addr &^ (sanLineSize - 1)

	// Rule 1: a logged data line may enter the WPQ only once the owning
	// transaction's log records for it sit below the durable watermark.
	// The line may be logged by any core's transaction (shared lines
	// reach the device through whichever core evicts them).
	for _, oc := range s.cores { //slpmt:determinism-ok: violation buffers are per-core; order does not affect the report
		if oc.inTx {
			if _, ok := oc.logged[line]; ok {
				if off := oc.logOff[line]; off > oc.watermark {
					s.violateTx(i, e, e.Core, oc, "log-before-data",
						fmt.Sprintf("line %#x persisted with log records beyond the durable watermark (%d > %d)", line, off, oc.watermark))
				}
			}
		}
		// Rule 5 half of rule 1: a line logged by a committed-in-window
		// transaction (epoch still open, no marker yet) must likewise
		// have its records synced before the data reaches the WPQ.
		if _, ok := oc.epochLogged[line]; ok {
			if off := oc.epochLogOff[line]; off > oc.epochWM {
				s.violate(i, e, e.Core, 0, "epoch-close",
					fmt.Sprintf("line %#x persisted with open-epoch log records beyond the durable watermark (%d > %d)", line, off, oc.epochWM))
			}
		}
	}

	// Rule 2, mode-specific halves, for the enqueuing core's own
	// transaction (the commit engine runs on the owning core).
	if cs.inTx {
		if cs.commitSeen && cs.lastMode == 0 {
			if _, ok := cs.storeLines[line]; ok {
				s.violateTx(i, e, e.Core, cs, "marker-order",
					fmt.Sprintf("undo commit: write-set line %#x persisted after the commit marker", line))
			}
		}
		if !cs.commitSeen && cs.lastMode == 1 {
			if _, ok := cs.logged[line]; ok {
				s.violateTx(i, e, e.Core, cs, "marker-order",
					fmt.Sprintf("redo commit: logged line %#x persisted before the commit marker", line))
			}
		}
	}

	// Rule 3 occupancy replay, per socket. The first observed event of a
	// socket sets its baseline (the stream may start with entries
	// already queued).
	sock := WPQSocket(e.Arg)
	occ := int64(WPQOcc(e.Arg))
	prev, seen := s.occ[sock]
	s.occ[sock] = occ
	if !seen {
		return
	}
	delta := occ - prev
	if delta <= 0 {
		s.violate(i, e, e.Core, 0, "wpq-fifo",
			fmt.Sprintf("enqueue did not raise WPQ occupancy (%d -> %d)", prev, occ))
		return
	}
	cs.wpqFifo[sock] = append(cs.wpqFifo[sock], wpqEntry{bytes: uint64(delta), line: line})
}

// replayDrain applies one WPQ drain to the occupancy replay and matches
// it against the draining core's outstanding enqueues.
func (s *sanitizer) replayDrain(i int, e Event) {
	cs := s.core(e.Core)
	sock := WPQSocket(e.Arg)
	occ := int64(WPQOcc(e.Arg))
	prev, seen := s.occ[sock]
	s.occ[sock] = occ
	if !seen {
		return
	}
	delta := prev - occ
	if delta <= 0 {
		s.violate(i, e, e.Core, 0, "wpq-fifo",
			fmt.Sprintf("drain did not lower WPQ occupancy (%d -> %d)", prev, occ))
		return
	}
	fifo := cs.wpqFifo[sock]
	if len(fifo) == 0 {
		return // residue enqueued before the stream cut
	}
	// Match in FIFO order; the device's bank model can legitimately
	// retire same-core entries slightly out of enqueue order, so fall
	// back to the first match before declaring a violation. An
	// address-stamped drain must retire an entry of the same size AND
	// line; unstamped drains (Addr 0) match on size alone.
	dline := e.Addr &^ (sanLineSize - 1)
	match := func(en wpqEntry) bool {
		return en.bytes == uint64(delta) && (e.Addr == 0 || en.line == dline)
	}
	for j := 0; j < len(fifo); j++ {
		if match(fifo[j]) {
			cs.wpqFifo[sock] = append(fifo[:j], fifo[j+1:]...)
			cs.wpqSynced[sock] = true
			return
		}
	}
	if !cs.wpqSynced[sock] {
		return // still skipping pre-cut residue for this core
	}
	s.violate(i, e, e.Core, 0, "wpq-fifo",
		fmt.Sprintf("drained %d bytes with no matching outstanding enqueue on core %d", delta, e.Core))
}
