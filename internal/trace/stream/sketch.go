package stream

import "math/bits"

// QSketch is a bounded-memory quantile sketch over uint64 samples:
// HDR-style log-linear buckets with qsketchSubBits bits of sub-bucket
// resolution. Values below 2^qsketchSubBits are counted exactly; above,
// a value lands in the bucket keyed by its exponent and the top
// qsketchSubBits mantissa bits, so a bucket spanning [lo, lo+w) has
// width w <= lo >> qsketchSubBits. Quantile answers the bucket's upper
// bound, which bounds the relative error: for any quantile q,
//
//	exact <= Quantile(q) <= exact * (1 + 2^-qsketchSubBits)
//
// i.e. at most ~3.1% above the exact nearest-rank value, with ~16 KiB
// of state regardless of sample count. The streaming Summarizer uses
// exact nearest-rank until its sample bound and only then degrades to
// this sketch, so committed-golden-sized runs stay bit-exact.
type QSketch struct {
	counts [64 << qsketchSubBits]uint64
	n      uint64
	max    uint64
}

const qsketchSubBits = 5

// Add counts one sample.
func (q *QSketch) Add(v uint64) {
	q.n++
	if v > q.max {
		q.max = v
	}
	q.counts[qsketchBucket(v)]++
}

// N returns the number of samples added.
func (q *QSketch) N() uint64 { return q.n }

// Max returns the largest sample added.
func (q *QSketch) Max() uint64 { return q.max }

// Reset clears the sketch.
func (q *QSketch) Reset() { *q = QSketch{} }

// qsketchBucket maps a value to its bucket index.
func qsketchBucket(v uint64) int {
	if v < 1<<qsketchSubBits {
		return int(v) // exact region: exponent < qsketchSubBits
	}
	e := bits.Len64(v) - 1 // >= qsketchSubBits
	sub := (v >> uint(e-qsketchSubBits)) & (1<<qsketchSubBits - 1)
	return e<<qsketchSubBits | int(sub)
}

// qsketchUpper returns the largest value mapping to bucket b.
func qsketchUpper(b int) uint64 {
	if b < 1<<qsketchSubBits {
		return uint64(b)
	}
	e := uint(b >> qsketchSubBits)
	sub := uint64(b & (1<<qsketchSubBits - 1))
	lo := uint64(1)<<e | sub<<(e-qsketchSubBits)
	return lo + (uint64(1) << (e - qsketchSubBits)) - 1
}

// Quantile returns the value at percentile p (0 < p <= 100) by
// nearest-rank over the buckets — the same rank convention as
// trace.Percentiles — answering each bucket's upper bound (clamped to
// the observed maximum). Returns 0 on an empty sketch.
func (q *QSketch) Quantile(p int) uint64 {
	if q.n == 0 {
		return 0
	}
	rank := (uint64(p)*q.n + 99) / 100 // nearest-rank, 1-based
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for b, c := range q.counts {
		seen += c
		if seen >= rank {
			if u := qsketchUpper(b); u < q.max {
				return u
			}
			return q.max
		}
	}
	return q.max
}
