package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"github.com/persistmem/slpmt/internal/trace"
)

// Writer is the tracer's streaming sink: it implements trace.Sink, so
// attaching it with Tracer.SetSink turns ring-full from "drop oldest"
// into "hand the full buffer over and keep recording". Buffers cross to
// a single writer goroutine through a two-deep channel pair — the
// double-buffer: while the goroutine encodes one buffer into the
// current segment (and feeds any live consumers), the simulator fills
// the other, and exactly two buffers ever exist. Segments are written
// and fsync'd whole at rotation, so trace-side memory is
// O(segment buffer), never O(events).
//
// The zero Writer is not usable; construct with NewWriter. Spill and
// Reset are called by the tracer on the simulator thread; Close must be
// called once, after the final Tracer.Flush, and joins the goroutine.
// Attached consumers run on the writer goroutine and must not be read
// until Close (or a Tracer.Reset, which acts as a barrier) returns.
type Writer struct {
	dir       string
	segEvents int
	cons      []maskedConsumer

	work     chan []trace.Event // filled buffers (and nil = reset marker)
	free     chan []trace.Event // processed buffers returning to the tracer
	done     chan struct{}
	resetAck chan struct{}

	bufs    int // buffers in circulation (simulator thread only)
	dropped atomic.Uint64

	// Writer-goroutine state.
	seg    []trace.Event // current segment accumulation
	segIdx int
	events uint64
	err    error

	closed bool
}

type maskedConsumer struct {
	c    Consumer
	mask uint64
}

// Optional consumer hooks: a consumer implementing resetter is cleared
// at the measured-region boundary (Tracer.Reset); one implementing
// flusher is finalized at Close, before the sentinel is written.
type resetter interface{ Reset() }
type flusher interface{ Flush() }

// NewWriter creates the stream directory (clearing any previous
// stream's segments and sentinel), attaches the given live consumers,
// and starts the writer goroutine. segEvents <= 0 selects
// DefaultSegmentEvents.
func NewWriter(dir string, segEvents int, consumers ...Consumer) (*Writer, error) {
	if segEvents <= 0 {
		segEvents = DefaultSegmentEvents
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := clearStream(dir); err != nil {
		return nil, err
	}
	w := &Writer{
		dir:       dir,
		segEvents: segEvents,
		work:      make(chan []trace.Event, 1),
		free:      make(chan []trace.Event, 1),
		done:      make(chan struct{}),
		resetAck:  make(chan struct{}),
		bufs:      1, // the tracer's own ring is buffer #1
		seg:       make([]trace.Event, 0, segEvents),
	}
	for _, c := range consumers {
		w.cons = append(w.cons, maskedConsumer{c: c, mask: c.Kinds()})
	}
	go w.run()
	return w, nil
}

// clearStream removes a previous run's segments and sentinel from dir.
func clearStream(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if isSegName(name) || name == ClosedSentinel {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

func isSegName(name string) bool {
	return len(name) == len("seg-00000000.slptrc") &&
		name[:4] == "seg-" && filepath.Ext(name) == ".slptrc"
}

// Spill implements trace.Sink: it hands the filled buffer to the writer
// goroutine and returns an empty buffer of the same capacity for the
// tracer to keep recording into. The second buffer is allocated on the
// first spill; afterwards the same two buffers alternate, so a spill
// blocks only while both are in flight (disk backpressure stalls
// wall-clock, never simulated time).
func (w *Writer) Spill(events []trace.Event) []trace.Event {
	w.work <- events
	if w.bufs < 2 {
		w.bufs++
		return make([]trace.Event, 0, cap(events))
	}
	return <-w.free
}

// Reset implements trace.Sink: the measured-region boundary moved, so
// everything streamed so far was setup. The call drains pending
// buffers, deletes the written segments, and resets attached consumers;
// it returns only after the writer goroutine acknowledges, so it is
// also a memory barrier for consumer state.
func (w *Writer) Reset() {
	w.work <- nil
	<-w.resetAck
}

// SetDropped records the tracer's cumulative drop count for the next
// segment header. With a sink attached the tracer never drops, so this
// stays zero in practice; it exists so a header's dropped field is
// trustworthy even if a masked ring is later allowed to overflow.
func (w *Writer) SetDropped(n uint64) { w.dropped.Store(n) }

// Close flushes the final partial segment, finalizes consumers, writes
// the CLOSED sentinel, and joins the writer goroutine. It must be
// called exactly once, after the tracer's final Flush; no Spill may
// follow. Returns the first error the stream hit.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	close(w.work)
	<-w.done
	return w.err
}

// Segments returns how many segment files the stream holds; valid after
// Close.
func (w *Writer) Segments() int { return w.segIdx }

// Events returns how many events were streamed; valid after Close.
func (w *Writer) Events() uint64 { return w.events }

// run is the writer goroutine: it owns the segment buffer, the segment
// files, and the attached consumers.
func (w *Writer) run() {
	for buf := range w.work {
		if buf == nil {
			w.resetStream()
			w.resetAck <- struct{}{}
			continue
		}
		w.process(buf)
		w.free <- buf[:0]
	}
	w.finish()
	close(w.done)
}

// process feeds one spilled buffer to the consumers and the segment
// accumulator, rotating full segments out to disk.
func (w *Writer) process(events []trace.Event) {
	for i := range events {
		e := events[i]
		for j := range w.cons {
			if w.cons[j].mask&(1<<uint(e.Kind)) != 0 {
				w.cons[j].c.Consume(e)
			}
		}
	}
	w.events += uint64(len(events))
	w.seg = append(w.seg, events...)
	for len(w.seg) >= w.segEvents {
		w.writeSeg(w.seg[:w.segEvents])
		w.seg = append(w.seg[:0], w.seg[w.segEvents:]...)
	}
}

// writeSeg writes one segment file; after the first disk error the
// stream keeps consuming (the simulator must never block on a dead
// disk) but writes nothing further.
func (w *Writer) writeSeg(events []trace.Event) {
	if w.err == nil {
		w.err = writeSegmentFile(w.dir, w.segIdx, events, w.dropped.Load())
	}
	w.segIdx++
}

// resetStream discards the stream state at a measured-region boundary.
func (w *Writer) resetStream() {
	w.seg = w.seg[:0]
	for i := 0; i < w.segIdx; i++ {
		os.Remove(filepath.Join(w.dir, segName(i)))
	}
	w.segIdx = 0
	w.events = 0
	w.err = nil
	for j := range w.cons {
		if r, ok := w.cons[j].c.(resetter); ok {
			r.Reset()
		}
	}
}

// finish writes the final (partial) segment, finalizes consumers, and
// drops the CLOSED sentinel.
func (w *Writer) finish() {
	if len(w.seg) > 0 {
		w.writeSeg(w.seg)
		w.seg = w.seg[:0]
	}
	for j := range w.cons {
		if f, ok := w.cons[j].c.(flusher); ok {
			f.Flush()
		}
	}
	if w.err != nil {
		return
	}
	sentinel := filepath.Join(w.dir, ClosedSentinel)
	body := fmt.Sprintf("segments=%d events=%d\n", w.segIdx, w.events)
	f, err := os.OpenFile(sentinel, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		w.err = err
		return
	}
	if _, err := f.WriteString(body); err != nil {
		f.Close()
		w.err = err
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.err = err
		return
	}
	if err := f.Close(); err != nil {
		w.err = err
		return
	}
	w.err = syncDir(w.dir)
}
