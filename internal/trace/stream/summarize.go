package stream

import "github.com/persistmem/slpmt/internal/trace"

// MaxExactSamples is the per-histogram sample bound up to which the
// streaming Summarizer keeps exact latency samples (and so reproduces
// trace.Summarize bit-for-bit via the shared nearest-rank Percentiles).
// Past the bound it degrades to the QSketch with its documented
// <= 2^-5 relative error — bounded memory at million-transaction scale.
const MaxExactSamples = 1 << 18

// Summarizer is the online counterpart of trace.Summarize: it pairs
// begin/commit and lazy-drain start/end events per core as they stream
// by. Summary must be given the stream's total event and drop counts
// (from Stats), since the consumer itself only sees its masked kinds.
type Summarizer struct {
	txStart   map[uint8]uint64
	lazyStart map[uint8]uint64

	commits latAcc
	lazies  latAcc
}

// latAcc is one latency histogram: exact samples until MaxExactSamples,
// a sketch afterwards.
type latAcc struct {
	exact  []uint64
	sketch *QSketch
}

func (a *latAcc) add(v uint64) {
	if a.sketch != nil {
		a.sketch.Add(v)
		return
	}
	if len(a.exact) >= MaxExactSamples {
		a.sketch = &QSketch{}
		for _, x := range a.exact {
			a.sketch.Add(x)
		}
		a.exact = nil
		a.sketch.Add(v)
		return
	}
	a.exact = append(a.exact, v)
}

func (a *latAcc) count() int {
	if a.sketch != nil {
		return int(a.sketch.N())
	}
	return len(a.exact)
}

func (a *latAcc) percentiles() (p50, p95, p99 uint64) {
	if a.sketch != nil {
		return a.sketch.Quantile(50), a.sketch.Quantile(95), a.sketch.Quantile(99)
	}
	return trace.Percentiles(a.exact)
}

func (a *latAcc) reset() { *a = latAcc{} }

// NewSummarizer returns an empty streaming summarizer.
func NewSummarizer() *Summarizer {
	return &Summarizer{txStart: map[uint8]uint64{}, lazyStart: map[uint8]uint64{}}
}

// Kinds registers the lifecycle kinds the summarizer consumes.
func (s *Summarizer) Kinds() uint64 {
	return trace.Mask(trace.KTxBegin, trace.KTxCommit, trace.KTxAbort,
		trace.KLazyDrainStart, trace.KLazyDrainEnd)
}

// Consume folds one event into the histograms. The pairing logic
// mirrors trace.Summarize exactly.
func (s *Summarizer) Consume(e trace.Event) {
	switch e.Kind {
	case trace.KTxBegin:
		s.txStart[e.Core] = e.Cycle
	case trace.KTxCommit:
		if c, ok := s.txStart[e.Core]; ok {
			s.commits.add(e.Cycle - c)
			delete(s.txStart, e.Core)
		}
	case trace.KTxAbort:
		delete(s.txStart, e.Core)
	case trace.KLazyDrainStart:
		s.lazyStart[e.Core] = e.Cycle
	case trace.KLazyDrainEnd:
		if c, ok := s.lazyStart[e.Core]; ok {
			s.lazies.add(e.Cycle - c)
			delete(s.lazyStart, e.Core)
		}
	}
}

// Sketched reports whether either histogram overflowed into sketch mode
// (percentiles then carry the sketch's error bound instead of being
// exact).
func (s *Summarizer) Sketched() bool {
	return s.commits.sketch != nil || s.lazies.sketch != nil
}

// Summary renders the accumulated histograms. events and dropped are
// the stream totals (Stats.Events, Stats.Dropped); within the exact
// sample bound the result equals trace.Summarize on the same stream.
func (s *Summarizer) Summary(events int, dropped uint64) trace.Summary {
	out := trace.Summary{Events: events, Dropped: dropped}
	out.Commits = s.commits.count()
	out.CommitP50, out.CommitP95, out.CommitP99 = s.commits.percentiles()
	out.LazyDrains = s.lazies.count()
	out.LazyP50, out.LazyP95, out.LazyP99 = s.lazies.percentiles()
	return out
}

// Reset clears the summarizer at a measured-region boundary.
func (s *Summarizer) Reset() {
	s.txStart = map[uint8]uint64{}
	s.lazyStart = map[uint8]uint64{}
	s.commits.reset()
	s.lazies.reset()
}
