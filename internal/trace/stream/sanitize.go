package stream

import "github.com/persistmem/slpmt/internal/trace"

// Sanitize is the streaming persist-order sanitizer: a thin consumer
// over trace.Sanitizer's incremental state machine, whose retired-
// transaction state is bounded (trace's maxRetainedTx cap), so a
// million-transaction stream sanitizes in O(live state), not O(events).
//
// It declares AllKinds — the underlying state machine indexes
// violations by position in the full stream, so the consumer must see
// every event (including kinds the rules ignore) for its Violation
// indices to match the in-memory trace.Sanitize on the same stream.
type Sanitize struct {
	z *trace.Sanitizer
}

// NewSanitize returns a fresh streaming sanitizer.
func NewSanitize() *Sanitize { return &Sanitize{z: trace.NewSanitizer()} }

// Kinds registers every kind: the replay's event indexing covers the
// whole stream.
func (s *Sanitize) Kinds() uint64 { return trace.AllKinds }

// Consume advances the replay by one event.
func (s *Sanitize) Consume(e trace.Event) { s.z.Step(e) }

// Report finalizes the replay; dropped is the stream's drop count
// (Stats.Dropped) and marks the report truncated when nonzero.
func (s *Sanitize) Report(dropped uint64) *trace.Report { return s.z.Report(dropped) }

// Reset restarts the replay at a measured-region boundary.
func (s *Sanitize) Reset() { s.z = trace.NewSanitizer() }
