package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/trace"
)

// Interval is one telemetry snapshot: the stream's activity over a
// fixed window of simulated cycles, including the per-cause cycle
// attribution vector for the window — the §9 conservation contract
// applied per interval instead of only end-of-run. Serialized as one
// NDJSON line per interval and embedded (as a series) in BENCH json.
type Interval struct {
	Index      int    `json:"interval"`
	StartCycle uint64 `json:"start_cycle"`
	EndCycle   uint64 `json:"end_cycle"`

	Events     uint64 `json:"events"`
	Commits    uint64 `json:"commits"`
	Aborts     uint64 `json:"aborts"`
	LazyDrains uint64 `json:"lazy_drains"`

	// SignatureHits counts retained-signature matches (KSigHit) in the
	// window — each one forced a lazy drain of the matched transaction —
	// and ForcedDrainTx the retained transactions those drains flushed
	// (the KLazyDrainEnd drain depths summed). Per-interval visibility of
	// the end-of-run Stats.SignatureHits counter.
	SignatureHits uint64 `json:"signature_hits,omitempty"`
	ForcedDrainTx uint64 `json:"forced_drain_tx,omitempty"`

	WPQStallCycles uint64 `json:"wpq_stall_cycles"`

	// CyclesByCause is the interval's attribution vector: charged
	// cycles per canonical cause name. A charge whose span crosses an
	// interval boundary counts entirely in the interval its
	// post-advance cycle lands in, so the vectors telescope — summing
	// them over all intervals reproduces the end-of-run breakdown
	// exactly.
	CyclesByCause map[string]uint64 `json:"cycles_by_cause,omitempty"`
}

// maxOpenIntervals bounds the window of intervals held open waiting for
// lagging cores; past it the oldest is force-closed. Keeps telemetry
// state bounded even under extreme core skew.
const maxOpenIntervals = 1024

// Telemetry is the periodic snapshotter: a consumer that buckets the
// stream into fixed cycle windows and emits each closed window as one
// NDJSON line (when given a writer), while checking the cycle-
// conservation contract online: every KCharge must telescope — the
// charged cycles per core must sum exactly to the core's clock advance,
// event by event. An interval closes once every core seen so far has
// progressed past its end (events arrive in per-core cycle order, so no
// earlier event can still arrive), or when the open window exceeds
// maxOpenIntervals.
type Telemetry struct {
	interval uint64
	out      io.Writer // NDJSON sink; nil = accumulate only

	open    map[int]*Interval
	minOpen int
	started bool

	coreCycle  [256]uint64
	coreSeen   [256]bool
	chargeBase [256]uint64
	chargeCum  [256]uint64
	chargeSeen [256]bool

	series   []Interval
	consErr  error
	emitErr  error
	lateEvts uint64
}

// NewTelemetry returns a snapshotter with the given window length in
// cycles (<= 0 selects 1<<16). out receives one JSON line per closed
// interval; pass nil to only accumulate the series.
func NewTelemetry(intervalCycles uint64, out io.Writer) *Telemetry {
	if intervalCycles == 0 {
		intervalCycles = 1 << 16
	}
	return &Telemetry{interval: intervalCycles, out: out, open: map[int]*Interval{}}
}

// Kinds registers every kind: the snapshotter counts all events and
// needs every core's cycle progress to close intervals.
func (t *Telemetry) Kinds() uint64 { return trace.AllKinds }

// Consume folds one event into its interval.
func (t *Telemetry) Consume(e trace.Event) {
	idx := int(e.Cycle / t.interval)
	if !t.started || idx < t.minOpen {
		if t.started {
			// A straggler for an already-closed interval (a core idle
			// long enough to fall behind every other): fold it into the
			// oldest open window and count it so the skew is visible.
			t.lateEvts++
			idx = t.minOpen
		} else {
			t.started = true
			t.minOpen = idx
		}
	}
	iv := t.open[idx]
	if iv == nil {
		iv = &Interval{
			Index:      idx,
			StartCycle: uint64(idx) * t.interval,
			EndCycle:   uint64(idx+1)*t.interval - 1,
		}
		t.open[idx] = iv
	}
	iv.Events++
	switch e.Kind {
	case trace.KTxCommit:
		iv.Commits++
	case trace.KTxAbort:
		iv.Aborts++
	case trace.KLazyDrainEnd:
		iv.LazyDrains++
		iv.ForcedDrainTx += e.Arg
	case trace.KSigHit:
		iv.SignatureHits++
	case trace.KWPQStall:
		iv.WPQStallCycles += e.Arg
	case trace.KCharge:
		cause := profile.Cause(e.Addr)
		if iv.CyclesByCause == nil {
			iv.CyclesByCause = map[string]uint64{}
		}
		iv.CyclesByCause[cause.String()] += e.Arg
		t.checkConservation(e)
	}
	// Track per-core progress and close every interval all seen cores
	// have moved past.
	if e.Cycle > t.coreCycle[e.Core] || !t.coreSeen[e.Core] {
		t.coreCycle[e.Core] = e.Cycle
	}
	t.coreSeen[e.Core] = true
	t.closeUpTo(t.minSeenCycle())
	for idx-t.minOpen >= maxOpenIntervals {
		t.closeOne(t.minOpen)
	}
}

// checkConservation verifies the telescoping charge invariant for one
// KCharge event: base + sum(charges) == post-advance cycle, per core.
// The first charge establishes the core's base (its clock at the
// measured-region start).
func (t *Telemetry) checkConservation(e trace.Event) {
	c := e.Core
	if !t.chargeSeen[c] {
		t.chargeSeen[c] = true
		t.chargeBase[c] = e.Cycle - e.Arg
	}
	t.chargeCum[c] += e.Arg
	if t.consErr == nil && t.chargeBase[c]+t.chargeCum[c] != e.Cycle {
		t.consErr = fmt.Errorf(
			"stream: core %d attribution not conserved at cycle %d: base %d + charged %d = %d",
			c, e.Cycle, t.chargeBase[c], t.chargeCum[c], t.chargeBase[c]+t.chargeCum[c])
	}
}

// minSeenCycle returns the slowest seen core's cycle.
func (t *Telemetry) minSeenCycle() uint64 {
	min, any := ^uint64(0), false
	for c := range t.coreCycle {
		if t.coreSeen[c] && t.coreCycle[c] < min {
			min = t.coreCycle[c]
			any = true
		}
	}
	if !any {
		return 0
	}
	return min
}

// closeUpTo closes (in index order) every open interval that ends at or
// before cycle.
func (t *Telemetry) closeUpTo(cycle uint64) {
	for t.started && len(t.open) > 0 {
		iv, ok := t.open[t.minOpen]
		if !ok {
			t.minOpen++ // empty window between active ones
			continue
		}
		if iv.EndCycle >= cycle {
			return
		}
		t.closeOne(t.minOpen)
	}
}

// closeOne finalizes one interval: appends it to the series and emits
// its NDJSON line.
func (t *Telemetry) closeOne(idx int) {
	iv := t.open[idx]
	delete(t.open, idx)
	if idx == t.minOpen {
		t.minOpen++
	}
	if iv == nil {
		return
	}
	t.series = append(t.series, *iv)
	if t.out == nil || t.emitErr != nil {
		return
	}
	line, err := json.Marshal(iv)
	if err == nil {
		line = append(line, '\n')
		_, err = t.out.Write(line)
	}
	if err != nil {
		t.emitErr = err
	}
}

// Flush closes every still-open interval (stream end). The Writer calls
// it from Close; offline feeders call it after Feed.
func (t *Telemetry) Flush() {
	for len(t.open) > 0 {
		if _, ok := t.open[t.minOpen]; !ok {
			t.minOpen++
			continue
		}
		t.closeOne(t.minOpen)
	}
}

// Intervals returns the closed intervals in time order.
func (t *Telemetry) Intervals() []Interval { return t.series }

// Late returns how many straggler events were folded into a later
// window because their own had already closed.
func (t *Telemetry) Late() uint64 { return t.lateEvts }

// Err returns the first conservation violation or NDJSON write error.
func (t *Telemetry) Err() error {
	if t.consErr != nil {
		return t.consErr
	}
	return t.emitErr
}

// Reset clears the snapshotter at a measured-region boundary. The
// NDJSON sink is kept; lines already written belong to the discarded
// region and are the caller's to truncate if that matters.
func (t *Telemetry) Reset() {
	out, interval := t.out, t.interval
	*t = Telemetry{interval: interval, out: out, open: map[int]*Interval{}}
}
