package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/persistmem/slpmt/internal/trace"
)

// TornError reports a stream whose final segment ended mid-write (a
// crash tear). It carries the position so the tear is diagnosable; the
// durable prefix — every complete record before it — was already
// delivered when the error is surfaced via Stats.Torn.
type TornError struct {
	Segment string // file name of the torn segment
	Offset  int64  // byte offset the tear was detected at
	Err     error  // underlying cause, when one exists
}

func (e *TornError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("stream: segment %s torn at byte %d", e.Segment, e.Offset)
	}
	return fmt.Sprintf("stream: segment %s torn at byte %d: %v", e.Segment, e.Offset, e.Err)
}

func (e *TornError) Unwrap() error { return e.Err }

// Stats summarizes one pass over a stream.
type Stats struct {
	Events   int
	Segments int    // segments read (including a torn final one)
	Dropped  uint64 // cumulative tracer drops per the last readable header
	Closed   bool   // the CLOSED sentinel was present
	// Torn is set when the final segment was truncated: the complete-
	// record prefix was delivered and iteration ended cleanly. A torn
	// non-final segment is corruption and returns a hard error instead.
	Torn *TornError
}

// Dir is an on-disk stream opened for reading.
type Dir struct {
	path   string
	segs   []string // segment file names, write order
	closed bool
}

// Open lists a stream directory. The stream need not be CLOSED; Iter
// reads whatever segments exist.
func Open(dir string) (*Dir, error) {
	d := &Dir{path: dir}
	if err := d.rescan(); err != nil {
		return nil, err
	}
	return d, nil
}

// rescan refreshes the segment list and sentinel state.
func (d *Dir) rescan() error {
	ents, err := os.ReadDir(d.path)
	if err != nil {
		return err
	}
	d.segs = d.segs[:0]
	d.closed = false
	for _, e := range ents {
		switch name := e.Name(); {
		case isSegName(name):
			d.segs = append(d.segs, name)
		case name == ClosedSentinel:
			d.closed = true
		}
	}
	sort.Strings(d.segs)
	return nil
}

// Segments returns the segment file names in write order.
func (d *Dir) Segments() []string { return append([]string(nil), d.segs...) }

// Closed reports whether the CLOSED sentinel is present.
func (d *Dir) Closed() bool { return d.closed }

// Header decodes the header of the idx'th segment.
func (d *Dir) Header(idx int) (SegmentHeader, error) {
	data, err := os.ReadFile(filepath.Join(d.path, d.segs[idx]))
	if err != nil {
		return SegmentHeader{}, err
	}
	hdr, off, ok, err := decodeSegment(data, func(trace.Event) {})
	if err != nil {
		return hdr, err
	}
	if !ok {
		return hdr, &TornError{Segment: d.segs[idx], Offset: off}
	}
	return hdr, nil
}

// Iter implements Source: it streams every event in write order through
// fn, reading one segment at a time (memory stays O(segment)). A torn
// final segment yields its complete-record prefix and sets Stats.Torn;
// a torn or corrupt earlier segment is a hard error, because fsync'd
// rotation guarantees only the final segment can legitimately tear.
func (d *Dir) Iter(fn func(trace.Event)) (*Stats, error) {
	st := &Stats{Closed: d.closed}
	for i, name := range d.segs {
		data, err := os.ReadFile(filepath.Join(d.path, name))
		if err != nil {
			return st, err
		}
		n := 0
		hdr, off, ok, err := decodeSegment(data, func(e trace.Event) {
			n++
			fn(e)
		})
		st.Events += n
		st.Segments++
		if err != nil {
			return st, fmt.Errorf("stream: segment %s: %w", name, err)
		}
		if !ok {
			torn := &TornError{Segment: name, Offset: off}
			if i != len(d.segs)-1 {
				return st, torn
			}
			st.Torn = torn
			return st, nil
		}
		st.Dropped = hdr.Dropped
	}
	return st, nil
}

// Events slurps the whole stream into memory — the bridge back to the
// in-memory analyses (trace.Summarize and friends) for equivalence
// checking and small streams. Defeats the point of streaming on large
// ones.
func (d *Dir) Events() ([]trace.Event, *Stats, error) {
	var events []trace.Event
	st, err := d.Iter(func(e trace.Event) { events = append(events, e) })
	return events, st, err
}

// Follow tails a live stream: it delivers segments as they complete and
// returns when the CLOSED sentinel appears (delivering the final
// segments first) or when a poll fails. A segment is considered
// complete once a later segment or the sentinel exists — rotation is
// sequential, so that is exactly when its fsync has happened. poll <= 0
// selects 200ms.
func (d *Dir) Follow(fn func(trace.Event), poll time.Duration) (*Stats, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	st := &Stats{}
	read := 0 // segments fully delivered
	for {
		if err := d.rescan(); err != nil {
			return st, err
		}
		// Segments strictly before the last are complete; with the
		// sentinel present the last one is too.
		complete := len(d.segs)
		if !d.closed && complete > 0 {
			complete--
		}
		for ; read < complete; read++ {
			data, err := os.ReadFile(filepath.Join(d.path, d.segs[read]))
			if err != nil {
				return st, err
			}
			n := 0
			hdr, off, ok, err := decodeSegment(data, func(e trace.Event) {
				n++
				fn(e)
			})
			st.Events += n
			st.Segments++
			if err != nil {
				return st, fmt.Errorf("stream: segment %s: %w", d.segs[read], err)
			}
			if !ok {
				torn := &TornError{Segment: d.segs[read], Offset: off}
				if d.closed && read == len(d.segs)-1 {
					st.Torn = torn
					st.Closed = true
					return st, nil
				}
				return st, torn
			}
			st.Dropped = hdr.Dropped
		}
		if d.closed {
			st.Closed = true
			return st, nil
		}
		time.Sleep(poll)
	}
}
