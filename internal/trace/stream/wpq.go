package stream

import "github.com/persistmem/slpmt/internal/trace"

// BucketWPQ is the streaming counterpart of trace.BucketWPQ: it folds a
// source's WPQ events into n equal time buckets in two passes — pass
// one finds the activity span in O(1) state, pass two fills the buckets
// in O(n) state — so the series never needs the events in memory. The
// fold replicates trace.BucketWPQ exactly (same ceil'd width, same
// clamping, same per-socket merge), so the result is identical to the
// in-memory series on the same stream. Returns nil if the stream holds
// no WPQ events.
func BucketWPQ(src Source, n int) (*trace.WPQSeries, error) {
	if n <= 0 {
		n = 16
	}
	span := &wpqSpan{}
	if _, err := Feed(src, span); err != nil {
		return nil, err
	}
	if !span.seen {
		return nil, nil
	}
	fold := newWPQFold(span.lo, span.hi, n)
	if _, err := Feed(src, fold); err != nil {
		return nil, err
	}
	return fold.series(), nil
}

// wpqMask is the WPQ activity kinds both passes consume.
func wpqMask() uint64 {
	return trace.Mask(trace.KWPQEnqueue, trace.KWPQDrain, trace.KWPQStall)
}

// wpqSpan is pass one: the min/max cycle of WPQ activity.
type wpqSpan struct {
	lo, hi uint64
	seen   bool
}

func (s *wpqSpan) Kinds() uint64 { return wpqMask() }

func (s *wpqSpan) Consume(e trace.Event) {
	switch e.Kind {
	case trace.KWPQEnqueue, trace.KWPQDrain, trace.KWPQStall:
		if !s.seen || e.Cycle < s.lo {
			s.lo = e.Cycle
		}
		if e.Cycle > s.hi {
			s.hi = e.Cycle
		}
		s.seen = true
	}
}

// wpqFold is pass two: the bucket fill, given the span.
type wpqFold struct {
	lo      uint64
	width   uint64
	buckets []trace.WPQBucket
	sums    []uint64
	samples []uint64
}

func newWPQFold(lo, hi uint64, n int) *wpqFold {
	width := (hi - lo + uint64(n)) / uint64(n) // ceil so hi lands in the last bucket
	if width == 0 {
		width = 1
	}
	f := &wpqFold{
		lo: lo, width: width,
		buckets: make([]trace.WPQBucket, n),
		sums:    make([]uint64, n),
		samples: make([]uint64, n),
	}
	for i := range f.buckets {
		f.buckets[i].StartCycle = lo + uint64(i)*width
		f.buckets[i].EndCycle = lo + uint64(i+1)*width
	}
	return f
}

func (f *wpqFold) Kinds() uint64 { return wpqMask() }

func (f *wpqFold) Consume(e trace.Event) {
	var i int
	switch e.Kind {
	case trace.KWPQEnqueue, trace.KWPQDrain, trace.KWPQStall:
		i = int((e.Cycle - f.lo) / f.width)
		if i >= len(f.buckets) {
			i = len(f.buckets) - 1
		}
	default:
		return
	}
	b := &f.buckets[i]
	switch e.Kind {
	case trace.KWPQEnqueue:
		b.Enqueues++
	case trace.KWPQDrain:
		b.Drains++
	case trace.KWPQStall:
		b.StallCycles += e.Arg
		return
	}
	// Per-socket streams merge: occupancy is the emitting queue's
	// post-event occupancy with the socket tag stripped, exactly as in
	// trace.BucketWPQ.
	occ := trace.WPQOcc(e.Arg)
	if occ > b.OccMax {
		b.OccMax = occ
	}
	f.sums[i] += occ
	f.samples[i]++
}

func (f *wpqFold) series() *trace.WPQSeries {
	for i := range f.buckets {
		if f.samples[i] > 0 {
			f.buckets[i].OccAvg = f.sums[i] / f.samples[i]
		}
	}
	return &trace.WPQSeries{Buckets: f.buckets}
}
