// Package stream turns the one-shot trace ring into an incremental
// source: a binlog-style chunked SLPTRC01 writer (fixed-size segments
// with per-segment headers, fsync'd rotation, crash-truncation-tolerant
// reader) fed by the tracer's double-buffered spill path, plus a
// Consumer interface that makes every trace analysis online —
// summarization, sanitizing, WPQ bucketing, and periodic telemetry —
// with memory bounded by the segment buffer instead of the event count.
//
// Observation contract. Streaming only observes: attaching a Writer as
// the tracer's sink changes no simulated cycles, counters, or goldens.
// The simulator thread only ever blocks in the buffer handoff
// (trace.Sink.Spill), never on disk I/O, and backpressure from a slow
// disk delays wall-clock only — simulated time is unaffected by
// construction, because the tracer reads clocks and never advances
// them.
package stream

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"github.com/persistmem/slpmt/internal/trace"
)

// Segment format (SLPSEG01): one file per segment, named
// seg-NNNNNNNN.slptrc so lexicographic order is write order.
//
//	off  0: magic "SLPSEG01"
//	off  8: count      u64  records in this segment
//	off 16: firstCycle u64  minimum event cycle in the segment
//	off 24: lastCycle  u64  maximum event cycle in the segment
//	off 32: dropped    u64  tracer drops observed up to this segment
//	off 40: ncores     u64  per-core count entries that follow
//	off 48: ncores × { core u64, count u64 }
//	then count × trace.RecordSize event records (trace.PutRecord layout)
//
// Every field is little-endian. A segment file is written in one pass
// and fsync'd before the next segment starts, so after a crash only the
// final segment can be torn — and a torn final segment still yields its
// complete-record prefix (see Dir.Iter).
const (
	segMagic       = "SLPSEG01"
	segFixedHeader = 48
	segCoreEntry   = 16
)

// DefaultSegmentEvents is the default segment size in events
// (64Ki events ≈ 1.6 MiB on disk). Trace-side memory of a streamed run
// is O(this), independent of the run's total event count.
const DefaultSegmentEvents = 1 << 16

// ClosedSentinel is the file the Writer creates after the final
// segment: its presence tells readers (and -follow tails) the stream is
// complete.
const ClosedSentinel = "CLOSED"

// segName returns the file name of segment idx.
func segName(idx int) string { return fmt.Sprintf("seg-%08d.slptrc", idx) }

// encodeSegment serializes events into one SLPSEG01 segment image.
// dropped is the cumulative tracer drop count at write time.
func encodeSegment(events []trace.Event, dropped uint64) []byte {
	var perCore [256]uint64
	first, last := ^uint64(0), uint64(0)
	for i := range events {
		e := &events[i]
		perCore[e.Core]++
		if e.Cycle < first {
			first = e.Cycle
		}
		if e.Cycle > last {
			last = e.Cycle
		}
	}
	if len(events) == 0 {
		first = 0
	}
	ncores := 0
	for _, n := range perCore {
		if n > 0 {
			ncores++
		}
	}
	buf := make([]byte, segFixedHeader+ncores*segCoreEntry+len(events)*trace.RecordSize)
	copy(buf[0:], segMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(events)))
	binary.LittleEndian.PutUint64(buf[16:], first)
	binary.LittleEndian.PutUint64(buf[24:], last)
	binary.LittleEndian.PutUint64(buf[32:], dropped)
	binary.LittleEndian.PutUint64(buf[40:], uint64(ncores))
	off := segFixedHeader
	for core, n := range perCore {
		if n == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(buf[off:], uint64(core))
		binary.LittleEndian.PutUint64(buf[off+8:], n)
		off += segCoreEntry
	}
	for i := range events {
		trace.PutRecord(buf[off:], events[i])
		off += trace.RecordSize
	}
	return buf
}

// SegmentHeader is the decoded header of one segment file.
type SegmentHeader struct {
	Count                 int
	FirstCycle, LastCycle uint64
	Dropped               uint64
	// CoreCounts maps core ID to the core's record count, as entries
	// ordered by core.
	CoreCounts []CoreCount
}

// CoreCount is one per-core entry of a segment header.
type CoreCount struct {
	Core  uint8
	Count uint64
}

// decodeSegment parses one segment image from data, calling fn for
// every complete record. It returns the header and, when the image ends
// early (a torn tail), the byte offset the tear was detected at with
// ok=false; the complete-record prefix has been delivered. Corrupt (as
// opposed to short) data returns an error.
func decodeSegment(data []byte, fn func(trace.Event)) (hdr SegmentHeader, tearOff int64, ok bool, err error) {
	if len(data) < segFixedHeader {
		return hdr, int64(len(data)), false, nil
	}
	if string(data[0:8]) != segMagic {
		return hdr, 0, false, fmt.Errorf("stream: bad segment magic %q", data[0:8])
	}
	count := binary.LittleEndian.Uint64(data[8:])
	hdr.FirstCycle = binary.LittleEndian.Uint64(data[16:])
	hdr.LastCycle = binary.LittleEndian.Uint64(data[24:])
	hdr.Dropped = binary.LittleEndian.Uint64(data[32:])
	ncores := binary.LittleEndian.Uint64(data[40:])
	if ncores > 256 {
		return hdr, 0, false, fmt.Errorf("stream: segment claims %d cores", ncores)
	}
	if count > 1<<40 {
		return hdr, 0, false, fmt.Errorf("stream: segment claims %d records", count)
	}
	hdr.Count = int(count)
	off := segFixedHeader
	for i := 0; i < int(ncores); i++ {
		if off+segCoreEntry > len(data) {
			return hdr, int64(len(data)), false, nil
		}
		hdr.CoreCounts = append(hdr.CoreCounts, CoreCount{
			Core:  uint8(binary.LittleEndian.Uint64(data[off:])),
			Count: binary.LittleEndian.Uint64(data[off+8:]),
		})
		off += segCoreEntry
	}
	for i := 0; i < hdr.Count; i++ {
		if off+trace.RecordSize > len(data) {
			return hdr, int64(len(data)), false, nil
		}
		fn(trace.GetRecord(data[off:]))
		off += trace.RecordSize
	}
	return hdr, 0, true, nil
}

// writeSegmentFile writes one fsync'd segment image into dir. The
// containing directory is synced too, so a completed segment survives a
// crash; a crash mid-write leaves a torn tail the reader recovers from.
func writeSegmentFile(dir string, idx int, events []trace.Event, dropped uint64) error {
	path := filepath.Join(dir, segName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSegment(events, dropped)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs the directory so newly created files are durable.
// Best-effort: some filesystems refuse directory syncs.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// EINVAL from exotic filesystems is tolerated; real write
		// errors surface on the segment file sync instead.
		return nil
	}
	return nil
}
