package stream

import "github.com/persistmem/slpmt/internal/trace"

// Consumer is an online trace analysis: it sees events one at a time,
// in stream order, and must keep bounded state. Kinds declares the
// event kinds the consumer handles as a trace.Mask bitmask — events of
// other kinds are filtered out before Consume, and slpmtvet's
// trace-coverage pass statically rejects a Consume body that references
// a kind its Kinds mask does not register. A consumer that inspects
// every event (or delegates without switching on kinds) declares
// trace.AllKinds.
type Consumer interface {
	Kinds() uint64
	Consume(e trace.Event)
}

// Source is anything that can replay an event stream in order: an
// on-disk Dir, or an in-memory Events slice.
type Source interface {
	Iter(fn func(trace.Event)) (*Stats, error)
}

// Events is an in-memory Source, used by tests and by the equivalence
// checks that compare streamed consumers against the slurping analyses.
type Events []trace.Event

// Iter implements Source over the slice.
func (ev Events) Iter(fn func(trace.Event)) (*Stats, error) {
	for _, e := range ev {
		fn(e)
	}
	return &Stats{Events: len(ev), Closed: true}, nil
}

// Feed replays src through the consumers, applying each consumer's kind
// mask, and returns the source's stats. This is the offline counterpart
// of attaching consumers to a live Writer.
func Feed(src Source, consumers ...Consumer) (*Stats, error) {
	mc := make([]maskedConsumer, len(consumers))
	for i, c := range consumers {
		mc[i] = maskedConsumer{c: c, mask: c.Kinds()}
	}
	return src.Iter(func(e trace.Event) {
		for i := range mc {
			if mc[i].mask&(1<<uint(e.Kind)) != 0 {
				mc[i].c.Consume(e)
			}
		}
	})
}
