package stream

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/trace"
)

// randEvents builds a random event batch: arbitrary kinds (including
// WPQ events with socket-tagged args, exercising the mask boundaries of
// the 56-bit occupancy encoding), per-core non-decreasing cycles.
func randEvents(rng *rand.Rand, n, cores int) []trace.Event {
	clk := make([]uint64, cores)
	evs := make([]trace.Event, n)
	for i := range evs {
		c := rng.Intn(cores)
		clk[c] += uint64(rng.Intn(50))
		k := trace.Kind(1 + rng.Intn(25))
		arg := rng.Uint64()
		switch k {
		case trace.KWPQEnqueue, trace.KWPQDrain:
			arg = trace.WPQArgTag(rng.Intn(4)) | uint64(rng.Intn(1<<20))
		case trace.KStore, trace.KStoreT, trace.KLogAppend:
			// Sizes the sanitizer walks line-by-line: keep them sane.
			arg = uint64(1 + rng.Intn(256))
		}
		evs[i] = trace.Event{
			Cycle: clk[c], Addr: rng.Uint64(), Arg: arg,
			Kind: k, Core: uint8(c),
		}
	}
	return evs
}

// buildStream drives events through a real tracer + sink writer into
// dir, returning the writer for post-close inspection.
func buildStream(t *testing.T, dir string, evs []trace.Event, ringCap, segEvents int, cs ...Consumer) *Writer {
	t.Helper()
	tr := trace.New(ringCap)
	w, err := NewWriter(dir, segEvents, cs...)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	tr.SetSink(w)
	for _, e := range evs {
		tr.Emit(e.Core, e.Cycle, e.Kind, e.Addr, e.Arg)
	}
	tr.Flush()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("tracer dropped %d events with a sink attached", d)
	}
	return w
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		// Sizes straddle the ring and segment boundaries: empty, one
		// record, exact multiples, and off-by-one around both.
		n := []int{0, 1, 63, 64, 65, 1000, 4096, 4097}[trial]
		evs := randEvents(rng, n, 4)
		dir := t.TempDir()
		w := buildStream(t, dir, evs, 64, 256)
		if got := w.Events(); got != uint64(n) {
			t.Fatalf("n=%d: writer streamed %d events", n, got)
		}
		d, err := Open(dir)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		got, st, err := d.Events()
		if err != nil {
			t.Fatalf("n=%d: read back: %v", n, err)
		}
		if !d.Closed() || !st.Closed {
			t.Fatalf("n=%d: stream not marked closed", n)
		}
		if st.Torn != nil {
			t.Fatalf("n=%d: unexpected tear: %v", n, st.Torn)
		}
		if len(got) != n || (n > 0 && !reflect.DeepEqual(got, evs)) {
			t.Fatalf("n=%d: round trip mismatch: got %d events", n, len(got))
		}
	}
}

func TestRoundTripMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	evs := randEvents(rng, 2000, 3)
	dir := t.TempDir()
	tr := trace.New(128)
	tr.SetMask(trace.SanitizeMask())
	w, err := NewWriter(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetSink(w)
	var want []trace.Event
	for _, e := range evs {
		tr.Emit(e.Core, e.Cycle, e.Kind, e.Addr, e.Arg)
		if trace.SanitizeMask()&(1<<uint(e.Kind)) != 0 {
			want = append(want, e)
		}
	}
	tr.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d, _ := Open(dir)
	got, _, err := d.Events()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("masked round trip mismatch: got %d want %d events", len(got), len(want))
	}
}

func TestSegmentHeaders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	evs := randEvents(rng, 1000, 3)
	dir := t.TempDir()
	buildStream(t, dir, evs, 64, 256)
	d, _ := Open(dir)
	segs := d.Segments()
	if want := (1000 + 255) / 256; len(segs) != want {
		t.Fatalf("got %d segments, want %d", len(segs), want)
	}
	seen := 0
	for i := range segs {
		hdr, err := d.Header(i)
		if err != nil {
			t.Fatalf("segment %d header: %v", i, err)
		}
		chunk := evs[seen : seen+hdr.Count]
		lo, hi := ^uint64(0), uint64(0)
		perCore := map[uint8]uint64{}
		for _, e := range chunk {
			perCore[e.Core]++
			if e.Cycle < lo {
				lo = e.Cycle
			}
			if e.Cycle > hi {
				hi = e.Cycle
			}
		}
		if hdr.FirstCycle != lo || hdr.LastCycle != hi {
			t.Fatalf("segment %d cycle span [%d,%d], want [%d,%d]",
				i, hdr.FirstCycle, hdr.LastCycle, lo, hi)
		}
		var cores []int
		for c := range perCore {
			cores = append(cores, int(c))
		}
		sort.Ints(cores)
		if len(hdr.CoreCounts) != len(cores) {
			t.Fatalf("segment %d: %d core entries, want %d", i, len(hdr.CoreCounts), len(cores))
		}
		for j, c := range cores {
			if hdr.CoreCounts[j].Core != uint8(c) || hdr.CoreCounts[j].Count != perCore[uint8(c)] {
				t.Fatalf("segment %d core entry %d = %+v, want core %d count %d",
					i, j, hdr.CoreCounts[j], c, perCore[uint8(c)])
			}
		}
		seen += hdr.Count
	}
	if seen != len(evs) {
		t.Fatalf("headers cover %d events, want %d", seen, len(evs))
	}
}

// TestTornLastSegment truncates the final segment at every byte of its
// header (and every record boundary region beyond) and checks the
// reader recovers exactly the durable prefix.
func TestTornLastSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	evs := randEvents(rng, 600, 2) // 2 full segments of 256 + final 88
	dir := t.TempDir()
	buildStream(t, dir, evs, 64, 256)
	d, _ := Open(dir)
	segs := d.Segments()
	last := filepath.Join(dir, segs[len(segs)-1])
	whole, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := segFixedHeader + 2*segCoreEntry
	cuts := make([]int, 0, headerLen+8)
	for i := 0; i <= headerLen; i++ { // every byte of the header
		cuts = append(cuts, i)
	}
	// Plus tears inside the record area: mid-record and between records.
	cuts = append(cuts,
		headerLen+1, headerLen+trace.RecordSize-1, headerLen+trace.RecordSize,
		headerLen+5*trace.RecordSize+13, len(whole)-1)
	durable := 512 // events in the two fsync'd segments
	for _, cut := range cuts {
		if err := os.WriteFile(last, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		dd, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := dd.Events()
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if st.Torn == nil {
			t.Fatalf("cut=%d: tear not reported", cut)
		}
		if st.Torn.Segment != segs[len(segs)-1] || st.Torn.Offset != int64(cut) {
			t.Fatalf("cut=%d: tear at %s+%d", cut, st.Torn.Segment, st.Torn.Offset)
		}
		wantN := durable
		if cut > headerLen {
			wantN += (cut - headerLen) / trace.RecordSize
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: recovered %d events, want %d", cut, len(got), wantN)
		}
		if !reflect.DeepEqual(got, evs[:wantN]) {
			t.Fatalf("cut=%d: recovered prefix differs", cut)
		}
	}
	// A torn non-final segment is corruption, not recovery.
	if err := os.WriteFile(last, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, segs[0])
	fw, _ := os.ReadFile(first)
	if err := os.WriteFile(first, fw[:len(fw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	dd, _ := Open(dir)
	if _, _, err := dd.Events(); err == nil {
		t.Fatal("torn non-final segment not rejected")
	}
}

func FuzzDecodeSegment(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	f.Add(encodeSegment(randEvents(rng, 40, 3), 2))
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-deliver, whatever the bytes.
		n := 0
		hdr, _, ok, err := decodeSegment(data, func(trace.Event) { n++ })
		if ok && err == nil && n != hdr.Count {
			t.Fatalf("clean decode delivered %d of %d records", n, hdr.Count)
		}
	})
}

func TestSummarizerMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	evs := randEvents(rng, 5000, 4)
	want := trace.Summarize(evs, 0)
	s := NewSummarizer()
	st, err := Feed(Events(evs), s)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Summary(st.Events, 0); got != want {
		t.Fatalf("streamed summary %+v\nwant %+v", got, want)
	}
	if s.Sketched() {
		t.Fatal("summarizer sketched below the exact bound")
	}
}

func TestSanitizeMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	evs := randEvents(rng, 3000, 3)
	want := trace.Sanitize(evs, 0)
	z := NewSanitize()
	if _, err := Feed(Events(evs), z); err != nil {
		t.Fatal(err)
	}
	got := z.Report(0)
	// Violations found at the same event come out of set iteration, so
	// their relative order is unspecified; normalize before comparing.
	sortViolations(got.Violations)
	sortViolations(want.Violations)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed sanitize differs:\ngot  %+v\nwant %+v", got, want)
	}
}

func sortViolations(vs []trace.Violation) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Index != vs[j].Index {
			return vs[i].Index < vs[j].Index
		}
		return vs[i].Detail < vs[j].Detail
	})
}

func TestBucketWPQMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	evs := randEvents(rng, 4000, 4)
	want := trace.BucketWPQ(evs, 16)
	got, err := BucketWPQ(Events(evs), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed WPQ series differs:\ngot  %+v\nwant %+v", got, want)
	}
	// And through the on-disk path.
	dir := t.TempDir()
	buildStream(t, dir, evs, 128, 512)
	d, _ := Open(dir)
	got2, err := BucketWPQ(d, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("on-disk streamed WPQ series differs from in-memory")
	}
}

func TestQSketchErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 4; trial++ {
		var q QSketch
		xs := make([]uint64, 20000)
		for i := range xs {
			v := uint64(rng.Intn(1 << uint(8+4*trial)))
			xs[i] = v
			q.Add(v)
		}
		exact := append([]uint64(nil), xs...)
		for _, p := range []int{50, 95, 99} {
			e50, e95, e99 := trace.Percentiles(exact)
			want := map[int]uint64{50: e50, 95: e95, 99: e99}[p]
			got := q.Quantile(p)
			if got < want || got > want+want>>qsketchSubBits+1 {
				t.Fatalf("trial %d p%d: sketch %d vs exact %d exceeds 2^-%d bound",
					trial, p, got, want, qsketchSubBits)
			}
		}
	}
}

func TestSummarizerSketchFallback(t *testing.T) {
	s := NewSummarizer()
	// Overflow the exact bound: MaxExactSamples+K commits with latency
	// equal to their index, so the exact percentiles are known.
	n := MaxExactSamples + 1000
	for i := 0; i < n; i++ {
		s.Consume(trace.Event{Cycle: 0, Kind: trace.KTxBegin, Core: 0})
		s.Consume(trace.Event{Cycle: uint64(i + 1), Kind: trace.KTxCommit, Core: 0})
	}
	if !s.Sketched() {
		t.Fatal("summarizer did not fall back to sketch past the bound")
	}
	sum := s.Summary(2*n, 0)
	if sum.Commits != n {
		t.Fatalf("sketched commit count %d, want %d", sum.Commits, n)
	}
	exact := uint64((50*n + 99) / 100) // nearest-rank p50 of 1..n
	got := sum.CommitP50
	if got < exact || got > exact+exact>>qsketchSubBits+1 {
		t.Fatalf("sketched p50 %d vs exact %d exceeds bound", got, exact)
	}
}

func TestTelemetryConservationAndTelescoping(t *testing.T) {
	// Two cores advancing by charged amounts: conservation must hold,
	// and summing the interval vectors must reproduce the totals.
	tele := NewTelemetry(100, nil)
	totals := map[string]uint64{}
	clk := [2]uint64{17, 400} // nonzero bases: measured region starts mid-run
	rng := rand.New(rand.NewSource(10))
	causes := []profile.Cause{profile.CauseCompute, profile.CauseLogAppend, profile.CauseLogSync}
	commits := 0
	for i := 0; i < 2000; i++ {
		c := uint8(i % 2)
		cause := causes[rng.Intn(len(causes))]
		adv := uint64(1 + rng.Intn(30))
		clk[c] += adv
		tele.Consume(trace.Event{Cycle: clk[c], Addr: uint64(cause), Arg: adv, Kind: trace.KCharge, Core: c})
		totals[cause.String()] += adv
		if i%10 == 0 {
			tele.Consume(trace.Event{Cycle: clk[c], Arg: 1, Kind: trace.KTxCommit, Core: c})
			commits++
		}
	}
	tele.Flush()
	if err := tele.Err(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	got := map[string]uint64{}
	var gotCommits uint64
	ivs := tele.Intervals()
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Index <= ivs[i-1].Index {
			t.Fatal("intervals out of order")
		}
	}
	for _, iv := range ivs {
		for k, v := range iv.CyclesByCause {
			got[k] += v
		}
		gotCommits += iv.Commits
	}
	if !reflect.DeepEqual(got, totals) {
		t.Fatalf("interval vectors do not telescope:\ngot  %v\nwant %v", got, totals)
	}
	if gotCommits != uint64(commits) {
		t.Fatalf("interval commits %d, want %d", gotCommits, commits)
	}

	// A gap in the charge stream (an unattributed advance) must trip
	// the per-event conservation check.
	bad := NewTelemetry(100, nil)
	bad.Consume(trace.Event{Cycle: 50, Addr: uint64(profile.CauseCompute), Arg: 50, Kind: trace.KCharge, Core: 0})
	bad.Consume(trace.Event{Cycle: 120, Addr: uint64(profile.CauseCompute), Arg: 20, Kind: trace.KCharge, Core: 0})
	if bad.Err() == nil {
		t.Fatal("unattributed clock advance not detected")
	}
}

func TestTelemetryNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tele := NewTelemetry(100, &buf)
	for i := uint64(1); i <= 500; i++ {
		tele.Consume(trace.Event{Cycle: i, Kind: trace.KStore, Core: 0})
	}
	tele.Flush()
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if lines != len(tele.Intervals()) || lines == 0 {
		t.Fatalf("%d NDJSON lines for %d intervals", lines, len(tele.Intervals()))
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"events":100`)) {
		t.Fatalf("NDJSON missing per-interval counts: %s", buf.String())
	}
}

func TestWriterResetDiscardsSetup(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	setup := randEvents(rng, 700, 2)
	dir := t.TempDir()
	tr := trace.New(64)
	s := NewSummarizer()
	w, err := NewWriter(dir, 128, s)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetSink(w)
	for _, e := range setup {
		tr.Emit(e.Core, e.Cycle, e.Kind, e.Addr, e.Arg)
	}
	tr.Reset() // measured-region boundary: everything so far is setup
	measured := randEvents(rng, 300, 2)
	for _, e := range measured {
		tr.Emit(e.Core, e.Cycle, e.Kind, e.Addr, e.Arg)
	}
	tr.Flush()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	d, _ := Open(dir)
	got, st, err := d.Events()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, measured) {
		t.Fatalf("stream holds %d events after reset, want the %d measured ones", len(got), len(measured))
	}
	want := trace.Summarize(measured, 0)
	if sum := s.Summary(st.Events, 0); sum != want {
		t.Fatalf("live summarizer not reset: %+v want %+v", sum, want)
	}
}

func TestLiveConsumersMatchOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	evs := randEvents(rng, 3000, 4)
	dir := t.TempDir()
	s := NewSummarizer()
	z := NewSanitize()
	buildStream(t, dir, evs, 64, 256, s, z)
	if got, want := s.Summary(len(evs), 0), trace.Summarize(evs, 0); got != want {
		t.Fatalf("live summary %+v, want %+v", got, want)
	}
	got, want := z.Report(0), trace.Sanitize(evs, 0)
	sortViolations(got.Violations)
	sortViolations(want.Violations)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("live sanitize report differs from in-memory")
	}
}

func TestFollowCompletedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	evs := randEvents(rng, 900, 2)
	dir := t.TempDir()
	buildStream(t, dir, evs, 64, 256)
	d, _ := Open(dir)
	var got []trace.Event
	st, err := d.Follow(func(e trace.Event) { got = append(got, e) }, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Closed || !reflect.DeepEqual(got, evs) {
		t.Fatalf("follow delivered %d events (closed=%v), want %d", len(got), st.Closed, len(evs))
	}
}
