package trace_test

import (
	"fmt"
	"testing"

	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/trace"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestSanitizeRealRuns replays sanitizer-masked traces of real benchmark
// executions and requires them clean: the simulator must actually obey
// the persist-ordering rules the sanitizer encodes, across log modes,
// schemes with and without lazy persistency, and core counts.
func TestSanitizeRealRuns(t *testing.T) {
	cases := []struct {
		scheme string
		cores  int
		window int
	}{
		{"FG", 1, 0},
		{"EDE", 1, 0},
		{"SLPMT", 1, 0},
		{"SLPMT", 2, 0},
		{"SLPMT-redo", 1, 0},
		{"SLPMT-redo", 2, 0},
		// Group commit: the epoch-aware rules (rule 5) replace the
		// per-transaction marker ordering for committed-in-window txs.
		{"SLPMT", 1, 4},
		{"SLPMT", 2, 16},
		{"SLPMT-redo", 1, 4},
		{"SLPMT-redo", 2, 16},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%dc-w%d", tc.scheme, tc.cores, tc.window), func(t *testing.T) {
			tr := trace.New(trace.DefaultCapacity)
			tr.SetMask(trace.SanitizeMask())
			bench.Run(bench.RunConfig{
				Scheme:       tc.scheme,
				Workload:     "hashtable",
				N:            300,
				Cores:        tc.cores,
				CommitWindow: tc.window,
				Trace:        tr,
			})
			rep := trace.Sanitize(tr.Events(), tr.Dropped())
			if rep.Truncated {
				t.Fatalf("trace ring overflowed (%d dropped); enlarge the capacity", tr.Dropped())
			}
			if rep.Transactions == 0 {
				t.Fatal("no transactions replayed; emit sites missing?")
			}
			if !rep.Clean() {
				max := len(rep.Violations)
				if max > 10 {
					max = 10
				}
				t.Fatalf("%d persist-order violations, first %d: %v",
					rep.Total, max, rep.Violations[:max])
			}
		})
	}
}
