package trace

import "testing"

func TestSummarizePairsSpansPerCore(t *testing.T) {
	evs := []Event{
		{Cycle: 0, Kind: KTxBegin, Core: 0, Arg: 1},
		{Cycle: 5, Kind: KTxBegin, Core: 1, Arg: 2},
		{Cycle: 100, Kind: KTxCommit, Core: 0, Arg: 1}, // 100 cycles
		{Cycle: 305, Kind: KTxCommit, Core: 1, Arg: 2}, // 300 cycles
		{Cycle: 400, Kind: KTxBegin, Core: 0, Arg: 3},
		{Cycle: 450, Kind: KTxAbort, Core: 0, Arg: 3}, // aborts don't count
		{Cycle: 500, Kind: KLazyDrainStart, Core: 0, Arg: 1},
		{Cycle: 550, Kind: KLazyDrainEnd, Core: 0, Arg: 1}, // 50 cycles
	}
	s := Summarize(evs, 7)
	if s.Commits != 2 {
		t.Fatalf("Commits = %d, want 2", s.Commits)
	}
	if s.CommitP50 != 100 || s.CommitP99 != 300 {
		t.Fatalf("commit percentiles = %d/%d, want 100/300", s.CommitP50, s.CommitP99)
	}
	if s.LazyDrains != 1 || s.LazyP50 != 50 {
		t.Fatalf("lazy = %d drains p50=%d, want 1/50", s.LazyDrains, s.LazyP50)
	}
	if s.Dropped != 7 || s.Events != len(evs) {
		t.Fatalf("bookkeeping: dropped=%d events=%d", s.Dropped, s.Events)
	}
}

func TestPercentilesNearestRank(t *testing.T) {
	xs := make([]uint64, 100)
	for i := range xs {
		xs[i] = uint64(i + 1) // 1..100
	}
	p50, p95, p99 := Percentiles(xs)
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Fatalf("percentiles = %d/%d/%d", p50, p95, p99)
	}
	if a, b, c := Percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty sample must yield zeros")
	}
}

func TestBucketWPQ(t *testing.T) {
	var evs []Event
	// Occupancy ramps 64..640 over cycles 0..900, one stall at 450.
	for i := 0; i < 10; i++ {
		evs = append(evs, Event{Cycle: uint64(i * 100), Kind: KWPQEnqueue, Arg: uint64(64 * (i + 1))})
	}
	evs = append(evs, Event{Cycle: 450, Kind: KWPQStall, Arg: 33})
	evs = append(evs, Event{Cycle: 890, Kind: KWPQDrain, Arg: 0})
	s := BucketWPQ(evs, 2)
	if s == nil || len(s.Buckets) != 2 {
		t.Fatalf("series = %+v", s)
	}
	b0, b1 := s.Buckets[0], s.Buckets[1]
	if b0.OccMax != 64*5 {
		t.Fatalf("bucket 0 occ.max = %d", b0.OccMax)
	}
	if b0.StallCycles != 33 || b1.StallCycles != 0 {
		t.Fatalf("stall attribution: %d/%d", b0.StallCycles, b1.StallCycles)
	}
	if b1.OccMax != 640 || b1.Drains != 1 {
		t.Fatalf("bucket 1: %+v", b1)
	}
	if b0.Enqueues+b1.Enqueues != 10 {
		t.Fatalf("enqueue total = %d", b0.Enqueues+b1.Enqueues)
	}
	if BucketWPQ([]Event{{Kind: KStore}}, 4) != nil {
		t.Fatal("no WPQ events must yield a nil series")
	}
	if s.String() == "" {
		t.Fatal("series table must render")
	}
}
