package trace

import "testing"

// The disabled-tracer path is on the simulator's hottest loops (every
// store, cache access, and persist), so its cost is contractual: zero
// allocations and on the order of a nanosecond per call.

func TestDisabledPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(0, 123, KStore, 456, 8)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %v/op, want 0", n)
	}
	masked := New(16)
	masked.SetMask(Mask(KTxCommit))
	if n := testing.AllocsPerRun(1000, func() {
		masked.Emit(0, 123, KStore, 456, 8)
	}); n != 0 {
		t.Fatalf("masked Emit allocates %v/op, want 0", n)
	}
}

func TestEnabledPathAllocatesNothing(t *testing.T) {
	tr := New(1 << 10)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(0, 123, KStore, 456, 8)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %v/op, want 0 (ring is preallocated)", n)
	}
}

// BenchmarkEmitDisabled measures the nil-receiver fast path; expect
// sub-nanosecond per op and 0 B/op.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, uint64(i), KStore, 0, 8)
	}
}

// BenchmarkEmitMasked measures the mask-rejected path of a live tracer.
func BenchmarkEmitMasked(b *testing.B) {
	tr := New(1 << 10)
	tr.SetMask(Mask(KTxCommit))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, uint64(i), KStore, 0, 8)
	}
}

// BenchmarkEmitEnabled measures a recording emit into the ring.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(0, uint64(i), KStore, 0, 8)
	}
}
