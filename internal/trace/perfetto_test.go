package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodePerfetto unmarshals an exported document for schema checks.
func decodePerfetto(t *testing.T, data []byte) (events []map[string]any) {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	raw, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatal("document missing traceEvents array")
	}
	for i, r := range raw {
		m, ok := r.(map[string]any)
		if !ok {
			t.Fatalf("traceEvents[%d] is not an object", i)
		}
		events = append(events, m)
	}
	return events
}

func TestPerfettoSchema(t *testing.T) {
	evs := []Event{
		{Cycle: 0, Kind: KTxBegin, Core: 0, Arg: 1},
		{Cycle: 10, Kind: KStore, Core: 0, Addr: 0x1000, Arg: 8},
		{Cycle: 20, Kind: KCommitStart, Core: 0, Arg: 1},
		{Cycle: 30, Kind: KWPQEnqueue, Core: 0, Addr: 0x1000, Arg: 64},
		{Cycle: 40, Kind: KTxCommit, Core: 0, Arg: 1},
		{Cycle: 15, Kind: KTxBegin, Core: 1, Arg: 2},
		{Cycle: 45, Kind: KWPQDrain, Core: 1, Arg: 0},
		{Cycle: 50, Kind: KTxCommit, Core: 1, Arg: 2},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, evs, PerfettoOptions{}); err != nil {
		t.Fatal(err)
	}
	out := decodePerfetto(t, buf.Bytes())

	threads := map[float64]string{}
	counterSamples := 0
	txSpans := 0
	for _, m := range out {
		ph, _ := m["ph"].(string)
		switch ph {
		case "M":
			if m["name"] == "thread_name" {
				args := m["args"].(map[string]any)
				threads[m["tid"].(float64)] = args["name"].(string)
			}
		case "C":
			if m["name"] != wpqTrack {
				t.Errorf("unexpected counter track %v", m["name"])
			}
			args := m["args"].(map[string]any)
			if _, ok := args["bytes"]; !ok {
				t.Error("counter sample missing bytes arg")
			}
			counterSamples++
		case "X":
			if m["cat"] == "tx" {
				txSpans++
			}
			if _, ok := m["ts"].(float64); !ok {
				t.Error("span missing ts")
			}
		}
	}
	if threads[1] != "core 0" || threads[2] != "core 1" {
		t.Fatalf("per-core tracks missing: %v", threads)
	}
	if counterSamples != 2 {
		t.Fatalf("WPQ counter samples = %d, want 2", counterSamples)
	}
	// One tx span per core plus one commit sub-span (core 0).
	if txSpans != 3 {
		t.Fatalf("tx spans = %d, want 3", txSpans)
	}
}

func TestPerfettoTimeConversion(t *testing.T) {
	evs := []Event{
		{Cycle: 0, Kind: KTxBegin, Core: 0, Arg: 1},
		{Cycle: 4000, Kind: KTxCommit, Core: 0, Arg: 1},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, evs, PerfettoOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, m := range decodePerfetto(t, buf.Bytes()) {
		if m["ph"] == "X" && m["cat"] == "tx" {
			// 4000 cycles at 2 GHz = 2 µs.
			if dur := m["dur"].(float64); dur != 2 {
				t.Fatalf("dur = %v µs, want 2", dur)
			}
			return
		}
	}
	t.Fatal("no tx span exported")
}

func TestPerfettoClosesTruncatedSpans(t *testing.T) {
	evs := []Event{
		{Cycle: 100, Kind: KTxBegin, Core: 0, Arg: 9},
		{Cycle: 200, Kind: KStore, Core: 0, Addr: 1, Arg: 8},
	}
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, evs, PerfettoOptions{}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range decodePerfetto(t, buf.Bytes()) {
		if m["ph"] == "X" {
			args := m["args"].(map[string]any)
			if args["truncated"] == true {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("orphaned tx begin must close as a truncated span")
	}
}
