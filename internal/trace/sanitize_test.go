package trace

import (
	"strings"
	"testing"
)

// ev builds one event; tests assemble streams in emission order.
func ev(core uint8, cycle uint64, kind Kind, addr, arg uint64) Event {
	return Event{Cycle: cycle, Addr: addr, Arg: arg, Kind: kind, Core: core}
}

func wantClean(t *testing.T, rep *Report) {
	t.Helper()
	if !rep.Clean() {
		t.Fatalf("expected clean report, got %d violations: %v", rep.Total, rep.Violations)
	}
}

func wantViolation(t *testing.T, rep *Report, rule, detail string) {
	t.Helper()
	if rep.Total != 1 {
		t.Fatalf("expected exactly 1 violation, got %d: %v", rep.Total, rep.Violations)
	}
	v := rep.Violations[0]
	if v.Rule != rule {
		t.Fatalf("expected rule %q, got %q (%s)", rule, v.Rule, v)
	}
	if detail != "" && !strings.Contains(v.Detail, detail) {
		t.Fatalf("expected detail containing %q, got %q", detail, v.Detail)
	}
}

// cleanUndoTx is a minimal well-ordered undo transaction on core 0:
// store -> log record persisted -> sync -> data line persists -> marker.
func cleanUndoTx() []Event {
	return []Event{
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 30, KCommitStart, 0, 1),
		ev(0, 31, KLogSync, 0x8000, 80),
		ev(0, 40, KWPQEnqueue, 0x1000, 64),
		ev(0, 45, KCommitMarker, 0, 1),
		ev(0, 50, KTxCommit, 0, 1),
	}
}

func TestSanitizeCleanUndoCommit(t *testing.T) {
	rep := Sanitize(cleanUndoTx(), 0)
	wantClean(t, rep)
	if rep.Transactions != 1 || rep.Aborts != 0 {
		t.Fatalf("expected 1 commit / 0 aborts, got %d / %d", rep.Transactions, rep.Aborts)
	}
	if rep.Truncated {
		t.Fatal("unexpected truncation flag")
	}
}

func TestSanitizeLogBeforeData(t *testing.T) {
	// The data line enters the WPQ before any sync covers its record.
	rep := Sanitize([]Event{
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 30, KWPQEnqueue, 0x1000, 64), // no KLogSync yet
		ev(0, 31, KLogSync, 0x8000, 80),
		ev(0, 40, KCommitMarker, 0, 1),
		ev(0, 50, KTxCommit, 0, 1),
	}, 0)
	wantViolation(t, rep, "log-before-data", "beyond the durable watermark")
}

func TestSanitizeMarkerBeforeLogSync(t *testing.T) {
	// The commit marker is written while records are beyond the watermark.
	rep := Sanitize([]Event{
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 40, KCommitMarker, 0, 1), // no KLogSync before the marker
		ev(0, 50, KTxCommit, 0, 1),
	}, 0)
	wantViolation(t, rep, "marker-order", "beyond the durable watermark")
}

func TestSanitizeUndoDataAfterMarker(t *testing.T) {
	// Undo mode: a write-set line persists after the commit marker.
	rep := Sanitize([]Event{
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 31, KLogSync, 0x8000, 80),
		ev(0, 45, KCommitMarker, 0, 1),
		ev(0, 46, KWPQEnqueue, 0x1000, 64), // Figure 4: marker must be last
		ev(0, 50, KTxCommit, 0, 1),
	}, 0)
	wantViolation(t, rep, "marker-order", "after the commit marker")
}

func TestSanitizeRedoLoggedBeforeMarker(t *testing.T) {
	// Redo mode (mode learned from tx 1's marker): tx 2 persists a
	// logged line before its commit marker.
	evs := []Event{
		// tx 1: clean redo commit establishes lastMode = redo.
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 31, KLogSync, 0x8000, 80),
		ev(0, 45, KCommitMarker, 1, 1),
		ev(0, 46, KWPQEnqueue, 0x1000, 64), // logged data after marker: correct for redo
		ev(0, 50, KTxCommit, 0, 1),
		// tx 2: logged line persists before the marker.
		ev(0, 60, KTxBegin, 0, 2),
		ev(0, 70, KStore, 0x2008, 8),
		ev(0, 71, KLogAppend, 0x2008, 8),
		ev(0, 72, KLogPersist, 0x2008, 80),
		ev(0, 73, KLogSync, 0x8000, 80),
		ev(0, 74, KWPQEnqueue, 0x2000, 128), // before the marker: violation
		ev(0, 80, KCommitMarker, 1, 2),
		ev(0, 90, KTxCommit, 0, 2),
	}
	rep := Sanitize(evs, 0)
	wantViolation(t, rep, "marker-order", "before the commit marker")
}

func TestSanitizeAbortDropsTxViolations(t *testing.T) {
	// Same mis-ordered stream as TestSanitizeLogBeforeData, but the
	// transaction aborts: the abort path legitimately rewrites logged
	// data outside the commit ordering, so buffered violations drop.
	rep := Sanitize([]Event{
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 30, KWPQEnqueue, 0x1000, 64),
		ev(0, 50, KTxAbort, 0, 1),
	}, 0)
	wantClean(t, rep)
	if rep.Aborts != 1 {
		t.Fatalf("expected 1 abort, got %d", rep.Aborts)
	}
}

func TestSanitizeWPQDrainRegression(t *testing.T) {
	// Two drains in one batch with retirement cycles going backwards.
	rep := Sanitize([]Event{
		ev(0, 100, KWPQDrain, 0, 64),
		ev(0, 90, KWPQDrain, 0, 0),
	}, 0)
	wantViolation(t, rep, "wpq-fifo", "same batch")
}

func TestSanitizeWPQDrainSizeMismatch(t *testing.T) {
	rep := Sanitize([]Event{
		ev(0, 10, KWPQEnqueue, 0x1000, 64),  // baseline lock-on
		ev(0, 20, KWPQEnqueue, 0x2000, 128), // outstanding: 64
		ev(0, 30, KWPQDrain, 0, 64),         // matches, core synced
		ev(0, 40, KWPQEnqueue, 0x3000, 128), // outstanding: 64
		ev(0, 50, KWPQDrain, 0, 96),         // 32 bytes never enqueued
	}, 0)
	wantViolation(t, rep, "wpq-fifo", "no matching outstanding enqueue")
}

func TestSanitizeWPQEnqueueNoRaise(t *testing.T) {
	rep := Sanitize([]Event{
		ev(0, 10, KWPQEnqueue, 0x1000, 64),
		ev(0, 20, KWPQEnqueue, 0x2000, 64), // occupancy did not grow
	}, 0)
	wantViolation(t, rep, "wpq-fifo", "did not raise")
}

func TestSanitizeLazyConflict(t *testing.T) {
	base := []Event{
		// Core 0 commits with line 0x1000 left volatile (retained).
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStoreT, 0x1000, 8),
		ev(0, 30, KCommitStart, 0, 1),
		ev(0, 35, KLazyDefer, 0x1000, 1),
		ev(0, 40, KTxCommit, 0, 1),
		// Core 1 stores to the retained line.
		ev(1, 50, KStore, 0x1000, 8),
	}
	// Violating stream: core 1 proceeds without core 0 draining.
	bad := append(append([]Event{}, base...),
		ev(1, 60, KStore, 0x2000, 8),
	)
	wantViolation(t, Sanitize(bad, 0), "lazy-conflict", "still volatile")

	// Clean stream: the conflict forces core 0's drain before core 1's
	// next program event (as the engine does, synchronously).
	good := append(append([]Event{}, base...),
		ev(0, 55, KLazyDrainStart, 0, 1),
		ev(0, 56, KWPQEnqueue, 0x1000, 64),
		ev(0, 58, KLazyDrainEnd, 0, 1),
		ev(1, 60, KStore, 0x2000, 8),
	)
	wantClean(t, Sanitize(good, 0))
}

// groupedTxs is two grouped commits (no per-transaction marker or sync)
// on core 0 — the open-epoch prefix shared by the epoch tests.
func groupedTxs() []Event {
	return []Event{
		ev(0, 10, KTxBegin, 0, 1),
		ev(0, 20, KStore, 0x1008, 8),
		ev(0, 21, KLogAppend, 0x1008, 8),
		ev(0, 22, KLogPersist, 0x1008, 80),
		ev(0, 30, KTxCommit, 0, 1), // no marker: joins the epoch
		ev(0, 40, KTxBegin, 0, 2),
		ev(0, 50, KStore, 0x2008, 8),
		ev(0, 51, KLogAppend, 0x2008, 8),
		ev(0, 52, KLogPersist, 0x2008, 120),
		ev(0, 60, KTxCommit, 0, 2),
	}
}

func TestSanitizeEpochCleanGroupCommit(t *testing.T) {
	// Well-ordered epoch close: sync covering every record, then the
	// marker, then the data persists, then the close event.
	evs := append(groupedTxs(),
		ev(0, 70, KLogSync, 0x8000, 120),
		ev(0, 71, KCommitMarker, 0, 2),
		ev(0, 72, KWPQEnqueue, 0x1000, 64),
		ev(0, 73, KWPQEnqueue, 0x2000, 128),
		ev(0, 74, KEpochClose, 0, 1),
	)
	rep := Sanitize(evs, 0)
	wantClean(t, rep)
	if rep.Transactions != 2 {
		t.Fatalf("expected 2 commits, got %d", rep.Transactions)
	}
}

func TestSanitizeEpochCloseBeyondWatermark(t *testing.T) {
	// The epoch closes while tx 2's record (end offset 120) is beyond
	// the synced watermark (80): recovery could tear the epoch.
	evs := append(groupedTxs(),
		ev(0, 70, KLogSync, 0x8000, 80), // covers tx 1 only
		ev(0, 71, KCommitMarker, 0, 2),
		ev(0, 74, KEpochClose, 0, 1),
	)
	wantViolation(t, Sanitize(evs, 0), "epoch-close", "closed with log records")
	if v := Sanitize(evs, 0).Violations[0]; v.Seq != 1 {
		t.Fatalf("expected epoch number 1 in Seq, got %d", v.Seq)
	}
}

func TestSanitizeEpochLinePersistBeforeSync(t *testing.T) {
	// A line logged by a committed-in-window transaction persists (cache
	// eviction) before any sync covers its records — the epoch analog of
	// log-before-data, outside any running transaction.
	evs := append(groupedTxs(),
		ev(0, 70, KWPQEnqueue, 0x1000, 64), // no KLogSync yet
		ev(0, 75, KLogSync, 0x8000, 120),
		ev(0, 76, KEpochClose, 0, 1),
	)
	wantViolation(t, Sanitize(evs, 0), "epoch-close", "open-epoch log records")
}

func TestSanitizeEpochCloseClearsState(t *testing.T) {
	// After a clean close the epoch obligation is gone: the same lines
	// persisting again (next epoch, new generation) raise nothing.
	evs := append(groupedTxs(),
		ev(0, 70, KLogSync, 0x8000, 120),
		ev(0, 71, KCommitMarker, 0, 2),
		ev(0, 74, KEpochClose, 0, 1),
		// next generation: the log region was reset, offsets restart.
		ev(0, 80, KTxBegin, 0, 3),
		ev(0, 81, KStore, 0x1008, 8),
		ev(0, 82, KLogAppend, 0x1008, 8),
		ev(0, 83, KLogPersist, 0x1008, 80),
		ev(0, 90, KTxCommit, 0, 3),
		ev(0, 91, KLogSync, 0x8000, 80),
		ev(0, 92, KCommitMarker, 0, 3),
		ev(0, 93, KWPQEnqueue, 0x1000, 64),
		ev(0, 94, KEpochClose, 0, 2),
	)
	wantClean(t, Sanitize(evs, 0))
}

func TestSanitizeMarkerCommitContributesNoEpochState(t *testing.T) {
	// A W=1 transaction (marker of its own) leaves no epoch obligation:
	// a later spurious KEpochClose-free persist of its line is silent,
	// exactly the pre-epoch replay semantics.
	evs := append(cleanUndoTx(),
		ev(0, 60, KWPQEnqueue, 0x1000, 128), // retained-line writeback after commit
	)
	wantClean(t, Sanitize(evs, 0))
}

func TestSanitizeTruncated(t *testing.T) {
	rep := Sanitize(cleanUndoTx(), 3)
	if !rep.Truncated {
		t.Fatal("expected Truncated with dropped > 0")
	}
	wantClean(t, rep) // truncation alone is not a violation
}

func TestSanitizeViolationCap(t *testing.T) {
	evs := []Event{ev(0, 10, KWPQEnqueue, 0x1000, 64)}
	for i := 0; i < MaxViolations+50; i++ {
		evs = append(evs, ev(0, uint64(20+i), KWPQEnqueue, 0x1000, 64))
	}
	rep := Sanitize(evs, 0)
	if rep.Total != MaxViolations+50 {
		t.Fatalf("expected total %d, got %d", MaxViolations+50, rep.Total)
	}
	if len(rep.Violations) != MaxViolations {
		t.Fatalf("expected %d retained violations, got %d", MaxViolations, len(rep.Violations))
	}
}
