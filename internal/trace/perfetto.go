package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// PerfettoOptions parameterizes the Chrome/Perfetto trace_event export.
type PerfettoOptions struct {
	// CyclesPerUs converts simulated cycles to trace microseconds.
	// 0 selects 2000 (the platform's 2 GHz clock).
	CyclesPerUs float64
}

// pfEvent is one Chrome trace_event entry. Span events use Ph "X"
// (complete: ts+dur), instants "i", counters "C", metadata "M".
type pfEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// pfDoc is the top-level trace document.
type pfDoc struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// Track layout: one process for the machine; thread tid = core ID + 1
// for each core's events; the WPQ occupancy counter lives on the
// process track.
const (
	pfPid    = 1
	wpqTrack = "WPQ occupancy (bytes)"
)

// sortedCores returns the keys of a per-core span map in core order.
func sortedCores[V any](m map[uint8]V) []uint8 {
	out := make([]uint8, 0, len(m))
	for c := range m { //slpmt:determinism-ok: collected keys are sorted below
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WritePerfetto renders events as Chrome trace_event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: per-core tracks with
// transaction/commit/lazy-drain spans and instant events, plus a WPQ
// occupancy counter track reconstructed from the enqueue/drain stream.
func WritePerfetto(w io.Writer, events []Event, opts PerfettoOptions) error {
	cyclesPerUs := opts.CyclesPerUs
	if cyclesPerUs <= 0 {
		cyclesPerUs = 2000
	}
	ts := func(cycle uint64) float64 { return float64(cycle) / cyclesPerUs }

	// Sort by cycle (stable: emission order breaks ties) so span pairing
	// and the counter series are chronological.
	evs := make([]Event, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })

	doc := pfDoc{DisplayTimeUnit: "ms"}
	doc.TraceEvents = append(doc.TraceEvents, pfEvent{
		Name: "process_name", Ph: "M", Pid: pfPid,
		Args: map[string]any{"name": "slpmt machine"},
	})

	// Span pairing state, per core. Lazy-drain sections do not nest and
	// transaction/commit spans match on the sequence number; ring
	// overflow can orphan a start or an end — unmatched ends are
	// dropped, unmatched starts are closed at the last event's cycle.
	type open struct {
		cycle uint64
		arg   uint64
	}
	txOpen := map[uint8]open{}
	commitOpen := map[uint8]open{}
	lazyOpen := map[uint8]open{}
	coresSeen := map[uint8]bool{}
	lastCycle := uint64(0)

	span := func(core uint8, name, cat string, from, to uint64, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, pfEvent{
			Name: name, Cat: cat, Ph: "X",
			Ts: ts(from), Dur: ts(to) - ts(from),
			Pid: pfPid, Tid: int(core) + 1, Args: args,
		})
	}
	instant := func(e Event, name, cat string, args map[string]any) {
		doc.TraceEvents = append(doc.TraceEvents, pfEvent{
			Name: name, Cat: cat, Ph: "i", Ts: ts(e.Cycle),
			Pid: pfPid, Tid: int(e.Core) + 1, S: "t", Args: args,
		})
	}

	for _, e := range evs {
		coresSeen[e.Core] = true
		if e.Cycle > lastCycle {
			lastCycle = e.Cycle
		}
		switch e.Kind {
		case KTxBegin:
			txOpen[e.Core] = open{e.Cycle, e.Arg}
		case KCommitStart:
			commitOpen[e.Core] = open{e.Cycle, e.Arg}
		case KTxCommit, KTxAbort:
			if o, ok := commitOpen[e.Core]; ok && e.Kind == KTxCommit {
				span(e.Core, "commit", "tx", o.cycle, e.Cycle,
					map[string]any{"seq": o.arg})
			}
			delete(commitOpen, e.Core)
			if o, ok := txOpen[e.Core]; ok {
				name := fmt.Sprintf("tx %d", o.arg)
				args := map[string]any{"seq": o.arg}
				if e.Kind == KTxAbort {
					args["aborted"] = true
				}
				span(e.Core, name, "tx", o.cycle, e.Cycle, args)
				delete(txOpen, e.Core)
			}
		case KLazyDrainStart:
			lazyOpen[e.Core] = open{e.Cycle, e.Arg}
		case KLazyDrainEnd:
			if o, ok := lazyOpen[e.Core]; ok {
				span(e.Core, "lazy drain", "lazy", o.cycle, e.Cycle,
					map[string]any{"retained_txns": o.arg})
				delete(lazyOpen, e.Core)
			}
		case KStore, KStoreT, KLogAppend:
			instant(e, e.Kind.String(), "mem",
				map[string]any{"addr": e.Addr, "bytes": e.Arg})
		case KLogPersist:
			instant(e, e.Kind.String(), "log",
				map[string]any{"addr": e.Addr, "stream_off": e.Arg})
		case KLogSync:
			instant(e, e.Kind.String(), "log",
				map[string]any{"watermark": e.Arg})
		case KCommitMarker:
			mode := "undo"
			if e.Addr == 1 {
				mode = "redo"
			}
			instant(e, e.Kind.String(), "tx",
				map[string]any{"seq": e.Arg, "mode": mode})
		case KEpochClose:
			mode := "undo"
			if e.Addr == 1 {
				mode = "redo"
			}
			instant(e, e.Kind.String(), "log",
				map[string]any{"epoch": e.Arg, "mode": mode})
		case KLazyDefer:
			instant(e, e.Kind.String(), "lazy",
				map[string]any{"addr": e.Addr, "seq": e.Arg})
		case KCacheMiss, KCacheEvict:
			instant(e, e.Kind.String(), "cache",
				map[string]any{"addr": e.Addr, "level": e.Arg})
		case KCohSnoop, KCohInval, KCohDowngrade, KCohWriteback:
			instant(e, e.Kind.String(), "coh", map[string]any{"addr": e.Addr})
		case KWPQEnqueue, KWPQDrain:
			// One counter track per socket: socket 0 keeps the historical
			// track name, so single-socket documents are unchanged.
			name := wpqTrack
			if s := WPQSocket(e.Arg); s != 0 {
				name = fmt.Sprintf("%s [socket %d]", wpqTrack, s)
			}
			doc.TraceEvents = append(doc.TraceEvents, pfEvent{
				Name: name, Ph: "C", Ts: ts(e.Cycle), Pid: pfPid,
				Args: map[string]any{"bytes": WPQOcc(e.Arg)},
			})
		case KWPQStall:
			instant(e, "wpq.stall", "wpq",
				map[string]any{"addr": e.Addr, "stall_cycles": e.Arg})
		case KWPQRemote:
			instant(e, "wpq.remote", "wpq",
				map[string]any{"addr": e.Addr, "hop_cycles": e.Arg})
		case KSigHit:
			instant(e, "sig.hit", "lazy",
				map[string]any{"addr": e.Addr, "retained_txns": e.Arg})
		case KCharge:
			instant(e, "charge", "charge",
				map[string]any{"cause": e.Addr, "cycles": e.Arg})
		}
	}
	// Close spans the ring's tail cut off, in core order so the exported
	// document is deterministic (map iteration order is not).
	for _, core := range sortedCores(txOpen) {
		o := txOpen[core]
		span(core, fmt.Sprintf("tx %d", o.arg), "tx", o.cycle, lastCycle,
			map[string]any{"seq": o.arg, "truncated": true})
	}
	for _, core := range sortedCores(lazyOpen) {
		o := lazyOpen[core]
		span(core, "lazy drain", "lazy", o.cycle, lastCycle,
			map[string]any{"retained_txns": o.arg, "truncated": true})
	}

	// Thread names, in core order for a stable document.
	cores := make([]int, 0, len(coresSeen))
	for c := range coresSeen {
		cores = append(cores, int(c))
	}
	sort.Ints(cores)
	for _, c := range cores {
		doc.TraceEvents = append(doc.TraceEvents, pfEvent{
			Name: "thread_name", Ph: "M", Pid: pfPid, Tid: c + 1,
			Args: map[string]any{"name": fmt.Sprintf("core %d", c)},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
