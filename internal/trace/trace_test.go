package trace

import (
	"bytes"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, 1, KTxBegin, 2, 3)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must observe nothing")
	}
	tr.Reset() // must not panic
}

func TestRingOrderAndOverflow(t *testing.T) {
	tr := New(4)
	for i := 0; i < 6; i++ {
		tr.Emit(1, uint64(i), KStore, uint64(100+i), 8)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	evs := tr.Events()
	for i, e := range evs {
		want := uint64(i + 2) // oldest two overwritten
		if e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d", i, e.Cycle, want)
		}
	}
}

func TestMaskFiltersKinds(t *testing.T) {
	tr := New(8)
	tr.SetMask(Mask(KTxCommit))
	tr.Emit(0, 1, KStore, 0, 0)
	tr.Emit(0, 2, KTxCommit, 0, 7)
	tr.Emit(0, 3, KCacheMiss, 0, 2)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Kind != KTxCommit || evs[0].Arg != 7 {
		t.Fatalf("mask leaked events: %+v", evs)
	}
}

func TestMetricsMaskCoversReducerKinds(t *testing.T) {
	m := MetricsMask()
	for _, k := range []Kind{KTxBegin, KCommitStart, KTxCommit, KTxAbort,
		KLazyDrainStart, KLazyDrainEnd, KWPQEnqueue, KWPQDrain, KWPQStall} {
		if m&(1<<uint(k)) == 0 {
			t.Errorf("metrics mask misses %v", k)
		}
	}
	for _, k := range []Kind{KStore, KCacheMiss, KCohSnoop} {
		if m&(1<<uint(k)) != 0 {
			t.Errorf("metrics mask should drop high-rate kind %v", k)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := New(128)
	for i := 0; i < 100; i++ {
		tr.Emit(uint8(i%3), uint64(i*17), Kind(1+i%int(numKinds-1)), uint64(i)<<20, uint64(i*i))
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := KNone; k < numKinds; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no display name", k)
		}
	}
}
