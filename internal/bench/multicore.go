package bench

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/workloads"
	"github.com/persistmem/slpmt/internal/ycsb"
)

// RunMulti executes one benchmark on a multi-core cluster: the
// structure is built once (on core 0), the deterministic key stream is
// sharded round-robin across the cores, and the per-core insert
// streams run under the cluster's deterministic interleaver. The
// measured region starts at a clock barrier after setup and ends when
// the last core finishes its shard plus the final lazy drain, so
// Cycles is the parallel makespan; Counters is the merged per-core
// delta. Results are exactly reproducible for a given (config, seed).
func RunMulti(cfg RunConfig) Result {
	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	w := workloads.MustNew(cfg.Workload)
	var mc machine.Config
	mc.PM.Banks = cfg.Banks
	mc.PM.WPQBytes = cfg.WPQBytes
	tr := runTracer(cfg)
	if cfg.StreamDir != "" && tr == nil {
		tr = trace.New(StreamRingEvents)
	}
	var prof *profile.Profile
	if cfg.Profile || cfg.CritPath {
		prof = profile.New(cores)
	}
	cl := slpmt.NewCluster(cores, slpmt.Options{
		Scheme:             cfg.Scheme,
		Machine:            mc,
		PMWriteNanos:       cfg.PMWriteNanos,
		ComputeCyclesPerOp: w.ComputeCost(),
		CommitWindow:       cfg.CommitWindow,
		Sockets:            cfg.Sockets,
		RemoteNanos:        cfg.RemoteNanos,
		Trace:              tr,
		Profile:            prof,
	})
	if err := w.Setup(cl.Use(0)); err != nil {
		panic(fmt.Sprintf("bench: setup %s: %v", cfg.Workload, err))
	}
	// Seal any epoch setup left open so the measured region starts at a
	// durability boundary (setup runs on core 0 only).
	cl.Use(0).FinishEpoch()

	load := ycsb.Load{N: cfg.N, ValueSize: cfg.ValueSize, Seed: cfg.Seed}
	keys := load.Keys()
	start := cl.Stats()
	startClk := cl.SyncClocks()
	// The occupancy window always restarts at the measured region on a
	// multi-core run: the parallel phase's WPQ pressure is the scaling
	// story, so the gauges are reported whether or not a tracer is on.
	// The topology surface covers every socket's queue (and delegates
	// to the one device on single-socket machines).
	cl.Plat.Topo.ResetOccupancy(startClk)
	var sw *streamRun
	if tr != nil {
		tr.Reset()
		if cfg.StreamDir != "" {
			// Attach the binlog sink after the boundary so the stream
			// holds exactly the measured region.
			sw = attachStream(cfg, tr)
		}
	}
	if prof != nil {
		prof.Reset()
	}

	// Shard i runs keys[i], keys[i+cores], ... — every core sees an
	// equal slice of the same deterministic stream.
	next := make([]int, cores)
	for i := range next {
		next[i] = i
	}
	cl.Interleave(func(core int, sys *slpmt.System) bool {
		j := next[core]
		if j >= len(keys) {
			return false
		}
		next[core] = j + cores
		key := keys[j]
		if err := w.Insert(sys, key, load.Value(key)); err != nil {
			panic(fmt.Sprintf("bench: %s/%s insert: %v", cfg.Scheme, cfg.Workload, err))
		}
		return next[core] < len(keys)
	})
	cl.DrainLazy()

	merged := cl.Stats()
	res := Result{
		RunConfig: cfg,
		Cycles:    cl.MaxClk() - startClk,
		Counters:  merged.Delta(start),
	}
	cl.Plat.Topo.QueueDepth(cl.MaxClk())
	res.Counters.WPQOccMaxBytes, res.Counters.WPQOccAvgBytes = cl.Plat.Topo.OccupancyStats()
	if tr != nil {
		if sw != nil {
			sw.finish(tr)
			reduceStream(&res, tr, sw, cl.Plat.Topo)
		} else {
			reduceTrace(&res, tr, cl.Plat.Topo)
		}
		if cfg.CritPath {
			res.CritPath = critAnalyze(tr, sw, res.Cycles)
		}
	}
	if cl.Sockets() > 1 {
		res.PerSocket = &SocketBreakdown{Stats: cl.SocketStats()}
	}
	if prof != nil {
		// Snapshot before verification advances the clocks further. Each
		// core's total is its own clock advance since the barrier (the
		// cores finish at different clocks; Cycles is the max).
		totals := make([]uint64, cores)
		for i := range totals {
			totals[i] = cl.Plat.Core(i).Clk - startClk
		}
		res.Causes = prof.Breakdown(totals)
	}
	if cfg.Verify {
		res.VerifyErr = w.Check(cl.Use(0), load.Oracle())
	}
	if c := collector.Load(); c != nil {
		c.Add(res)
	}
	return res
}
