package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/trace/stream"
	"github.com/persistmem/slpmt/internal/workloads"
	"github.com/persistmem/slpmt/internal/ycsb"
)

// A streamed run is observation-only: same cycles and counters as an
// unstreamed run of the same config, with zero dropped events, and its
// streamed Summary/WPQ reductions must equal the in-memory ones
// computed over the binlog's events. Covers single- and multi-core.
func TestStreamedRunMatchesBuffered(t *testing.T) {
	for _, cores := range []int{1, 2} {
		base := RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 120, ValueSize: 64, Cores: cores}
		plain := Run(base)

		streamed := base
		streamed.StreamDir = t.TempDir()
		streamed.StreamInterval = 1 << 12
		got := Run(streamed)

		if got.Cycles != plain.Cycles {
			t.Fatalf("cores=%d: streaming changed timing: %d != %d cycles", cores, got.Cycles, plain.Cycles)
		}
		gc, pc := got.Counters, plain.Counters
		gc.WPQOccMaxBytes, gc.WPQOccAvgBytes = 0, 0
		pc.WPQOccMaxBytes, pc.WPQOccAvgBytes = 0, 0
		if gc != pc {
			t.Fatalf("cores=%d: streaming changed counters:\nstreamed:\n%s\nplain:\n%s", cores, gc.String(), pc.String())
		}
		if got.Summary.Dropped != 0 {
			t.Fatalf("cores=%d: streamed run dropped %d events", cores, got.Summary.Dropped)
		}

		// The streamed reductions must equal the in-memory analyses over
		// the binlog's own events.
		d, err := stream.Open(streamed.StreamDir)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Closed() {
			t.Fatalf("cores=%d: stream not closed", cores)
		}
		evs, st, err := d.Events()
		if err != nil {
			t.Fatal(err)
		}
		if st.Torn != nil {
			t.Fatalf("cores=%d: stream torn: %v", cores, st.Torn)
		}
		if want := trace.Summarize(evs, 0); got.Summary != want {
			t.Fatalf("cores=%d: streamed summary %+v, want %+v", cores, got.Summary, want)
		}
		if want := trace.BucketWPQ(evs, 16); !reflect.DeepEqual(got.WPQ, want) {
			t.Fatalf("cores=%d: streamed WPQ series differs from in-memory", cores)
		}
		zs := stream.NewSanitize()
		if _, err := stream.Feed(d, zs); err != nil {
			t.Fatal(err)
		}
		if want := trace.Sanitize(evs, 0); !reflect.DeepEqual(zs.Report(0), want) {
			t.Fatalf("cores=%d: streamed sanitize differs from in-memory", cores)
		}

		// Telemetry: interval series present, in order, with the NDJSON
		// file mirroring it line for line.
		if got.Intervals == nil || len(got.Intervals.Intervals) == 0 {
			t.Fatalf("cores=%d: streamed run carried no telemetry intervals", cores)
		}
		var commits uint64
		for i, iv := range got.Intervals.Intervals {
			if i > 0 && iv.Index <= got.Intervals.Intervals[i-1].Index {
				t.Fatalf("cores=%d: telemetry intervals out of order", cores)
			}
			commits += iv.Commits
		}
		if commits != uint64(got.Summary.Commits) {
			t.Fatalf("cores=%d: telemetry counted %d commits, summary %d", cores, commits, got.Summary.Commits)
		}
		nd, err := os.ReadFile(filepath.Join(streamed.StreamDir, TelemetryFile))
		if err != nil {
			t.Fatal(err)
		}
		lines := 0
		for _, b := range nd {
			if b == '\n' {
				lines++
			}
		}
		if lines != len(got.Intervals.Intervals) {
			t.Fatalf("cores=%d: %d NDJSON lines for %d intervals", cores, lines, len(got.Intervals.Intervals))
		}
	}
}

// TestStreamSoakMillionTransactions is the bounded-memory soak behind
// EXPERIMENTS.md ("Streaming"): one million update transactions over a
// fixed 1000-key hashtable stream through the SLPSEG01 binlog with
// zero dropped events, every commit accounted for by the streamed
// summarizer, and host heap staying flat (O(spill ring + segment
// buffer), not O(events)). It takes minutes of host time and tens of
// millions of events, so it only runs with SLPMT_STREAM_SOAK=1.
func TestStreamSoakMillionTransactions(t *testing.T) {
	if os.Getenv("SLPMT_STREAM_SOAK") == "" {
		t.Skip("set SLPMT_STREAM_SOAK=1 to run the 1M-transaction streaming soak (~minutes)")
	}
	const keys = 1000
	const txns = 1_000_000

	w := workloads.MustNew("hashtable")
	m, ok := w.(workloads.Mutable)
	if !ok {
		t.Fatal("hashtable is not Mutable")
	}
	tr := trace.New(StreamRingEvents)
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT", ComputeCyclesPerOp: w.ComputeCost(), Trace: tr})
	if err := w.Setup(sys); err != nil {
		t.Fatal(err)
	}
	load := ycsb.Load{N: keys, ValueSize: 64}
	ks := load.Keys()
	for _, k := range ks {
		if err := w.Insert(sys, k, load.Value(k)); err != nil {
			t.Fatal(err)
		}
	}
	sys.FinishEpoch()
	tr.Reset()

	dir := t.TempDir()
	nd, err := os.Create(filepath.Join(dir, TelemetryFile))
	if err != nil {
		t.Fatal(err)
	}
	tele := stream.NewTelemetry(1<<22, nd)
	wtr, err := stream.NewWriter(dir, 0, tele)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetSink(wtr)

	var ms runtime.MemStats
	var peakHeap uint64
	for i := 0; i < txns; i++ {
		k := ks[i%keys]
		if err := m.UpdateValue(sys, k, load.Value(ks[(i+7)%keys])); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if i%100_000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peakHeap {
				peakHeap = ms.HeapAlloc
			}
		}
	}
	sys.DrainLazy()
	tr.Flush()
	wtr.SetDropped(tr.Dropped())
	if err := wtr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	tr.SetSink(nil)

	if tr.Dropped() != 0 {
		t.Fatalf("streamed soak dropped %d events", tr.Dropped())
	}
	d, err := stream.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Closed() {
		t.Fatal("stream not closed")
	}
	summ := stream.NewSummarizer()
	st, err := stream.Feed(d, summ)
	if err != nil {
		t.Fatal(err)
	}
	if st.Torn != nil {
		t.Fatalf("stream torn: %v", st.Torn)
	}
	sum := summ.Summary(st.Events, tr.Dropped())
	if sum.Commits != txns {
		t.Fatalf("streamed summarizer counted %d commits, want %d", sum.Commits, txns)
	}
	var binlog int64
	for _, name := range d.Segments() {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		binlog += fi.Size()
	}
	t.Logf("soak: %d txns, %d events over %d segments (%d MB binlog), peak host heap %d MB, %d telemetry intervals",
		txns, st.Events, st.Segments, binlog>>20, peakHeap>>20, len(tele.Intervals()))

	// O(segment) memory: the host heap must be nowhere near the
	// in-memory cost of the event stream (~40 bytes/event).
	if inMemory := uint64(st.Events) * 40; peakHeap > inMemory/4 {
		t.Errorf("peak heap %d MB is not O(segment) against an %d MB in-memory stream", peakHeap>>20, inMemory>>20)
	}
}

// The spill path must also compose with a profiled run: KCharge events
// stream through, and the per-interval attribution vectors telescope to
// the end-of-run breakdown.
func TestStreamedProfileTelescopes(t *testing.T) {
	cfg := RunConfig{
		Scheme: "SLPMT", Workload: "hashtable", N: 100, ValueSize: 64,
		Profile: true, StreamDir: t.TempDir(), StreamInterval: 1 << 12,
	}
	r := Run(cfg)
	if r.Causes == nil || r.Intervals == nil {
		t.Fatal("profiled streamed run missing breakdown or intervals")
	}
	want := r.Causes.ByName()
	got := map[string]uint64{}
	for _, iv := range r.Intervals.Intervals {
		for k, v := range iv.CyclesByCause {
			got[k] += v
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("interval attribution does not telescope:\ngot  %v\nwant %v", got, want)
	}
}
