package bench

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// withParallelism runs fn with the pool pinned to n workers, restoring
// the default afterwards.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	SetParallelism(n)
	defer SetParallelism(0)
	fn()
}

func TestSetParallelism(t *testing.T) {
	SetParallelism(3)
	defer SetParallelism(0)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}

func TestForEachRunsEveryJob(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		withParallelism(t, workers, func() {
			var hits [37]atomic.Int32
			if err := ForEach(len(hits), func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d: job %d ran %d times", workers, i, got)
				}
			}
		})
	}
}

func TestForEachConvertsPanicsToErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withParallelism(t, workers, func() {
			err := ForEach(5, func(i int) error {
				if i == 3 {
					panic("cell exploded")
				}
				return nil
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
			}
			if pe.Index != 3 || pe.Value != "cell exploded" || len(pe.Stack) == 0 {
				t.Errorf("workers=%d: bad PanicError: %+v", workers, pe)
			}
		})
	}
}

func TestForEachAggregatesErrorsInJobOrder(t *testing.T) {
	withParallelism(t, 4, func() {
		err := ForEach(6, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("job-%d-failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		msg := err.Error()
		// Failures from jobs 1, 3, 5 must appear in job order regardless
		// of which worker hit them first.
		i1 := strings.Index(msg, "job-1-failed")
		i3 := strings.Index(msg, "job-3-failed")
		i5 := strings.Index(msg, "job-5-failed")
		if i1 < 0 || i3 < i1 || i5 < i3 {
			t.Errorf("errors out of job order: %q", msg)
		}
	})
}

func TestForEachWorkersExplicitCount(t *testing.T) {
	var running, peak atomic.Int32
	err := ForEachWorkers(16, 2, func(i int) error {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		running.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d with 2 workers", p)
	}
}

// TestGridParallelMatchesSerial asserts the tentpole property: the
// fig8-style grid produces byte-identical Result values at any worker
// count. Counters is a flat struct of uint64s, so Results (with nil
// VerifyErr) compare with ==.
func TestGridParallelMatchesSerial(t *testing.T) {
	ss := schemes.Evaluated()
	ws := workloads.Kernels()
	base := RunConfig{N: 60, ValueSize: 32, Verify: true}

	var serial, parallel map[string]map[string]Result
	withParallelism(t, 1, func() { serial = Grid(ss, ws, base) })
	withParallelism(t, 8, func() { parallel = Grid(ss, ws, base) })

	if len(serial) != len(parallel) {
		t.Fatalf("scheme count %d vs %d", len(serial), len(parallel))
	}
	for _, s := range SortedSchemes(serial) {
		for _, w := range SortedKeys(serial[s]) {
			a, b := serial[s][w], parallel[s][w]
			if a.VerifyErr != nil || b.VerifyErr != nil {
				t.Fatalf("%s/%s verify: serial=%v parallel=%v", s, w, a.VerifyErr, b.VerifyErr)
			}
			if a != b {
				t.Errorf("%s/%s: serial and parallel results differ:\n  serial:   %+v\n  parallel: %+v", s, w, a, b)
			}
		}
	}
}

func TestRunAllMatchesSerialRuns(t *testing.T) {
	cfgs := []RunConfig{
		{Scheme: schemes.FG, Workload: "hashtable", N: 50, ValueSize: 16},
		{Scheme: schemes.SLPMT, Workload: "rbtree", N: 50, ValueSize: 16},
		{Scheme: schemes.ATOM, Workload: "heap", N: 50, ValueSize: 16},
	}
	var want []Result
	for _, cfg := range cfgs {
		want = append(want, Run(cfg))
	}
	withParallelism(t, 4, func() {
		got, err := RunAll(cfgs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cfgs {
			if got[i] != want[i] {
				t.Errorf("cfg %d: parallel %+v != serial %+v", i, got[i], want[i])
			}
		}
	})
}

func TestRunAllReportsPanickingRun(t *testing.T) {
	cfgs := []RunConfig{
		{Scheme: schemes.FG, Workload: "hashtable", N: 20, ValueSize: 16},
		{Scheme: "no-such-scheme", Workload: "hashtable", N: 20, ValueSize: 16},
	}
	withParallelism(t, 2, func() {
		res, err := RunAll(cfgs)
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 1 {
			t.Fatalf("err = %v, want *PanicError for job 1", err)
		}
		if res[0].Cycles == 0 {
			t.Error("healthy run missing from results")
		}
	})
}

func TestSortedSchemes(t *testing.T) {
	grid := map[string]map[string]Result{"SLPMT": nil, "ATOM": nil, "FG": nil}
	got := SortedSchemes(grid)
	want := []string{"ATOM", "FG", "SLPMT"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedSchemes = %v, want %v", got, want)
		}
	}
}

func TestCollectorGathersResults(t *testing.T) {
	col := &Collector{}
	SetCollector(col)
	defer SetCollector(nil)
	withParallelism(t, 4, func() {
		if _, err := RunAll([]RunConfig{
			{Scheme: schemes.FG, Workload: "hashtable", N: 20, ValueSize: 16},
			{Scheme: schemes.SLPMT, Workload: "hashtable", N: 20, ValueSize: 16},
		}); err != nil {
			t.Fatal(err)
		}
	})
	rs := col.Results()
	if len(rs) != 2 {
		t.Fatalf("collected %d results, want 2", len(rs))
	}
	for _, r := range rs {
		if r.Cycles == 0 {
			t.Error("collected an empty result")
		}
	}
}
