package bench

import (
	"testing"

	"github.com/persistmem/slpmt/internal/trace"
)

// Tracing is observation-only: a traced run must report exactly the
// cycles and counters of an untraced run of the same config. The
// occupancy gauges are the one sanctioned difference on a single core
// (they are only measured when a tracer restarts the occupancy window),
// so they are zeroed before comparing.
func TestTracedRunIsTimingInvariant(t *testing.T) {
	for _, cores := range []int{1, 2} {
		base := RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 120, ValueSize: 64, Cores: cores}
		plain := Run(base)

		traced := base
		traced.Metrics = true
		got := Run(traced)

		if got.Cycles != plain.Cycles {
			t.Fatalf("cores=%d: traced run changed timing: %d != %d cycles", cores, got.Cycles, plain.Cycles)
		}
		gc, pc := got.Counters, plain.Counters
		gc.WPQOccMaxBytes, gc.WPQOccAvgBytes = 0, 0
		pc.WPQOccMaxBytes, pc.WPQOccAvgBytes = 0, 0
		if gc != pc {
			t.Fatalf("cores=%d: traced run changed counters:\ntraced:\n%s\nplain:\n%s", cores, gc.String(), pc.String())
		}
		if got.Summary.Commits == 0 {
			t.Fatalf("cores=%d: traced run reduced no commits", cores)
		}
		if got.Summary.CommitP50 == 0 || got.Summary.CommitP99 < got.Summary.CommitP50 {
			t.Fatalf("cores=%d: implausible commit percentiles: %+v", cores, got.Summary)
		}
		if got.WPQ == nil || len(got.WPQ.Buckets) == 0 {
			t.Fatalf("cores=%d: traced run produced no WPQ series", cores)
		}
	}
}

// A caller-supplied full-detail tracer must capture the cache and
// memory kinds the metrics mask drops, and the run must populate the
// occupancy gauges.
func TestExternalTracerCapturesFullDetail(t *testing.T) {
	tr := trace.New(1 << 16)
	r := Run(RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 60, ValueSize: 64, Trace: tr})
	kinds := map[trace.Kind]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []trace.Kind{trace.KTxBegin, trace.KTxCommit, trace.KStore, trace.KCacheMiss, trace.KWPQEnqueue, trace.KWPQDrain} {
		if kinds[k] == 0 {
			t.Errorf("full trace is missing %v events", k)
		}
	}
	if r.Counters.WPQOccMaxBytes == 0 {
		t.Error("traced run must report the WPQ high-water mark")
	}
	if r.Summary.Commits == 0 {
		t.Error("summary must cover the run's commits")
	}
}
