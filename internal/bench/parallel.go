package bench

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The experiment grids are embarrassingly parallel: every cell owns a
// fully independent, deterministic machine.Machine, so fanning cells
// across goroutines changes wall-clock time and nothing else. The
// worker pool here preserves result identity exactly — same seeds, same
// per-cell machines, results keyed and ordered as the serial loops
// produced them — and converts worker panics into errors so one broken
// cell cannot take down a whole sweep.

// parallelism is the configured worker count; 0 means GOMAXPROCS.
var parallelism atomic.Int64

// SetParallelism sets the worker count used by RunAll, GridParallel and
// ForEach (and therefore every figure grid). n <= 0 restores the
// default, GOMAXPROCS.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is a worker panic converted into an error by ForEach.
type PanicError struct {
	// Index is the job index whose function panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v", e.Index, e.Value)
}

// ForEach runs fn(i) for every i in [0, n) on Parallelism() workers,
// returning after all jobs finish. Panics are recovered and aggregated
// (in job order) into the returned error, as are errors returned by fn.
// With one worker the jobs run sequentially in index order on the
// calling goroutine — the serial loops the figures used to hand-roll.
func ForEach(n int, fn func(i int) error) error {
	return ForEachWorkers(n, Parallelism(), fn)
}

// ForEachWorkers is ForEach with an explicit worker count (<= 0 means
// Parallelism()), for callers carrying their own parallelism knob.
func ForEachWorkers(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > n {
		workers = n
	}
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		var errs []error
		for i := 0; i < n; i++ {
			if err := protect(i, fn); err != nil {
				errs = append(errs, err)
			}
		}
		return joinErrors(errs)
	}
	jobs := make(chan int)
	jobErrs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//slpmt:determinism-ok: each job runs an isolated simulation; results land in jobErrs[i] and the collector sorts before rendering
		go func() {
			defer wg.Done()
			for i := range jobs {
				jobErrs[i] = protect(i, fn)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	var errs []error
	for _, err := range jobErrs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return joinErrors(errs)
}

// protect invokes fn(i), converting a panic into a *PanicError.
func protect(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// joinErrors flattens an error list (nil for empty, the error itself
// for one) into a single error preserving every message.
func joinErrors(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%d jobs failed:\n%s", len(errs), strings.Join(msgs, "\n"))
}

// RunAll executes every config on the worker pool, returning results in
// input order. A panicking run (bad scheme name, failed setup) is
// reported in the error; its Result slot is left zero.
func RunAll(cfgs []RunConfig) ([]Result, error) {
	out := make([]Result, len(cfgs))
	err := ForEach(len(cfgs), func(i int) error {
		out[i] = Run(cfgs[i])
		return nil
	})
	return out, err
}

// GridParallel runs the cartesian product of schemes × workloads on the
// worker pool. The result map is identical (same keys, same Result
// values) to what the serial Grid loop produces for the same inputs.
func GridParallel(schemeNames, workloadNames []string, base RunConfig) (map[string]map[string]Result, error) {
	cfgs := make([]RunConfig, 0, len(schemeNames)*len(workloadNames))
	for _, s := range schemeNames {
		for _, w := range workloadNames {
			cfg := base
			cfg.Scheme = s
			cfg.Workload = w
			cfgs = append(cfgs, cfg)
		}
	}
	results, err := RunAll(cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]map[string]Result, len(schemeNames))
	i := 0
	for _, s := range schemeNames {
		out[s] = make(map[string]Result, len(workloadNames))
		for _, w := range workloadNames {
			out[s][w] = results[i]
			i++
		}
	}
	return out, nil
}

// SortedSchemes returns the sorted outer keys of a grid, giving every
// renderer one deterministic iteration order regardless of how the grid
// was produced.
func SortedSchemes(grid map[string]map[string]Result) []string {
	out := make([]string, 0, len(grid))
	for s := range grid { //slpmt:determinism-ok: collected keys are sorted below
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Collector accumulates every Result produced while it is installed —
// the machine-readable feed behind slpmtbench -json. Safe for
// concurrent use by the worker pool.
type Collector struct {
	mu      sync.Mutex
	results []Result
}

// Add records one result.
func (c *Collector) Add(r Result) {
	c.mu.Lock()
	c.results = append(c.results, r)
	c.mu.Unlock()
}

// Results returns a copy of the collected results.
func (c *Collector) Results() []Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Result, len(c.results))
	copy(out, c.results)
	return out
}

// collector is the installed sink (nil = collection off).
var collector atomic.Pointer[Collector]

// SetCollector installs c as the sink every Run reports into; nil
// disables collection.
func SetCollector(c *Collector) { collector.Store(c) }
