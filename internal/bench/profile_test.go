package bench

import (
	"strings"
	"testing"

	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/schemes"
	"github.com/persistmem/slpmt/internal/trace"
)

// conservationSchemes is the matrix the issue pins: the baseline, the
// unbuffered logger, the full design, and its redo variant exercise
// every attribution path (tiered/direct sinks, undo/redo commit stages,
// lazy drains).
var conservationSchemes = []string{schemes.FG, schemes.EDE, schemes.SLPMT, schemes.SLPMTRedo}

// TestAttributionConservation asserts the profiler's core invariant:
// on every core, for every scheme, the attributed cycles sum exactly to
// the core's clock advance over the measured region — no unexplained
// residue, no double charge.
func TestAttributionConservation(t *testing.T) {
	for _, scheme := range conservationSchemes {
		for _, cores := range []int{1, 2} {
			r := Run(RunConfig{
				Scheme: scheme, Workload: "hashtable",
				N: 80, ValueSize: 48, Verify: true, Profile: true, Cores: cores,
			})
			if r.VerifyErr != nil {
				t.Fatalf("%s/%d cores: verify: %v", scheme, cores, r.VerifyErr)
			}
			if r.Causes == nil {
				t.Fatalf("%s/%d cores: no breakdown on a profiled run", scheme, cores)
			}
			if got := len(r.Causes.Cores); got != cores {
				t.Fatalf("%s/%d cores: breakdown has %d cores", scheme, cores, got)
			}
			if err := r.Causes.Conserved(); err != nil {
				t.Errorf("%s/%d cores: %v", scheme, cores, err)
			}
			// The run's makespan is the slowest core's total.
			var max uint64
			for _, cb := range r.Causes.Cores {
				if cb.Total > max {
					max = cb.Total
				}
			}
			if max != r.Cycles {
				t.Errorf("%s/%d cores: max core total %d != Cycles %d", scheme, cores, max, r.Cycles)
			}
		}
	}
}

// TestProfileObservationOnly pins the PR 3 contract extended to the
// profiler: attaching a profile changes neither cycles nor counters —
// on a plain run, and on a traced run (which additionally must see no
// new events besides the KCharge attribution stream).
func TestProfileObservationOnly(t *testing.T) {
	for _, scheme := range conservationSchemes {
		for _, cores := range []int{1, 2} {
			base := RunConfig{
				Scheme: scheme, Workload: "hashtable",
				N: 60, ValueSize: 32, Cores: cores,
			}
			plain := Run(base)
			profiled := base
			profiled.Profile = true
			p := Run(profiled)
			if p.Cycles != plain.Cycles {
				t.Errorf("%s/%d cores: profiled cycles %d != plain %d", scheme, cores, p.Cycles, plain.Cycles)
			}
			if p.Counters != plain.Counters {
				t.Errorf("%s/%d cores: profiled counters differ from plain run", scheme, cores)
			}

			traced := base
			traced.Trace = trace.New(trace.DefaultCapacity)
			tr := Run(traced)
			both := base
			both.Profile = true
			both.Trace = trace.New(trace.DefaultCapacity)
			tp := Run(both)
			if tp.Cycles != tr.Cycles || tp.Counters != tr.Counters {
				t.Errorf("%s/%d cores: traced+profiled run differs from traced run", scheme, cores)
			}
			want := traced.Trace.Events()
			got := 0
			for _, e := range both.Trace.Events() {
				if e.Kind == trace.KCharge {
					continue
				}
				got++
			}
			if got != len(want) {
				t.Errorf("%s/%d cores: profiled trace has %d non-charge events, unprofiled has %d",
					scheme, cores, got, len(want))
			}
		}
	}
}

// TestFromEventsMatchesLive rebuilds the attribution from the KCharge
// event stream and checks it agrees with the live profile — the offline
// path over a saved trace is equivalent to in-process accumulation.
func TestFromEventsMatchesLive(t *testing.T) {
	tr := trace.New(trace.DefaultCapacity)
	r := Run(RunConfig{
		Scheme: schemes.SLPMT, Workload: "hashtable",
		N: 40, ValueSize: 32, Profile: true, Trace: tr, Cores: 2,
	})
	if r.Causes == nil {
		t.Fatal("no breakdown")
	}
	p, err := profile.FromEvents(tr.Events(), tr.Dropped())
	if err != nil {
		t.Fatal(err)
	}
	// The tracer keeps recording through verification/collection; the
	// breakdown snapshot was taken at region end. Rebuilt counts must
	// match per core and cause for the charges up to the snapshot —
	// here there is no verify phase, so they match exactly.
	got := p.Breakdown(totalsOf(r.Causes))
	for i := range r.Causes.Cores {
		if got.Cores[i].Causes != r.Causes.Cores[i].Causes {
			t.Errorf("core %d: event-rebuilt attribution differs from live profile", i)
		}
	}
	if err := got.Conserved(); err != nil {
		t.Error(err)
	}
}

func totalsOf(b *profile.Breakdown) []uint64 {
	out := make([]uint64, len(b.Cores))
	for i := range b.Cores {
		out[i] = b.Cores[i].Total
	}
	return out
}

// TestWriteFolded pins the folded-stack line format flamegraph tools
// consume: semicolon-separated frames, space, count.
func TestWriteFolded(t *testing.T) {
	r := Run(RunConfig{
		Scheme: schemes.SLPMT, Workload: "hashtable",
		N: 20, ValueSize: 32, Profile: true,
	})
	var sb strings.Builder
	if err := profile.WriteFolded(&sb, "SLPMT;hashtable", r.Causes); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if out == "" {
		t.Fatal("empty folded output")
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		frames, count, ok := strings.Cut(line, " ")
		if !ok || count == "" {
			t.Fatalf("malformed folded line %q", line)
		}
		parts := strings.Split(frames, ";")
		if len(parts) != 5 || parts[0] != "SLPMT" || parts[1] != "hashtable" || parts[2] != "core0" {
			t.Fatalf("unexpected stack %q", frames)
		}
	}
}
