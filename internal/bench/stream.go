package bench

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/persistmem/slpmt/internal/critpath"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/trace/stream"
)

// StreamRingEvents is the spill-ring capacity attached when a run
// streams (RunConfig.StreamDir) without a caller-provided tracer: small
// enough that trace-side memory is dominated by the segment buffer, big
// enough that spill handoffs amortize.
const StreamRingEvents = 1 << 15

// CritPathRingEvents is the in-memory ring attached for a critpath run
// without a caller tracer or a stream dir: full event detail for the
// whole measured region, sized so the analyzer's Dropped check holds on
// the bench-scale runs the analysis targets (the analyzer refuses a
// lossy stream; stream to disk for bigger regions).
const CritPathRingEvents = 1 << 21

// TelemetryFile is the NDJSON telemetry file written inside StreamDir:
// one line per closed interval (see stream.Interval).
const TelemetryFile = "telemetry.ndjson"

// streamRun carries one run's streaming state between attach and
// reduce.
type streamRun struct {
	w    *stream.Writer
	tele *stream.Telemetry
	nd   *os.File
	dir  string
}

// attachStream starts the binlog writer with a live telemetry
// snapshotter and attaches it as the tracer's spill sink. Called after
// the measured-region Reset so setup events never reach the stream.
func attachStream(cfg RunConfig, tr *trace.Tracer) *streamRun {
	if err := os.MkdirAll(cfg.StreamDir, 0o755); err != nil {
		panic(fmt.Sprintf("bench: stream dir: %v", err))
	}
	nd, err := os.Create(filepath.Join(cfg.StreamDir, TelemetryFile))
	if err != nil {
		panic(fmt.Sprintf("bench: telemetry file: %v", err))
	}
	tele := stream.NewTelemetry(cfg.StreamInterval, nd)
	w, err := stream.NewWriter(cfg.StreamDir, 0, tele)
	if err != nil {
		nd.Close()
		panic(fmt.Sprintf("bench: stream writer: %v", err))
	}
	tr.SetSink(w)
	return &streamRun{w: w, tele: tele, nd: nd, dir: cfg.StreamDir}
}

// finish flushes the ring's tail into the stream and closes the binlog
// (final segment fsync + CLOSED sentinel). Must run after the last
// trace event of the measured region (including the occupancy
// retirement pass).
func (s *streamRun) finish(tr *trace.Tracer) {
	tr.Flush()
	s.w.SetDropped(tr.Dropped())
	if err := s.w.Close(); err != nil {
		panic(fmt.Sprintf("bench: trace stream: %v", err))
	}
	if err := s.nd.Close(); err != nil {
		panic(fmt.Sprintf("bench: telemetry file: %v", err))
	}
	tr.SetSink(nil)
}

// reduceStream is reduceTrace's streaming twin: the summary and WPQ
// series come from replaying the on-disk binlog through the online
// consumers (identical to the in-memory reductions by construction),
// and the result carries the telemetry interval series.
func reduceStream(res *Result, tr *trace.Tracer, s *streamRun, pm interface {
	OccupancyStats() (uint64, uint64)
}) {
	d, err := stream.Open(s.dir)
	if err != nil {
		panic(fmt.Sprintf("bench: open stream: %v", err))
	}
	summ := stream.NewSummarizer()
	st, err := stream.Feed(d, summ)
	if err != nil {
		panic(fmt.Sprintf("bench: replay stream: %v", err))
	}
	res.Summary = summ.Summary(st.Events, tr.Dropped())
	wpq, err := stream.BucketWPQ(d, 16)
	if err != nil {
		panic(fmt.Sprintf("bench: stream wpq: %v", err))
	}
	res.WPQ = wpq
	res.Counters.WPQOccMaxBytes, res.Counters.WPQOccAvgBytes = pm.OccupancyStats()
	if err := s.tele.Err(); err != nil {
		panic(fmt.Sprintf("bench: telemetry: %v", err))
	}
	res.Intervals = &IntervalSeries{Intervals: s.tele.Intervals()}
}

// critAnalyze runs the causal critical-path analysis over the measured
// region: streamed runs replay the on-disk binlog through the online
// analyzer (identical to the ring path by construction — the blame walk
// is a pure function of the event stream), buffered runs feed the ring.
// The conservation contract is enforced here, not just reported: the
// critical-path length must equal the run's measured makespan.
func critAnalyze(tr *trace.Tracer, sw *streamRun, cycles uint64) *critpath.Analysis {
	cp := critpath.New()
	if sw != nil {
		d, err := stream.Open(sw.dir)
		if err != nil {
			panic(fmt.Sprintf("bench: open stream: %v", err))
		}
		if _, err := stream.Feed(d, cp); err != nil {
			panic(fmt.Sprintf("bench: critpath replay: %v", err))
		}
	} else {
		for _, e := range tr.Events() {
			cp.Consume(e)
		}
	}
	an, err := cp.Analyze(tr.Dropped())
	if err != nil {
		panic(fmt.Sprintf("bench: critpath: %v", err))
	}
	if err := an.Check(); err != nil {
		panic(fmt.Sprintf("bench: critpath: %v", err))
	}
	if an.Makespan != cycles {
		panic(fmt.Sprintf("bench: critpath makespan %d != measured %d cycles", an.Makespan, cycles))
	}
	return an
}
