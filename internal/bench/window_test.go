package bench

import "testing"

// TestWindowVerifyAcrossSchemes runs the group-commit window over undo
// (SLPMT), redo (SLPMT-redo), and the bufferless direct path (EDE) at
// several core counts, checking the structures verify and that epochs
// actually close (the window is not silently ignored).
func TestWindowVerifyAcrossSchemes(t *testing.T) {
	for _, w := range []int{4, 16, 64} {
		for _, cores := range []int{1, 2, 4} {
			for _, wl := range []string{"hashtable", "rbtree", "kv-btree"} {
				for _, s := range []string{"SLPMT", "SLPMT-redo", "EDE"} {
					cfg := RunConfig{Scheme: s, Workload: wl, N: 300, ValueSize: 64, Verify: true, Cores: cores, CommitWindow: w}
					r := Run(cfg)
					if r.VerifyErr != nil {
						t.Errorf("%s/%s W=%d cores=%d: %v", s, wl, w, cores, r.VerifyErr)
					}
					if r.Counters.EpochCloses == 0 {
						t.Errorf("%s/%s W=%d cores=%d: no epoch closes", s, wl, w, cores)
					}
				}
			}
		}
	}
}

// TestWindowAttributionConserved checks the cycle-attribution profile
// still sums exactly to the clock at every commit window — the epoch
// close introduces a new cause (log.epoch) and must not leak cycles.
func TestWindowAttributionConserved(t *testing.T) {
	for _, w := range []int{1, 4, 16, 64} {
		cfg := RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 300, ValueSize: 64,
			Verify: true, Cores: 2, CommitWindow: w, Profile: true}
		r := Run(cfg)
		if r.VerifyErr != nil {
			t.Fatalf("W=%d: %v", w, r.VerifyErr)
		}
		if err := r.Causes.Conserved(); err != nil {
			t.Errorf("W=%d: attribution broke conservation: %v", w, err)
		}
		if w > 1 && r.Causes.ByName()["log.epoch"] == 0 {
			t.Errorf("W=%d: no cycles attributed to log.epoch", w)
		}
	}
}
