package bench

import (
	"testing"
)

// critCfg is the critpath tests' standard cell: small enough to stay
// fast, parallel enough to exercise cross-core hops.
func critCfg() RunConfig {
	return RunConfig{
		Scheme: "SLPMT", Workload: "hashtable",
		N: 300, ValueSize: 64, Cores: 2,
		CritPath: true,
	}
}

// TestCritPathContract is the conservation contract on a real run: the
// critical-path length equals the measured makespan cycles and the
// per-cause critical shares sum to the path. (critAnalyze enforces this
// with a panic; the test pins the observable values too.)
func TestCritPathContract(t *testing.T) {
	r := Run(critCfg())
	an := r.CritPath
	if an == nil {
		t.Fatal("no critpath analysis on a CritPath run")
	}
	if err := an.Check(); err != nil {
		t.Fatal(err)
	}
	if an.Makespan != r.Cycles {
		t.Fatalf("critpath makespan %d != measured cycles %d", an.Makespan, r.Cycles)
	}
	if an.PathLen != an.Makespan {
		t.Fatalf("path length %d != makespan %d", an.PathLen, an.Makespan)
	}
	if got := an.PathCycles.Sum(); got != an.PathLen {
		t.Fatalf("per-cause path shares sum to %d, path length %d", got, an.PathLen)
	}
	if an.Cores != 2 {
		t.Fatalf("analysis saw %d cores, want 2", an.Cores)
	}
	if len(an.HotLines) == 0 || an.Hops == 0 {
		t.Fatalf("expected hops and hot lines on a contended 2-core run: hops=%d lines=%d",
			an.Hops, len(an.HotLines))
	}
}

// TestCritPathStreamedMatchesRing replays the same deterministic run
// once through the in-memory ring and once through the on-disk SLPSEG01
// binlog (the analyzer as an online stream consumer) and requires the
// canonical reports to be byte-identical: the analysis is a pure
// function of the event stream, and both pipelines carry the same
// stream.
func TestCritPathStreamedMatchesRing(t *testing.T) {
	ring := Run(critCfg())

	scfg := critCfg()
	scfg.StreamDir = t.TempDir()
	streamed := Run(scfg)

	if ring.Cycles != streamed.Cycles {
		t.Fatalf("streaming changed timing: %d vs %d cycles", ring.Cycles, streamed.Cycles)
	}
	a, b := ring.CritPath.Render(10), streamed.CritPath.Render(10)
	if a != b {
		t.Fatalf("streamed analysis diverges from ring analysis:\n--- ring ---\n%s\n--- streamed ---\n%s", a, b)
	}
}

// TestCritPathObservationOnly verifies the analysis never feeds back
// into the simulation: cycles and every counter are identical with the
// analyzer on or off.
func TestCritPathObservationOnly(t *testing.T) {
	base := critCfg()
	base.CritPath = false
	off := Run(base)
	on := Run(critCfg())
	if off.Cycles != on.Cycles {
		t.Fatalf("critpath changed cycles: %d vs %d", off.Cycles, on.Cycles)
	}
	if off.Counters != on.Counters {
		t.Fatalf("critpath changed counters:\noff: %+v\non:  %+v", off.Counters, on.Counters)
	}
}

// TestCritPathWindowProjectionBracket validates the W->inf what-if
// against a measured group-commit delta, the same comparison the
// EXPERIMENTS.md section makes against BENCH_window.json. The runs are
// fully deterministic, so the tolerances below are about robustness to
// future timing-model changes, not noise.
//
// Stated tolerance: on one core the ordering-only projection must land
// in [0.55, 1.05] of the measured W=16 gain — it undershoots because
// group commit also dedups commit.data rewrites (a traffic effect the
// what-if deliberately excludes), but must still capture over half the
// gain since ordering stalls dominate the window win. On two cores the
// projection must land in [0.95, 2.0] of measured — zeroing ordering on
// every core assumes perfect overlap, so it bounds the gain from above.
func TestCritPathWindowProjectionBracket(t *testing.T) {
	winProj := func(r Result) float64 {
		for _, p := range r.CritPath.WhatIf {
			if p.Name == "window-inf" {
				return p.Speedup
			}
		}
		t.Fatal("no window-inf projection")
		return 0
	}
	for _, cores := range []int{1, 2} {
		cfg := RunConfig{Scheme: "SLPMT", Workload: "avl", N: 300, ValueSize: 64, Cores: cores}
		w1 := cfg
		w1.CommitWindow = 1
		w1.CritPath = true
		w16 := cfg
		w16.CommitWindow = 16
		r1, r16 := Run(w1), Run(w16)
		measured := float64(r1.Cycles) / float64(r16.Cycles)
		proj := winProj(r1)
		if measured <= 1.1 {
			t.Fatalf("%d cores: W=16 gain %.3fx too small to bracket", cores, measured)
		}
		lo, hi := 0.55, 1.05
		if cores > 1 {
			lo, hi = 0.95, 2.0
		}
		if proj < lo*measured || proj > hi*measured {
			t.Errorf("%d cores: window-inf projection %.3fx outside [%.2f, %.2f] x measured %.3fx",
				cores, proj, lo, hi, measured)
		}
	}
}
