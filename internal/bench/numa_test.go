package bench

import (
	"testing"

	"github.com/persistmem/slpmt/internal/schemes"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestSocketsOneIdentity pins the refactor's compatibility contract at
// the system level: Sockets=1 (and the 0 default) runs the topology
// wrapper, and its every observable — cycles, counters — must be
// identical to the historical single-device path.
func TestSocketsOneIdentity(t *testing.T) {
	for _, cores := range []int{1, 2} {
		base := Run(RunConfig{Scheme: schemes.SLPMT, Workload: "rbtree",
			N: 80, ValueSize: 32, Cores: cores, Verify: true})
		one := Run(RunConfig{Scheme: schemes.SLPMT, Workload: "rbtree",
			N: 80, ValueSize: 32, Cores: cores, Verify: true, Sockets: 1})
		if base.Cycles != one.Cycles {
			t.Errorf("%d cores: Sockets=1 drifted: %d cycles vs %d", cores, one.Cycles, base.Cycles)
		}
		if base.Counters != one.Counters {
			t.Errorf("%d cores: counters drifted:\n%+v\nvs\n%+v", cores, one.Counters, base.Counters)
		}
	}
}

// TestRemoteEnqueueMonotonic: raising the per-hop interconnect latency
// can only slow a multi-socket run down — the remote-hop charge sits on
// the critical path of every cross-socket persist.
func TestRemoteEnqueueMonotonic(t *testing.T) {
	var prev uint64
	for i, ns := range []uint64{15, 30, 120, 480} {
		r := Run(RunConfig{Scheme: schemes.SLPMT, Workload: "hashtable",
			N: 80, ValueSize: 32, Cores: 2, Sockets: 2, RemoteNanos: ns, Verify: true})
		if r.VerifyErr != nil {
			t.Fatalf("%dns: verify: %v", ns, r.VerifyErr)
		}
		if i > 0 && r.Cycles < prev {
			t.Errorf("cycles shrank as the interconnect slowed: %d @ %dns < %d", r.Cycles, ns, prev)
		}
		if i > 0 && r.Cycles == prev {
			t.Errorf("remote latency %dns had no effect: %d cycles", ns, r.Cycles)
		}
		prev = r.Cycles
	}
}

// TestTwoSocketConservation extends the profiler's core invariant to
// the multi-device topology: with remote-hop and arena-allocator
// charges in play, the attributed cycles still sum exactly to each
// core's clock advance.
func TestTwoSocketConservation(t *testing.T) {
	for _, scheme := range conservationSchemes {
		r := Run(RunConfig{Scheme: scheme, Workload: "hashtable",
			N: 80, ValueSize: 48, Cores: 2, Sockets: 2, Verify: true, Profile: true})
		if r.VerifyErr != nil {
			t.Fatalf("%s: verify: %v", scheme, r.VerifyErr)
		}
		if err := r.Causes.Conserved(); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
}

// TestPerSocketStatsPopulated: multi-socket results carry the
// per-socket device breakdown (and single-device results do not), and
// under round-robin pinning both sockets absorb traffic.
func TestPerSocketStatsPopulated(t *testing.T) {
	r := Run(RunConfig{Scheme: schemes.SLPMT, Workload: "hashtable",
		N: 80, ValueSize: 32, Cores: 2, Sockets: 2})
	if r.PerSocket == nil || len(r.PerSocket.Stats) != 2 {
		t.Fatal("2-socket run missing per-socket stats")
	}
	for _, st := range r.PerSocket.Stats {
		if st.Enqueued == 0 {
			t.Errorf("socket %d absorbed no persists", st.Socket)
		}
	}
	if single := Run(RunConfig{Scheme: schemes.SLPMT, Workload: "hashtable",
		N: 80, ValueSize: 32, Cores: 2}); single.PerSocket != nil {
		t.Error("single-device run carries per-socket stats")
	}
}
