// Package bench is the experiment harness: it runs (scheme × workload ×
// parameter) grids of ycsb-load and renders the paper's figures as text
// tables (speedups over the FG baseline, persistent-memory write-traffic
// reductions, and sensitivity sweeps).
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/critpath"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/stats"
	"github.com/persistmem/slpmt/internal/trace"
	"github.com/persistmem/slpmt/internal/trace/stream"
	"github.com/persistmem/slpmt/internal/workloads"
	"github.com/persistmem/slpmt/internal/ycsb"
)

// RunConfig parameterizes one benchmark execution.
type RunConfig struct {
	// Scheme is the hardware design name (schemes package).
	Scheme string
	// Workload is the benchmark name (workloads package).
	Workload string
	// N is the number of insert operations (0 = 1000).
	N int
	// ValueSize is the value payload in bytes (0 = 256).
	ValueSize int
	// PMWriteNanos overrides the PM write latency (0 = 500 ns).
	PMWriteNanos uint64
	// Banks overrides the device write parallelism (0 = default 2).
	Banks int
	// WPQBytes overrides the write-pending-queue capacity (0 = 512).
	WPQBytes int
	// Seed selects the deterministic key stream (0 = default).
	Seed uint64
	// CommitWindow is the group-commit window W (0 or 1 = the
	// per-transaction protocol; see engine.Config.CommitWindow).
	CommitWindow int
	// Verify runs the structure's invariant check after the measured
	// region (errors are reported in the result).
	Verify bool
	// Cores is the simulated core count (0 or 1 = the single-core
	// platform). Multi-core runs shard the key stream round-robin
	// across the cores of one shared structure and interleave them
	// deterministically; Cycles is then the parallel phase's makespan
	// (see RunMulti).
	Cores int
	// Sockets is the PM socket (NUMA node) count: each socket is its
	// own device behind a hop-linear interconnect and the heap is
	// sharded into per-core home-socket arenas. 0 or 1 = the
	// single-device machine (byte-identical to builds without the
	// topology).
	Sockets int
	// RemoteNanos overrides the per-hop interconnect latency of a
	// remote persist enqueue in nanoseconds (remote line fills pay
	// twice that); 0 keeps the pmem defaults. The NUMA experiment's
	// local/remote-ratio knob. Only meaningful with Sockets > 1.
	RemoteNanos uint64
	// Trace, when non-nil, attaches this tracer to the run's machine and
	// the result carries the reduced latency/WPQ metrics. The caller
	// owns the tracer (full event detail); setup events are cleared so
	// the ring holds the measured region. One tracer must not be shared
	// across concurrently executing runs (see SetParallelism).
	Trace *trace.Tracer
	// Metrics, when Trace is nil, attaches an internal metrics-masked
	// tracer (transaction lifecycle + WPQ kinds only) sized for
	// reduction rather than export, populating Result.Summary and
	// Result.WPQ without the caller managing a tracer.
	Metrics bool
	// Profile attaches a cycle-attribution profile to the run's machine
	// and populates Result.Causes with the measured region's breakdown.
	// Observation-only: cycles, counters and non-KCharge trace events
	// are identical with or without it.
	Profile bool
	// StreamDir, when non-empty, streams the measured region's trace to
	// an on-disk SLPSEG01 binlog in this directory: a spill sink is
	// attached so the ring never drops however long the run, the
	// Summary/WPQ reductions replay the binlog through the online
	// consumers (identical to the in-memory ones by construction), and
	// Result.Intervals carries the live telemetry series (also written
	// as NDJSON to StreamDir/telemetry.ndjson). Without Trace or
	// Metrics, a full-detail spill ring of StreamRingEvents is
	// attached. Observation-only: simulated cycles, counters, and
	// goldens are byte-identical with streaming on.
	StreamDir string
	// StreamInterval is the telemetry snapshot window in simulated
	// cycles (0 = the stream package default).
	StreamInterval uint64
	// CritPath replays the measured region's trace through the causal
	// critical-path analyzer and populates Result.CritPath. Implies a
	// cycle-attribution profile (the analysis consumes the KCharge
	// stream) and, without a caller tracer, attaches a full-detail one
	// (CritPathRingEvents; streamed runs replay the binlog instead, so
	// the ring size never matters there). Observation-only like Profile:
	// cycles, counters and goldens are byte-identical with it on.
	CritPath bool
}

// Result is the outcome of one benchmark execution.
type Result struct {
	RunConfig
	// Cycles is the simulated time of the measured region (the N
	// inserts plus the final lazy drain).
	Cycles uint64
	// Counters is the counter delta over the measured region.
	Counters stats.Counters
	// Summary holds the trace-derived latency percentiles; zero unless
	// the run was traced (Trace or Metrics set).
	Summary trace.Summary
	// WPQ is the time-bucketed WPQ occupancy/stall series; nil unless
	// the run was traced. A pointer keeps Result comparable with ==.
	WPQ *trace.WPQSeries
	// Causes is the cycle-attribution breakdown of the measured region,
	// snapshotted before verification; nil unless Profile was set. A
	// pointer keeps Result comparable with ==.
	Causes *profile.Breakdown
	// PerSocket holds the per-socket device statistics of a
	// multi-socket run (enqueue counts, stall cycles, occupancy); nil
	// on single-device runs. A pointer keeps Result comparable.
	PerSocket *SocketBreakdown
	// Intervals is the telemetry interval series of a streamed run
	// (StreamDir set); nil otherwise. A pointer keeps Result
	// comparable.
	Intervals *IntervalSeries
	// CritPath is the causal critical-path analysis of the measured
	// region; nil unless RunConfig.CritPath was set. The conservation
	// contract (path length == Cycles, per-cause shares sum to the
	// path) is checked before the result is returned. A pointer keeps
	// Result comparable.
	CritPath *critpath.Analysis
	// VerifyErr is non-nil if the post-run invariant check failed.
	VerifyErr error
}

// PMWriteBytes is the persistent-memory write traffic of the run.
func (r Result) PMWriteBytes() uint64 { return r.Counters.PMWriteBytes() }

// SocketBreakdown wraps the per-socket device statistics of one run so
// Result can carry them behind a comparable pointer.
type SocketBreakdown struct {
	Stats []pmem.SocketStats
}

// IntervalSeries wraps a streamed run's telemetry snapshots so Result
// can carry them behind a comparable pointer.
type IntervalSeries struct {
	Intervals []stream.Interval
}

// runTracer resolves the tracer a run should attach: the caller's
// full-detail tracer, an internal metrics-masked one, or nil.
func runTracer(cfg RunConfig) *trace.Tracer {
	if cfg.Trace != nil {
		return cfg.Trace
	}
	if cfg.CritPath {
		// The analysis needs full event detail (charges, stores,
		// coherence, WPQ, signature hits) — a metrics-masked ring would
		// starve it. Streamed runs spill, so the capacity is only the
		// handoff granularity there.
		if cfg.StreamDir != "" {
			return trace.New(StreamRingEvents)
		}
		return trace.New(CritPathRingEvents)
	}
	if cfg.Metrics {
		tr := trace.New(trace.MetricsCapacity)
		tr.SetMask(trace.MetricsMask())
		return tr
	}
	return nil
}

// reduceTrace folds the tracer's events into the result's summary, WPQ
// series, and occupancy gauges. No-op with a nil tracer.
func reduceTrace(res *Result, tr *trace.Tracer, pm interface {
	OccupancyStats() (uint64, uint64)
}) {
	if tr == nil {
		return
	}
	evs := tr.Events()
	res.Summary = trace.Summarize(evs, tr.Dropped())
	res.WPQ = trace.BucketWPQ(evs, 16)
	res.Counters.WPQOccMaxBytes, res.Counters.WPQOccAvgBytes = pm.OccupancyStats()
}

// Run executes one benchmark under one scheme and returns the measured
// region's statistics.
func Run(cfg RunConfig) Result {
	if cfg.Cores > 1 {
		return RunMulti(cfg)
	}
	w := workloads.MustNew(cfg.Workload)
	var mc machine.Config
	mc.PM.Banks = cfg.Banks
	mc.PM.WPQBytes = cfg.WPQBytes
	tr := runTracer(cfg)
	if cfg.StreamDir != "" && tr == nil {
		tr = trace.New(StreamRingEvents)
	}
	var prof *profile.Profile
	if cfg.Profile || cfg.CritPath {
		prof = profile.New(1)
	}
	sys := slpmt.New(slpmt.Options{
		Scheme:             cfg.Scheme,
		Machine:            mc,
		PMWriteNanos:       cfg.PMWriteNanos,
		ComputeCyclesPerOp: w.ComputeCost(),
		CommitWindow:       cfg.CommitWindow,
		Sockets:            cfg.Sockets,
		RemoteNanos:        cfg.RemoteNanos,
		Trace:              tr,
		Profile:            prof,
	})
	if err := w.Setup(sys); err != nil {
		panic(fmt.Sprintf("bench: setup %s: %v", cfg.Workload, err))
	}
	// Seal any epoch left open by setup so the measured region starts at
	// a durability boundary and carries none of setup's deferred work.
	sys.FinishEpoch()

	load := ycsb.Load{N: cfg.N, ValueSize: cfg.ValueSize, Seed: cfg.Seed}
	start := sys.Stats().Snapshot()
	startCycles := sys.Cycles()
	// The topology is the occupancy surface: on a single-device machine
	// it delegates to the one device, so the gauges are unchanged.
	topo := sys.Mach.Machine().Topo
	var sw *streamRun
	if tr != nil {
		// Drop setup events and restart the occupancy window at the
		// measured region's boundary.
		tr.Reset()
		topo.ResetOccupancy(startCycles)
		if cfg.StreamDir != "" {
			// Attach the binlog sink after the boundary so the stream
			// holds exactly the measured region.
			sw = attachStream(cfg, tr)
		}
	}
	if prof != nil {
		// Drop setup charges: the breakdown covers the measured region.
		prof.Reset()
	}
	err := load.Each(func(key uint64, value []byte) error {
		return w.Insert(sys, key, value)
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %s/%s insert: %v", cfg.Scheme, cfg.Workload, err))
	}
	// Account deferred lazy persists inside the measured region so lazy
	// schemes are not credited with traffic that merely moved past the
	// measurement boundary.
	sys.DrainLazy()
	res := Result{
		RunConfig: cfg,
		Cycles:    sys.Cycles() - startCycles,
		Counters:  sys.Stats().Delta(start),
	}
	if tr != nil {
		// Retire entries that finished before the region's end so drain
		// events and the occupancy integral cover the whole interval.
		topo.QueueDepth(sys.Cycles())
		if sw != nil {
			sw.finish(tr)
			reduceStream(&res, tr, sw, topo)
		} else {
			reduceTrace(&res, tr, topo)
		}
		if cfg.CritPath {
			res.CritPath = critAnalyze(tr, sw, res.Cycles)
		}
	}
	if topo.Sockets() > 1 {
		res.PerSocket = &SocketBreakdown{Stats: topo.SocketStats()}
	}
	if prof != nil {
		// Snapshot before verification advances the clock further.
		res.Causes = prof.Breakdown([]uint64{res.Cycles})
	}
	if cfg.Verify {
		res.VerifyErr = w.Check(sys, load.Oracle())
	}
	if c := collector.Load(); c != nil {
		c.Add(res)
	}
	return res
}

// Grid runs the cartesian product of schemes × workloads with shared
// parameters, returning results keyed [scheme][workload]. Cells run on
// the worker pool (see SetParallelism); the results are identical to a
// serial sweep. A failing cell panics, like Run.
func Grid(schemeNames, workloadNames []string, base RunConfig) map[string]map[string]Result {
	out, err := GridParallel(schemeNames, workloadNames, base)
	if err != nil {
		panic(err)
	}
	return out
}

// Speedup returns base.Cycles / r.Cycles.
func Speedup(baseline, r Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// TrafficReduction returns the write-traffic reduction of r relative to
// the baseline, as a fraction (0.35 = 35% less traffic).
func TrafficReduction(baseline, r Result) float64 {
	b := float64(baseline.PMWriteBytes())
	if b == 0 {
		return 0
	}
	return 1 - float64(r.PMWriteBytes())/b
}

// GeoMean returns the geometric mean of xs (0 for empty input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		prod *= x
	}
	return math.Pow(prod, 1/float64(len(xs)))
}

// Table renders a column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with 2 decimals; Fx appends an "x" (speedup), Pct
// renders a percentage.
func F(x float64) string   { return fmt.Sprintf("%.2f", x) }
func Fx(x float64) string  { return fmt.Sprintf("%.2fx", x) }
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// SortedKeys returns the sorted keys of a result map.
func SortedKeys(m map[string]Result) []string {
	out := make([]string, 0, len(m))
	for k := range m { //slpmt:determinism-ok: collected keys are sorted below
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
