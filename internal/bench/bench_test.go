package bench

import (
	"strings"
	"testing"

	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func TestRunProducesVerifiedResult(t *testing.T) {
	r := Run(RunConfig{Scheme: "SLPMT", Workload: "hashtable", N: 100, ValueSize: 32, Verify: true})
	if r.VerifyErr != nil {
		t.Fatalf("verify: %v", r.VerifyErr)
	}
	if r.Cycles == 0 || r.PMWriteBytes() == 0 {
		t.Error("empty measurement")
	}
	if r.Counters.TxCommits < 100 {
		t.Errorf("commits = %d", r.Counters.TxCommits)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := RunConfig{Scheme: "FG", Workload: "rbtree", N: 60, ValueSize: 16}
	a := Run(cfg)
	b := Run(cfg)
	if a.Cycles != b.Cycles || a.PMWriteBytes() != b.PMWriteBytes() {
		t.Errorf("nondeterministic: %d/%d vs %d/%d", a.Cycles, a.PMWriteBytes(), b.Cycles, b.PMWriteBytes())
	}
}

func TestGridShape(t *testing.T) {
	g := Grid([]string{"FG", "SLPMT"}, []string{"heap"}, RunConfig{N: 40, ValueSize: 16})
	if len(g) != 2 || len(g["FG"]) != 1 {
		t.Fatalf("grid shape wrong")
	}
	if Speedup(g["FG"]["heap"], g["SLPMT"]["heap"]) <= 0 {
		t.Error("speedup not positive")
	}
}

func TestMetricsMath(t *testing.T) {
	base := Result{Cycles: 200}
	base.Counters.PMWriteBytesData = 1000
	r := Result{Cycles: 100}
	r.Counters.PMWriteBytesData = 600
	if Speedup(base, r) != 2.0 {
		t.Error("speedup math wrong")
	}
	if tr := TrafficReduction(base, r); tr < 0.399 || tr > 0.401 {
		t.Errorf("traffic reduction = %v", tr)
	}
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "a", "bb")
	tb.AddRow("x", "y")
	out := tb.String()
	if !strings.Contains(out, "Title") || !strings.Contains(out, "bb") || !strings.Contains(out, "y") {
		t.Errorf("render: %q", out)
	}
	if Fx(1.5) != "1.50x" || Pct(0.355) != "35.5%" || F(2.0) != "2.00" {
		t.Error("formatters broken")
	}
}
