// Package signature implements the per-transaction working-set
// signatures of §III-C3: hash-based bit-vector summaries (as in LogTM-SE
// and Bulk) that record the read- and write-set of a committed
// transaction whose lazily persistent data is still volatile.
//
// The implementation is a 2048-bit Bloom filter with k hash functions
// derived from a 64-bit mixer. All signatures share the same hash
// functions (the paper notes this saves area and energy), which this
// package models by making the hash functions package-level.
//
// Signatures are conservative: MayContain can report false positives
// (forcing a harmless early persist of lazy data) but never false
// negatives (which would break recoverability).
package signature

import "github.com/persistmem/slpmt/internal/mem"

// Bits is the signature width: 2048 bits = 256 bytes, and the paper's
// configuration uses four of them (1 KiB total, §III-D).
const (
	Bits  = 2048
	words = Bits / 64
	// HashFuncs is the number of hash functions.
	HashFuncs = 4
)

// Signature is one working-set filter. The zero value is empty and
// ready to use.
type Signature struct {
	bits  [words]uint64
	count int // addresses added (for introspection, not correctness)
}

// mix64 is the SplitMix64 finalizer — a cheap, well-distributed 64-bit
// mixer standing in for the hardware's XOR-fold hash trees.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashes derives the HashFuncs bit indices for a line address using
// double hashing (h1 + i*h2), the standard Bloom construction.
func hashes(line mem.Addr) [HashFuncs]uint32 {
	h := mix64(uint64(line) >> mem.LineShift)
	h1 := uint32(h)
	h2 := uint32(h>>32) | 1 // odd so strides cover the table
	var out [HashFuncs]uint32
	for i := 0; i < HashFuncs; i++ {
		out[i] = (h1 + uint32(i)*h2) % Bits
	}
	return out
}

// Add records the cache line containing addr in the working set.
func (s *Signature) Add(addr mem.Addr) {
	line := mem.LineAddr(addr)
	for _, b := range hashes(line) {
		s.bits[b>>6] |= 1 << (b & 63)
	}
	s.count++
}

// MayContain reports whether the line containing addr may be in the
// working set. False positives are possible; false negatives are not.
func (s *Signature) MayContain(addr mem.Addr) bool {
	line := mem.LineAddr(addr)
	for _, b := range hashes(line) {
		if s.bits[b>>6]&(1<<(b&63)) == 0 {
			return false
		}
	}
	return true
}

// Clear empties the signature (the hardware reclaims it once the
// transaction's lazy data has fully persisted).
func (s *Signature) Clear() {
	s.bits = [words]uint64{}
	s.count = 0
}

// Empty reports whether no address has been added since the last Clear.
func (s *Signature) Empty() bool { return s.count == 0 }

// AddCount returns the number of Add calls since the last Clear.
func (s *Signature) AddCount() int { return s.count }

// Population returns the number of set bits (useful for occupancy
// diagnostics and the false-positive tests).
func (s *Signature) Population() int {
	n := 0
	for _, w := range s.bits {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
