package signature

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/persistmem/slpmt/internal/mem"
)

// TestNoFalseNegatives: every added address must be reported present —
// a false negative would skip a required lazy persist and break
// recoverability. Property-checked over random address sets.
func TestNoFalseNegatives(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Signature
		addrs := make([]mem.Addr, 0, n)
		for i := 0; i < int(n); i++ {
			a := mem.Addr(rng.Uint64() % (1 << 30))
			s.Add(a)
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			if !s.MayContain(a) {
				return false
			}
			// Any address in the same line must also match.
			if !s.MayContain(mem.LineAddr(a) + 63) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClear(t *testing.T) {
	var s Signature
	s.Add(0x1000)
	if s.Empty() {
		t.Error("signature empty after Add")
	}
	s.Clear()
	if !s.Empty() || s.Population() != 0 {
		t.Error("clear did not empty the signature")
	}
	if s.MayContain(0x1000) {
		t.Error("cleared signature still matches")
	}
}

// TestFalsePositiveRate: with a realistic working-set size the filter
// must stay selective (false positives only force harmless early
// persists, but a saturated filter would drain lazy data constantly).
func TestFalsePositiveRate(t *testing.T) {
	var s Signature
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 128; i++ { // 128-line working set
		s.Add(mem.Addr(rng.Uint64() % (1 << 28)))
	}
	fp := 0
	probes := 10000
	for i := 0; i < probes; i++ {
		a := mem.Addr(1<<30) + mem.Addr(i)*mem.LineSize // disjoint region
		if s.MayContain(a) {
			fp++
		}
	}
	if rate := float64(fp) / float64(probes); rate > 0.05 {
		t.Errorf("false positive rate %.3f too high for 128-line set", rate)
	}
}

func TestPopulationGrowth(t *testing.T) {
	var s Signature
	s.Add(0x40)
	p1 := s.Population()
	if p1 == 0 || p1 > HashFuncs {
		t.Errorf("population after one add = %d", p1)
	}
	if s.AddCount() != 1 {
		t.Errorf("add count = %d", s.AddCount())
	}
}

// TestLineGranularity: two addresses within one cache line are
// indistinguishable to the signature.
func TestLineGranularity(t *testing.T) {
	var s Signature
	s.Add(0x1008)
	if !s.MayContain(0x1000) || !s.MayContain(0x103F) {
		t.Error("same-line addresses not matched")
	}
}
