package compiler

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/txir"
)

// Replay executes a recorded trace against sys, substituting the
// inferred annotations (nil Annotations replays with plain stores).
// The trace must have been recorded from a deterministic run: replayed
// allocations are asserted to land at the recorded addresses.
func Replay(t *txir.Trace, ann *Annotations, sys *slpmt.System) error {
	attrOf := func(i int) (isa.Attr, bool) {
		if ann == nil {
			return isa.Plain, false
		}
		a, ok := ann.Attrs[i]
		return a, ok
	}
	i := 0
	for i < len(t.Ops) {
		if t.Ops[i].Kind == txir.OpLoad {
			// Out-of-transaction read (e.g. a workload's pre-check).
			op := t.Ops[i]
			sys.View(func(tx *slpmt.Tx) {
				buf := make([]byte, op.Size)
				tx.Load(op.Addr, buf)
			})
			i++
			continue
		}
		if t.Ops[i].Kind != txir.OpBegin {
			return fmt.Errorf("compiler: replay desync: expected begin at op %d, have %s", i, t.Ops[i].Kind)
		}
		end := i + 1
		for end < len(t.Ops) && t.Ops[end].Kind != txir.OpCommit && t.Ops[end].Kind != txir.OpAbort {
			end++
		}
		if end == len(t.Ops) {
			return fmt.Errorf("compiler: replay: unterminated transaction at op %d", i)
		}
		window := t.Ops[i+1 : end]
		windowBase := i + 1
		aborted := t.Ops[end].Kind == txir.OpAbort
		err := sys.Update(func(tx *slpmt.Tx) error {
			for j, op := range window {
				idx := windowBase + j
				switch op.Kind {
				case txir.OpAlloc:
					got := tx.Alloc(uint64(op.Size))
					if got != op.Addr {
						return fmt.Errorf("compiler: replay nondeterminism: alloc %d bytes at %#x, recorded %#x",
							op.Size, got, op.Addr)
					}
				case txir.OpFree:
					tx.Free(op.Addr)
				case txir.OpLoad:
					buf := make([]byte, op.Size)
					tx.Load(op.Addr, buf)
				case txir.OpStore:
					if a, ok := attrOf(idx); ok {
						tx.StoreT(op.Addr, op.Data, a)
					} else {
						tx.Store(op.Addr, op.Data)
					}
				case txir.OpCopy:
					a, _ := attrOf(idx)
					tx.Copy(op.Addr, op.Src, op.Size, a)
				default:
					return fmt.Errorf("compiler: replay: unexpected op %s inside transaction", op.Kind)
				}
			}
			if aborted {
				return errReplayAbort
			}
			return nil
		})
		if aborted && err == errReplayAbort {
			err = nil
		}
		if err != nil {
			return err
		}
		i = end + 1
	}
	return nil
}

var errReplayAbort = fmt.Errorf("compiler: replayed abort")
