// Package compiler implements the annotation-inference pass of §IV: the
// software-side counterpart of the storeT ISA extension that decides,
// per store, whether it can be log-free (Pattern 1) or lazily
// persistent (Pattern 2), mirroring the paper's clang/LLVM pass built
// on MemorySSA.
//
// The pass operates on a recorded transaction IR rather than LLVM IR,
// but the analyses are structurally the same:
//
//   - Pattern 1 (log-free): a store whose target lies entirely inside
//     memory allocated by the same transaction needs no log — if the
//     transaction is undone, the (logged) linking stores vanish and the
//     leaked block is collected. A store into memory freed by the same
//     transaction needs neither log nor persistence.
//   - Pattern 2 (lazy): a data movement (a store whose value provenance
//     is an explicit source address) is lazily persistent if its source
//     has not been written earlier in the transaction — the destination
//     can then be rebuilt from the intact source during recovery.
//     Because this reproduction does not generate per-transaction
//     re-execution code (the paper's compiler records dependent
//     addresses and emits a recovery routine, §IV-B), the pass only
//     trusts Pattern 2 in transactions that publish the move-recovery
//     protocol themselves: a store to the RootMoveSrc recovery slot in
//     the same transaction is the marker that a rebuild path exists.
//
// Like the paper's compiler, the pass cannot infer annotations that
// depend on deeper program semantics: stores of computed values (node
// colors, counters, shifted heap slots) have no source provenance and
// stay plain — the coverage comparison of Figure 13 quantifies exactly
// this gap against the manual annotations.
package compiler

import (
	"time"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/txir"
)

// Annotations is the inference result: per-op attributes plus coverage
// statistics against the manual annotations recorded in the trace.
type Annotations struct {
	// Attrs maps trace op index -> inferred attribute for store/copy
	// ops (absent means plain).
	Attrs map[int]isa.Attr
	// Coverage compares inferred and manual annotation sites.
	Coverage Coverage
	// AnalyzeTime is the wall time of the inference pass (the Figure 13
	// "compile time with optimization" component).
	AnalyzeTime time.Duration
	// ScanTime is the wall time of a plain trace scan (the "without
	// optimization" baseline compilation).
	ScanTime time.Duration
}

// Coverage counts source-level annotation sites (distinct store call
// sites, the paper's "variables").
type Coverage struct {
	// ManualSites is the number of distinct sites the workload
	// annotated by hand (non-plain manual attribute).
	ManualSites int
	// InferredSites is the number of distinct sites the pass annotated.
	InferredSites int
	// FoundSites is the number of manually annotated sites the pass
	// also annotated (the paper: 16 of 26).
	FoundSites int
	// ManualOps and InferredOps count dynamic store operations.
	ManualOps, InferredOps int
}

// extent is a [lo,hi) byte range.
type extent struct{ lo, hi mem.Addr }

func (e extent) contains(lo, hi mem.Addr) bool { return lo >= e.lo && hi <= e.hi }

func (e extent) overlaps(lo, hi mem.Addr) bool { return lo < e.hi && hi > e.lo }

// extentSet is a small sorted interval set.
type extentSet struct{ xs []extent }

func (s *extentSet) add(lo, hi mem.Addr) {
	s.xs = append(s.xs, extent{lo, hi})
}

func (s *extentSet) containsRange(lo, hi mem.Addr) bool {
	for _, e := range s.xs {
		if e.contains(lo, hi) {
			return true
		}
	}
	return false
}

func (s *extentSet) overlapsRange(lo, hi mem.Addr) bool {
	for _, e := range s.xs {
		if e.overlaps(lo, hi) {
			return true
		}
	}
	return false
}

func (s *extentSet) reset() { s.xs = s.xs[:0] }

// Infer runs the annotation-inference pass over the trace. moveGuard
// is the address of the RootMoveSrc recovery slot; transactions that
// store to it are eligible for Pattern 2 lazy inference (0 disables
// Pattern 2).
func Infer(t *txir.Trace, moveGuard mem.Addr) *Annotations {
	// Baseline "compilation" scan (no optimization): walk the IR once.
	scanStart := time.Now()
	stores := 0
	for _, op := range t.Ops {
		if op.Kind == txir.OpStore || op.Kind == txir.OpCopy {
			stores++
		}
	}
	scanTime := time.Since(scanStart)

	start := time.Now()
	out := &Annotations{Attrs: make(map[int]isa.Attr)}
	var allocs, written extentSet

	manualSites := map[uintptr]bool{}
	inferredSites := map[uintptr]bool{}

	base := 0
	for base < len(t.Ops) {
		if t.Ops[base].Kind != txir.OpBegin {
			base++
			continue
		}
		// Analyze one transaction window. Pre-scan: does this
		// transaction publish a move-recovery source (Pattern 2 guard)?
		hasMoveProtocol := false
		for j := base + 1; j < len(t.Ops); j++ {
			op := t.Ops[j]
			if op.Kind == txir.OpCommit || op.Kind == txir.OpAbort {
				break
			}
			if op.Kind == txir.OpStore && moveGuard != 0 && op.Addr == moveGuard && op.Size == 8 && !allZero(op.Data) {
				hasMoveProtocol = true
				break
			}
		}
		allocs.reset()
		written.reset()
		i := base + 1
		for ; i < len(t.Ops); i++ {
			op := t.Ops[i]
			if op.Kind == txir.OpCommit || op.Kind == txir.OpAbort {
				break
			}
			switch op.Kind {
			case txir.OpAlloc:
				allocs.add(op.Addr, op.Addr+mem.Addr(op.Size))
			case txir.OpFree:
				// Stores into to-be-freed regions could also be
				// annotated (§IV-B: "any update in that transaction on
				// the memory region needs no persistence"), but the
				// soundness depends on store/unlink ordering within the
				// transaction; none of the workloads write to freed
				// regions, so this inference is left out.
			case txir.OpStore, txir.OpCopy:
				lo, hi := op.Addr, op.Addr+mem.Addr(op.Size)
				var attr isa.Attr
				// Pattern 1: transaction-local destination.
				if allocs.containsRange(lo, hi) {
					attr.LogFree = true
				}
				// Pattern 2: data movement from an unmodified source,
				// in a transaction with a declared rebuild path.
				if hasMoveProtocol && op.Kind == txir.OpCopy && op.Src != 0 {
					slo, shi := op.Src, op.Src+mem.Addr(op.Size)
					if !written.overlapsRange(slo, shi) {
						attr.Lazy = true
					}
				}
				if op.Manual != isa.Plain {
					manualSites[op.Site] = true
					out.Coverage.ManualOps++
				}
				if attr != isa.Plain {
					out.Attrs[i] = attr
					inferredSites[op.Site] = true
					out.Coverage.InferredOps++
				}
				written.add(lo, hi)
			}
		}
		base = i + 1
	}

	out.Coverage.ManualSites = len(manualSites)
	out.Coverage.InferredSites = len(inferredSites)
	found := 0
	for s := range manualSites {
		if inferredSites[s] {
			found++
		}
	}
	out.Coverage.FoundSites = found
	out.AnalyzeTime = time.Since(start)
	out.ScanTime = scanTime
	return out
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
