package compiler_test

import (
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/compiler"
	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/txir"
	"github.com/persistmem/slpmt/internal/ycsb"

	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

func op(k txir.OpKind, addr mem.Addr, size int) txir.Op {
	return txir.Op{Kind: k, Addr: addr, Size: size}
}

func moveGuard() mem.Addr {
	return mem.DefaultLayout(16<<20).RootBase + 8*workloads.RootMoveSrc
}

// TestPattern1FreshAllocation: stores into transaction-local memory are
// inferred log-free; stores elsewhere are not.
func TestPattern1(t *testing.T) {
	tr := &txir.Trace{Ops: []txir.Op{
		op(txir.OpBegin, 0, 0),
		op(txir.OpAlloc, 0x1000, 64),
		op(txir.OpStore, 0x1008, 8),    // inside fresh block
		op(txir.OpStore, 0x5000, 8),    // elsewhere
		op(txir.OpStore, 0x1000+60, 8), // crosses block end
		op(txir.OpCommit, 0, 0),
	}}
	ann := compiler.Infer(tr, moveGuard())
	if a := ann.Attrs[2]; !a.LogFree {
		t.Error("fresh-block store not inferred log-free")
	}
	if _, ok := ann.Attrs[3]; ok {
		t.Error("unrelated store annotated")
	}
	if _, ok := ann.Attrs[4]; ok {
		t.Error("block-crossing store annotated")
	}
}

// TestPattern1OrderMatters: a store before the allocation is not fresh.
func TestPattern1OrderMatters(t *testing.T) {
	tr := &txir.Trace{Ops: []txir.Op{
		op(txir.OpBegin, 0, 0),
		op(txir.OpStore, 0x1000, 8),
		op(txir.OpAlloc, 0x1000, 64),
		op(txir.OpCommit, 0, 0),
	}}
	ann := compiler.Infer(tr, moveGuard())
	if _, ok := ann.Attrs[1]; ok {
		t.Error("pre-allocation store annotated")
	}
}

// TestPattern2RequiresGuardAndIntactSource.
func TestPattern2(t *testing.T) {
	guard := moveGuard()
	mk := func(withGuard bool, dirtySrc bool) *txir.Trace {
		ops := []txir.Op{op(txir.OpBegin, 0, 0)}
		if withGuard {
			g := op(txir.OpStore, guard, 8)
			g.Data = []byte{1, 0, 0, 0, 0, 0, 0, 0}
			ops = append(ops, g)
		}
		if dirtySrc {
			ops = append(ops, op(txir.OpStore, 0x2000, 8))
		}
		cp := op(txir.OpCopy, 0x3000, 8)
		cp.Src = 0x2000
		ops = append(ops, cp, op(txir.OpCommit, 0, 0))
		return &txir.Trace{Ops: ops}
	}
	find := func(tr *txir.Trace) (isa.Attr, bool) {
		ann := compiler.Infer(tr, guard)
		for i, o := range tr.Ops {
			if o.Kind == txir.OpCopy {
				a, ok := ann.Attrs[i]
				return a, ok
			}
		}
		return isa.Attr{}, false
	}
	if a, ok := find(mk(true, false)); !ok || !a.Lazy {
		t.Error("guarded intact-source move not inferred lazy")
	}
	if a, _ := find(mk(false, false)); a.Lazy {
		t.Error("unguarded move inferred lazy")
	}
	if a, _ := find(mk(true, true)); a.Lazy {
		t.Error("move from dirty source inferred lazy")
	}
}

// TestTransactionBoundariesResetState: allocations do not leak into the
// next transaction.
func TestTransactionBoundariesResetState(t *testing.T) {
	tr := &txir.Trace{Ops: []txir.Op{
		op(txir.OpBegin, 0, 0),
		op(txir.OpAlloc, 0x1000, 64),
		op(txir.OpCommit, 0, 0),
		op(txir.OpBegin, 0, 0),
		op(txir.OpStore, 0x1008, 8),
		op(txir.OpCommit, 0, 0),
	}}
	ann := compiler.Infer(tr, moveGuard())
	if _, ok := ann.Attrs[4]; ok {
		t.Error("allocation leaked across transactions")
	}
}

// TestRecordInferReplayRoundTrip: the full compiler pipeline on a real
// workload yields a valid, verifiable durable state.
func TestRecordInferReplayRoundTrip(t *testing.T) {
	w := workloads.MustNew("hashtable")
	recSys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	rec := &txir.Recorder{}
	recSys.AttachRecorder(rec)
	recSys.SetStrip(true)
	if err := w.Setup(recSys); err != nil {
		t.Fatal(err)
	}
	load := ycsb.Load{N: 120, ValueSize: 32}
	if err := load.Each(func(k uint64, v []byte) error { return w.Insert(recSys, k, v) }); err != nil {
		t.Fatal(err)
	}
	guard := recSys.Layout().RootBase + 8*workloads.RootMoveSrc
	ann := compiler.Infer(&rec.Trace, guard)
	if ann.Coverage.InferredOps == 0 {
		t.Fatal("no annotations inferred")
	}

	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := compiler.Replay(&rec.Trace, ann, sys); err != nil {
		t.Fatal(err)
	}
	sys.DrainLazy()
	img := sys.Mach.Crash()
	chk := workloads.MustNew("hashtable").(workloads.Recoverable)
	if err := chk.Recover(img); err != nil {
		t.Fatal(err)
	}
	if err := chk.CheckDurable(img, load.Oracle()); err != nil {
		t.Fatal(err)
	}
	// The inferred annotations must actually reduce logging versus a
	// plain replay.
	plain := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := compiler.Replay(&rec.Trace, nil, plain); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().LogRecordsCreated >= plain.Stats().LogRecordsCreated {
		t.Errorf("inferred annotations did not reduce logging: %d vs %d",
			sys.Stats().LogRecordsCreated, plain.Stats().LogRecordsCreated)
	}
}
