// Package txir defines the transaction intermediate representation the
// compiler tooling analyzes (§IV): a linear record of every
// transactional operation a workload performs, with the provenance
// information the paper's MemorySSA-based analyses consume —
// allocation events (Pattern 1: stores into transaction-local memory
// are log-free) and data-movement sources (Pattern 2: values copied
// from unmodified persistent locations are lazily persistent).
//
// A Recorder implements the public API's recording hook; the trace it
// captures can be analyzed (package compiler) and replayed against a
// fresh system with inferred annotations substituted for manual ones.
package txir

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/mem"
)

// OpKind enumerates IR operations.
type OpKind uint8

const (
	// OpBegin starts a transaction.
	OpBegin OpKind = iota
	// OpCommit ends a transaction successfully.
	OpCommit
	// OpAbort ends a transaction with rollback.
	OpAbort
	// OpAlloc is a persistent-heap allocation.
	OpAlloc
	// OpFree is a persistent-heap release.
	OpFree
	// OpLoad is a transactional read.
	OpLoad
	// OpStore is a store of a computed value.
	OpStore
	// OpCopy is a store whose value was read from Src (data movement).
	OpCopy
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpCopy:
		return "copy"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one IR operation.
type Op struct {
	Kind OpKind
	// Seq is the transaction sequence (OpBegin only).
	Seq uint64
	// Addr is the operation's target address (store/copy destination,
	// load source, alloc result, free target).
	Addr mem.Addr
	// Size is the byte size of the access (loads, stores, copies) or
	// allocation.
	Size int
	// Src is the source address of a copy (0 for computed stores).
	Src mem.Addr
	// Data is the stored value for OpStore (needed for replay).
	Data []byte
	// Instr is the instruction kind the workload used.
	Instr isa.Kind
	// Manual is the workload's hand annotation, recorded even when the
	// execution stripped it (the compiler-coverage baseline).
	Manual isa.Attr
	// Site identifies the source-level store site (a caller PC): the
	// unit the paper counts "variables" in for Figure 13.
	Site uintptr
}

// Trace is a recorded operation stream.
type Trace struct {
	Ops []Op
}

// Recorder captures a Trace through the public API's Recorder hook.
type Recorder struct {
	Trace Trace
}

// RecBegin implements slpmt.Recorder.
func (r *Recorder) RecBegin(seq uint64) {
	r.Trace.Ops = append(r.Trace.Ops, Op{Kind: OpBegin, Seq: seq})
}

// RecCommit implements slpmt.Recorder.
func (r *Recorder) RecCommit() {
	r.Trace.Ops = append(r.Trace.Ops, Op{Kind: OpCommit})
}

// RecAbort implements slpmt.Recorder.
func (r *Recorder) RecAbort() {
	r.Trace.Ops = append(r.Trace.Ops, Op{Kind: OpAbort})
}

// RecAlloc implements slpmt.Recorder.
func (r *Recorder) RecAlloc(addr mem.Addr, size uint64) {
	r.Trace.Ops = append(r.Trace.Ops, Op{Kind: OpAlloc, Addr: addr, Size: int(size)})
}

// RecFree implements slpmt.Recorder.
func (r *Recorder) RecFree(addr mem.Addr) {
	r.Trace.Ops = append(r.Trace.Ops, Op{Kind: OpFree, Addr: addr})
}

// RecLoad implements slpmt.Recorder.
func (r *Recorder) RecLoad(addr mem.Addr, size int) {
	r.Trace.Ops = append(r.Trace.Ops, Op{Kind: OpLoad, Addr: addr, Size: size})
}

// RecStore implements slpmt.Recorder.
func (r *Recorder) RecStore(addr mem.Addr, data []byte, kind isa.Kind, attr isa.Attr, site uintptr) {
	r.Trace.Ops = append(r.Trace.Ops, Op{
		Kind: OpStore, Addr: addr, Size: len(data), Data: data,
		Instr: kind, Manual: attr, Site: site,
	})
}

// RecCopy implements slpmt.Recorder.
func (r *Recorder) RecCopy(dst, src mem.Addr, size int, kind isa.Kind, attr isa.Attr, site uintptr) {
	r.Trace.Ops = append(r.Trace.Ops, Op{
		Kind: OpCopy, Addr: dst, Size: size, Src: src,
		Instr: kind, Manual: attr, Site: site,
	})
}

// Transactions splits the trace into per-transaction op windows
// (inclusive of Begin and Commit/Abort). Ops outside transactions are
// skipped.
func (t *Trace) Transactions() [][]Op {
	var out [][]Op
	start := -1
	for i, op := range t.Ops {
		switch op.Kind {
		case OpBegin:
			start = i
		case OpCommit, OpAbort:
			if start >= 0 {
				out = append(out, t.Ops[start:i+1])
				start = -1
			}
		}
	}
	return out
}

// Stores returns the indices of store/copy ops.
func (t *Trace) Stores() []int {
	var out []int
	for i, op := range t.Ops {
		if op.Kind == OpStore || op.Kind == OpCopy {
			out = append(out, i)
		}
	}
	return out
}
