package txir_test

import (
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/isa"
	"github.com/persistmem/slpmt/internal/txir"
)

// TestRecorderCapturesOps: the recorder sees the full op stream of a
// transaction with provenance and manual annotations, even when the
// execution strips them.
func TestRecorderCapturesOps(t *testing.T) {
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	rec := &txir.Recorder{}
	sys.AttachRecorder(rec)
	sys.SetStrip(true)

	var a slpmt.Addr
	err := sys.Update(func(tx *slpmt.Tx) error {
		a = tx.Alloc(32)
		tx.StoreTU64(a, 7, slpmt.LogFree)
		tx.CopyU64(a+8, a, slpmt.LazyLogFree)
		v := tx.LoadU64(a)
		_ = v
		tx.Free(a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ops := rec.Trace.Ops
	kinds := []txir.OpKind{}
	for _, op := range ops {
		kinds = append(kinds, op.Kind)
	}
	want := []txir.OpKind{txir.OpBegin, txir.OpAlloc, txir.OpStore, txir.OpCopy, txir.OpLoad, txir.OpFree, txir.OpCommit}
	if len(kinds) != len(want) {
		t.Fatalf("ops = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	st := ops[2]
	if st.Manual != isa.LogFree || st.Addr != a || st.Site == 0 {
		t.Errorf("store op wrong: %+v", st)
	}
	cp := ops[3]
	if cp.Src != a || cp.Addr != a+8 || cp.Manual != isa.LazyLogFree {
		t.Errorf("copy op wrong: %+v", cp)
	}
	// Stripping: the executed instruction was a plain store, so the
	// lazy line must NOT have been deferred.
	if sys.Eng.RetainedLazyLines() != 0 {
		t.Error("strip mode did not neutralize the lazy annotation")
	}
}

func TestTransactionsSplitsWindows(t *testing.T) {
	tr := &txir.Trace{Ops: []txir.Op{
		{Kind: txir.OpBegin, Seq: 1},
		{Kind: txir.OpStore},
		{Kind: txir.OpCommit},
		{Kind: txir.OpLoad}, // outside
		{Kind: txir.OpBegin, Seq: 2},
		{Kind: txir.OpAbort},
	}}
	txs := tr.Transactions()
	if len(txs) != 2 || len(txs[0]) != 3 || len(txs[1]) != 2 {
		t.Fatalf("windows: %d", len(txs))
	}
	if len(tr.Stores()) != 1 {
		t.Error("store index broken")
	}
}

func TestOpKindString(t *testing.T) {
	if txir.OpBegin.String() != "begin" || txir.OpCopy.String() != "copy" {
		t.Error("op kind strings broken")
	}
}
