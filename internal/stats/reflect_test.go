package stats

import (
	"reflect"
	"testing"
)

// fill sets field i of a Counters to uint64(i+1) via reflection, so
// every field holds a distinct non-zero value.
func fill(t *testing.T) (*Counters, int) {
	t.Helper()
	var c Counters
	v := reflect.ValueOf(&c).Elem()
	n := v.NumField()
	for i := 0; i < n; i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Uint64 {
			t.Fatalf("Counters field %s is %s, want uint64", v.Type().Field(i).Name, f.Kind())
		}
		f.SetUint(uint64(i + 1))
	}
	return &c, n
}

// TestEveryFieldHasACanonicalRow pins the hand-maintained canonicalRows
// list to the struct: each field must surface under exactly one dotted
// name. Adding a Counters field without extending canonicalRows (or Add
// or Delta, below) fails here instead of silently dropping the counter
// from every report.
func TestEveryFieldHasACanonicalRow(t *testing.T) {
	c, n := fill(t)
	rows := canonicalRows(c)
	if len(rows) != n {
		t.Fatalf("canonicalRows has %d entries for %d struct fields", len(rows), n)
	}
	seenName := map[string]bool{}
	seenVal := map[uint64]bool{}
	for _, r := range rows {
		if seenName[r.Name] {
			t.Errorf("duplicate row name %q", r.Name)
		}
		seenName[r.Name] = true
		if r.Value == 0 || r.Value > uint64(n) {
			t.Errorf("row %q carries value %d, not one of the distinct field values", r.Name, r.Value)
		}
		if seenVal[r.Value] {
			t.Errorf("row %q repeats value %d: two rows read the same field", r.Name, r.Value)
		}
		seenVal[r.Value] = true
	}
}

// TestAddCoversEveryField: accumulating a fully distinct Counters into a
// zero value must leave every field non-zero (additive fields copy the
// value; gauges merge by max, which over zero is also a copy).
func TestAddCoversEveryField(t *testing.T) {
	c, n := fill(t)
	var sum Counters
	sum.Add(c)
	v := reflect.ValueOf(sum)
	for i := 0; i < n; i++ {
		if v.Field(i).Uint() == 0 {
			t.Errorf("Add drops field %s", v.Type().Field(i).Name)
		}
	}
}

// TestDeltaCoversEveryField: the delta against a zero snapshot must
// return every field unchanged (subtraction by zero for the additive
// fields, pass-through for the gauges).
func TestDeltaCoversEveryField(t *testing.T) {
	c, n := fill(t)
	d := c.Delta(Counters{})
	v := reflect.ValueOf(d)
	for i := 0; i < n; i++ {
		if got := v.Field(i).Uint(); got != uint64(i+1) {
			t.Errorf("Delta mangles field %s: got %d, want %d", v.Type().Field(i).Name, got, i+1)
		}
	}
}
