// Package stats collects the simulation counters that the paper's
// evaluation reports: cycles, persistent-memory write traffic (split into
// data and log bytes), cache events, log-buffer activity, and
// lazy-persistency bookkeeping.
//
// A single Counters value is owned by one simulated machine; it is not
// safe for concurrent use (the simulator is single-threaded per machine).
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters aggregates every event class the evaluation reports on.
type Counters struct {
	// Cycles is the simulated execution time of the program.
	Cycles uint64

	// Instruction mix.
	Loads, Stores, StoreTs uint64

	// Transactions.
	TxBegins, TxCommits, TxAborts uint64
	// EpochCloses counts group-commit epoch seals (zero below W=2): each
	// is one amortized drain + barrier + marker covering a window of
	// committed transactions.
	EpochCloses uint64

	// Cache events, per level.
	L1Hits, L1Misses   uint64
	L2Hits, L2Misses   uint64
	L3Hits, L3Misses   uint64
	L1Evicts, L2Evicts uint64
	L3Evicts           uint64
	L3Writebacks       uint64 // dirty L3 evictions reaching PM

	// PM write traffic in bytes, as counted at the write-pending queue.
	PMWriteBytesData uint64 // data cache-line persists + writebacks
	PMWriteBytesLog  uint64 // log-record persists
	PMWriteEntries   uint64 // WPQ entries enqueued
	PMReadBytes      uint64 // demand fills from PM
	WPQStallCycles   uint64 // cycles the core stalled on a full WPQ

	// WPQ occupancy gauges (bytes). Unlike the event counters these are
	// not additive: Add merges them by maximum and Delta passes the
	// current value through unchanged, because a high-water mark or a
	// time-weighted mean cannot be meaningfully subtracted. They are
	// populated from pmem.Device.OccupancyStats by harnesses that measure
	// occupancy (multi-core runs and traced single-core runs).
	WPQOccMaxBytes uint64 // high-water mark of WPQ occupancy
	WPQOccAvgBytes uint64 // time-weighted mean WPQ occupancy

	// Logging activity.
	LogRecordsCreated   uint64 // records inserted into the log buffer
	LogRecordsCoalesced uint64 // pairwise coalesce operations performed
	LogRecordsDiscarded uint64 // records dropped at commit (lazy lines)
	LogRecordsPersisted uint64 // records that reached PM
	LogBytesPersisted   uint64 // payload bytes of persisted records
	LogDuplicates       uint64 // re-logging after L2 log-bit loss
	SpeculativeRecords  uint64 // records created speculatively (§III-B)
	LogBufferStalls     uint64 // stores stalled on a locked/full tier 1

	// Persist events.
	EagerLinePersists uint64 // lines persisted at commit
	EvictLinePersists uint64 // lines persisted due to L2->L3 eviction
	LazyLinesDeferred uint64 // lines left volatile at commit
	LazyLinePersists  uint64 // deferred lines later forced to PM
	LazyLinesElided   uint64 // deferred lines never persisted (overwritten or clean)

	// Lazy-persistency conflict machinery.
	SignatureHits   uint64 // working-set matches forcing persistence
	TxIDRecycles    uint64 // forced persists due to transaction-ID reuse
	TxIDCrossAccess uint64 // cache-line txid mismatches forcing persistence

	// Cross-core coherence (multi-core machines only; always zero on a
	// single core).
	CoherenceSnoops        uint64 // bus requests that found a remote copy
	CoherenceInvalidations uint64 // remote copies invalidated by a write
	CoherenceDowngrades    uint64 // remote copies downgraded to Shared
	CoherenceWritebacks    uint64 // dirty remote copies written back

	// Allocator.
	HeapAllocs, HeapFrees uint64
	HeapBytesAllocated    uint64
}

// PMWriteBytes returns total persistent-memory write traffic in bytes.
func (c *Counters) PMWriteBytes() uint64 {
	return c.PMWriteBytesData + c.PMWriteBytesLog
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Cycles += o.Cycles
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.StoreTs += o.StoreTs
	c.TxBegins += o.TxBegins
	c.TxCommits += o.TxCommits
	c.TxAborts += o.TxAborts
	c.EpochCloses += o.EpochCloses
	c.L1Hits += o.L1Hits
	c.L1Misses += o.L1Misses
	c.L2Hits += o.L2Hits
	c.L2Misses += o.L2Misses
	c.L3Hits += o.L3Hits
	c.L3Misses += o.L3Misses
	c.L1Evicts += o.L1Evicts
	c.L2Evicts += o.L2Evicts
	c.L3Evicts += o.L3Evicts
	c.L3Writebacks += o.L3Writebacks
	c.PMWriteBytesData += o.PMWriteBytesData
	c.PMWriteBytesLog += o.PMWriteBytesLog
	c.PMWriteEntries += o.PMWriteEntries
	c.PMReadBytes += o.PMReadBytes
	c.WPQStallCycles += o.WPQStallCycles
	// Gauges merge by maximum: the cores of one machine observe the same
	// shared WPQ, so summing would double-count.
	if o.WPQOccMaxBytes > c.WPQOccMaxBytes {
		c.WPQOccMaxBytes = o.WPQOccMaxBytes
	}
	if o.WPQOccAvgBytes > c.WPQOccAvgBytes {
		c.WPQOccAvgBytes = o.WPQOccAvgBytes
	}
	c.LogRecordsCreated += o.LogRecordsCreated
	c.LogRecordsCoalesced += o.LogRecordsCoalesced
	c.LogRecordsDiscarded += o.LogRecordsDiscarded
	c.LogRecordsPersisted += o.LogRecordsPersisted
	c.LogBytesPersisted += o.LogBytesPersisted
	c.LogDuplicates += o.LogDuplicates
	c.SpeculativeRecords += o.SpeculativeRecords
	c.LogBufferStalls += o.LogBufferStalls
	c.EagerLinePersists += o.EagerLinePersists
	c.EvictLinePersists += o.EvictLinePersists
	c.LazyLinesDeferred += o.LazyLinesDeferred
	c.LazyLinePersists += o.LazyLinePersists
	c.LazyLinesElided += o.LazyLinesElided
	c.SignatureHits += o.SignatureHits
	c.TxIDRecycles += o.TxIDRecycles
	c.TxIDCrossAccess += o.TxIDCrossAccess
	c.CoherenceSnoops += o.CoherenceSnoops
	c.CoherenceInvalidations += o.CoherenceInvalidations
	c.CoherenceDowngrades += o.CoherenceDowngrades
	c.CoherenceWritebacks += o.CoherenceWritebacks
	c.HeapAllocs += o.HeapAllocs
	c.HeapFrees += o.HeapFrees
	c.HeapBytesAllocated += o.HeapBytesAllocated
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// Snapshot returns a copy of the counters.
func (c *Counters) Snapshot() Counters { return *c }

// Delta returns the counters accumulated since the given snapshot.
func (c *Counters) Delta(since Counters) Counters {
	d := *c
	d.Cycles -= since.Cycles
	d.Loads -= since.Loads
	d.Stores -= since.Stores
	d.StoreTs -= since.StoreTs
	d.TxBegins -= since.TxBegins
	d.TxCommits -= since.TxCommits
	d.TxAborts -= since.TxAborts
	d.EpochCloses -= since.EpochCloses
	d.L1Hits -= since.L1Hits
	d.L1Misses -= since.L1Misses
	d.L2Hits -= since.L2Hits
	d.L2Misses -= since.L2Misses
	d.L3Hits -= since.L3Hits
	d.L3Misses -= since.L3Misses
	d.L1Evicts -= since.L1Evicts
	d.L2Evicts -= since.L2Evicts
	d.L3Evicts -= since.L3Evicts
	d.L3Writebacks -= since.L3Writebacks
	d.PMWriteBytesData -= since.PMWriteBytesData
	d.PMWriteBytesLog -= since.PMWriteBytesLog
	d.PMWriteEntries -= since.PMWriteEntries
	d.PMReadBytes -= since.PMReadBytes
	d.WPQStallCycles -= since.WPQStallCycles
	// Gauges pass through: the current high-water mark / mean is the
	// reading for the interval (harnesses reset the device's occupancy
	// window at the interval start instead of subtracting).
	d.LogRecordsCreated -= since.LogRecordsCreated
	d.LogRecordsCoalesced -= since.LogRecordsCoalesced
	d.LogRecordsDiscarded -= since.LogRecordsDiscarded
	d.LogRecordsPersisted -= since.LogRecordsPersisted
	d.LogBytesPersisted -= since.LogBytesPersisted
	d.LogDuplicates -= since.LogDuplicates
	d.SpeculativeRecords -= since.SpeculativeRecords
	d.LogBufferStalls -= since.LogBufferStalls
	d.EagerLinePersists -= since.EagerLinePersists
	d.EvictLinePersists -= since.EvictLinePersists
	d.LazyLinesDeferred -= since.LazyLinesDeferred
	d.LazyLinePersists -= since.LazyLinePersists
	d.LazyLinesElided -= since.LazyLinesElided
	d.SignatureHits -= since.SignatureHits
	d.TxIDRecycles -= since.TxIDRecycles
	d.TxIDCrossAccess -= since.TxIDCrossAccess
	d.CoherenceSnoops -= since.CoherenceSnoops
	d.CoherenceInvalidations -= since.CoherenceInvalidations
	d.CoherenceDowngrades -= since.CoherenceDowngrades
	d.CoherenceWritebacks -= since.CoherenceWritebacks
	d.HeapAllocs -= since.HeapAllocs
	d.HeapFrees -= since.HeapFrees
	d.HeapBytesAllocated -= since.HeapBytesAllocated
	return d
}

// Row is one (name, value) pair of a rendered counter table.
type Row struct {
	Name  string
	Value uint64
}

// Rows returns the non-zero counters in a stable, grouped order, suitable
// for the CLI tools' reports.
func (c *Counters) Rows() []Row {
	all := canonicalRows(c)
	rows := all[:0]
	for _, r := range all {
		if r.Value != 0 {
			rows = append(rows, r)
		}
	}
	return rows
}

// String renders the non-zero counters as an aligned table.
func (c *Counters) String() string {
	rows := c.Rows()
	width := 0
	for _, r := range rows {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s %d\n", width+2, r.Name, r.Value)
	}
	return b.String()
}

// Named returns the value of the counter with the given dotted name, as
// produced by Rows, and whether it exists (including zero-valued ones).
func (c *Counters) Named(name string) (uint64, bool) {
	for _, r := range canonicalRows(c) {
		if r.Name == name {
			return r.Value, true
		}
	}
	return 0, false
}

// Names returns every counter name in canonical order.
func Names() []string {
	rows := canonicalRows(&Counters{})
	names := make([]string, len(rows))
	for i, r := range rows {
		names[i] = r.Name
	}
	sort.Strings(names)
	return names
}

func canonicalRows(c *Counters) []Row {
	return []Row{
		{"cycles", c.Cycles},
		{"loads", c.Loads},
		{"stores", c.Stores},
		{"storeTs", c.StoreTs},
		{"tx.begins", c.TxBegins},
		{"tx.commits", c.TxCommits},
		{"tx.aborts", c.TxAborts},
		{"log.epoch.closes", c.EpochCloses},
		{"l1.hits", c.L1Hits},
		{"l1.misses", c.L1Misses},
		{"l2.hits", c.L2Hits},
		{"l2.misses", c.L2Misses},
		{"l3.hits", c.L3Hits},
		{"l3.misses", c.L3Misses},
		{"l1.evicts", c.L1Evicts},
		{"l2.evicts", c.L2Evicts},
		{"l3.evicts", c.L3Evicts},
		{"l3.writebacks", c.L3Writebacks},
		{"pm.write.bytes.data", c.PMWriteBytesData},
		{"pm.write.bytes.log", c.PMWriteBytesLog},
		{"pm.write.entries", c.PMWriteEntries},
		{"pm.read.bytes", c.PMReadBytes},
		{"pm.wpq.stall.cycles", c.WPQStallCycles},
		{"pm.wpq.occ.max", c.WPQOccMaxBytes},
		{"pm.wpq.occ.avg", c.WPQOccAvgBytes},
		{"log.records.created", c.LogRecordsCreated},
		{"log.records.coalesced", c.LogRecordsCoalesced},
		{"log.records.discarded", c.LogRecordsDiscarded},
		{"log.records.persisted", c.LogRecordsPersisted},
		{"log.bytes.persisted", c.LogBytesPersisted},
		{"log.duplicates", c.LogDuplicates},
		{"log.speculative", c.SpeculativeRecords},
		{"log.buffer.stalls", c.LogBufferStalls},
		{"persist.eager.lines", c.EagerLinePersists},
		{"persist.evict.lines", c.EvictLinePersists},
		{"lazy.deferred.lines", c.LazyLinesDeferred},
		{"lazy.persisted.lines", c.LazyLinePersists},
		{"lazy.elided.lines", c.LazyLinesElided},
		{"lazy.signature.hits", c.SignatureHits},
		{"lazy.txid.recycles", c.TxIDRecycles},
		{"lazy.txid.crossaccess", c.TxIDCrossAccess},
		{"coh.snoops", c.CoherenceSnoops},
		{"coh.invalidations", c.CoherenceInvalidations},
		{"coh.downgrades", c.CoherenceDowngrades},
		{"coh.writebacks", c.CoherenceWritebacks},
		{"heap.allocs", c.HeapAllocs},
		{"heap.frees", c.HeapFrees},
		{"heap.bytes", c.HeapBytesAllocated},
	}
}
