package stats

import "testing"

func TestAddAndDelta(t *testing.T) {
	var a, b Counters
	a.Cycles = 10
	a.Stores = 3
	b.Cycles = 5
	b.PMWriteBytesLog = 64
	a.Add(&b)
	if a.Cycles != 15 || a.PMWriteBytesLog != 64 || a.Stores != 3 {
		t.Errorf("add: %+v", a)
	}
	snap := a.Snapshot()
	a.Cycles += 100
	d := a.Delta(snap)
	if d.Cycles != 100 || d.Stores != 0 {
		t.Errorf("delta: %+v", d)
	}
}

func TestPMWriteBytes(t *testing.T) {
	c := Counters{PMWriteBytesData: 100, PMWriteBytesLog: 28}
	if c.PMWriteBytes() != 128 {
		t.Error("PMWriteBytes sum wrong")
	}
}

func TestRowsFilterZeros(t *testing.T) {
	c := Counters{Cycles: 1, L1Hits: 2}
	rows := c.Rows()
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestNamed(t *testing.T) {
	c := Counters{WPQStallCycles: 9}
	if v, ok := c.Named("pm.wpq.stall.cycles"); !ok || v != 9 {
		t.Errorf("named lookup: %d %v", v, ok)
	}
	if v, ok := c.Named("cycles"); !ok || v != 0 {
		t.Errorf("zero counter must still resolve: %d %v", v, ok)
	}
	if _, ok := c.Named("bogus"); ok {
		t.Error("bogus name resolved")
	}
}

func TestStringRendersNonZero(t *testing.T) {
	c := Counters{Cycles: 7}
	if s := c.String(); s == "" {
		t.Error("empty render")
	}
	c.Reset()
	if c.Cycles != 0 {
		t.Error("reset failed")
	}
}

func TestNamesSortedUnique(t *testing.T) {
	names := Names()
	if len(names) < 30 {
		t.Errorf("suspiciously few counters: %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("names not sorted/unique at %q", names[i])
		}
	}
}
