// Package isa defines the instruction-set extension at the heart of the
// paper: the storeT instruction and its lazy / log-free operand bits, and
// the Table I mapping from instruction form to the persist and log bits
// that the hardware sets on the target cache line.
//
// Figure 2 of the paper gives the storeT syntax:
//
//	storeT <lazy:1> <log-free:1> <data> <address>
//
// The lazy flag defers the persistence of the updated line past the
// transaction commit; the log-free flag suppresses undo/redo log creation
// for the store. A plain store behaves like storeT with both flags clear,
// except that it also unconditionally sets the log bit (Table I row 1).
package isa

import "fmt"

// Kind distinguishes the plain store instruction from the storeT
// extension.
type Kind uint8

const (
	// Store is the conventional store instruction: the hardware logs and
	// eagerly persists the target line.
	Store Kind = iota
	// StoreT is the ISA extension: the lazy and log-free operands select
	// the persist/log behaviour per Table I.
	StoreT
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Store:
		return "store"
	case StoreT:
		return "storeT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Attr carries the two 1-bit operands of storeT. For a plain Store the
// attributes are ignored by hardware.
type Attr struct {
	// Lazy defers persisting the updated cache line past transaction
	// commit; the line is guaranteed recoverable from other persistent
	// data until the hardware forces it to PM (working-set conflict or
	// transaction-ID reuse).
	Lazy bool
	// LogFree suppresses log-record creation for this store. The program
	// (or its recovery code) must be able to cancel or rebuild the
	// update's effect without a log.
	LogFree bool
}

// String implements fmt.Stringer.
func (a Attr) String() string {
	switch {
	case a.Lazy && a.LogFree:
		return "lazy,log-free"
	case a.Lazy:
		return "lazy"
	case a.LogFree:
		return "log-free"
	default:
		return "eager,logged"
	}
}

// Canonical attribute values used throughout the workloads.
var (
	// Plain requests conventional behaviour: persist at commit, logged.
	Plain = Attr{}
	// LogFree marks data recoverable by re-execution or garbage
	// collection (Pattern 1 of §IV-B): persisted at commit, not logged.
	LogFree = Attr{LogFree: true}
	// LazyLogFree marks data both recoverable and rebuildable after
	// commit (e.g. moved copies): neither logged nor persisted at commit.
	LazyLogFree = Attr{Lazy: true, LogFree: true}
	// LazyLogged keeps the undo record but defers the data persist; the
	// record is discarded at commit if the line is still cached (§III-A).
	LazyLogged = Attr{Lazy: true}
)

// Bits is the hardware decision Table I derives from an instruction: the
// values the store sets on the target cache line's persist and log bits.
type Bits struct {
	// Persist indicates the line must reach PM at transaction commit
	// (eager persistency).
	Persist bool
	// Log indicates a log record must exist for the stored words.
	Log bool
}

// Resolve implements Table I of the paper: the persist and log bits a
// store instruction sets, as a function of its kind and operands.
//
//	instruction  lazy  log-free  ->  persist  log
//	store         -      -            1        1
//	storeT        0      0            1        1
//	storeT        0      1            1        0
//	storeT        1      1            0        0
//	storeT        1      0            0        1
func Resolve(kind Kind, attr Attr) Bits {
	if kind == Store {
		return Bits{Persist: true, Log: true}
	}
	return Bits{Persist: !attr.Lazy, Log: !attr.LogFree}
}

// Caps describes which storeT semantics a hardware scheme honours. A
// scheme with neither capability treats every storeT exactly like a plain
// store — this is the paper's FG baseline, and also how the log-free
// operand's "disable" encoding behaves (§II: the 1-bit log-free flag can
// disable the semantics of storeT, treating it as a store).
type Caps struct {
	// HonorLogFree enables selective logging: the log-free operand is
	// respected.
	HonorLogFree bool
	// HonorLazy enables lazy persistency: the lazy operand is respected.
	HonorLazy bool
}

// String implements fmt.Stringer.
func (c Caps) String() string {
	switch {
	case c.HonorLogFree && c.HonorLazy:
		return "log-free+lazy"
	case c.HonorLogFree:
		return "log-free"
	case c.HonorLazy:
		return "lazy"
	default:
		return "none"
	}
}

// Effective masks attr down to the capabilities the scheme honours.
func (c Caps) Effective(attr Attr) Attr {
	return Attr{
		Lazy:    attr.Lazy && c.HonorLazy,
		LogFree: attr.LogFree && c.HonorLogFree,
	}
}

// ResolveFor combines Effective and Resolve: the bits a scheme with
// capabilities c sets for the given instruction.
func (c Caps) ResolveFor(kind Kind, attr Attr) Bits {
	if kind == Store {
		return Resolve(Store, attr)
	}
	return Resolve(StoreT, c.Effective(attr))
}
