package isa

import "testing"

// TestTableI checks the full semantics table of the paper's Table I.
func TestTableI(t *testing.T) {
	cases := []struct {
		kind    Kind
		attr    Attr
		persist bool
		log     bool
	}{
		{Store, Attr{}, true, true},
		{Store, Attr{Lazy: true, LogFree: true}, true, true}, // operands ignored
		{StoreT, Attr{Lazy: false, LogFree: false}, true, true},
		{StoreT, Attr{Lazy: false, LogFree: true}, true, false},
		{StoreT, Attr{Lazy: true, LogFree: true}, false, false},
		{StoreT, Attr{Lazy: true, LogFree: false}, false, true},
	}
	for _, c := range cases {
		got := Resolve(c.kind, c.attr)
		if got.Persist != c.persist || got.Log != c.log {
			t.Errorf("Resolve(%v, %v) = %+v, want persist=%v log=%v",
				c.kind, c.attr, got, c.persist, c.log)
		}
	}
}

func TestCapsEffective(t *testing.T) {
	full := Attr{Lazy: true, LogFree: true}
	cases := []struct {
		caps Caps
		want Attr
	}{
		{Caps{}, Attr{}},
		{Caps{HonorLogFree: true}, Attr{LogFree: true}},
		{Caps{HonorLazy: true}, Attr{Lazy: true}},
		{Caps{HonorLogFree: true, HonorLazy: true}, full},
	}
	for _, c := range cases {
		if got := c.caps.Effective(full); got != c.want {
			t.Errorf("caps %v: Effective = %v, want %v", c.caps, got, c.want)
		}
	}
}

// TestCapsResolveForBaseline: a scheme honouring nothing treats storeT
// exactly like store (the FG/ATOM/EDE behaviour).
func TestCapsResolveForBaseline(t *testing.T) {
	none := Caps{}
	for _, attr := range []Attr{Plain, LogFree, LazyLogFree, LazyLogged} {
		got := none.ResolveFor(StoreT, attr)
		if !got.Persist || !got.Log {
			t.Errorf("baseline ResolveFor(storeT, %v) = %+v, want store semantics", attr, got)
		}
	}
}

// TestPartialCaps: FG+LG honours only log-free; FG+LZ only lazy.
func TestPartialCaps(t *testing.T) {
	lg := Caps{HonorLogFree: true}
	if got := lg.ResolveFor(StoreT, LazyLogFree); got.Persist != true || got.Log != false {
		t.Errorf("FG+LG on lazy+log-free: %+v, want persist=1 log=0", got)
	}
	lz := Caps{HonorLazy: true}
	if got := lz.ResolveFor(StoreT, LazyLogFree); got.Persist != false || got.Log != true {
		t.Errorf("FG+LZ on lazy+log-free: %+v, want persist=0 log=1", got)
	}
}

func TestStringers(t *testing.T) {
	if Store.String() != "store" || StoreT.String() != "storeT" {
		t.Error("Kind.String broken")
	}
	if LazyLogFree.String() != "lazy,log-free" || Plain.String() != "eager,logged" {
		t.Error("Attr.String broken")
	}
	if (Caps{HonorLogFree: true, HonorLazy: true}).String() != "log-free+lazy" {
		t.Error("Caps.String broken")
	}
}
