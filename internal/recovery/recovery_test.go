package recovery_test

import (
	"testing"

	"github.com/persistmem/slpmt/internal/recovery"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestCrashCampaignAllWorkloads crashes every workload at sampled
// persist events under SLPMT and verifies the recovered durable state.
func TestCrashCampaignAllWorkloads(t *testing.T) {
	for _, w := range workloads.Names() {
		w := w
		t.Run(w, func(t *testing.T) {
			t.Parallel()
			res, err := recovery.RunCampaign(recovery.CampaignConfig{
				Workload:  w,
				Scheme:    "SLPMT",
				N:         60,
				ValueSize: 64,
				Stride:    17,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.PointsTested < 10 {
				t.Fatalf("too few crash points tested: %d", res.PointsTested)
			}
			t.Logf("%s: %d points over %d events, %d undo records applied, %d pending-accepted, %d bytes collected",
				w, res.PointsTested, res.TotalPersistEvents, res.RecordsApplied, res.PendingAccepted, res.LeakedBytes)
		})
	}
}

// TestCrashCampaignSchemes exercises the hashtable (the structure with
// the richest annotation mix: log-free values, lazy rehash moves)
// across every scheme, including the redo variants.
func TestCrashCampaignSchemes(t *testing.T) {
	for _, s := range []string{"FG", "FG+LG", "FG+LZ", "SLPMT", "SLPMT-CL", "ATOM", "EDE", "SLPMT-spec"} {
		s := s
		t.Run(s, func(t *testing.T) {
			t.Parallel()
			res, err := recovery.RunCampaign(recovery.CampaignConfig{
				Workload:  "hashtable",
				Scheme:    s,
				N:         50,
				ValueSize: 48,
				Stride:    23,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.PointsTested == 0 {
				t.Fatal("no crash points tested")
			}
		})
	}
}

// TestCrashCampaignMixedOps crashes workloads during interleaved
// insert/update/delete transactions — the removal and value-replacement
// recovery paths (unlink reverts, freed-block resurrection, prefix
// collapse) under every sampled crash point.
func TestCrashCampaignMixedOps(t *testing.T) {
	for _, w := range []string{"hashtable", "heap", "avl", "dlist", "kv-ctree", "kv-rtree"} {
		w := w
		t.Run(w, func(t *testing.T) {
			t.Parallel()
			res, err := recovery.RunCampaign(recovery.CampaignConfig{
				Workload:  w,
				Scheme:    "SLPMT",
				N:         80,
				ValueSize: 48,
				Mixed:     true,
				Stride:    19,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.PointsTested < 10 {
				t.Fatalf("too few crash points: %d", res.PointsTested)
			}
			t.Logf("%s mixed: %d points over %d events, %d records applied, %d pending-accepted",
				w, res.PointsTested, res.TotalPersistEvents, res.RecordsApplied, res.PendingAccepted)
		})
	}
}
