package recovery_test

import (
	"testing"

	"github.com/persistmem/slpmt/internal/recovery"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestCampaignParallelMatchesSerial asserts the campaign's determinism
// contract: fanning crash points across workers yields the exact
// CampaignResult the serial sweep produces.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	base := recovery.CampaignConfig{
		Workload:  "hashtable",
		Scheme:    "SLPMT",
		N:         40,
		ValueSize: 32,
		Stride:    11,
	}

	serialCfg := base
	serialCfg.Parallel = 1
	serial, err := recovery.RunCampaign(serialCfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.PointsTested == 0 {
		t.Fatal("serial campaign tested no points")
	}

	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Parallel = workers
		par, err := recovery.RunCampaign(cfg)
		if err != nil {
			t.Fatalf("parallel(%d): %v", workers, err)
		}
		if *par != *serial {
			t.Errorf("parallel(%d) result differs:\n  serial:   %+v\n  parallel: %+v", workers, *serial, *par)
		}
	}
}

// TestCampaignParallelMixed exercises the parallel path on the mixed
// (insert/update/delete) stream, where in-flight transactions are more
// varied.
func TestCampaignParallelMixed(t *testing.T) {
	base := recovery.CampaignConfig{
		Workload:  "dlist",
		Scheme:    "SLPMT",
		N:         30,
		ValueSize: 24,
		Mixed:     true,
		Stride:    13,
		MaxPoints: 12,
	}
	serialCfg := base
	serialCfg.Parallel = 1
	serial, err := recovery.RunCampaign(serialCfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parCfg := base
	parCfg.Parallel = 4
	par, err := recovery.RunCampaign(parCfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if *par != *serial {
		t.Errorf("mixed campaign differs:\n  serial:   %+v\n  parallel: %+v", *serial, *par)
	}
}
