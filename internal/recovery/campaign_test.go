package recovery_test

import (
	"testing"

	"github.com/persistmem/slpmt/internal/recovery"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestCampaignParallelMatchesSerial asserts the campaign's determinism
// contract: fanning crash points across workers yields the exact
// CampaignResult the serial sweep produces.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	base := recovery.CampaignConfig{
		Workload:  "hashtable",
		Scheme:    "SLPMT",
		N:         40,
		ValueSize: 32,
		Stride:    11,
	}

	serialCfg := base
	serialCfg.Parallel = 1
	serial, err := recovery.RunCampaign(serialCfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	if serial.PointsTested == 0 {
		t.Fatal("serial campaign tested no points")
	}

	for _, workers := range []int{2, 8} {
		cfg := base
		cfg.Parallel = workers
		par, err := recovery.RunCampaign(cfg)
		if err != nil {
			t.Fatalf("parallel(%d): %v", workers, err)
		}
		if *par != *serial {
			t.Errorf("parallel(%d) result differs:\n  serial:   %+v\n  parallel: %+v", workers, *serial, *par)
		}
	}
}

// TestCampaignMultiCore crashes a 2-core cluster at machine-wide
// persist points and verifies every recovered image: all per-core
// hardware logs must apply and the shared structure must reflect
// exactly the committed transactions (the in-flight one accepted
// either way).
func TestCampaignMultiCore(t *testing.T) {
	res, err := recovery.RunCampaign(recovery.CampaignConfig{
		Workload:  "hashtable",
		Scheme:    "SLPMT",
		N:         30,
		ValueSize: 32,
		Cores:     2,
		Stride:    17,
		MaxPoints: 24,
	})
	if err != nil {
		t.Fatalf("2-core campaign: %v", err)
	}
	if res.PointsTested == 0 {
		t.Fatal("2-core campaign tested no points")
	}
	t.Logf("2-core campaign: %+v", *res)
}

// TestCampaignMultiCoreRejectsMixed pins the documented restriction.
func TestCampaignMultiCoreRejectsMixed(t *testing.T) {
	_, err := recovery.RunCampaign(recovery.CampaignConfig{
		Workload: "hashtable", Scheme: "SLPMT", N: 10, ValueSize: 16,
		Cores: 2, Mixed: true,
	})
	if err == nil {
		t.Fatal("Mixed+Cores>1 must be rejected")
	}
}

// TestCampaignParallelMixed exercises the parallel path on the mixed
// (insert/update/delete) stream, where in-flight transactions are more
// varied.
func TestCampaignParallelMixed(t *testing.T) {
	base := recovery.CampaignConfig{
		Workload:  "dlist",
		Scheme:    "SLPMT",
		N:         30,
		ValueSize: 24,
		Mixed:     true,
		Stride:    13,
		MaxPoints: 12,
	}
	serialCfg := base
	serialCfg.Parallel = 1
	serial, err := recovery.RunCampaign(serialCfg)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parCfg := base
	parCfg.Parallel = 4
	par, err := recovery.RunCampaign(parCfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if *par != *serial {
		t.Errorf("mixed campaign differs:\n  serial:   %+v\n  parallel: %+v", *serial, *par)
	}
}
