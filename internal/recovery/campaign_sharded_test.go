package recovery_test

import (
	"fmt"
	"testing"

	"github.com/persistmem/slpmt/internal/recovery"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestCampaignShardedHeap crashes multi-socket clusters at EVERY persist
// event (Stride=1) and verifies each recovered image. With Sockets > 1
// the campaign recovers through RecoverSharded, which rebuilds the heap
// as the per-core arena handles, and additionally asserts (via
// txheap.Heap.Check) that every arena and the global fallback reconciled
// their live extents with the durable prefix: live blocks, free extents,
// and virgin space must exactly tile each span. The 1-socket configs run
// the same Stride=1 sweep through the classic path, pinning that the
// topology refactor did not disturb single-device recovery.
func TestCampaignShardedHeap(t *testing.T) {
	for _, sockets := range []int{1, 2} {
		for _, cores := range []int{2, 4} {
			sockets, cores := sockets, cores
			t.Run(fmt.Sprintf("sockets=%d/cores=%d", sockets, cores), func(t *testing.T) {
				t.Parallel()
				res, err := recovery.RunCampaign(recovery.CampaignConfig{
					Workload:  "hashtable",
					Scheme:    "SLPMT",
					N:         10,
					ValueSize: 24,
					Cores:     cores,
					Sockets:   sockets,
					Stride:    1,
				})
				if err != nil {
					t.Fatalf("campaign: %v", err)
				}
				if res.PointsTested == 0 {
					t.Fatal("campaign tested no points")
				}
				t.Logf("sockets=%d cores=%d: %+v", sockets, cores, *res)
			})
		}
	}
}

// TestCampaignShardedWindow runs the sharded Stride=1 sweep under a
// group-commit window, where an epoch revert can roll back several
// transactions' allocations at once — the hardest case for arena
// reconciliation (whole allocation runs vanish from the reachable set
// and must come back as free extents, not gaps).
func TestCampaignShardedWindow(t *testing.T) {
	res, err := recovery.RunCampaign(recovery.CampaignConfig{
		Workload:     "hashtable",
		Scheme:       "SLPMT",
		N:            10,
		ValueSize:    24,
		Cores:        2,
		Sockets:      2,
		CommitWindow: 4,
		Stride:       1,
	})
	if err != nil {
		t.Fatalf("windowed sharded campaign: %v", err)
	}
	if res.PointsTested == 0 {
		t.Fatal("campaign tested no points")
	}
	t.Logf("windowed sharded campaign: %+v", *res)
}
