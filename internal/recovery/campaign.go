package recovery

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/bench"
	"github.com/persistmem/slpmt/internal/machine"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/workloads"
	"github.com/persistmem/slpmt/internal/ycsb"
)

// CampaignConfig parameterizes a crash-injection campaign: the workload
// is run repeatedly, each run crashed at a different persist event, and
// the recovered image is verified against the set of transactions known
// committed at the crash point.
type CampaignConfig struct {
	Workload  string
	Scheme    string
	N         int // operations per run
	ValueSize int
	Seed      uint64
	// Cores runs each point on a multi-core cluster (insert stream
	// sharded round-robin, crash point counted against the machine-wide
	// persist total). 0 or 1 is the single-core campaign; Mixed is
	// insert-only cross-core and therefore rejected with Cores > 1.
	Cores int
	// Sockets runs each point on a multi-socket PM topology with the
	// sharded per-core heap (0 or 1 = the single-device machine).
	// Recovery then rebuilds the heap as per-core arena handles and the
	// verifier additionally asserts every arena's live extents
	// reconciled with the durable prefix (txheap.Heap.Check).
	Sockets int
	// Mixed interleaves updates and deletes with the inserts (for
	// workloads implementing Mutable); default is the paper's
	// insert-only ycsb-load.
	Mixed bool
	// CommitWindow is the group-commit window W forwarded to the
	// engine (0 or 1 = the per-transaction protocol). With W > 1 the
	// verifier switches from the single pending-operation bracket to
	// prefix matching: a crash may revert every transaction since the
	// last epoch close, so the recovered image must equal the oracle
	// after SOME completed-operation prefix — and within at most
	// cores*W operations of the crash point. A torn epoch (some of a
	// window's transactions applied, others not) matches no prefix and
	// fails, which is exactly the all-or-nothing property under test.
	CommitWindow int
	// Stride samples every Stride-th persist event (1 = every event).
	Stride uint64
	// MaxPoints caps the number of crash points tested (0 = no cap).
	MaxPoints int
	// Parallel is the worker count for the crash points (each point is
	// an independent deterministic run). 0 uses the bench harness
	// default (GOMAXPROCS); 1 forces the serial sweep. Results are
	// identical at any setting.
	Parallel int
}

// CampaignResult summarizes a campaign.
type CampaignResult struct {
	TotalPersistEvents uint64
	PointsTested       int
	// PendingAccepted counts crash points where the in-flight
	// transaction turned out to be durable (crash after its commit
	// record persisted but before control returned).
	PendingAccepted int
	RecordsApplied  int
	LeakedBytes     uint64
}

// opKind enumerates campaign operations.
type opKind int

const (
	opInsert opKind = iota
	opUpdate
	opDelete
)

// campaignOp is one deterministic operation of the run.
type campaignOp struct {
	kind opKind
	key  uint64
	val  []byte
}

// genOps produces the deterministic operation stream.
func genOps(cfg CampaignConfig) []campaignOp {
	load := ycsb.Load{N: cfg.N, ValueSize: cfg.ValueSize, Seed: cfg.Seed}
	keys := load.Keys()
	if !cfg.Mixed {
		ops := make([]campaignOp, 0, len(keys))
		for _, k := range keys {
			ops = append(ops, campaignOp{opInsert, k, load.Value(k)})
		}
		return ops
	}
	var ops []campaignOp
	var live []uint64
	rng := cfg.Seed*0x9e3779b97f4a7c15 + 0x1234
	next := func(n uint64) uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng % n
	}
	ki := 0
	for len(ops) < cfg.N {
		switch {
		case len(live) < 4 || next(100) < 50:
			if ki >= len(keys) {
				return ops
			}
			k := keys[ki]
			ki++
			ops = append(ops, campaignOp{opInsert, k, load.Value(k)})
			live = append(live, k)
		case next(100) < 50:
			k := live[next(uint64(len(live)))]
			nv := load.Value(k ^ uint64(len(ops)))
			ops = append(ops, campaignOp{opUpdate, k, nv})
		default:
			i := next(uint64(len(live)))
			k := live[i]
			ops = append(ops, campaignOp{opDelete, k, nil})
			live = append(live[:i], live[i+1:]...)
		}
	}
	return ops
}

// apply executes one op against the workload.
func apply(w workloads.Workload, sys *slpmt.System, op campaignOp) error {
	switch op.kind {
	case opInsert:
		return w.Insert(sys, op.key, op.val)
	case opUpdate:
		return w.(workloads.Mutable).UpdateValue(sys, op.key, op.val)
	default:
		return w.(workloads.Mutable).Delete(sys, op.key)
	}
}

// applyOracle mutates the oracle per op.
func applyOracle(oracle map[uint64][]byte, op campaignOp) {
	switch op.kind {
	case opInsert, opUpdate:
		oracle[op.key] = op.val
	default:
		delete(oracle, op.key)
	}
}

func cloneOracle(m map[uint64][]byte) map[uint64][]byte {
	out := make(map[uint64][]byte, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// runInfo is the outcome of one (possibly crashed) execution.
type runInfo struct {
	img *pmem.Image
	// before is the committed state preceding the in-flight operation;
	// after additionally includes it. A crash image must match one of
	// the two (the in-flight transaction either reverted or committed).
	before, after map[uint64][]byte
	// snaps holds the oracle after every completed-operation prefix
	// (snaps[0] is the post-setup state), in global execution order.
	// Collected only under a commit window, for prefix verification.
	snaps      []map[uint64][]byte
	pendingKey uint64
	crashed    bool
}

// execute runs the workload, crashing after the given persist event
// (0 = run to completion).
func execute(cfg CampaignConfig, crashAfter uint64) (info runInfo, totalPersists uint64, err error) {
	if cfg.Cores > 1 {
		return executeMulti(cfg, crashAfter)
	}
	w := workloads.MustNew(cfg.Workload)
	sys := slpmt.New(slpmt.Options{
		Scheme:             cfg.Scheme,
		ComputeCyclesPerOp: w.ComputeCost(),
		CommitWindow:       cfg.CommitWindow,
		Sockets:            cfg.Sockets,
	})
	sys.Mach.CrashAfter = crashAfter

	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(machine.CrashSignal); !ok {
				panic(r)
			}
			info.crashed = true
			info.img = sys.Mach.Crash()
		}
		totalPersists = sys.Mach.PersistCount
	}()

	if err := w.Setup(sys); err != nil {
		return info, 0, fmt.Errorf("setup: %w", err)
	}
	// Close setup's epoch (no-op without a window) so crash points —
	// which start after setup's persist count — never revert it.
	sys.FinishEpoch()
	oracle := map[uint64][]byte{}
	if cfg.CommitWindow > 1 {
		info.snaps = append(info.snaps, cloneOracle(oracle))
	}
	for _, op := range genOps(cfg) {
		info.before = cloneOracle(oracle)
		applyOracle(oracle, op)
		info.after = oracle
		info.pendingKey = op.key
		if err := apply(w, sys, op); err != nil {
			return info, 0, fmt.Errorf("op on key %d: %w", op.key, err)
		}
		info.before = info.after
		info.pendingKey = 0
		if cfg.CommitWindow > 1 {
			info.snaps = append(info.snaps, cloneOracle(oracle))
		}
	}
	sys.DrainLazy()
	info.img = sys.Mach.Crash()
	return info, sys.Mach.PersistCount, nil
}

// executeMulti is execute on a Cores-wide cluster: the deterministic
// insert stream is sharded round-robin across the cores and run under
// the cluster interleaver, with the crash point counted against the
// machine-wide persist total (so points land on whichever core issues
// the Nth persist). The interleaver schedules at transaction
// granularity — at most one operation is ever in flight — so the
// single-core oracle bracket (before/after around the pending op) is
// sound unchanged.
func executeMulti(cfg CampaignConfig, crashAfter uint64) (info runInfo, totalPersists uint64, err error) {
	w := workloads.MustNew(cfg.Workload)
	cl := slpmt.NewCluster(cfg.Cores, slpmt.Options{
		Scheme:             cfg.Scheme,
		ComputeCyclesPerOp: w.ComputeCost(),
		CommitWindow:       cfg.CommitWindow,
		Sockets:            cfg.Sockets,
	})
	cl.Plat.CrashAfterTotal = crashAfter

	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(machine.CrashSignal); !ok {
				panic(r)
			}
			info.crashed = true
			info.img = cl.Plat.Crash()
		}
		totalPersists = cl.Plat.PersistTotal
	}()

	if err := w.Setup(cl.Use(0)); err != nil {
		return info, 0, fmt.Errorf("setup: %w", err)
	}
	// A grouped close seals every core's epoch, so closing core 0's
	// (the only one setup ran on) makes all of setup durable.
	cl.Use(0).FinishEpoch()
	ops := genOps(cfg)
	oracle := map[uint64][]byte{}
	if cfg.CommitWindow > 1 {
		info.snaps = append(info.snaps, cloneOracle(oracle))
	}
	next := make([]int, cfg.Cores)
	for i := range next {
		next[i] = i
	}
	var opErr error
	cl.Interleave(func(core int, sys *slpmt.System) bool {
		j := next[core]
		if j >= len(ops) || opErr != nil {
			return false
		}
		next[core] = j + cfg.Cores
		op := ops[j]
		info.before = cloneOracle(oracle)
		applyOracle(oracle, op)
		info.after = oracle
		info.pendingKey = op.key
		if err := apply(w, sys, op); err != nil {
			opErr = fmt.Errorf("op on key %d: %w", op.key, err)
			return false
		}
		info.before = info.after
		info.pendingKey = 0
		if cfg.CommitWindow > 1 {
			// The interleaver runs whole transactions, so completion
			// order here IS the cluster-global commit order.
			info.snaps = append(info.snaps, cloneOracle(oracle))
		}
		return next[core] < len(ops)
	})
	if opErr != nil {
		return info, 0, opErr
	}
	cl.DrainLazy()
	info.img = cl.Plat.Crash()
	return info, cl.Plat.PersistTotal, nil
}

// verifyPoint recovers a crash image and verifies it against the
// pre-operation committed state, accepting the in-flight transaction as
// either durably committed or cleanly reverted.
func verifyPoint(cfg CampaignConfig, info runInfo, res *CampaignResult) error {
	w := workloads.MustNew(cfg.Workload) // fresh instance: no volatile state survives
	rec := w.(workloads.Recoverable)

	cores := cfg.Cores
	if cores < 1 {
		cores = 1
	}
	sockets := cfg.Sockets
	if sockets < 1 {
		sockets = 1
	}
	rep, heaps, err := RecoverSharded(info.img, rec, cores, sockets)
	if err != nil {
		return err
	}
	res.RecordsApplied += rep.RecordsApplied
	res.LeakedBytes += rep.Heap.ReclaimedBytes
	if sockets > 1 {
		// Sharded rebuild: every arena (and the global fallback) must
		// tile exactly into live blocks, free extents, and virgin space.
		if err := heaps[0].Check(); err != nil {
			return fmt.Errorf("sharded heap reconciliation: %w", err)
		}
	}

	if cfg.CommitWindow > 1 {
		// Group commit: the recovered image must equal the oracle after
		// some completed prefix (all-or-nothing per epoch — a torn
		// window matches nothing), no further back than the crash point
		// minus every core's worth of open-window transactions.
		cands := info.snaps
		if info.pendingKey != 0 {
			cands = append(append([]map[uint64][]byte{}, cands...), info.after)
		}
		bound := cores*cfg.CommitWindow + 1
		var firstErr error
		for i := len(cands) - 1; i >= 0 && len(cands)-1-i < bound; i-- {
			if err := rec.CheckDurable(info.img, cands[i]); err == nil {
				if info.pendingKey != 0 && i == len(cands)-1 {
					res.PendingAccepted++
				}
				return nil
			} else if firstErr == nil {
				firstErr = err
			}
		}
		return fmt.Errorf("durable state matches no committed prefix within %d operations of the crash (pending key %d): %v",
			bound, info.pendingKey, firstErr)
	}

	errBefore := rec.CheckDurable(info.img, info.before)
	if errBefore == nil {
		return nil
	}
	if info.pendingKey != 0 {
		if err := rec.CheckDurable(info.img, info.after); err == nil {
			res.PendingAccepted++
			return nil
		}
	}
	return fmt.Errorf("durable state invalid (pending key %d): %v", info.pendingKey, errBefore)
}

// setupPersists counts the persist events of Setup alone, so the
// campaign can start crashing after initialization (a crash during
// setup reverts to an uninitialized image, which applications handle by
// re-running setup — there is no structure to verify).
func setupPersists(cfg CampaignConfig) (uint64, error) {
	w := workloads.MustNew(cfg.Workload)
	if cfg.Cores > 1 {
		cl := slpmt.NewCluster(cfg.Cores, slpmt.Options{Scheme: cfg.Scheme, CommitWindow: cfg.CommitWindow, Sockets: cfg.Sockets})
		if err := w.Setup(cl.Use(0)); err != nil {
			return 0, err
		}
		cl.Use(0).FinishEpoch()
		return cl.Plat.PersistTotal, nil
	}
	sys := slpmt.New(slpmt.Options{Scheme: cfg.Scheme, CommitWindow: cfg.CommitWindow, Sockets: cfg.Sockets})
	if err := w.Setup(sys); err != nil {
		return 0, err
	}
	sys.FinishEpoch()
	return sys.Mach.PersistCount, nil
}

// pointOutcome is one crash point's contribution to the campaign.
type pointOutcome struct {
	crashed bool
	sub     CampaignResult // PendingAccepted/RecordsApplied/LeakedBytes only
	err     error
}

// testPoint executes one crash point and verifies the recovered image,
// returning its isolated contribution. Every run is deterministic and
// self-contained, so points can execute in any order (or concurrently)
// and aggregate to the same campaign result.
func testPoint(cfg CampaignConfig, point uint64) pointOutcome {
	var out pointOutcome
	info, _, err := execute(cfg, point)
	if err != nil {
		out.err = fmt.Errorf("crash point %d: %w", point, err)
		return out
	}
	if !info.crashed {
		// Point beyond the run's events (drain already done).
		return out
	}
	out.crashed = true
	if err := verifyPoint(cfg, info, &out.sub); err != nil {
		out.err = fmt.Errorf("crash point %d: %w", point, err)
	}
	return out
}

// accumulate folds one tested point into the campaign totals.
func (r *CampaignResult) accumulate(o *pointOutcome) {
	r.PointsTested++
	r.PendingAccepted += o.sub.PendingAccepted
	r.RecordsApplied += o.sub.RecordsApplied
	r.LeakedBytes += o.sub.LeakedBytes
}

// RunCampaign executes the crash-injection campaign, fanning crash
// points across cfg.Parallel workers. Outcomes are folded in ascending
// point order with the serial sweep's early-exit rules, so the result
// is bit-identical to a one-worker run.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	if cfg.Stride == 0 {
		cfg.Stride = 1
	}
	if cfg.Mixed && cfg.Cores > 1 {
		return nil, fmt.Errorf("campaign: Mixed streams are not sharded across cores (cores=%d)", cfg.Cores)
	}
	// Reference run: count persist events and confirm a clean pass.
	ref, total, err := execute(cfg, 0)
	if err != nil {
		return nil, err
	}
	if ref.crashed {
		return nil, fmt.Errorf("reference run crashed unexpectedly")
	}
	setup, err := setupPersists(cfg)
	if err != nil {
		return nil, err
	}
	res := &CampaignResult{TotalPersistEvents: total}

	var points []uint64
	for p := setup + cfg.Stride; p <= total; p += cfg.Stride {
		if cfg.MaxPoints > 0 && len(points) >= cfg.MaxPoints {
			break
		}
		points = append(points, p)
	}

	workers := cfg.Parallel
	if workers <= 0 {
		workers = bench.Parallelism()
	}
	if workers <= 1 {
		// Serial sweep: stop executing at the first error or
		// beyond-the-run point, exactly like the historical loop.
		for _, point := range points {
			out := testPoint(cfg, point)
			if out.err != nil {
				return res, out.err
			}
			if !out.crashed {
				break
			}
			res.accumulate(&out)
		}
		return res, nil
	}

	outs := make([]pointOutcome, len(points))
	if err := bench.ForEachWorkers(len(points), workers, func(i int) error {
		outs[i] = testPoint(cfg, points[i])
		return nil
	}); err != nil {
		return res, err
	}
	for i := range outs {
		if outs[i].err != nil {
			return res, outs[i].err
		}
		if !outs[i].crashed {
			break
		}
		res.accumulate(&outs[i])
	}
	return res, nil
}
