package recovery_test

import (
	"fmt"
	"testing"

	"github.com/persistmem/slpmt/internal/recovery"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestCampaignCommitWindow crashes group-committed runs at EVERY
// persist event across the window × core matrix. The exhaustive sweep
// walks points through every phase of the epoch protocol — mid-epoch
// (records buffered, data volatile), the close's log drain and sync,
// the descriptor commit point, and the gap between the commit point
// and the close's data persists — and the verifier requires the
// recovered image to equal a committed-operation prefix: a torn epoch
// (some of a window's transactions durable, others reverted) matches
// no prefix and fails the campaign.
func TestCampaignCommitWindow(t *testing.T) {
	for _, cores := range []int{1, 2, 4} {
		for _, w := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("%dc-w%d", cores, w), func(t *testing.T) {
				res, err := recovery.RunCampaign(recovery.CampaignConfig{
					Workload:     "hashtable",
					Scheme:       "SLPMT",
					N:            32,
					ValueSize:    32,
					Cores:        cores,
					CommitWindow: w,
					Stride:       1,
				})
				if err != nil {
					t.Fatalf("campaign: %v", err)
				}
				if res.PointsTested == 0 {
					t.Fatal("campaign tested no points")
				}
				t.Logf("campaign: %+v", *res)
			})
		}
	}
}

// TestCampaignCommitWindowRedo runs the window campaign in redo mode,
// where the close's logged-line persists FOLLOW the commit point and a
// crash in between must recover the epoch's data from the log replay.
func TestCampaignCommitWindowRedo(t *testing.T) {
	for _, cores := range []int{1, 2} {
		t.Run(fmt.Sprintf("%dc-w8", cores), func(t *testing.T) {
			res, err := recovery.RunCampaign(recovery.CampaignConfig{
				Workload:     "hashtable",
				Scheme:       "SLPMT-redo",
				N:            32,
				ValueSize:    32,
				Cores:        cores,
				CommitWindow: 8,
				Stride:       1,
			})
			if err != nil {
				t.Fatalf("campaign: %v", err)
			}
			if res.PointsTested == 0 {
				t.Fatal("campaign tested no points")
			}
			t.Logf("campaign: %+v", *res)
		})
	}
}
