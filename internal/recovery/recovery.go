// Package recovery implements the post-crash procedure for SLPMT
// transactions and the crash-injection campaign that validates it.
//
// Recovery runs in three phases over the durable image (the ADR crash
// snapshot):
//
//  1. Hardware log application. The log header identifies the in-flight
//     transaction: an ACTIVE undo log is applied in reverse, restoring
//     every logged word to its pre-transaction value (idempotent;
//     speculative records are no-ops). A COMMITTED redo log is replayed
//     forward. Anything else means the crash fell between transactions.
//  2. Application fix-up (§IV): the structure's own recovery repairs
//     log-free and lazily persistent data — rebuilding derivable fields
//     (rbtree parent pointers), re-executing published moves (hashtable
//     rehash, heap growth), and ignoring scribbles in unreachable
//     memory.
//  3. Heap reconstruction: a reachability walk from the roots marks the
//     live blocks; the allocator is rebuilt with everything else free —
//     the garbage collection the paper prescribes for memory leaked by
//     interrupted transactions (Pattern 1 recovery).
package recovery

import (
	"fmt"
	"sort"

	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Report summarizes one recovery run.
type Report struct {
	// LogSeq and LogState describe the hardware log at the crash.
	LogSeq   uint64
	LogState uint64
	// Mode is the logging mode found in the header.
	Mode uint64
	// LogEpoch is the epoch counter found in the header (zero for
	// legacy per-transaction streams).
	LogEpoch uint64
	// RecordsApplied counts log records applied (undo reverted or redo
	// replayed).
	RecordsApplied int
	// Heap is the allocator-reconstruction report.
	Heap txheap.RebuildReport
}

// String implements fmt.Stringer.
func (r *Report) String() string {
	state := "idle"
	switch r.LogState {
	case logfmt.StateActive:
		state = "active"
	case logfmt.StateCommitted:
		state = "committed"
	}
	return fmt.Sprintf("recovery: txn %d %s, %d records applied; heap: %d blocks / %d B live, %d gaps / %d B reclaimed",
		r.LogSeq, state, r.RecordsApplied,
		r.Heap.ReachableBlocks, r.Heap.ReachableBytes,
		r.Heap.ReclaimedGaps, r.Heap.ReclaimedBytes)
}

// ApplyLog performs phase 1 on the image: undo records of an active
// transaction are applied in reverse; redo records of a committed
// transaction are replayed in order.
func ApplyLog(img *pmem.Image) (*Report, error) {
	return applyLogRegion(img, mem.DefaultLayout(uint64(len(img.Data))))
}

// logUnit is one parsed application unit: a whole per-transaction log
// (legacy W=1 streams) or one transaction's slice of an epoch stream,
// cut at its boundary record. Units are ordered across cores by the
// boundary's cluster-global sequence when present, falling back to
// (epoch, header seq) for legacy streams.
type logUnit struct {
	epoch, seq uint64
	gseq       uint64 // boundary record's global sequence
	hasG       bool   // unit was cut at a boundary record
	undo       bool
	recs       []logfmt.Record
}

// less orders units for application: redo units replay forward in
// ascending order, undo units revert in descending order (the caller
// walks the sorted slice backwards).
func (u *logUnit) less(v *logUnit) bool {
	if u.hasG && v.hasG {
		return u.gseq < v.gseq
	}
	if u.epoch != v.epoch {
		return u.epoch < v.epoch
	}
	return u.seq < v.seq
}

// apply writes the unit's records into the image: redo units replay
// forward, undo units revert in reverse record order. Returns the
// record count.
func (u *logUnit) apply(img *pmem.Image) int {
	n := 0
	if u.undo {
		for i := len(u.recs) - 1; i >= 0; i-- {
			if logfmt.IsBoundary(u.recs[i]) {
				continue
			}
			img.Write(u.recs[i].Addr, u.recs[i].Data)
			n++
		}
	} else {
		for _, r := range u.recs {
			if logfmt.IsBoundary(r) {
				continue
			}
			img.Write(r.Addr, r.Data)
			n++
		}
	}
	return n
}

// splitUnits cuts an epoch-stream region into per-transaction units at
// its boundary records. Records ahead of the first boundary (none are
// expected: every grouped transaction opens with one) fall into a
// legacy-keyed unit so they are still applied.
func splitUnits(recs []logfmt.Record, hdr logfmt.Header, undo bool) []*logUnit {
	var units []*logUnit
	var cur *logUnit
	for _, r := range recs {
		if logfmt.IsBoundary(r) {
			cur = &logUnit{epoch: hdr.Epoch, undo: undo, gseq: logfmt.BoundarySeq(r), hasG: true}
			units = append(units, cur)
			continue
		}
		if cur == nil {
			cur = &logUnit{epoch: hdr.Epoch, seq: hdr.Seq, undo: undo}
			units = append(units, cur)
		}
		cur.recs = append(cur.recs, r)
	}
	return units
}

// parseLogRegion decodes one core's hardware log, addressed by its
// layout, into application units (empty when the log demands no
// action). ent is the core's group-descriptor entry (the zero value
// for solo machines, whose descriptor line was never written).
//
// A header with CommittedTo at or beyond the record area marks an
// epoch (group-commit) stream. The stream's committed boundary B is
// the larger of the header's CommittedTo and — when the descriptor
// entry carries the header's epoch — the descriptor boundary: grouped
// closes persist the descriptor FIRST and catch the header up after,
// so a crash between the two leaves the header a close behind. The
// committed region [RecordsStart, B) holds whole closed epochs, the
// open region [B, Watermark) the in-flight suffix. Undo streams
// revert the open suffix (the committed region's data persisted
// before its commit point and needs no replay); redo streams replay
// the committed region — a forced close may leave logged lines
// volatile when they are shared with a still-running transaction,
// relying on exactly this replay. Either way an epoch is recovered
// wholesale or not at all, and regions are cut into per-transaction
// units at their boundary records so cross-core application can run
// in exact global order.
//
// CommittedTo of zero is a legacy per-transaction stream and keeps the
// original semantics: reverse an ACTIVE undo log, replay a COMMITTED
// redo log.
func parseLogRegion(img *pmem.Image, layout mem.Layout, ent logfmt.GroupEntry) (*Report, []*logUnit, error) {
	raw := img.Data[layout.LogBase : layout.LogBase+layout.LogSize]
	hdr := logfmt.DecodeHeader(raw)
	rep := &Report{LogSeq: hdr.Seq, LogState: hdr.State, Mode: hdr.Mode, LogEpoch: hdr.Epoch}
	if hdr.Magic != logfmt.Magic {
		// Never initialized: fresh image, nothing to do.
		return rep, nil, nil
	}
	if hdr.CommittedTo >= logfmt.RecordsStart {
		boundary := hdr.CommittedTo
		if uint64(ent.Epoch) == hdr.Epoch && uint64(ent.Boundary) > boundary {
			boundary = uint64(ent.Boundary)
		}
		switch hdr.Mode {
		case logfmt.ModeUndo:
			if hdr.Watermark > boundary {
				recs, err := logfmt.ParseRegion(raw, boundary, hdr.Watermark)
				if err != nil {
					return rep, nil, fmt.Errorf("recovery: %w", err)
				}
				return rep, splitUnits(recs, hdr, true), nil
			}
		case logfmt.ModeRedo:
			if boundary > logfmt.RecordsStart {
				recs, err := logfmt.ParseRegion(raw, logfmt.RecordsStart, boundary)
				if err != nil {
					return rep, nil, fmt.Errorf("recovery: %w", err)
				}
				return rep, splitUnits(recs, hdr, false), nil
			}
		}
		return rep, nil, nil
	}
	switch {
	case hdr.State == logfmt.StateActive && hdr.Mode == logfmt.ModeUndo:
		recs, err := logfmt.ParseRecords(raw, hdr.Seq)
		if err != nil {
			return rep, nil, fmt.Errorf("recovery: %w", err)
		}
		return rep, []*logUnit{{seq: hdr.Seq, undo: true, recs: recs}}, nil
	case hdr.State == logfmt.StateCommitted && hdr.Mode == logfmt.ModeRedo:
		recs, err := logfmt.ParseRecords(raw, hdr.Seq)
		if err != nil {
			return rep, nil, fmt.Errorf("recovery: %w", err)
		}
		return rep, []*logUnit{{seq: hdr.Seq, recs: recs}}, nil
	}
	return rep, nil, nil
}

// groupDesc reads the group-commit descriptor line from the image.
func groupDesc(img *pmem.Image, layout mem.Layout) [logfmt.MaxGroupCores]logfmt.GroupEntry {
	base := layout.GroupDesc()
	return logfmt.DecodeGroupDesc(img.Data[base : base+mem.LineSize])
}

// applyLogRegion applies one core's hardware log, addressed by its
// layout, to the image.
func applyLogRegion(img *pmem.Image, layout mem.Layout) (*Report, error) {
	desc := groupDesc(img, layout)
	rep, units, err := parseLogRegion(img, layout, desc[0])
	if err != nil {
		return rep, err
	}
	// Units arrive in stream (ascending) order: redo replays forward,
	// undo reverts youngest-first.
	for _, u := range units {
		if !u.undo {
			rep.RecordsApplied += u.apply(img)
		}
	}
	for i := len(units) - 1; i >= 0; i-- {
		if units[i].undo {
			rep.RecordsApplied += units[i].apply(img)
		}
	}
	return rep, nil
}

// Recover runs the full three-phase recovery for a workload's structure
// over the image, returning the report. The returned heap is the
// reconstructed allocator (positioned over the image's layout).
func Recover(img *pmem.Image, w workloads.Recoverable) (*Report, *txheap.Heap, error) {
	return RecoverN(img, w, 1)
}

// RecoverN is Recover for an image taken from a machine with the given
// core count: every core's private hardware log is parsed against the
// shared group descriptor, the resulting per-transaction units are
// merged by their boundary records' cluster-global sequence (legacy
// streams fall back to (epoch, header seq)), and applied — redo units
// replay forward in global commit order, undo units revert in reverse
// global commit order. The global order matters: inside a commit
// window, transactions on different cores interleave writes to shared
// lines, and only applying their records in exact global order
// restores every word to its last group-committed value. The report
// carries core 0's header fields and the record total across all logs;
// the heap is rebuilt over the multi-core address map, whose heap
// region is smaller than the single-core one.
func RecoverN(img *pmem.Image, w workloads.Recoverable, cores int) (*Report, *txheap.Heap, error) {
	rep, heaps, err := RecoverSharded(img, w, cores, 1)
	if err != nil {
		return rep, nil, err
	}
	return rep, heaps[0], nil
}

// RecoverSharded is RecoverN for an image taken from a multi-socket
// machine with a sharded per-core heap: log application and the
// structure fix-up are identical (the log regions do not move), but the
// allocator is rebuilt as the per-core arena handles of the sharded
// layout, each arena reconciling its own reachable extents with the
// durable prefix. Returns one heap handle per core (all sharing the
// rebuilt spans); with sockets <= 1 the single classic heap is returned
// in every slot.
func RecoverSharded(img *pmem.Image, w workloads.Recoverable, cores, sockets int) (*Report, []*txheap.Heap, error) {
	if cores < 1 {
		cores = 1
	}
	layouts := mem.MultiLayoutSockets(uint64(len(img.Data)), cores, sockets)
	desc := groupDesc(img, layouts[0])
	var rep *Report
	var units []*logUnit
	for i, layout := range layouts {
		var ent logfmt.GroupEntry
		if i < logfmt.MaxGroupCores {
			ent = desc[i]
		}
		r, us, err := parseLogRegion(img, layout, ent)
		if err != nil {
			return r, nil, fmt.Errorf("recovery: core %d log: %w", i, err)
		}
		if rep == nil {
			rep = r
		}
		units = append(units, us...)
	}
	sort.SliceStable(units, func(i, j int) bool { return units[i].less(units[j]) })
	applied := 0
	for _, u := range units {
		if !u.undo {
			applied += u.apply(img)
		}
	}
	for i := len(units) - 1; i >= 0; i-- {
		if units[i].undo {
			applied += units[i].apply(img)
		}
	}
	rep.RecordsApplied = applied
	if err := w.Recover(img); err != nil {
		return rep, nil, fmt.Errorf("recovery: structure fix-up: %w", err)
	}
	reach, err := w.Reach(img)
	if err != nil {
		return rep, nil, fmt.Errorf("recovery: reachability: %w", err)
	}
	heaps := make([]*txheap.Heap, cores)
	if sockets > 1 {
		heaps = txheap.NewSharded(make([]txheap.Ticker, cores), layouts, 0)
		rep.Heap = txheap.RebuildSharded(heaps, reach)
	} else {
		heap := txheap.New(nil, layouts[0], 0)
		rep.Heap = heap.Rebuild(reach)
		for i := range heaps {
			heaps[i] = heap
		}
	}
	return rep, heaps, nil
}
