// Package recovery implements the post-crash procedure for SLPMT
// transactions and the crash-injection campaign that validates it.
//
// Recovery runs in three phases over the durable image (the ADR crash
// snapshot):
//
//  1. Hardware log application. The log header identifies the in-flight
//     transaction: an ACTIVE undo log is applied in reverse, restoring
//     every logged word to its pre-transaction value (idempotent;
//     speculative records are no-ops). A COMMITTED redo log is replayed
//     forward. Anything else means the crash fell between transactions.
//  2. Application fix-up (§IV): the structure's own recovery repairs
//     log-free and lazily persistent data — rebuilding derivable fields
//     (rbtree parent pointers), re-executing published moves (hashtable
//     rehash, heap growth), and ignoring scribbles in unreachable
//     memory.
//  3. Heap reconstruction: a reachability walk from the roots marks the
//     live blocks; the allocator is rebuilt with everything else free —
//     the garbage collection the paper prescribes for memory leaked by
//     interrupted transactions (Pattern 1 recovery).
package recovery

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/logfmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Report summarizes one recovery run.
type Report struct {
	// LogSeq and LogState describe the hardware log at the crash.
	LogSeq   uint64
	LogState uint64
	// Mode is the logging mode found in the header.
	Mode uint64
	// RecordsApplied counts log records applied (undo reverted or redo
	// replayed).
	RecordsApplied int
	// Heap is the allocator-reconstruction report.
	Heap txheap.RebuildReport
}

// String implements fmt.Stringer.
func (r *Report) String() string {
	state := "idle"
	switch r.LogState {
	case logfmt.StateActive:
		state = "active"
	case logfmt.StateCommitted:
		state = "committed"
	}
	return fmt.Sprintf("recovery: txn %d %s, %d records applied; heap: %d blocks / %d B live, %d gaps / %d B reclaimed",
		r.LogSeq, state, r.RecordsApplied,
		r.Heap.ReachableBlocks, r.Heap.ReachableBytes,
		r.Heap.ReclaimedGaps, r.Heap.ReclaimedBytes)
}

// ApplyLog performs phase 1 on the image: undo records of an active
// transaction are applied in reverse; redo records of a committed
// transaction are replayed in order.
func ApplyLog(img *pmem.Image) (*Report, error) {
	return applyLogRegion(img, mem.DefaultLayout(uint64(len(img.Data))))
}

// applyLogRegion applies one core's hardware log, addressed by its
// layout, to the image.
func applyLogRegion(img *pmem.Image, layout mem.Layout) (*Report, error) {
	raw := img.Data[layout.LogBase : layout.LogBase+layout.LogSize]
	hdr := logfmt.DecodeHeader(raw)
	rep := &Report{LogSeq: hdr.Seq, LogState: hdr.State, Mode: hdr.Mode}
	if hdr.Magic != logfmt.Magic {
		// Never initialized: fresh image, nothing to do.
		return rep, nil
	}
	switch {
	case hdr.State == logfmt.StateActive && hdr.Mode == logfmt.ModeUndo:
		recs, err := logfmt.ParseRecords(raw, hdr.Seq)
		if err != nil {
			return rep, fmt.Errorf("recovery: %w", err)
		}
		for i := len(recs) - 1; i >= 0; i-- {
			img.Write(recs[i].Addr, recs[i].Data)
			rep.RecordsApplied++
		}
	case hdr.State == logfmt.StateCommitted && hdr.Mode == logfmt.ModeRedo:
		recs, err := logfmt.ParseRecords(raw, hdr.Seq)
		if err != nil {
			return rep, fmt.Errorf("recovery: %w", err)
		}
		for _, r := range recs {
			img.Write(r.Addr, r.Data)
			rep.RecordsApplied++
		}
	}
	return rep, nil
}

// Recover runs the full three-phase recovery for a workload's structure
// over the image, returning the report. The returned heap is the
// reconstructed allocator (positioned over the image's layout).
func Recover(img *pmem.Image, w workloads.Recoverable) (*Report, *txheap.Heap, error) {
	return RecoverN(img, w, 1)
}

// RecoverN is Recover for an image taken from a machine with the given
// core count: every core's private hardware log is applied (core 0
// first; at most one log can be mid-transaction per core, and the logs
// address disjoint write sets under the interleaver's
// transaction-granularity scheduling). The report carries core 0's
// header fields and the record total across all logs; the heap is
// rebuilt over the multi-core address map, whose heap region is
// smaller than the single-core one.
func RecoverN(img *pmem.Image, w workloads.Recoverable, cores int) (*Report, *txheap.Heap, error) {
	if cores < 1 {
		cores = 1
	}
	layouts := mem.MultiLayout(uint64(len(img.Data)), cores)
	var rep *Report
	for i, layout := range layouts {
		r, err := applyLogRegion(img, layout)
		if err != nil {
			return r, nil, fmt.Errorf("recovery: core %d log: %w", i, err)
		}
		if rep == nil {
			rep = r
		} else {
			rep.RecordsApplied += r.RecordsApplied
		}
	}
	if err := w.Recover(img); err != nil {
		return rep, nil, fmt.Errorf("recovery: structure fix-up: %w", err)
	}
	reach, err := w.Reach(img)
	if err != nil {
		return rep, nil, fmt.Errorf("recovery: reachability: %w", err)
	}
	heap := txheap.New(nil, layouts[0], 0)
	rep.Heap = heap.Rebuild(reach)
	return rep, heap, nil
}
