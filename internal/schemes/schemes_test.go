package schemes

import (
	"testing"

	"github.com/persistmem/slpmt/internal/engine"
)

func TestLookupAllValid(t *testing.T) {
	for _, n := range Names() {
		cfg, err := Lookup(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", n, err)
		}
		if cfg.Name != n {
			t.Errorf("%s: name mismatch %q", n, cfg.Name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestKeyConfigurations(t *testing.T) {
	fg := MustLookup(FG)
	if fg.Caps.HonorLazy || fg.Caps.HonorLogFree || fg.Granularity != engine.Word {
		t.Errorf("FG config wrong: %+v", fg)
	}
	atom := MustLookup(ATOM)
	if atom.Granularity != engine.Line || atom.Buffer != engine.BufferTiered {
		t.Errorf("ATOM config wrong: %+v", atom)
	}
	ede := MustLookup(EDE)
	if ede.Buffer != engine.BufferDirect || ede.Granularity != engine.Word {
		t.Errorf("EDE config wrong: %+v", ede)
	}
	full := MustLookup(SLPMT)
	if !full.Caps.HonorLazy || !full.Caps.HonorLogFree {
		t.Errorf("SLPMT config wrong: %+v", full)
	}
	redo := MustLookup(SLPMTRedo)
	if redo.Mode != engine.Redo {
		t.Error("redo variant wrong")
	}
}

func TestEvaluatedSubset(t *testing.T) {
	for _, n := range Evaluated() {
		if _, err := Lookup(n); err != nil {
			t.Errorf("evaluated scheme %s unknown", n)
		}
	}
}
