// Package schemes defines the named hardware configurations the paper
// evaluates (§VI-C), each as an engine.Config:
//
//   - FG: the baseline — fine-grain (word) logging through the tiered
//     coalescing log buffer, with both selective-logging features
//     disabled (storeT behaves as store).
//   - FG+LG: FG plus the log-free capability only.
//   - FG+LZ: FG plus lazy persistency only.
//   - SLPMT: the full design (fine-grain logging + log-free + lazy).
//   - SLPMT-CL: SLPMT logging at cache-line granularity (Figure 9).
//   - ATOM: state-of-the-art hardware undo logging at cache-line
//     granularity with an 8-record coalescing log buffer.
//   - EDE: hardware logging at arbitrary granularity without a
//     coalescing buffer; records are flushed as produced (with a single
//     staging slot merging directly adjacent records).
//
// Redo variants of FG and SLPMT are provided for the Figure 4 ordering
// experiments and the §V-A in-place-update optimization.
package schemes

import (
	"fmt"
	"sort"

	"github.com/persistmem/slpmt/internal/engine"
	"github.com/persistmem/slpmt/internal/isa"
)

// Scheme names.
const (
	FG        = "FG"
	FGLG      = "FG+LG"
	FGLZ      = "FG+LZ"
	SLPMT     = "SLPMT"
	SLPMTCL   = "SLPMT-CL"
	ATOM      = "ATOM"
	EDE       = "EDE"
	FGRedo    = "FG-redo"
	SLPMTRedo = "SLPMT-redo"
	SLPMTSpec = "SLPMT-spec"
)

var configs = map[string]engine.Config{
	FG: {
		Name:        FG,
		Caps:        isa.Caps{},
		Granularity: engine.Word,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
	},
	FGLG: {
		Name:        FGLG,
		Caps:        isa.Caps{HonorLogFree: true},
		Granularity: engine.Word,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
	},
	FGLZ: {
		Name:        FGLZ,
		Caps:        isa.Caps{HonorLazy: true},
		Granularity: engine.Word,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
	},
	SLPMT: {
		Name:        SLPMT,
		Caps:        isa.Caps{HonorLogFree: true, HonorLazy: true},
		Granularity: engine.Word,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
	},
	SLPMTCL: {
		Name:        SLPMTCL,
		Caps:        isa.Caps{HonorLogFree: true, HonorLazy: true},
		Granularity: engine.Line,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
	},
	ATOM: {
		Name:        ATOM,
		Caps:        isa.Caps{},
		Granularity: engine.Line,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
	},
	EDE: {
		Name:        EDE,
		Caps:        isa.Caps{},
		Granularity: engine.Word,
		Mode:        engine.Undo,
		Buffer:      engine.BufferDirect,
	},
	FGRedo: {
		Name:        FGRedo,
		Caps:        isa.Caps{},
		Granularity: engine.Word,
		Mode:        engine.Redo,
		Buffer:      engine.BufferTiered,
	},
	SLPMTRedo: {
		Name:        SLPMTRedo,
		Caps:        isa.Caps{HonorLogFree: true, HonorLazy: true},
		Granularity: engine.Word,
		Mode:        engine.Redo,
		Buffer:      engine.BufferTiered,
	},
	SLPMTSpec: {
		Name:        SLPMTSpec,
		Caps:        isa.Caps{HonorLogFree: true, HonorLazy: true},
		Granularity: engine.Word,
		Mode:        engine.Undo,
		Buffer:      engine.BufferTiered,
		Speculative: true,
	},
}

// Lookup returns the configuration for a scheme name.
func Lookup(name string) (engine.Config, error) {
	c, ok := configs[name]
	if !ok {
		return engine.Config{}, fmt.Errorf("schemes: unknown scheme %q (have %v)", name, Names())
	}
	return c, nil
}

// MustLookup is Lookup that panics on unknown names.
func MustLookup(name string) engine.Config {
	c, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Names returns every scheme name, sorted.
func Names() []string {
	out := make([]string, 0, len(configs))
	for n := range configs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Evaluated returns the schemes of the paper's main comparison
// (Figure 8): baseline first, then the feature breakdowns, the full
// design, and the prior-work designs.
func Evaluated() []string {
	return []string{FG, FGLG, FGLZ, SLPMT, ATOM, EDE}
}
