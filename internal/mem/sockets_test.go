package mem

import "testing"

// TestMultiLayoutSocketsMapUnchanged pins the refactor's central
// contract: the address map (heap, log stack, root directory) is
// byte-identical for any socket count — sockets only add an
// interpretation (SocketOf) and the arena carve-out on top of it.
func TestMultiLayoutSocketsMapUnchanged(t *testing.T) {
	const size, cores = 64 << 20, 4
	base := MultiLayout(size, cores)
	for _, sockets := range []int{2, 4} {
		ls := MultiLayoutSockets(size, cores, sockets)
		for i := range ls {
			b, l := base[i], ls[i]
			if l.HeapBase != b.HeapBase || l.HeapSize != b.HeapSize ||
				l.LogBase != b.LogBase || l.LogSize != b.LogSize ||
				l.RootBase != b.RootBase || l.RootSize != b.RootSize {
				t.Errorf("core %d, %d sockets: address map drifted: %+v vs %+v", i, sockets, l, b)
			}
		}
	}
}

func TestMultiLayoutSocketsArenas(t *testing.T) {
	ls := MultiLayoutSockets(64<<20, 3, 2)
	for i, l := range ls {
		if l.ArenaBase != l.HeapBase+uint64(i)*SocketStripe || l.ArenaSize != SocketStripe {
			t.Errorf("core %d arena [%#x,%d)", i, l.ArenaBase, l.ArenaSize)
		}
		// Arena i is stripe i: on core i's home socket by construction.
		if got, want := l.SocketOf(l.ArenaBase), i%2; got != want {
			t.Errorf("core %d arena on socket %d, want %d", i, got, want)
		}
	}
	// Single-socket layouts carve no arenas.
	for _, l := range MultiLayout(64<<20, 3) {
		if l.ArenaBase != 0 || l.ArenaSize != 0 {
			t.Errorf("single-socket layout carved an arena: %+v", l)
		}
	}
}

func TestSocketOfSingleSocketConstant(t *testing.T) {
	l := DefaultLayout(64 << 20)
	for _, a := range []Addr{0, l.HeapBase, l.LogBase, l.RootBase, l.Size - 1} {
		if l.SocketOf(a) != 0 {
			t.Errorf("SocketOf(%#x) != 0 on a single-socket layout", a)
		}
	}
	// The zero-valued layout (unit tests that never build one) is also
	// single-socket.
	if (Layout{}).SocketOf(12345) != 0 {
		t.Error("zero-valued layout not constant 0")
	}
}

func TestSocketOfRegions(t *testing.T) {
	const cores, sockets = 4, 2
	ls := MultiLayoutSockets(64<<20, cores, sockets)
	l := ls[0]

	// Root directory (and the group-commit descriptor line): socket 0.
	if l.SocketOf(l.RootBase) != 0 || l.SocketOf(l.GroupDesc()) != 0 {
		t.Error("root directory not on socket 0")
	}
	// Guard line below the heap: socket 0.
	if l.SocketOf(0) != 0 {
		t.Error("guard line not on socket 0")
	}
	// Each core's log region is local to its home socket — the property
	// that keeps every log persist off the interconnect.
	for k, lk := range ls {
		for _, a := range []Addr{lk.LogBase, lk.LogBase + lk.LogSize - 1} {
			if got, want := l.SocketOf(a), k%sockets; got != want {
				t.Errorf("core %d log addr %#x on socket %d, want %d", k, a, got, want)
			}
		}
	}
	// Arena stripes j < cores: socket j mod sockets, constant across the
	// whole stripe.
	for j := 0; j < cores; j++ {
		lo := l.HeapBase + uint64(j)*SocketStripe
		for _, a := range []Addr{lo, lo + SocketStripe - 1} {
			if got, want := l.SocketOf(a), j%sockets; got != want {
				t.Errorf("stripe %d addr %#x on socket %d, want %d", j, a, got, want)
			}
		}
	}
	// The global fallback (past the last arena stripe) line-interleaves:
	// adjacent lines alternate sockets, addresses within a line agree.
	fb := l.HeapBase + uint64(cores)*SocketStripe
	s0, s1 := l.SocketOf(fb), l.SocketOf(fb+LineSize)
	if s0 == s1 {
		t.Error("fallback lines not interleaved")
	}
	if l.SocketOf(fb+LineSize-1) != s0 || l.SocketOf(fb+2*LineSize) != s0 {
		t.Error("fallback interleave not line-granular with period = sockets")
	}
}

// TestSocketOfTotal: every address of the device maps to a valid socket
// — the routing layers index device arrays with the result.
func TestSocketOfTotal(t *testing.T) {
	l := MultiLayoutSockets(64<<20, 3, 4)[1]
	for a := Addr(0); a < l.Size; a += 7919 { // prime stride samples every region
		s := l.SocketOf(a)
		if s < 0 || s >= 4 {
			t.Fatalf("SocketOf(%#x) = %d out of range", a, s)
		}
	}
}
