// Package mem defines the primitive address arithmetic shared by every
// layer of the SLPMT simulator: word and cache-line geometry, address
// alignment helpers, and the simulated physical address space layout.
//
// The simulator models a flat byte-addressable persistent memory. All
// higher-level components (caches, log buffer, transaction engine, heap
// allocator) agree on the constants defined here; changing LineSize or
// WordSize is not supported.
package mem

// Addr is a simulated physical byte address.
type Addr = uint64

// Geometry of the simulated memory system. These mirror the paper's
// assumptions: 8-byte words, 64-byte cache lines, eight words per line.
const (
	// WordSize is the logging granularity of fine-grain schemes (bytes).
	WordSize = 8
	// LineSize is the cache-line size in bytes.
	LineSize = 64
	// WordsPerLine is the number of log-bit-tracked words in a line.
	WordsPerLine = LineSize / WordSize // 8
	// LineShift is log2(LineSize).
	LineShift = 6
	// WordShift is log2(WordSize).
	WordShift = 3
)

// LineAddr returns the address of the cache line containing a.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// LineOffset returns the byte offset of a within its cache line.
func LineOffset(a Addr) int { return int(a & (LineSize - 1)) }

// WordAddr returns the address of the 8-byte word containing a.
func WordAddr(a Addr) Addr { return a &^ (WordSize - 1) }

// WordIndex returns the index (0..7) of the word containing a within its
// cache line.
func WordIndex(a Addr) int { return int(a&(LineSize-1)) >> WordShift }

// AlignUp rounds a up to the next multiple of align. align must be a
// power of two.
func AlignUp(a Addr, align uint64) Addr { return (a + align - 1) &^ (align - 1) }

// AlignedTo reports whether a is a multiple of align (a power of two).
func AlignedTo(a Addr, align uint64) bool { return a&(align-1) == 0 }

// WordMask returns the bitmask (one bit per word, bit i = word i) of the
// words in the line at lineAddr touched by the byte range [a, a+size).
// The range must lie entirely within one cache line.
func WordMask(a Addr, size int) uint8 {
	first := WordIndex(a)
	last := WordIndex(a + Addr(size) - 1)
	var m uint8
	for i := first; i <= last; i++ {
		m |= 1 << uint(i)
	}
	return m
}

// SpansLines reports whether the byte range [a, a+size) crosses a cache
// line boundary.
func SpansLines(a Addr, size int) bool {
	if size <= 0 {
		return false
	}
	return LineAddr(a) != LineAddr(a+Addr(size)-1)
}

// LineRange invokes fn for each (lineAddr, start, end) triple covering the
// byte range [a, a+size), where start/end are byte offsets into the
// respective line. It is the canonical way to split an unaligned access
// into per-line sub-accesses.
func LineRange(a Addr, size int, fn func(line Addr, off, n int)) {
	for size > 0 {
		line := LineAddr(a)
		off := LineOffset(a)
		n := LineSize - off
		if n > size {
			n = size
		}
		fn(line, off, n)
		a += Addr(n)
		size -= n
	}
}

// Layout describes the simulated persistent memory address map. The heap
// occupies the low region; the undo/redo log area and the root directory
// occupy the top. Everything is line-aligned.
type Layout struct {
	// Size is the total PM capacity in bytes.
	Size uint64
	// HeapBase and HeapSize delimit the allocatable persistent heap.
	HeapBase, HeapSize uint64
	// LogBase and LogSize delimit the hardware log area.
	LogBase, LogSize uint64
	// RootBase and RootSize delimit the root directory used by recovery
	// to find the application's top-level persistent pointers.
	RootBase, RootSize uint64
	// Cores and Sockets describe the machine the map was built for.
	// Sockets < 2 means the historical single-device map (SocketOf is
	// then constant 0 and no arenas are carved).
	Cores, Sockets int
	// ArenaBase and ArenaSize delimit this core's local allocation
	// arena: a SocketStripe-sized slice of the heap whose stripe lives
	// on the core's home socket. Zero when Sockets < 2 — the heap is
	// then one undivided region.
	ArenaBase, ArenaSize uint64
}

// Region sizes of the default address map: a 4 MiB hardware log area
// (per core) and a 4 KiB root directory at the top of the device.
const (
	LogRegionSize  = 4 << 20
	RootRegionSize = 4 << 10
	// SocketStripe is the granularity of the heap's socket interleave on
	// a multi-socket topology: stripe i of the heap maps to socket
	// i mod Sockets. It is also the per-core arena size — arena i is
	// exactly stripe i, so (with cores pinned home = i mod sockets)
	// every core's arena is socket-local by construction.
	SocketStripe = 1 << 20
)

// DefaultLayout returns the address map used throughout the evaluation:
// a PM device of the given size with a 4 MiB log area and a 4 KiB root
// directory carved from the top.
func DefaultLayout(size uint64) Layout {
	return MultiLayout(size, 1)[0]
}

// MultiLayout returns the per-core address maps of a machine with the
// given core count. Every core shares the heap and the root directory;
// each core owns a private 4 MiB hardware log region, stacked downward
// from the root directory (core 0 highest, so MultiLayout(size, 1)[0]
// is exactly the historical single-core DefaultLayout).
func MultiLayout(size uint64, cores int) []Layout {
	return MultiLayoutSockets(size, cores, 1)
}

// MultiLayoutSockets returns the per-core address maps of a machine
// whose PM is a multi-socket topology. The address map itself (heap,
// log regions, root directory) is byte-identical to MultiLayout for any
// socket count; sockets only adds an interpretation of it:
//
//   - The heap is striped over the sockets at SocketStripe granularity
//     (see SocketOf). Core i's local arena is stripe i — on core i's
//     home socket (i mod sockets) by construction. The stripes past the
//     last core form the shared global fallback pool.
//   - Core i's private log region sits on socket i mod sockets: the log
//     stack grows downward from the root directory with core 0 on top,
//     and SocketOf maps log region k to socket k mod sockets — so every
//     core's log persists are socket-local.
//   - The root directory (and the group-commit descriptor line) lives
//     on socket 0.
//
// With sockets < 2 the result is exactly MultiLayout's.
func MultiLayoutSockets(size uint64, cores, sockets int) []Layout {
	if cores < 1 {
		cores = 1
	}
	if sockets < 1 {
		sockets = 1
	}
	need := uint64(cores)*LogRegionSize + RootRegionSize + LineSize
	if size < need {
		panic("mem: PM size too small for layout")
	}
	rootBase := size - RootRegionSize
	heapSize := rootBase - uint64(cores)*LogRegionSize - LineSize
	if sockets > 1 && uint64(cores+1)*SocketStripe > heapSize {
		panic("mem: PM heap too small for per-core socket arenas")
	}
	out := make([]Layout, cores)
	for i := range out {
		out[i] = Layout{
			Size:     size,
			HeapBase: LineSize, // keep address 0 unmapped to catch nil derefs
			HeapSize: heapSize,
			LogBase:  rootBase - uint64(i+1)*LogRegionSize,
			LogSize:  LogRegionSize,
			RootBase: rootBase,
			RootSize: RootRegionSize,
			Cores:    cores,
			Sockets:  sockets,
		}
		if sockets > 1 {
			out[i].ArenaBase = LineSize + uint64(i)*SocketStripe
			out[i].ArenaSize = SocketStripe
		}
	}
	return out
}

// SocketOf returns the socket holding address a under the layout's
// interleave. Single-socket layouts (including zero-valued ones) map
// everything to socket 0. The map is:
//
//   - root directory: socket 0
//   - log region of core k (stacked downward from the root): socket
//     k mod Sockets — local to its owning core
//   - heap arena stripes (the first Cores stripes): stripe j on socket
//     j mod Sockets — each core's arena is local to its home socket
//   - heap global-fallback region (every stripe past the arenas):
//     line-interleaved across the sockets, spreading shared objects
//   - the unmapped guard line below the heap: socket 0
func (l Layout) SocketOf(a Addr) int {
	if l.Sockets < 2 {
		return 0
	}
	if a >= l.RootBase {
		return 0
	}
	logLow := l.RootBase - uint64(l.Cores)*LogRegionSize
	if a >= logLow {
		k := int((l.RootBase - 1 - a) / LogRegionSize)
		return k % l.Sockets
	}
	if a < l.HeapBase {
		return 0
	}
	stripe := (a - l.HeapBase) / SocketStripe
	if stripe >= uint64(l.Cores) {
		// Global fallback region (past the last per-core arena stripe):
		// line-interleaved across the sockets, so large shared objects —
		// a hashtable's bucket array, a tree's setup-built spine —
		// spread their lines evenly instead of camping on the arena
		// owner's socket and serializing every sibling's persists
		// behind one write queue.
		return int((a >> LineShift) % uint64(l.Sockets))
	}
	return int(stripe % uint64(l.Sockets))
}

// GroupDesc returns the address of the group-commit descriptor line:
// the top line of the root directory, reserved for the multi-core
// epoch-group commit point. Root slots live at the bottom of the
// region, so the reservation takes slots 504..511 out of circulation;
// per-transaction (W = 1) machines never touch the line.
func (l Layout) GroupDesc() Addr { return l.RootBase + l.RootSize - LineSize }

// InHeap reports whether the byte range [a, a+size) lies entirely in the
// heap region.
func (l Layout) InHeap(a Addr, size int) bool {
	return a >= l.HeapBase && a+Addr(size) <= l.HeapBase+l.HeapSize
}

// InLog reports whether a lies in the log region.
func (l Layout) InLog(a Addr) bool {
	return a >= l.LogBase && a < l.LogBase+l.LogSize
}
