package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddr(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {65, 64}, {127, 64}, {128, 128},
	}
	for _, c := range cases {
		if got := LineAddr(c.in); got != c.want {
			t.Errorf("LineAddr(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestWordIndex(t *testing.T) {
	if got := WordIndex(0); got != 0 {
		t.Errorf("WordIndex(0) = %d", got)
	}
	if got := WordIndex(63); got != 7 {
		t.Errorf("WordIndex(63) = %d", got)
	}
	if got := WordIndex(64 + 8); got != 1 {
		t.Errorf("WordIndex(72) = %d", got)
	}
}

func TestAlignUp(t *testing.T) {
	cases := []struct {
		a     Addr
		align uint64
		want  Addr
	}{
		{0, 8, 0}, {1, 8, 8}, {8, 8, 8}, {9, 8, 16}, {63, 64, 64}, {64, 64, 64},
	}
	for _, c := range cases {
		if got := AlignUp(c.a, c.align); got != c.want {
			t.Errorf("AlignUp(%d,%d) = %d, want %d", c.a, c.align, got, c.want)
		}
	}
}

func TestWordMask(t *testing.T) {
	cases := []struct {
		a    Addr
		size int
		want uint8
	}{
		{0, 8, 0x01},
		{8, 8, 0x02},
		{56, 8, 0x80},
		{0, 64, 0xFF},
		{0, 16, 0x03},
		{4, 8, 0x03}, // unaligned 8-byte store touches words 0 and 1
		{16, 32, 0x3C},
	}
	for _, c := range cases {
		if got := WordMask(c.a, c.size); got != c.want {
			t.Errorf("WordMask(%d,%d) = %#x, want %#x", c.a, c.size, got, c.want)
		}
	}
}

func TestSpansLines(t *testing.T) {
	if SpansLines(0, 64) {
		t.Error("0..64 should not span")
	}
	if !SpansLines(60, 8) {
		t.Error("60..68 should span")
	}
	if SpansLines(0, 0) {
		t.Error("empty range should not span")
	}
}

// TestLineRangeProperty: the per-line decomposition exactly tiles the
// original range, in order, without crossing line boundaries.
func TestLineRangeProperty(t *testing.T) {
	f := func(start uint32, size16 uint16) bool {
		a := Addr(start)
		size := int(size16 % 1024)
		var total int
		next := a
		ok := true
		LineRange(a, size, func(line Addr, off, n int) {
			if line != LineAddr(next) || off != LineOffset(next) {
				ok = false
			}
			if off+n > LineSize || n <= 0 {
				ok = false
			}
			next += Addr(n)
			total += n
		})
		return ok && total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDefaultLayout(t *testing.T) {
	l := DefaultLayout(16 << 20)
	if l.HeapBase != LineSize {
		t.Errorf("heap base = %#x", l.HeapBase)
	}
	if l.HeapBase+l.HeapSize != l.LogBase {
		t.Error("heap and log regions not adjacent")
	}
	if l.LogBase+l.LogSize != l.RootBase {
		t.Error("log and root regions not adjacent")
	}
	if l.RootBase+l.RootSize != l.Size {
		t.Error("root region does not end at device size")
	}
	if !l.InHeap(l.HeapBase, 8) || l.InHeap(l.LogBase, 8) {
		t.Error("InHeap misclassifies")
	}
	if !l.InLog(l.LogBase) || l.InLog(l.RootBase) {
		t.Error("InLog misclassifies")
	}
}

func TestDefaultLayoutTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for tiny device")
		}
	}()
	DefaultLayout(1 << 10)
}
