// Package logfmt defines the durable layout of the hardware log area in
// persistent memory, shared by the transaction engine (writer) and the
// recovery code (reader).
//
// Layout (all fields little-endian, offsets relative to the log base):
//
//	+0   magic       "SLPMTLOG"
//	+8   sequence    transaction sequence number (increments per Begin)
//	+16  state       0 idle, 1 active, 2 committed
//	+24  mode        1 undo, 2 redo
//	+32  watermark   offset one past the last durably complete record
//	+40  epoch       per-core group-commit epoch counter (0 = per-txn)
//	+48  committedTo offset one past the last committed record (0 = per-txn)
//	+64  records     packed log records
//
// The watermark solves the torn-record problem: records are packed into
// line-sized PM writes, so a crash can persist a record's address word
// without its data. The writer persists record chunks first and then
// advances the watermark (a separate line, ordered after), so recovery
// never parses beyond fully persisted records. The invariant that makes
// the lag safe is that a data line is only persisted after its log
// records are durable INCLUDING the watermark update.
//
// Each record is an address word followed by the logged data:
//
//	addrWord = tag<<48 | dataAddr | sizeCode
//	sizeCode = 1,2,3,4 for 8,16,32,64 data bytes
//	tag      = low 16 bits of the owning transaction's sequence number
//
// The record stream of transaction S ends at the first word that is
// zero, malformed, or carries a tag other than S&0xffff. The tag makes
// parsing robust against the stale bytes of earlier transactions that
// follow the stream when a crash interrupts it between a full-line spill
// and the next terminator sync: stale records carry older sequence tags
// and are rejected. Record application is idempotent, so re-parsing a
// prefix after a crash is safe. Data addresses are limited to 48 bits.
//
// Group commit (epochs). With a commit window above one transaction,
// the stream holds the records of every transaction committed since the
// epoch opened, and durability moves to epoch granularity: the epoch
// field stamps the stream's generation and committedTo splits it into a
// committed prefix [RecordsStart, committedTo) and an open suffix
// [committedTo, watermark). A single header persist at epoch close
// advances committedTo and the state together, standing in for the
// per-transaction commit marker. Recovery treats the committed prefix
// as durable (replayed forward in redo mode) and the open suffix as
// torn (rolled back in reverse in undo mode) — all-or-nothing per
// epoch. Both fields are zero in per-transaction mode, keeping the
// encoded header byte-identical to the pre-epoch layout.
package logfmt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/persistmem/slpmt/internal/mem"
)

// Magic identifies an initialized log area.
const Magic = 0x474f4c544d504c53 // "SLPMTLOG" little-endian

// Header field offsets.
const (
	OffMagic = 0
	OffSeq   = 8
	OffState = 16
	OffMode  = 24
	// OffWatermark holds the offset (from the log base) one past the
	// last record guaranteed durably complete.
	OffWatermark = 32
	// OffEpoch holds the per-core group-commit epoch counter; zero means
	// the stream uses per-transaction commit semantics.
	OffEpoch = 40
	// OffCommittedTo holds the offset one past the last record covered
	// by a durable epoch close; zero means per-transaction semantics.
	OffCommittedTo = 48
	// RecordsStart is the offset of the first record (one cache line in,
	// so header and records never share a PM write).
	RecordsStart = 64
)

// Transaction states.
const (
	StateIdle      = 0
	StateActive    = 1
	StateCommitted = 2
)

// Log modes.
const (
	ModeUndo = 1
	ModeRedo = 2
)

// Header is the decoded log-area header. Epoch and CommittedTo are zero
// for per-transaction streams, so their encoding is byte-identical to
// the pre-epoch layout.
type Header struct {
	Magic       uint64
	Seq         uint64
	State       uint64
	Mode        uint64
	Watermark   uint64
	Epoch       uint64
	CommittedTo uint64
}

// EncodeHeader serializes h into a 64-byte line buffer.
func EncodeHeader(h Header) [mem.LineSize]byte {
	var b [mem.LineSize]byte
	binary.LittleEndian.PutUint64(b[OffMagic:], h.Magic)
	binary.LittleEndian.PutUint64(b[OffSeq:], h.Seq)
	binary.LittleEndian.PutUint64(b[OffState:], h.State)
	binary.LittleEndian.PutUint64(b[OffMode:], h.Mode)
	binary.LittleEndian.PutUint64(b[OffWatermark:], h.Watermark)
	binary.LittleEndian.PutUint64(b[OffEpoch:], h.Epoch)
	binary.LittleEndian.PutUint64(b[OffCommittedTo:], h.CommittedTo)
	return b
}

// DecodeHeader parses a log-area header from raw bytes (at least
// RecordsStart long).
func DecodeHeader(raw []byte) Header {
	return Header{
		Magic:       binary.LittleEndian.Uint64(raw[OffMagic:]),
		Seq:         binary.LittleEndian.Uint64(raw[OffSeq:]),
		State:       binary.LittleEndian.Uint64(raw[OffState:]),
		Mode:        binary.LittleEndian.Uint64(raw[OffMode:]),
		Watermark:   binary.LittleEndian.Uint64(raw[OffWatermark:]),
		Epoch:       binary.LittleEndian.Uint64(raw[OffEpoch:]),
		CommittedTo: binary.LittleEndian.Uint64(raw[OffCommittedTo:]),
	}
}

// SizeCode returns the address-word size code for a record data length,
// or 0 if the length is not a legal record size.
func SizeCode(n int) uint64 {
	switch n {
	case 8:
		return 1
	case 16:
		return 2
	case 32:
		return 3
	case 64:
		return 4
	default:
		return 0
	}
}

// CodeSize is the inverse of SizeCode; returns 0 for invalid codes.
func CodeSize(code uint64) int {
	switch code {
	case 1:
		return 8
	case 2:
		return 16
	case 3:
		return 32
	case 4:
		return 64
	default:
		return 0
	}
}

// AddrBits is the width of record data addresses; the bits above carry
// the transaction tag.
const AddrBits = 48

// BoundaryAddr is the sentinel data address of a transaction-boundary
// record. Group-commit streams open every transaction with one: an
// ordinary 8-byte record at this address whose payload is the
// transaction's cluster-global sequence number. Real data addresses
// never reach the top of the 48-bit window, so readers recognize the
// sentinel and must skip it when applying records; recovery uses it to
// split an epoch stream into per-transaction units and to order units
// across cores exactly (interleaved cross-core write sets roll back in
// reverse global order, replay forward in global order). Absent in
// per-transaction (W = 1) streams, whose encoding stays unchanged.
const BoundaryAddr mem.Addr = (1 << AddrBits) - WordSizeBytes

// WordSizeBytes mirrors mem.WordSize without a second import point for
// readers of the format spec.
const WordSizeBytes = 8

// IsBoundary reports whether a decoded record is a transaction-boundary
// sentinel.
func IsBoundary(r Record) bool { return r.Addr == BoundaryAddr }

// BoundarySeq returns the cluster-global sequence number carried by a
// boundary record.
func BoundarySeq(r Record) uint64 { return binary.LittleEndian.Uint64(r.Data) }

// Tag derives the record tag from a transaction sequence number.
func Tag(seq uint64) uint16 { return uint16(seq) }

// EncodeAddrWord packs a record's data address, length and transaction
// tag into its address word. addr must be 8-byte aligned, below 2^48,
// and n a legal record size.
func EncodeAddrWord(addr mem.Addr, n int, tag uint16) uint64 {
	code := SizeCode(n)
	if code == 0 {
		panic(fmt.Sprintf("logfmt: invalid record size %d", n))
	}
	if !mem.AlignedTo(addr, 8) {
		panic(fmt.Sprintf("logfmt: unaligned record address %#x", addr))
	}
	if uint64(addr) >= 1<<AddrBits {
		panic(fmt.Sprintf("logfmt: record address %#x exceeds %d bits", addr, AddrBits))
	}
	return uint64(tag)<<AddrBits | uint64(addr) | code
}

// DecodeAddrWord unpacks an address word. ok is false for the zero
// terminator or a malformed word.
func DecodeAddrWord(w uint64) (addr mem.Addr, n int, tag uint16, ok bool) {
	if w == 0 {
		return 0, 0, 0, false
	}
	n = CodeSize(w & 7)
	if n == 0 {
		return 0, 0, 0, false
	}
	tag = uint16(w >> AddrBits)
	addr = mem.Addr(w&^7) & (1<<AddrBits - 1)
	return addr, n, tag, true
}

// Record is a decoded log record.
type Record struct {
	Addr mem.Addr
	Data []byte
}

// ErrCorrupt reports a structurally invalid record stream.
var ErrCorrupt = errors.New("logfmt: corrupt record stream")

// ParseRecords decodes the record stream of the transaction with
// sequence seq from raw (the bytes of the log area starting at its
// base), bounded by the header's watermark. The stream additionally
// ends at the first zero, malformed, or foreign-tagged word (stale
// bytes of earlier transactions below a conservative watermark). The
// returned slices alias raw.
func ParseRecords(raw []byte, seq uint64) ([]Record, error) {
	hdr := DecodeHeader(raw)
	limit := int(hdr.Watermark)
	if limit > len(raw) {
		return nil, fmt.Errorf("%w: watermark %d beyond log area", ErrCorrupt, limit)
	}
	want := Tag(seq)
	var out []Record
	off := RecordsStart
	for off+8 <= limit {
		w := binary.LittleEndian.Uint64(raw[off:])
		addr, n, tag, ok := DecodeAddrWord(w)
		if !ok || tag != want {
			return out, nil
		}
		off += 8
		if off+n > limit {
			return out, fmt.Errorf("%w: record crosses watermark at offset %d", ErrCorrupt, off)
		}
		out = append(out, Record{Addr: addr, Data: raw[off : off+n]})
		off += n
	}
	return out, nil
}

// Group descriptor. Multi-core group commit gets its atomic commit
// point from a single reserved PM line (the top line of the root
// directory): one persist of the descriptor commits every core's open
// epoch at once. The line packs one entry per core:
//
//	entry c (8 bytes at offset 8*c): epoch<<32 | boundary
//
// where epoch is the core's epoch counter at the close and boundary the
// stream offset one past its last committed record (the in-flight
// suffix of a transaction running through the close starts there). A
// zeroed line — PM's initial state — means no group has committed.
// Recovery decides whether a core's epoch e committed by comparing e
// against the descriptor entry; the per-core header is written only
// after the descriptor, so a crash between the two still recovers the
// group. Capacity is eight cores (one line).

// MaxGroupCores is the core capacity of the one-line group descriptor.
const MaxGroupCores = LineBytes / 8

// LineBytes mirrors mem.LineSize for the format spec.
const LineBytes = 64

// GroupEntry is one core's slot in the group descriptor.
type GroupEntry struct {
	Epoch    uint32
	Boundary uint32
}

// EncodeGroupDesc serializes per-core entries into the descriptor line.
func EncodeGroupDesc(vec []GroupEntry) [LineBytes]byte {
	var b [LineBytes]byte
	for c, e := range vec {
		binary.LittleEndian.PutUint64(b[8*c:], uint64(e.Epoch)<<32|uint64(e.Boundary))
	}
	return b
}

// DecodeGroupDesc parses a descriptor line into per-core entries.
func DecodeGroupDesc(raw []byte) [MaxGroupCores]GroupEntry {
	var vec [MaxGroupCores]GroupEntry
	for c := range vec {
		w := binary.LittleEndian.Uint64(raw[8*c:])
		vec[c] = GroupEntry{Epoch: uint32(w >> 32), Boundary: uint32(w)}
	}
	return vec
}

// ParseRegion decodes the record stream in [from, to) of raw regardless
// of transaction tag — an epoch stream interleaves the records of every
// transaction in the window, so the region bounds from the header
// (committedTo, watermark) are the only trustworthy delimiters. The
// stream still ends early at the first zero or malformed word, and a
// record crossing the region end is an error. The returned slices alias
// raw.
func ParseRegion(raw []byte, from, to uint64) ([]Record, error) {
	if from < RecordsStart {
		from = RecordsStart
	}
	if to > uint64(len(raw)) {
		return nil, fmt.Errorf("%w: region end %d beyond log area", ErrCorrupt, to)
	}
	var out []Record
	off := int(from)
	limit := int(to)
	for off+8 <= limit {
		w := binary.LittleEndian.Uint64(raw[off:])
		addr, n, _, ok := DecodeAddrWord(w)
		if !ok {
			return out, nil
		}
		off += 8
		if off+n > limit {
			return out, fmt.Errorf("%w: record crosses region end at offset %d", ErrCorrupt, off)
		}
		out = append(out, Record{Addr: addr, Data: raw[off : off+n]})
		off += n
	}
	return out, nil
}
