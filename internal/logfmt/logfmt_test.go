package logfmt

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/persistmem/slpmt/internal/mem"
)

func TestHeaderRoundtrip(t *testing.T) {
	h := Header{Magic: Magic, Seq: 42, State: StateActive, Mode: ModeUndo, Watermark: 4096}
	line := EncodeHeader(h)
	got := DecodeHeader(line[:])
	if got != h {
		t.Errorf("roundtrip: %+v != %+v", got, h)
	}
}

func TestAddrWordRoundtrip(t *testing.T) {
	f := func(addr32 uint32, sizeIdx uint8, tag uint16) bool {
		addr := mem.Addr(addr32) &^ 7
		n := 8 << (sizeIdx % 4)
		if !mem.AlignedTo(addr, uint64(n)) {
			addr = mem.AlignUp(addr, uint64(n))
		}
		w := EncodeAddrWord(addr, n, tag)
		ga, gn, gt, ok := DecodeAddrWord(w)
		return ok && ga == addr && gn == n && gt == tag
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, _, _, ok := DecodeAddrWord(0); ok {
		t.Error("zero word decoded")
	}
	if _, _, _, ok := DecodeAddrWord(0x1000); ok { // code 0
		t.Error("code-0 word decoded")
	}
	if _, _, _, ok := DecodeAddrWord(0x1005); ok { // code 5
		t.Error("code-5 word decoded")
	}
}

// buildLog assembles a log area with the given records for seq.
func buildLog(seq uint64, recs []Record, watermark uint64) []byte {
	raw := make([]byte, 8<<10)
	hdr := EncodeHeader(Header{Magic: Magic, Seq: seq, State: StateActive, Mode: ModeUndo, Watermark: watermark})
	copy(raw, hdr[:])
	off := RecordsStart
	for _, r := range recs {
		binary.LittleEndian.PutUint64(raw[off:], EncodeAddrWord(r.Addr, len(r.Data), Tag(seq)))
		off += 8
		copy(raw[off:], r.Data)
		off += len(r.Data)
	}
	return raw
}

func TestParseRecords(t *testing.T) {
	recs := []Record{
		{Addr: 0x1000, Data: make([]byte, 8)},
		{Addr: 0x2000, Data: make([]byte, 64)},
		{Addr: 0x3000, Data: make([]byte, 16)},
	}
	mark := uint64(RecordsStart + 16 + 72 + 24)
	raw := buildLog(7, recs, mark)
	got, err := ParseRecords(raw, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d records, want 3", len(got))
	}
	for i := range recs {
		if got[i].Addr != recs[i].Addr || len(got[i].Data) != len(recs[i].Data) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

// TestParseStopsAtWatermark: records beyond the watermark are invisible
// — the torn-record defence.
func TestParseStopsAtWatermark(t *testing.T) {
	recs := []Record{
		{Addr: 0x1000, Data: make([]byte, 8)},
		{Addr: 0x2000, Data: make([]byte, 8)},
	}
	raw := buildLog(7, recs, uint64(RecordsStart+16)) // only the first is covered
	got, err := ParseRecords(raw, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d records, want 1 (watermark)", len(got))
	}
}

// TestParseRejectsStaleTags: records of an earlier transaction below a
// conservative watermark are not attributed to the current one.
func TestParseRejectsStaleTags(t *testing.T) {
	recs := []Record{{Addr: 0x1000, Data: make([]byte, 8)}}
	raw := buildLog(7, recs, uint64(RecordsStart+16))
	// Header claims seq 8 (new transaction), same watermark.
	hdr := EncodeHeader(Header{Magic: Magic, Seq: 8, State: StateActive, Mode: ModeUndo, Watermark: uint64(RecordsStart + 16)})
	copy(raw, hdr[:])
	got, err := ParseRecords(raw, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("stale-tag record attributed to new transaction")
	}
}

// TestParseTornRecord: an address word inside the watermark whose data
// crosses it is reported as corruption, never silently applied.
func TestParseTornRecord(t *testing.T) {
	recs := []Record{{Addr: 0x1000, Data: make([]byte, 64)}}
	raw := buildLog(7, recs, uint64(RecordsStart+16)) // watermark cuts the data
	_, err := ParseRecords(raw, 7)
	if err == nil {
		t.Fatal("torn record not detected")
	}
}

func TestParseWatermarkBounds(t *testing.T) {
	raw := buildLog(7, nil, uint64(1<<30))
	if _, err := ParseRecords(raw, 7); err == nil {
		t.Fatal("absurd watermark accepted")
	}
}

func TestSizeCodes(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		if CodeSize(SizeCode(n)) != n {
			t.Errorf("size %d roundtrip failed", n)
		}
	}
	if SizeCode(12) != 0 || CodeSize(0) != 0 || CodeSize(7) != 0 {
		t.Error("invalid sizes not rejected")
	}
}
