package logfmt

import (
	"encoding/binary"
	"testing"
)

// FuzzParseRecords: arbitrary log-area bytes must never panic the
// parser or yield records beyond the watermark — recovery runs on
// whatever a crash left behind.
func FuzzParseRecords(f *testing.F) {
	// Seed with a well-formed stream.
	raw := make([]byte, 1024)
	h := EncodeHeader(Header{Magic: Magic, Seq: 3, State: StateActive, Mode: ModeUndo, Watermark: RecordsStart + 16})
	copy(raw, h[:])
	binary.LittleEndian.PutUint64(raw[RecordsStart:], EncodeAddrWord(0x1000, 8, Tag(3)))
	f.Add(raw, uint64(3))
	f.Add([]byte{}, uint64(0))
	f.Add(make([]byte, RecordsStart), uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, seq uint64) {
		if len(data) < RecordsStart {
			padded := make([]byte, RecordsStart)
			copy(padded, data)
			data = padded
		}
		recs, err := ParseRecords(data, seq)
		if err != nil {
			return
		}
		hdr := DecodeHeader(data)
		limit := int(hdr.Watermark)
		for _, r := range recs {
			if len(r.Data) != 8 && len(r.Data) != 16 && len(r.Data) != 32 && len(r.Data) != 64 {
				t.Fatalf("record with illegal size %d", len(r.Data))
			}
			_ = limit
		}
	})
}
