package logfmt

import (
	"testing"

	"github.com/persistmem/slpmt/internal/mem"
)

func TestBoundaryRecord(t *testing.T) {
	if BoundaryAddr>>AddrBits != 0 {
		t.Fatalf("boundary addr %#x does not fit the %d-bit record address field", BoundaryAddr, AddrBits)
	}
	r := Record{Addr: BoundaryAddr, Data: []byte{0x15, 0xcd, 0x5b, 0x07, 0, 0, 0, 0}}
	if !IsBoundary(r) {
		t.Error("record at BoundaryAddr not recognized as boundary")
	}
	if got := BoundarySeq(r); got != 123456789 {
		t.Errorf("BoundarySeq = %d, want 123456789", got)
	}
	if IsBoundary(Record{Addr: BoundaryAddr - WordSizeBytes, Data: r.Data}) {
		t.Error("non-sentinel address classified as boundary")
	}
}

func TestGroupDescRoundtrip(t *testing.T) {
	vec := []GroupEntry{
		{Epoch: 7, Boundary: 4096},
		{Epoch: 0, Boundary: 0},
		{Epoch: 1 << 30, Boundary: 1<<32 - 64},
	}
	line := EncodeGroupDesc(vec)
	got := DecodeGroupDesc(line[:])
	for i, want := range vec {
		if got[i] != want {
			t.Errorf("entry %d = %+v, want %+v", i, got[i], want)
		}
	}
	for i := len(vec); i < MaxGroupCores; i++ {
		if got[i] != (GroupEntry{}) {
			t.Errorf("entry %d = %+v, want zero", i, got[i])
		}
	}
}

func TestGroupDescZeroLineIsEmpty(t *testing.T) {
	// PM starts zeroed and epochs start at 1, so an untouched
	// descriptor line must decode to "nothing committed" everywhere.
	zero := make([]byte, LineBytes)
	for i, e := range DecodeGroupDesc(zero) {
		if e.Epoch != 0 || e.Boundary != 0 {
			t.Fatalf("zero line decodes entry %d = %+v", i, e)
		}
	}
	if int(LineBytes) != int(mem.LineSize) {
		t.Fatalf("descriptor line size %d != cache line size %d", LineBytes, mem.LineSize)
	}
}
