// Package machine composes the simulated hardware platform: N cores,
// each with private L1/L2 caches and a logical clock, sharing one L3
// (LLC), one persistent memory device, and one functional (volatile)
// memory image.
//
// Timing model. Each core's logical clock advances by:
//
//   - the hit latency of the deepest level probed on each access
//     (Table III: L1 4, L2 12, L3 40 cycles; PM read 150 ns);
//   - explicit compute costs added by the workload (Tick);
//   - persist stalls: every durable write enters the PM write pending
//     queue, and a full queue stalls the core until space frees. The
//     WPQ is shared: cores arbitrate for it at their own (interleaved)
//     clock values, so one core's write burst backpressures the others;
//   - coherence: a bus request that finds the line in another core's
//     private caches pays a snoop penalty, and dirty remote copies are
//     written back before ownership transfers (MESI-lite).
//
// Functional model. The program's current view of memory lives in one
// flat volatile image shared by all cores; caches track placement and
// SLPMT metadata only. The durable image inside the pmem.Device is
// updated exclusively by persist operations (explicit line/log persists
// and dirty L3 writebacks), so a crash snapshot contains exactly the
// persisted bytes.
//
// The machine is policy-free: all transaction semantics (what to log,
// what to persist at commit, lazy tracking) live in the engine layer,
// one engine per core, observing evictions through the per-core
// OnL2Evict and OnL3Writeback hooks and remote stores through the
// machine-level OnRemoteStore hook.
package machine

import (
	"github.com/persistmem/slpmt/internal/cache"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/stats"
	"github.com/persistmem/slpmt/internal/trace"
)

// Config describes the machine. Zero-valued cache levels get Table III
// defaults.
type Config struct {
	// Cores is the number of simulated cores (0 = 1). Each core gets a
	// private L1/L2 pair; L3 and the PM device are shared.
	Cores      int
	L1, L2, L3 cache.Config
	PM         pmem.Config
	// Sockets is the PM socket count (0 = 1). With more than one socket
	// the PM becomes a pmem.Topology: one device (WPQ, banks, drain
	// clock) per socket behind a distance matrix, the physical address
	// space striped over the sockets (mem.Layout.SocketOf), and each
	// core pinned to home socket ID mod Sockets. Sockets = 1 is
	// cycle-identical to the historical single-device machine.
	Sockets int
	// RemoteEnqueueCycles / RemoteReadCycles override the per-hop
	// interconnect costs of cross-socket persists and demand reads
	// (0 = pmem defaults). Ignored when Sockets < 2.
	RemoteEnqueueCycles uint64
	RemoteReadCycles    uint64
	// CoherenceCycles is the snoop penalty a bus request pays when the
	// line is found in another core's private caches (0 = 40, the LLC
	// latency — a directory-in-LLC lookup plus the remote probe).
	CoherenceCycles uint64
	// Trace, when non-nil, receives cycle-stamped events from every
	// layer of the machine (caches, coherence, WPQ) and from the engines
	// running on its cores. Tracing is observation-only: it never
	// advances a clock or counter, so traced and untraced runs produce
	// bit-identical results.
	Trace *trace.Tracer
	// Profile, when non-nil, receives a cycle-attribution charge for
	// every clock advance on every core (must have at least Cores
	// accumulators; see profile.New). Like tracing it is
	// observation-only: profiled and unprofiled runs produce
	// bit-identical cycles, counters, and non-KCharge trace events.
	Profile *profile.Profile
}

// DefaultConfig returns the paper's evaluation platform (Table III): a
// 2 GHz core with 32 KiB/8-way L1 (4 cycles), 256 KiB/4-way L2 (12
// cycles), 2 MiB/16-way L3 (40 cycles), and an ADR persistent memory
// with a 512 B WPQ, 150 ns reads, and 500 ns writes.
func DefaultConfig() Config {
	return Config{
		L1: cache.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 4},
		L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4, LatencyCycles: 12},
		L3: cache.Config{Name: "L3", SizeBytes: 2 << 20, Ways: 16, LatencyCycles: 40},
		PM: pmem.Config{},
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.Sockets <= 0 {
		c.Sockets = 1
	}
	if c.L1.SizeBytes == 0 {
		c.L1 = d.L1
	}
	if c.L2.SizeBytes == 0 {
		c.L2 = d.L2
	}
	if c.L3.SizeBytes == 0 {
		c.L3 = d.L3
	}
	if c.CoherenceCycles == 0 {
		c.CoherenceCycles = 40
	}
	if c.PM.Size == 0 && c.Cores > 1 {
		// Extra cores bring their own log region; keep the shared heap
		// the same size as the single-core platform.
		c.PM.Size = pmem.DefaultSize + uint64(c.Cores-1)*mem.LogRegionSize
	}
	return c
}

// Machine is the shared part of the platform: the LLC, the persistent
// memory device, the functional memory image, and the cores themselves.
// Not safe for concurrent use; multi-core execution is simulated by
// deterministically interleaving the cores on one OS thread.
type Machine struct {
	cfg Config
	L3  *cache.Cache
	// PM is socket 0's device. Its durable image is shared by every
	// socket of Topo, so functional reads and crash snapshots through PM
	// are complete regardless of socket count.
	PM *pmem.Device
	// Topo is the PM socket topology (always non-nil; one socket on the
	// historical single-device machine).
	Topo   *pmem.Topology
	Layout mem.Layout // core 0's view; heap/root regions are shared
	cores  []*Core

	vol []byte // functional program view of the PM address space

	// PersistTotal counts durable-write events machine-wide (across all
	// cores, in interleave order); with CrashAfterTotal != 0 the machine
	// panics with CrashSignal when the total reaches it — the global
	// crash-injection counter for multi-core campaigns, where per-core
	// persist counts depend on the interleaving.
	PersistTotal    uint64
	CrashAfterTotal uint64

	// OnRemoteStore is invoked when core src issues a bus write request
	// (read-for-ownership or shared->modified upgrade) for a line. The
	// cluster layer uses it to run the remote engines' lazy-persistency
	// signature checks (§III-C3 across cores): a store that hits a
	// retained transaction's working set forces its lazy drain.
	OnRemoteStore func(src int, line mem.Addr)
}

// CrashSignal is the panic value thrown when an injected crash point is
// reached; crash campaigns recover it and snapshot the durable image.
type CrashSignal struct {
	// At is the persist-event index at which the crash fired.
	At uint64
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	topo := pmem.NewTopology(pmem.TopoConfig{
		Sockets:             cfg.Sockets,
		Dev:                 cfg.PM,
		RemoteEnqueueCycles: cfg.RemoteEnqueueCycles,
		RemoteReadCycles:    cfg.RemoteReadCycles,
	})
	dev := topo.Dev(0)
	layouts := mem.MultiLayoutSockets(dev.Size(), cfg.Cores, topo.Sockets())
	m := &Machine{
		cfg:    cfg,
		L3:     cache.New(cfg.L3),
		PM:     dev,
		Topo:   topo,
		Layout: layouts[0],
		vol:    make([]byte, dev.Size()),
	}
	topo.SetTracer(cfg.Trace)
	m.cores = make([]*Core, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &Core{
			ID:     i,
			Home:   i % topo.Sockets(),
			L1:     cache.New(cfg.L1),
			L2:     cache.New(cfg.L2),
			PM:     dev,
			Layout: layouts[i],
			Stats:  &stats.Counters{},
			sh:     m,
			tr:     cfg.Trace,
			prof:   cfg.Profile,
		}
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// Core returns core i.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// Cores returns the cores (shared slice; do not mutate).
func (m *Machine) Cores() []*Core { return m.cores }

// MergedStats sums the per-core counters into one aggregate view.
func (m *Machine) MergedStats() stats.Counters {
	var out stats.Counters
	for _, c := range m.cores {
		out.Add(c.Stats)
	}
	return out
}

// MaxClk returns the highest core clock — the machine's wall time.
func (m *Machine) MaxClk() uint64 {
	var max uint64
	for _, c := range m.cores {
		if c.Clk > max {
			max = c.Clk
		}
	}
	return max
}

// SyncClocks aligns every core to the highest clock — the barrier a
// harness issues between a (single-core) setup phase and a measured
// parallel phase, so all cores start the phase simultaneously.
func (m *Machine) SyncClocks() uint64 {
	max := m.MaxClk()
	for _, c := range m.cores {
		//slpmt:chargeflow-ok: harness barrier between phases, not a simulated cycle cost; it runs outside the measured region (profiles are reset after the sync)
		c.Clk = max
	}
	return max
}

// Crash returns the durable image as of now — the ADR crash snapshot.
func (m *Machine) Crash() *pmem.Image { return m.PM.Crash() }

// snoopFetch services core c's bus request for line la after it missed
// in c's private caches: remote private copies are downgraded (read) or
// invalidated (write), dirty remote copies are written back to PM
// first, and c pays the snoop penalty if any remote copy was found.
// found reports whether any remote copy existed (the line can then be
// served by a cache-to-cache transfer); shared reports whether a remote
// cache still holds a copy afterwards (read case), which decides the
// Shared/Exclusive fill state.
func (m *Machine) snoopFetch(c *Core, la mem.Addr, write bool) (found, shared bool) {
	for _, o := range m.cores {
		if o == c {
			continue
		}
		for _, lvl := range [2]*cache.Cache{o.L1, o.L2} {
			l := lvl.Peek(la)
			if l == nil {
				continue
			}
			found = true
			if l.State == cache.Modified {
				o.coherenceWriteback(la)
			}
			if write {
				lvl.Remove(la)
				o.Stats.CoherenceInvalidations++
				o.Trace(trace.KCohInval, la, 0)
			} else {
				l.State = cache.Shared
				shared = true
				o.Stats.CoherenceDowngrades++
				o.Trace(trace.KCohDowngrade, la, 0)
			}
		}
	}
	if found {
		c.charge(profile.CauseCoherence, m.cfg.CoherenceCycles)
		c.Stats.CoherenceSnoops++
		var w uint64
		if write {
			w = 1
		}
		c.Trace(trace.KCohSnoop, la, w)
	}
	return found, shared
}

// busWrite announces core c's write request for line la to the rest of
// the machine (the coherence event the SLPMT lazy-persistency checks
// key on). It fires for every store whose line is not already owned
// Modified/Exclusive by c — bus upgrades and read-for-ownership alike.
func (m *Machine) busWrite(src int, la mem.Addr) {
	if m.OnRemoteStore != nil {
		m.OnRemoteStore(src, la)
	}
}

// snoopUpgrade invalidates the remote Shared copies of a line core c
// holds Shared and now wants to write (bus upgrade). Remote copies of a
// Shared line are clean by the SWMR invariant, so no writeback occurs.
func (m *Machine) snoopUpgrade(c *Core, la mem.Addr) {
	found := false
	for _, o := range m.cores {
		if o == c {
			continue
		}
		for _, lvl := range [2]*cache.Cache{o.L1, o.L2} {
			if lvl.Peek(la) != nil {
				lvl.Remove(la)
				o.Stats.CoherenceInvalidations++
				o.Trace(trace.KCohInval, la, 0)
				found = true
			}
		}
	}
	if found {
		c.charge(profile.CauseCoherence, m.cfg.CoherenceCycles)
		c.Stats.CoherenceSnoops++
		c.Trace(trace.KCohSnoop, la, 1)
	}
}
