// Package machine composes one simulated core's memory system: the
// L1/L2/L3 cache hierarchy, the persistent memory device, the functional
// (volatile) memory image, and the cycle clock.
//
// Timing model. A single logical clock advances by:
//
//   - the hit latency of the deepest level probed on each access
//     (Table III: L1 4, L2 12, L3 40 cycles; PM read 150 ns);
//   - explicit compute costs added by the workload (Tick);
//   - persist stalls: every durable write enters the PM write pending
//     queue, and a full queue stalls the core until space frees.
//
// Functional model. The program's current view of memory lives in a flat
// volatile image; caches track placement and SLPMT metadata only. The
// durable image inside the pmem.Device is updated exclusively by persist
// operations (explicit line/log persists and dirty L3 writebacks), so a
// crash snapshot contains exactly the persisted bytes.
//
// The machine is policy-free: all transaction semantics (what to log,
// what to persist at commit, lazy tracking) live in the engine layer,
// which observes evictions through the OnL2Evict and OnL3Writeback hooks.
package machine

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/cache"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/stats"
)

// Config describes the machine. Zero-valued cache levels get Table III
// defaults.
type Config struct {
	L1, L2, L3 cache.Config
	PM         pmem.Config
}

// DefaultConfig returns the paper's evaluation platform (Table III): a
// 2 GHz core with 32 KiB/8-way L1 (4 cycles), 256 KiB/4-way L2 (12
// cycles), 2 MiB/16-way L3 (40 cycles), and an ADR persistent memory
// with a 512 B WPQ, 150 ns reads, and 500 ns writes.
func DefaultConfig() Config {
	return Config{
		L1: cache.Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LatencyCycles: 4},
		L2: cache.Config{Name: "L2", SizeBytes: 256 << 10, Ways: 4, LatencyCycles: 12},
		L3: cache.Config{Name: "L3", SizeBytes: 2 << 20, Ways: 16, LatencyCycles: 40},
		PM: pmem.Config{},
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.L1.SizeBytes == 0 {
		c.L1 = d.L1
	}
	if c.L2.SizeBytes == 0 {
		c.L2 = d.L2
	}
	if c.L3.SizeBytes == 0 {
		c.L3 = d.L3
	}
	return c
}

// Machine is one simulated core plus its memory system. Not safe for
// concurrent use.
type Machine struct {
	cfg    Config
	Clk    uint64
	L1     *cache.Cache
	L2     *cache.Cache
	L3     *cache.Cache
	PM     *pmem.Device
	Layout mem.Layout
	Stats  *stats.Counters

	vol []byte // functional program view of the PM address space

	// PersistCount counts durable-write events; with CrashAfter != 0
	// the machine panics with CrashSignal when the count reaches it —
	// the crash-injection mechanism (every distinct durable state lies
	// at a persist-event boundary).
	PersistCount uint64
	CrashAfter   uint64

	// asyncDepth > 0 routes persists through the asynchronous path
	// (posted, no durability-ack wait): eviction handling, log-buffer
	// spills and lazy drains run inside PushAsync/PopAsync sections.
	asyncDepth int
	// streamDepth > 0 routes persists through the streamed path
	// (backpressure but no per-line acknowledgement): the commit-time
	// log-buffer drain. streamFinish tracks the medium completion time
	// of the section's entries for the AckBarrier.
	streamDepth  int
	streamFinish uint64

	// OnL1Demote is invoked when a line is evicted from L1 to L2,
	// before its word-granularity log bits are folded to the L2
	// granularity. The speculative-logging optimization (§III-B1) uses
	// it to round partially logged 32-byte groups up.
	OnL1Demote func(l *cache.Line)
	// OnL2Evict is invoked when a line leaves the private caches (L2 ->
	// L3). The engine persists the associated log record and, if the
	// persist bit is set, the line itself, mutating the line's metadata
	// before it enters L3 (which carries no metadata).
	OnL2Evict func(l *cache.Line)
	// OnL3Writeback is invoked after a dirty L3 victim is written back
	// to PM; the engine uses it to retire lazy-persistency tracking.
	OnL3Writeback func(addr mem.Addr)
	// WritebackFilter, when non-nil, is consulted before a dirty L3
	// victim is written back; returning false suppresses the writeback
	// (redo-logging transactions must keep pre-transaction values in PM
	// until the commit record persists). Suppressed lines must be
	// persisted explicitly by the engine at commit.
	WritebackFilter func(addr mem.Addr) bool
}

// CrashSignal is the panic value thrown when an injected crash point is
// reached; crash campaigns recover it and snapshot the durable image.
type CrashSignal struct {
	// At is the persist-event index at which the crash fired.
	At uint64
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	dev := pmem.New(cfg.PM)
	m := &Machine{
		cfg:    cfg,
		L1:     cache.New(cfg.L1),
		L2:     cache.New(cfg.L2),
		L3:     cache.New(cfg.L3),
		PM:     dev,
		Layout: mem.DefaultLayout(dev.Size()),
		Stats:  &stats.Counters{},
		vol:    make([]byte, dev.Size()),
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Tick advances the clock by n compute cycles.
func (m *Machine) Tick(n uint64) { m.Clk += n }

// ReadMem copies the current (volatile) contents at addr into p. Purely
// functional: no timing.
func (m *Machine) ReadMem(addr mem.Addr, p []byte) {
	copy(p, m.vol[addr:addr+mem.Addr(len(p))])
}

// WriteMem copies p into the volatile image at addr. Purely functional.
func (m *Machine) WriteMem(addr mem.Addr, p []byte) {
	copy(m.vol[addr:], p)
}

// ReadU64 reads a little-endian word from the volatile image.
func (m *Machine) ReadU64(addr mem.Addr) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.vol[addr+mem.Addr(i)]) << (8 * uint(i))
	}
	return v
}

// WriteU64 writes a little-endian word into the volatile image.
func (m *Machine) WriteU64(addr mem.Addr, v uint64) {
	for i := 0; i < 8; i++ {
		m.vol[addr+mem.Addr(i)] = byte(v >> (8 * uint(i)))
	}
}

// AccessLine simulates one load or store touching the line containing
// addr: the hierarchy walk, latency accounting, metadata propagation
// across levels, and eviction cascades. It returns the L1 line, whose
// SLPMT metadata the engine then inspects or updates. Accesses spanning
// multiple lines must be split by the caller.
func (m *Machine) AccessLine(addr mem.Addr, write bool) *cache.Line {
	la := mem.LineAddr(addr)
	if la+mem.LineSize > m.PM.Size() {
		panic(fmt.Sprintf("machine: access out of range: %#x", addr))
	}

	// L1.
	if l := m.L1.Lookup(la); l != nil {
		m.Clk += m.L1.Latency()
		m.Stats.L1Hits++
		if write && l.State != cache.Modified {
			l.State = cache.Modified
		}
		return l
	}
	m.Stats.L1Misses++
	m.Clk += m.L1.Latency()

	// L2.
	if l2 := m.L2.Lookup(la); l2 != nil {
		m.Clk += m.L2.Latency()
		m.Stats.L2Hits++
		line, _ := m.L2.Remove(la)
		line.LogBits = cache.ReplicateLogBits(line.LogBits)
		return m.finishFill(line, write)
	}
	m.Stats.L2Misses++
	m.Clk += m.L2.Latency()

	// L3.
	if l3 := m.L3.Lookup(la); l3 != nil {
		m.Clk += m.L3.Latency()
		m.Stats.L3Hits++
		line, _ := m.L3.Remove(la)
		// L3 carries no SLPMT metadata: bits start zeroed (§III-B1).
		line.Persist = false
		line.LogBits = 0
		line.TxID = 0
		return m.finishFill(line, write)
	}
	m.Stats.L3Misses++
	m.Clk += m.L3.Latency()

	// PM demand fill.
	m.Clk += m.PM.ReadCycles()
	m.Stats.PMReadBytes += mem.LineSize
	return m.finishFill(cache.Line{Addr: la, State: cache.Exclusive}, write)
}

// finishFill installs a fetched line into L1 and applies the write
// state.
func (m *Machine) finishFill(line cache.Line, write bool) *cache.Line {
	if write {
		line.State = cache.Modified
	}
	return m.insertL1(line)
}

// insertL1 places a line into L1, demoting any victim down the
// hierarchy.
func (m *Machine) insertL1(line cache.Line) *cache.Line {
	ins, victim, evicted := m.L1.Insert(line)
	if evicted {
		m.Stats.L1Evicts++
		m.demoteToL2(victim)
	}
	return ins
}

// demoteToL2 folds the L1 word-granularity log bits into the L2
// 32-byte-granularity bits (Figure 5) and inserts the line into L2.
func (m *Machine) demoteToL2(v cache.Line) {
	if m.OnL1Demote != nil {
		m.OnL1Demote(&v)
	}
	v.LogBits = cache.FoldLogBits(v.LogBits)
	_, victim, evicted := m.L2.Insert(v)
	if evicted {
		m.Stats.L2Evicts++
		m.demoteToL3(victim)
	}
}

// demoteToL3 hands the line to the engine hook (which persists log
// records and persist-bit lines before they leave the private caches,
// §III-A), strips the SLPMT metadata, and inserts into L3.
func (m *Machine) demoteToL3(v cache.Line) {
	if m.OnL2Evict != nil {
		m.OnL2Evict(&v)
	}
	v.Persist = false
	v.LogBits = 0
	v.TxID = 0
	_, victim, evicted := m.L3.Insert(v)
	if evicted {
		m.Stats.L3Evicts++
		if victim.State == cache.Modified {
			m.writeback(victim.Addr)
		}
	}
}

// PushAsync enters an asynchronous-persist section (background
// hardware activity the core does not wait on). Sections nest.
func (m *Machine) PushAsync() { m.asyncDepth++ }

// PopAsync leaves an asynchronous-persist section.
func (m *Machine) PopAsync() {
	if m.asyncDepth == 0 {
		panic("machine: PopAsync without PushAsync")
	}
	m.asyncDepth--
}

// PushStream enters a streamed-persist section (pipelined engine:
// backpressure, no per-line acknowledgement).
func (m *Machine) PushStream() {
	if m.streamDepth == 0 {
		m.streamFinish = 0
	}
	m.streamDepth++
}

// PopStream leaves a streamed-persist section.
func (m *Machine) PopStream() {
	if m.streamDepth == 0 {
		panic("machine: PopStream without PushStream")
	}
	m.streamDepth--
}

// AckBarrier is the ordering/durability point at the end of a streamed
// sequence: the core waits until every entry enqueued during the
// current stream section has completed in the medium, plus one
// acknowledgement round trip. Entries posted outside the section (lazy
// drains, writebacks) are not waited on.
func (m *Machine) AckBarrier() {
	if m.streamFinish > m.Clk {
		m.Clk = m.streamFinish
	}
	m.Clk += m.PM.Config().AckCycles
}

// persist routes a durable write through the sync, streamed or async
// device path according to the current section, charging the core's
// stall.
func (m *Machine) persist(addr mem.Addr, data []byte) {
	m.PersistCount++
	if m.CrashAfter != 0 && m.PersistCount == m.CrashAfter {
		// The write itself completes (it reached the persist domain);
		// execution stops immediately after.
		if m.asyncDepth > 0 {
			m.PM.PersistAsync(m.Clk, addr, data)
		} else {
			m.PM.Persist(m.Clk, addr, data)
		}
		panic(CrashSignal{At: m.PersistCount})
	}
	var stall uint64
	switch {
	case m.asyncDepth > 0:
		stall = m.PM.PersistAsync(m.Clk, addr, data)
	case m.streamDepth > 0:
		stall = m.PM.PersistStream(m.Clk, addr, data)
		if f := m.PM.LastFinish(); f > m.streamFinish {
			m.streamFinish = f
		}
	default:
		stall = m.PM.Persist(m.Clk, addr, data)
	}
	m.Clk += stall
	m.chargeStall(stall)
}

// writeback writes a dirty L3 victim's current contents to PM (always
// asynchronous: the core does not wait for victim writebacks).
func (m *Machine) writeback(addr mem.Addr) {
	if m.WritebackFilter != nil && !m.WritebackFilter(addr) {
		return
	}
	var buf [mem.LineSize]byte
	m.ReadMem(addr, buf[:])
	m.PushAsync()
	m.persist(addr, buf[:])
	m.PopAsync()
	m.Stats.PMWriteBytesData += mem.LineSize
	m.Stats.PMWriteEntries++
	m.Stats.L3Writebacks++
	if m.OnL3Writeback != nil {
		m.OnL3Writeback(addr)
	}
}

// chargeStall records WPQ backpressure (stall beyond the fixed enqueue
// latency) in the counters.
func (m *Machine) chargeStall(stall uint64) {
	if enq := m.PM.Config().EnqueueCycles; stall > enq {
		m.Stats.WPQStallCycles += stall - enq
	}
}

// PersistLine makes the line containing addr durable: its current
// volatile contents are enqueued to the WPQ and any cached copy becomes
// clean. Returns true if a PM write was actually issued (false if the
// line was already clean and absent, i.e. its contents are already
// durable — persisting then would be redundant).
func (m *Machine) PersistLine(addr mem.Addr) bool {
	la := mem.LineAddr(addr)
	l := m.L1.Peek(la)
	if l == nil {
		l = m.L2.Peek(la)
	}
	if l == nil {
		l = m.L3.Peek(la)
	}
	if l != nil && l.State != cache.Modified {
		// Clean copy: durable image already current.
		return false
	}
	if l == nil {
		// Not cached: it was either written back on L3 eviction (durable
		// already) or never written. Either way the durable image is
		// current, because every path out of the caches persists dirty
		// data.
		return false
	}
	var buf [mem.LineSize]byte
	m.ReadMem(la, buf[:])
	m.persist(la, buf[:])
	m.Stats.PMWriteBytesData += mem.LineSize
	m.Stats.PMWriteEntries++
	l.State = cache.Exclusive
	return true
}

// ForcePersistLine persists the line containing addr from the volatile
// image unconditionally (used by redo commits for lines whose writeback
// was suppressed, and by non-transactional persist-through writes). Any
// cached copy becomes clean.
func (m *Machine) ForcePersistLine(addr mem.Addr) {
	la := mem.LineAddr(addr)
	var buf [mem.LineSize]byte
	m.ReadMem(la, buf[:])
	m.persist(la, buf[:])
	m.Stats.PMWriteBytesData += mem.LineSize
	m.Stats.PMWriteEntries++
	if _, l := m.FindCached(la); l != nil && l.State == cache.Modified {
		l.State = cache.Exclusive
	}
}

// PersistData makes an arbitrary small byte range durable, updating both
// the durable and volatile images (used by the abort path to apply undo
// records to persistent data). Counted as data traffic; one full line
// write per touched line.
func (m *Machine) PersistData(addr mem.Addr, data []byte) {
	// Write volatile first, then persist each touched line in full.
	m.WriteMem(addr, data)
	mem.LineRange(addr, len(data), func(line mem.Addr, off, n int) {
		var buf [mem.LineSize]byte
		m.ReadMem(line, buf[:])
		m.persist(line, buf[:])
		m.Stats.PMWriteBytesData += mem.LineSize
		m.Stats.PMWriteEntries++
		if _, l := m.FindCached(line); l != nil && l.State == cache.Modified {
			l.State = cache.Exclusive
		}
	})
}

// RestoreLineFromDurable copies the durable contents of addr's line into
// the volatile image — the abort-path repair after invalidating a
// transaction's cached updates (§V-B).
func (m *Machine) RestoreLineFromDurable(addr mem.Addr) {
	la := mem.LineAddr(addr)
	var buf [mem.LineSize]byte
	m.PM.Read(la, buf[:])
	m.WriteMem(la, buf[:])
}

// PersistLogLine writes up to one cache line of serialized log records
// at logAddr into the durable log region. The write is counted as a full
// line of PM log traffic (PM writes are line-granular).
func (m *Machine) PersistLogLine(logAddr mem.Addr, data []byte) {
	if len(data) > mem.LineSize {
		panic("machine: log write exceeds one line")
	}
	// Keep the volatile image in sync so post-abort code sees the log.
	m.WriteMem(logAddr, data)
	m.persist(logAddr, data)
	m.Stats.PMWriteBytesLog += mem.LineSize
	m.Stats.PMWriteEntries++
}

// FindCached returns the line's location: the cache level holding it
// (1, 2, 3) and the line pointer, or (0, nil) if uncached.
func (m *Machine) FindCached(addr mem.Addr) (int, *cache.Line) {
	la := mem.LineAddr(addr)
	if l := m.L1.Peek(la); l != nil {
		return 1, l
	}
	if l := m.L2.Peek(la); l != nil {
		return 2, l
	}
	if l := m.L3.Peek(la); l != nil {
		return 3, l
	}
	return 0, nil
}

// ForEachPrivate invokes fn on every line resident in the private caches
// (L1 and L2) — the scan the hardware performs at commit and when
// persisting lazy data (§III-C2).
func (m *Machine) ForEachPrivate(fn func(level int, l *cache.Line)) {
	m.L1.ForEach(func(l *cache.Line) { fn(1, l) })
	m.L2.ForEach(func(l *cache.Line) { fn(2, l) })
}

// FlushAllDirty persists every dirty line in the hierarchy (graceful
// shutdown). It is not part of the measured execution; harnesses
// snapshot counters before calling it.
func (m *Machine) FlushAllDirty() {
	persist := func(l *cache.Line) {
		if l.State == cache.Modified {
			var buf [mem.LineSize]byte
			m.ReadMem(l.Addr, buf[:])
			m.persist(l.Addr, buf[:])
			m.Stats.PMWriteBytesData += mem.LineSize
			m.Stats.PMWriteEntries++
			l.State = cache.Exclusive
		}
	}
	m.L1.ForEach(persist)
	m.L2.ForEach(persist)
	m.L3.ForEach(persist)
}

// DropLine removes the line containing addr from all levels without any
// writeback — the abort-path invalidation (§V-B). The volatile contents
// must be repaired by the caller (undo application).
func (m *Machine) DropLine(addr mem.Addr) {
	la := mem.LineAddr(addr)
	m.L1.Remove(la)
	m.L2.Remove(la)
	m.L3.Remove(la)
}

// Crash returns the durable image as of now — the ADR crash snapshot.
func (m *Machine) Crash() *pmem.Image { return m.PM.Crash() }
