package machine

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/cache"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/profile"
	"github.com/persistmem/slpmt/internal/stats"
	"github.com/persistmem/slpmt/internal/trace"
)

// Core is one simulated core: private L1/L2 caches, a logical clock,
// and per-core counters, backed by the machine's shared L3, persistent
// memory device, and functional memory image. Not safe for concurrent
// use; a multi-core machine interleaves its cores deterministically on
// one OS thread.
type Core struct {
	// ID is the core index within its machine.
	ID int
	// Home is the core's home socket (ID mod sockets; 0 on a
	// single-socket machine). Persists and PM demand reads to another
	// socket's address range pay the topology's interconnect distance.
	Home int
	Clk  uint64
	L1   *cache.Cache
	L2   *cache.Cache
	// PM is socket 0's persistent-memory device (same object on every
	// core of a machine; its durable image is shared by all sockets).
	// Timing-sensitive persist paths route through the topology instead.
	PM *pmem.Device
	// Layout is this core's address map: the heap and root regions are
	// shared with every other core; the log region is private.
	Layout mem.Layout
	// Stats are this core's counters; Machine.MergedStats sums them.
	Stats *stats.Counters

	sh *Machine      // shared L3 / PM / vol
	tr *trace.Tracer // nil unless the machine was built with a tracer

	// prof, when non-nil, receives a cycle-attribution charge for every
	// clock advance (see charge). cause is the active attribution
	// context the engine installs around multi-persist operations; with
	// no context, persists fall to the generic WPQ buckets.
	prof  *profile.Profile
	cause profile.Cause

	// PersistCount counts durable-write events; with CrashAfter != 0
	// the core panics with CrashSignal when the count reaches it —
	// the crash-injection mechanism (every distinct durable state lies
	// at a persist-event boundary).
	PersistCount uint64
	CrashAfter   uint64

	// asyncDepth > 0 routes persists through the asynchronous path
	// (posted, no durability-ack wait): eviction handling, log-buffer
	// spills and lazy drains run inside PushAsync/PopAsync sections.
	asyncDepth int
	// streamDepth > 0 routes persists through the streamed path
	// (backpressure but no per-line acknowledgement): the commit-time
	// log-buffer drain. streamFinish tracks the medium completion time
	// of the section's entries for the AckBarrier.
	streamDepth  int
	streamFinish uint64

	// OnL1Demote is invoked when a line is evicted from L1 to L2,
	// before its word-granularity log bits are folded to the L2
	// granularity. The speculative-logging optimization (§III-B1) uses
	// it to round partially logged 32-byte groups up.
	OnL1Demote func(l *cache.Line)
	// OnL2Evict is invoked when a line leaves the private caches (L2 ->
	// L3). The engine persists the associated log record and, if the
	// persist bit is set, the line itself, mutating the line's metadata
	// before it enters L3 (which carries no metadata).
	OnL2Evict func(l *cache.Line)
	// OnL3Writeback is invoked after a dirty line of this core reaches
	// PM outside an explicit persist — an L3 victim writeback or a
	// coherence writeback forced by a remote core's request; the engine
	// uses it to retire lazy-persistency tracking.
	OnL3Writeback func(addr mem.Addr)
	// OnCoherenceTake, when non-nil, runs before a coherence writeback
	// persists a dirty private line that a remote core's bus request is
	// taking away. The transaction engine uses it to make the line's
	// log records durable ahead of the data — under group commit the
	// records of a committed-in-window transaction may still be short
	// of the watermark when the line migrates — and, in redo mode, to
	// veto the data persist entirely (logged epoch data must not reach
	// PM before its commit point). Returning false suppresses the PM
	// write; the volatile transfer is unaffected.
	OnCoherenceTake func(addr mem.Addr) bool
	// WritebackFilter, when non-nil, is consulted before a dirty L3
	// victim is written back; returning false suppresses the writeback
	// (redo-logging transactions must keep pre-transaction values in PM
	// until the commit record persists). Suppressed lines must be
	// persisted explicitly by the engine at commit.
	WritebackFilter func(addr mem.Addr) bool
}

// Machine returns the shared machine this core belongs to.
func (c *Core) Machine() *Machine { return c.sh }

// Trace emits a trace event stamped with this core's ID and clock. With
// no tracer attached (the common case) the call is a single branch.
//
//slpmt:noalloc
func (c *Core) Trace(kind trace.Kind, addr mem.Addr, arg uint64) {
	c.tr.Emit(uint8(c.ID), c.Clk, kind, uint64(addr), arg)
}

// Config returns the machine configuration.
func (c *Core) Config() Config { return c.sh.cfg }

// charge advances the clock by n cycles attributed to cause. Every
// clock advance goes through here, so the profile's per-core sums equal
// the clock totals by construction (the conservation invariant). With
// no profile attached (the common case) the cost over a bare += is one
// branch; attribution is observation-only either way.
//
//slpmt:noalloc
func (c *Core) charge(cause profile.Cause, n uint64) {
	c.Clk += n
	if c.prof != nil && n != 0 {
		c.chargeProfile(cause, n)
	}
}

// chargeProfile records an attribution charge in the profile and the
// trace. KCharge events are emitted only on profiled runs, so plain
// traced runs see an unchanged event stream.
//
//slpmt:noalloc
func (c *Core) chargeProfile(cause profile.Cause, n uint64) {
	c.prof.Add(c.ID, cause, n)
	c.tr.Emit(uint8(c.ID), c.Clk, trace.KCharge, uint64(cause), n)
}

// SetCause installs cause as the attribution context for subsequent
// persists and returns the previous context, which the caller must
// restore. The engine brackets multi-persist operations (commit stages,
// lazy drains, log appends) with it.
//
//slpmt:noalloc
func (c *Core) SetCause(cause profile.Cause) profile.Cause {
	prev := c.cause
	c.cause = cause
	return prev
}

// Tick advances the clock by n compute cycles.
func (c *Core) Tick(n uint64) { c.charge(profile.CauseCompute, n) }

// TickArena advances the clock by n cycles attributed to the sharded
// per-core heap allocator (txheap.NewSharded charges through it so
// arena-allocator time stays distinguishable from workload compute).
func (c *Core) TickArena(n uint64) { c.charge(profile.CauseAllocArena, n) }

// ReadMem copies the current (volatile) contents at addr into p. Purely
// functional: no timing. The volatile image is shared by all cores.
func (c *Core) ReadMem(addr mem.Addr, p []byte) {
	copy(p, c.sh.vol[addr:addr+mem.Addr(len(p))])
}

// WriteMem copies p into the volatile image at addr. Purely functional.
func (c *Core) WriteMem(addr mem.Addr, p []byte) {
	copy(c.sh.vol[addr:], p)
}

// ReadU64 reads a little-endian word from the volatile image.
func (c *Core) ReadU64(addr mem.Addr) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(c.sh.vol[addr+mem.Addr(i)]) << (8 * uint(i))
	}
	return v
}

// WriteU64 writes a little-endian word into the volatile image.
func (c *Core) WriteU64(addr mem.Addr, v uint64) {
	for i := 0; i < 8; i++ {
		c.sh.vol[addr+mem.Addr(i)] = byte(v >> (8 * uint(i)))
	}
}

// AccessLine simulates one load or store touching the line containing
// addr: the hierarchy walk, latency accounting, metadata propagation
// across levels, coherence with the other cores' private caches, and
// eviction cascades. It returns the L1 line, whose SLPMT metadata the
// engine then inspects or updates. Accesses spanning multiple lines
// must be split by the caller.
func (c *Core) AccessLine(addr mem.Addr, write bool) *cache.Line {
	la := mem.LineAddr(addr)
	if la+mem.LineSize > c.sh.PM.Size() {
		panic(fmt.Sprintf("machine: access out of range: %#x", addr))
	}

	// L1.
	if l := c.L1.Lookup(la); l != nil {
		c.charge(profile.CauseL1Hit, c.L1.Latency())
		c.Stats.L1Hits++
		if write && l.State != cache.Modified {
			if l.State == cache.Shared {
				// Bus upgrade: invalidate the other sharers.
				c.sh.snoopUpgrade(c, la)
				c.sh.busWrite(c.ID, la)
			}
			l.State = cache.Modified
		}
		return l
	}
	c.Stats.L1Misses++
	c.charge(profile.CauseL1Miss, c.L1.Latency())

	// L2.
	if l2 := c.L2.Lookup(la); l2 != nil {
		c.charge(profile.CauseL2Hit, c.L2.Latency())
		c.Stats.L2Hits++
		c.Trace(trace.KCacheMiss, la, 2)
		line, _ := c.L2.Remove(la)
		line.LogBits = cache.ReplicateLogBits(line.LogBits)
		if write && line.State == cache.Shared {
			c.sh.snoopUpgrade(c, la)
			c.sh.busWrite(c.ID, la)
		}
		return c.finishFill(line, write)
	}
	c.Stats.L2Misses++
	c.charge(profile.CauseL2Miss, c.L2.Latency())

	// The request leaves the private caches: announce writes to the
	// other cores (lazy-persistency signature checks key on coherence
	// write requests, §III-C3) and snoop their private caches.
	if write {
		c.sh.busWrite(c.ID, la)
	}
	if found, shared := c.sh.snoopFetch(c, la, write); found {
		// Cache-to-cache transfer: a peer held the line; dirty copies
		// were written back and, for a write, every copy invalidated.
		c.Trace(trace.KCacheMiss, la, 5)
		st := cache.Exclusive
		if shared {
			st = cache.Shared
		}
		if write {
			// Drop any stale LLC copy left behind by an earlier
			// eviction of another sharer.
			c.sh.L3.Remove(la)
		}
		return c.finishFill(cache.Line{Addr: la, State: st}, write)
	}

	// L3.
	if l3 := c.sh.L3.Lookup(la); l3 != nil {
		c.charge(profile.CauseLLCHit, c.sh.L3.Latency())
		c.Stats.L3Hits++
		c.Trace(trace.KCacheMiss, la, 3)
		line, _ := c.sh.L3.Remove(la)
		// L3 carries no SLPMT metadata: bits start zeroed (§III-B1).
		line.Persist = false
		line.LogBits = 0
		line.TxID = 0
		return c.finishFill(line, write)
	}
	c.Stats.L3Misses++
	c.charge(profile.CauseLLCMiss, c.sh.L3.Latency())

	// PM demand fill: a miss served by a remote socket's medium pays the
	// interconnect distance on top of the device read latency.
	if t := c.sh.Topo; t != nil && t.Sockets() > 1 {
		if extra := t.ReadExtra(c.Home, c.Layout.SocketOf(la)); extra != 0 {
			c.Trace(trace.KWPQRemote, la, extra)
			c.charge(profile.CauseWPQRemote, extra)
		}
	}
	c.charge(profile.CausePMRead, c.sh.PM.ReadCycles())
	c.Stats.PMReadBytes += mem.LineSize
	c.Trace(trace.KCacheMiss, la, 4)
	return c.finishFill(cache.Line{Addr: la, State: cache.Exclusive}, write)
}

// finishFill installs a fetched line into L1 and applies the write
// state.
func (c *Core) finishFill(line cache.Line, write bool) *cache.Line {
	if write {
		line.State = cache.Modified
	}
	return c.insertL1(line)
}

// insertL1 places a line into L1, demoting any victim down the
// hierarchy.
func (c *Core) insertL1(line cache.Line) *cache.Line {
	ins, victim, evicted := c.L1.Insert(line)
	if evicted {
		c.Stats.L1Evicts++
		c.demoteToL2(victim)
	}
	return ins
}

// demoteToL2 folds the L1 word-granularity log bits into the L2
// 32-byte-granularity bits (Figure 5) and inserts the line into L2.
func (c *Core) demoteToL2(v cache.Line) {
	if c.OnL1Demote != nil {
		c.OnL1Demote(&v)
	}
	v.LogBits = cache.FoldLogBits(v.LogBits)
	_, victim, evicted := c.L2.Insert(v)
	if evicted {
		c.Stats.L2Evicts++
		c.demoteToL3(victim)
	}
}

// demoteToL3 hands the line to the engine hook (which persists log
// records and persist-bit lines before they leave the private caches,
// §III-A), strips the SLPMT metadata, and inserts into the shared L3.
func (c *Core) demoteToL3(v cache.Line) {
	if c.OnL2Evict != nil {
		c.OnL2Evict(&v)
	}
	c.Trace(trace.KCacheEvict, v.Addr, 2)
	v.Persist = false
	v.LogBits = 0
	v.TxID = 0
	_, victim, evicted := c.sh.L3.Insert(v)
	if evicted {
		c.Stats.L3Evicts++
		c.Trace(trace.KCacheEvict, victim.Addr, 3)
		if victim.State == cache.Modified {
			c.writeback(victim.Addr)
		}
	}
}

// PushAsync enters an asynchronous-persist section (background
// hardware activity the core does not wait on). Sections nest.
func (c *Core) PushAsync() { c.asyncDepth++ }

// PopAsync leaves an asynchronous-persist section.
func (c *Core) PopAsync() {
	if c.asyncDepth == 0 {
		panicUnbalanced("PopAsync", "PushAsync")
	}
	c.asyncDepth--
}

// PushStream enters a streamed-persist section (pipelined engine:
// backpressure, no per-line acknowledgement).
func (c *Core) PushStream() {
	if c.streamDepth == 0 {
		c.streamFinish = 0
	}
	c.streamDepth++
}

// PopStream leaves a streamed-persist section.
func (c *Core) PopStream() {
	if c.streamDepth == 0 {
		panicUnbalanced("PopStream", "PushStream")
	}
	c.streamDepth--
}

// panicUnbalanced is kept out of line so the pop fast paths stay
// allocation-free when inlined into //slpmt:noalloc callers.
//
//go:noinline
func panicUnbalanced(pop, push string) {
	panic("machine: " + pop + " without " + push)
}

// AckBarrier is the ordering/durability point at the end of a streamed
// sequence: the core waits until every entry enqueued during the
// current stream section has completed in the medium, plus one
// acknowledgement round trip. Entries posted outside the section (lazy
// drains, writebacks) are not waited on. The wait is charged to the
// active attribution context, defaulting to the per-transaction
// log-sync bucket (the engine's group-commit close installs its own
// context so amortized barriers stay distinguishable).
func (c *Core) AckBarrier() {
	wait := c.sh.PM.Config().AckCycles
	if c.streamFinish > c.Clk {
		wait += c.streamFinish - c.Clk
	}
	cause := c.cause
	if cause == profile.CauseNone {
		cause = profile.CauseLogSync
	}
	c.charge(cause, wait)
}

// persist routes a durable write through the sync, streamed or async
// device path according to the current section, charging the core's
// stall. Each socket's WPQ is shared by every core persisting into its
// address range: cores arbitrate at their own (interleaved) clocks, and
// a cross-socket persist first pays the interconnect hop distance —
// stalling the core on the sync/stream paths, delaying the posted entry
// on the async path.
func (c *Core) persist(addr mem.Addr, data []byte) {
	dev := c.PM
	var hop uint64 // posted-path interconnect delay (async persists)
	if t := c.sh.Topo; t != nil && t.Sockets() > 1 {
		s := c.Layout.SocketOf(addr)
		dev = t.Dev(s)
		if extra := t.EnqueueExtra(c.Home, s); extra != 0 {
			c.Trace(trace.KWPQRemote, addr, extra)
			if c.asyncDepth > 0 {
				hop = extra
			} else {
				c.charge(profile.CauseWPQRemote, extra)
			}
		}
	}
	dev.SetCore(c.ID)
	c.PersistCount++
	c.sh.PersistTotal++
	if (c.CrashAfter != 0 && c.PersistCount == c.CrashAfter) ||
		(c.sh.CrashAfterTotal != 0 && c.sh.PersistTotal == c.sh.CrashAfterTotal) {
		// The write itself completes (it reached the persist domain);
		// execution stops immediately after.
		if c.asyncDepth > 0 {
			dev.PersistAsync(c.Clk+hop, addr, data)
		} else {
			dev.Persist(c.Clk, addr, data)
		}
		panic(CrashSignal{At: c.sh.PersistTotal})
	}
	var stall uint64
	switch {
	case c.asyncDepth > 0:
		stall = dev.PersistAsync(c.Clk+hop, addr, data)
	case c.streamDepth > 0:
		stall = dev.PersistStream(c.Clk, addr, data)
		if f := dev.LastFinish(); f > c.streamFinish {
			c.streamFinish = f
		}
	default:
		stall = dev.Persist(c.Clk, addr, data)
	}
	c.chargePersist(dev, stall)
	c.chargeStall(stall)
}

// chargePersist advances the clock by a persist's stall, decomposed for
// attribution: time waited for WPQ space is always charged to the stall
// bucket (queue backpressure stays first-class even inside an engine
// context); the remainder goes to the active context, or — with none
// set — splits into the fixed enqueue cost and the synchronous
// service/ack remainder.
//
//slpmt:noalloc
func (c *Core) chargePersist(dev *pmem.Device, stall uint64) {
	waited := dev.LastWaited()
	if waited > stall {
		waited = stall
	}
	rest := stall - waited
	if cause := c.cause; cause != profile.CauseNone {
		c.charge(cause, rest)
	} else {
		enq := dev.Config().EnqueueCycles
		if enq > rest {
			enq = rest
		}
		c.charge(profile.CauseWPQEnqueue, enq)
		c.charge(profile.CausePersistSync, rest-enq)
	}
	c.charge(profile.CauseWPQStall, waited)
}

// writeback writes a dirty L3 victim's current contents to PM (always
// asynchronous: the core does not wait for victim writebacks).
func (c *Core) writeback(addr mem.Addr) {
	if c.WritebackFilter != nil && !c.WritebackFilter(addr) {
		return
	}
	var buf [mem.LineSize]byte
	c.ReadMem(addr, buf[:])
	c.PushAsync()
	c.persist(addr, buf[:])
	c.PopAsync()
	c.Stats.PMWriteBytesData += mem.LineSize
	c.Stats.PMWriteEntries++
	c.Stats.L3Writebacks++
	if c.OnL3Writeback != nil {
		c.OnL3Writeback(addr)
	}
}

// coherenceWriteback makes a dirty private line durable because a
// remote core's bus request is taking the line away: the owner posts
// the writeback on its own timeline and retires any lazy-persistency
// tracking, exactly as if the line had left the hierarchy.
func (c *Core) coherenceWriteback(addr mem.Addr) {
	if c.OnCoherenceTake != nil && !c.OnCoherenceTake(addr) {
		return
	}
	var buf [mem.LineSize]byte
	c.ReadMem(addr, buf[:])
	prev := c.SetCause(profile.CauseCoherence)
	c.PushAsync()
	c.persist(addr, buf[:])
	c.PopAsync()
	c.SetCause(prev)
	c.Stats.PMWriteBytesData += mem.LineSize
	c.Stats.PMWriteEntries++
	c.Stats.CoherenceWritebacks++
	c.Trace(trace.KCohWriteback, addr, 0)
	if c.OnL3Writeback != nil {
		c.OnL3Writeback(addr)
	}
}

// chargeStall records WPQ backpressure (stall beyond the fixed enqueue
// latency) in the counters.
func (c *Core) chargeStall(stall uint64) {
	if enq := c.sh.PM.Config().EnqueueCycles; stall > enq {
		c.Stats.WPQStallCycles += stall - enq
	}
}

// PersistLine makes the line containing addr durable: its current
// volatile contents are enqueued to the WPQ and any cached copy becomes
// clean. Returns true if a PM write was actually issued (false if the
// line was already clean and absent, i.e. its contents are already
// durable — persisting then would be redundant).
func (c *Core) PersistLine(addr mem.Addr) bool {
	la := mem.LineAddr(addr)
	l := c.L1.Peek(la)
	if l == nil {
		l = c.L2.Peek(la)
	}
	if l == nil {
		l = c.sh.L3.Peek(la)
	}
	if l == nil {
		l = c.peekRemote(la)
	}
	if l != nil && l.State != cache.Modified {
		// Clean copy: durable image already current.
		return false
	}
	if l == nil {
		// Not cached anywhere: it was either written back on L3
		// eviction (durable already) or never written. Either way the
		// durable image is current, because every path out of the
		// caches persists dirty data.
		return false
	}
	var buf [mem.LineSize]byte
	c.ReadMem(la, buf[:])
	c.persist(la, buf[:])
	c.Stats.PMWriteBytesData += mem.LineSize
	c.Stats.PMWriteEntries++
	l.State = cache.Exclusive
	return true
}

// peekRemote returns another core's private copy of the line, if any —
// a dirty line can migrate into a peer's cache via the shared L3, and
// a persist must still find it. Single-core machines never hit this.
func (c *Core) peekRemote(la mem.Addr) *cache.Line {
	for _, o := range c.sh.cores {
		if o == c {
			continue
		}
		if l := o.L1.Peek(la); l != nil {
			return l
		}
		if l := o.L2.Peek(la); l != nil {
			return l
		}
	}
	return nil
}

// ForcePersistLine persists the line containing addr from the volatile
// image unconditionally (used by redo commits for lines whose writeback
// was suppressed, and by non-transactional persist-through writes). Any
// cached copy becomes clean.
func (c *Core) ForcePersistLine(addr mem.Addr) {
	la := mem.LineAddr(addr)
	var buf [mem.LineSize]byte
	c.ReadMem(la, buf[:])
	c.persist(la, buf[:])
	c.Stats.PMWriteBytesData += mem.LineSize
	c.Stats.PMWriteEntries++
	if _, l := c.FindCached(la); l != nil && l.State == cache.Modified {
		l.State = cache.Exclusive
	}
}

// PersistData makes an arbitrary small byte range durable, updating both
// the durable and volatile images (used by the abort path to apply undo
// records to persistent data). Counted as data traffic; one full line
// write per touched line.
func (c *Core) PersistData(addr mem.Addr, data []byte) {
	// Write volatile first, then persist each touched line in full.
	c.WriteMem(addr, data)
	mem.LineRange(addr, len(data), func(line mem.Addr, off, n int) {
		var buf [mem.LineSize]byte
		c.ReadMem(line, buf[:])
		c.persist(line, buf[:])
		c.Stats.PMWriteBytesData += mem.LineSize
		c.Stats.PMWriteEntries++
		if _, l := c.FindCached(line); l != nil && l.State == cache.Modified {
			l.State = cache.Exclusive
		}
	})
}

// PersistShadow makes the given bytes durable at addr WITHOUT touching
// the volatile image — recovery-grade data whose newest volatile value
// must survive. The redo group close uses it to pin a committed logged
// value into PM when the line is shared with a transaction running
// through the close: the volatile line already carries the in-flight
// value, which must not persist, while the committed value (held by
// the log record) must not be lost when the stream later resets.
// Posted on the core's timeline; counted as data traffic.
func (c *Core) PersistShadow(addr mem.Addr, data []byte) {
	c.PushAsync()
	c.persist(addr, data)
	c.PopAsync()
	c.Stats.PMWriteBytesData += uint64(len(data))
	c.Stats.PMWriteEntries++
}

// RestoreLineFromDurable copies the durable contents of addr's line into
// the volatile image — the abort-path repair after invalidating a
// transaction's cached updates (§V-B).
func (c *Core) RestoreLineFromDurable(addr mem.Addr) {
	la := mem.LineAddr(addr)
	var buf [mem.LineSize]byte
	c.sh.PM.Read(la, buf[:])
	c.WriteMem(la, buf[:])
}

// PersistLogLine writes up to one cache line of serialized log records
// at logAddr into the durable log region. The write is counted as a full
// line of PM log traffic (PM writes are line-granular).
func (c *Core) PersistLogLine(logAddr mem.Addr, data []byte) {
	if len(data) > mem.LineSize {
		panic("machine: log write exceeds one line")
	}
	// Keep the volatile image in sync so post-abort code sees the log.
	c.WriteMem(logAddr, data)
	// Log-line writes default to the log-persist bucket unless the
	// engine installed a more specific context (commit marker, append).
	prev := c.SetCause(profile.CauseLogPersist)
	if prev != profile.CauseNone {
		c.SetCause(prev)
	}
	c.persist(logAddr, data)
	c.SetCause(prev)
	c.Stats.PMWriteBytesLog += mem.LineSize
	c.Stats.PMWriteEntries++
}

// FindCached returns the line's location: the cache level holding it
// (1, 2, 3) and the line pointer, or (0, nil) if uncached in this
// core's hierarchy view (private L1/L2 plus the shared L3).
func (c *Core) FindCached(addr mem.Addr) (int, *cache.Line) {
	la := mem.LineAddr(addr)
	if l := c.L1.Peek(la); l != nil {
		return 1, l
	}
	if l := c.L2.Peek(la); l != nil {
		return 2, l
	}
	if l := c.sh.L3.Peek(la); l != nil {
		return 3, l
	}
	return 0, nil
}

// ForEachPrivate invokes fn on every line resident in the private caches
// (L1 and L2) — the scan the hardware performs at commit and when
// persisting lazy data (§III-C2).
func (c *Core) ForEachPrivate(fn func(level int, l *cache.Line)) {
	c.L1.ForEach(func(l *cache.Line) { fn(1, l) })
	c.L2.ForEach(func(l *cache.Line) { fn(2, l) })
}

// FlushAllDirty persists every dirty line in this core's hierarchy view
// (graceful shutdown): the private caches and the shared L3. It is not
// part of the measured execution; harnesses snapshot counters before
// calling it. On a multi-core machine, flush every core (the shared L3
// pass is idempotent).
func (c *Core) FlushAllDirty() {
	persist := func(l *cache.Line) {
		if l.State == cache.Modified {
			var buf [mem.LineSize]byte
			c.ReadMem(l.Addr, buf[:])
			c.persist(l.Addr, buf[:])
			c.Stats.PMWriteBytesData += mem.LineSize
			c.Stats.PMWriteEntries++
			l.State = cache.Exclusive
		}
	}
	c.L1.ForEach(persist)
	c.L2.ForEach(persist)
	c.sh.L3.ForEach(persist)
}

// DropLine removes the line containing addr from this core's hierarchy
// view without any writeback — the abort-path invalidation (§V-B). The
// volatile contents must be repaired by the caller (undo application).
func (c *Core) DropLine(addr mem.Addr) {
	la := mem.LineAddr(addr)
	c.L1.Remove(la)
	c.L2.Remove(la)
	c.sh.L3.Remove(la)
}

// Crash returns the durable image as of now — the ADR crash snapshot.
func (c *Core) Crash() *pmem.Image { return c.sh.PM.Crash() }
