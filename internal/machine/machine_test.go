package machine

import (
	"testing"

	"github.com/persistmem/slpmt/internal/cache"
	"github.com/persistmem/slpmt/internal/mem"
)

func newM() *Core { return New(Config{}).Core(0) }

func TestAccessLatencies(t *testing.T) {
	m := newM()
	addr := m.Layout.HeapBase

	// Cold access: L1 + L2 + L3 probes + PM read.
	c0 := m.Clk
	m.AccessLine(addr, false)
	cold := m.Clk - c0
	want := uint64(4 + 12 + 40 + 300)
	if cold != want {
		t.Errorf("cold access cost %d, want %d", cold, want)
	}

	// Hot access: L1 hit.
	c1 := m.Clk
	m.AccessLine(addr, false)
	if hot := m.Clk - c1; hot != 4 {
		t.Errorf("hot access cost %d, want 4", hot)
	}
	if m.Stats.L1Hits != 1 || m.Stats.L3Misses != 1 {
		t.Errorf("stats: %d hits, %d l3 misses", m.Stats.L1Hits, m.Stats.L3Misses)
	}
}

func TestWriteMakesModified(t *testing.T) {
	m := newM()
	l := m.AccessLine(m.Layout.HeapBase, true)
	if l.State != cache.Modified {
		t.Errorf("state after write = %v", l.State)
	}
}

func TestMetadataFoldAcrossL1Eviction(t *testing.T) {
	m := newM()
	base := m.Layout.HeapBase
	l := m.AccessLine(base, true)
	l.LogBits = 0x0F // low 32-byte group fully logged
	l.Persist = true
	l.TxID = 2

	// Evict by filling the same L1 set: L1 is 64 sets * 8 ways; lines
	// mapping to the same set are 64*64 bytes apart.
	stride := mem.Addr(64 * 64)
	for i := 1; i <= 8; i++ {
		m.AccessLine(base+stride*mem.Addr(i), false)
	}
	if m.L1.Peek(base) != nil {
		t.Fatal("line not evicted from L1")
	}
	l2 := m.L2.Peek(base)
	if l2 == nil {
		t.Fatal("line not in L2")
	}
	if l2.LogBits != 0x01 {
		t.Errorf("folded log bits = %#x, want 0x01", l2.LogBits)
	}
	if !l2.Persist || l2.TxID != 2 {
		t.Error("persist/txid lost on demotion")
	}

	// Refetch into L1: bits replicate back.
	l1 := m.AccessLine(base, false)
	if l1.LogBits != 0x0F {
		t.Errorf("replicated log bits = %#x, want 0x0F", l1.LogBits)
	}
}

func TestL3StripsMetadataAndWritebacks(t *testing.T) {
	m := newM()
	base := m.Layout.HeapBase
	m.WriteMem(base, []byte{0xEE})
	l := m.AccessLine(base, true)
	l.LogBits = 0xFF
	l.TxID = 1

	var evicted *cache.Line
	m.OnL2Evict = func(l *cache.Line) {
		if l.Addr == base {
			cp := *l
			evicted = &cp
		}
	}
	// Push the line to L3 by saturating its L1 and L2 sets (same-set
	// stride 64 KiB), without also overflowing the L3 set.
	for i := 1; i <= 20; i++ {
		m.AccessLine(base+mem.Addr(i)*64*1024, false)
	}
	if m.L1.Peek(base) != nil || m.L2.Peek(base) != nil {
		t.Fatal("line not pushed out of the private caches")
	}
	if evicted == nil {
		t.Fatal("OnL2Evict hook not called")
	}
	l3 := m.Machine().L3.Peek(base)
	if l3 == nil {
		t.Fatal("line not in L3")
	}
	if l3.LogBits != 0 || l3.TxID != 0 || l3.Persist {
		t.Error("L3 carries SLPMT metadata")
	}
	// Refetch: metadata starts zeroed (the §III-B1 duplicate-logging case).
	l1 := m.AccessLine(base, false)
	if l1.LogBits != 0 {
		t.Error("metadata resurrected from L3")
	}
}

func TestPersistLineDurability(t *testing.T) {
	m := newM()
	a := m.Layout.HeapBase
	m.WriteU64(a, 777)
	m.AccessLine(a, true)
	if !m.PersistLine(a) {
		t.Fatal("dirty line persist skipped")
	}
	if m.PM.ReadU64(a) != 777 {
		t.Error("durable image missing persisted value")
	}
	// Second persist is redundant: line clean now.
	if m.PersistLine(a) {
		t.Error("clean line persisted again")
	}
}

func TestForcePersistUncached(t *testing.T) {
	m := newM()
	a := m.Layout.HeapBase + 4096
	m.WriteU64(a, 42)
	m.ForcePersistLine(a)
	if m.PM.ReadU64(a) != 42 {
		t.Error("force persist did not reach PM")
	}
}

func TestPersistData(t *testing.T) {
	m := newM()
	a := m.Layout.HeapBase + 60 // spans two lines
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.PersistData(a, data)
	got := make([]byte, 8)
	m.PM.Read(a, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("durable byte %d = %d", i, got[i])
		}
	}
	vol := make([]byte, 8)
	m.ReadMem(a, vol)
	if vol[0] != 1 {
		t.Error("volatile image not updated")
	}
}

func TestDropLineAndRestore(t *testing.T) {
	m := newM()
	a := m.Layout.HeapBase
	m.WriteU64(a, 1)
	m.AccessLine(a, true)
	m.PersistLine(a)
	m.WriteU64(a, 2) // newer volatile value, not persisted
	m.DropLine(a)
	m.RestoreLineFromDurable(a)
	if m.ReadU64(a) != 1 {
		t.Errorf("restored volatile = %d, want durable 1", m.ReadU64(a))
	}
}

func TestWritebackFilterSuppresses(t *testing.T) {
	m := newM()
	a := m.Layout.HeapBase
	m.WriteU64(a, 99)
	m.AccessLine(a, true)
	m.WritebackFilter = func(addr mem.Addr) bool { return false }
	m.writeback(mem.LineAddr(a))
	if m.PM.ReadU64(a) == 99 {
		t.Error("suppressed writeback reached PM")
	}
	m.WritebackFilter = nil
	m.writeback(mem.LineAddr(a))
	if m.PM.ReadU64(a) != 99 {
		t.Error("unfiltered writeback did not reach PM")
	}
}

func TestCrashInjection(t *testing.T) {
	m := newM()
	m.CrashAfter = 2
	a := m.Layout.HeapBase
	m.WriteU64(a, 5)
	m.AccessLine(a, true)
	m.PersistLine(a) // event 1
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if sig, ok := r.(CrashSignal); ok && sig.At == 2 {
					crashed = true
				} else {
					panic(r)
				}
			}
		}()
		m.WriteU64(a+64, 6)
		m.AccessLine(a+64, true)
		m.PersistLine(a + 64) // event 2 -> crash
	}()
	if !crashed {
		t.Fatal("crash did not fire")
	}
	// The crashing write itself completed (it reached the persist domain).
	if m.PM.ReadU64(a+64) != 6 {
		t.Error("crashing persist lost")
	}
}

func TestPersistCountsTraffic(t *testing.T) {
	m := newM()
	a := m.Layout.HeapBase
	m.AccessLine(a, true)
	m.PersistLine(a)
	if m.Stats.PMWriteBytesData != 64 || m.Stats.PMWriteEntries != 1 {
		t.Errorf("traffic: data=%d entries=%d", m.Stats.PMWriteBytesData, m.Stats.PMWriteEntries)
	}
	m.PersistLogLine(m.Layout.LogBase, []byte{1, 2, 3})
	if m.Stats.PMWriteBytesLog != 64 {
		t.Errorf("log traffic = %d, want line-granular 64", m.Stats.PMWriteBytesLog)
	}
}
