// Package analyze is the simulator's custom static-analysis suite: a
// hand-rolled go/analysis-style driver (stdlib go/ast + go/types only,
// per the repo's zero-dependency rule) with passes enforcing the
// contracts the figures depend on — deterministic replay, zero-alloc
// hot paths, and complete trace/stats plumbing. cmd/slpmtvet runs the
// suite over the module; the golden-file fixtures under testdata/src
// pin each pass's diagnostics.
//
// Findings can be waived at a specific line with a directive comment
//
//	//slpmt:<analyzer>-ok: <reason>
//
// placed on the flagged line or the line directly above it. The reason
// must say why the construct is safe (for the determinism pass,
// typically "collected keys are sorted below"); the waiver-audit pass
// fails the run on any directive missing the colon or the
// justification, so a waiver can never land silently.
package analyze

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is a per-package pass.
type Analyzer struct {
	Name string
	Doc  string
	// AppliesTo filters packages by import path; nil applies the pass to
	// every module package.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a suppression directive for
// this analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	if p.Module.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModuleAnalyzer is a whole-module pass: it sees every package at once
// (the trace-coverage pass matches constants declared in one package
// against call sites in all the others).
type ModuleAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ModulePass)
}

// ModulePass is a module analyzer's view of the loaded module.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless a suppression directive for
// this analyzer covers the line.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	if p.Module.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Options adjusts a driver run.
type Options struct {
	// AllPackages ignores the analyzers' AppliesTo filters — the fixture
	// tests use it, since fixture packages live under a synthetic module
	// path that no production filter matches.
	AllPackages bool
	// Serial disables the parallel driver and runs every pass on the
	// calling goroutine, in registration order. Diagnostics are
	// identical either way (the final sort is total); Serial exists for
	// timing comparisons and debugging.
	Serial bool
}

// Run executes the per-package and module passes over m and returns the
// surviving diagnostics in stable (position, analyzer) order.
//
// Passes run in parallel, one goroutine per (analyzer, package) pair
// plus one per module analyzer, bounded by GOMAXPROCS. This is safe
// because after Load returns, the Module — FileSet, ASTs, types.Info
// maps, suppression index — is read-only, and the one piece of shared
// mutable state (the interprocedural Effects build) is behind a
// sync.Once. Each pass appends to a private slice; the merge is locked
// and the final position sort makes output order independent of
// scheduling.
func Run(m *Module, pkgAnalyzers []*Analyzer, modAnalyzers []*ModuleAnalyzer, opts Options) []Diagnostic {
	var (
		mu    sync.Mutex
		diags []Diagnostic
	)
	var jobs []func()
	for _, a := range pkgAnalyzers {
		for _, pkg := range m.Packages {
			if !opts.AllPackages && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			a, pkg := a, pkg
			jobs = append(jobs, func() {
				var local []Diagnostic
				a.Run(&Pass{Analyzer: a, Module: m, Pkg: pkg, diags: &local})
				mu.Lock()
				diags = append(diags, local...)
				mu.Unlock()
			})
		}
	}
	for _, a := range modAnalyzers {
		a := a
		jobs = append(jobs, func() {
			var local []Diagnostic
			a.Run(&ModulePass{Analyzer: a, Module: m, diags: &local})
			mu.Lock()
			diags = append(diags, local...)
			mu.Unlock()
		})
	}
	if opts.Serial {
		for _, job := range jobs {
			job()
		}
	} else {
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for _, job := range jobs {
			job := job
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer func() { <-sem; wg.Done() }()
				job()
			}()
		}
		wg.Wait()
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
