package analyze

import (
	"go/ast"
	"go/types"
)

// TraceCoverage statically enforces the observability plumbing that PR
// 3 checked with reflection at test time: every exported trace.Kind
// constant must have at least one emit site somewhere in the module, a
// display name in the kindNames table, and a case in the Perfetto
// exporter's event switch; and every stats.Counters field must have a
// canonical row so no counter silently vanishes from the reports.
var TraceCoverage = &ModuleAnalyzer{
	Name: "trace-coverage",
	Doc:  "every trace.Kind emitted, named, and Perfetto-mapped; every stats.Counters field rendered; every profile.Cause named, kind-mapped, and documented in the report renderer; every critpath.EdgeKind named and witness-mapped; every stream consumer's handled kinds registered in its Kinds mask",
	Run:  runTraceCoverage,
}

func runTraceCoverage(p *ModulePass) {
	checkKindCoverage(p)
	checkCounterRows(p)
	checkCauseCoverage(p)
	checkEdgeCoverage(p)
	checkStreamConsumers(p)
}

// kindConst describes one exported trace.Kind constant.
type kindConst struct {
	name string
	obj  types.Object
}

func checkKindCoverage(p *ModulePass) {
	tracePkg := p.Module.LookupSuffix("internal/trace")
	if tracePkg == nil {
		return // nothing to check (fixture modules without a trace package)
	}
	kindType, ok := tracePkg.Types.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}

	// Exported Kind constants, except the explicit no-op sentinel.
	var kinds []kindConst
	scope := tracePkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Name() == "KNone" {
			continue
		}
		if types.Identical(c.Type(), kindType.Type()) {
			kinds = append(kinds, kindConst{name: c.Name(), obj: c})
		}
	}
	if len(kinds) == 0 {
		return
	}

	// Emit sites: Kind constants appearing as arguments of any call to a
	// function or method named Trace or Emit, anywhere in the module.
	emitted := map[string]bool{}
	for _, pkg := range p.Module.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := calleeName(call); name != "Trace" && name != "Emit" {
					return true
				}
				for _, arg := range call.Args {
					if kn := kindRef(pkg.Info, tracePkg.Types, arg); kn != "" {
						emitted[kn] = true
					}
				}
				return true
			})
		}
	}

	// kindNames entries (display names) and WritePerfetto case labels.
	named := map[string]bool{}
	mapped := map[string]bool{}
	for _, f := range tracePkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if id.Name != "kindNames" || i >= len(n.Values) {
						continue
					}
					cl, ok := n.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if kn := kindRef(tracePkg.Info, tracePkg.Types, kv.Key); kn != "" {
								named[kn] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if n.Name.Name != "WritePerfetto" || n.Body == nil {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					cc, ok := m.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, expr := range cc.List {
						if kn := kindRef(tracePkg.Info, tracePkg.Types, expr); kn != "" {
							mapped[kn] = true
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}

	for _, k := range kinds {
		if !emitted[k.name] {
			p.Reportf(k.obj.Pos(), "trace kind %s has no emit site (no Trace/Emit call passes it)", k.name)
		}
		if !named[k.name] {
			p.Reportf(k.obj.Pos(), "trace kind %s has no kindNames entry", k.name)
		}
		if !mapped[k.name] {
			p.Reportf(k.obj.Pos(), "trace kind %s is not handled by the Perfetto exporter (no WritePerfetto case)", k.name)
		}
	}
}

// calleeName returns the called function or method's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// kindRef resolves expr to the name of an exported Kind constant of the
// trace package, or "".
func kindRef(info *types.Info, tracePkg *types.Package, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != tracePkg.Path() {
		return ""
	}
	if named, ok := c.Type().(*types.Named); !ok || named.Obj().Name() != "Kind" {
		return ""
	}
	return c.Name()
}

// checkCauseCoverage mirrors checkKindCoverage for the attribution
// taxonomy: every exported profile.Cause constant (except the CauseNone
// sentinel) must have a canonical name in causeNames, map to at least
// one witnessing trace.Kind in causeKinds, and carry an explanation in
// the report renderer's causeHelp table — so a cause added to the
// profiler can neither vanish from the reports nor render unexplained.
func checkCauseCoverage(p *ModulePass) {
	profPkg := p.Module.LookupSuffix("internal/profile")
	if profPkg == nil {
		return // nothing to check (fixture modules without a profile package)
	}
	causeType, ok := profPkg.Types.Scope().Lookup("Cause").(*types.TypeName)
	if !ok {
		return
	}

	// Exported Cause constants, except the explicit no-attribution
	// sentinel.
	var causes []kindConst
	scope := profPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Name() == "CauseNone" {
			continue
		}
		if types.Identical(c.Type(), causeType.Type()) {
			causes = append(causes, kindConst{name: c.Name(), obj: c})
		}
	}
	if len(causes) == 0 {
		return
	}

	// causeNames entries and non-empty causeKinds entries, in the
	// profile package itself.
	named := map[string]bool{}
	kindMapped := map[string]bool{}
	for _, f := range profPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range vs.Names {
				if (id.Name != "causeNames" && id.Name != "causeKinds") || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					cn := causeRef(profPkg.Info, profPkg.Types, kv.Key)
					if cn == "" {
						continue
					}
					if id.Name == "causeNames" {
						named[cn] = true
					} else if val, ok := kv.Value.(*ast.CompositeLit); ok && len(val.Elts) > 0 {
						kindMapped[cn] = true
					}
				}
			}
			return true
		})
	}

	// causeHelp entries in the report renderer.
	helped := map[string]bool{}
	if repPkg := p.Module.LookupSuffix("internal/report"); repPkg != nil {
		for _, f := range repPkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, id := range vs.Names {
					if id.Name != "causeHelp" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if cn := causeRef(repPkg.Info, profPkg.Types, kv.Key); cn != "" {
								helped[cn] = true
							}
						}
					}
				}
				return true
			})
		}
	}

	for _, c := range causes {
		if !named[c.name] {
			p.Reportf(c.obj.Pos(), "profile cause %s has no causeNames entry", c.name)
		}
		if !kindMapped[c.name] {
			p.Reportf(c.obj.Pos(), "profile cause %s maps to no trace kind (empty or missing causeKinds entry)", c.name)
		}
		if !helped[c.name] {
			p.Reportf(c.obj.Pos(), "profile cause %s has no causeHelp entry in internal/report (it would render unexplained)", c.name)
		}
	}
}

// checkEdgeCoverage extends the registry pattern to the critical-path
// analyzer's waits-for taxonomy: every exported critpath.EdgeKind
// constant must have a canonical name in edgeNames and map to at least
// one witnessing trace.Kind in edgeKinds — so a new cross-core blocking
// relation cannot be added to the DAG without declaring both how it
// renders and which trace events witness it. (Type checking already
// guarantees the witnesses are real trace.Kind constants; this check
// guarantees the entry exists and is non-empty.)
func checkEdgeCoverage(p *ModulePass) {
	cpPkg := p.Module.LookupSuffix("internal/critpath")
	if cpPkg == nil {
		return // nothing to check (fixture modules without a critpath package)
	}
	edgeType, ok := cpPkg.Types.Scope().Lookup("EdgeKind").(*types.TypeName)
	if !ok {
		return
	}

	// Exported EdgeKind constants (the enum has no sentinel; the
	// numEdgeKinds bound is unexported and skipped by the filter).
	var edges []kindConst
	scope := cpPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() {
			continue
		}
		if types.Identical(c.Type(), edgeType.Type()) {
			edges = append(edges, kindConst{name: c.Name(), obj: c})
		}
	}
	if len(edges) == 0 {
		return
	}

	// edgeNames entries and non-empty edgeKinds entries.
	named := map[string]bool{}
	kindMapped := map[string]bool{}
	for _, f := range cpPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range vs.Names {
				if (id.Name != "edgeNames" && id.Name != "edgeKinds") || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					en := edgeRef(cpPkg.Info, cpPkg.Types, kv.Key)
					if en == "" {
						continue
					}
					if id.Name == "edgeNames" {
						named[en] = true
					} else if val, ok := kv.Value.(*ast.CompositeLit); ok && len(val.Elts) > 0 {
						kindMapped[en] = true
					}
				}
			}
			return true
		})
	}

	for _, e := range edges {
		if !named[e.name] {
			p.Reportf(e.obj.Pos(), "critpath edge kind %s has no edgeNames entry", e.name)
		}
		if !kindMapped[e.name] {
			p.Reportf(e.obj.Pos(), "critpath edge kind %s maps to no witnessing trace kind (empty or missing edgeKinds entry)", e.name)
		}
	}
}

// edgeRef resolves expr to the name of an exported EdgeKind constant of
// the critpath package, or "".
func edgeRef(info *types.Info, cpPkg *types.Package, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != cpPkg.Path() {
		return ""
	}
	if named, ok := c.Type().(*types.Named); !ok || named.Obj().Name() != "EdgeKind" {
		return ""
	}
	return c.Name()
}

// causeRef resolves expr to the name of an exported Cause constant of
// the profile package, or "".
func causeRef(info *types.Info, profPkg *types.Package, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != profPkg.Path() {
		return ""
	}
	if named, ok := c.Type().(*types.Named); !ok || named.Obj().Name() != "Cause" {
		return ""
	}
	return c.Name()
}

// checkStreamConsumers enforces the stream-consumer registration
// contract (internal/trace/stream.Consumer): delivery filters events by
// the consumer's Kinds mask, so a trace.Kind referenced inside a
// Consume body but absent from the type's Kinds mask is dead handling —
// the consumer would silently never see those events. Masks resolve
// through trace.AllKinds (universal), trace.Mask(...) calls, and
// same-package helper functions; an unresolvable mask is treated as
// universal rather than guessed at (no false positives).
func checkStreamConsumers(p *ModulePass) {
	tracePkg := p.Module.LookupSuffix("internal/trace")
	if tracePkg == nil {
		return
	}
	eventObj, ok := tracePkg.Types.Scope().Lookup("Event").(*types.TypeName)
	if !ok {
		return
	}

	for _, pkg := range p.Module.Packages {
		// Collect Kinds/Consume method declarations by receiver type, and
		// package-level functions for mask-helper resolution.
		kindsFns := map[string]*ast.FuncDecl{}
		consumeFns := map[string]*ast.FuncDecl{}
		helpers := map[string]*ast.FuncDecl{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fd.Recv == nil {
					helpers[fd.Name.Name] = fd
					continue
				}
				recv := recvTypeName(fd)
				if recv == "" {
					continue
				}
				switch fd.Name.Name {
				case "Kinds":
					if fd.Type.Params.NumFields() == 0 && fd.Type.Results.NumFields() == 1 {
						kindsFns[recv] = fd
					}
				case "Consume":
					if fd.Type.Params.NumFields() == 1 && len(fd.Type.Params.List[0].Names) <= 1 &&
						types.Identical(pkg.Info.TypeOf(fd.Type.Params.List[0].Type), eventObj.Type()) {
						consumeFns[recv] = fd
					}
				}
			}
		}

		for recv, consume := range consumeFns { //slpmt:determinism-ok: findings are position-sorted by the driver
			kindsFn, ok := kindsFns[recv]
			if !ok || consume.Body == nil {
				continue
			}
			registered, universal := resolveKindsMask(p, pkg, tracePkg, kindsFn, helpers, 0)
			if universal {
				continue
			}
			ast.Inspect(consume.Body, func(n ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				if kn := kindRef(pkg.Info, tracePkg.Types, expr); kn != "" && !registered[kn] {
					p.Reportf(expr.Pos(),
						"stream consumer %s handles trace kind %s in Consume but its Kinds mask does not register it (events of that kind are filtered out before delivery)",
						recv, kn)
					registered[kn] = true // one finding per kind per consumer
				}
				return true
			})
		}
	}
}

// recvTypeName returns a method's receiver type name, stripping any
// pointer.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// resolveKindsMask evaluates a Kinds method (or mask helper) body to
// the set of registered Kind constant names. universal=true means the
// mask admits everything — either it really is trace.AllKinds, or it
// could not be resolved statically and the check must stay silent.
func resolveKindsMask(p *ModulePass, pkg *Package, tracePkg *Package, fd *ast.FuncDecl, helpers map[string]*ast.FuncDecl, depth int) (map[string]bool, bool) {
	if fd.Body == nil || depth > 4 {
		return nil, true
	}
	var ret ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && ret == nil && len(r.Results) == 1 {
			ret = r.Results[0]
		}
		return ret == nil
	})
	if ret == nil {
		return nil, true
	}
	return resolveMaskExpr(p, pkg, tracePkg, ret, helpers, depth)
}

// resolveMaskExpr resolves one mask-valued expression.
func resolveMaskExpr(p *ModulePass, pkg *Package, tracePkg *Package, expr ast.Expr, helpers map[string]*ast.FuncDecl, depth int) (map[string]bool, bool) {
	switch e := expr.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		// trace.AllKinds (a constant) is the universal mask.
		if obj := exprObj(pkg.Info, expr); obj != nil &&
			obj.Name() == "AllKinds" && obj.Pkg() != nil && obj.Pkg().Path() == tracePkg.Types.Path() {
			return nil, true
		}
		return nil, true // other idents: unresolvable, stay silent
	case *ast.CallExpr:
		name := calleeName(e)
		if name == "Mask" {
			if obj := exprObj(pkg.Info, e.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == tracePkg.Types.Path() {
				set := map[string]bool{}
				for _, arg := range e.Args {
					kn := kindRef(pkg.Info, tracePkg.Types, arg)
					if kn == "" {
						return nil, true // non-constant argument: unresolvable
					}
					set[kn] = true
				}
				return set, false
			}
		}
		if name == "AllKinds" {
			if obj := exprObj(pkg.Info, e.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == tracePkg.Types.Path() {
				return nil, true
			}
		}
		// A same-package helper like wpqMask(): recurse into its body.
		if helper, ok := helpers[name]; ok {
			return resolveKindsMask(p, pkg, tracePkg, helper, helpers, depth+1)
		}
		return nil, true
	case *ast.BinaryExpr:
		// Union of two resolvable masks (m1 | m2).
		l, lu := resolveMaskExpr(p, pkg, tracePkg, e.X, helpers, depth)
		r, ru := resolveMaskExpr(p, pkg, tracePkg, e.Y, helpers, depth)
		if lu || ru {
			return nil, true
		}
		for k := range r { //slpmt:determinism-ok: merging into a set, order-independent
			l[k] = true
		}
		return l, false
	case *ast.ParenExpr:
		return resolveMaskExpr(p, pkg, tracePkg, e.X, helpers, depth)
	}
	return nil, true
}

// exprObj resolves an identifier or selector to its types.Object.
func exprObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// checkCounterRows verifies canonicalRows renders every Counters field.
func checkCounterRows(p *ModulePass) {
	statsPkg := p.Module.LookupSuffix("internal/stats")
	if statsPkg == nil {
		return
	}
	ctrObj, ok := statsPkg.Types.Scope().Lookup("Counters").(*types.TypeName)
	if !ok {
		return
	}
	st, ok := ctrObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	// Fields referenced as selectors inside canonicalRows.
	rendered := map[string]bool{}
	for _, f := range statsPkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "canonicalRows" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if v, ok := statsPkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
						rendered[v.Name()] = true
					}
				}
				return true
			})
		}
	}
	if len(rendered) == 0 {
		p.Reportf(ctrObj.Pos(), "stats.canonicalRows not found or empty; every Counters field needs a canonical row")
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !rendered[f.Name()] {
			p.Reportf(f.Pos(), "stats.Counters field %s has no canonicalRows entry (it would vanish from every report)", f.Name())
		}
	}
}
