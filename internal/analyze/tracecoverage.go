package analyze

import (
	"go/ast"
	"go/types"
)

// TraceCoverage statically enforces the observability plumbing that PR
// 3 checked with reflection at test time: every exported trace.Kind
// constant must have at least one emit site somewhere in the module, a
// display name in the kindNames table, and a case in the Perfetto
// exporter's event switch; and every stats.Counters field must have a
// canonical row so no counter silently vanishes from the reports.
var TraceCoverage = &ModuleAnalyzer{
	Name: "trace-coverage",
	Doc:  "every trace.Kind emitted, named, and Perfetto-mapped; every stats.Counters field rendered; every profile.Cause named, kind-mapped, and documented in the report renderer",
	Run:  runTraceCoverage,
}

func runTraceCoverage(p *ModulePass) {
	checkKindCoverage(p)
	checkCounterRows(p)
	checkCauseCoverage(p)
}

// kindConst describes one exported trace.Kind constant.
type kindConst struct {
	name string
	obj  types.Object
}

func checkKindCoverage(p *ModulePass) {
	tracePkg := p.Module.LookupSuffix("internal/trace")
	if tracePkg == nil {
		return // nothing to check (fixture modules without a trace package)
	}
	kindType, ok := tracePkg.Types.Scope().Lookup("Kind").(*types.TypeName)
	if !ok {
		return
	}

	// Exported Kind constants, except the explicit no-op sentinel.
	var kinds []kindConst
	scope := tracePkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Name() == "KNone" {
			continue
		}
		if types.Identical(c.Type(), kindType.Type()) {
			kinds = append(kinds, kindConst{name: c.Name(), obj: c})
		}
	}
	if len(kinds) == 0 {
		return
	}

	// Emit sites: Kind constants appearing as arguments of any call to a
	// function or method named Trace or Emit, anywhere in the module.
	emitted := map[string]bool{}
	for _, pkg := range p.Module.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := calleeName(call); name != "Trace" && name != "Emit" {
					return true
				}
				for _, arg := range call.Args {
					if kn := kindRef(pkg.Info, tracePkg.Types, arg); kn != "" {
						emitted[kn] = true
					}
				}
				return true
			})
		}
	}

	// kindNames entries (display names) and WritePerfetto case labels.
	named := map[string]bool{}
	mapped := map[string]bool{}
	for _, f := range tracePkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if id.Name != "kindNames" || i >= len(n.Values) {
						continue
					}
					cl, ok := n.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if kn := kindRef(tracePkg.Info, tracePkg.Types, kv.Key); kn != "" {
								named[kn] = true
							}
						}
					}
				}
			case *ast.FuncDecl:
				if n.Name.Name != "WritePerfetto" || n.Body == nil {
					return true
				}
				ast.Inspect(n.Body, func(m ast.Node) bool {
					cc, ok := m.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, expr := range cc.List {
						if kn := kindRef(tracePkg.Info, tracePkg.Types, expr); kn != "" {
							mapped[kn] = true
						}
					}
					return true
				})
				return false
			}
			return true
		})
	}

	for _, k := range kinds {
		if !emitted[k.name] {
			p.Reportf(k.obj.Pos(), "trace kind %s has no emit site (no Trace/Emit call passes it)", k.name)
		}
		if !named[k.name] {
			p.Reportf(k.obj.Pos(), "trace kind %s has no kindNames entry", k.name)
		}
		if !mapped[k.name] {
			p.Reportf(k.obj.Pos(), "trace kind %s is not handled by the Perfetto exporter (no WritePerfetto case)", k.name)
		}
	}
}

// calleeName returns the called function or method's bare name.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// kindRef resolves expr to the name of an exported Kind constant of the
// trace package, or "".
func kindRef(info *types.Info, tracePkg *types.Package, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != tracePkg.Path() {
		return ""
	}
	if named, ok := c.Type().(*types.Named); !ok || named.Obj().Name() != "Kind" {
		return ""
	}
	return c.Name()
}

// checkCauseCoverage mirrors checkKindCoverage for the attribution
// taxonomy: every exported profile.Cause constant (except the CauseNone
// sentinel) must have a canonical name in causeNames, map to at least
// one witnessing trace.Kind in causeKinds, and carry an explanation in
// the report renderer's causeHelp table — so a cause added to the
// profiler can neither vanish from the reports nor render unexplained.
func checkCauseCoverage(p *ModulePass) {
	profPkg := p.Module.LookupSuffix("internal/profile")
	if profPkg == nil {
		return // nothing to check (fixture modules without a profile package)
	}
	causeType, ok := profPkg.Types.Scope().Lookup("Cause").(*types.TypeName)
	if !ok {
		return
	}

	// Exported Cause constants, except the explicit no-attribution
	// sentinel.
	var causes []kindConst
	scope := profPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || c.Name() == "CauseNone" {
			continue
		}
		if types.Identical(c.Type(), causeType.Type()) {
			causes = append(causes, kindConst{name: c.Name(), obj: c})
		}
	}
	if len(causes) == 0 {
		return
	}

	// causeNames entries and non-empty causeKinds entries, in the
	// profile package itself.
	named := map[string]bool{}
	kindMapped := map[string]bool{}
	for _, f := range profPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, id := range vs.Names {
				if (id.Name != "causeNames" && id.Name != "causeKinds") || i >= len(vs.Values) {
					continue
				}
				cl, ok := vs.Values[i].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					cn := causeRef(profPkg.Info, profPkg.Types, kv.Key)
					if cn == "" {
						continue
					}
					if id.Name == "causeNames" {
						named[cn] = true
					} else if val, ok := kv.Value.(*ast.CompositeLit); ok && len(val.Elts) > 0 {
						kindMapped[cn] = true
					}
				}
			}
			return true
		})
	}

	// causeHelp entries in the report renderer.
	helped := map[string]bool{}
	if repPkg := p.Module.LookupSuffix("internal/report"); repPkg != nil {
		for _, f := range repPkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				vs, ok := n.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, id := range vs.Names {
					if id.Name != "causeHelp" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							if cn := causeRef(repPkg.Info, profPkg.Types, kv.Key); cn != "" {
								helped[cn] = true
							}
						}
					}
				}
				return true
			})
		}
	}

	for _, c := range causes {
		if !named[c.name] {
			p.Reportf(c.obj.Pos(), "profile cause %s has no causeNames entry", c.name)
		}
		if !kindMapped[c.name] {
			p.Reportf(c.obj.Pos(), "profile cause %s maps to no trace kind (empty or missing causeKinds entry)", c.name)
		}
		if !helped[c.name] {
			p.Reportf(c.obj.Pos(), "profile cause %s has no causeHelp entry in internal/report (it would render unexplained)", c.name)
		}
	}
}

// causeRef resolves expr to the name of an exported Cause constant of
// the profile package, or "".
func causeRef(info *types.Info, profPkg *types.Package, expr ast.Expr) string {
	var id *ast.Ident
	switch e := expr.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != profPkg.Path() {
		return ""
	}
	if named, ok := c.Type().(*types.Named); !ok || named.Obj().Name() != "Cause" {
		return ""
	}
	return c.Name()
}

// checkCounterRows verifies canonicalRows renders every Counters field.
func checkCounterRows(p *ModulePass) {
	statsPkg := p.Module.LookupSuffix("internal/stats")
	if statsPkg == nil {
		return
	}
	ctrObj, ok := statsPkg.Types.Scope().Lookup("Counters").(*types.TypeName)
	if !ok {
		return
	}
	st, ok := ctrObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	// Fields referenced as selectors inside canonicalRows.
	rendered := map[string]bool{}
	for _, f := range statsPkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "canonicalRows" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if v, ok := statsPkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
						rendered[v.Name()] = true
					}
				}
				return true
			})
		}
	}
	if len(rendered) == 0 {
		p.Reportf(ctrObj.Pos(), "stats.canonicalRows not found or empty; every Counters field needs a canonical row")
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !rendered[f.Name()] {
			p.Reportf(f.Pos(), "stats.Counters field %s has no canonicalRows entry (it would vanish from every report)", f.Name())
		}
	}
}
