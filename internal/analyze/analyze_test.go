package analyze

import (
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var pkgAnalyzers = []*Analyzer{Determinism, Noalloc}
var modAnalyzers = []*ModuleAnalyzer{TraceCoverage, Chargeflow, Obsonly, WaiverAudit}

// wantRe extracts expected-diagnostic annotations: `// want "substr"`
// comments on the line a finding is reported at (a line may carry
// several, one per expected diagnostic).
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// TestFixtures golden-checks every analyzer against the seeded fixture
// module: each want comment must be matched by a diagnostic containing
// its substring on the same line, and no diagnostic may appear on a
// line without a matching want.
func TestFixtures(t *testing.T) {
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}

	// Collect want comments by file:line.
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := m.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, sub := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						wants[k] = append(wants[k], sub[1])
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want comments found in fixtures")
	}

	// AllPackages: fixture paths don't match the production package
	// filters (they live under a synthetic module path).
	diags := Run(m, pkgAnalyzers, modAnalyzers, Options{AllPackages: true})

	matched := map[key][]bool{}
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched[k][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: want %q matched no diagnostic", k.file, k.line, w)
			}
		}
	}
}

// TestSuppressionDirective double-checks the waiver plumbing: the
// determfix map-range loop carrying //slpmt:determinism-ok must not be
// reported (TestFixtures would flag it as unexpected, but this pins the
// reason down if the directive regex regresses).
func TestSuppressionDirective(t *testing.T) {
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir, "./determfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Analyzer{Determinism}, nil, Options{AllPackages: true})
	for _, d := range diags {
		if strings.Contains(d.Message, "range over map") && d.Pos.Line > 40 {
			t.Errorf("suppressed map range still reported: %s", d)
		}
	}
}

// TestRealTreeClean runs the full suite — including the compiler
// escape cross-check — over the actual module and requires zero
// findings. This is the dogfooding gate: any new nondeterminism,
// hot-path allocation, or unplumbed trace kind fails the build here
// and in `make vet`.
func TestRealTreeClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := Run(m, pkgAnalyzers, modAnalyzers, Options{})
	esc, err := CheckEscapes(m)
	if err != nil {
		t.Fatalf("escape check: %v", err)
	}
	diags = append(diags, esc...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d findings on the real tree; fix them or waive with //slpmt:<analyzer>-ok: <reason>", len(diags))
	}
}

// TestParallelMatchesSerial pins the parallel driver's determinism: the
// same module analyzed serially and in parallel must produce identical
// diagnostic lists (the position sort makes output order independent of
// goroutine scheduling).
func TestParallelMatchesSerial(t *testing.T) {
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	load := func() *Module {
		m, err := Load(dir)
		if err != nil {
			t.Fatalf("load fixtures: %v", err)
		}
		return m
	}
	// Separate Module per run: the shared Effects cache must not leak
	// results between configurations (and a fresh build per run also
	// exercises the sync.Once under the parallel driver).
	serial := Run(load(), pkgAnalyzers, modAnalyzers, Options{AllPackages: true, Serial: true})
	parallel := Run(load(), pkgAnalyzers, modAnalyzers, Options{AllPackages: true})
	if len(serial) != len(parallel) {
		t.Fatalf("serial produced %d diagnostics, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].String() != parallel[i].String() {
			t.Errorf("diagnostic %d differs:\n  serial:   %s\n  parallel: %s", i, serial[i], parallel[i])
		}
	}
}

// TestWaiverGrammar pins the directive parser and the audit pass
// against all three grammar outcomes: legacy colon-less, colon with an
// empty reason, and the accepted form. Both rejected forms must still
// suppress (tightening the grammar never silently re-arms a waiver).
func TestWaiverGrammar(t *testing.T) {
	const src = `package w

func f(m map[int]int) int {
	s := 0
	for k := range m { //slpmt:determinism-ok legacy reason
		s += k
	}
	for k := range m { //slpmt:determinism-ok:
		s += k
	}
	for k := range m { //slpmt:determinism-ok: commutative sum
		s += k
	}
	return s
}
`
	m := &Module{Fset: token.NewFileSet(), suppress: map[string]map[int]map[string]bool{}}
	f, err := parser.ParseFile(m.Fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	m.indexDirectives("w.go", f)

	ws := m.Waivers()
	if len(ws) != 3 {
		t.Fatalf("parsed %d waivers, want 3", len(ws))
	}
	if ws[0].Colon || ws[0].Reason != "legacy reason" {
		t.Errorf("legacy form parsed as %+v", ws[0])
	}
	if !ws[1].Colon || ws[1].Reason != "" {
		t.Errorf("empty-reason form parsed as %+v", ws[1])
	}
	if !ws[2].Colon || ws[2].Reason != "commutative sum" {
		t.Errorf("accepted form parsed as %+v", ws[2])
	}
	for _, w := range ws {
		if !m.suppressed("determinism", m.Fset.Position(w.Pos)) {
			t.Errorf("%s: directive does not suppress", m.Fset.Position(w.Pos))
		}
	}

	diags := Run(m, nil, []*ModuleAnalyzer{WaiverAudit}, Options{})
	if len(diags) != 2 {
		t.Fatalf("audit produced %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "legacy colon-less form") {
		t.Errorf("legacy form: got %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "no justification") {
		t.Errorf("empty reason: got %q", diags[1].Message)
	}
}

// TestEffectsSummaries spot-checks the interprocedural layer the
// chargeflow/obsonly passes are built on: callgraph edges (static and
// interface-expanded), effect summaries, and transitive Mutates.
func TestEffectsSummaries(t *testing.T) {
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	eff := m.Effects()
	if eff != m.Effects() {
		t.Fatal("Effects not cached across calls")
	}

	lookup := func(pkgSuffix, recv, name string) *types.Func {
		t.Helper()
		for f, fi := range eff.Graph.Funcs {
			if f.Name() != name || !strings.HasSuffix(fi.Pkg.Path, pkgSuffix) {
				continue
			}
			if recvTypeNameOf(f) == recv {
				return f
			}
		}
		t.Fatalf("function %s.%s.%s not in callgraph", pkgSuffix, recv, name)
		return nil
	}

	charge := lookup("internal/machine", "Core", "charge")
	tick := lookup("internal/machine", "Core", "Tick")
	bump := lookup("internal/machine", "Core", "Bump")
	consume := lookup("streamconsumer", "Mutator", "Consume")
	copyCount := lookup("internal/machine", "", "CopyCount")

	// charge writes Clk directly; Tick only transitively.
	if got := eff.Funcs[charge].SimWrites; len(got) != 1 || got[0].Desc != "machine.Core.Clk" {
		t.Errorf("charge SimWrites = %+v, want one machine.Core.Clk", got)
	}
	if len(eff.Funcs[tick].SimWrites) != 0 || !eff.Funcs[tick].Mutates {
		t.Errorf("Tick: direct writes %d (want 0), Mutates %v (want true)",
			len(eff.Funcs[tick].SimWrites), eff.Funcs[tick].Mutates)
	}
	// Value-receiver copies carry no effect.
	if fe := eff.Funcs[copyCount]; len(fe.SimWrites) != 0 || fe.Mutates {
		t.Errorf("CopyCount: writes into a value copy must not count: %+v", fe)
	}
	// Static edge Tick -> charge.
	found := false
	for _, cs := range eff.Graph.Funcs[tick].Calls {
		if cs.Callee == charge {
			found = true
		}
	}
	if !found {
		t.Error("callgraph misses the Tick -> charge edge")
	}
	// Mutator.Consume reaches Bump's Count write.
	reached, _ := eff.Graph.ReachableFrom([]*types.Func{consume})
	if !reached[bump] {
		t.Error("Consume -> Bump not reachable")
	}
	// Cause references feed the reachability rule.
	refs := eff.Funcs[tick].CauseRefs
	if len(refs) != 1 || refs[0].Name() != "CauseGood" {
		t.Errorf("Tick CauseRefs = %v, want [CauseGood]", refs)
	}
}

// TestLoadTypeIdentity pins the property the trace-coverage pass relies
// on: a module package importing another module package resolves to the
// same *types.Package the loader source-checked, not a shadow copy.
func TestLoadTypeIdentity(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	tracePkg := m.LookupSuffix("internal/trace")
	if tracePkg == nil {
		t.Fatal("internal/trace not loaded as an in-module dependency")
	}
	eng := m.LookupSuffix("internal/engine")
	if eng == nil {
		t.Fatal("internal/engine not loaded")
	}
	for _, imp := range eng.Types.Imports() {
		if imp.Path() == tracePkg.Path {
			if imp != tracePkg.Types {
				t.Error("engine imports a shadow trace package; cross-package type identity is broken")
			}
			return
		}
	}
	t.Error("engine does not import internal/trace?")
}

// TestDiagnosticString keeps the rendered form stable (CI log format).
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	got := d.String()
	want := fmt.Sprintf("%s: [%s] %s", "x.go:3:7", "determinism", "boom")
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}
