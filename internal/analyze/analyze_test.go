package analyze

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var pkgAnalyzers = []*Analyzer{Determinism, Noalloc}
var modAnalyzers = []*ModuleAnalyzer{TraceCoverage}

// wantRe extracts expected-diagnostic annotations: a `// want "substr"`
// comment on the line a finding is reported at.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// TestFixtures golden-checks every analyzer against the seeded fixture
// module: each want comment must be matched by a diagnostic containing
// its substring on the same line, and no diagnostic may appear on a
// line without a matching want.
func TestFixtures(t *testing.T) {
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}

	// Collect want comments by file:line.
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					sub := wantRe.FindStringSubmatch(c.Text)
					if sub == nil {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], sub[1])
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want comments found in fixtures")
	}

	// AllPackages: fixture paths don't match the production package
	// filters (they live under a synthetic module path).
	diags := Run(m, pkgAnalyzers, modAnalyzers, Options{AllPackages: true})

	matched := map[key][]bool{}
	for k, ws := range wants {
		matched[k] = make([]bool, len(ws))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		ok := false
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched[k][i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for i, w := range ws {
			if !matched[k][i] {
				t.Errorf("%s:%d: want %q matched no diagnostic", k.file, k.line, w)
			}
		}
	}
}

// TestSuppressionDirective double-checks the waiver plumbing: the
// determfix map-range loop carrying //slpmt:determinism-ok must not be
// reported (TestFixtures would flag it as unexpected, but this pins the
// reason down if the directive regex regresses).
func TestSuppressionDirective(t *testing.T) {
	dir, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(dir, "./determfix")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(m, []*Analyzer{Determinism}, nil, Options{AllPackages: true})
	for _, d := range diags {
		if strings.Contains(d.Message, "range over map") && d.Pos.Line > 40 {
			t.Errorf("suppressed map range still reported: %s", d)
		}
	}
}

// TestRealTreeClean runs the full suite — including the compiler
// escape cross-check — over the actual module and requires zero
// findings. This is the dogfooding gate: any new nondeterminism,
// hot-path allocation, or unplumbed trace kind fails the build here
// and in `make vet`.
func TestRealTreeClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags := Run(m, pkgAnalyzers, modAnalyzers, Options{})
	esc, err := CheckEscapes(m)
	if err != nil {
		t.Fatalf("escape check: %v", err)
	}
	diags = append(diags, esc...)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d findings on the real tree; fix them or waive with //slpmt:<analyzer>-ok <reason>", len(diags))
	}
}

// TestLoadTypeIdentity pins the property the trace-coverage pass relies
// on: a module package importing another module package resolves to the
// same *types.Package the loader source-checked, not a shadow copy.
func TestLoadTypeIdentity(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	tracePkg := m.LookupSuffix("internal/trace")
	if tracePkg == nil {
		t.Fatal("internal/trace not loaded as an in-module dependency")
	}
	eng := m.LookupSuffix("internal/engine")
	if eng == nil {
		t.Fatal("internal/engine not loaded")
	}
	for _, imp := range eng.Types.Imports() {
		if imp.Path() == tracePkg.Path {
			if imp != tracePkg.Types {
				t.Error("engine imports a shadow trace package; cross-package type identity is broken")
			}
			return
		}
	}
	t.Error("engine does not import internal/trace?")
}

// TestDiagnosticString keeps the rendered form stable (CI log format).
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	got := d.String()
	want := fmt.Sprintf("%s: [%s] %s", "x.go:3:7", "determinism", "boom")
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}
