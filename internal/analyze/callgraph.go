package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the analyzer suite: a
// module-wide callgraph over the source-checked packages. Per-function
// effect summaries (effects.go) hang off its nodes, and the chargeflow
// and obsonly analyzers answer reachability questions against it — so
// it is built once per Module (Module.Effects) and shared.
//
// Resolution rules:
//   - Static calls (package functions, methods on concrete receivers)
//     resolve through go/types object identity, which holds module-wide
//     because the loader source-checks every module package against the
//     same FileSet.
//   - Calls through an interface method expand to every module-declared
//     concrete type whose method set implements the interface — the
//     sound over-approximation that makes stream.Consumer.Consume and
//     trace.Sink edges visible without whole-program pointer analysis.
//   - Function literals are attributed to their enclosing declaration:
//     a closure's calls and writes count as its creator's (the closure
//     executes on the creator's behalf or escapes through it).
//   - Calls to plain func-typed values do not produce edges; their
//     bodies, if module closures, were already attributed to the
//     function that built them.
//   - Out-of-module callees (stdlib) produce no edges: they cannot name
//     simulator types, so they carry no simulator effects.

// CallSite is one resolved call edge.
type CallSite struct {
	Callee  *types.Func
	Pos     token.Pos
	Dynamic bool // resolved through interface dispatch
}

// FuncInfo is one module function: its declaration and outgoing edges.
type FuncInfo struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Calls []CallSite
}

// Callgraph holds every module-declared function and its call edges.
type Callgraph struct {
	// Funcs maps each module function object to its node.
	Funcs map[*types.Func]*FuncInfo
	// moduleTypes are the named (non-interface) types declared anywhere
	// in the module, for interface-dispatch expansion.
	moduleTypes []*types.Named
	// rev maps callee -> callers, for reverse reachability.
	rev map[*types.Func][]*types.Func
}

// buildCallgraph collects declarations, module types, and call edges.
func buildCallgraph(m *Module) *Callgraph {
	g := &Callgraph{Funcs: map[*types.Func]*FuncInfo{}, rev: map[*types.Func][]*types.Func{}}

	for _, pkg := range m.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
				g.moduleTypes = append(g.moduleTypes, named)
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Funcs[obj] = &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
			}
		}
	}

	for _, fi := range g.Funcs {
		g.collectCalls(fi)
	}
	for caller, fi := range g.Funcs {
		for _, cs := range fi.Calls {
			g.rev[cs.Callee] = append(g.rev[cs.Callee], caller)
		}
	}
	return g
}

// collectCalls walks one declaration body (closures included) and
// resolves every call expression to zero or more edges.
func (g *Callgraph) collectCalls(fi *FuncInfo) {
	info := fi.Pkg.Info
	seen := map[*types.Func]bool{}
	add := func(callee *types.Func, pos token.Pos, dyn bool) {
		if callee == nil || seen[callee] {
			return
		}
		seen[callee] = true
		fi.Calls = append(fi.Calls, CallSite{Callee: callee, Pos: pos, Dynamic: dyn})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := staticCallee(info, call)
		if callee == nil {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
			// Interface dispatch: expand to module implementations.
			for _, impl := range g.implementations(recv.Type(), callee.Name()) {
				add(impl, call.Pos(), true)
			}
			return true
		}
		add(callee, call.Pos(), false)
		return true
	})
	// Edges in deterministic order (Inspect order is already stable,
	// but interface expansion iterates moduleTypes — sort by position
	// then name so downstream reports never depend on build order).
	sort.SliceStable(fi.Calls, func(i, j int) bool {
		if fi.Calls[i].Pos != fi.Calls[j].Pos {
			return fi.Calls[i].Pos < fi.Calls[j].Pos
		}
		return fi.Calls[i].Callee.FullName() < fi.Calls[j].Callee.FullName()
	})
}

// implementations returns the module-declared methods named name on
// concrete module types whose pointer method set implements iface.
func (g *Callgraph) implementations(ifaceType types.Type, name string) []*types.Func {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok || iface.Empty() {
		return nil
	}
	var out []*types.Func
	for _, named := range g.moduleTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
		if m, ok := obj.(*types.Func); ok && g.Funcs[m] != nil {
			out = append(out, m)
		}
	}
	return out
}

// staticCallee resolves a call expression's callee object, or nil for
// conversions, builtins, and calls of plain func values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ReachableFrom returns every module function reachable from the roots
// (roots included), plus a predecessor map for rendering call chains in
// diagnostics.
func (g *Callgraph) ReachableFrom(roots []*types.Func) (map[*types.Func]bool, map[*types.Func]*types.Func) {
	reached := map[*types.Func]bool{}
	pred := map[*types.Func]*types.Func{}
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if g.Funcs[r] != nil && !reached[r] {
			reached[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, cs := range g.Funcs[f].Calls {
			if g.Funcs[cs.Callee] == nil || reached[cs.Callee] {
				continue
			}
			reached[cs.Callee] = true
			pred[cs.Callee] = f
			queue = append(queue, cs.Callee)
		}
	}
	return reached, pred
}

// ReachesInto returns every module function from which at least one
// sink is reachable (sinks included) — reverse reachability over the
// call edges.
func (g *Callgraph) ReachesInto(sinks map[*types.Func]bool) map[*types.Func]bool {
	reached := map[*types.Func]bool{}
	var queue []*types.Func
	for s := range sinks { //slpmt:determinism-ok: BFS visit order does not affect the resulting set
		if reached[s] {
			continue
		}
		reached[s] = true
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, caller := range g.rev[f] {
			if !reached[caller] {
				reached[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return reached
}

// Chain renders the call chain root -> ... -> f recorded by
// ReachableFrom's predecessor map, in "a → b → c" display form,
// truncated in the middle when long.
func Chain(pred map[*types.Func]*types.Func, f *types.Func) string {
	var names []string
	for cur := f; cur != nil; cur = pred[cur] {
		names = append(names, funcDisplay(cur))
		if len(names) > 16 {
			break
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > 5 {
		names = append(names[:2], append([]string{"…"}, names[len(names)-2:]...)...)
	}
	out := names[0]
	for _, n := range names[1:] {
		out += " → " + n
	}
	return out
}

// funcDisplay renders a function as pkg.Name or pkg.(*Recv).Name with
// the package's base name only.
func funcDisplay(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		return pkgBase(f.Pkg().Path()) + "." + name
	}
	return name
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
