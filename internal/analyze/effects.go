package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Effect summaries: per-function records of what a function does to
// simulation state, computed once over the callgraph and shared by the
// chargeflow and obsonly analyzers.
//
// "Simulation state" is any named type declared in the packages whose
// mutation changes a run's timing or durable image — machine, engine,
// pmem, cache, txheap. A write summary entry is a syntactic store
// (assignment, compound assignment, ++/--) whose target resolves to
//
//   - a field of a simulation-state type, reached through at least one
//     pointer (writes into value-typed locals are copies and stay
//     function-local, so they carry no effect), or an element of a
//     map/slice-typed field of such a type (reference semantics), or
//   - a package-level variable of any module package (global state).
//
// The summaries over-approximate in the usual static ways (no alias
// analysis: a sim-state pointer stashed in an interface and written
// elsewhere is invisible; a closure's writes charge its creator) and
// the analyzers built on them compensate by checking reachability from
// narrow, explicit entry-point sets.

// simStatePkgSuffixes are the packages whose types constitute
// simulation state for the observation-only contract.
var simStatePkgSuffixes = []string{
	"internal/machine",
	"internal/engine",
	"internal/pmem",
	"internal/cache",
	"internal/txheap",
}

func isSimStatePkg(path string) bool {
	for _, s := range simStatePkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// FieldWrite is one store into a field (or a field's map/slice
// element) of a simulation-state type.
type FieldWrite struct {
	Pos     token.Pos
	Field   *types.Var // field object; nil for whole-struct stores (*p = v)
	Desc    string     // "machine.Core.Clk"
	Element bool       // store into a map/slice element of the field
}

// GlobalWrite is one store to a module package-level variable.
type GlobalWrite struct {
	Pos  token.Pos
	Var  *types.Var
	Desc string // "trace.kindNames"
}

// FuncEffects is one function's effect summary.
type FuncEffects struct {
	// SimWrites are direct stores into simulation-state types.
	SimWrites []FieldWrite
	// GlobalWrites are direct stores to module package-level variables.
	GlobalWrites []GlobalWrite
	// TraceEmits counts Trace/Emit call sites (observability plumbing,
	// exempt from the purity rules — the tracer owns its own state).
	TraceEmits int
	// CauseRefs are the profile.Cause constants the body references.
	CauseRefs []*types.Const
	// Mutates is the transitive closure: this function or anything it
	// can call writes simulation state.
	Mutates bool
}

// Effects is the shared interprocedural analysis state: the callgraph
// plus every function's summary.
type Effects struct {
	Graph *Callgraph
	Funcs map[*types.Func]*FuncEffects
}

// Effects returns the module's callgraph and effect summaries, building
// them on first use (both module analyzers share one build, also under
// the parallel driver).
func (m *Module) Effects() *Effects {
	m.effOnce.Do(func() { m.effects = buildEffects(m) })
	return m.effects
}

func buildEffects(m *Module) *Effects {
	e := &Effects{Graph: buildCallgraph(m), Funcs: map[*types.Func]*FuncEffects{}}
	for obj, fi := range e.Graph.Funcs { //slpmt:determinism-ok: summaries land in a map keyed by object; build order is irrelevant
		e.Funcs[obj] = summarize(fi)
	}
	e.propagateMutates()
	return e
}

// summarize walks one function body (closures included — their effects
// charge the enclosing declaration) and records its direct effects.
func summarize(fi *FuncInfo) *FuncEffects {
	fe := &FuncEffects{}
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := only creates locals
			}
			for _, lhs := range n.Lhs {
				recordWrite(fe, fi, info, lhs)
			}
		case *ast.IncDecStmt:
			recordWrite(fe, fi, info, n.X)
		case *ast.CallExpr:
			if name := calleeName(n); name == "Trace" || name == "Emit" {
				fe.TraceEmits++
			}
		case *ast.Ident:
			if c, ok := info.Uses[n].(*types.Const); ok && isCauseConst(c) {
				fe.CauseRefs = append(fe.CauseRefs, c)
			}
		}
		return true
	})
	return fe
}

// isCauseConst reports whether c is a constant of a named type Cause
// declared in an internal/profile package.
func isCauseConst(c *types.Const) bool {
	named, ok := c.Type().(*types.Named)
	if !ok || named.Obj().Name() != "Cause" || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "internal/profile" || strings.HasSuffix(p, "/internal/profile")
}

// recordWrite classifies one store target and records it if it hits
// simulation state or a module global.
func recordWrite(fe *FuncEffects, fi *FuncInfo, info *types.Info, lhs ast.Expr) {
	lhs = unparen(lhs)
	element := false
	// Unwrap element stores: m[k] = v, s[i] = v. Maps and slices have
	// reference semantics, so an element store through a field or
	// global mutates the shared structure no matter how the header was
	// copied around.
	for {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			lhs = unparen(ix.X)
			element = true
			continue
		}
		break
	}
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if v, ok := info.Uses[t].(*types.Var); ok && isModuleGlobal(fi, v) {
			fe.GlobalWrites = append(fe.GlobalWrites, GlobalWrite{
				Pos: t.Pos(), Var: v, Desc: pkgBase(v.Pkg().Path()) + "." + v.Name(),
			})
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[t]
		if !ok {
			// Qualified identifier pkg.Var.
			if v, ok := info.Uses[t.Sel].(*types.Var); ok && isModuleGlobal(fi, v) {
				fe.GlobalWrites = append(fe.GlobalWrites, GlobalWrite{
					Pos: t.Pos(), Var: v, Desc: pkgBase(v.Pkg().Path()) + "." + v.Name(),
				})
			}
			return
		}
		if sel.Kind() != types.FieldVal {
			return
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok {
			return
		}
		named := namedOf(sel.Recv())
		if named == nil || named.Obj().Pkg() == nil || !isSimStatePkg(named.Obj().Pkg().Path()) {
			return
		}
		if !element && !writesThroughPointer(info, t) {
			return // store into a value-typed local copy: function-local
		}
		fe.SimWrites = append(fe.SimWrites, FieldWrite{
			Pos:   t.Pos(),
			Field: field,
			Desc:  pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + field.Name(),

			Element: element,
		})
	case *ast.StarExpr:
		// *p = v: whole-struct store through a pointer.
		pt, ok := info.TypeOf(t.X).(*types.Pointer)
		if !ok {
			return
		}
		named := namedOf(pt.Elem())
		if named == nil || named.Obj().Pkg() == nil || !isSimStatePkg(named.Obj().Pkg().Path()) {
			return
		}
		fe.SimWrites = append(fe.SimWrites, FieldWrite{
			Pos:  t.Pos(),
			Desc: "*" + pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name(),
		})
	}
}

// isModuleGlobal reports whether v is a package-level variable of a
// module package.
func isModuleGlobal(fi *FuncInfo, v *types.Var) bool {
	if v.Pkg() == nil || v.IsField() {
		return false
	}
	mpkg := fi.Pkg
	// Module-wide: any loaded package's scope.
	for _, p := range modulePackagesOf(fi) {
		if v.Pkg() == p.Types && v.Parent() == p.Types.Scope() {
			return true
		}
	}
	_ = mpkg
	return false
}

// modulePackagesOf returns every loaded package of the function's
// module (the FuncInfo's package carries no back-pointer, so resolve
// through the shared callgraph build: all packages were registered on
// the module the pass runs over). The indirection exists for fixture
// modules, whose package set differs from the real tree's.
func modulePackagesOf(fi *FuncInfo) []*Package {
	return fi.Pkg.module.Packages
}

// writesThroughPointer reports whether the selector chain rooted at
// base reaches its field through at least one pointer (or a global
// variable): x.f with x *T, c.sh.vol with c *Core, pkgvar.f. A chain
// rooted at a value-typed local is a copy, and stores into it stay
// local.
func writesThroughPointer(info *types.Info, sel *ast.SelectorExpr) bool {
	for {
		if _, ok := info.TypeOf(sel.X).(*types.Pointer); ok {
			return true
		}
		switch x := unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			sel = x
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return true // package-level variable root
				}
			}
			return false
		case *ast.IndexExpr:
			return true // element of a slice/map: reference semantics
		case *ast.StarExpr:
			return true
		case *ast.CallExpr:
			return true // returned values: assume shared
		default:
			return false
		}
	}
}

// namedOf strips pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// propagateMutates closes Mutates over the call edges: a function
// mutates if it writes simulation state directly or can reach a module
// function that does. Globals do not count here — the obsonly pass
// reports them separately (host-side state is a different contract
// than simulation state).
func (e *Effects) propagateMutates() {
	for f, fe := range e.Funcs { //slpmt:determinism-ok: fixed-point seeding; iteration order does not change the closure
		_ = f
		fe.Mutates = len(fe.SimWrites) > 0
	}
	for changed := true; changed; {
		changed = false
		for f, fe := range e.Funcs { //slpmt:determinism-ok: monotone fixed point; order affects only iteration count
			if fe.Mutates {
				continue
			}
			for _, cs := range e.Graph.Funcs[f].Calls {
				if ce := e.Funcs[cs.Callee]; ce != nil && ce.Mutates {
					fe.Mutates = true
					changed = true
					break
				}
			}
		}
	}
}
