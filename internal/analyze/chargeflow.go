package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Chargeflow statically promotes the §9 conservation contract — "every
// clock advance flows through Core.charge with a cause" — from a
// dynamic invariant (Conserved() on a handful of golden configs) to a
// compile-time one, in three rules over the shared effect summaries:
//
//  1. Choke point: any direct store to machine.Core.Clk outside
//     Core.charge/Core.chargeProfile, or to Core.cause outside
//     Core.SetCause, is an error. With the stores funneled, Conserved()
//     holds by construction for any code the analyzer accepts.
//  2. Cause reachability: every exported profile.Cause constant must be
//     referenced by at least one function from which a charge sink
//     (Core.charge, Core.chargeProfile, Core.SetCause, Profile.Add) is
//     reachable. A cause no charge path can ever name is either dead or
//     — worse — a miswired attribution that silently lands in another
//     bucket.
//  3. Restore discipline: every captured attribution context
//     (prev := c.SetCause(x)) must be restored (c.SetCause(prev),
//     directly or deferred) on all paths out of the function, checked
//     by a structural CFG walk. A leaked context misattributes every
//     cycle charged after the caller returns.
var Chargeflow = &ModuleAnalyzer{
	Name: "chargeflow",
	Doc:  "Core.charge is the verified choke point for clock advances; causes must be charge-reachable and SetCause contexts restored on all paths",
	Run:  runChargeflow,
}

func runChargeflow(pass *ModulePass) {
	m := pass.Module
	machinePkg := m.LookupSuffix("internal/machine")
	profPkg := m.LookupSuffix("internal/profile")
	if machinePkg == nil || profPkg == nil {
		return // nothing to enforce in this module
	}
	clkField, causeField := coreChargeFields(machinePkg)
	eff := m.Effects()

	// Rule 1: the write choke point.
	for fobj, fe := range eff.Funcs { //slpmt:determinism-ok: diagnostics are position-sorted by the driver
		for _, w := range fe.SimWrites {
			switch {
			case w.Field != nil && w.Field == clkField:
				if !isCoreMethod(fobj, "charge", "chargeProfile") {
					pass.Reportf(w.Pos, "direct write to machine.Core.Clk outside Core.charge/chargeProfile breaks the conservation choke point (§9): route the advance through c.charge(cause, n)")
				}
			case w.Field != nil && w.Field == causeField:
				if !isCoreMethod(fobj, "SetCause") {
					pass.Reportf(w.Pos, "direct write to machine.Core.cause outside Core.SetCause bypasses attribution bookkeeping: use prev := c.SetCause(...) and c.SetCause(prev)")
				}
			}
		}
	}

	// Rule 2: cause reachability. Collect the charge sinks, the set of
	// functions that can reach one, and the Cause constants those
	// functions reference; any exported Cause outside that union can
	// never be charged.
	sinks := map[*types.Func]bool{}
	for fobj := range eff.Funcs { //slpmt:determinism-ok: populates a set; order-free
		if isChargeSink(fobj) {
			sinks[fobj] = true
		}
	}
	reaches := eff.Graph.ReachesInto(sinks)
	used := map[*types.Const]bool{}
	for fobj, fe := range eff.Funcs { //slpmt:determinism-ok: populates a set; order-free
		if !reaches[fobj] {
			continue
		}
		for _, c := range fe.CauseRefs {
			used[c] = true
		}
	}
	scope := profPkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || !isCauseConst(c) || c.Name() == "CauseNone" {
			continue
		}
		if !used[c] {
			pass.Reportf(c.Pos(), "profile.Cause %s is reachable from no charge or SetCause site: wire it into a charge path or delete it (an unchargeable cause can never appear in a conserved breakdown)", c.Name())
		}
	}

	// Rule 3: SetCause restore discipline, per function.
	for fobj, fi := range eff.Graph.Funcs { //slpmt:determinism-ok: diagnostics are position-sorted by the driver
		if fobj.Name() == "SetCause" {
			continue // the definition itself
		}
		checkRestores(pass, fi.Pkg.Info, fi.Decl.Body)
	}
}

// coreChargeFields resolves the Clk and cause field objects of
// machine.Core (nil if the module's Core lacks them).
func coreChargeFields(machinePkg *Package) (clk, cause *types.Var) {
	tn, ok := machinePkg.Types.Scope().Lookup("Core").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i := 0; i < st.NumFields(); i++ {
		switch f := st.Field(i); f.Name() {
		case "Clk":
			clk = f
		case "cause":
			cause = f
		}
	}
	return clk, cause
}

// isCoreMethod reports whether f is a method with receiver type named
// Core (in any package — the caller already matched the field object,
// which pins the package) and one of the given names.
func isCoreMethod(f *types.Func, names ...string) bool {
	if recvTypeNameOf(f) != "Core" {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isChargeSink reports whether f is one of the functions that
// legitimately consume a profile.Cause: the Core charge/attribution
// methods and the profiler's own accumulator.
func isChargeSink(f *types.Func) bool {
	switch f.Name() {
	case "charge", "chargeProfile", "SetCause":
		return recvTypeNameOf(f) == "Core"
	case "Add":
		return recvTypeNameOf(f) == "Profile"
	}
	return false
}

// recvTypeNameOf returns the bare name of f's receiver type, or "".
func recvTypeNameOf(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return ""
}

// --- Rule 3: the restore-discipline walker -------------------------------
//
// A structural dataflow over the statement tree. State is the set of
// pending saves (local variables holding a prior cause captured by
// prev := c.SetCause(x)) plus the subset covered by a deferred restore.
// Branches are walked on cloned state and merged by union (a save
// restored on only some paths stays pending — conservative); loop
// bodies must leave every save they open; returns and the function's
// fall-off end require pending ⊆ deferred. Paths that provably
// terminate in panic are exempt. Function literals are independent
// scopes (except the `defer func() { c.SetCause(prev) }()` idiom,
// which registers prev as deferred in the enclosing scope).

type restoreState struct {
	pending  map[*types.Var]token.Pos // save var -> SetCause save site
	deferred map[*types.Var]bool
}

func newRestoreState() *restoreState {
	return &restoreState{pending: map[*types.Var]token.Pos{}, deferred: map[*types.Var]bool{}}
}

func (st *restoreState) clone() *restoreState {
	c := newRestoreState()
	for v, p := range st.pending { //slpmt:determinism-ok: map copy; order-free
		c.pending[v] = p
	}
	for v := range st.deferred { //slpmt:determinism-ok: map copy; order-free
		c.deferred[v] = true
	}
	return c
}

func (st *restoreState) merge(o *restoreState) {
	for v, p := range o.pending { //slpmt:determinism-ok: set union; order-free
		if _, ok := st.pending[v]; !ok {
			st.pending[v] = p
		}
	}
	for v := range o.deferred { //slpmt:determinism-ok: set union; order-free
		st.deferred[v] = true
	}
}

// guarded reports whether a discarded-result SetCause is acceptable
// here: some saved context is pending or deferred, so the re-pointing
// is a mid-stream refinement inside a region that will be restored.
func (st *restoreState) guarded() bool {
	return len(st.pending) > 0 || len(st.deferred) > 0
}

type restoreWalker struct {
	pass     *ModulePass
	info     *types.Info
	reported map[token.Pos]bool // save sites already reported (dedup across paths)
}

func checkRestores(pass *ModulePass, info *types.Info, body *ast.BlockStmt) {
	if body == nil || !containsSetCause(body) {
		return
	}
	w := &restoreWalker{pass: pass, info: info, reported: map[token.Pos]bool{}}
	st := newRestoreState()
	terminated := w.block(body, st)
	if !terminated {
		w.checkExit(st, body.End())
	}
}

// containsSetCause cheaply gates the walk.
func containsSetCause(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == "SetCause" {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkExit reports every pending, non-deferred save at a function exit.
func (w *restoreWalker) checkExit(st *restoreState, at token.Pos) {
	for v, savePos := range st.pending { //slpmt:determinism-ok: dedup map + driver position sort make output order-free
		if st.deferred[v] || w.reported[savePos] {
			continue
		}
		w.reported[savePos] = true
		w.pass.Reportf(savePos, "attribution context saved into %s is not restored on all paths: a return can leave the core charging to the wrong cause — restore with c.SetCause(%s) or defer it", v.Name(), v.Name())
	}
}

// block walks a statement list; returns true if every path through it
// terminates (return or panic).
func (w *restoreWalker) block(b *ast.BlockStmt, st *restoreState) bool {
	for _, s := range b.List {
		if w.stmt(s, st) {
			return true
		}
	}
	return false
}

// setCauseCall returns the CallExpr if e is a (possibly parenthesized)
// call to a method named SetCause.
func setCauseCall(e ast.Expr) *ast.CallExpr {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || calleeName(call) != "SetCause" {
		return nil
	}
	return call
}

// argVar resolves a call's single argument to a variable object, nil
// otherwise.
func (w *restoreWalker) argVar(call *ast.CallExpr) *types.Var {
	if len(call.Args) != 1 {
		return nil
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := w.info.Uses[id].(*types.Var)
	return v
}

// stmt walks one statement, mutating st; returns true if the statement
// terminates the path (return, panic, break/continue/goto out of the
// straight line).
func (w *restoreWalker) stmt(s ast.Stmt, st *restoreState) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// Save form: v := c.SetCause(x) / v = c.SetCause(x).
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call := setCauseCall(s.Rhs[0]); call != nil {
				// The argument may itself restore a pending save
				// (x := c.SetCause(prev) both restores prev and opens x).
				if av := w.argVar(call); av != nil {
					delete(st.pending, av)
					delete(st.deferred, av)
				}
				if id, ok := unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					var v *types.Var
					if s.Tok == token.DEFINE {
						v, _ = w.info.Defs[id].(*types.Var)
					} else {
						v, _ = w.info.Uses[id].(*types.Var)
					}
					if v != nil {
						if prevPos, open := st.pending[v]; open && !st.deferred[v] && !w.reported[prevPos] {
							w.reported[prevPos] = true
							w.pass.Reportf(s.Pos(), "re-saving into %s overwrites an attribution context that was never restored (saved at an earlier SetCause): restore it first", v.Name())
						}
						st.pending[v] = call.Pos()
					}
					return false
				}
				// Result assigned somewhere unusual (field, index):
				// treat as discarded.
				if !st.guarded() {
					w.reportNaked(call)
				}
				return false
			}
		}
		w.scanExprs(st, s.Rhs...)
		return false
	case *ast.ExprStmt:
		if call := setCauseCall(s.X); call != nil {
			if av := w.argVar(call); av != nil {
				if _, open := st.pending[av]; open {
					delete(st.pending, av)
					delete(st.deferred, av)
					return false
				}
			}
			// Discarded result with a non-pending argument.
			if !st.guarded() {
				w.reportNaked(call)
			}
			return false
		}
		if isPanicCall(s.X) {
			return true
		}
		w.scanExprs(st, s.X)
		return false
	case *ast.DeferStmt:
		if calleeName(s.Call) == "SetCause" {
			if av := w.argVar(s.Call); av != nil {
				st.deferred[av] = true
			}
			return false
		}
		// defer func() { ... c.SetCause(prev) ... }() registers every
		// pending var the closure restores.
		if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && calleeName(call) == "SetCause" {
					if av := w.argVar(call); av != nil {
						st.deferred[av] = true
					}
				}
				return true
			})
		}
		return false
	case *ast.ReturnStmt:
		w.scanExprs(st, s.Results...)
		w.checkExit(st, s.Pos())
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExprs(st, s.Cond)
		thenSt := st.clone()
		thenTerm := w.block(s.Body, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			*st = *elseSt
		case elseTerm:
			*st = *thenSt
		default:
			*st = *thenSt
			st.merge(elseSt)
		}
		return false
	case *ast.BlockStmt:
		return w.block(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExprs(st, s.Cond)
		w.loopBody(s.Body, st)
		return false
	case *ast.RangeStmt:
		w.scanExprs(st, s.X)
		w.loopBody(s.Body, st)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.branchStmt(s, st)
		return false
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the straight line; the surrounding
		// loop/switch merge keeps the entry state alive.
		return true
	case *ast.GoStmt:
		w.scanExprs(st, s.Call)
		return false
	case *ast.DeclStmt:
		return false
	default:
		return false
	}
}

// loopBody walks a loop body on cloned state and reports any save the
// body opens but does not close: the next iteration (or the loop exit)
// would clobber or leak it.
func (w *restoreWalker) loopBody(body *ast.BlockStmt, st *restoreState) {
	inner := st.clone()
	terminated := w.block(body, inner)
	if !terminated {
		for v, savePos := range inner.pending { //slpmt:determinism-ok: dedup map + driver position sort make output order-free
			if _, atEntry := st.pending[v]; atEntry || inner.deferred[v] || w.reported[savePos] {
				continue
			}
			w.reported[savePos] = true
			w.pass.Reportf(savePos, "attribution context saved into %s does not survive the loop body: restore it before the next iteration or the loop exit", v.Name())
		}
	}
	st.merge(inner)
}

// branchStmt walks each case clause of a switch/select on cloned state
// and merges the results by union.
func (w *restoreWalker) branchStmt(s ast.Stmt, st *restoreState) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.scanExprs(st, s.Tag)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	if body == nil {
		return
	}
	merged := st.clone()
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			stmts = c.Body
		case *ast.CommClause:
			stmts = c.Body
		}
		caseSt := st.clone()
		terminated := false
		for _, cs := range stmts {
			if w.stmt(cs, caseSt) {
				terminated = true
				break
			}
		}
		if !terminated {
			merged.merge(caseSt)
		}
	}
	*st = *merged
}

// scanExprs finds SetCause calls in expression position (conditions,
// call arguments) and function literals. A SetCause whose result feeds
// an arbitrary expression is treated as discarded; literals are
// independent restore scopes.
func (w *restoreWalker) scanExprs(st *restoreState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				checkRestores(w.pass, w.info, n.Body)
				return false
			case *ast.CallExpr:
				if calleeName(n) == "SetCause" {
					if av := w.argVar(n); av != nil {
						if _, open := st.pending[av]; open {
							delete(st.pending, av)
							delete(st.deferred, av)
							return true
						}
					}
					if !st.guarded() {
						w.reportNaked(n)
					}
				}
			}
			return true
		})
	}
}

func (w *restoreWalker) reportNaked(call *ast.CallExpr) {
	if w.reported[call.Pos()] {
		return
	}
	w.reported[call.Pos()] = true
	w.pass.Reportf(call.Pos(), "SetCause discards the prior attribution context with no saved context pending: capture prev := c.SetCause(...) and restore it on every path")
}

func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
