package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// simCorePackages are the import-path suffixes whose code feeds the
// simulated clock, the counters, or the rendered results — where any
// nondeterminism silently corrupts every figure.
var simCorePackages = []string{
	"internal/engine",
	"internal/machine",
	"internal/cache",
	"internal/mem",
	"internal/pmem",
	"internal/txheap",
	"internal/bench",
	"internal/experiments",
}

func inSimCore(path string) bool {
	for _, s := range simCorePackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// wallClockFuncs are the package-time functions that read the host
// clock. time.Duration arithmetic and the unit constants are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandAllowed are the math/rand package-level functions that do
// NOT touch the shared global source: constructors for explicitly
// seeded generators, which are deterministic by construction.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism forbids the constructs that make a simulation run depend
// on anything but its inputs: host-clock reads, the globally seeded
// math/rand source, goroutine spawns and selects (scheduling order),
// and iteration over maps (randomized order) — the last waivable with
// //slpmt:determinism-ok when the loop's effect is order-independent
// or the collected keys are sorted before use.
var Determinism = &Analyzer{
	Name:      "determinism",
	Doc:       "forbid wall-clock reads, global math/rand, goroutine scheduling, and unsorted map iteration in simulator-core packages",
	AppliesTo: inSimCore,
	Run:       runDeterminism,
}

func runDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkPkgFuncUse(p, n)
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "go statement: goroutine scheduling is not deterministic; keep simulator work single-threaded or waive with //slpmt:determinism-ok and a sorting/merging argument")
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select statement: case choice depends on goroutine scheduling")
			case *ast.RangeStmt:
				if t := p.Pkg.Info.Types[n.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						p.Reportf(n.Pos(), "range over map: iteration order is randomized; sort the keys first or waive with //slpmt:determinism-ok if the loop is order-independent")
					}
				}
			}
			return true
		})
	}
}

// checkPkgFuncUse flags selector references to wall-clock time
// functions and to math/rand's global-source functions.
func checkPkgFuncUse(p *Pass, sel *ast.SelectorExpr) {
	obj := p.Pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on *rand.Rand or time.Duration) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			p.Reportf(sel.Pos(), "time.%s reads the host clock; simulated time must come from the machine's cycle counters", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			p.Reportf(sel.Pos(), "%s.%s uses the global random source; construct a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
		}
	}
}
