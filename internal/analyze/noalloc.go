package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// Noalloc rejects allocation sites inside functions annotated
// //slpmt:noalloc (the engine store path, trace.Emit, the WPQ enqueue
// path — the per-operation hot loops whose zero-alloc property PR 1's
// benchmarks enforce dynamically). The static pass catches the
// introduction of make/new, growth-capable append, closures, slice/map
// literals, and implicit interface boxing; the -gcflags=-m escape
// cross-check (escape.go) confirms what the compiler actually decided.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject allocation sites in //slpmt:noalloc-annotated functions",
	Run:  runNoalloc,
}

// noallocAnnotated reports whether the function declaration carries the
// //slpmt:noalloc annotation in its doc comment.
func noallocAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//slpmt:noalloc" || strings.HasPrefix(c.Text, "//slpmt:noalloc ") {
			return true
		}
	}
	return false
}

func runNoalloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !noallocAnnotated(fd) {
				continue
			}
			checkNoallocBody(p, fd)
		}
	}
}

func checkNoallocBody(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "%s is //slpmt:noalloc but contains a function literal (closure capture allocates)", fd.Name.Name)
			return false // the literal's own body runs elsewhere
		case *ast.CompositeLit:
			if t := info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					p.Reportf(n.Pos(), "%s is //slpmt:noalloc but builds a %s literal", fd.Name.Name, t.Underlying())
				}
			}
		case *ast.CallExpr:
			checkNoallocCall(p, fd, n)
		}
		return true
	})
}

func checkNoallocCall(p *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := p.Pkg.Info
	// Builtins that allocate or may grow their operand.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				p.Reportf(call.Pos(), "%s is //slpmt:noalloc but calls %s", fd.Name.Name, b.Name())
			case "append":
				p.Reportf(call.Pos(), "%s is //slpmt:noalloc but calls append (growth reallocates)", fd.Name.Name)
			}
			return
		}
	}
	// Conversions to an interface type box the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.Types[call.Args[0]].Type; at != nil && !types.IsInterface(at) {
				p.Reportf(call.Pos(), "%s is //slpmt:noalloc but converts %s to interface %s (boxing allocates)", fd.Name.Name, at, tv.Type)
			}
		}
		return
	}
	// Implicit boxing at call boundaries: a concrete argument passed for
	// an interface parameter (fmt-style APIs are the classic offender).
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && call.Ellipsis.IsValid() && i == len(call.Args)-1:
			pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		p.Reportf(arg.Pos(), "%s is //slpmt:noalloc but passes %s for interface parameter %s (boxing allocates)", fd.Name.Name, at, pt)
	}
}
