package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

// Module is a loaded, type-checked module: every package matched by the
// load patterns (plus their in-module dependencies), parsed from source
// with comments, over one shared FileSet. Out-of-module dependencies
// are satisfied from the compiler's export data, so loading needs no
// third-party machinery — just the go tool that built the tree.
type Module struct {
	Dir  string // module root directory
	Path string // module path (go.mod)
	Fset *token.FileSet

	Packages []*Package
	byPath   map[string]*Package

	// suppress maps file -> line -> analyzer names waived on that line
	// by //slpmt:<name>-ok directives.
	suppress map[string]map[int]map[string]bool
	// waivers is every directive in source order, for the audit pass.
	waivers []Waiver

	// Shared interprocedural state (callgraph + effect summaries),
	// built on first use and safe under the parallel driver.
	effOnce sync.Once
	effects *Effects
}

// Package is one type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	module *Module
}

// Waiver is one //slpmt:<name>-ok directive as written in source. The
// accepted grammar is
//
//	//slpmt:<analyzer>-ok: <justification>
//
// The colon-less legacy form still suppresses (so a grammar migration
// can never silently re-arm old findings) but the waiver-audit pass
// rejects it, as it does an empty justification.
type Waiver struct {
	Name   string // analyzer name
	Colon  bool   // written in the "-ok:" form
	Reason string // trailing justification, trimmed
	Pos    token.Pos
}

// Waivers returns every suppression directive in the module, in load
// order (per-file source order).
func (m *Module) Waivers() []Waiver { return m.waivers }

// Lookup returns the loaded package with the exact import path.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// LookupSuffix returns the loaded package whose import path ends with
// the given suffix ("internal/trace" works for the real module and the
// fixture module alike).
func (m *Module) LookupSuffix(suffix string) *Package {
	for _, p := range m.Packages {
		if p.Path == suffix || strings.HasSuffix(p.Path, "/"+suffix) {
			return p
		}
	}
	return nil
}

// suppressed reports whether a //slpmt:<name>-ok directive covers the
// position: on the same line (trailing comment) or the line above.
func (m *Module) suppressed(analyzer string, pos token.Position) bool {
	lines := m.suppress[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

var directiveRe = regexp.MustCompile(`^//slpmt:([a-z-]+)-ok(:?)(?:$|\s+(.*?)\s*$)`)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// Load runs `go list -export -deps -json patterns...` in dir and
// type-checks every main-module package from source, in dependency
// order (which `go list -deps` guarantees), against export data for
// everything else. Cross-package type identity holds module-wide:
// a module package importing another resolves to the source-checked
// *types.Package, not a shadow loaded from export data.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []listPkg
	exports := map[string]string{} // import path -> export data file
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}

	m := &Module{
		Dir:      dir,
		Fset:     token.NewFileSet(),
		byPath:   map[string]*Package{},
		suppress: map[string]map[int]map[string]bool{},
	}

	// The gc importer satisfies out-of-module imports from export data.
	gcImp := importer.ForCompiler(m.Fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	imp := &chainImporter{module: m, fallback: gcImp}

	for _, p := range pkgs {
		if p.Standard || p.Module == nil || !p.Module.Main {
			continue
		}
		if m.Path == "" {
			m.Path = p.Module.Path
		}
		if m.Dir == "" || dir == "" {
			m.Dir = p.Dir
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			full := filepath.Join(p.Dir, name)
			f, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			m.indexDirectives(full, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, m.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		pkg := &Package{Path: p.ImportPath, Dir: p.Dir, Files: files, Types: tpkg, Info: info, module: m}
		m.Packages = append(m.Packages, pkg)
		m.byPath[p.ImportPath] = pkg
	}
	if len(m.Packages) == 0 {
		return nil, fmt.Errorf("no main-module packages matched %v in %s", patterns, dir)
	}
	return m, nil
}

// indexDirectives records every //slpmt:<name>-ok comment by file/line.
func (m *Module) indexDirectives(filename string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			sub := directiveRe.FindStringSubmatch(c.Text)
			if sub == nil {
				continue
			}
			line := m.Fset.Position(c.Pos()).Line
			lines := m.suppress[filename]
			if lines == nil {
				lines = map[int]map[string]bool{}
				m.suppress[filename] = lines
			}
			if lines[line] == nil {
				lines[line] = map[string]bool{}
			}
			lines[line][sub[1]] = true
			m.waivers = append(m.waivers, Waiver{
				Name:   sub[1],
				Colon:  sub[2] == ":",
				Reason: sub[3],
				Pos:    c.Pos(),
			})
		}
	}
}

// chainImporter resolves module packages to their source-checked form
// and everything else through the export-data importer.
type chainImporter struct {
	module   *Module
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := c.module.byPath[path]; p != nil {
		return p.Types, nil
	}
	return c.fallback.Import(path)
}
