package analyze

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// FuncRange is the source extent of one //slpmt:noalloc function, used
// to attribute compiler escape-analysis output.
type FuncRange struct {
	File      string // absolute path
	Name      string
	StartLine int
	EndLine   int
}

// NoallocRanges collects the extents of every annotated function in the
// module.
func NoallocRanges(m *Module) []FuncRange {
	var out []FuncRange
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !noallocAnnotated(fd) {
					continue
				}
				start := m.Fset.Position(fd.Pos())
				end := m.Fset.Position(fd.End())
				out = append(out, FuncRange{
					File:      start.Filename,
					Name:      fd.Name.Name,
					StartLine: start.Line,
					EndLine:   end.Line,
				})
			}
		}
	}
	return out
}

// escapeLineRe matches one `file:line:col: message` compiler diagnostic.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// CheckEscapes cross-checks the static noalloc pass against the
// compiler's actual escape analysis: it rebuilds the module with
// -gcflags=-m (the build cache replays the diagnostics on unchanged
// packages, so repeated runs are cheap) and reports any value the
// compiler heap-allocates inside an annotated function's extent. This
// catches what syntax cannot — a value the analyzer thinks is fine but
// the compiler decides must escape.
func CheckEscapes(m *Module, patterns ...string) ([]Diagnostic, error) {
	ranges := NoallocRanges(m)
	if len(ranges) == 0 {
		return nil, nil
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"build", "-gcflags=-m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = m.Dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}

	var diags []Diagnostic
	for _, line := range strings.Split(out.String(), "\n") {
		sub := escapeLineRe.FindStringSubmatch(line)
		if sub == nil {
			continue
		}
		msg := sub[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := sub[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(m.Dir, file)
		}
		ln, _ := strconv.Atoi(sub[2])
		col, _ := strconv.Atoi(sub[3])
		pos := token.Position{Filename: file, Line: ln, Column: col}
		if m.suppressed("noalloc-escape", pos) {
			continue
		}
		for _, r := range ranges {
			if r.File == file && ln >= r.StartLine && ln <= r.EndLine {
				diags = append(diags, Diagnostic{
					Pos:      pos,
					Analyzer: "noalloc-escape",
					Message:  fmt.Sprintf("%s is //slpmt:noalloc but the compiler reports: %s", r.Name, msg),
				})
			}
		}
	}
	return diags, nil
}
