package analyze

import "strings"

// WaiverAudit enforces the waiver grammar: every suppression directive
// must carry a justification,
//
//	//slpmt:<analyzer>-ok: <reason>
//
// The colon-less legacy form and the colon form with an empty reason
// both still suppress their target finding (so tightening the grammar
// can never silently re-arm a waived diagnostic), but this pass fails
// the run on them — a waiver without a recorded why is a finding
// someone will re-litigate from scratch.
var WaiverAudit = &ModuleAnalyzer{
	Name: "waiver-audit",
	Doc:  "every //slpmt:<analyzer>-ok directive must justify itself: '-ok: reason'",
	Run: func(pass *ModulePass) {
		for _, w := range pass.Module.Waivers() {
			switch {
			case !w.Colon:
				pass.Reportf(w.Pos, "waiver //slpmt:%s-ok uses the legacy colon-less form: write //slpmt:%s-ok: <reason>", w.Name, w.Name)
			case strings.TrimSpace(w.Reason) == "":
				pass.Reportf(w.Pos, "waiver //slpmt:%s-ok: has no justification: say why the construct is safe", w.Name)
			}
		}
	},
}
