package analyze

import (
	"go/types"
	"strings"
)

// Obsonly statically proves the observation-only invariant: the
// tracer, profiler, report generators, and stream consumers read
// simulation state but never write it. Dynamically this is what the
// byte-identity tests check (a run with tracing on matches a run with
// tracing off); statically it becomes: no function reachable from an
// observer entry point may store into a machine/engine/pmem/cache/
// txheap type, nor mutate module package-level state (an observer that
// updates a global gives two observations of the same run different
// results).
//
// Entry points (roots):
//   - every function declared in an internal/trace, internal/trace/stream,
//     internal/profile, or internal/report package,
//   - every Consume method taking the module's trace.Event (the stream
//     consumer interface, resolved structurally so out-of-package
//     consumers are covered),
//   - every function named Summarize.
//
// Reachability runs over the shared callgraph (interface calls expanded
// to module implementations), so a mutation behind two hops of
// indirection is still caught, and the diagnostic names the chain.
// Intentional host-side state — the double-buffered sink's buffers,
// telemetry counters — is waived line-by-line with //slpmt:obsonly-ok:.
var Obsonly = &ModuleAnalyzer{
	Name: "obsonly",
	Doc:  "functions reachable from trace/profile/report/stream-consumer entry points must not mutate simulation or package-level state",
	Run:  runObsonly,
}

// observerPkgSuffixes are the packages whose every function is an
// observer entry point.
var observerPkgSuffixes = []string{
	"internal/trace",
	"internal/trace/stream",
	"internal/profile",
	"internal/report",
}

func isObserverPkg(path string) bool {
	for _, s := range observerPkgSuffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runObsonly(pass *ModulePass) {
	m := pass.Module
	eff := m.Effects()
	g := eff.Graph

	var roots []*types.Func
	for fobj, fi := range g.Funcs { //slpmt:determinism-ok: root order does not affect the reachable set, and diagnostics are position-sorted
		switch {
		case isObserverPkg(fi.Pkg.Path):
			roots = append(roots, fobj)
		case fobj.Name() == "Summarize":
			roots = append(roots, fobj)
		case fobj.Name() == "Consume" && consumesTraceEvent(fobj):
			roots = append(roots, fobj)
		}
	}
	if len(roots) == 0 {
		return
	}

	reached, pred := g.ReachableFrom(roots)
	for fobj := range reached { //slpmt:determinism-ok: diagnostics are position-sorted by the driver
		fe := eff.Funcs[fobj]
		if fe == nil {
			continue
		}
		for _, w := range fe.SimWrites {
			pass.Reportf(w.Pos, "observer code writes %s: observation must be side-effect-free (reached via %s)", w.Desc, Chain(pred, fobj))
		}
		for _, w := range fe.GlobalWrites {
			pass.Reportf(w.Pos, "observer code mutates package-level state %s: a second observation of the same run would differ (reached via %s)", w.Desc, Chain(pred, fobj))
		}
	}
}

// consumesTraceEvent reports whether f's signature takes exactly one
// parameter of the module's trace.Event type — the structural signature
// of the stream consumer interface.
func consumesTraceEvent(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 {
		return false
	}
	named := namedOf(sig.Params().At(0).Type())
	if named == nil || named.Obj().Name() != "Event" || named.Obj().Pkg() == nil {
		return false
	}
	p := named.Obj().Pkg().Path()
	return p == "internal/trace" || strings.HasSuffix(p, "/internal/trace")
}
