// Package noallocfix seeds one violation of every noalloc rule inside
// //slpmt:noalloc-annotated functions, plus allocation-free shapes that
// must stay silent.
package noallocfix

//slpmt:noalloc
func makesSlice(n int) []byte {
	return make([]byte, n) // want "calls make"
}

//slpmt:noalloc
func news() *int {
	return new(int) // want "calls new"
}

//slpmt:noalloc
func appends(s []int, v int) []int {
	return append(s, v) // want "calls append"
}

//slpmt:noalloc
func closes(n int) func() int {
	return func() int { return n } // want "function literal"
}

//slpmt:noalloc
func sliceLit() []int {
	return []int{1, 2, 3} // want "builds a []int literal"
}

//slpmt:noalloc
func mapLit() map[int]int {
	return map[int]int{1: 2} // want "builds a map[int]int literal"
}

//slpmt:noalloc
func converts(n int) any {
	return any(n) // want "converts int to interface"
}

func take(v any) {}

func variadic(vs ...any) {}

//slpmt:noalloc
func passes(n int) {
	take(n) // want "passes int for interface parameter"
}

//slpmt:noalloc
func passesVariadic(n int) {
	variadic(n) // want "passes int for interface parameter"
}

//slpmt:noalloc
func passesSlice(vs []any) {
	variadic(vs...) // forwarding the slice itself does not box
}

//slpmt:noalloc
func passesNil() {
	take(nil) // untyped nil needs no box
}

// fine is annotated and clean: no diagnostics expected.
//
//slpmt:noalloc
func fine(s []byte) int {
	t := 0
	for _, b := range s {
		t += int(b)
	}
	return t
}

// unannotated may allocate freely.
func unannotated(n int) []byte {
	return make([]byte, n)
}
