// Package profile is a miniature of the real profile package — just
// enough surface (Cause, causeNames, causeKinds) for the
// cause-coverage analyzer — with one deliberate hole per coverage
// rule.
package profile

import "fixtures/internal/trace"

// Cause tags one attribution bucket.
type Cause uint8

const (
	CauseNone   Cause = iota // sentinel, exempt
	CauseGood                // named, kind-mapped, documented in report
	CauseNoName              // want "has no causeNames entry"
	CauseNoKind              // want "maps to no trace kind"
	CauseNoHelp              // want "has no causeHelp entry"
	CauseUnused              // want "reachable from no charge or SetCause site"

	numCauses
)

var causeNames = [numCauses]string{
	CauseNone:   "none",
	CauseGood:   "good",
	CauseNoKind: "nokind",
	CauseNoHelp: "nohelp",
	CauseUnused: "unused",
}

var causeKinds = [numCauses][]trace.Kind{
	CauseNone:   {trace.KNone},
	CauseGood:   {trace.KGood},
	CauseNoName: {trace.KGood},
	CauseNoKind: {}, // empty: the cause has no witnessing trace kind
	CauseNoHelp: {trace.KGood},
	CauseUnused: {trace.KGood}, // plumbed everywhere except a charge path
}

// String returns the canonical name.
func (c Cause) String() string { return causeNames[c] }

// Kinds returns the witnessing trace kinds.
func (c Cause) Kinds() []trace.Kind { return causeKinds[c] }
