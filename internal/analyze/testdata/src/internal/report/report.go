// Package report is a miniature of the real report package for the
// cause-coverage check's causeHelp rule: one cause is deliberately
// missing its explanation (the diagnostic lands on the constant in the
// profile fixture).
package report

import "fixtures/internal/profile"

var causeHelp = map[profile.Cause]string{
	profile.CauseGood:   "the good cause",
	profile.CauseNoName: "documented but unnamed",
	profile.CauseNoKind: "documented but unwitnessed",
	profile.CauseUnused: "documented but never charge-reachable",
}

// CauseHelp returns the explanation for a cause.
func CauseHelp(c profile.Cause) string { return causeHelp[c] }
