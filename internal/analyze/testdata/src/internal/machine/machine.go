// Package machine is a miniature of the real machine package — just
// enough surface (Core with Clk/cause, the charge choke point,
// SetCause) for the chargeflow and obsonly analyzers — with one
// deliberate violation per choke-point rule.
package machine

import "fixtures/internal/profile"

// Core is the per-core simulation state (miniature).
type Core struct {
	Clk   uint64
	cause profile.Cause
	Count uint64
}

// charge is the conservation choke point: the only legal writer of Clk.
func (c *Core) charge(cause profile.Cause, n uint64) {
	c.Clk += n
	c.chargeProfile(cause, n)
}

// chargeProfile records the attribution (miniature: a no-op).
func (c *Core) chargeProfile(cause profile.Cause, n uint64) {}

// SetCause installs an attribution context, returning the prior one.
func (c *Core) SetCause(cause profile.Cause) profile.Cause {
	prev := c.cause
	c.cause = cause
	return prev
}

// Tick advances one cycle through the choke point.
func (c *Core) Tick() { c.charge(profile.CauseGood, 1) }

// UseCauses makes every intentionally charge-reachable fixture cause
// reachable — the negative space of the unreachable-cause rule.
func (c *Core) UseCauses() {
	c.charge(profile.CauseNoName, 1)
	c.charge(profile.CauseNoKind, 1)
	c.charge(profile.CauseNoHelp, 1)
}

// Skip advances the clock around the choke point.
func (c *Core) Skip() {
	c.Clk += 3 // want "direct write to machine.Core.Clk"
}

// Hijack rewrites the attribution context around SetCause.
func (c *Core) Hijack() {
	c.cause = profile.CauseGood // want "direct write to machine.Core.cause"
}

// Waived advances the clock directly under a justified waiver.
func (c *Core) Waived() {
	//slpmt:chargeflow-ok: fixture for the waiver path; not a simulated cycle
	c.Clk = 0
}

// Bump mutates observable state; a stream consumer calls it in the
// obsonly fixtures (the mutating-method case).
func (c *Core) Bump() {
	c.Count++ // want "writes machine.Core.Count"
}

// CopyCount stores into a value-typed local copy: no effect escapes,
// so no analyzer may flag it.
func CopyCount(c Core) uint64 {
	c.Count = 0
	return c.Clk
}
