// Package critpath is a miniature of the real critpath package — just
// enough surface (EdgeKind, edgeNames, edgeKinds) for the
// edge-coverage analyzer — with one deliberate hole per coverage rule.
package critpath

import "fixtures/internal/trace"

// EdgeKind classifies a waits-for edge.
type EdgeKind uint8

const (
	EdgeGood   EdgeKind = iota // named and witness-mapped
	EdgeNoName                 // want "has no edgeNames entry"
	EdgeNoKind                 // want "maps to no witnessing trace kind"

	numEdgeKinds
)

var edgeNames = [numEdgeKinds]string{
	EdgeGood:   "good",
	EdgeNoKind: "nokind",
}

var edgeKinds = [numEdgeKinds][]trace.Kind{
	EdgeGood:   {trace.KGood},
	EdgeNoName: {trace.KGood},
	EdgeNoKind: {}, // empty: the edge has no witnessing trace kind
}

// String returns the canonical name.
func (k EdgeKind) String() string { return edgeNames[k] }

// Kinds returns the witnessing trace kinds.
func (k EdgeKind) Kinds() []trace.Kind { return edgeKinds[k] }
