// Package stats is a miniature of the real stats package for the
// trace-coverage counter-rows check: one field is missing its row.
package stats

// Counters is the fixture counter block.
type Counters struct {
	Loads  uint64
	Stores uint64
	Orphan uint64 // want "has no canonicalRows entry"
}

// Row is one rendered metric.
type Row struct {
	Name  string
	Value uint64
}

func canonicalRows(c *Counters) []Row {
	return []Row{
		{"mem.loads", c.Loads},
		{"mem.stores", c.Stores},
	}
}
