// Package trace is a miniature of the real trace package — just enough
// surface (Kind, kindNames, WritePerfetto) for the trace-coverage
// analyzer — with one deliberate hole per coverage rule.
package trace

// Kind tags one event.
type Kind uint8

const (
	KNone       Kind = iota // sentinel, exempt
	KGood                   // emitted (by emitter), named, mapped
	KNoEmit                 // want "has no emit site"
	KNoName                 // want "has no kindNames entry"
	KNoPerfetto             // want "not handled by the Perfetto exporter"
)

var kindNames = map[Kind]string{
	KGood:       "good",
	KNoEmit:     "noemit",
	KNoPerfetto: "noperfetto",
}

// Name returns the display name.
func (k Kind) Name() string { return kindNames[k] }

// Emit records one event.
func Emit(k Kind, arg uint64) {}

// Event is one trace record (miniature of the real one, enough for the
// stream-consumer registration rule).
type Event struct {
	Cycle uint64
	Kind  Kind
}

// Mask builds a kind-filter bitmask.
func Mask(kinds ...Kind) uint64 {
	var m uint64
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// AllKinds is the universal mask.
const AllKinds = ^uint64(0)

// WritePerfetto renders one event kind.
func WritePerfetto(k Kind) string {
	switch k {
	case KGood:
		return "good"
	case KNoEmit:
		return "noemit"
	case KNoName:
		return "noname"
	}
	return ""
}
