// Package restorefix seeds one violation of every SetCause
// restore-discipline rule, with the allowed shapes next to each: the
// chargeflow CFG walk must accept the balanced forms and flag the
// leaks line-for-line.
package restorefix

import (
	"fixtures/internal/machine"
	"fixtures/internal/profile"
)

// Balanced saves and restores explicitly.
func Balanced(c *machine.Core) {
	prev := c.SetCause(profile.CauseGood)
	c.Tick()
	c.SetCause(prev)
}

// DeferBalanced restores through defer, covering early returns.
func DeferBalanced(c *machine.Core, n int) {
	prev := c.SetCause(profile.CauseGood)
	defer c.SetCause(prev)
	if n == 0 {
		return
	}
	c.Tick()
}

// DeferClosure restores through a deferred closure.
func DeferClosure(c *machine.Core) {
	prev := c.SetCause(profile.CauseGood)
	defer func() { c.SetCause(prev) }()
	c.Tick()
}

// Guarded re-points attribution mid-stream while a save is pending —
// the engine's commit-marker refinement pattern; allowed.
func Guarded(c *machine.Core) {
	prev := c.SetCause(profile.CauseGood)
	c.SetCause(profile.CauseNoName)
	c.Tick()
	c.SetCause(prev)
}

// BranchBalanced restores on every path explicitly.
func BranchBalanced(c *machine.Core, x bool) {
	prev := c.SetCause(profile.CauseGood)
	if x {
		c.SetCause(prev)
		return
	}
	c.Tick()
	c.SetCause(prev)
}

// Leaky returns early without restoring.
func Leaky(c *machine.Core, x bool) {
	prev := c.SetCause(profile.CauseGood) // want "not restored on all paths"
	if x {
		return
	}
	c.SetCause(prev)
}

// Naked discards the prior context with nothing pending to recover it.
func Naked(c *machine.Core) {
	c.SetCause(profile.CauseGood) // want "discards the prior attribution context"
	c.Tick()
}

// Overwrite clobbers an unrestored save.
func Overwrite(c *machine.Core) {
	prev := c.SetCause(profile.CauseGood)
	c.Tick()
	prev = c.SetCause(profile.CauseNoName) // want "overwrites an attribution context"
	c.SetCause(prev)
}

// LoopLeak opens a save the loop body never closes: the next iteration
// clobbers it.
func LoopLeak(c *machine.Core, n int) {
	for i := 0; i < n; i++ {
		prev := c.SetCause(profile.CauseGood) // want "does not survive the loop body"
		c.Tick()
		_ = prev
	}
}

// LoopBalanced closes its save every iteration.
func LoopBalanced(c *machine.Core, n int) {
	for i := 0; i < n; i++ {
		prev := c.SetCause(profile.CauseGood)
		c.Tick()
		c.SetCause(prev)
	}
}

// PanicExempt terminates in panic: no restore required on that path.
func PanicExempt(c *machine.Core, x bool) {
	prev := c.SetCause(profile.CauseGood)
	if x {
		panic("fixture")
	}
	c.SetCause(prev)
}
