// Package streamconsumer exercises the stream-consumer registration
// rule: events are filtered by a consumer's Kinds mask before delivery,
// so a trace.Kind referenced in Consume but absent from the mask is
// dead handling and must be flagged.
package streamconsumer

import (
	"fixtures/internal/machine"
	"fixtures/internal/trace"
)

// Good registers exactly the kinds it handles.
type Good struct{ n int }

func (g *Good) Kinds() uint64 { return trace.Mask(trace.KGood, trace.KNoEmit) }

func (g *Good) Consume(e trace.Event) {
	switch e.Kind {
	case trace.KGood, trace.KNoEmit:
		g.n++
	}
}

// Universal inspects every kind under the AllKinds mask.
type Universal struct{ n int }

func (u *Universal) Kinds() uint64 { return trace.AllKinds }

func (u *Universal) Consume(e trace.Event) {
	if e.Kind == trace.KNoName {
		u.n++
	}
}

// Helper routes its mask through a package-level function, like the
// real two-pass WPQ consumers do.
type Helper struct{ n int }

func helperMask() uint64 { return trace.Mask(trace.KGood) }

func (h *Helper) Kinds() uint64 { return helperMask() }

func (h *Helper) Consume(e trace.Event) {
	if e.Kind == trace.KGood {
		h.n++
	}
}

// Leaky handles a kind its mask does not register: KNoName events are
// filtered out before delivery, so the branch is dead.
type Leaky struct{ n int }

func (l *Leaky) Kinds() uint64 { return trace.Mask(trace.KGood) }

func (l *Leaky) Consume(e trace.Event) {
	switch e.Kind {
	case trace.KGood:
		l.n++
	case trace.KNoName: // want "does not register"
		l.n += 2
	}
}

// NotAConsumer has a Consume method but no Kinds mask — outside the
// contract, so the rule stays silent even though it references kinds.
type NotAConsumer struct{ n int }

func (n *NotAConsumer) Consume(e trace.Event) {
	if e.Kind == trace.KNoPerfetto {
		n.n++
	}
}

// Mutator reaches into simulation state from an observer entry point:
// both the direct field write and the mutating-method call are obsonly
// errors (the method's write is reported at its body, with the call
// chain back to Consume).
type Mutator struct{ core *machine.Core }

func (m *Mutator) Kinds() uint64 { return trace.Mask(trace.KGood) }

func (m *Mutator) Consume(e trace.Event) {
	m.core.Count += e.Cycle // want "writes machine.Core.Count"
	m.core.Bump()
}

// hostBuffered and hostDropped mirror the double-buffered binlog
// sink's host-side accounting: package-level state touched from a
// consumer. The buffered counter is intentional (waived); the drop
// counter below is the unwaived leak the pass must catch.
var hostBuffered, hostDropped uint64

// Sink is the waived-sink fixture.
type Sink struct{}

func (s *Sink) Kinds() uint64 { return trace.AllKinds }

func (s *Sink) Consume(e trace.Event) {
	hostDropped++  // want "package-level state streamconsumer.hostDropped"
	hostBuffered++ //slpmt:obsonly-ok: double-buffered host-side spill accounting; simulation code never reads it back
}
