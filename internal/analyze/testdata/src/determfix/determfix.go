// Package determfix seeds one violation of every determinism rule,
// plus the allowed forms next to each; the fixture test pins the
// analyzer's findings line-for-line against the want comments.
package determfix

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now reads the host clock"
	return time.Since(start) // want "time.Since reads the host clock"
}

func unitArithmetic(d time.Duration) time.Duration {
	return d + 3*time.Millisecond // constants and Duration math are fine
}

func globalRand() int {
	return rand.Intn(8) // want "rand.Intn uses the global random source"
}

func seededRand() int {
	r := rand.New(rand.NewSource(1)) // explicit seed: deterministic
	return r.Intn(8)
}

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want "go statement"
	select {                // want "select statement"
	case <-ch:
	default:
	}
}

func mapRange(m map[int]int) int {
	s := 0
	for _, v := range m { // want "range over map"
		s += v
	}
	for k := range m { //slpmt:determinism-ok keys feed a commutative sum // want "legacy colon-less form"
		s += k
	}
	for k := range m { //slpmt:determinism-ok: keys feed a commutative sum
		s -= k
	}
	for _, v := range []int{1, 2} { // slices iterate in order
		s += v
	}
	return s
}
