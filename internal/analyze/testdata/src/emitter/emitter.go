// Package emitter exercises cross-package emit-site detection: the
// trace-coverage pass must see these calls even though they are not in
// the trace package itself.
package emitter

import "fixtures/internal/trace"

// Run emits every kind that is supposed to have an emit site.
func Run() {
	trace.Emit(trace.KGood, 1)
	trace.Emit(trace.KNoName, 2)
	trace.Emit(trace.KNoPerfetto, 3)
}
