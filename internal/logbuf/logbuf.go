// Package logbuf implements the paper's four-tier coalescing log buffer
// (§III-B2), the on-core structure that turns word-granularity log
// records into packed persistent-memory writes.
//
// The tiers hold records of one word (8 B data), double words (16 B),
// quadruple words (32 B), and a full cache line (64 B). Record sizes
// including the 8-byte address are therefore 16, 24, 40 and 72 bytes.
// Each tier holds eight records (tier capacities of two, three, five and
// nine cache lines — 1216 bytes total, the figure of §III-D).
//
// Coalescing follows the buddy-allocator rule the paper cites: on every
// insertion the tier is searched for the record covering the buddy range
// (address XOR size); if found, the pair merges into a record of the
// next tier, recursively. When a tier is full and the incoming record
// has no coalescing opportunity, the whole tier is drained (spilled to
// persistent memory) to make room.
//
// The buffer is a pure in-memory structure: spilling is delegated to the
// owner through the Spill callback, which the transaction engine wires
// to the machine's WPQ.
package logbuf

import (
	"fmt"

	"github.com/persistmem/slpmt/internal/mem"
)

// Tier count and per-tier record capacity.
const (
	Tiers       = 4
	TierRecords = 8
)

// DataSize returns the record data size (bytes) of tier t.
func DataSize(t int) int { return mem.WordSize << uint(t) } // 8,16,32,64

// RecordBytes returns the serialized record size of tier t: 8-byte
// address word plus data (16, 24, 40, 72 — Figure 6).
//
// Note the paper's figure lists 16/24/40 for the first three tiers; the
// double-word record is 24 bytes (8 addr + 16 data).
func RecordBytes(t int) int { return 8 + DataSize(t) }

// TotalBytes is the aggregate buffer capacity: sum over tiers of
// TierRecords * RecordBytes = 128+192+320+576 = 1216 bytes (§III-D).
const TotalBytes = TierRecords * (16 + 24 + 40 + 72)

// Record is one log record: the old (undo) or new (redo) value of an
// aligned power-of-two byte range within a single cache line.
type Record struct {
	// Addr is the start address; always aligned to len(Data).
	Addr mem.Addr
	// Data is the logged value; len is 8, 16, 32 or 64.
	Data []byte
	// Speculative marks a record created for clean data purely to help
	// log-bit aggregation (§III-B1). Recovery must tolerate them (they
	// are no-ops for undo logs).
	Speculative bool
}

// Tier returns the tier index for the record's size, or -1 if invalid.
func (r Record) Tier() int {
	switch len(r.Data) {
	case 8:
		return 0
	case 16:
		return 1
	case 32:
		return 2
	case 64:
		return 3
	default:
		return -1
	}
}

// Line returns the cache line the record belongs to.
func (r Record) Line() mem.Addr { return mem.LineAddr(r.Addr) }

// Stats counts buffer activity for the evaluation's logging metrics.
type Stats struct {
	Inserted  uint64 // records inserted (tier 0..3 direct inserts)
	Coalesced uint64 // pairwise merges performed
	Spilled   uint64 // records passed to the Spill callback
	Discarded uint64 // records dropped (lazy lines at commit)
	Stalls    uint64 // inserts that forced a tier drain
}

// Buffer is the four-tier log buffer. Not safe for concurrent use.
type Buffer struct {
	tiers [Tiers][]Record
	// Spill receives records evicted from the buffer by capacity
	// pressure or an explicit flush; they must be made durable. May be
	// nil in tests, in which case spilled records are dropped.
	Spill func([]Record)
	stats Stats
}

// New returns an empty buffer with the given spill callback.
func New(spill func([]Record)) *Buffer {
	b := &Buffer{Spill: spill}
	for t := range b.tiers {
		b.tiers[t] = make([]Record, 0, TierRecords)
	}
	return b
}

// Len returns the number of records currently buffered.
func (b *Buffer) Len() int {
	n := 0
	for t := range b.tiers {
		n += len(b.tiers[t])
	}
	return n
}

// Stats returns a copy of the activity counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Insert adds a word-granularity record (len(Data)==8) created by a
// store, coalescing it up the tiers. Records of larger sizes may also be
// inserted directly (cache-line-granularity schemes insert 64-byte
// records).
func (b *Buffer) Insert(r Record) {
	t := r.Tier()
	if t < 0 {
		panic(fmt.Sprintf("logbuf: invalid record size %d", len(r.Data)))
	}
	if !mem.AlignedTo(r.Addr, uint64(len(r.Data))) {
		panic(fmt.Sprintf("logbuf: record %#x not aligned to %d", r.Addr, len(r.Data)))
	}
	b.stats.Inserted++
	b.insert(t, r)
}

func (b *Buffer) insert(t int, r Record) {
	for t < Tiers-1 {
		// Buddy search: the same-size record that together with r forms
		// an aligned record of the next tier.
		size := mem.Addr(len(r.Data))
		buddy := r.Addr ^ size
		idx := -1
		for i, q := range b.tiers[t] {
			if q.Addr == buddy {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		q := b.tiers[t][idx]
		b.tiers[t] = append(b.tiers[t][:idx], b.tiers[t][idx+1:]...)
		r = merge(r, q)
		b.stats.Coalesced++
		t++
	}
	// Insert into tier t; drain the tier if full (the incoming record
	// had no coalescing opportunity there, by construction above).
	if len(b.tiers[t]) >= TierRecords {
		b.stats.Stalls++
		b.drainTier(t)
	}
	b.tiers[t] = append(b.tiers[t], r)
}

// merge combines two buddy records into one of the next size class.
func merge(a, c Record) Record {
	if a.Addr > c.Addr {
		a, c = c, a
	}
	data := make([]byte, 0, len(a.Data)*2)
	data = append(data, a.Data...)
	data = append(data, c.Data...)
	return Record{
		Addr:        a.Addr,
		Data:        data,
		Speculative: a.Speculative && c.Speculative,
	}
}

// drainTier spills every record of tier t.
func (b *Buffer) drainTier(t int) {
	if len(b.tiers[t]) == 0 {
		return
	}
	b.spill(b.tiers[t])
	b.tiers[t] = b.tiers[t][:0]
}

func (b *Buffer) spill(recs []Record) {
	b.stats.Spilled += uint64(len(recs))
	if b.Spill != nil {
		// Copy: the callback may retain the slice.
		out := make([]Record, len(recs))
		copy(out, recs)
		b.Spill(out)
	}
}

// FlushLine removes and spills every record belonging to the cache line
// at lineAddr — the action taken when the associated line is evicted
// from the private caches (§II). Returns the number of records flushed.
func (b *Buffer) FlushLine(lineAddr mem.Addr) int {
	recs := b.takeLine(lineAddr)
	if len(recs) > 0 {
		b.spill(recs)
	}
	return len(recs)
}

// DiscardLine removes (without spilling) every record belonging to the
// line at lineAddr — the commit-time treatment of records for lazily
// persistent lines (§III-B2). Returns the number discarded.
func (b *Buffer) DiscardLine(lineAddr mem.Addr) int {
	recs := b.takeLine(lineAddr)
	b.stats.Discarded += uint64(len(recs))
	return len(recs)
}

func (b *Buffer) takeLine(lineAddr mem.Addr) []Record {
	var out []Record
	for t := range b.tiers {
		kept := b.tiers[t][:0]
		for _, r := range b.tiers[t] {
			if r.Line() == lineAddr {
				out = append(out, r)
			} else {
				kept = append(kept, r)
			}
		}
		b.tiers[t] = kept
	}
	return out
}

// HasLine reports whether any buffered record belongs to the given line.
// This models the TCAM address search (§III-B2).
func (b *Buffer) HasLine(lineAddr mem.Addr) bool {
	for t := range b.tiers {
		for _, r := range b.tiers[t] {
			if r.Line() == lineAddr {
				return true
			}
		}
	}
	return false
}

// DrainAll spills every buffered record (transaction commit). Records
// are spilled tier by tier, largest first, so that line-sized records
// pack first.
func (b *Buffer) DrainAll() {
	for t := Tiers - 1; t >= 0; t-- {
		b.drainTier(t)
	}
}

// Clear empties the buffer without spilling (transaction abort, §V-B).
func (b *Buffer) Clear() int {
	n := b.Len()
	for t := range b.tiers {
		b.tiers[t] = b.tiers[t][:0]
	}
	return n
}

// Records returns a snapshot of all buffered records (for tests and the
// commit-time lazy scan).
func (b *Buffer) Records() []Record {
	out := make([]Record, 0, b.Len())
	for t := range b.tiers {
		out = append(out, b.tiers[t]...)
	}
	return out
}
