package logbuf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/persistmem/slpmt/internal/mem"
)

func word(addr mem.Addr, fill byte) Record {
	d := make([]byte, 8)
	for i := range d {
		d[i] = fill
	}
	return Record{Addr: addr, Data: d}
}

func TestGeometryConstants(t *testing.T) {
	if TotalBytes != 1216 {
		t.Errorf("TotalBytes = %d, want 1216 (§III-D)", TotalBytes)
	}
	wantRecord := []int{16, 24, 40, 72}
	wantData := []int{8, 16, 32, 64}
	for tier := 0; tier < Tiers; tier++ {
		if RecordBytes(tier) != wantRecord[tier] || DataSize(tier) != wantData[tier] {
			t.Errorf("tier %d: record=%d data=%d", tier, RecordBytes(tier), DataSize(tier))
		}
	}
}

func TestBuddyCoalescingToFullLine(t *testing.T) {
	b := New(nil)
	// Insert the eight words of one line: they must coalesce into a
	// single 64-byte record in the top tier.
	for w := 0; w < 8; w++ {
		b.Insert(word(0x1000+mem.Addr(w*8), byte(w)))
	}
	recs := b.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1 coalesced line record", len(recs))
	}
	r := recs[0]
	if r.Addr != 0x1000 || len(r.Data) != 64 {
		t.Fatalf("coalesced record %#x len %d", r.Addr, len(r.Data))
	}
	for w := 0; w < 8; w++ {
		if r.Data[w*8] != byte(w) {
			t.Errorf("word %d payload lost in coalescing", w)
		}
	}
	if b.Stats().Coalesced != 7 {
		t.Errorf("coalesce count = %d, want 7", b.Stats().Coalesced)
	}
}

func TestNonBuddyDoesNotCoalesce(t *testing.T) {
	b := New(nil)
	b.Insert(word(0x08, 1)) // words 1 and 2 are adjacent but not buddies
	b.Insert(word(0x10, 2))
	if n := len(b.Records()); n != 2 {
		t.Errorf("non-buddy words coalesced: %d records", n)
	}
	b2 := New(nil)
	b2.Insert(word(0x00, 1))
	b2.Insert(word(0x08, 2)) // buddies
	if n := len(b2.Records()); n != 1 {
		t.Errorf("buddies did not coalesce: %d records", n)
	}
}

func TestTierPressureSpills(t *testing.T) {
	var spilled []Record
	b := New(func(rs []Record) { spilled = append(spilled, rs...) })
	// Nine isolated words from different lines: the 9th insert finds
	// tier 0 full with no coalescing opportunity and drains it.
	for i := 0; i < TierRecords+1; i++ {
		b.Insert(word(mem.Addr(0x1000+i*128), byte(i)))
	}
	if len(spilled) != TierRecords {
		t.Fatalf("spilled %d records, want %d", len(spilled), TierRecords)
	}
	if b.Len() != 1 {
		t.Errorf("buffer holds %d, want 1 (the trigger record)", b.Len())
	}
	if b.Stats().Stalls != 1 {
		t.Errorf("stalls = %d, want 1", b.Stats().Stalls)
	}
}

func TestFlushLine(t *testing.T) {
	var spilled []Record
	b := New(func(rs []Record) { spilled = append(spilled, rs...) })
	b.Insert(word(0x1000, 1))
	b.Insert(word(0x1008, 2)) // coalesces with the first
	b.Insert(word(0x2000, 3))
	if n := b.FlushLine(0x1000); n != 1 {
		t.Fatalf("FlushLine flushed %d records, want the 1 coalesced", n)
	}
	if len(spilled) != 1 || spilled[0].Addr != 0x1000 || len(spilled[0].Data) != 16 {
		t.Fatalf("flushed record wrong: %+v", spilled)
	}
	if b.HasLine(0x1000) {
		t.Error("line still present after flush")
	}
	if !b.HasLine(0x2000) {
		t.Error("unrelated line flushed")
	}
}

func TestDiscardLine(t *testing.T) {
	b := New(func(rs []Record) { t.Error("discard must not spill") })
	b.Insert(word(0x1000, 1))
	b.Insert(word(0x1020, 2))
	if n := b.DiscardLine(0x1000); n != 2 {
		t.Errorf("discarded %d, want 2", n)
	}
	if b.Stats().Discarded != 2 {
		t.Errorf("discard stat = %d", b.Stats().Discarded)
	}
}

func TestDrainAllAndClear(t *testing.T) {
	var spilled int
	b := New(func(rs []Record) { spilled += len(rs) })
	for i := 0; i < 5; i++ {
		b.Insert(word(mem.Addr(0x1000+i*64), 1))
	}
	b.DrainAll()
	if spilled != 5 || b.Len() != 0 {
		t.Errorf("drain: spilled=%d len=%d", spilled, b.Len())
	}
	b.Insert(word(0x5000, 1))
	if n := b.Clear(); n != 1 || b.Len() != 0 {
		t.Errorf("clear: n=%d len=%d", n, b.Len())
	}
	if spilled != 5 {
		t.Error("clear must not spill")
	}
}

func TestInvalidRecordPanics(t *testing.T) {
	b := New(nil)
	for _, r := range []Record{
		{Addr: 0x1000, Data: make([]byte, 12)}, // bad size
		{Addr: 0x1004, Data: make([]byte, 8)},  // misaligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("record %+v should panic", r)
				}
			}()
			b.Insert(r)
		}()
	}
}

// TestPayloadPreservation: whatever sequence of word inserts happens,
// the union of buffered and spilled records reproduces exactly the
// last-written payload of every inserted word.
func TestPayloadPreservation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		want := map[mem.Addr]byte{}
		var spilled []Record
		b := New(func(rs []Record) { spilled = append(spilled, rs...) })
		for i := 0; i < int(n); i++ {
			addr := mem.Addr(rng.Intn(64)) * 8
			fill := byte(rng.Intn(255) + 1)
			if _, dup := want[addr]; dup {
				continue // the engine logs each word once per txn
			}
			want[addr] = fill
			b.Insert(word(addr, fill))
		}
		got := map[mem.Addr]byte{}
		collect := func(rs []Record) {
			for _, r := range rs {
				for w := 0; w < len(r.Data)/8; w++ {
					got[r.Addr+mem.Addr(w*8)] = r.Data[w*8]
				}
			}
		}
		collect(spilled)
		collect(b.Records())
		if len(got) != len(want) {
			return false
		}
		for a, v := range want {
			if got[a] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSpeculativeFlagPropagation: merging a speculative and a real
// record yields a non-speculative record (it carries real undo data).
func TestSpeculativeFlagPropagation(t *testing.T) {
	b := New(nil)
	r1 := word(0x1000, 1)
	r1.Speculative = true
	r2 := word(0x1008, 2)
	b.Insert(r1)
	b.Insert(r2)
	recs := b.Records()
	if len(recs) != 1 || recs[0].Speculative {
		t.Errorf("merge of spec+real should be real: %+v", recs)
	}
	b2 := New(nil)
	r3 := word(0x2000, 1)
	r3.Speculative = true
	r4 := word(0x2008, 2)
	r4.Speculative = true
	b2.Insert(r3)
	b2.Insert(r4)
	if recs := b2.Records(); len(recs) != 1 || !recs[0].Speculative {
		t.Errorf("merge of spec+spec should stay speculative: %+v", recs)
	}
}

func TestRecordTier(t *testing.T) {
	if (Record{Data: make([]byte, 8)}).Tier() != 0 ||
		(Record{Data: make([]byte, 64)}).Tier() != 3 ||
		(Record{Data: make([]byte, 24)}).Tier() != -1 {
		t.Error("Tier classification broken")
	}
}
