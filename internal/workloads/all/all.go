// Package all registers every benchmark workload; blank-import it to
// populate the workloads registry.
package all

import (
	// Register the benchmark structures.
	_ "github.com/persistmem/slpmt/internal/workloads/avl"
	_ "github.com/persistmem/slpmt/internal/workloads/binheap"
	_ "github.com/persistmem/slpmt/internal/workloads/dlist"
	_ "github.com/persistmem/slpmt/internal/workloads/hashtable"
	_ "github.com/persistmem/slpmt/internal/workloads/kvstore"
	_ "github.com/persistmem/slpmt/internal/workloads/rbtree"
)
