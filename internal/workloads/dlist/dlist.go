// Package dlist implements the paper's introductory example (Figure 1)
// as a first-class workload: a durable doubly-linked list where the
// bidirectional links provide the algorithmic redundancy selective
// logging exploits. Each insert performs four pointer writes, and —
// exactly as Figure 1 argues — only the first (the predecessor's next
// pointer) needs an undo record:
//
//   - the fresh node's fields are log-free (Pattern 1);
//   - the successor's prev pointer is lazy + log-free: every prev
//     pointer is derivable from the next chain, so recovery rebuilds
//     them all with one forward walk (the Figure 1(d) fix-up).
//
// The list is keyed (newest first) so it supports the standard
// workload-driver operations; inserts prepend at the head.
package dlist

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Node layout.
const (
	offKey  = 0
	offVLen = 8
	offPrev = 16
	offNext = 24
	offVal  = 32
)

func init() {
	workloads.Register("dlist", func() workloads.Workload { return New() })
}

// List is the doubly-linked-list workload.
type List struct{}

// New returns a fresh dlist workload.
func New() *List { return &List{} }

// Name implements workloads.Workload.
func (l *List) Name() string { return "dlist" }

// ComputeCost implements workloads.Workload.
func (l *List) ComputeCost() uint64 { return 1 }

// Setup implements workloads.Workload.
func (l *List) Setup(sys *slpmt.System) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		tx.SetRoot(workloads.RootMain, 0)
		tx.SetRoot(workloads.RootCount, 0)
		return nil
	})
}

// Insert implements workloads.Workload: prepend at the head with the
// Figure 1 annotation discipline.
func (l *List) Insert(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		head := slpmt.Addr(tx.Root(workloads.RootMain))
		n := tx.Alloc(offVal + uint64(len(value)))
		tx.StoreTU64(n+offKey, key, slpmt.LogFree)
		tx.StoreTU64(n+offVLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreTU64(n+offPrev, 0, slpmt.LogFree)
		tx.StoreTU64(n+offNext, uint64(head), slpmt.LogFree)
		tx.StoreT(n+offVal, value, slpmt.LogFree)
		// Write 1 of Figure 1: the only logged pointer update.
		tx.SetRoot(workloads.RootMain, uint64(n))
		if head != 0 {
			// Write 4 of Figure 1: redundant, lazy + log-free.
			tx.StoreTU64(head+offPrev, uint64(n), slpmt.LazyLogFree)
		}
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)+1)
		return nil
	})
}

// Get implements workloads.Workload (linear walk).
func (l *List) Get(sys *slpmt.System, key uint64) (val []byte, ok bool) {
	sys.View(func(tx *slpmt.Tx) {
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			if tx.LoadU64(n+offKey) == key {
				vlen := tx.LoadU64(n + offVLen)
				val = make([]byte, vlen)
				tx.Load(n+offVal, val)
				ok = true
				return
			}
			n = slpmt.Addr(tx.LoadU64(n + offNext))
		}
	})
	return val, ok
}

// UpdateValue implements workloads.Mutable.
func (l *List) UpdateValue(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			if tx.LoadU64(n+offKey) == key {
				if tx.LoadU64(n+offVLen) != uint64(len(value)) {
					return fmt.Errorf("dlist: size-changing update unsupported")
				}
				tx.Store(n+offVal, value)
				return nil
			}
			n = slpmt.Addr(tx.LoadU64(n + offNext))
		}
		return fmt.Errorf("dlist: key %d not found", key)
	})
}

// Delete implements workloads.Mutable: unlinking needs ONE logged store
// (the predecessor's next pointer — or the head slot); the successor's
// prev pointer is again lazy + log-free.
func (l *List) Delete(sys *slpmt.System, key uint64) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			if tx.LoadU64(n+offKey) != key {
				n = slpmt.Addr(tx.LoadU64(n + offNext))
				continue
			}
			prev := slpmt.Addr(tx.LoadU64(n + offPrev))
			next := slpmt.Addr(tx.LoadU64(n + offNext))
			if prev == 0 {
				tx.SetRoot(workloads.RootMain, uint64(next))
			} else {
				tx.StoreU64(prev+offNext, uint64(next)) // the logged unlink
			}
			if next != 0 {
				tx.StoreTU64(next+offPrev, uint64(prev), slpmt.LazyLogFree)
			}
			tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)-1)
			tx.Free(n)
			return nil
		}
		return fmt.Errorf("dlist: key %d not found", key)
	})
}

// Check implements workloads.Workload: the prev chain must invert the
// next chain, and contents must match the oracle.
func (l *List) Check(sys *slpmt.System, oracle map[uint64][]byte) error {
	var err error
	count := uint64(0)
	sys.View(func(tx *slpmt.Tx) {
		prev := slpmt.Addr(0)
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			if slpmt.Addr(tx.LoadU64(n+offPrev)) != prev {
				err = fmt.Errorf("dlist: prev pointer broken at node %#x", n)
				return
			}
			count++
			prev = n
			n = slpmt.Addr(tx.LoadU64(n + offNext))
		}
	})
	if err != nil {
		return err
	}
	if count != uint64(len(oracle)) {
		return fmt.Errorf("dlist: %d nodes, oracle %d", count, len(oracle))
	}
	return workloads.CheckOracle(sys, l, oracle)
}

// --- Recovery over the durable image -------------------------------

func readRoot(img *pmem.Image, slot int) uint64 {
	la := mem.DefaultLayout(uint64(len(img.Data)))
	return img.ReadU64(la.RootBase + mem.Addr(slot*8))
}

// Recover implements workloads.Recoverable: the Figure 1(d) fix-up —
// rebuild every prev pointer from the (logged, undo-restored) next
// chain.
func (l *List) Recover(img *pmem.Image) error {
	prev := mem.Addr(0)
	steps := 0
	for n := mem.Addr(readRoot(img, workloads.RootMain)); n != 0; n = mem.Addr(img.ReadU64(n + offNext)) {
		if steps++; steps > 1<<22 {
			return fmt.Errorf("dlist recover: cycle suspected")
		}
		if mem.Addr(img.ReadU64(n+offPrev)) != prev {
			img.WriteU64(n+offPrev, uint64(prev))
		}
		prev = n
	}
	return nil
}

// Reach implements workloads.Recoverable.
func (l *List) Reach(img *pmem.Image) ([]txheap.Extent, error) {
	var out []txheap.Extent
	for n := mem.Addr(readRoot(img, workloads.RootMain)); n != 0; n = mem.Addr(img.ReadU64(n + offNext)) {
		vlen := img.ReadU64(n + offVLen)
		out = append(out, txheap.Extent{Addr: n, Size: offVal + vlen})
	}
	return out, nil
}

// CheckDurable implements workloads.Recoverable.
func (l *List) CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error {
	seen := map[uint64]bool{}
	prev := mem.Addr(0)
	for n := mem.Addr(readRoot(img, workloads.RootMain)); n != 0; n = mem.Addr(img.ReadU64(n + offNext)) {
		if mem.Addr(img.ReadU64(n+offPrev)) != prev {
			return fmt.Errorf("dlist durable: prev broken at %#x", n)
		}
		k := img.ReadU64(n + offKey)
		want, ok := oracle[k]
		if !ok {
			return fmt.Errorf("dlist durable: unexpected key %d", k)
		}
		if seen[k] {
			return fmt.Errorf("dlist durable: duplicate key %d", k)
		}
		seen[k] = true
		vlen := img.ReadU64(n + offVLen)
		got := make([]byte, vlen)
		img.Read(n+offVal, got)
		if string(got) != string(want) {
			return fmt.Errorf("dlist durable: value mismatch at %d", k)
		}
		prev = n
	}
	if len(seen) != len(oracle) {
		return fmt.Errorf("dlist durable: %d keys, oracle %d", len(seen), len(oracle))
	}
	if c := readRoot(img, workloads.RootCount); c != uint64(len(oracle)) {
		return fmt.Errorf("dlist durable: count %d, oracle %d", c, len(oracle))
	}
	return nil
}
