package dlist

import (
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// TestFigureOneLoggingProfile: an insert into a non-empty list creates
// exactly one undo record (the head/predecessor link) — the paper's
// Figure 1 claim.
func TestFigureOneLoggingProfile(t *testing.T) {
	l := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := l.Setup(sys); err != nil {
		t.Fatal(err)
	}
	// 32-byte values make each node exactly one cache line, so nodes do
	// not share lines (line sharing would cancel the lazy prev-pointer
	// update via the sticky persist bit — the same effect the paper
	// describes for the rbtree's color field).
	val := []byte("0123456789abcdef0123456789abcdef")
	if err := l.Insert(sys, 1, val); err != nil {
		t.Fatal(err)
	}
	before := sys.Stats().LogRecordsCreated
	if err := l.Insert(sys, 2, val); err != nil {
		t.Fatal(err)
	}
	recs := sys.Stats().LogRecordsCreated - before
	// One for the head root slot, one for the count root slot (same
	// root line, different words).
	if recs > 2 {
		t.Errorf("insert created %d undo records, want <= 2", recs)
	}
	// The successor's prev pointer was deferred (lazy + log-free).
	if sys.Stats().LazyLinesDeferred == 0 {
		t.Error("prev-pointer update was not lazy")
	}
}

// TestPrevRebuiltAfterCorruption: the Figure 1(d) fix-up restores every
// prev pointer from the next chain.
func TestPrevRebuiltAfterCorruption(t *testing.T) {
	l := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := l.Setup(sys); err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64][]byte{}
	for k := uint64(1); k <= 20; k++ {
		v := []byte("vvvvvvvv")
		if err := l.Insert(sys, k, v); err != nil {
			t.Fatal(err)
		}
		oracle[k] = v
	}
	sys.DrainLazy()
	img := sys.Mach.Crash()
	// Corrupt every prev pointer.
	n := readRoot(img, workloads.RootMain)
	for n != 0 {
		img.WriteU64(n+offPrev, 0xdeadbeef)
		n = img.ReadU64(n + offNext)
	}
	if err := l.Recover(img); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckDurable(img, oracle); err != nil {
		t.Fatalf("fix-up failed: %v", err)
	}
}

// TestDeleteUnlinksWithOneLoggedStore: deletes are as log-light as
// inserts.
func TestDeleteUnlinksWithOneLoggedStore(t *testing.T) {
	l := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := l.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 3; k++ {
		if err := l.Insert(sys, k, []byte("vvvvvvvv")); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.Stats().LogRecordsCreated
	if err := l.Delete(sys, 2); err != nil { // middle node
		t.Fatal(err)
	}
	recs := sys.Stats().LogRecordsCreated - before
	if recs > 2 { // pred.next + count
		t.Errorf("delete created %d undo records, want <= 2", recs)
	}
	if err := l.Check(sys, map[uint64][]byte{1: []byte("vvvvvvvv"), 3: []byte("vvvvvvvv")}); err != nil {
		t.Fatal(err)
	}
}
