package workloads_test

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestScanMatchesSortedOracle: every Ranger's scan yields exactly the
// oracle keys within the range, in ascending order, with the right
// values; early stop works.
func TestScanMatchesSortedOracle(t *testing.T) {
	for _, wname := range []string{"rbtree", "avl", "kv-btree", "kv-ctree", "kv-rtree"} {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			w := workloads.MustNew(wname)
			r, ok := w.(workloads.Ranger)
			if !ok {
				t.Fatalf("%s does not implement Ranger", wname)
			}
			sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
			if err := w.Setup(sys); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			oracle := map[uint64][]byte{}
			for len(oracle) < 250 {
				k := rng.Uint64()%1_000_000 + 1
				if _, dup := oracle[k]; dup {
					continue
				}
				v := []byte{byte(k), byte(k >> 8), byte(k >> 16), 0xAB}
				if err := w.Insert(sys, k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
			keys := make([]uint64, 0, len(oracle))
			for k := range oracle {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

			ranges := [][2]uint64{
				{0, ^uint64(0)},          // everything
				{keys[50], keys[180]},    // interior, inclusive endpoints
				{keys[10] + 1, keys[10]}, // empty (from > to behaves as empty)
				{keys[0], keys[0]},       // single key
				{2_000_000, 3_000_000},   // beyond all keys
			}
			for _, rg := range ranges {
				from, to := rg[0], rg[1]
				var want []uint64
				for _, k := range keys {
					if k >= from && k <= to {
						want = append(want, k)
					}
				}
				var got []uint64
				err := r.Scan(sys, from, to, func(k uint64, v []byte) bool {
					got = append(got, k)
					if string(v) != string(oracle[k]) {
						t.Fatalf("scan value mismatch at %d", k)
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("range [%d,%d]: got %d keys, want %d", from, to, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("range [%d,%d]: position %d = %d, want %d (order violated?)",
							from, to, i, got[i], want[i])
					}
				}
			}

			// Early stop after 5 results.
			n := 0
			if err := r.Scan(sys, 0, ^uint64(0), func(k uint64, v []byte) bool {
				n++
				return n < 5
			}); err != nil {
				t.Fatal(err)
			}
			if n != 5 {
				t.Fatalf("early stop visited %d", n)
			}
		})
	}
}
