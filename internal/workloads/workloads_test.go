package workloads_test

import (
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
	"github.com/persistmem/slpmt/internal/ycsb"
)

// TestAllWorkloadsAllSchemes inserts a ycsb-load into every structure
// under every scheme and verifies the structure's invariants and full
// contents afterwards.
func TestAllWorkloadsAllSchemes(t *testing.T) {
	for _, wname := range workloads.Names() {
		for _, scheme := range slpmt.Schemes() {
			t.Run(wname+"/"+scheme, func(t *testing.T) {
				w := workloads.MustNew(wname)
				sys := slpmt.New(slpmt.Options{
					Scheme:             scheme,
					ComputeCyclesPerOp: w.ComputeCost(),
				})
				if err := w.Setup(sys); err != nil {
					t.Fatalf("setup: %v", err)
				}
				load := ycsb.Load{N: 300, ValueSize: 64}
				err := load.Each(func(k uint64, v []byte) error {
					return w.Insert(sys, k, v)
				})
				if err != nil {
					t.Fatalf("insert: %v", err)
				}
				sys.DrainLazy()
				if err := w.Check(sys, load.Oracle()); err != nil {
					t.Fatalf("check: %v", err)
				}
				c := sys.Stats()
				if c.TxCommits == 0 || c.PMWriteBytesData == 0 {
					t.Fatalf("suspicious stats: commits=%d data=%d", c.TxCommits, c.PMWriteBytesData)
				}
			})
		}
	}
}

// TestDurableImageMatchesOracle verifies that after a graceful run plus
// lazy drain, the durable image alone (no volatile state) passes every
// structure's durable checker — i.e. commits really persist.
func TestDurableImageMatchesOracle(t *testing.T) {
	for _, wname := range workloads.Names() {
		t.Run(wname, func(t *testing.T) {
			w := workloads.MustNew(wname)
			rec, ok := w.(workloads.Recoverable)
			if !ok {
				t.Fatalf("%s does not implement Recoverable", wname)
			}
			sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
			if err := w.Setup(sys); err != nil {
				t.Fatalf("setup: %v", err)
			}
			load := ycsb.Load{N: 200, ValueSize: 48}
			if err := load.Each(func(k uint64, v []byte) error {
				return w.Insert(sys, k, v)
			}); err != nil {
				t.Fatalf("insert: %v", err)
			}
			sys.DrainLazy()
			img := sys.Mach.Crash()
			// A clean crash point (between transactions): recovery
			// should find nothing to repair but must leave a valid
			// structure.
			if err := rec.Recover(img); err != nil {
				t.Fatalf("recover: %v", err)
			}
			if err := rec.CheckDurable(img, load.Oracle()); err != nil {
				t.Fatalf("durable check: %v", err)
			}
			if _, err := rec.Reach(img); err != nil {
				t.Fatalf("reach: %v", err)
			}
		})
	}
}
