package hashtable

import (
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

func build(t *testing.T, n int) (*Table, *slpmt.System) {
	t.Helper()
	tb := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := tb.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		k := uint64(i) * 2654435761
		if err := tb.Insert(sys, k, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	return tb, sys
}

// TestRehashTriggersAtLoadFactor: the table doubles when it exceeds
// three records per bucket on average (Table II).
func TestRehashTriggersAtLoadFactor(t *testing.T) {
	tb, sys := build(t, 3*initialBuckets) // exactly at the threshold
	var nb uint64
	sys.View(func(tx *slpmt.Tx) { nb = tx.Root(workloads.RootMeta) })
	if nb != initialBuckets {
		t.Fatalf("resized too early: %d buckets", nb)
	}
	k := uint64(999999)
	if err := tb.Insert(sys, k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	sys.View(func(tx *slpmt.Tx) { nb = tx.Root(workloads.RootMeta) })
	if nb != 2*initialBuckets {
		t.Fatalf("did not resize: %d buckets", nb)
	}
}

// TestRehashMoveProtocol: the resize publishes RootMoveSrc and the next
// transaction clears it, forcing the lazy copies durable first.
func TestRehashMoveProtocol(t *testing.T) {
	tb, sys := build(t, 3*initialBuckets+1) // one past threshold: resized
	// Observe the engine state BEFORE reading any root: even a load of
	// the root line counts as touching the rehash transaction's working
	// set and would force the lazy drain (the §III-C3 TxID check).
	if sys.Eng.RetainedLazyLines() == 0 {
		t.Fatal("no lazy copies retained after rehash")
	}
	if sys.Stats().LazyLinesDeferred == 0 {
		t.Fatal("rehash deferred nothing")
	}
	var src uint64
	sys.View(func(tx *slpmt.Tx) { src = tx.Root(workloads.RootMoveSrc) })
	if src == 0 {
		t.Fatal("RootMoveSrc not published after rehash")
	}
	// That very read of the root line already forced the copies durable
	// (conservative hardware); the release transaction still clears the
	// recovery pointer.
	if err := tb.Insert(sys, 424242, []byte("v")); err != nil {
		t.Fatal(err)
	}
	sys.View(func(tx *slpmt.Tx) { src = tx.Root(workloads.RootMoveSrc) })
	if src != 0 {
		t.Fatal("RootMoveSrc not cleared by the next transaction")
	}
	c := sys.Stats()
	if c.LazyLinePersists+c.LazyLinesElided < c.LazyLinesDeferred {
		t.Error("deferred lines unaccounted for")
	}
}

func TestHashDistribution(t *testing.T) {
	seen := map[uint64]int{}
	for i := uint64(0); i < 4096; i++ {
		seen[hash(i)%64]++
	}
	for b, c := range seen {
		if c < 20 || c > 160 {
			t.Fatalf("bucket %d grossly unbalanced: %d", b, c)
		}
	}
}

func TestUpdateChangesSize(t *testing.T) {
	tb, sys := build(t, 10)
	k := uint64(1) * 2654435761
	if err := tb.UpdateValue(sys, k, []byte("a-much-longer-replacement-value")); err != nil {
		t.Fatal(err)
	}
	got, ok := tb.Get(sys, k)
	if !ok || string(got) != "a-much-longer-replacement-value" {
		t.Fatalf("got %q", got)
	}
}

func TestDeleteMissingKey(t *testing.T) {
	tb, sys := build(t, 5)
	if err := tb.Delete(sys, 123456789); err == nil {
		t.Fatal("delete of missing key succeeded")
	}
	// The failed transaction aborted; the table is intact.
	oracle := map[uint64][]byte{}
	for i := 1; i <= 5; i++ {
		oracle[uint64(i)*2654435761] = []byte("0123456789abcdef")
	}
	if err := tb.Check(sys, oracle); err != nil {
		t.Fatal(err)
	}
}
