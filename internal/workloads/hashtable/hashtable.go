// Package hashtable implements the paper's chained hash table kernel
// (Table II): it resizes when the table averages three records per
// bucket.
//
// Annotation discipline (§IV):
//
//   - all fields of a freshly allocated node are log-free (Pattern 1);
//   - the rehash moves records by copying every node into a new chain
//     without modifying the originals, so the copies and the new bucket
//     array are lazily persistent (Pattern 2) — the pattern the paper
//     singles out as the hashtable's main lazy-persistency win (§VI-D1);
//   - bucket-head link updates and the count are plain logged stores.
//
// The rehash is guarded by the RootMoveSrc protocol: the old array
// pointer is published (logged) by the resize transaction and cleared
// (logged) by the next transaction before the old nodes may be freed.
// Clearing it stores to a line in the resize transaction's working set,
// so the hardware's signature check forces the lazy copies durable
// first — recovery can therefore always rebuild the new table from the
// old chains while RootMoveSrc is set.
package hashtable

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Node layout.
const (
	offKey  = 0
	offNext = 8
	offVLen = 16
	offVal  = 24
)

const initialBuckets = 8

// maxLoad is the resize threshold: average records per bucket.
const maxLoad = 3

func init() {
	workloads.Register("hashtable", func() workloads.Workload { return New() })
}

// Table is the chained hash table workload.
type Table struct {
	// stash holds the pre-rehash nodes and array awaiting release; they
	// are freed (and RootMoveSrc cleared) at the start of the next
	// transaction.
	stashNodes []slpmt.Addr
	stashArr   slpmt.Addr
	stashArrSz uint64
}

// New returns a fresh hashtable workload.
func New() *Table { return &Table{} }

// Name implements workloads.Workload.
func (t *Table) Name() string { return "hashtable" }

// ComputeCost implements workloads.Workload.
func (t *Table) ComputeCost() uint64 { return 1 }

func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// Setup implements workloads.Workload.
func (t *Table) Setup(sys *slpmt.System) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		arr := tx.Alloc(initialBuckets * 8)
		zeros := make([]byte, initialBuckets*8)
		tx.StoreT(arr, zeros, slpmt.LogFree)
		tx.SetRoot(workloads.RootMain, uint64(arr))
		tx.SetRoot(workloads.RootMeta, initialBuckets)
		tx.SetRoot(workloads.RootCount, 0)
		tx.SetRoot(workloads.RootMoveSrc, 0)
		tx.SetRoot(workloads.RootAux, 0)
		return nil
	})
}

// Insert implements workloads.Workload: one durable transaction adding
// the pair and, at the load threshold, rehashing into a doubled table.
func (t *Table) Insert(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		t.releaseStash(tx)

		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		nb := tx.Root(workloads.RootMeta)
		count := tx.Root(workloads.RootCount)

		b := hash(key) % nb
		head := tx.LoadU64(arr + slpmt.Addr(8*b))

		node := tx.Alloc(offVal + uint64(len(value)))
		tx.StoreTU64(node+offKey, key, slpmt.LogFree)
		tx.StoreTU64(node+offNext, head, slpmt.LogFree)
		tx.StoreTU64(node+offVLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreT(node+offVal, value, slpmt.LogFree)

		tx.StoreU64(arr+slpmt.Addr(8*b), uint64(node)) // link: logged
		count++
		tx.SetRoot(workloads.RootCount, count)

		if count > maxLoad*nb {
			t.rehash(tx, arr, nb)
		}
		return nil
	})
}

// releaseStash frees the previous rehash's source nodes and clears the
// recovery pointer. The logged store to RootMoveSrc hits the resize
// transaction's working-set signature, forcing the lazy copies to PM
// before the sources become reusable.
func (t *Table) releaseStash(tx *slpmt.Tx) {
	if t.stashArr == 0 {
		return
	}
	tx.SetRoot(workloads.RootMoveSrc, 0)
	tx.SetRoot(workloads.RootAux, 0)
	for _, n := range t.stashNodes {
		tx.Free(n)
	}
	tx.Free(t.stashArr)
	t.stashNodes = t.stashNodes[:0]
	t.stashArr = 0
	t.stashArrSz = 0
}

// rehash doubles the table by copying every node into new chains
// (Pattern 2 lazy moves), keeping the old array and nodes intact for
// crash recovery.
func (t *Table) rehash(tx *slpmt.Tx, oldArr slpmt.Addr, oldN uint64) {
	newN := oldN * 2
	newArr := tx.Alloc(newN * 8)
	zeros := make([]byte, newN*8)
	tx.StoreT(newArr, zeros, slpmt.LazyLogFree)

	for b := uint64(0); b < oldN; b++ {
		n := slpmt.Addr(tx.LoadU64(oldArr + slpmt.Addr(8*b)))
		for n != 0 {
			key := tx.LoadU64(n + offKey)
			vlen := tx.LoadU64(n + offVLen)
			next := slpmt.Addr(tx.LoadU64(n + offNext))

			cp := tx.Alloc(offVal + vlen)
			// Move without modifying the source: lazily persistent.
			tx.CopyU64(cp+offKey, n+offKey, slpmt.LazyLogFree)
			tx.CopyU64(cp+offVLen, n+offVLen, slpmt.LazyLogFree)
			tx.Copy(cp+offVal, n+offVal, int(vlen), slpmt.LazyLogFree)
			nb := hash(key) % newN
			headAddr := newArr + slpmt.Addr(8*nb)
			tx.CopyU64(cp+offNext, headAddr, slpmt.LazyLogFree)
			tx.StoreTU64(headAddr, uint64(cp), slpmt.LazyLogFree)

			t.stashNodes = append(t.stashNodes, n)
			n = next
		}
	}
	t.stashArr = oldArr
	t.stashArrSz = oldN * 8

	// Publish the new table and the recovery pointer (logged).
	tx.SetRoot(workloads.RootMain, uint64(newArr))
	tx.SetRoot(workloads.RootMeta, newN)
	tx.SetRoot(workloads.RootMoveSrc, uint64(oldArr))
	tx.SetRoot(workloads.RootAux, oldN)
}

// Get implements workloads.Workload.
func (t *Table) Get(sys *slpmt.System, key uint64) (val []byte, ok bool) {
	sys.View(func(tx *slpmt.Tx) {
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		nb := tx.Root(workloads.RootMeta)
		n := slpmt.Addr(tx.LoadU64(arr + slpmt.Addr(8*(hash(key)%nb))))
		for n != 0 {
			if tx.LoadU64(n+offKey) == key {
				vlen := tx.LoadU64(n + offVLen)
				val = make([]byte, vlen)
				tx.Load(n+offVal, val)
				ok = true
				return
			}
			n = slpmt.Addr(tx.LoadU64(n + offNext))
		}
	})
	return val, ok
}

// Check implements workloads.Workload.
func (t *Table) Check(sys *slpmt.System, oracle map[uint64][]byte) error {
	var err error
	sys.View(func(tx *slpmt.Tx) {
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		nb := tx.Root(workloads.RootMeta)
		count := tx.Root(workloads.RootCount)
		seen := uint64(0)
		for b := uint64(0); b < nb; b++ {
			n := slpmt.Addr(tx.LoadU64(arr + slpmt.Addr(8*b)))
			for n != 0 {
				key := tx.LoadU64(n + offKey)
				if hash(key)%nb != b {
					err = fmt.Errorf("hashtable: key %d in wrong bucket %d", key, b)
					return
				}
				if _, inOracle := oracle[key]; !inOracle {
					err = fmt.Errorf("hashtable: unexpected key %d", key)
					return
				}
				seen++
				n = slpmt.Addr(tx.LoadU64(n + offNext))
			}
		}
		if seen != uint64(len(oracle)) || count != uint64(len(oracle)) {
			err = fmt.Errorf("hashtable: count mismatch: walked %d, count %d, oracle %d",
				seen, count, len(oracle))
		}
	})
	if err != nil {
		return err
	}
	return workloads.CheckOracle(sys, t, oracle)
}

// --- Recovery over the durable image -------------------------------

func rootAddr(img *pmem.Image, slot int) mem.Addr {
	l := mem.DefaultLayout(uint64(len(img.Data)))
	return l.RootBase + mem.Addr(slot*8)
}

func readRoot(img *pmem.Image, slot int) uint64 { return img.ReadU64(rootAddr(img, slot)) }

func writeRoot(img *pmem.Image, slot int, v uint64) { img.WriteU64(rootAddr(img, slot), v) }

// Recover implements workloads.Recoverable: if a rehash was in flight
// (RootMoveSrc set), rebuild the new table by relinking the intact old
// nodes; the lazy copies become garbage for the collector.
func (t *Table) Recover(img *pmem.Image) error {
	oldArr := mem.Addr(readRoot(img, workloads.RootMoveSrc))
	if oldArr == 0 {
		return nil
	}
	oldN := readRoot(img, workloads.RootAux)
	newArr := mem.Addr(readRoot(img, workloads.RootMain))
	newN := readRoot(img, workloads.RootMeta)
	if newN == 0 || oldN == 0 || newArr == 0 {
		return fmt.Errorf("hashtable recover: inconsistent roots (old=%#x/%d new=%#x/%d)",
			oldArr, oldN, newArr, newN)
	}
	// Wipe the new array, then re-execute the move by relinking the old
	// nodes directly (deterministic, idempotent).
	for b := uint64(0); b < newN; b++ {
		img.WriteU64(newArr+mem.Addr(8*b), 0)
	}
	for b := uint64(0); b < oldN; b++ {
		n := mem.Addr(img.ReadU64(oldArr + mem.Addr(8*b)))
		for n != 0 {
			next := mem.Addr(img.ReadU64(n + offNext))
			key := img.ReadU64(n + offKey)
			nb := hash(key) % newN
			head := img.ReadU64(newArr + mem.Addr(8*nb))
			img.WriteU64(n+offNext, head)
			img.WriteU64(newArr+mem.Addr(8*nb), uint64(n))
			n = next
		}
	}
	writeRoot(img, workloads.RootMoveSrc, 0)
	writeRoot(img, workloads.RootAux, 0)
	return nil
}

// Reach implements workloads.Recoverable.
func (t *Table) Reach(img *pmem.Image) ([]txheap.Extent, error) {
	arr := mem.Addr(readRoot(img, workloads.RootMain))
	nb := readRoot(img, workloads.RootMeta)
	if arr == 0 || nb == 0 {
		return nil, fmt.Errorf("hashtable reach: no table")
	}
	out := []txheap.Extent{{Addr: arr, Size: nb * 8}}
	for b := uint64(0); b < nb; b++ {
		n := mem.Addr(img.ReadU64(arr + mem.Addr(8*b)))
		for n != 0 {
			vlen := img.ReadU64(n + offVLen)
			out = append(out, txheap.Extent{Addr: n, Size: offVal + vlen})
			n = mem.Addr(img.ReadU64(n + offNext))
		}
	}
	return out, nil
}

// CheckDurable implements workloads.Recoverable.
func (t *Table) CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error {
	arr := mem.Addr(readRoot(img, workloads.RootMain))
	nb := readRoot(img, workloads.RootMeta)
	count := readRoot(img, workloads.RootCount)
	if nb == 0 {
		return fmt.Errorf("hashtable durable: zero buckets")
	}
	seen := map[uint64]bool{}
	for b := uint64(0); b < nb; b++ {
		n := mem.Addr(img.ReadU64(arr + mem.Addr(8*b)))
		for n != 0 {
			key := img.ReadU64(n + offKey)
			if hash(key)%nb != b {
				return fmt.Errorf("hashtable durable: key %d in wrong bucket", key)
			}
			want, inOracle := oracle[key]
			if !inOracle {
				return fmt.Errorf("hashtable durable: unexpected key %d", key)
			}
			vlen := img.ReadU64(n + offVLen)
			if vlen != uint64(len(want)) {
				return fmt.Errorf("hashtable durable: key %d vlen %d, want %d", key, vlen, len(want))
			}
			got := make([]byte, vlen)
			img.Read(n+offVal, got)
			if string(got) != string(want) {
				return fmt.Errorf("hashtable durable: key %d value mismatch", key)
			}
			if seen[key] {
				return fmt.Errorf("hashtable durable: duplicate key %d", key)
			}
			seen[key] = true
			n = mem.Addr(img.ReadU64(n + offNext))
		}
	}
	if len(seen) != len(oracle) {
		return fmt.Errorf("hashtable durable: %d keys, oracle %d", len(seen), len(oracle))
	}
	if count != uint64(len(oracle)) {
		return fmt.Errorf("hashtable durable: count %d, oracle %d", count, len(oracle))
	}
	return nil
}
