package hashtable

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// UpdateValue implements workloads.Mutable. Same-size updates overwrite
// the value in place with a logged store; size-changing updates splice
// in a fresh replacement node (log-free fields, one logged link).
func (t *Table) UpdateValue(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		t.releaseStash(tx)
		prevAddr, n, err := t.find(tx, key)
		if err != nil {
			return err
		}
		vlen := tx.LoadU64(n + offVLen)
		if vlen == uint64(len(value)) {
			tx.Store(n+offVal, value)
			return nil
		}
		// Replacement node (Pattern 1: all log-free).
		repl := tx.Alloc(offVal + uint64(len(value)))
		tx.StoreTU64(repl+offKey, key, slpmt.LogFree)
		tx.CopyU64(repl+offNext, n+offNext, slpmt.LogFree)
		tx.StoreTU64(repl+offVLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreT(repl+offVal, value, slpmt.LogFree)
		tx.StoreU64(prevAddr, uint64(repl)) // logged splice
		tx.Free(n)
		return nil
	})
}

// Delete implements workloads.Mutable: one logged unlink, the node's
// memory quarantined until commit.
func (t *Table) Delete(sys *slpmt.System, key uint64) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		t.releaseStash(tx)
		prevAddr, n, err := t.find(tx, key)
		if err != nil {
			return err
		}
		next := tx.LoadU64(n + offNext)
		tx.StoreU64(prevAddr, next)
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)-1)
		tx.Free(n)
		return nil
	})
}

// find locates key's node and the address of the pointer that links it
// (bucket-head slot or predecessor's next field).
func (t *Table) find(tx *slpmt.Tx, key uint64) (prevAddr, node slpmt.Addr, err error) {
	arr := slpmt.Addr(tx.Root(workloads.RootMain))
	nb := tx.Root(workloads.RootMeta)
	prevAddr = arr + slpmt.Addr(8*(hash(key)%nb))
	n := slpmt.Addr(tx.LoadU64(prevAddr))
	for n != 0 {
		if tx.LoadU64(n+offKey) == key {
			return prevAddr, n, nil
		}
		prevAddr = n + offNext
		n = slpmt.Addr(tx.LoadU64(prevAddr))
	}
	return 0, 0, fmt.Errorf("hashtable: key %d not found", key)
}
