package workloads_test

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
	_ "github.com/persistmem/slpmt/internal/workloads/all"
)

// TestMixedOperations drives every Mutable workload with a random
// insert/update/delete/get mix under SLPMT and verifies the structure's
// invariants and full contents afterwards, volatile and durable.
func TestMixedOperations(t *testing.T) {
	for _, wname := range workloads.Names() {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			w := workloads.MustNew(wname)
			m, ok := w.(workloads.Mutable)
			if !ok {
				t.Fatalf("%s does not implement Mutable", wname)
			}
			sys := slpmt.New(slpmt.Options{Scheme: "SLPMT", ComputeCyclesPerOp: w.ComputeCost()})
			if err := w.Setup(sys); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(int64(len(wname)) * 7919))
			oracle := map[uint64][]byte{}
			var keys []uint64
			deletesOK := true

			val := func(k, gen uint64) []byte {
				v := make([]byte, 48)
				for i := range v {
					v[i] = byte(k>>uint(8*(i%8))) ^ byte(gen)
				}
				return v
			}

			for op := 0; op < 800; op++ {
				switch {
				case len(keys) == 0 || rng.Intn(100) < 45:
					k := rng.Uint64()%1_000_000 + 1
					if _, dup := oracle[k]; dup {
						continue
					}
					if err := w.Insert(sys, k, val(k, 0)); err != nil {
						t.Fatalf("insert %d: %v", k, err)
					}
					oracle[k] = val(k, 0)
					keys = append(keys, k)
				case rng.Intn(100) < 55:
					k := keys[rng.Intn(len(keys))]
					nv := val(k, uint64(op))
					if err := m.UpdateValue(sys, k, nv); err != nil {
						t.Fatalf("update %d: %v", k, err)
					}
					oracle[k] = nv
				default:
					if !deletesOK {
						continue
					}
					i := rng.Intn(len(keys))
					k := keys[i]
					err := m.Delete(sys, k)
					if errors.Is(err, workloads.ErrUnsupported) {
						deletesOK = false
						continue
					}
					if err != nil {
						t.Fatalf("delete %d: %v", k, err)
					}
					delete(oracle, k)
					keys = append(keys[:i], keys[i+1:]...)
				}
				// Spot-check a random key every few operations.
				if op%37 == 0 && len(keys) > 0 {
					k := keys[rng.Intn(len(keys))]
					got, found := w.Get(sys, k)
					if !found || string(got) != string(oracle[k]) {
						t.Fatalf("op %d: get %d mismatch (found=%v)", op, k, found)
					}
				}
			}

			sys.DrainLazy()
			if err := w.Check(sys, oracle); err != nil {
				t.Fatalf("volatile check: %v", err)
			}
			rec, ok := w.(workloads.Recoverable)
			if !ok {
				return
			}
			img := sys.Mach.Crash()
			if err := rec.Recover(img); err != nil {
				t.Fatalf("recover: %v", err)
			}
			if err := rec.CheckDurable(img, oracle); err != nil {
				t.Fatalf("durable check: %v", err)
			}
			if _, err := rec.Reach(img); err != nil {
				t.Fatalf("reach: %v", err)
			}
		})
	}
}

// TestDeleteEverything empties the structures that support removal and
// verifies the empty state is consistent and the memory reclaimable.
func TestDeleteEverything(t *testing.T) {
	for _, wname := range []string{"hashtable", "heap", "avl", "dlist", "kv-ctree", "kv-rtree"} {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			w := workloads.MustNew(wname)
			m := w.(workloads.Mutable)
			sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
			if err := w.Setup(sys); err != nil {
				t.Fatal(err)
			}
			var keys []uint64
			for i := uint64(1); i <= 200; i++ {
				k := i*2654435761 + 1
				if err := w.Insert(sys, k, []byte("valuevalue")); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}
			for _, k := range keys {
				if err := m.Delete(sys, k); err != nil {
					t.Fatalf("delete %d: %v", k, err)
				}
			}
			sys.DrainLazy()
			if err := w.Check(sys, map[uint64][]byte{}); err != nil {
				t.Fatalf("empty check: %v", err)
			}
			if _, found := w.Get(sys, keys[0]); found {
				t.Fatal("deleted key still found")
			}
			// Deleted memory is reusable: the heap's live bytes shrink.
			_, frees, _, _ := sys.Heap.Stats()
			if frees == 0 {
				t.Error("no frees recorded")
			}
		})
	}
}

// TestUpdateUnderAllSchemes: value updates are durable under every
// hardware design.
func TestUpdateUnderAllSchemes(t *testing.T) {
	for _, scheme := range slpmt.Schemes() {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			w := workloads.MustNew("kv-btree")
			m := w.(workloads.Mutable)
			sys := slpmt.New(slpmt.Options{Scheme: scheme})
			if err := w.Setup(sys); err != nil {
				t.Fatal(err)
			}
			if err := w.Insert(sys, 42, []byte("old-old-old!")); err != nil {
				t.Fatal(err)
			}
			if err := m.UpdateValue(sys, 42, []byte("new-new-new!")); err != nil {
				t.Fatal(err)
			}
			sys.DrainLazy()
			got, ok := w.Get(sys, 42)
			if !ok || string(got) != "new-new-new!" {
				t.Fatalf("got %q ok=%v", got, ok)
			}
		})
	}
}
