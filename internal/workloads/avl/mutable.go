package avl

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// UpdateValue implements workloads.Mutable: same-size updates overwrite
// the inline value (logged); size-changing updates splice in a fresh
// replacement node (log-free fields, one logged link).
func (t *Tree) UpdateValue(sys *slpmt.System, key uint64, value []byte) error {
	rootSlot := slpmt.Addr(sys.Layout().RootBase) + 8*workloads.RootMain
	return sys.Update(func(tx *slpmt.Tx) error {
		parentLink := rootSlot
		n := slpmt.Addr(tx.LoadU64(parentLink))
		for n != 0 {
			k := tx.LoadU64(n + offKey)
			switch {
			case key == k:
				if tx.LoadU64(n+offVLen) == uint64(len(value)) {
					tx.Store(n+offVal, value)
					return nil
				}
				repl := tx.Alloc(offVal + uint64(len(value)))
				tx.StoreTU64(repl+offKey, key, slpmt.LogFree)
				tx.StoreTU64(repl+offVLen, uint64(len(value)), slpmt.LogFree)
				tx.CopyU64(repl+offLeft, n+offLeft, slpmt.LogFree)
				tx.CopyU64(repl+offRight, n+offRight, slpmt.LogFree)
				tx.CopyU64(repl+offHeight, n+offHeight, slpmt.LogFree)
				tx.StoreT(repl+offVal, value, slpmt.LogFree)
				tx.StoreU64(parentLink, uint64(repl))
				tx.Free(n)
				return nil
			case key < k:
				parentLink = n + offLeft
			default:
				parentLink = n + offRight
			}
			n = slpmt.Addr(tx.LoadU64(parentLink))
		}
		return fmt.Errorf("avl: key %d not found", key)
	})
}

// Delete implements workloads.Mutable: recursive removal with pointer
// splicing (the successor node is relinked, payloads never move) and
// AVL rebalancing on the way up.
func (t *Tree) Delete(sys *slpmt.System, key uint64) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		root := slpmt.Addr(tx.Root(workloads.RootMain))
		newRoot, removed, err := t.remove(tx, root, key)
		if err != nil {
			return err
		}
		if newRoot != root {
			tx.SetRoot(workloads.RootMain, uint64(newRoot))
		}
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)-1)
		tx.Free(removed)
		return nil
	})
}

// remove deletes key from the subtree at n, returning the new subtree
// root and the detached node (freed by the caller after commit).
func (t *Tree) remove(tx *slpmt.Tx, n slpmt.Addr, key uint64) (slpmt.Addr, slpmt.Addr, error) {
	if n == 0 {
		return 0, 0, fmt.Errorf("avl: key %d not found", key)
	}
	k := tx.LoadU64(n + offKey)
	switch {
	case key < k:
		child, removed, err := t.remove(tx, slpmt.Addr(tx.LoadU64(n+offLeft)), key)
		if err != nil {
			return 0, 0, err
		}
		if uint64(child) != tx.LoadU64(n+offLeft) {
			tx.StoreU64(n+offLeft, uint64(child))
		}
		return t.rebalance(tx, n), removed, nil
	case key > k:
		child, removed, err := t.remove(tx, slpmt.Addr(tx.LoadU64(n+offRight)), key)
		if err != nil {
			return 0, 0, err
		}
		if uint64(child) != tx.LoadU64(n+offRight) {
			tx.StoreU64(n+offRight, uint64(child))
		}
		return t.rebalance(tx, n), removed, nil
	}
	// Found n.
	l := slpmt.Addr(tx.LoadU64(n + offLeft))
	r := slpmt.Addr(tx.LoadU64(n + offRight))
	switch {
	case l == 0:
		return r, n, nil
	case r == 0:
		return l, n, nil
	}
	// Two children: detach the successor (min of right subtree) and
	// splice it into n's position.
	newRight, succ := t.detachMin(tx, r)
	tx.StoreU64(succ+offLeft, uint64(l))
	tx.StoreU64(succ+offRight, uint64(newRight))
	fixHeight(tx, succ)
	return t.rebalance(tx, succ), n, nil
}

// detachMin removes and returns the minimum node of the subtree.
func (t *Tree) detachMin(tx *slpmt.Tx, n slpmt.Addr) (newRoot, min slpmt.Addr) {
	l := slpmt.Addr(tx.LoadU64(n + offLeft))
	if l == 0 {
		return slpmt.Addr(tx.LoadU64(n + offRight)), n
	}
	newLeft, min := t.detachMin(tx, l)
	if uint64(newLeft) != tx.LoadU64(n+offLeft) {
		tx.StoreU64(n+offLeft, uint64(newLeft))
	}
	return t.rebalance(tx, n), min
}

// rebalance restores the AVL invariant at n after a removal below it.
func (t *Tree) rebalance(tx *slpmt.Tx, n slpmt.Addr) slpmt.Addr {
	fixHeight(tx, n)
	b := balance(tx, n)
	switch {
	case b > 1:
		l := slpmt.Addr(tx.LoadU64(n + offLeft))
		if balance(tx, l) < 0 {
			nl := rotateLeft(tx, l)
			tx.StoreU64(n+offLeft, uint64(nl))
		}
		return rotateRight(tx, n)
	case b < -1:
		r := slpmt.Addr(tx.LoadU64(n + offRight))
		if balance(tx, r) > 0 {
			nr := rotateRight(tx, r)
			tx.StoreU64(n+offRight, uint64(nr))
		}
		return rotateLeft(tx, n)
	}
	return n
}
