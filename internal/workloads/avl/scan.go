package avl

import (
	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Scan implements workloads.Ranger: an in-order walk pruned to
// [from, to].
func (t *Tree) Scan(sys *slpmt.System, from, to uint64, fn func(uint64, []byte) bool) error {
	stopped := false
	sys.View(func(tx *slpmt.Tx) {
		var walk func(n slpmt.Addr)
		walk = func(n slpmt.Addr) {
			if n == 0 || stopped {
				return
			}
			k := tx.LoadU64(n + offKey)
			if k > from {
				walk(slpmt.Addr(tx.LoadU64(n + offLeft)))
			}
			if stopped {
				return
			}
			if k >= from && k <= to {
				vlen := tx.LoadU64(n + offVLen)
				v := make([]byte, vlen)
				tx.Load(n+offVal, v)
				if !fn(k, v) {
					stopped = true
					return
				}
			}
			if k < to {
				walk(slpmt.Addr(tx.LoadU64(n + offRight)))
			}
		}
		walk(slpmt.Addr(tx.Root(workloads.RootMain)))
	})
	return nil
}
