// Package avl implements the paper's AVL tree kernel (Table II): a
// self-balancing binary tree without parent pointers.
//
// Annotation discipline (§IV): the AVL tree offers the fewest selective
// logging opportunities of the kernels — only the freshly allocated
// node's fields are log-free (Pattern 1); every rotation, child-link and
// height update on existing nodes is a plain logged store, because
// heights and links are overwritten in place and are not derivable
// without a walk the recovery contract does not assume.
package avl

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Node layout.
const (
	offKey    = 0
	offVLen   = 8
	offLeft   = 16
	offRight  = 24
	offHeight = 32
	offVal    = 40
)

func init() {
	workloads.Register("avl", func() workloads.Workload { return New() })
}

// Tree is the AVL workload.
type Tree struct{}

// New returns a fresh AVL workload.
func New() *Tree { return &Tree{} }

// Name implements workloads.Workload.
func (t *Tree) Name() string { return "avl" }

// ComputeCost implements workloads.Workload.
func (t *Tree) ComputeCost() uint64 { return 2 }

// Setup implements workloads.Workload.
func (t *Tree) Setup(sys *slpmt.System) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		tx.SetRoot(workloads.RootMain, 0)
		tx.SetRoot(workloads.RootCount, 0)
		return nil
	})
}

func height(tx *slpmt.Tx, n slpmt.Addr) uint64 {
	if n == 0 {
		return 0
	}
	return tx.LoadU64(n + offHeight)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// fixHeight recomputes a node's height, storing only on change (plain
// logged store).
func fixHeight(tx *slpmt.Tx, n slpmt.Addr) {
	h := 1 + maxU(height(tx, slpmt.Addr(tx.LoadU64(n+offLeft))),
		height(tx, slpmt.Addr(tx.LoadU64(n+offRight))))
	if tx.LoadU64(n+offHeight) != h {
		tx.StoreU64(n+offHeight, h)
	}
}

func balance(tx *slpmt.Tx, n slpmt.Addr) int64 {
	return int64(height(tx, slpmt.Addr(tx.LoadU64(n+offLeft)))) -
		int64(height(tx, slpmt.Addr(tx.LoadU64(n+offRight))))
}

// rotateRight returns the new subtree root.
func rotateRight(tx *slpmt.Tx, y slpmt.Addr) slpmt.Addr {
	x := slpmt.Addr(tx.LoadU64(y + offLeft))
	t2 := tx.LoadU64(x + offRight)
	tx.StoreU64(y+offLeft, t2)
	tx.StoreU64(x+offRight, uint64(y))
	fixHeight(tx, y)
	fixHeight(tx, x)
	return x
}

// rotateLeft returns the new subtree root.
func rotateLeft(tx *slpmt.Tx, x slpmt.Addr) slpmt.Addr {
	y := slpmt.Addr(tx.LoadU64(x + offRight))
	t2 := tx.LoadU64(y + offLeft)
	tx.StoreU64(x+offRight, t2)
	tx.StoreU64(y+offLeft, uint64(x))
	fixHeight(tx, x)
	fixHeight(tx, y)
	return y
}

// Insert implements workloads.Workload.
func (t *Tree) Insert(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		root := slpmt.Addr(tx.Root(workloads.RootMain))
		newRoot, err := t.insert(tx, root, key, value)
		if err != nil {
			return err
		}
		if newRoot != root {
			tx.SetRoot(workloads.RootMain, uint64(newRoot))
		}
		tx.SetRoot(workloads.RootCount, tx.Root(workloads.RootCount)+1)
		return nil
	})
}

func (t *Tree) insert(tx *slpmt.Tx, n slpmt.Addr, key uint64, value []byte) (slpmt.Addr, error) {
	if n == 0 {
		// Fresh node: all fields log-free (Pattern 1).
		fresh := tx.Alloc(offVal + uint64(len(value)))
		tx.StoreTU64(fresh+offKey, key, slpmt.LogFree)
		tx.StoreTU64(fresh+offVLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreTU64(fresh+offLeft, 0, slpmt.LogFree)
		tx.StoreTU64(fresh+offRight, 0, slpmt.LogFree)
		tx.StoreTU64(fresh+offHeight, 1, slpmt.LogFree)
		tx.StoreT(fresh+offVal, value, slpmt.LogFree)
		return fresh, nil
	}
	k := tx.LoadU64(n + offKey)
	switch {
	case key == k:
		return 0, fmt.Errorf("avl: duplicate key %d", key)
	case key < k:
		child, err := t.insert(tx, slpmt.Addr(tx.LoadU64(n+offLeft)), key, value)
		if err != nil {
			return 0, err
		}
		if uint64(child) != tx.LoadU64(n+offLeft) {
			tx.StoreU64(n+offLeft, uint64(child))
		}
	default:
		child, err := t.insert(tx, slpmt.Addr(tx.LoadU64(n+offRight)), key, value)
		if err != nil {
			return 0, err
		}
		if uint64(child) != tx.LoadU64(n+offRight) {
			tx.StoreU64(n+offRight, uint64(child))
		}
	}
	fixHeight(tx, n)
	b := balance(tx, n)
	switch {
	case b > 1:
		l := slpmt.Addr(tx.LoadU64(n + offLeft))
		if key > tx.LoadU64(l+offKey) {
			nl := rotateLeft(tx, l)
			tx.StoreU64(n+offLeft, uint64(nl))
		}
		return rotateRight(tx, n), nil
	case b < -1:
		r := slpmt.Addr(tx.LoadU64(n + offRight))
		if key < tx.LoadU64(r+offKey) {
			nr := rotateRight(tx, r)
			tx.StoreU64(n+offRight, uint64(nr))
		}
		return rotateLeft(tx, n), nil
	}
	return n, nil
}

// Get implements workloads.Workload.
func (t *Tree) Get(sys *slpmt.System, key uint64) (val []byte, ok bool) {
	sys.View(func(tx *slpmt.Tx) {
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			k := tx.LoadU64(n + offKey)
			switch {
			case key == k:
				vlen := tx.LoadU64(n + offVLen)
				val = make([]byte, vlen)
				tx.Load(n+offVal, val)
				ok = true
				return
			case key < k:
				n = slpmt.Addr(tx.LoadU64(n + offLeft))
			default:
				n = slpmt.Addr(tx.LoadU64(n + offRight))
			}
		}
	})
	return val, ok
}

// Check implements workloads.Workload: BST order, AVL balance, height
// consistency and the oracle.
func (t *Tree) Check(sys *slpmt.System, oracle map[uint64][]byte) error {
	var err error
	count := 0
	sys.View(func(tx *slpmt.Tx) {
		var walk func(n slpmt.Addr, lo, hi uint64) uint64
		walk = func(n slpmt.Addr, lo, hi uint64) uint64 {
			if n == 0 || err != nil {
				return 0
			}
			k := tx.LoadU64(n + offKey)
			if k <= lo || k >= hi {
				err = fmt.Errorf("avl: BST violation at key %d", k)
				return 0
			}
			count++
			hl := walk(slpmt.Addr(tx.LoadU64(n+offLeft)), lo, k)
			hr := walk(slpmt.Addr(tx.LoadU64(n+offRight)), k, hi)
			if err != nil {
				return 0
			}
			if d := int64(hl) - int64(hr); d > 1 || d < -1 {
				err = fmt.Errorf("avl: imbalance at key %d", k)
				return 0
			}
			h := 1 + maxU(hl, hr)
			if tx.LoadU64(n+offHeight) != h {
				err = fmt.Errorf("avl: stale height at key %d", k)
				return 0
			}
			return h
		}
		walk(slpmt.Addr(tx.Root(workloads.RootMain)), 0, ^uint64(0))
	})
	if err != nil {
		return err
	}
	if count != len(oracle) {
		return fmt.Errorf("avl: %d nodes, oracle %d", count, len(oracle))
	}
	return workloads.CheckOracle(sys, t, oracle)
}

// --- Recovery over the durable image -------------------------------

func readRoot(img *pmem.Image, slot int) uint64 {
	l := mem.DefaultLayout(uint64(len(img.Data)))
	return img.ReadU64(l.RootBase + mem.Addr(slot*8))
}

// Recover implements workloads.Recoverable. The AVL tree uses no lazy
// persistency and its log-free data is only ever in unreachable fresh
// nodes, so after the undo log is applied there is nothing to repair.
func (t *Tree) Recover(img *pmem.Image) error { return nil }

// Reach implements workloads.Recoverable.
func (t *Tree) Reach(img *pmem.Image) ([]txheap.Extent, error) {
	var out []txheap.Extent
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == 0 {
			return
		}
		vlen := img.ReadU64(n + offVLen)
		out = append(out, txheap.Extent{Addr: n, Size: offVal + vlen})
		walk(mem.Addr(img.ReadU64(n + offLeft)))
		walk(mem.Addr(img.ReadU64(n + offRight)))
	}
	walk(mem.Addr(readRoot(img, workloads.RootMain)))
	return out, nil
}

// CheckDurable implements workloads.Recoverable.
func (t *Tree) CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error {
	seen := 0
	var firstErr error
	var walk func(n mem.Addr, lo, hi uint64) uint64
	walk = func(n mem.Addr, lo, hi uint64) uint64 {
		if n == 0 || firstErr != nil {
			return 0
		}
		k := img.ReadU64(n + offKey)
		if k <= lo || k >= hi {
			firstErr = fmt.Errorf("avl durable: BST violation at %d", k)
			return 0
		}
		want, ok := oracle[k]
		if !ok {
			firstErr = fmt.Errorf("avl durable: unexpected key %d", k)
			return 0
		}
		vlen := img.ReadU64(n + offVLen)
		got := make([]byte, vlen)
		img.Read(n+offVal, got)
		if string(got) != string(want) {
			firstErr = fmt.Errorf("avl durable: value mismatch at %d", k)
			return 0
		}
		seen++
		hl := walk(mem.Addr(img.ReadU64(n+offLeft)), lo, k)
		hr := walk(mem.Addr(img.ReadU64(n+offRight)), k, hi)
		if firstErr != nil {
			return 0
		}
		if d := int64(hl) - int64(hr); d > 1 || d < -1 {
			firstErr = fmt.Errorf("avl durable: imbalance at %d", k)
			return 0
		}
		return 1 + maxU(hl, hr)
	}
	walk(mem.Addr(readRoot(img, workloads.RootMain)), 0, ^uint64(0))
	if firstErr != nil {
		return firstErr
	}
	if seen != len(oracle) {
		return fmt.Errorf("avl durable: %d keys, oracle %d", seen, len(oracle))
	}
	return nil
}
