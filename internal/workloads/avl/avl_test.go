package avl

import (
	"math/rand"
	"testing"

	"github.com/persistmem/slpmt"
)

func build(t *testing.T, keys []uint64) (*Tree, *slpmt.System) {
	t.Helper()
	tr := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := tr.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := tr.Insert(sys, k, []byte("avlvalue")); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	return tr, sys
}

func oracleFor(keys []uint64) map[uint64][]byte {
	o := map[uint64][]byte{}
	for _, k := range keys {
		o[k] = []byte("avlvalue")
	}
	return o
}

// TestRotationCases covers all four AVL rotation shapes explicitly.
func TestRotationCases(t *testing.T) {
	cases := map[string][]uint64{
		"LL": {30, 20, 10},
		"RR": {10, 20, 30},
		"LR": {30, 10, 20},
		"RL": {10, 30, 20},
	}
	for name, keys := range cases {
		t.Run(name, func(t *testing.T) {
			tr, sys := build(t, keys)
			if err := tr.Check(sys, oracleFor(keys)); err != nil {
				t.Fatal(err)
			}
			// All cases end with 20 at the root.
			sys.View(func(tx *slpmt.Tx) {
				root := slpmt.Addr(tx.Root(0))
				if k := tx.LoadU64(root + offKey); k != 20 {
					t.Errorf("root key = %d, want 20", k)
				}
			})
		})
	}
}

func TestSequentialAndRandom(t *testing.T) {
	seq := make([]uint64, 200)
	for i := range seq {
		seq[i] = uint64(i + 1)
	}
	tr, sys := build(t, seq)
	if err := tr.Check(sys, oracleFor(seq)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var rnd []uint64
	seen := map[uint64]bool{}
	for len(rnd) < 200 {
		k := rng.Uint64()%50000 + 1
		if !seen[k] {
			seen[k] = true
			rnd = append(rnd, k)
		}
	}
	tr2, sys2 := build(t, rnd)
	if err := tr2.Check(sys2, oracleFor(rnd)); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRebalances: deleting a whole flank forces rebalancing.
func TestDeleteRebalances(t *testing.T) {
	keys := make([]uint64, 63)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	tr, sys := build(t, keys)
	oracle := oracleFor(keys)
	// Remove all even keys, then the low half.
	for _, k := range keys {
		if k%2 == 0 || k < 16 {
			if err := tr.Delete(sys, k); err != nil {
				t.Fatalf("delete %d: %v", k, err)
			}
			delete(oracle, k)
		}
	}
	if err := tr.Check(sys, oracle); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteTwoChildrenSplice(t *testing.T) {
	// Delete internal nodes with two children (successor splice path).
	keys := []uint64{50, 25, 75, 12, 37, 62, 87, 31, 43}
	tr, sys := build(t, keys)
	oracle := oracleFor(keys)
	for _, k := range []uint64{25, 50} {
		if err := tr.Delete(sys, k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
		delete(oracle, k)
		if err := tr.Check(sys, oracle); err != nil {
			t.Fatalf("after deleting %d: %v", k, err)
		}
	}
}
