// Package workloads defines the benchmark interface the evaluation
// drives (Table II of the paper) and a registry of the six durable data
// structures: four STAMP-style kernels (hashtable, rbtree, heap, avl)
// and the PMDK-style key-value store with btree/ctree/rtree backends.
//
// Every workload is written against the public slpmt API with the
// paper's annotation discipline (§IV):
//
//   - stores into memory allocated by the current transaction are
//     log-free (Pattern 1);
//   - data moved without modifying the source is lazily persistent
//     (Pattern 2), guarded by the root-slot protocol described in the
//     structures' recovery code;
//   - everything else is a plain logged store.
//
// Workloads also implement the recovery side: a reachability walk over
// the durable image (for the post-crash heap rebuild / leak collection)
// and a structure-specific fix-up that repairs log-free and lazy data
// after the undo log has been applied.
package workloads

import (
	"errors"
	"fmt"
	"sort"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
)

// Workload is one durable data structure under test. Implementations
// hold only volatile bookkeeping; all durable state lives in the
// system's persistent memory, reachable from root slots.
type Workload interface {
	// Name returns the benchmark name used in reports.
	Name() string
	// Setup initializes an empty structure (runs transactions).
	Setup(sys *slpmt.System) error
	// Insert adds one key/value pair in one durable transaction.
	Insert(sys *slpmt.System, key uint64, value []byte) error
	// Get looks the key up through the volatile view.
	Get(sys *slpmt.System, key uint64) ([]byte, bool)
	// Check verifies the volatile structure against an oracle of every
	// inserted pair plus the structure's own invariants.
	Check(sys *slpmt.System, oracle map[uint64][]byte) error
	// ComputeCost is the workload's suggested compute-cycles-per-op
	// knob, modelling its non-memory work relative to the others.
	ComputeCost() uint64
}

// Recoverable is implemented by workloads that support the crash /
// recovery campaign.
type Recoverable interface {
	// Recover repairs the structure in a durable image after a crash:
	// the undo log has already been applied by the driver; Recover
	// fixes log-free and lazily-persistent data (Pattern 1/2 recovery).
	Recover(img *pmem.Image) error
	// Reach returns every heap extent reachable from the structure's
	// roots in the image — the mark phase of the leak collector.
	Reach(img *pmem.Image) ([]txheap.Extent, error)
	// CheckDurable verifies the structure in the image against the
	// oracle of transactions known committed at the crash point.
	CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error
}

// Factory builds a fresh workload instance.
type Factory func() Workload

var registry = map[string]Factory{}

// Register adds a workload factory; called from init functions of the
// structure packages.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates a registered workload.
func New(name string) (Workload, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return f(), nil
}

// MustNew is New that panics on unknown names.
func MustNew(name string) Workload {
	w, err := New(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names returns the registered workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kernels returns the four STAMP-style kernel benchmarks (Figure 8).
func Kernels() []string { return []string{"hashtable", "rbtree", "heap", "avl"} }

// PMKV returns the key-value store backends (Figure 14).
func PMKV() []string { return []string{"kv-btree", "kv-ctree", "kv-rtree"} }

// Root slot conventions shared by the structures.
const (
	// RootMain is the structure's top pointer (bucket array, tree root).
	RootMain = 0
	// RootMeta holds a structure-specific scalar (bucket count, array
	// capacity).
	RootMeta = 1
	// RootCount holds the element count.
	RootCount = 2
	// RootMoveSrc is the lazy-move recovery slot: while non-zero it
	// points at the pre-move source (old bucket array, old heap array)
	// from which a crash recovery re-executes the move (§IV-B
	// Pattern 2). It is cleared — forcing the hardware to drain the
	// lazy copies first via the working-set signature — before the
	// source may be modified or reused.
	RootMoveSrc = 3
	// RootAux is free for structure-specific use.
	RootAux = 4
)

// CheckOracle is a helper: verifies Get returns every oracle pair.
func CheckOracle(sys *slpmt.System, w Workload, oracle map[uint64][]byte) error {
	for k, want := range oracle {
		got, ok := w.Get(sys, k)
		if !ok {
			return fmt.Errorf("%s: key %d missing", w.Name(), k)
		}
		if string(got) != string(want) {
			return fmt.Errorf("%s: key %d value mismatch (got %d bytes, want %d)",
				w.Name(), k, len(got), len(want))
		}
	}
	return nil
}

// ErrUnsupported is returned by Mutable operations a structure does not
// implement.
var ErrUnsupported = errors.New("workloads: operation not supported")

// Mutable is implemented by workloads that support updates and deletes
// in addition to the paper's insert-only ycsb-load — the operations a
// downstream adopter needs, and the ones that exercise the free/reuse
// and unlink recovery paths.
type Mutable interface {
	// UpdateValue replaces the value of an existing key in one durable
	// transaction. The new value has the same length as the old one
	// (the kernels store values inline).
	UpdateValue(sys *slpmt.System, key uint64, value []byte) error
	// Delete removes a key in one durable transaction. Returns
	// ErrUnsupported where the structure does not implement removal.
	Delete(sys *slpmt.System, key uint64) error
}

// Ranger is implemented by workloads with ordered keys that support
// range scans over [from, to] (inclusive). The callback returns false
// to stop early. Scans run through the volatile view (loads are timed
// and lazy-persistency checks apply, like any read).
type Ranger interface {
	Scan(sys *slpmt.System, from, to uint64, fn func(key uint64, value []byte) bool) error
}
