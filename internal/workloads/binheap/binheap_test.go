package binheap

import (
	"math/rand"
	"testing"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

func build(t *testing.T, keys []uint64) (*Heap, *slpmt.System) {
	t.Helper()
	h := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := h.Setup(sys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := h.Insert(sys, k, []byte("heapval!")); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	return h, sys
}

func oracleFor(keys []uint64) map[uint64][]byte {
	o := map[uint64][]byte{}
	for _, k := range keys {
		o[k] = []byte("heapval!")
	}
	return o
}

// TestMaxAtRoot: the maximum key always sits at index 0.
func TestMaxAtRoot(t *testing.T) {
	keys := []uint64{5, 99, 3, 42, 77, 100, 1}
	_, sys := build(t, keys)
	sys.View(func(tx *slpmt.Tx) {
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		if got := tx.LoadU64(arr + entKey); got != 100 {
			t.Errorf("root key = %d, want 100", got)
		}
	})
}

// TestGrowthMoveProtocol: exceeding the capacity runs the lazy-copy
// growth transaction with the RootMoveSrc recovery protocol.
func TestGrowthMoveProtocol(t *testing.T) {
	keys := make([]uint64, initialCap+1)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	h, sys := build(t, keys)
	var capn uint64
	sys.View(func(tx *slpmt.Tx) { capn = tx.Root(workloads.RootMeta) })
	if capn != 2*initialCap {
		t.Fatalf("capacity = %d, want %d", capn, 2*initialCap)
	}
	if err := h.Check(sys, oracleFor(keys)); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().LazyLinesDeferred == 0 {
		t.Error("growth copy was not lazy")
	}
}

// TestDeleteArbitrary: removing interior entries preserves heap order.
func TestDeleteArbitrary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var keys []uint64
	seen := map[uint64]bool{}
	for len(keys) < 100 {
		k := rng.Uint64()%10000 + 1
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	h, sys := build(t, keys)
	oracle := oracleFor(keys)
	for i := 0; i < 60; i++ {
		k := keys[rng.Intn(len(keys))]
		if _, ok := oracle[k]; !ok {
			continue
		}
		if err := h.Delete(sys, k); err != nil {
			t.Fatalf("delete %d: %v", k, err)
		}
		delete(oracle, k)
	}
	if err := h.Check(sys, oracle); err != nil {
		t.Fatal(err)
	}
}

// TestEndSlotIsLogFree: the new entry's slot writes create no undo
// records when the insert lands at the end of the array (no sift).
func TestEndSlotIsLogFree(t *testing.T) {
	h := New()
	sys := slpmt.New(slpmt.Options{Scheme: "SLPMT"})
	if err := h.Setup(sys); err != nil {
		t.Fatal(err)
	}
	// Descending keys never sift (parent always larger).
	before := sys.Stats().LogRecordsCreated
	if err := h.Insert(sys, 100, []byte("v")); err != nil {
		t.Fatal(err)
	}
	first := sys.Stats().LogRecordsCreated - before
	before = sys.Stats().LogRecordsCreated
	if err := h.Insert(sys, 50, []byte("v")); err != nil {
		t.Fatal(err)
	}
	second := sys.Stats().LogRecordsCreated - before
	// Only the size-field (and root-line) stores should be logged:
	// a couple of records, not the entry or value payload.
	if second > 3 {
		t.Errorf("end-slot insert created %d records (first: %d)", second, first)
	}
}
