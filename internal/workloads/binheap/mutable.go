package binheap

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// UpdateValue implements workloads.Mutable: the entry's out-of-line
// value block is replaced by a fresh one (log-free) and the entry's
// pointer updated with one logged store — keys don't move, so the heap
// order is untouched.
func (h *Heap) UpdateValue(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		h.releaseStash(tx)
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		size := tx.Root(workloads.RootCount)
		for i := uint64(0); i < size; i++ {
			if tx.LoadU64(slot(arr, i)+entKey) != key {
				continue
			}
			old := slpmt.Addr(tx.LoadU64(slot(arr, i) + entVPtr))
			vb := tx.Alloc(valBytes + uint64(len(value)))
			tx.StoreTU64(vb+valLen, uint64(len(value)), slpmt.LogFree)
			tx.StoreT(vb+valBytes, value, slpmt.LogFree)
			tx.StoreU64(slot(arr, i)+entVPtr, uint64(vb))
			tx.Free(old)
			return nil
		}
		return fmt.Errorf("heap: key %d not found", key)
	})
}

// Delete implements workloads.Mutable: classic arbitrary-position heap
// removal — the last entry moves into the hole (logged copy) and sifts
// to its place.
func (h *Heap) Delete(sys *slpmt.System, key uint64) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		h.releaseStash(tx)
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		size := tx.Root(workloads.RootCount)
		idx := size
		for i := uint64(0); i < size; i++ {
			if tx.LoadU64(slot(arr, i)+entKey) == key {
				idx = i
				break
			}
		}
		if idx == size {
			return fmt.Errorf("heap: key %d not found", key)
		}
		vb := slpmt.Addr(tx.LoadU64(slot(arr, idx) + entVPtr))
		last := size - 1
		if idx != last {
			tx.Copy(slot(arr, idx), slot(arr, last), entSize, slpmt.Plain)
		}
		tx.SetRoot(workloads.RootCount, last)
		tx.Free(vb)
		if idx == last {
			return nil
		}
		h.siftDown(tx, arr, idx, last)
		h.siftUpFrom(tx, arr, idx)
		return nil
	})
}

// siftDown restores heap order below i (entries [0,size)).
func (h *Heap) siftDown(tx *slpmt.Tx, arr slpmt.Addr, i, size uint64) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		ki := tx.LoadU64(slot(arr, big) + entKey)
		if l < size && tx.LoadU64(slot(arr, l)+entKey) > ki {
			big = l
			ki = tx.LoadU64(slot(arr, l) + entKey)
		}
		if r < size && tx.LoadU64(slot(arr, r)+entKey) > ki {
			big = r
		}
		if big == i {
			return
		}
		h.swapEntries(tx, arr, i, big)
		i = big
	}
}

// siftUpFrom restores heap order above i.
func (h *Heap) siftUpFrom(tx *slpmt.Tx, arr slpmt.Addr, i uint64) {
	for i > 0 {
		p := (i - 1) / 2
		if tx.LoadU64(slot(arr, p)+entKey) >= tx.LoadU64(slot(arr, i)+entKey) {
			return
		}
		h.swapEntries(tx, arr, i, p)
		i = p
	}
}

// swapEntries exchanges two entries with logged stores (both operands
// are overwritten in place, so neither is recoverable without a log).
func (h *Heap) swapEntries(tx *slpmt.Tx, arr slpmt.Addr, i, j uint64) {
	ki := tx.LoadU64(slot(arr, i) + entKey)
	vi := tx.LoadU64(slot(arr, i) + entVPtr)
	tx.Copy(slot(arr, i), slot(arr, j), entSize, slpmt.Plain)
	tx.StoreU64(slot(arr, j)+entKey, ki)
	tx.StoreU64(slot(arr, j)+entVPtr, vi)
}
