// Package binheap implements the paper's max-heap kernel (Table II): a
// binary max-heap whose entries live in one persistent array, with
// values stored out of line.
//
// Annotation discipline (§IV):
//
//   - the new entry's slot (one past the current size) and the fresh
//     value block are log-free: if the transaction is undone, the
//     logged size field hides the slot again (Pattern 1's "stores whose
//     effects are cancelled by other logged data");
//   - array growth copies the live entries into a fresh, double-sized
//     array without touching the old one — the lazy move pattern
//     (Pattern 2), guarded by the RootMoveSrc protocol. Growth runs in
//     its own transaction so the sift-up of a later insert never
//     modifies a destination the recovery re-copy could clobber;
//   - sift-up shifts are plain logged stores (their sources are
//     overwritten in the same transaction, so they are not safely
//     recoverable without a log).
package binheap

import (
	"fmt"
	"sort"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/mem"
	"github.com/persistmem/slpmt/internal/pmem"
	"github.com/persistmem/slpmt/internal/txheap"
	"github.com/persistmem/slpmt/internal/workloads"
)

// Entry layout (16 bytes in the array).
const (
	entKey  = 0
	entVPtr = 8
	entSize = 16
)

// Value block layout.
const (
	valLen   = 0
	valBytes = 8
)

const initialCap = 16

func init() {
	workloads.Register("heap", func() workloads.Workload { return New() })
}

// Heap is the max-heap workload.
type Heap struct {
	stashArr   slpmt.Addr
	stashArrSz uint64
}

// New returns a fresh heap workload.
func New() *Heap { return &Heap{} }

// Name implements workloads.Workload.
func (h *Heap) Name() string { return "heap" }

// ComputeCost implements workloads.Workload.
func (h *Heap) ComputeCost() uint64 { return 1 }

// Setup implements workloads.Workload.
func (h *Heap) Setup(sys *slpmt.System) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		arr := tx.Alloc(initialCap * entSize)
		tx.SetRoot(workloads.RootMain, uint64(arr))
		tx.SetRoot(workloads.RootMeta, initialCap)
		tx.SetRoot(workloads.RootCount, 0)
		tx.SetRoot(workloads.RootMoveSrc, 0)
		tx.SetRoot(workloads.RootAux, 0)
		return nil
	})
}

func slot(arr slpmt.Addr, i uint64) slpmt.Addr { return arr + slpmt.Addr(i*entSize) }

func (h *Heap) releaseStash(tx *slpmt.Tx) {
	if h.stashArr == 0 {
		return
	}
	// Clearing RootMoveSrc stores to the growth transaction's working
	// set, so the hardware drains the lazy copies before proceeding.
	tx.SetRoot(workloads.RootMoveSrc, 0)
	tx.SetRoot(workloads.RootAux, 0)
	tx.Free(h.stashArr)
	h.stashArr = 0
	h.stashArrSz = 0
}

// Insert implements workloads.Workload. Growth (when needed) runs as a
// separate durable transaction before the insert transaction.
func (h *Heap) Insert(sys *slpmt.System, key uint64, value []byte) error {
	needGrow := false
	sys.View(func(tx *slpmt.Tx) {
		needGrow = tx.Root(workloads.RootCount) == tx.Root(workloads.RootMeta)
	})
	if needGrow {
		if err := sys.Update(func(tx *slpmt.Tx) error {
			h.releaseStash(tx)
			h.grow(tx)
			return nil
		}); err != nil {
			return err
		}
	}
	return sys.Update(func(tx *slpmt.Tx) error {
		h.releaseStash(tx)

		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		size := tx.Root(workloads.RootCount)

		// Fresh value block: log-free.
		vb := tx.Alloc(valBytes + uint64(len(value)))
		tx.StoreTU64(vb+valLen, uint64(len(value)), slpmt.LogFree)
		tx.StoreT(vb+valBytes, value, slpmt.LogFree)

		// Sift the parents down along the insertion path, then place
		// the new entry once.
		i := size
		first := true
		for i > 0 {
			p := (i - 1) / 2
			pk := tx.LoadU64(slot(arr, p) + entKey)
			if pk >= key {
				break
			}
			attr := slpmt.Plain
			if first {
				// Destination is the end slot, invisible until the
				// logged size update commits.
				attr = slpmt.LogFree
			}
			tx.Copy(slot(arr, i), slot(arr, p), entSize, attr)
			i = p
			first = false
		}
		attr := slpmt.Plain
		if first {
			attr = slpmt.LogFree
		}
		tx.StoreTU64(slot(arr, i)+entKey, key, attr)
		tx.StoreTU64(slot(arr, i)+entVPtr, uint64(vb), attr)
		tx.SetRoot(workloads.RootCount, size+1)
		return nil
	})
}

// grow doubles the array by lazily copying the entries into a fresh
// allocation (Pattern 2), publishing the old array for recovery.
func (h *Heap) grow(tx *slpmt.Tx) {
	arr := slpmt.Addr(tx.Root(workloads.RootMain))
	capn := tx.Root(workloads.RootMeta)
	size := tx.Root(workloads.RootCount)

	newArr := tx.Alloc(capn * 2 * entSize)
	if size > 0 {
		tx.Copy(newArr, arr, int(size*entSize), slpmt.LazyLogFree)
	}
	h.stashArr = arr
	h.stashArrSz = capn * entSize

	tx.SetRoot(workloads.RootMain, uint64(newArr))
	tx.SetRoot(workloads.RootMeta, capn*2)
	tx.SetRoot(workloads.RootMoveSrc, uint64(arr))
	tx.SetRoot(workloads.RootAux, capn)
}

// Get implements workloads.Workload (linear scan; the heap is not a
// search structure — Get exists for oracle verification).
func (h *Heap) Get(sys *slpmt.System, key uint64) (val []byte, ok bool) {
	sys.View(func(tx *slpmt.Tx) {
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		size := tx.Root(workloads.RootCount)
		for i := uint64(0); i < size; i++ {
			if tx.LoadU64(slot(arr, i)+entKey) == key {
				vb := slpmt.Addr(tx.LoadU64(slot(arr, i) + entVPtr))
				vlen := tx.LoadU64(vb + valLen)
				val = make([]byte, vlen)
				tx.Load(vb+valBytes, val)
				ok = true
				return
			}
		}
	})
	return val, ok
}

// Check implements workloads.Workload: heap order plus oracle multiset.
func (h *Heap) Check(sys *slpmt.System, oracle map[uint64][]byte) error {
	var err error
	sys.View(func(tx *slpmt.Tx) {
		arr := slpmt.Addr(tx.Root(workloads.RootMain))
		size := tx.Root(workloads.RootCount)
		if size != uint64(len(oracle)) {
			err = fmt.Errorf("heap: size %d, oracle %d", size, len(oracle))
			return
		}
		var keys []uint64
		for i := uint64(0); i < size; i++ {
			k := tx.LoadU64(slot(arr, i) + entKey)
			keys = append(keys, k)
			if i > 0 {
				p := (i - 1) / 2
				if tx.LoadU64(slot(arr, p)+entKey) < k {
					err = fmt.Errorf("heap: order violation at index %d", i)
					return
				}
			}
		}
		err = matchKeys(keys, oracle, "heap")
	})
	if err != nil {
		return err
	}
	return workloads.CheckOracle(sys, h, oracle)
}

// matchKeys verifies the key multiset equals the oracle key set.
func matchKeys(keys []uint64, oracle map[uint64][]byte, who string) error {
	if len(keys) != len(oracle) {
		return fmt.Errorf("%s: %d keys, oracle %d", who, len(keys), len(oracle))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			return fmt.Errorf("%s: duplicate key %d", who, keys[i])
		}
	}
	for _, k := range keys {
		if _, ok := oracle[k]; !ok {
			return fmt.Errorf("%s: unexpected key %d", who, k)
		}
	}
	return nil
}

// --- Recovery over the durable image -------------------------------

func layout(img *pmem.Image) mem.Layout { return mem.DefaultLayout(uint64(len(img.Data))) }

func readRoot(img *pmem.Image, slot int) uint64 {
	return img.ReadU64(layout(img).RootBase + mem.Addr(slot*8))
}

func writeRoot(img *pmem.Image, slot int, v uint64) {
	img.WriteU64(layout(img).RootBase+mem.Addr(slot*8), v)
}

// Recover implements workloads.Recoverable: re-executes an in-flight
// array growth from the intact old array.
func (h *Heap) Recover(img *pmem.Image) error {
	oldArr := mem.Addr(readRoot(img, workloads.RootMoveSrc))
	if oldArr == 0 {
		return nil
	}
	oldCap := readRoot(img, workloads.RootAux)
	newArr := mem.Addr(readRoot(img, workloads.RootMain))
	size := readRoot(img, workloads.RootCount)
	if size > oldCap {
		return fmt.Errorf("heap recover: size %d exceeds old capacity %d", size, oldCap)
	}
	buf := make([]byte, size*entSize)
	img.Read(oldArr, buf)
	img.Write(newArr, buf)
	writeRoot(img, workloads.RootMoveSrc, 0)
	writeRoot(img, workloads.RootAux, 0)
	return nil
}

// Reach implements workloads.Recoverable.
func (h *Heap) Reach(img *pmem.Image) ([]txheap.Extent, error) {
	arr := mem.Addr(readRoot(img, workloads.RootMain))
	capn := readRoot(img, workloads.RootMeta)
	size := readRoot(img, workloads.RootCount)
	if arr == 0 || capn == 0 {
		return nil, fmt.Errorf("heap reach: no array")
	}
	out := []txheap.Extent{{Addr: arr, Size: capn * entSize}}
	for i := uint64(0); i < size; i++ {
		vb := mem.Addr(img.ReadU64(arr + mem.Addr(i*entSize) + entVPtr))
		vlen := img.ReadU64(vb + valLen)
		out = append(out, txheap.Extent{Addr: vb, Size: valBytes + vlen})
	}
	return out, nil
}

// CheckDurable implements workloads.Recoverable.
func (h *Heap) CheckDurable(img *pmem.Image, oracle map[uint64][]byte) error {
	arr := mem.Addr(readRoot(img, workloads.RootMain))
	size := readRoot(img, workloads.RootCount)
	if size != uint64(len(oracle)) {
		return fmt.Errorf("heap durable: size %d, oracle %d", size, len(oracle))
	}
	var keys []uint64
	for i := uint64(0); i < size; i++ {
		e := arr + mem.Addr(i*entSize)
		k := img.ReadU64(e + entKey)
		keys = append(keys, k)
		if i > 0 {
			p := (i - 1) / 2
			if img.ReadU64(arr+mem.Addr(p*entSize)+entKey) < k {
				return fmt.Errorf("heap durable: order violation at index %d", i)
			}
		}
		want, ok := oracle[k]
		if !ok {
			return fmt.Errorf("heap durable: unexpected key %d", k)
		}
		vb := mem.Addr(img.ReadU64(e + entVPtr))
		vlen := img.ReadU64(vb + valLen)
		if vlen != uint64(len(want)) {
			return fmt.Errorf("heap durable: key %d vlen %d, want %d", k, vlen, len(want))
		}
		got := make([]byte, vlen)
		img.Read(vb+valBytes, got)
		if string(got) != string(want) {
			return fmt.Errorf("heap durable: key %d value mismatch", k)
		}
	}
	return matchKeys(keys, oracle, "heap durable")
}
