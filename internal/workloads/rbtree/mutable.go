package rbtree

import (
	"fmt"

	"github.com/persistmem/slpmt"
	"github.com/persistmem/slpmt/internal/workloads"
)

// UpdateValue implements workloads.Mutable: same-size updates overwrite
// the inline value (logged); size-changing updates splice in a fresh
// replacement node (log-free fields; the parent's child link is the one
// logged store, and neighbours' parent pointers are lazy+log-free as
// everywhere else in this structure).
func (t *Tree) UpdateValue(sys *slpmt.System, key uint64, value []byte) error {
	return sys.Update(func(tx *slpmt.Tx) error {
		n := slpmt.Addr(tx.Root(workloads.RootMain))
		for n != 0 {
			k := fKey(tx, n)
			switch {
			case key == k:
				if tx.LoadU64(n+offVLen) == uint64(len(value)) {
					tx.Store(n+offVal, value)
					return nil
				}
				repl := tx.Alloc(offVal + uint64(len(value)))
				tx.StoreTU64(repl+offKey, key, slpmt.LogFree)
				tx.StoreTU64(repl+offVLen, uint64(len(value)), slpmt.LogFree)
				tx.CopyU64(repl+offLeft, n+offLeft, slpmt.LogFree)
				tx.CopyU64(repl+offRight, n+offRight, slpmt.LogFree)
				tx.CopyU64(repl+offParent, n+offParent, slpmt.LogFree)
				tx.CopyU64(repl+offColor, n+offColor, slpmt.LogFree)
				tx.StoreT(repl+offVal, value, slpmt.LogFree)
				// Children's parent pointers: derivable, lazy+log-free.
				if l := fLeft(tx, n); l != 0 {
					setParent(tx, slpmt.Addr(l), uint64(repl))
				}
				if r := fRight(tx, n); r != 0 {
					setParent(tx, slpmt.Addr(r), uint64(repl))
				}
				// The one logged splice.
				p := slpmt.Addr(fParent(tx, n))
				switch {
				case p == 0:
					tx.SetRoot(workloads.RootMain, uint64(repl))
				case fLeft(tx, p) == uint64(n):
					setLeft(tx, p, uint64(repl))
				default:
					setRight(tx, p, uint64(repl))
				}
				tx.Free(n)
				return nil
			case key < k:
				n = slpmt.Addr(fLeft(tx, n))
			default:
				n = slpmt.Addr(fRight(tx, n))
			}
		}
		return fmt.Errorf("rbtree: key %d not found", key)
	})
}

// Delete implements workloads.Mutable. Red-black deletion's rebalancing
// is not implemented in this reproduction (the paper's evaluation is
// insert-only); AVL, hashtable, heap and the ctree/rtree backends cover
// the removal recovery paths.
func (t *Tree) Delete(sys *slpmt.System, key uint64) error {
	return workloads.ErrUnsupported
}
